// RegionManager: the shared-state data plane over the disaggregated pool.
//
// TrEnv's mm-templates share read-only *templates*; this module lets
// functions share *data* (ROADMAP item 5, Faasm/Nexus in PAPERS.md). A shared
// region is a named block of pool pages (allocated on the CXL/RDMA tiers via
// TieredPool) mapped into multiple sandboxes' PageTables with the shared /
// owner / dirty PTE bits:
//
//   * Single-writer / multi-reader ownership — exactly one worker holds
//     ownership (a valid + !wp + shared + owner mapping; stores write through
//     to the pool and set dirty). Any number of workers hold reader mappings
//     (valid + wp + shared; loads are direct remote, stores are refused by
//     the fault handler until an ownership upgrade).
//   * Explicit invalidation — an ownership upgrade or an owner write revokes
//     every reader mapping via invalidation events on the data plane's own
//     EventScheduler (advanced in lock-step by the Cluster, like poolmgr's).
//     A revoked reader's next read re-maps the window and re-fetches the
//     pages, so coherence traffic is modeled and measurable.
//   * Leases — cross-node readers hold TTL leases mirroring the poolmgr
//     machinery (one expiry event per grant window); an expired, unmapped
//     reader re-opens on next use. A worker crash drops its leases and
//     releases any ownership it held; the region bytes are durable in the
//     pool, so recovery is lease-based with no data loss.
//   * I/O offload channel (Nexus-style) — Transfer() hands a region from a
//     producer to a consumer by ownership transfer: metadata-only when both
//     workers' pool homes match, a pool-to-pool page migration otherwise.
//     Payloads never round-trip through a worker sandbox.
//
// Everything is deterministic: regions are iterated by id, readers in worker
// order, and all latencies derive from the configured cost constants plus the
// backends' seeded models.
#ifndef TRENV_SHSTATE_REGION_MANAGER_H_
#define TRENV_SHSTATE_REGION_MANAGER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/status.h"
#include "src/common/time.h"
#include "src/mempool/tiered_pool.h"
#include "src/obs/registry.h"
#include "src/sim/event_scheduler.h"
#include "src/simkernel/fault_handler.h"
#include "src/simkernel/frame_allocator.h"
#include "src/simkernel/mm_struct.h"

namespace trenv {

struct ShStateConfig {
  // false builds no data plane at all — the bit-identical default.
  bool enabled = false;
  // Pool-side homes for region bytes; worker w's home is w % pool_nodes.
  uint32_t pool_nodes = 4;
  // Reader lease TTL (one grant window per OpenReader/ReadRegion renew).
  SimDuration lease_ttl = SimDuration::Seconds(60);
  // Control-plane metadata costs.
  SimDuration map_metadata = SimDuration::FromMicrosF(15.0);
  SimDuration ownership_transfer = SimDuration::FromMicrosF(20.0);
  SimDuration invalidate_per_reader = SimDuration::FromMicrosF(8.0);
  // Pool-to-pool migration bandwidth (bytes/s): the inter-pool-node link a
  // cross-home ownership transfer streams the payload over.
  double pool_to_pool_bytes_per_sec = 12.0 * 1e9;
};

using RegionId = uint32_t;
inline constexpr RegionId kInvalidRegionId = 0xFFFFFFFFu;

// Outcome of one data-plane operation: the virtual latency the caller should
// charge, and the data-plane bytes the operation moved between pool nodes
// (the headline "bytes moved" metric — metadata-only ops report zero).
struct RegionOp {
  SimDuration latency;
  uint64_t moved_bytes = 0;
};

class RegionManager {
 public:
  // `pool` places region pages (not owned); `backends` resolves their tier's
  // latency model; `stats` may be null.
  RegionManager(ShStateConfig config, uint32_t workers, TieredPool* pool,
                const BackendRegistry* backends, obs::Registry* stats);
  RegionManager(const RegionManager&) = delete;
  RegionManager& operator=(const RegionManager&) = delete;

  // The data plane's clock; the Cluster advances it in lock-step with the
  // worker-node schedulers and drains it at end of run.
  EventScheduler& clock() { return clock_; }

  const ShStateConfig& config() const { return config_; }
  uint32_t HomeOf(uint32_t worker) const { return worker % config_.pool_nodes; }

  // Allocates a named region of `npages` on the pool and maps it into the
  // owner's window (valid + !wp + shared + owner). Latency: map_metadata.
  [[nodiscard]] Result<RegionId> CreateRegion(const std::string& name, uint64_t npages,
                                              uint32_t owner, SimTime now);

  // Owner writes the whole region: write-through stores via the fault
  // handler's shared-owner path (sets dirty) plus invalidation of every
  // currently mapped reader (single-writer coherence).
  [[nodiscard]] Result<RegionOp> WriteRegion(RegionId id, uint32_t worker, SimTime now);

  // Maps a reader window (valid + wp + shared) and grants/renews a lease.
  // Metadata-only; the first ReadRegion pays the fetch.
  [[nodiscard]] Result<RegionOp> OpenReader(RegionId id, uint32_t worker, SimTime now);

  // Reads the whole region. A fresh or invalidated mapping pays the tier's
  // bulk fetch latency (re-fetch after revocation); a warm mapping pays one
  // direct remote load. Renews the reader's lease window.
  [[nodiscard]] Result<RegionOp> ReadRegion(RegionId id, uint32_t worker, SimTime now);

  // Nexus-style handoff: `from` (the current owner) hands the region to
  // `to`. Revokes readers, then transfers ownership — metadata-only when
  // both workers share a pool home, a pool-to-pool page migration otherwise.
  [[nodiscard]] Result<RegionOp> Transfer(RegionId id, uint32_t from, uint32_t to,
                                          SimTime now);

  // Ownership upgrade for a worker that is not the owner (e.g. a fan-in
  // stage writing back into a region it was reading). Same cost model as
  // Transfer, but callable when ownership is vacant (post-crash recovery).
  [[nodiscard]] Result<RegionOp> AcquireOwnership(RegionId id, uint32_t worker, SimTime now);

  // Frees the region's pool pages and unmaps every window.
  [[nodiscard]] Status DestroyRegion(RegionId id);

  // Crash wiring: drops the worker's leases and reader mappings and releases
  // any ownership it held. Region bytes survive in the pool — the next
  // AcquireOwnership on a surviving worker recovers the region.
  void ReleaseWorker(uint32_t worker);

  // --- introspection ---------------------------------------------------------
  size_t region_count() const { return regions_.size(); }
  int32_t OwnerOf(RegionId id) const { return regions_[id].owner; }
  uint32_t HomeNodeOf(RegionId id) const { return regions_[id].home; }
  uint64_t RegionVersion(RegionId id) const { return regions_[id].version; }
  Vpn WindowOf(RegionId id) const { return regions_[id].window; }
  bool ReaderMapped(RegionId id, uint32_t worker) const;
  // The worker-side mm (for tests asserting PTE states).
  const MmStruct& worker_mm(uint32_t worker) const { return mms_[worker]; }

  // --- accounting ------------------------------------------------------------
  uint64_t transfers() const { return transfers_; }
  uint64_t migrations() const { return migrations_; }
  uint64_t moved_bytes() const { return moved_bytes_; }        // pool-to-pool
  uint64_t pool_write_bytes() const { return pool_write_bytes_; }
  uint64_t refetch_bytes() const { return refetch_bytes_; }
  uint64_t invalidations() const { return invalidations_; }
  uint64_t lease_grants() const { return lease_grants_; }
  uint64_t leases_expired() const { return leases_expired_; }
  uint64_t ownership_recoveries() const { return ownership_recoveries_; }
  const Histogram& transfer_ms() const { return transfer_ms_; }
  const Histogram& read_ms() const { return read_ms_; }

 private:
  struct Reader {
    bool mapped = false;
    SimTime lease_expires;
  };
  struct Region {
    std::string name;
    uint64_t npages = 0;
    PoolPlacement placement;
    Vpn window = 0;      // same window vpn in every worker's address space
    uint32_t home = 0;   // pool node currently holding the bytes
    int32_t owner = -1;  // worker holding write ownership; -1 = vacant
    uint64_t version = 0;
    std::map<uint32_t, Reader> readers;  // worker -> lease/mapping state
    bool live = false;
  };

  Result<Region*> Find(RegionId id);
  MemoryBackend* Backend(const Region& region) const;
  Vaddr WindowAddr(const Region& region) const { return VpnToAddr(region.window); }
  void MapOwner(Region& region, uint32_t worker);
  void MapReader(Region& region, uint32_t worker);
  void UnmapWindow(Region& region, uint32_t worker);
  // Schedules invalidation events for every mapped reader (except `keep`,
  // the upgrading worker, whose window is replaced synchronously) and
  // returns the coherence latency the mutator pays.
  SimDuration RevokeReaders(RegionId id, int32_t keep, SimTime now);
  // Ownership movement shared by Transfer / AcquireOwnership.
  Result<RegionOp> MoveOwnership(RegionId id, uint32_t to, SimTime now);
  void GrantLease(RegionId id, uint32_t worker, SimTime now);
  void Count(obs::Counter* counter, double delta = 1.0) {
    if (counter != nullptr) {
      counter->Add(delta);
    }
  }

  ShStateConfig config_;
  TieredPool* pool_;
  const BackendRegistry* backends_;
  EventScheduler clock_;

  // One address space per worker holding the shared-region windows. Shared
  // mappings never allocate local frames, but the fault handler needs an
  // allocator for its unpopulated-gap path (which our ops never hit).
  FrameAllocator frames_;
  FaultHandler fault_handler_;
  std::vector<MmStruct> mms_;
  Vpn next_window_;

  std::vector<Region> regions_;

  uint64_t transfers_ = 0;
  uint64_t migrations_ = 0;
  uint64_t moved_bytes_ = 0;
  uint64_t pool_write_bytes_ = 0;
  uint64_t refetch_bytes_ = 0;
  uint64_t invalidations_ = 0;
  uint64_t lease_grants_ = 0;
  uint64_t leases_expired_ = 0;
  uint64_t ownership_recoveries_ = 0;
  Histogram transfer_ms_;
  Histogram read_ms_;

  obs::Counter* regions_counter_ = nullptr;
  obs::Counter* writes_counter_ = nullptr;
  obs::Counter* reads_counter_ = nullptr;
  obs::Counter* transfers_counter_ = nullptr;
  obs::Counter* migrations_counter_ = nullptr;
  obs::Counter* moved_bytes_counter_ = nullptr;
  obs::Counter* pool_write_bytes_counter_ = nullptr;
  obs::Counter* invalidations_counter_ = nullptr;
  obs::Counter* lease_grants_counter_ = nullptr;
  obs::Counter* lease_expired_counter_ = nullptr;
  obs::Counter* recoveries_counter_ = nullptr;
};

}  // namespace trenv

#endif  // TRENV_SHSTATE_REGION_MANAGER_H_
