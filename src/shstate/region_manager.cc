#include "src/shstate/region_manager.h"

#include <utility>

namespace trenv {

namespace {
// Each worker's shared-region window VMA. Far above the sandbox layouts so
// tests mixing mms never collide; 4 GiB of window space is plenty for the
// simulated pipelines.
constexpr Vaddr kWindowVmaStart = 0x7f0000000000ULL;
constexpr uint64_t kWindowVmaBytes = 4ULL * kGiB;
// Window data-plane frames are never used (shared mappings stay remote); the
// allocator only exists to satisfy the fault handler's constructor contract.
constexpr uint64_t kScratchFrameBytes = 64ULL * kMiB;
}  // namespace

RegionManager::RegionManager(ShStateConfig config, uint32_t workers, TieredPool* pool,
                             const BackendRegistry* backends, obs::Registry* stats)
    : config_(config),
      pool_(pool),
      backends_(backends),
      frames_(kScratchFrameBytes),
      fault_handler_(&frames_, backends, stats),
      next_window_(AddrToVpn(kWindowVmaStart)) {
  if (config_.pool_nodes == 0) {
    config_.pool_nodes = 1;
  }
  mms_.reserve(workers);
  for (uint32_t w = 0; w < workers; ++w) {
    mms_.emplace_back();
    Status st = mms_.back().AddVma(MakeAnonVma(kWindowVmaStart, kWindowVmaBytes,
                                               Protection::ReadWrite(), "[shstate]"));
    (void)st;  // a fresh mm cannot have an overlapping VMA
  }
  if (stats != nullptr) {
    regions_counter_ = stats->GetCounter("shstate.regions_created");
    writes_counter_ = stats->GetCounter("shstate.writes");
    reads_counter_ = stats->GetCounter("shstate.reads");
    transfers_counter_ = stats->GetCounter("shstate.transfers");
    migrations_counter_ = stats->GetCounter("shstate.migrations");
    moved_bytes_counter_ = stats->GetCounter("shstate.moved_bytes");
    pool_write_bytes_counter_ = stats->GetCounter("shstate.pool_write_bytes");
    invalidations_counter_ = stats->GetCounter("shstate.invalidations");
    lease_grants_counter_ = stats->GetCounter("shstate.lease_grants");
    lease_expired_counter_ = stats->GetCounter("shstate.leases_expired");
    recoveries_counter_ = stats->GetCounter("shstate.ownership_recoveries");
  }
}

Result<RegionManager::Region*> RegionManager::Find(RegionId id) {
  if (id >= regions_.size() || !regions_[id].live) {
    return Status::NotFound("no such shared region");
  }
  return &regions_[id];
}

MemoryBackend* RegionManager::Backend(const Region& region) const {
  return backends_->Get(region.placement.kind);
}

bool RegionManager::ReaderMapped(RegionId id, uint32_t worker) const {
  const Region& region = regions_[id];
  auto it = region.readers.find(worker);
  return it != region.readers.end() && it->second.mapped;
}

void RegionManager::MapOwner(Region& region, uint32_t worker) {
  PteFlags flags;
  flags.valid = true;
  flags.write_protected = false;
  flags.pool = region.placement.kind;
  flags.shared = true;
  flags.owner = true;
  mms_[worker].page_table().MapRange(region.window, region.npages, flags,
                                     region.placement.base,
                                     /*content_base=*/region.version << 20);
}

void RegionManager::MapReader(Region& region, uint32_t worker) {
  PteFlags flags;
  flags.valid = true;
  flags.write_protected = true;
  flags.pool = region.placement.kind;
  flags.shared = true;
  mms_[worker].page_table().MapRange(region.window, region.npages, flags,
                                     region.placement.base,
                                     /*content_base=*/region.version << 20);
}

void RegionManager::UnmapWindow(Region& region, uint32_t worker) {
  mms_[worker].page_table().UnmapRange(region.window, region.npages);
}

Result<RegionId> RegionManager::CreateRegion(const std::string& name, uint64_t npages,
                                             uint32_t owner, SimTime now) {
  (void)now;
  if (npages == 0 || owner >= mms_.size()) {
    return Status::InvalidArgument("bad region size or owner");
  }
  const Vpn window_end = next_window_ + npages;
  if (VpnToAddr(window_end) > kWindowVmaStart + kWindowVmaBytes) {
    return Status::ResourceExhausted("shared-region window space exhausted");
  }
  // Hotness 1.0: region bytes are live function state, so they land on the
  // hottest pool tier with space (CXL, falling through to RDMA/NAS).
  TRENV_ASSIGN_OR_RETURN(PoolPlacement placement, pool_->AllocatePages(npages, 1.0));
  if (placement.kind == PoolKind::kLocalDram) {
    // A shared region must be reachable from every node; local DRAM is not.
    Status st = pool_->FreePages(placement);
    (void)st;
    return Status::ResourceExhausted("no remote pool tier has space for the region");
  }
  Region region;
  region.name = name;
  region.npages = npages;
  region.placement = placement;
  region.window = next_window_;
  region.home = HomeOf(owner);
  region.owner = static_cast<int32_t>(owner);
  region.live = true;
  next_window_ = window_end;
  regions_.push_back(std::move(region));
  MapOwner(regions_.back(), owner);
  Count(regions_counter_);
  return static_cast<RegionId>(regions_.size() - 1);
}

SimDuration RegionManager::RevokeReaders(RegionId id, int32_t keep, SimTime now) {
  Region& region = regions_[id];
  SimDuration cost;
  for (auto& [worker, reader] : region.readers) {
    if (!reader.mapped || static_cast<int32_t>(worker) == keep) {
      continue;
    }
    reader.mapped = false;
    ++invalidations_;
    Count(invalidations_counter_);
    cost += config_.invalidate_per_reader;
    // The unmap itself lands asynchronously on the data plane's timeline —
    // modeled after a TLB-shootdown IPI. The reader sees the revocation once
    // the event runs; its next ReadRegion re-maps and re-fetches.
    const uint32_t w = worker;
    clock_.ScheduleAt(std::max(now, clock_.now()) + config_.invalidate_per_reader,
                      [this, id, w] {
                        Region& r = regions_[id];
                        // Skip if the worker re-opened (mapped again) or took
                        // ownership since the shootdown was posted — its
                        // current mapping is live, not the revoked one.
                        if (!r.live || r.owner == static_cast<int32_t>(w)) {
                          return;
                        }
                        auto it = r.readers.find(w);
                        if (it != r.readers.end() && it->second.mapped) {
                          return;
                        }
                        UnmapWindow(r, w);
                      });
  }
  return cost;
}

Result<RegionOp> RegionManager::WriteRegion(RegionId id, uint32_t worker, SimTime now) {
  TRENV_ASSIGN_OR_RETURN(Region * region, Find(id));
  if (region->owner != static_cast<int32_t>(worker)) {
    return Status::PermissionDenied("write requires region ownership");
  }
  // Single-writer coherence: a write while readers are mapped revokes them.
  RegionOp op;
  op.latency += RevokeReaders(id, static_cast<int32_t>(worker), now);
  TRENV_ASSIGN_OR_RETURN(
      BulkAccessStats stats,
      fault_handler_.AccessRange(mms_[worker], WindowAddr(*region), region->npages,
                                 /*write=*/true));
  op.latency += stats.latency;
  // The write-through path in the fault handler charges nothing (plain
  // stores); the data plane charges the bulk stream to the pool copy here —
  // symmetric with the fetch direction, same link.
  op.latency += Backend(*region)->FetchLatency(region->npages);
  region->version += 1;
  pool_write_bytes_ += region->npages * kPageSize;
  Count(writes_counter_);
  Count(pool_write_bytes_counter_, static_cast<double>(region->npages * kPageSize));
  return op;
}

void RegionManager::GrantLease(RegionId id, uint32_t worker, SimTime now) {
  Region& region = regions_[id];
  Reader& reader = region.readers[worker];
  reader.lease_expires = now + config_.lease_ttl;
  ++lease_grants_;
  Count(lease_grants_counter_);
  // One expiry event per grant window (poolmgr's scheme): renewals push
  // lease_expires forward, so earlier events find the lease still live.
  clock_.ScheduleAt(reader.lease_expires, [this, id, worker] {
    Region& r = regions_[id];
    if (!r.live) {
      return;
    }
    auto it = r.readers.find(worker);
    if (it == r.readers.end() || clock_.now() < it->second.lease_expires) {
      return;  // renewed (or already gone)
    }
    if (it->second.mapped) {
      UnmapWindow(r, worker);
    }
    r.readers.erase(it);
    ++leases_expired_;
    Count(lease_expired_counter_);
  });
}

Result<RegionOp> RegionManager::OpenReader(RegionId id, uint32_t worker, SimTime now) {
  TRENV_ASSIGN_OR_RETURN(Region * region, Find(id));
  if (worker >= mms_.size()) {
    return Status::InvalidArgument("bad reader worker");
  }
  if (region->owner == static_cast<int32_t>(worker)) {
    return RegionOp{};  // the owner already maps the region writable
  }
  RegionOp op;
  op.latency = config_.map_metadata;
  Reader& reader = region->readers[worker];
  if (!reader.mapped) {
    MapReader(*region, worker);
    reader.mapped = true;
  }
  GrantLease(id, worker, now);
  return op;
}

Result<RegionOp> RegionManager::ReadRegion(RegionId id, uint32_t worker, SimTime now) {
  TRENV_ASSIGN_OR_RETURN(Region * region, Find(id));
  MemoryBackend* backend = Backend(*region);
  if (backend == nullptr) {
    return Status::Internal("no backend for region tier");
  }
  RegionOp op;
  if (region->owner != static_cast<int32_t>(worker)) {
    auto it = region->readers.find(worker);
    const bool warm = it != region->readers.end() && it->second.mapped;
    if (!warm) {
      // Fresh open or revoked/expired mapping: re-map (metadata) and stream
      // the region back in — the measurable cost of an invalidation.
      TRENV_ASSIGN_OR_RETURN(RegionOp open, OpenReader(id, worker, now));
      op.latency += open.latency + backend->FetchLatency(region->npages);
      refetch_bytes_ += region->npages * kPageSize;
    } else {
      GrantLease(id, worker, now);  // renew the window on use
      op.latency += backend->EffectiveDirectLoadLatency();
    }
  } else {
    op.latency += backend->EffectiveDirectLoadLatency();
  }
  TRENV_ASSIGN_OR_RETURN(
      BulkAccessStats stats,
      fault_handler_.AccessRange(mms_[worker], WindowAddr(*region), region->npages,
                                 /*write=*/false));
  op.latency += stats.latency;
  Count(reads_counter_);
  read_ms_.RecordDuration(op.latency);
  return op;
}

Result<RegionOp> RegionManager::MoveOwnership(RegionId id, uint32_t to, SimTime now) {
  Region& region = regions_[id];
  RegionOp op;
  op.latency += RevokeReaders(id, static_cast<int32_t>(to), now);
  if (region.owner >= 0 && region.owner != static_cast<int32_t>(to)) {
    UnmapWindow(region, static_cast<uint32_t>(region.owner));
  }
  // The new owner's reader mapping (if any) is replaced synchronously by the
  // owner mapping below; drop its lease bookkeeping.
  region.readers.erase(to);
  op.latency += config_.ownership_transfer;
  const uint32_t to_home = HomeOf(to);
  if (to_home != region.home) {
    // Pool-to-pool migration: the payload streams between pool nodes over
    // the inter-pool link, never through a worker sandbox (the Nexus story).
    const uint64_t bytes = region.npages * kPageSize;
    op.moved_bytes += bytes;
    op.latency += SimDuration::FromSecondsF(static_cast<double>(bytes) /
                                            config_.pool_to_pool_bytes_per_sec);
    region.home = to_home;
    ++migrations_;
    moved_bytes_ += bytes;
    Count(migrations_counter_);
    Count(moved_bytes_counter_, static_cast<double>(bytes));
  }
  region.owner = static_cast<int32_t>(to);
  MapOwner(region, to);
  return op;
}

Result<RegionOp> RegionManager::Transfer(RegionId id, uint32_t from, uint32_t to,
                                         SimTime now) {
  TRENV_ASSIGN_OR_RETURN(Region * region, Find(id));
  if (region->owner != static_cast<int32_t>(from)) {
    return Status::PermissionDenied("transfer requires current ownership");
  }
  if (to >= mms_.size()) {
    return Status::InvalidArgument("bad transfer target");
  }
  if (from == to) {
    return RegionOp{};
  }
  TRENV_ASSIGN_OR_RETURN(RegionOp op, MoveOwnership(id, to, now));
  ++transfers_;
  Count(transfers_counter_);
  transfer_ms_.RecordDuration(op.latency);
  return op;
}

Result<RegionOp> RegionManager::AcquireOwnership(RegionId id, uint32_t worker, SimTime now) {
  TRENV_ASSIGN_OR_RETURN(Region * region, Find(id));
  if (worker >= mms_.size()) {
    return Status::InvalidArgument("bad worker");
  }
  if (region->owner == static_cast<int32_t>(worker)) {
    return RegionOp{};
  }
  const bool recovery = region->owner < 0;
  TRENV_ASSIGN_OR_RETURN(RegionOp op, MoveOwnership(id, worker, now));
  if (recovery) {
    ++ownership_recoveries_;
    Count(recoveries_counter_);
  }
  transfer_ms_.RecordDuration(op.latency);
  return op;
}

Status RegionManager::DestroyRegion(RegionId id) {
  TRENV_ASSIGN_OR_RETURN(Region * region, Find(id));
  if (region->owner >= 0) {
    UnmapWindow(*region, static_cast<uint32_t>(region->owner));
  }
  for (auto& [worker, reader] : region->readers) {
    if (reader.mapped) {
      UnmapWindow(*region, worker);
    }
  }
  region->readers.clear();
  region->owner = -1;
  region->live = false;
  return pool_->FreePages(region->placement);
}

void RegionManager::ReleaseWorker(uint32_t worker) {
  if (worker >= mms_.size()) {
    return;
  }
  for (RegionId id = 0; id < regions_.size(); ++id) {
    Region& region = regions_[id];
    if (!region.live) {
      continue;
    }
    if (region.owner == static_cast<int32_t>(worker)) {
      // The bytes are durable in the pool; ownership simply becomes vacant
      // until a surviving worker acquires it (lease-based recovery).
      UnmapWindow(region, worker);
      region.owner = -1;
    }
    auto it = region.readers.find(worker);
    if (it != region.readers.end()) {
      if (it->second.mapped) {
        UnmapWindow(region, worker);
      }
      region.readers.erase(it);
    }
  }
}

}  // namespace trenv
