// PipelineDriver: runs stateful pipeline workloads (src/workload/pipeline.h)
// over a Cluster under one of three payload data planes:
//
//   * kTrEnvShared — payloads live in shared pool regions (RegionManager).
//     Chain edges hand off by ownership transfer (metadata-only unless the
//     region must migrate between pool homes); fan-out edges open leased
//     reader mappings and load straight from the pool; fan-in upgrades
//     ownership, revoking the readers.
//   * kCopyThroughWorker — every edge serializes the payload out of the
//     producer sandbox and into the consumer sandbox over the worker NICs
//     (two crossings of the payload per edge).
//   * kNasRoundtrip — every edge persists to NAS and reads back (two
//     crossings at NAS bandwidth).
//
// The driver interleaves its own (time, seq)-ordered action queue with the
// cluster's clocks through the pipeline-driver hooks: stage completions are
// observed via CompletionFn callbacks, data-plane costs are charged between
// a stage's readiness and its successor's submission, and node fault plans
// merge into the same loop — so a region-owner crash mid-pipeline exercises
// lease-based recovery with zero accepted-invocation loss.
#ifndef TRENV_SHSTATE_PIPELINE_DRIVER_H_
#define TRENV_SHSTATE_PIPELINE_DRIVER_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/status.h"
#include "src/common/time.h"
#include "src/platform/cluster.h"
#include "src/workload/pipeline.h"

namespace trenv {

enum class DataPlaneMode : uint8_t {
  kTrEnvShared,
  kCopyThroughWorker,
  kNasRoundtrip,
};
const char* DataPlaneModeName(DataPlaneMode mode);

struct PipelineDriverConfig {
  DataPlaneMode mode = DataPlaneMode::kTrEnvShared;
  // Copy-through-worker edge bandwidth (the worker NIC path).
  double worker_copy_bytes_per_sec = 10.0 * 1e9;
  // NAS round-trip edge bandwidth.
  double nas_bytes_per_sec = 1.0 * 1e9;
  // Per-edge control cost charged by both baselines (connection setup /
  // object naming); the TrEnv plane's metadata costs come from ShStateConfig.
  SimDuration handoff_metadata = SimDuration::FromMicrosF(15.0);
};

struct PipelineRunStats {
  uint64_t jobs = 0;
  uint64_t jobs_completed = 0;
  uint64_t stages_completed = 0;
  // Fabric bytes moved to hand payloads between stages — the headline fig27
  // metric. Baselines: two payload crossings per edge (NIC or NAS). TrEnv:
  // pool-to-pool migrations only; owner stores and reader loads go over the
  // memory-attached CXL path and are reported separately below.
  uint64_t handoff_bytes = 0;
  uint64_t pool_write_bytes = 0;  // TrEnv owner write-through (pool traffic)
  uint64_t refetch_bytes = 0;     // TrEnv reader re-fetches after revocation
  uint64_t transfers = 0;
  uint64_t migrations = 0;
  uint64_t invalidations = 0;
  uint64_t ownership_recoveries = 0;
  Histogram job_latency_ms;  // arrival -> final-stage completion
};

class PipelineDriver {
 public:
  // `cluster` must outlive the driver. kTrEnvShared requires the cluster's
  // shared-state plane (ClusterConfig::shstate.enabled).
  PipelineDriver(Cluster* cluster, PipelineDriverConfig config);
  PipelineDriver(const PipelineDriver&) = delete;
  PipelineDriver& operator=(const PipelineDriver&) = delete;

  // One traversal of `spec` per arrival; every stage function must already
  // be deployed. Runs the cluster to completion (single-use per driver).
  [[nodiscard]] Status Run(const PipelineSpec& spec,
                           const std::vector<SimTime>& arrivals);

  const PipelineRunStats& stats() const { return stats_; }

 private:
  struct Action {
    enum class Kind : uint8_t { kFault, kStageDone, kLaunch };
    SimTime when;
    uint64_t seq = 0;  // deterministic tiebreak at equal times
    Kind kind = Kind::kLaunch;
    uint32_t job = 0;
    uint32_t stage = 0;
    uint32_t node = 0;  // completing node (kStageDone only)
    size_t fault = 0;   // index into fault_plan_ (kFault only)
    bool operator>(const Action& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };
  struct JobState {
    SimTime arrival;
    RegionId region = kInvalidRegionId;
    std::vector<uint32_t> waiting;   // unfinished predecessors per stage
    std::vector<SimTime> ready;      // latest predecessor-output time
    std::vector<int32_t> done_node;  // completion node per stage (-1 pending)
    uint32_t stages_done = 0;
  };

  void Push(Action action);
  uint32_t PickAliveNode(uint32_t preferred) const;
  SimDuration BaselineEdgeCost(uint64_t payload_bytes) const;
  Status OnStageDone(const PipelineSpec& spec, uint32_t job, uint32_t stage,
                     uint32_t node, SimTime when);
  Status OnLaunch(const PipelineSpec& spec, uint32_t job, uint32_t stage,
                  SimTime when);

  Cluster* cluster_;
  PipelineDriverConfig config_;
  std::vector<std::vector<uint32_t>> succs_;
  std::vector<JobState> jobs_;
  std::priority_queue<Action, std::vector<Action>, std::greater<Action>> actions_;
  std::vector<FaultInjector::NodeEvent> fault_plan_;
  uint64_t next_seq_ = 0;
  PipelineRunStats stats_;
};

}  // namespace trenv

#endif  // TRENV_SHSTATE_PIPELINE_DRIVER_H_
