#include "src/shstate/pipeline_driver.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/common/units.h"

namespace trenv {

const char* DataPlaneModeName(DataPlaneMode mode) {
  switch (mode) {
    case DataPlaneMode::kTrEnvShared:
      return "trenv-shared";
    case DataPlaneMode::kCopyThroughWorker:
      return "copy-worker";
    case DataPlaneMode::kNasRoundtrip:
      return "nas-roundtrip";
  }
  return "unknown";
}

PipelineDriver::PipelineDriver(Cluster* cluster, PipelineDriverConfig config)
    : cluster_(cluster), config_(config) {}

void PipelineDriver::Push(Action action) {
  action.seq = next_seq_++;
  actions_.push(action);
}

uint32_t PipelineDriver::PickAliveNode(uint32_t preferred) const {
  const uint32_t n = static_cast<uint32_t>(cluster_->node_count());
  for (uint32_t k = 0; k < n; ++k) {
    const uint32_t candidate = (preferred + k) % n;
    if (cluster_->node_alive(candidate)) {
      return candidate;
    }
  }
  // Every node is mid-crash-window; the cluster parks the submit until a
  // restart, so the hint only has to be in range.
  return preferred % n;
}

SimDuration PipelineDriver::BaselineEdgeCost(uint64_t payload_bytes) const {
  const double bw = config_.mode == DataPlaneMode::kNasRoundtrip
                        ? config_.nas_bytes_per_sec
                        : config_.worker_copy_bytes_per_sec;
  // The producer writes the payload out and the consumer reads it back: two
  // full crossings per edge, payloads round-tripping through sandboxes.
  return config_.handoff_metadata +
         SimDuration::FromSecondsF(2.0 * static_cast<double>(payload_bytes) / bw);
}

Status PipelineDriver::OnStageDone(const PipelineSpec& spec, uint32_t job,
                                   uint32_t stage, uint32_t node, SimTime when) {
  JobState& js = jobs_[job];
  js.done_node[stage] = static_cast<int32_t>(node);
  ++stats_.stages_completed;
  SimTime t = when;
  RegionManager* sh = cluster_->shared_state();
  if (!succs_[stage].empty() && config_.mode == DataPlaneMode::kTrEnvShared) {
    if (sh == nullptr) {
      return Status::InvalidArgument("trenv-shared mode requires ClusterConfig::shstate.enabled");
    }
    // The stage publishes its output into the job's region. The first
    // producer creates it; any other stage upgrades to ownership first (a
    // fan-in write revokes every branch's reader mapping).
    if (js.region == kInvalidRegionId) {
      TRENV_ASSIGN_OR_RETURN(
          js.region, sh->CreateRegion(spec.name + "-job" + std::to_string(job),
                                      spec.payload_pages, node, t));
      t += sh->config().map_metadata;
    } else if (sh->OwnerOf(js.region) != static_cast<int32_t>(node)) {
      TRENV_ASSIGN_OR_RETURN(RegionOp upgrade, sh->AcquireOwnership(js.region, node, t));
      t += upgrade.latency;
      stats_.handoff_bytes += upgrade.moved_bytes;
    }
    TRENV_ASSIGN_OR_RETURN(RegionOp write, sh->WriteRegion(js.region, node, t));
    t += write.latency;
  }
  for (uint32_t s : succs_[stage]) {
    js.ready[s] = std::max(js.ready[s], t);
    if (--js.waiting[s] == 0) {
      Action launch;
      launch.when = js.ready[s];
      launch.kind = Action::Kind::kLaunch;
      launch.job = job;
      launch.stage = s;
      Push(launch);
    }
  }
  if (++js.stages_done == spec.stages.size()) {
    ++stats_.jobs_completed;
    stats_.job_latency_ms.Record((when - js.arrival).millis());
    if (js.region != kInvalidRegionId && sh != nullptr) {
      TRENV_RETURN_IF_ERROR(sh->DestroyRegion(js.region));
      js.region = kInvalidRegionId;
    }
  }
  return Status::Ok();
}

Status PipelineDriver::OnLaunch(const PipelineSpec& spec, uint32_t job,
                                uint32_t stage, SimTime when) {
  JobState& js = jobs_[job];
  const PipelineStage& st = spec.stages[stage];
  const uint64_t payload_bytes = spec.payload_pages * kPageSize;
  // Placement follows the data. Sources spread jobs round-robin; a chain
  // successor stays on the payload owner's node (metadata-only handoff);
  // fan-out branches fan across nodes from the producer so they overlap.
  uint32_t target;
  if (st.inputs.empty()) {
    target = job % static_cast<uint32_t>(cluster_->node_count());
  } else {
    const uint32_t pred = st.inputs.front();
    const int32_t pred_node = js.done_node[pred];
    target = pred_node < 0 ? 0 : static_cast<uint32_t>(pred_node);
    const std::vector<uint32_t>& siblings = succs_[pred];
    if (siblings.size() > 1) {
      uint32_t branch = 0;
      for (uint32_t i = 0; i < siblings.size(); ++i) {
        if (siblings[i] == stage) {
          branch = i;
          break;
        }
      }
      target = (target + branch) % static_cast<uint32_t>(cluster_->node_count());
    }
  }
  target = PickAliveNode(target);

  SimTime t = when;
  if (!st.inputs.empty()) {
    if (config_.mode == DataPlaneMode::kTrEnvShared) {
      RegionManager* sh = cluster_->shared_state();
      if (sh == nullptr) {
        return Status::InvalidArgument("trenv-shared mode requires ClusterConfig::shstate.enabled");
      }
      if (js.region != kInvalidRegionId) {
        const bool exclusive =
            st.inputs.size() == 1 && succs_[st.inputs.front()].size() == 1;
        if (exclusive) {
          // Chain handoff: Nexus-style ownership transfer, metadata-only
          // unless the region migrates between pool homes. A vacant owner
          // means the producer's node crashed after publishing — lease-based
          // recovery re-acquires from the durable pool copy.
          const int32_t owner = sh->OwnerOf(js.region);
          if (owner < 0) {
            TRENV_ASSIGN_OR_RETURN(RegionOp op, sh->AcquireOwnership(js.region, target, t));
            t += op.latency;
            stats_.handoff_bytes += op.moved_bytes;
          } else if (owner != static_cast<int32_t>(target)) {
            TRENV_ASSIGN_OR_RETURN(
                RegionOp op,
                sh->Transfer(js.region, static_cast<uint32_t>(owner), target, t));
            t += op.latency;
            stats_.handoff_bytes += op.moved_bytes;
          }
        } else {
          // Fan-out / fan-in consumer: leased reader mapping, loads straight
          // from the pool (one mapping covers all this stage's input edges —
          // the job's region is the shared aggregation buffer).
          TRENV_ASSIGN_OR_RETURN(RegionOp open, sh->OpenReader(js.region, target, t));
          t += open.latency;
          TRENV_ASSIGN_OR_RETURN(RegionOp read, sh->ReadRegion(js.region, target, t));
          t += read.latency;
          stats_.handoff_bytes += read.moved_bytes;
        }
      }
    } else {
      for (size_t i = 0; i < st.inputs.size(); ++i) {
        t += BaselineEdgeCost(payload_bytes);
        stats_.handoff_bytes += 2 * payload_bytes;
      }
    }
  }

  Cluster::SubmitOptions options;
  options.preferred_node = static_cast<int32_t>(target);
  const uint32_t j = job;
  const uint32_t s = stage;
  options.on_complete = [this, j, s](uint32_t node, SimTime done) {
    Action a;
    a.when = done;
    a.kind = Action::Kind::kStageDone;
    a.job = j;
    a.stage = s;
    a.node = node;
    Push(a);
  };
  return cluster_->Submit(t, st.function, std::move(options));
}

Status PipelineDriver::Run(const PipelineSpec& spec,
                           const std::vector<SimTime>& arrivals) {
  if (spec.stages.empty()) {
    return Status::InvalidArgument("pipeline has no stages");
  }
  for (uint32_t i = 0; i < spec.stages.size(); ++i) {
    for (uint32_t input : spec.stages[i].inputs) {
      if (input >= i) {
        return Status::InvalidArgument("pipeline stages must be topologically ordered");
      }
    }
  }
  succs_.assign(spec.stages.size(), {});
  for (uint32_t i = 0; i < spec.stages.size(); ++i) {
    for (uint32_t input : spec.stages[i].inputs) {
      succs_[input].push_back(i);
    }
  }
  jobs_.assign(arrivals.size(), JobState{});
  stats_ = PipelineRunStats{};
  stats_.jobs = arrivals.size();
  next_seq_ = 0;
  actions_ = decltype(actions_){};

  fault_plan_ = cluster_->PlanFaultEvents();
  for (size_t i = 0; i < fault_plan_.size(); ++i) {
    Action a;
    a.when = fault_plan_[i].time;
    a.kind = Action::Kind::kFault;
    a.fault = i;
    Push(a);
  }
  for (uint32_t j = 0; j < arrivals.size(); ++j) {
    JobState& js = jobs_[j];
    js.arrival = arrivals[j];
    js.waiting.resize(spec.stages.size());
    js.ready.assign(spec.stages.size(), arrivals[j]);
    js.done_node.assign(spec.stages.size(), -1);
    for (uint32_t i = 0; i < spec.stages.size(); ++i) {
      js.waiting[i] = static_cast<uint32_t>(spec.stages[i].inputs.size());
      if (spec.stages[i].inputs.empty()) {
        Action a;
        a.when = arrivals[j];
        a.kind = Action::Kind::kLaunch;
        a.job = j;
        a.stage = i;
        Push(a);
      }
    }
  }

  // Interleave the action queue with the cluster's clocks: execute every
  // action due at `now`, then advance all clocks in lock-step to the next
  // instant anything (action or scheduled event) happens. Completion
  // callbacks fire during AdvanceClocksTo and land back in the queue at the
  // very time the clocks just reached.
  SimTime now;
  while (true) {
    while (!actions_.empty() && actions_.top().when <= now) {
      const Action a = actions_.top();
      actions_.pop();
      switch (a.kind) {
        case Action::Kind::kFault:
          cluster_->ApplyFaultEvent(fault_plan_[a.fault]);
          break;
        case Action::Kind::kStageDone:
          TRENV_RETURN_IF_ERROR(OnStageDone(spec, a.job, a.stage, a.node, a.when));
          break;
        case Action::Kind::kLaunch:
          TRENV_RETURN_IF_ERROR(OnLaunch(spec, a.job, a.stage, a.when));
          break;
      }
    }
    std::optional<SimTime> next = cluster_->NextEventTime();
    if (!actions_.empty()) {
      const SimTime at = actions_.top().when;
      if (!next.has_value() || at < *next) {
        next = at;
      }
    }
    if (!next.has_value()) {
      break;
    }
    now = *next;
    cluster_->AdvanceClocksTo(now);
  }
  cluster_->DrainAll();

  if (config_.mode == DataPlaneMode::kTrEnvShared) {
    const RegionManager* sh = cluster_->shared_state();
    if (sh != nullptr) {
      stats_.pool_write_bytes = sh->pool_write_bytes();
      stats_.refetch_bytes = sh->refetch_bytes();
      stats_.transfers = sh->transfers();
      stats_.migrations = sh->migrations();
      stats_.invalidations = sh->invalidations();
      stats_.ownership_recoveries = sh->ownership_recoveries();
    }
  }
  return Status::Ok();
}

}  // namespace trenv
