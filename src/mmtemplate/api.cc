#include "src/mmtemplate/api.h"

#include <utility>

#include "src/common/cost_model.h"

namespace trenv {

namespace {
Status PrivilegeError() {
  return Status::PermissionDenied("mm-template device requires root (section 8.1)");
}
}  // namespace

MmtApi::MmtApi(const BackendRegistry* backends, obs::Registry* stats) : backends_(backends) {
  BindStats(stats != nullptr ? stats : &obs::DefaultRegistry());
}

void MmtApi::BindStats(obs::Registry* stats) {
  if (stats == nullptr) {
    creates_ = destroys_ = setup_pt_calls_ = attach_calls_ = nullptr;
    attach_metadata_bytes_ = attached_pages_ = nullptr;
    return;
  }
  creates_ = stats->GetCounter("mmt.creates");
  destroys_ = stats->GetCounter("mmt.destroys");
  setup_pt_calls_ = stats->GetCounter("mmt.setup_pt_calls");
  attach_calls_ = stats->GetCounter("mmt.attach_calls");
  attach_metadata_bytes_ = stats->GetCounter("mmt.attach_metadata_bytes");
  attached_pages_ = stats->GetCounter("mmt.attached_pages");
}

MmtId MmtApi::MmtCreate(std::string name) {
  if (!privileged_) {
    return kInvalidMmtId;
  }
  if (creates_ != nullptr) {
    creates_->Increment();
  }
  return registry_.Create(std::move(name));
}

Status MmtApi::MmtAddMap(MmtId id, Vaddr addr, uint64_t length, Protection prot, bool is_private,
                         int64_t file_id, uint64_t file_offset, std::string name) {
  if (!privileged_) {
    return PrivilegeError();
  }
  TRENV_ASSIGN_OR_RETURN(MmTemplate * tmpl, registry_.Lookup(id));
  Vma vma;
  vma.start = addr;
  vma.length = length;
  vma.prot = prot;
  vma.is_private = is_private;
  vma.type = file_id >= 0 ? VmaType::kFileBacked : VmaType::kAnonymous;
  vma.file_id = file_id;
  vma.file_offset = file_offset;
  vma.name = name.empty() ? (file_id >= 0 ? "file-map" : "anon-map") : std::move(name);
  return tmpl->AddVma(std::move(vma));
}

Result<MmtSetupResult> MmtApi::MmtSetupPt(MmtId id, Vaddr addr, uint64_t length,
                                          PoolOffset pool_offset, PoolKind pool) {
  if (!privileged_) {
    return PrivilegeError();
  }
  TRENV_ASSIGN_OR_RETURN(MmTemplate * tmpl, registry_.Lookup(id));
  if (!IsPageAligned(addr) || !IsPageAligned(length) || length == 0) {
    return Status::InvalidArgument("setup_pt range must be non-empty and page aligned");
  }
  // The whole range must lie within one recorded VMA, as CRIU drives it.
  const Vma* vma = tmpl->FindVma(addr);
  const Vma* vma_end = tmpl->FindVma(addr + length - 1);
  if (vma == nullptr || vma != vma_end) {
    return Status::FailedPrecondition("setup_pt range not covered by a single mmt_add_map");
  }
  MemoryBackend* backend = backends_->Get(pool);
  if (backend == nullptr) {
    return Status::NotFound("no backend registered for pool");
  }
  // The pool must already hold content at the offset: the deduplicator wrote
  // the consolidated image there during preprocessing.
  TRENV_ASSIGN_OR_RETURN(PageContent content_base, backend->ReadContent(pool_offset));

  const uint64_t npages = length / kPageSize;
  PteFlags flags;
  flags.pool = pool;
  // Byte-addressable pools (CXL) get valid + write-protected PTEs so reads
  // are plain loads; message pools (RDMA/NAS) get invalid lazy PTEs.
  flags.valid = backend->byte_addressable();
  flags.write_protected = true;
  tmpl->page_table().MapRange(AddrToVpn(addr), npages, flags, pool_offset, content_base);
  if (!flags.valid) {
    tmpl->AddLazyPages(npages);
  }

  MmtSetupResult result;
  result.latency = cost::kMmtSetupPtPerRun + cost::kMmtIoctl;
  if (setup_pt_calls_ != nullptr) {
    setup_pt_calls_->Increment();
  }
  return result;
}

Result<MmtAttachResult> MmtApi::MmtAttach(MmtId id, MmStruct* target) {
  if (!privileged_) {
    return PrivilegeError();
  }
  if (target == nullptr) {
    return Status::InvalidArgument("null target mm");
  }
  TRENV_ASSIGN_OR_RETURN(MmTemplate * tmpl, registry_.Lookup(id));
  // Shared-region bits (src/shstate/) are per-mapping coherence state and
  // must never appear in a template: templates are immutable rack-shared
  // metadata, and cloning an owner/dirty bit would fork the single-writer
  // protocol into every attached sandbox.
  bool clean = true;
  tmpl->page_table().ForEachRun([&clean](Vpn, const PteRun& run) {
    clean = clean && !run.flags.shared && !run.flags.owner && !run.flags.dirty;
  });
  if (!clean) {
    return Status::Internal("template page table carries shared-region PTE bits");
  }
  // Validate first so a failed attach leaves the target untouched.
  for (const auto& [start, vma] : tmpl->vmas()) {
    const Vma* existing = target->FindVma(vma.start);
    const Vma* existing_end = target->FindVma(vma.end() - 1);
    if (existing != nullptr || existing_end != nullptr) {
      return Status::AlreadyExists("target already maps a template range: " + vma.name);
    }
  }
  for (const auto& [start, vma] : tmpl->vmas()) {
    TRENV_RETURN_IF_ERROR(target->AddVma(vma));
  }
  target->page_table().CloneFrom(tmpl->page_table());
  tmpl->RecordAttach();

  MmtAttachResult result;
  result.metadata_bytes = tmpl->MetadataBytes();
  result.mapped_pages = tmpl->MappedPages();
  result.lazy_pages = tmpl->lazy_pages();
  result.latency =
      cost::kMmtIoctl + SimDuration::FromSecondsF(static_cast<double>(result.metadata_bytes) /
                                                  cost::kMmtAttachCopyBytesPerSec);
  if (attach_calls_ != nullptr) {
    attach_calls_->Increment();
    attach_metadata_bytes_->Add(static_cast<double>(result.metadata_bytes));
    attached_pages_->Add(static_cast<double>(result.mapped_pages));
  }
  return result;
}

Status MmtApi::MmtDestroy(MmtId id) {
  if (!privileged_) {
    return PrivilegeError();
  }
  if (destroys_ != nullptr) {
    destroys_->Increment();
  }
  return registry_.Destroy(id);
}

}  // namespace trenv
