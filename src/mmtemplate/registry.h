// MmTemplateRegistry: the XArray-indexed table of live templates (paper
// section 7: "all templates are managed using an XArray, indexed by their
// identifiers"). Owns the templates.
#ifndef TRENV_MMTEMPLATE_REGISTRY_H_
#define TRENV_MMTEMPLATE_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/mmtemplate/mm_template.h"

namespace trenv {

class MmTemplateRegistry {
 public:
  // Creates a fresh template and returns its id (ids are never reused).
  MmtId Create(std::string name);
  Result<MmTemplate*> Lookup(MmtId id);
  Result<const MmTemplate*> Lookup(MmtId id) const;
  Status Destroy(MmtId id);

  size_t size() const { return templates_.size(); }
  // Visits every registered template (promotion sweeps rewrite backings).
  void ForEach(const std::function<void(MmTemplate&)>& fn);
  // Aggregate metadata footprint of all registered templates.
  uint64_t TotalMetadataBytes() const;

 private:
  MmtId next_id_ = 1;
  std::map<MmtId, std::unique_ptr<MmTemplate>> templates_;
};

}  // namespace trenv

#endif  // TRENV_MMTEMPLATE_REGISTRY_H_
