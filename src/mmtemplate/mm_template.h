// MmTemplate: an in-kernel memory-state template (paper Fig 8).
//
// A template looks like an mm_struct but (1) is not bound to any process,
// (2) treats all remote memory as read-only with copy-on-write, and (3) has
// fine-grained control over which virtual pages map to which physical pool
// offsets. Attaching copies only this metadata — never memory pages.
#ifndef TRENV_MMTEMPLATE_MM_TEMPLATE_H_
#define TRENV_MMTEMPLATE_MM_TEMPLATE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/simkernel/page_table.h"
#include "src/simkernel/vma.h"

namespace trenv {

using MmtId = uint64_t;
inline constexpr MmtId kInvalidMmtId = 0;

class MmTemplate {
 public:
  MmTemplate(MmtId id, std::string name) : id_(id), name_(std::move(name)) {}
  MmTemplate(const MmTemplate&) = delete;
  MmTemplate& operator=(const MmTemplate&) = delete;

  MmtId id() const { return id_; }
  const std::string& name() const { return name_; }

  Status AddVma(Vma vma);
  const std::map<Vaddr, Vma>& vmas() const { return vmas_; }
  const Vma* FindVma(Vaddr addr) const;

  PageTable& page_table() { return table_; }
  const PageTable& page_table() const { return table_; }

  // Size of the metadata copied by an attach: VMA records + PTE runs.
  uint64_t MetadataBytes() const;

  uint64_t attach_count() const { return attach_count_; }
  void RecordAttach() { ++attach_count_; }

  // Total pages the template maps (all remote, by construction).
  uint64_t MappedPages() const { return table_.mapped_pages(); }

  // Pages mapped with invalid lazy PTEs (message-model pools), maintained by
  // MmtSetupPt so attach needn't rescan the page table.
  uint64_t lazy_pages() const { return lazy_pages_; }
  void AddLazyPages(uint64_t n) { lazy_pages_ += n; }

 private:
  MmtId id_;
  std::string name_;
  std::map<Vaddr, Vma> vmas_;
  PageTable table_;
  uint64_t attach_count_ = 0;
  uint64_t lazy_pages_ = 0;
};

}  // namespace trenv

#endif  // TRENV_MMTEMPLATE_MM_TEMPLATE_H_
