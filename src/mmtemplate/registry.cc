#include "src/mmtemplate/registry.h"

namespace trenv {

MmtId MmTemplateRegistry::Create(std::string name) {
  const MmtId id = next_id_++;
  templates_.emplace(id, std::make_unique<MmTemplate>(id, std::move(name)));
  return id;
}

Result<MmTemplate*> MmTemplateRegistry::Lookup(MmtId id) {
  auto it = templates_.find(id);
  if (it == templates_.end()) {
    return Status::NotFound("no mm-template with this id");
  }
  return it->second.get();
}

Result<const MmTemplate*> MmTemplateRegistry::Lookup(MmtId id) const {
  auto it = templates_.find(id);
  if (it == templates_.end()) {
    return Status::NotFound("no mm-template with this id");
  }
  return static_cast<const MmTemplate*>(it->second.get());
}

Status MmTemplateRegistry::Destroy(MmtId id) {
  if (templates_.erase(id) == 0) {
    return Status::NotFound("no mm-template with this id");
  }
  return Status::Ok();
}

void MmTemplateRegistry::ForEach(const std::function<void(MmTemplate&)>& fn) {
  for (auto& [id, tmpl] : templates_) {
    fn(*tmpl);
  }
}

uint64_t MmTemplateRegistry::TotalMetadataBytes() const {
  uint64_t total = 0;
  for (const auto& [id, tmpl] : templates_) {
    total += tmpl->MetadataBytes();
  }
  return total;
}

}  // namespace trenv
