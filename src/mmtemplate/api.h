// The mm-template user API (paper Fig 11), exposed in the real system as
// ioctls on a root-only pseudo-device. Call sequence for preprocessing:
//
//   MmtId id = api.MmtCreate("func-x");
//   api.MmtAddMap(id, addr, len, prot, MAP_PRIVATE, -1, 0);   // VMAs
//   api.MmtSetupPt(id, addr, len, pool_offset, PoolKind::kCxl);  // PTEs
//
// and on the critical path:
//
//   api.MmtAttach(id, &process_mm);   // copies metadata only
//
// CXL-backed ranges get valid write-protected PTEs (direct loads, CoW on
// store); RDMA/NAS ranges get invalid pool-tagged PTEs (major fault fetch).
#ifndef TRENV_MMTEMPLATE_API_H_
#define TRENV_MMTEMPLATE_API_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/common/time.h"
#include "src/mempool/backend.h"
#include "src/mmtemplate/registry.h"
#include "src/obs/registry.h"
#include "src/simkernel/mm_struct.h"

namespace trenv {

struct MmtAttachResult {
  // Time spent on the critical path: one ioctl plus the metadata copy.
  SimDuration latency;
  uint64_t metadata_bytes = 0;
  uint64_t mapped_pages = 0;
  // Pages the template maps with invalid (fault-on-first-touch) PTEs —
  // RDMA/NAS-homed content. Zero means every page reads directly
  // (byte-addressable pools), so a working-set prefetch has nothing to do.
  uint64_t lazy_pages = 0;
};

struct MmtSetupResult {
  // Offline preprocessing cost (not on the restore critical path).
  SimDuration latency;
};

class MmtApi {
 public:
  // Stats land in `stats` (defaults to the process-wide obs::DefaultRegistry()
  // — the zero-plumbing path for layers no MetricsCollector reaches).
  explicit MmtApi(const BackendRegistry* backends, obs::Registry* stats = nullptr);

  // Re-points the mmt.* counters at another registry (e.g. a platform's own).
  void BindStats(obs::Registry* stats);

  // The real pseudo-device is accessible only to root (paper section 8.1).
  // Dropping privilege makes every call fail with PERMISSION_DENIED.
  void set_caller_privileged(bool privileged) { privileged_ = privileged; }
  bool caller_privileged() const { return privileged_; }

  // mmt_create: allocates a template and returns its identifier
  // (kInvalidMmtId if the caller lacks privilege).
  MmtId MmtCreate(std::string name);

  // mmt_add_map: records a virtual memory area in the template. `file_id` is
  // -1 for anonymous mappings (heap/stack); mm-template supports both —
  // removing the device-DAX limitation is one of the paper's kernel changes.
  Status MmtAddMap(MmtId id, Vaddr addr, uint64_t length, Protection prot, bool is_private,
                   int64_t file_id, uint64_t file_offset, std::string name = {});

  // mmt_setup_pt: points [addr, addr+length) at `pool_offset` within the
  // given pool. The pool must already hold content for that range (written by
  // the deduplicator). Installs write-protected valid PTEs for
  // byte-addressable pools and invalid lazy PTEs otherwise.
  Result<MmtSetupResult> MmtSetupPt(MmtId id, Vaddr addr, uint64_t length,
                                    PoolOffset pool_offset, PoolKind pool);

  // mmt_attach: copies the template's VMAs + page-table runs into `target`.
  // The target must not have overlapping VMAs. Safe to call any number of
  // times across any number of processes — that is the sharing mechanism.
  Result<MmtAttachResult> MmtAttach(MmtId id, MmStruct* target);

  // mmt_destroy: drops the template (pool blocks are owned by the image
  // store, not the template, so they are not freed here).
  Status MmtDestroy(MmtId id);

  MmTemplateRegistry& registry() { return registry_; }
  const MmTemplateRegistry& registry() const { return registry_; }

 private:
  const BackendRegistry* backends_;
  MmTemplateRegistry registry_;
  bool privileged_ = true;
  obs::Counter* creates_ = nullptr;
  obs::Counter* destroys_ = nullptr;
  obs::Counter* setup_pt_calls_ = nullptr;
  obs::Counter* attach_calls_ = nullptr;
  obs::Counter* attach_metadata_bytes_ = nullptr;
  obs::Counter* attached_pages_ = nullptr;
};

}  // namespace trenv

#endif  // TRENV_MMTEMPLATE_API_H_
