#include "src/mmtemplate/mm_template.h"

namespace trenv {

Status MmTemplate::AddVma(Vma vma) {
  if (!IsPageAligned(vma.start) || !IsPageAligned(vma.length) || vma.length == 0) {
    return Status::InvalidArgument("template VMA must be non-empty and page aligned");
  }
  auto next = vmas_.lower_bound(vma.start);
  if (next != vmas_.end() && vma.Overlaps(next->second.start, next->second.length)) {
    return Status::AlreadyExists("template VMA overlaps " + next->second.name);
  }
  if (next != vmas_.begin()) {
    auto prev = std::prev(next);
    if (vma.Overlaps(prev->second.start, prev->second.length)) {
      return Status::AlreadyExists("template VMA overlaps " + prev->second.name);
    }
  }
  vmas_.emplace(vma.start, std::move(vma));
  return Status::Ok();
}

const Vma* MmTemplate::FindVma(Vaddr addr) const {
  auto it = vmas_.upper_bound(addr);
  if (it == vmas_.begin()) {
    return nullptr;
  }
  --it;
  return it->second.Contains(addr) ? &it->second : nullptr;
}

uint64_t MmTemplate::MetadataBytes() const {
  constexpr uint64_t kPerVmaBytes = 184;  // sizeof(vm_area_struct) on x86-64
  return kPerVmaBytes * vmas_.size() + table_.MetadataBytes();
}

}  // namespace trenv
