#include "src/vm/guest_memory.h"

#include <algorithm>

#include "src/common/cost_model.h"

namespace trenv {

GuestMemory::GuestMemory(uint64_t guest_bytes) : guest_bytes_(PageAlignUp(guest_bytes)) {
  // One VMA spanning the whole guest-physical space; zero-filled on demand
  // like fresh guest RAM.
  Vma ram = MakeAnonVma(0, guest_bytes_, Protection::ReadWrite(), "guest-ram");
  (void)ept_.AddVma(std::move(ram));
}

Result<SimDuration> GuestMemory::RestoreByCopy(uint64_t image_bytes, FrameAllocator* frames) {
  const uint64_t npages = BytesToPages(std::min(image_bytes, guest_bytes_));
  TRENV_ASSIGN_OR_RETURN(FrameId frame, frames->AllocatePages(npages));
  PteFlags flags;
  flags.valid = true;
  flags.pool = PoolKind::kLocalDram;
  ept_.page_table().MapRange(0, npages, flags, frame, 0x6E57);
  return SimDuration::FromSecondsF(static_cast<double>(npages * kPageSize) /
                                   cost::kVmMemCopyBytesPerSec);
}

Result<SimDuration> GuestMemory::RestoreByTemplate(MmtApi* api, MmtId template_id) {
  // The template owns the layout: drop the placeholder RAM VMA first.
  if (ept_.FindVma(0) != nullptr) {
    TRENV_RETURN_IF_ERROR(ept_.RemoveVma(0));
  }
  TRENV_ASSIGN_OR_RETURN(MmtAttachResult attach, api->MmtAttach(template_id, &ept_));
  return attach.latency + cost::kVmMmapRestore;
}

Result<BulkAccessStats> GuestMemory::Touch(Vaddr gpa, uint64_t npages, bool write,
                                           FaultHandler& handler) {
  TRENV_ASSIGN_OR_RETURN(BulkAccessStats stats, handler.AccessRange(ept_, gpa, npages, write));
  // Every fault on a second-level entry is a VM exit on top of the kernel
  // fault cost; pre-populated (valid) CXL entries never exit.
  const uint64_t exits = stats.minor_faults + stats.major_faults + stats.cow_faults;
  ept_violations_ += exits;
  stats.latency += cost::kEptViolation * static_cast<double>(exits);
  return stats;
}

Result<MmtId> BuildGuestTemplate(MmtApi* api, MemoryBackend* pool, const std::string& name,
                                 uint64_t image_bytes, PageContent content_base) {
  const uint64_t npages = BytesToPages(image_bytes);
  TRENV_ASSIGN_OR_RETURN(PoolOffset base, pool->AllocatePages(npages));
  TRENV_RETURN_IF_ERROR(pool->WriteContent(base, npages, content_base));
  const MmtId id = api->MmtCreate(name);
  if (id == kInvalidMmtId) {
    return Status::PermissionDenied("mm-template device requires root");
  }
  TRENV_RETURN_IF_ERROR(api->MmtAddMap(id, 0, npages * kPageSize, Protection::ReadWrite(),
                                       /*is_private=*/true, -1, 0, "guest-image"));
  TRENV_RETURN_IF_ERROR(
      api->MmtSetupPt(id, 0, npages * kPageSize, base, pool->kind()).status());
  return id;
}

}  // namespace trenv
