#include "src/vm/vm_config.h"

namespace trenv {

VmSystemConfig E2bConfig() {
  VmSystemConfig config;
  config.name = "E2B";
  config.pooled_sandbox = false;
  config.clone_into_cgroup = false;
  config.mem_restore = VmSystemConfig::MemRestore::kSnapshotResume;
  config.share_guest_memory = false;
  config.storage = VmSystemConfig::Storage::kVirtioBlk;
  return config;
}

VmSystemConfig E2bPlusConfig() {
  VmSystemConfig config = E2bConfig();
  config.name = "E2B+";
  // RunD's rootfs mapping scheme: host page cache shared, guest bypassed.
  // Its memfd-backed shared memory is fundamentally incompatible with CoW
  // guest-memory sharing (section 6.1), so share_guest_memory stays false.
  config.storage = VmSystemConfig::Storage::kRundRootfs;
  return config;
}

VmSystemConfig VanillaChConfig() {
  VmSystemConfig config;
  config.name = "CH";
  config.mem_restore = VmSystemConfig::MemRestore::kFullCopy;
  config.storage = VmSystemConfig::Storage::kVirtioBlk;
  return config;
}

VmSystemConfig TrEnvVmConfig() {
  VmSystemConfig config;
  config.name = "TrEnv";
  config.pooled_sandbox = true;
  config.clone_into_cgroup = true;
  config.mem_restore = VmSystemConfig::MemRestore::kMmapTemplate;
  config.share_guest_memory = true;
  config.storage = VmSystemConfig::Storage::kPmemUnionFs;
  return config;
}

VmSystemConfig TrEnvSConfig() {
  VmSystemConfig config = TrEnvVmConfig();
  config.name = "TrEnv-S";
  config.browser_sharing = true;
  return config;
}

}  // namespace trenv
