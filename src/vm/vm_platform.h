// AgentVmPlatform: the VM-based agent-serving platform of paper section 6,
// driving E2B / E2B+ / vanilla CH / TrEnv / TrEnv-S configurations through
// the DES with CPU overcommitment (e.g. 200 agents on 20 physical cores).
//
// Each launched agent gets a microVM (startup per Fig 23), replays its
// recorded LLM trace (deterministic execution), reads files through its
// storage stack (page-cache behaviour per Fig 15/16), and optionally shares
// a browser instance (section 6.2).
#ifndef TRENV_VM_VM_PLATFORM_H_
#define TRENV_VM_VM_PLATFORM_H_

#include <map>
#include <memory>
#include <string>

#include "src/agents/browser.h"
#include "src/agents/llm_trace.h"
#include "src/common/histogram.h"
#include "src/common/status.h"
#include "src/obs/trace.h"
#include "src/sim/cpu.h"
#include "src/sim/event_scheduler.h"
#include "src/vm/micro_vm.h"

namespace trenv {

struct AgentPlatformConfig {
  double cores = 20;  // overcommit target of section 9.6
  uint64_t seed = 42;
  // Optional tracer; the platform registers as one trace process. Not owned.
  obs::Tracer* tracer = nullptr;
  std::string trace_process = "agent-vm";
};

struct AgentMetrics {
  Histogram e2e_s;       // end-to-end execution latency (seconds)
  Histogram startup_ms;  // VM startup latency
  uint64_t runs = 0;
  uint64_t repurposed = 0;
  uint64_t peak_local_bytes = 0;  // peak per-VM local memory seen
};

class AgentVmPlatform {
 public:
  AgentVmPlatform(VmSystemConfig system, AgentPlatformConfig config = {});
  AgentVmPlatform(const AgentVmPlatform&) = delete;
  AgentVmPlatform& operator=(const AgentVmPlatform&) = delete;

  const VmSystemConfig& system() const { return system_; }

  // Records the agent's deterministic LLM trace (done once per agent).
  Status DeployAgent(const AgentProfile& profile);
  // Launches one instance of `agent` at absolute time t.
  Status SubmitLaunch(SimTime t, const std::string& agent);
  void RunToCompletion() { scheduler_.RunUntilIdle(); }

  EventScheduler& scheduler() { return scheduler_; }
  FairShareCpu& cpu() { return cpu_; }
  PageCache& host_cache() { return host_cache_; }
  SharedBrowserPool& browsers() { return browsers_; }
  TimeSeriesGauge& memory_gauge() { return memory_gauge_; }
  const std::map<std::string, AgentMetrics>& metrics() const { return metrics_; }
  AgentMetrics& MetricsFor(const std::string& agent) { return metrics_[agent]; }
  uint64_t completed_runs() const { return completed_; }
  uint32_t pooled_sandboxes() const { return pooled_sandboxes_; }
  const AgentTrace* TraceFor(const std::string& agent) const;

 private:
  struct Deployment {
    AgentProfile profile;
    AgentTrace trace;
    FileId base_file;
  };
  struct Run {
    const Deployment* deployment = nullptr;
    std::unique_ptr<MicroVm> vm;
    size_t step = 0;
    uint64_t base_read_offset_pages = 0;
    SimTime submit_time;
    SimTime exec_start;
    VmStartupBreakdown startup;
    Browser* browser = nullptr;
    double memory_scale = 1.0;  // shaves the in-VM browser share when shared
    obs::SpanId root_span = obs::kInvalidSpanId;
  };

  void StartRun(uint64_t token);
  void BeginExecution(uint64_t token);
  void AdvanceStep(uint64_t token);
  void FinishRun(uint64_t token);
  void RecomputeMemory();

  VmSystemConfig system_;
  AgentPlatformConfig config_;
  obs::Tracer* tracer_ = nullptr;
  obs::ProcessId trace_pid_ = 0;
  EventScheduler scheduler_;
  FairShareCpu cpu_;
  PageCache host_cache_;
  SharedBrowserPool browsers_;
  TimeSeriesGauge memory_gauge_;
  std::map<std::string, Deployment> deployments_;
  std::map<std::string, AgentMetrics> metrics_;
  std::map<uint64_t, Run> runs_;
  uint64_t next_token_ = 1;
  uint64_t next_vm_id_ = 1;
  uint32_t concurrent_startups_ = 0;
  uint32_t pooled_sandboxes_ = 0;
  uint64_t completed_ = 0;
};

}  // namespace trenv

#endif  // TRENV_VM_VM_PLATFORM_H_
