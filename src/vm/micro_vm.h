// MicroVm: one agent VM instance — its memory components and the startup
// model of Fig 23.
#ifndef TRENV_VM_MICRO_VM_H_
#define TRENV_VM_MICRO_VM_H_

#include <cstdint>
#include <memory>

#include "src/agents/agent_profile.h"
#include "src/common/time.h"
#include "src/vm/virtio_device.h"
#include "src/vm/vm_config.h"

namespace trenv {

// Startup latency breakdown for a microVM launch.
struct VmStartupBreakdown {
  SimDuration network;
  SimDuration cgroup;
  SimDuration vmm;     // VMM spawn + device setup (+ rootfs map setup)
  SimDuration memory;  // guest memory restoration
  SimDuration guest;   // guest userspace wake-up

  SimDuration Total() const { return network + cgroup + vmm + memory + guest; }
  bool sandbox_repurposed = false;
};

// Computes the launch cost under `concurrent` simultaneous launches,
// `pooled_sandboxes` available for reuse.
VmStartupBreakdown ComputeVmStartup(const VmSystemConfig& config, const AgentProfile& profile,
                                    uint32_t concurrent, bool sandbox_available);

class MicroVm {
 public:
  MicroVm(uint64_t id, const AgentProfile* profile, const VmSystemConfig* config,
          PageCache* host_cache, FileId base_file);

  uint64_t id() const { return id_; }
  const AgentProfile& profile() const { return *profile_; }
  GuestStorage& storage() { return storage_; }

  // Applies a dynamic-memory allocation/release; returns the *local* byte
  // delta (CXL-shared read-only pages do not consume node DRAM).
  int64_t ApplyMemoryDelta(int64_t delta_bytes);

  // Local node memory attributable to this VM right now (anon + guest page
  // cache + fixed guest-kernel/VMM overhead).
  uint64_t LocalBytes() const;
  uint64_t anon_local_bytes() const { return anon_local_bytes_; }

 private:
  uint64_t id_;
  const AgentProfile* profile_;
  const VmSystemConfig* config_;
  GuestStorage storage_;
  uint64_t anon_local_bytes_ = 0;
};

}  // namespace trenv

#endif  // TRENV_VM_MICRO_VM_H_
