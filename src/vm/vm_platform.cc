#include "src/vm/vm_platform.h"

#include <algorithm>
#include <utility>

#include "src/common/cost_model.h"
#include "src/common/log.h"

namespace trenv {

namespace {
// Stable file identity for an agent's base image content.
FileId BaseFileFor(const std::string& agent) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : agent) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return static_cast<FileId>(h & 0x7fffff);
}
}  // namespace

AgentVmPlatform::AgentVmPlatform(VmSystemConfig system, AgentPlatformConfig config)
    : system_(std::move(system)),
      config_(config),
      cpu_(&scheduler_, config.cores),
      host_cache_("host"),
      browsers_(system_.agents_per_browser) {
  if (config_.tracer != nullptr) {
    tracer_ = config_.tracer;
    trace_pid_ = tracer_->RegisterProcess(config_.trace_process,
                                          [this] { return scheduler_.now(); });
  }
}

Status AgentVmPlatform::DeployAgent(const AgentProfile& profile) {
  if (deployments_.contains(profile.name)) {
    return Status::AlreadyExists("agent already deployed: " + profile.name);
  }
  Deployment deployment;
  deployment.profile = profile;
  deployment.trace = RecordTrace(profile, config_.seed);
  deployment.base_file = BaseFileFor(profile.name);
  deployments_.emplace(profile.name, std::move(deployment));
  return Status::Ok();
}

const AgentTrace* AgentVmPlatform::TraceFor(const std::string& agent) const {
  auto it = deployments_.find(agent);
  return it == deployments_.end() ? nullptr : &it->second.trace;
}

Status AgentVmPlatform::SubmitLaunch(SimTime t, const std::string& agent) {
  auto it = deployments_.find(agent);
  if (it == deployments_.end()) {
    return Status::NotFound("no such agent: " + agent);
  }
  const uint64_t token = next_token_++;
  Run& run = runs_[token];
  run.deployment = &it->second;
  run.submit_time = t;
  scheduler_.ScheduleAt(t, [this, token] { StartRun(token); });
  return Status::Ok();
}

void AgentVmPlatform::StartRun(uint64_t token) {
  Run& run = runs_.at(token);
  const AgentProfile& profile = run.deployment->profile;

  const bool sandbox_available = pooled_sandboxes_ > 0;
  run.startup =
      ComputeVmStartup(system_, profile, concurrent_startups_, sandbox_available);
  if (run.startup.sandbox_repurposed) {
    --pooled_sandboxes_;
  }
  ++concurrent_startups_;

  if (tracer_ != nullptr) {
    const obs::Loc loc{trace_pid_, token};
    run.root_span = tracer_->StartSpan(loc, "agent.run", "agent");
    tracer_->Annotate(run.root_span, "agent", profile.name);
    tracer_->Annotate(run.root_span, "repurposed",
                      static_cast<int64_t>(run.startup.sandbox_repurposed ? 1 : 0));
    // Boot phases play out back-to-back starting now (Fig 23 decomposition).
    SimTime t = scheduler_.now();
    const std::pair<const char*, SimDuration> phases[] = {
        {"boot.network", run.startup.network}, {"boot.cgroup", run.startup.cgroup},
        {"boot.vmm", run.startup.vmm},         {"boot.memory", run.startup.memory},
        {"boot.guest", run.startup.guest}};
    for (const auto& [name, duration] : phases) {
      tracer_->RecordSpanAt(loc, name, "boot", t, duration, run.root_span);
      t = t + duration;
    }
  }

  run.vm = std::make_unique<MicroVm>(next_vm_id_++, &profile, &system_, &host_cache_,
                                     run.deployment->base_file);
  // The in-VM browser share moves into the shared browser when sharing is on.
  if (system_.browser_sharing && profile.uses_browser) {
    run.memory_scale = 1.0 - static_cast<double>(kBrowserBaseBytes) /
                                 static_cast<double>(profile.dynamic_memory_bytes);
    run.memory_scale = std::max(0.1, run.memory_scale);
  }
  RecomputeMemory();

  scheduler_.ScheduleAfter(run.startup.Total(), [this, token] {
    --concurrent_startups_;
    BeginExecution(token);
  });
}

void AgentVmPlatform::BeginExecution(uint64_t token) {
  Run& run = runs_.at(token);
  run.exec_start = scheduler_.now();
  MetricsFor(run.deployment->profile.name).startup_ms.Record(run.startup.Total().millis());
  if (run.startup.sandbox_repurposed) {
    MetricsFor(run.deployment->profile.name).repurposed += 1;
  }
  if (system_.browser_sharing && run.deployment->profile.uses_browser) {
    run.browser = browsers_.Acquire();
    RecomputeMemory();
  }
  AdvanceStep(token);
}

void AgentVmPlatform::AdvanceStep(uint64_t token) {
  Run& run = runs_.at(token);
  if (run.step >= run.deployment->trace.steps.size()) {
    FinishRun(token);
    return;
  }
  const AgentStep& step = run.deployment->trace.steps[run.step++];

  if (const auto* llm = std::get_if<LlmCallStep>(&step)) {
    // Waiting on the (replayed) inference server: no CPU consumed.
    if (tracer_ != nullptr) {
      tracer_->RecordSpanAt({trace_pid_, token}, "llm.call", "agent", scheduler_.now(),
                            llm->response_latency, run.root_span);
    }
    scheduler_.ScheduleAfter(llm->response_latency, [this, token] { AdvanceStep(token); });
    return;
  }

  const auto& tool = std::get<ToolStep>(step);
  // Memory allocation happens up front.
  const auto scaled_delta = static_cast<int64_t>(
      static_cast<double>(tool.memory_delta_bytes) * run.memory_scale);
  run.vm->ApplyMemoryDelta(scaled_delta);

  // File I/O through the storage stack: mostly base-image reads, a slice of
  // freshly written data.
  SimDuration io_latency = tool.io;
  if (tool.file_read_bytes > 0) {
    const uint64_t total_pages = BytesToPages(tool.file_read_bytes);
    const uint64_t base_pages = total_pages * 85 / 100;
    const uint64_t write_pages = total_pages - base_pages;
    GuestReadOutcome base = run.vm->storage().ReadBase(run.base_read_offset_pages, base_pages);
    run.base_read_offset_pages += base_pages;
    GuestReadOutcome written = run.vm->storage().WriteAndReadBack(write_pages);
    io_latency += base.latency + written.latency;
  }
  RecomputeMemory();

  // CPU demand: browser work on a shared instance is cheaper per agent.
  double cpu_factor = 1.0;
  if (tool.uses_browser && system_.browser_sharing) {
    cpu_factor = kSharedBrowserCpuFactor;
  }
  const SimDuration cpu_work = tool.cpu * cpu_factor;
  obs::SpanId tool_span = obs::kInvalidSpanId;
  if (tracer_ != nullptr) {
    tool_span = tracer_->StartSpan({trace_pid_, token}, "tool.step", "agent");
    tracer_->Annotate(tool_span, "io_ms", io_latency.millis());
    tracer_->Annotate(tool_span, "read_bytes", static_cast<int64_t>(tool.file_read_bytes));
    tracer_->Annotate(tool_span, "browser", static_cast<int64_t>(tool.uses_browser ? 1 : 0));
  }
  cpu_.Submit(cpu_work, [this, token, io_latency, tool_span] {
    scheduler_.ScheduleAfter(io_latency, [this, token, tool_span] {
      if (tracer_ != nullptr) {
        tracer_->EndSpan(tool_span);
      }
      AdvanceStep(token);
    });
  });
}

void AgentVmPlatform::FinishRun(uint64_t token) {
  Run& run = runs_.at(token);
  const std::string agent = run.deployment->profile.name;
  AgentMetrics& metrics = MetricsFor(agent);
  metrics.runs += 1;
  metrics.e2e_s.Record((scheduler_.now() - run.exec_start).seconds());
  metrics.peak_local_bytes = std::max(metrics.peak_local_bytes, run.vm->LocalBytes());
  ++completed_;

  if (tracer_ != nullptr) {
    tracer_->EndSpan(run.root_span);
  }
  if (run.browser != nullptr) {
    browsers_.Release(run.browser);
    run.browser = nullptr;
  }
  // Tear the VM down: guest memory and private caches are released; the
  // hypervisor sandbox returns to the pool (TrEnv) or is discarded.
  run.vm->storage().DropCaches();
  if (system_.pooled_sandbox) {
    ++pooled_sandboxes_;
  }
  runs_.erase(token);
  RecomputeMemory();
}

void AgentVmPlatform::RecomputeMemory() {
  uint64_t total = host_cache_.cached_bytes() + browsers_.TotalMemoryBytes();
  for (const auto& [token, run] : runs_) {
    if (run.vm != nullptr) {
      total += run.vm->LocalBytes();
    }
  }
  memory_gauge_.Set(scheduler_.now(), static_cast<double>(total));
}

}  // namespace trenv
