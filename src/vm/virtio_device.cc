#include "src/vm/virtio_device.h"

#include "src/common/cost_model.h"

namespace trenv {

namespace {
// Latency of pulling pages off the (warm) backing store into a cache.
SimDuration MediaLatency(uint64_t npages) {
  constexpr double kBytesPerSec = 3.0 * static_cast<double>(kGiB);  // NVMe-class
  return SimDuration::FromSecondsF(static_cast<double>(npages * kPageSize) / kBytesPerSec);
}
}  // namespace

GuestStorage::GuestStorage(VmSystemConfig::Storage storage, PageCache* host_cache,
                           FileId base_file, uint64_t vm_id)
    : storage_(storage),
      host_cache_(host_cache),
      shared_base_file_(base_file),
      private_base_file_(static_cast<FileId>((vm_id << 24) | 0x1) ^ (base_file << 8)),
      private_write_file_(static_cast<FileId>((vm_id << 24) | 0x2) ^ (base_file << 8)),
      guest_cache_("guest") {}

GuestReadOutcome GuestStorage::ReadBase(uint64_t offset_pages, uint64_t npages) {
  GuestReadOutcome outcome;
  switch (storage_) {
    case VmSystemConfig::Storage::kVirtioBlk: {
      // Guest page cache fills; the host hypervisor emulates the block reads
      // through its own page cache on the per-VM rootfs file: the data is
      // cached twice, and never shared across VMs.
      const uint64_t guest_new = guest_cache_.Insert(shared_base_file_, offset_pages, npages);
      const uint64_t host_new = host_cache_->Insert(private_base_file_, offset_pages, npages);
      outcome.guest_cache_new_bytes = guest_new * kPageSize;
      outcome.host_cache_new_bytes = host_new * kPageSize;
      outcome.latency = MediaLatency(host_new);
      break;
    }
    case VmSystemConfig::Storage::kRundRootfs: {
      // DAX mapping of the host cache into the guest: one shared host copy,
      // no guest cache.
      const uint64_t host_new = host_cache_->Insert(shared_base_file_, offset_pages, npages);
      outcome.host_cache_new_bytes = host_new * kPageSize;
      outcome.latency = MediaLatency(host_new);
      break;
    }
    case VmSystemConfig::Storage::kPmemUnionFs: {
      // Read-only base device on virtio-pmem: byte-addressable mapping of
      // one host-side copy shared by every VM; guest cache bypassed.
      const uint64_t host_new = host_cache_->Insert(shared_base_file_, offset_pages, npages);
      outcome.host_cache_new_bytes = host_new * kPageSize;
      outcome.latency = MediaLatency(host_new);
      break;
    }
  }
  return outcome;
}

GuestReadOutcome GuestStorage::WriteAndReadBack(uint64_t npages) {
  GuestReadOutcome outcome;
  const uint64_t start = written_pages_;
  written_pages_ += npages;
  switch (storage_) {
    case VmSystemConfig::Storage::kVirtioBlk:
    case VmSystemConfig::Storage::kRundRootfs: {
      // Written data lands in the guest cache and, through the hypervisor's
      // buffered writes, in the host cache as well.
      const uint64_t guest_new = guest_cache_.Insert(private_write_file_, start, npages);
      const uint64_t host_new = host_cache_->Insert(private_write_file_, start, npages);
      outcome.guest_cache_new_bytes = guest_new * kPageSize;
      outcome.host_cache_new_bytes = host_new * kPageSize;
      break;
    }
    case VmSystemConfig::Storage::kPmemUnionFs: {
      // Writable device opened O_DIRECT in the hypervisor: host cache is
      // bypassed entirely; the guest keeps its own copy of dirty data.
      const uint64_t guest_new = guest_cache_.Insert(private_write_file_, start, npages);
      outcome.guest_cache_new_bytes = guest_new * kPageSize;
      break;
    }
  }
  outcome.latency = MediaLatency(npages);
  return outcome;
}

std::pair<uint64_t, uint64_t> GuestStorage::DropCaches() {
  const uint64_t guest_bytes = guest_cache_.cached_bytes();
  guest_cache_.Clear();
  uint64_t host_pages = host_cache_->DropFile(private_base_file_);
  host_pages += host_cache_->DropFile(private_write_file_);
  return {guest_bytes, host_pages * kPageSize};
}

}  // namespace trenv
