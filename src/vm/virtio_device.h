// Storage-device models and their page-cache behaviour (paper sections 2.4,
// 6.3, Fig 15/16).
//
// The defining difference between the evaluated systems is *where file data
// gets cached*:
//   virtio-blk      : data cached in the guest AND re-cached in the host
//                     (per-VM rootfs file => no cross-VM sharing either).
//   RunD rootfs     : host page cache mapped into the guest (DAX): one host
//                     copy shared by all VMs, guest cache bypassed.
//   TrEnv pmem+union: read-only base device on virtio-pmem (one host-side
//                     copy, guest cache bypassed) + per-VM writable device
//                     opened O_DIRECT (no host cache) + guest overlayfs.
#ifndef TRENV_VM_VIRTIO_DEVICE_H_
#define TRENV_VM_VIRTIO_DEVICE_H_

#include <cstdint>

#include "src/common/time.h"
#include "src/simkernel/page_cache.h"
#include "src/vm/vm_config.h"

namespace trenv {

// Outcome of a guest file read: how much new memory each cache layer gained.
struct GuestReadOutcome {
  uint64_t guest_cache_new_bytes = 0;
  uint64_t host_cache_new_bytes = 0;
  SimDuration latency;
};

// Models one VM's storage stack against the (node-wide) host page cache.
class GuestStorage {
 public:
  // `base_file` identifies the agent's base-image content; `vm_id` privatizes
  // it for per-VM rootfs schemes.
  GuestStorage(VmSystemConfig::Storage storage, PageCache* host_cache, FileId base_file,
               uint64_t vm_id);

  // The guest reads [offset_pages, offset_pages + npages) of its base image.
  GuestReadOutcome ReadBase(uint64_t offset_pages, uint64_t npages);
  // The guest writes + reads back freshly produced data (writable layer).
  GuestReadOutcome WriteAndReadBack(uint64_t npages);

  uint64_t guest_cache_bytes() const { return guest_cache_.cached_bytes(); }
  // Releases this VM's guest cache and its *private* host-cache entries
  // (shared base entries survive, as in Linux). Returns bytes released from
  // (guest, host).
  std::pair<uint64_t, uint64_t> DropCaches();

 private:
  VmSystemConfig::Storage storage_;
  PageCache* host_cache_;
  FileId shared_base_file_;
  FileId private_base_file_;   // per-VM rootfs identity (virtio-blk)
  FileId private_write_file_;  // per-VM writable device
  PageCache guest_cache_;
  uint64_t written_pages_ = 0;
};

}  // namespace trenv

#endif  // TRENV_VM_VIRTIO_DEVICE_H_
