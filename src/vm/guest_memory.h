// Guest memory with two-dimensional paging (paper section 8.1.3).
//
// In KVM-style virtualization the second-level translation (GPA -> HPA,
// Intel EPT) is where TrEnv hooks VM memory sharing: the guest-physical
// space can be backed by a CXL mm-template exactly like a process address
// space, with CoW on write. The section's "potential future work" — pre-
// populating the second-level tables for hot regions so read accesses never
// take an EPT-violation VM exit — is implemented here as
// RestoreByTemplate(), and the cost of taking exits on lazily-mapped
// regions is modelled in Touch().
#ifndef TRENV_VM_GUEST_MEMORY_H_
#define TRENV_VM_GUEST_MEMORY_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/mmtemplate/api.h"
#include "src/simkernel/fault_handler.h"

namespace trenv {

// Guest-physical address space of one microVM. The MmStruct plays the role
// of the EPT: "virtual" addresses are GPAs, PTEs are second-level entries.
class GuestMemory {
 public:
  // guest_bytes: the VM's RAM size (GPA space [0, guest_bytes)).
  explicit GuestMemory(uint64_t guest_bytes);

  uint64_t guest_bytes() const { return guest_bytes_; }
  MmStruct& ept() { return ept_; }
  const MmStruct& ept() const { return ept_; }

  // Vanilla-CH restore: copy `image_bytes` of snapshot into local frames.
  // Returns the copy latency.
  Result<SimDuration> RestoreByCopy(uint64_t image_bytes, FrameAllocator* frames);

  // TrEnv restore: attach a guest-memory template. CXL-backed entries are
  // installed VALID + write-protected up front (pre-populated EPT), so guest
  // reads are plain loads with no VM exit; writes CoW.
  Result<SimDuration> RestoreByTemplate(MmtApi* api, MmtId template_id);

  // Guest touches [gpa, gpa + npages * 4K). Adds the EPT-violation exit cost
  // for every entry that was not pre-populated (lazy/major faults).
  Result<BulkAccessStats> Touch(Vaddr gpa, uint64_t npages, bool write, FaultHandler& handler);

  // Node-DRAM pages this guest holds (its CoW/copied working state).
  uint64_t ResidentLocalPages() const { return ept_.ResidentLocalPages(); }
  // Pages still served from the shared pool (the cross-VM-shared state).
  uint64_t SharedRemotePages() const { return ept_.RemoteMappedPages(); }
  uint64_t ept_violations() const { return ept_violations_; }

 private:
  uint64_t guest_bytes_;
  MmStruct ept_;
  uint64_t ept_violations_ = 0;
};

// Builds a guest-memory template for a VM snapshot: `image_bytes` of
// post-boot state stored (deduplicated) in `pool`, of which
// `read_only_fraction` is shared read-only. Returns the template id.
Result<MmtId> BuildGuestTemplate(MmtApi* api, MemoryBackend* pool, const std::string& name,
                                 uint64_t image_bytes, PageContent content_base);

}  // namespace trenv

#endif  // TRENV_VM_GUEST_MEMORY_H_
