#include "src/vm/micro_vm.h"

#include <algorithm>

#include "src/common/cost_model.h"

namespace trenv {

VmStartupBreakdown ComputeVmStartup(const VmSystemConfig& config, const AgentProfile& profile,
                                    uint32_t concurrent, bool sandbox_available) {
  VmStartupBreakdown startup;
  const bool repurpose = config.pooled_sandbox && sandbox_available;
  startup.sandbox_repurposed = repurpose;

  // --- Hypervisor sandbox: network + cgroup. ---
  if (repurpose) {
    startup.network = cost::kNetNsReset;
    startup.cgroup = config.clone_into_cgroup
                         ? (cost::kCloneIntoCgroupMin + cost::kCloneIntoCgroupMax) / 2.0
                         : cost::kCgroupMigrateBase;
  } else {
    // E2B measures ~97 ms network setup and ~63 ms cgroup migration
    // (section 9.6.1); both inflate under concurrent launches.
    startup.network = cost::kE2bNetworkSetup +
                      cost::kNetNsCreatePerConcurrent * static_cast<double>(concurrent);
    startup.cgroup = cost::kE2bCgroupMigration +
                     cost::kCgroupMigratePerConcurrent * static_cast<double>(concurrent);
  }

  // --- VMM process + devices. ---
  startup.vmm = cost::kVmmSpawn + cost::kVmDeviceSetupPerDevice * 2.0;
  if (config.storage == VmSystemConfig::Storage::kRundRootfs) {
    startup.vmm += cost::kRundRootfsMapSetup;
  }

  // --- Guest memory restoration. ---
  switch (config.mem_restore) {
    case VmSystemConfig::MemRestore::kFullCopy:
      // Vanilla CH copies the whole guest memory: >700 ms for a 2 GiB guest.
      startup.memory = SimDuration::FromSecondsF(
          static_cast<double>(profile.vm_memory_bytes) / cost::kVmMemCopyBytesPerSec);
      break;
    case VmSystemConfig::MemRestore::kSnapshotResume:
      startup.memory = cost::kVmSnapshotLoad + cost::kE2bSnapshotMemResume;
      break;
    case VmSystemConfig::MemRestore::kMmapTemplate:
      // One mmap of the DAX device / image file; pages populate lazily.
      startup.memory = cost::kVmSnapshotLoad + cost::kVmMmapRestore;
      break;
  }

  // --- Guest userspace wake-up (common). ---
  startup.guest = cost::kVmGuestResume;
  return startup;
}

MicroVm::MicroVm(uint64_t id, const AgentProfile* profile, const VmSystemConfig* config,
                 PageCache* host_cache, FileId base_file)
    : id_(id),
      profile_(profile),
      config_(config),
      storage_(config->storage, host_cache, base_file, id) {}

int64_t MicroVm::ApplyMemoryDelta(int64_t delta_bytes) {
  // With guest-memory sharing (mm-templates on CXL behind the EPT), the
  // read-only fraction of the agent's dynamic memory never consumes node
  // DRAM; only written pages instantiate locally (CoW).
  double local_fraction = 1.0;
  if (config_->share_guest_memory) {
    local_fraction = 1.0 - profile_->read_only_memory_fraction;
  }
  const auto local_delta =
      static_cast<int64_t>(static_cast<double>(delta_bytes) * local_fraction);
  if (local_delta < 0 && static_cast<uint64_t>(-local_delta) > anon_local_bytes_) {
    const auto released = static_cast<int64_t>(anon_local_bytes_);
    anon_local_bytes_ = 0;
    return -released;
  }
  anon_local_bytes_ = static_cast<uint64_t>(static_cast<int64_t>(anon_local_bytes_) + local_delta);
  return local_delta;
}

uint64_t MicroVm::LocalBytes() const {
  return anon_local_bytes_ + storage_.guest_cache_bytes() + cost::kVmGuestOverheadBytes;
}

}  // namespace trenv
