// VM-platform system configurations: the mechanisms that differ between
// E2B, E2B+ (RunD rootfs mapping), vanilla Cloud Hypervisor, and TrEnv's
// VM extension (paper sections 6 and 9.6).
#ifndef TRENV_VM_VM_CONFIG_H_
#define TRENV_VM_VM_CONFIG_H_

#include <string>

namespace trenv {

struct VmSystemConfig {
  std::string name;

  // Sandbox path: pooled hypervisor sandboxes (netns/cgroup reuse) vs fresh
  // creation with legacy cgroup migration.
  bool pooled_sandbox = false;
  bool clone_into_cgroup = false;

  // Memory restore: mm-template-style mmap restore (lazy population) vs a
  // full guest-memory copy (vanilla CH) vs Firecracker-style snapshot C/R.
  enum class MemRestore { kFullCopy, kSnapshotResume, kMmapTemplate };
  MemRestore mem_restore = MemRestore::kSnapshotResume;

  // Guest anonymous memory shared across instances via CXL templates + CoW
  // (only possible with private mappings, i.e. NOT with virtiofs/memfd).
  bool share_guest_memory = false;

  // Storage/page-cache architecture.
  enum class Storage {
    kVirtioBlk,     // per-VM rootfs; guest + host page cache both populated
    kRundRootfs,    // RunD: shared host mapping, guest cache bypassed (DAX)
    kPmemUnionFs,   // TrEnv: RO virtio-pmem base (shared, host-cached once)
                    // + O_DIRECT writable device + guest overlayfs
  };
  Storage storage = Storage::kVirtioBlk;

  // Browser sharing across agents (TrEnv-S).
  bool browser_sharing = false;
  uint32_t agents_per_browser = 10;
};

VmSystemConfig E2bConfig();
VmSystemConfig E2bPlusConfig();
VmSystemConfig VanillaChConfig();
VmSystemConfig TrEnvVmConfig();
VmSystemConfig TrEnvSConfig();  // TrEnv + browser sharing

}  // namespace trenv

#endif  // TRENV_VM_VM_CONFIG_H_
