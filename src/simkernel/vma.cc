#include "src/simkernel/vma.h"

#include <cassert>
#include <utility>

namespace trenv {

Vma MakeAnonVma(Vaddr start, uint64_t length, Protection prot, std::string name) {
  assert(IsPageAligned(start) && IsPageAligned(length));
  Vma vma;
  vma.start = start;
  vma.length = length;
  vma.prot = prot;
  vma.is_private = true;
  vma.type = VmaType::kAnonymous;
  vma.name = std::move(name);
  return vma;
}

Vma MakeFileVma(Vaddr start, uint64_t length, Protection prot, int64_t file_id,
                uint64_t file_offset, std::string name) {
  assert(IsPageAligned(start) && IsPageAligned(length));
  Vma vma;
  vma.start = start;
  vma.length = length;
  vma.prot = prot;
  vma.is_private = true;
  vma.type = VmaType::kFileBacked;
  vma.file_id = file_id;
  vma.file_offset = file_offset;
  vma.name = std::move(name);
  return vma;
}

}  // namespace trenv
