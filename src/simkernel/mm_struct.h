// MmStruct: a process address space — VMAs plus the software page table.
// The simulated analogue of Linux's mm_struct, and the object an mm-template
// attaches into (paper Fig 8).
#ifndef TRENV_SIMKERNEL_MM_STRUCT_H_
#define TRENV_SIMKERNEL_MM_STRUCT_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/status.h"
#include "src/simkernel/page_table.h"
#include "src/simkernel/vma.h"

namespace trenv {

struct MmStats {
  uint64_t minor_faults = 0;
  uint64_t major_faults = 0;
  uint64_t cow_faults = 0;
  uint64_t direct_remote_reads = 0;  // CXL loads that avoided any fault
  uint64_t local_pages = 0;          // resident local frames owned by this mm
  uint64_t remote_mapped_pages = 0;  // pages still served from a pool
};

class MmStruct {
 public:
  MmStruct() = default;
  MmStruct(const MmStruct&) = delete;
  MmStruct& operator=(const MmStruct&) = delete;
  MmStruct(MmStruct&&) = default;
  MmStruct& operator=(MmStruct&&) = default;

  // Adds a VMA; fails on overlap with an existing area.
  Status AddVma(Vma vma);
  // Removes the VMA starting exactly at `start` and unmaps its pages.
  Status RemoveVma(Vaddr start);
  const Vma* FindVma(Vaddr addr) const;
  const std::map<Vaddr, Vma>& vmas() const { return vmas_; }
  size_t vma_count() const { return vmas_.size(); }

  // Grows the named VMA (e.g. "[heap]") by `bytes` (page-aligned), returning
  // the address of the newly added region. New pages are unpopulated and will
  // zero-fill locally on demand — the Fig 9(b) behaviour: growth after an
  // mm-template attach never lands on shared CXL ranges.
  Result<Vaddr> GrowVma(Vaddr start, uint64_t bytes);

  PageTable& page_table() { return page_table_; }
  const PageTable& page_table() const { return page_table_; }

  MmStats& stats() { return stats_; }
  const MmStats& stats() const { return stats_; }

  // Total virtual size of all VMAs in bytes.
  uint64_t VirtualBytes() const;
  // Pages resident in local DRAM (the node-memory footprint of the process).
  uint64_t ResidentLocalPages() const;
  // Pages mapped but still backed by a remote pool.
  uint64_t RemoteMappedPages() const;

 private:
  std::map<Vaddr, Vma> vmas_;  // keyed by start address
  PageTable page_table_;
  MmStats stats_;
};

}  // namespace trenv

#endif  // TRENV_SIMKERNEL_MM_STRUCT_H_
