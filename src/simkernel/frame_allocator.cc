#include "src/simkernel/frame_allocator.h"

#include <algorithm>

namespace trenv {

FrameAllocator::FrameAllocator(uint64_t capacity_bytes) : capacity_bytes_(capacity_bytes) {}

Result<FrameId> FrameAllocator::AllocatePages(uint64_t n) {
  if ((used_pages_ + n) * kPageSize > capacity_bytes_) {
    return Status::OutOfMemory("node DRAM exhausted");
  }
  const FrameId base = next_frame_;
  next_frame_ += n;
  used_pages_ += n;
  peak_used_pages_ = std::max(peak_used_pages_, used_pages_);
  return base;
}

void FrameAllocator::FreePages(uint64_t n) {
  used_pages_ = n > used_pages_ ? 0 : used_pages_ - n;
}

}  // namespace trenv
