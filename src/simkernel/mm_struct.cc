#include "src/simkernel/mm_struct.h"

#include <cassert>

namespace trenv {

Status MmStruct::AddVma(Vma vma) {
  if (!IsPageAligned(vma.start) || !IsPageAligned(vma.length) || vma.length == 0) {
    return Status::InvalidArgument("VMA must be non-empty and page aligned");
  }
  // Check the neighbours for overlap.
  auto next = vmas_.lower_bound(vma.start);
  if (next != vmas_.end() && vma.Overlaps(next->second.start, next->second.length)) {
    return Status::AlreadyExists("VMA overlaps " + next->second.name);
  }
  if (next != vmas_.begin()) {
    auto prev = std::prev(next);
    if (vma.Overlaps(prev->second.start, prev->second.length)) {
      return Status::AlreadyExists("VMA overlaps " + prev->second.name);
    }
  }
  vmas_.emplace(vma.start, std::move(vma));
  return Status::Ok();
}

Status MmStruct::RemoveVma(Vaddr start) {
  auto it = vmas_.find(start);
  if (it == vmas_.end()) {
    return Status::NotFound("no VMA at this address");
  }
  page_table_.UnmapRange(AddrToVpn(it->second.start), it->second.npages());
  vmas_.erase(it);
  return Status::Ok();
}

const Vma* MmStruct::FindVma(Vaddr addr) const {
  auto it = vmas_.upper_bound(addr);
  if (it == vmas_.begin()) {
    return nullptr;
  }
  --it;
  if (!it->second.Contains(addr)) {
    return nullptr;
  }
  return &it->second;
}

Result<Vaddr> MmStruct::GrowVma(Vaddr start, uint64_t bytes) {
  if (!IsPageAligned(bytes) || bytes == 0) {
    return Status::InvalidArgument("growth must be page aligned and non-zero");
  }
  auto it = vmas_.find(start);
  if (it == vmas_.end()) {
    return Status::NotFound("no VMA at this address");
  }
  Vma& vma = it->second;
  const Vaddr old_end = vma.end();
  // Reject growth into the next VMA.
  auto next = std::next(it);
  if (next != vmas_.end() && old_end + bytes > next->second.start) {
    return Status::ResourceExhausted("growth would collide with " + next->second.name);
  }
  vma.length += bytes;
  return old_end;
}

uint64_t MmStruct::VirtualBytes() const {
  uint64_t total = 0;
  for (const auto& [start, vma] : vmas_) {
    total += vma.length;
  }
  return total;
}

uint64_t MmStruct::ResidentLocalPages() const {
  return page_table_.CountPagesIf(
      [](const PteFlags& f) { return f.valid && f.pool == PoolKind::kLocalDram; });
}

uint64_t MmStruct::RemoteMappedPages() const {
  return page_table_.CountPagesIf([](const PteFlags& f) { return f.remote(); });
}

}  // namespace trenv
