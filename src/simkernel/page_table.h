// Run-compressed software page table.
//
// The table stores runs of pages whose PTEs share flags and whose backing /
// content form arithmetic progressions (offset i of a run backs page i).
// This keeps every kernel operation O(number of runs), not O(number of
// pages), so the simulator can model multi-GiB address spaces faithfully:
// bulk faults split runs exactly where real hardware would install new PTEs.
//
// Storage is a cache-friendly sorted vector of runs (not a node-based map):
// lookups are a hinted binary search over contiguous memory, and the bulk
// operations (MapRange / UnmapRange / ProtectRange) splice the affected
// window in one pass, so steady-state fault handling performs no per-page
// work and no per-run node allocations. A one-entry lookup cache makes the
// sequential access patterns restore paths produce O(1). The run-split and
// run-merge semantics are bit-identical to the original std::map store
// (pinned by tests/flat_store_equivalence_test.cc against the reference
// implementation in tests/reference_stores.h).
//
// PTE states mirror the paper's mm-template design (section 5.1):
//   - valid + !wp + local           : ordinary resident page
//   - valid + wp + remote(CXL)      : direct-mapped shared CXL page, CoW armed
//   - !valid + remote(RDMA/NAS)     : lazy page, major fault on first touch
//   - absent run                    : unpopulated (zero-fill on demand)
//
// The shared-state data plane (src/shstate/) extends these with writable
// shared regions — pool pages that multiple sandboxes map *without* CoW:
//   - valid + !wp + remote + shared + owner : writable region mapping; writes
//     go to the pool directly and set `dirty` instead of faulting private
//   - valid + wp + remote + shared          : reader mapping; writes are
//     refused until an ownership upgrade (shstate revokes the readers)
// Templates never carry shared/owner/dirty bits — those exist only in live
// sandbox tables managed by shstate::RegionManager.
#ifndef TRENV_SIMKERNEL_PAGE_TABLE_H_
#define TRENV_SIMKERNEL_PAGE_TABLE_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/simkernel/types.h"

namespace trenv {

struct PteFlags {
  bool valid = false;
  bool write_protected = false;
  PoolKind pool = PoolKind::kLocalDram;
  // Shared-state region bits (src/shstate/). Defaulted false everywhere else,
  // so templates and ordinary mappings are unaffected; the default operator==
  // keeps run merging exact across the new states.
  bool shared = false;  // page belongs to a shared writable region
  bool owner = false;   // this mapping holds region ownership (may write)
  bool dirty = false;   // owner has written through to the pool copy

  bool remote() const { return pool != PoolKind::kLocalDram; }
  bool operator==(const PteFlags&) const = default;
};

// A run of `npages` PTEs starting at some vpn. backing_base is the value for
// the first page; page i uses base + i. Content is either a progression
// (content_base + i, the common case for snapshot images) or a constant
// (zero-filled / memset pages all read content_base).
struct PteRun {
  uint64_t npages = 0;
  PteFlags flags;
  uint64_t backing_base = kNoBacking;  // FrameId (local) or PoolOffset (remote)
  PageContent content_base = kZeroPageContent;
  bool constant_content = false;

  PageContent ContentAt(uint64_t idx) const {
    return constant_content ? content_base : content_base + idx;
  }

  // True if `other` appended at distance `gap` pages continues this run.
  bool ContinuedBy(const PteRun& other, uint64_t gap) const;
};

// Resolved view of a single PTE.
struct PteView {
  PteFlags flags;
  uint64_t backing = kNoBacking;
  PageContent content = kZeroPageContent;
};

class PageTable {
 public:
  PageTable() = default;

  // Installs PTEs for [vpn, vpn+npages), replacing anything there.
  void MapRange(Vpn vpn, uint64_t npages, PteFlags flags, uint64_t backing_base,
                PageContent content_base, bool constant_content = false);
  // Removes PTEs in the range. Returns the number of pages that were mapped.
  uint64_t UnmapRange(Vpn vpn, uint64_t npages);

  std::optional<PteView> Lookup(Vpn vpn) const;
  bool IsMapped(Vpn vpn) const { return Lookup(vpn).has_value(); }

  // Invokes fn(run_start_vpn, run) for every run overlapping the range; the
  // run passed is clipped to the range. Must not mutate the table. The
  // visitor is a template parameter so hot callers (fault handling, stats
  // sampling) pay a direct call instead of a std::function allocation.
  template <typename Fn>
  void ForEachRunIn(Vpn vpn, uint64_t npages, Fn&& fn) const {
    if (npages == 0) {
      return;
    }
    const Vpn end = vpn + npages;
    for (size_t i = FirstOverlapping(vpn); i < runs_.size() && runs_[i].vpn < end; ++i) {
      const Vpn run_start = runs_[i].vpn;
      const PteRun& run = runs_[i].run;
      const Vpn run_end = run_start + run.npages;
      if (run_end <= vpn) {
        continue;
      }
      // Clip to the requested range.
      const Vpn clip_start = std::max(run_start, vpn);
      const Vpn clip_end = std::min(run_end, end);
      const uint64_t skip = clip_start - run_start;
      PteRun clipped = run;
      clipped.npages = clip_end - clip_start;
      if (clipped.backing_base != kNoBacking) {
        clipped.backing_base += skip;
      }
      if (!clipped.constant_content) {
        clipped.content_base += skip;
      }
      fn(clip_start, clipped);
    }
  }

  // Invokes fn for every run in the table. Must not mutate the table.
  template <typename Fn>
  void ForEachRun(Fn&& fn) const {
    for (const RunEntry& entry : runs_) {
      fn(entry.vpn, entry.run);
    }
  }

  // Copies all runs from `other` into this table (used by mmt_attach: the
  // metadata copy). Existing overlapping entries are replaced.
  void CloneFrom(const PageTable& other);

  // Write-protects every currently mapped page in the range.
  void ProtectRange(Vpn vpn, uint64_t npages);

  uint64_t run_count() const { return runs_.size(); }
  uint64_t mapped_pages() const;

  // Pages whose flags satisfy `pred` — templated for the same reason as the
  // visitors: memory-timeline sampling calls this per sample.
  template <typename Pred>
  uint64_t CountPagesIf(Pred&& pred) const {
    uint64_t total = 0;
    for (const RunEntry& entry : runs_) {
      if (pred(entry.run.flags)) {
        total += entry.run.npages;
      }
    }
    return total;
  }

  // Approximate metadata footprint of this table (for mm-template sizing).
  uint64_t MetadataBytes() const;

 private:
  struct RunEntry {
    Vpn vpn;
    PteRun run;
  };

  // Index of the first run whose end lies past `vpn` (i.e. the run containing
  // vpn, or the first run after it). runs_.size() if none.
  size_t FirstOverlapping(Vpn vpn) const;
  // Index of the first run starting at or after `vpn`.
  size_t LowerBound(Vpn vpn) const;
  // Splits any run straddling `vpn` so that `vpn` begins a run.
  void SplitAt(Vpn vpn);
  // Replaces runs_[lo, hi) with repl[0, count) in one pass. When the counts
  // match (the steady-state fault pattern) this is an in-place overwrite
  // with no element shifting and no allocation.
  void SpliceWindow(size_t lo, size_t hi, const RunEntry* repl, size_t count);

  // Runs sorted by vpn, pairwise disjoint.
  std::vector<RunEntry> runs_;
  // Hint: index of the run the last Lookup hit. Validated before use, so a
  // stale value is only ever a missed shortcut, never a wrong answer.
  mutable size_t lookup_hint_ = 0;
};

}  // namespace trenv

#endif  // TRENV_SIMKERNEL_PAGE_TABLE_H_
