// Run-compressed software page table.
//
// The table stores runs of pages whose PTEs share flags and whose backing /
// content form arithmetic progressions (offset i of a run backs page i).
// This keeps every kernel operation O(number of runs), not O(number of
// pages), so the simulator can model multi-GiB address spaces faithfully:
// bulk faults split runs exactly where real hardware would install new PTEs.
//
// PTE states mirror the paper's mm-template design (section 5.1):
//   - valid + !wp + local           : ordinary resident page
//   - valid + wp + remote(CXL)      : direct-mapped shared CXL page, CoW armed
//   - !valid + remote(RDMA/NAS)     : lazy page, major fault on first touch
//   - absent run                    : unpopulated (zero-fill on demand)
#ifndef TRENV_SIMKERNEL_PAGE_TABLE_H_
#define TRENV_SIMKERNEL_PAGE_TABLE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "src/simkernel/types.h"

namespace trenv {

struct PteFlags {
  bool valid = false;
  bool write_protected = false;
  PoolKind pool = PoolKind::kLocalDram;

  bool remote() const { return pool != PoolKind::kLocalDram; }
  bool operator==(const PteFlags&) const = default;
};

// A run of `npages` PTEs starting at some vpn. backing_base is the value for
// the first page; page i uses base + i. Content is either a progression
// (content_base + i, the common case for snapshot images) or a constant
// (zero-filled / memset pages all read content_base).
struct PteRun {
  uint64_t npages = 0;
  PteFlags flags;
  uint64_t backing_base = kNoBacking;  // FrameId (local) or PoolOffset (remote)
  PageContent content_base = kZeroPageContent;
  bool constant_content = false;

  PageContent ContentAt(uint64_t idx) const {
    return constant_content ? content_base : content_base + idx;
  }

  // True if `other` appended at distance `gap` pages continues this run.
  bool ContinuedBy(const PteRun& other, uint64_t gap) const;
};

// Resolved view of a single PTE.
struct PteView {
  PteFlags flags;
  uint64_t backing = kNoBacking;
  PageContent content = kZeroPageContent;
};

class PageTable {
 public:
  PageTable() = default;

  // Installs PTEs for [vpn, vpn+npages), replacing anything there.
  void MapRange(Vpn vpn, uint64_t npages, PteFlags flags, uint64_t backing_base,
                PageContent content_base, bool constant_content = false);
  // Removes PTEs in the range. Returns the number of pages that were mapped.
  uint64_t UnmapRange(Vpn vpn, uint64_t npages);

  std::optional<PteView> Lookup(Vpn vpn) const;
  bool IsMapped(Vpn vpn) const { return Lookup(vpn).has_value(); }

  // Invokes fn(run_start_vpn, run) for every run overlapping the range; the
  // run passed is clipped to the range. Must not mutate the table.
  void ForEachRunIn(Vpn vpn, uint64_t npages,
                    const std::function<void(Vpn, const PteRun&)>& fn) const;
  // Invokes fn for every run in the table. Must not mutate the table.
  void ForEachRun(const std::function<void(Vpn, const PteRun&)>& fn) const;

  // Copies all runs from `other` into this table (used by mmt_attach: the
  // metadata copy). Existing overlapping entries are replaced.
  void CloneFrom(const PageTable& other);

  // Write-protects every currently mapped page in the range.
  void ProtectRange(Vpn vpn, uint64_t npages);

  uint64_t run_count() const { return runs_.size(); }
  uint64_t mapped_pages() const;
  uint64_t CountPagesIf(const std::function<bool(const PteFlags&)>& pred) const;

  // Approximate metadata footprint of this table (for mm-template sizing).
  uint64_t MetadataBytes() const;

 private:
  // Splits any run straddling `vpn` so that `vpn` begins a run.
  void SplitAt(Vpn vpn);
  // Merges the run at `it` with its successor if they are contiguous.
  void TryMergeAround(Vpn vpn);

  // Key: first vpn of the run.
  std::map<Vpn, PteRun> runs_;
};

}  // namespace trenv

#endif  // TRENV_SIMKERNEL_PAGE_TABLE_H_
