// Virtual memory areas: the simulated analogue of Linux's vm_area_struct.
#ifndef TRENV_SIMKERNEL_VMA_H_
#define TRENV_SIMKERNEL_VMA_H_

#include <cstdint>
#include <string>

#include "src/simkernel/types.h"

namespace trenv {

enum class VmaType : uint8_t {
  kAnonymous = 0,   // heap, stack, malloc arenas
  kFileBacked = 1,  // executable text, shared libraries, mapped data files
};

struct Vma {
  Vaddr start = 0;
  uint64_t length = 0;  // bytes, page-aligned
  Protection prot;
  bool is_private = true;  // MAP_PRIVATE (copy-on-write) vs MAP_SHARED
  VmaType type = VmaType::kAnonymous;
  std::string name;      // "[heap]", "[stack]", "libpython3.11.so", ...
  int64_t file_id = -1;  // for kFileBacked
  uint64_t file_offset = 0;

  Vaddr end() const { return start + length; }
  uint64_t npages() const { return length / kPageSize; }
  bool Contains(Vaddr addr) const { return addr >= start && addr < end(); }
  bool Overlaps(Vaddr other_start, uint64_t other_length) const {
    return start < other_start + other_length && other_start < end();
  }
};

// Convenience constructors for the common shapes.
Vma MakeAnonVma(Vaddr start, uint64_t length, Protection prot, std::string name);
Vma MakeFileVma(Vaddr start, uint64_t length, Protection prot, int64_t file_id,
                uint64_t file_offset, std::string name);

}  // namespace trenv

#endif  // TRENV_SIMKERNEL_VMA_H_
