#include "src/simkernel/page_table.h"

#include <algorithm>
#include <cassert>
#include <iterator>

namespace trenv {

std::string_view PoolKindName(PoolKind kind) {
  switch (kind) {
    case PoolKind::kLocalDram:
      return "local-dram";
    case PoolKind::kCxl:
      return "cxl";
    case PoolKind::kRdma:
      return "rdma";
    case PoolKind::kNas:
      return "nas";
  }
  return "unknown";
}

bool PteRun::ContinuedBy(const PteRun& other, uint64_t gap) const {
  if (gap != npages) {
    return false;  // not adjacent
  }
  if (!(flags == other.flags)) {
    return false;
  }
  if (constant_content != other.constant_content) {
    return false;
  }
  const bool backing_continues =
      (backing_base == kNoBacking && other.backing_base == kNoBacking) ||
      (backing_base != kNoBacking && other.backing_base == backing_base + npages);
  const bool content_continues = constant_content
                                     ? other.content_base == content_base
                                     : other.content_base == content_base + npages;
  return backing_continues && content_continues;
}

void PageTable::SplitAt(Vpn vpn) {
  auto it = runs_.upper_bound(vpn);
  if (it == runs_.begin()) {
    return;
  }
  --it;
  const Vpn start = it->first;
  PteRun& run = it->second;
  if (start == vpn || start + run.npages <= vpn) {
    return;  // vpn already begins a run, or lies past the run's end
  }
  const uint64_t head_pages = vpn - start;
  PteRun tail = run;
  tail.npages = run.npages - head_pages;
  if (tail.backing_base != kNoBacking) {
    tail.backing_base += head_pages;
  }
  if (!tail.constant_content) {
    tail.content_base += head_pages;
  }
  run.npages = head_pages;
  runs_.emplace(vpn, tail);
}

void PageTable::TryMergeAround(Vpn vpn) {
  auto it = runs_.find(vpn);
  if (it == runs_.end()) {
    return;
  }
  // Merge with predecessor.
  if (it != runs_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.npages == it->first &&
        prev->second.ContinuedBy(it->second, prev->second.npages)) {
      prev->second.npages += it->second.npages;
      runs_.erase(it);
      it = prev;
    }
  }
  // Merge with successor.
  auto next = std::next(it);
  if (next != runs_.end() && it->first + it->second.npages == next->first &&
      it->second.ContinuedBy(next->second, it->second.npages)) {
    it->second.npages += next->second.npages;
    runs_.erase(next);
  }
}

void PageTable::MapRange(Vpn vpn, uint64_t npages, PteFlags flags, uint64_t backing_base,
                         PageContent content_base, bool constant_content) {
  if (npages == 0) {
    return;
  }
  UnmapRange(vpn, npages);
  PteRun run;
  run.npages = npages;
  run.flags = flags;
  run.backing_base = backing_base;
  run.content_base = content_base;
  run.constant_content = constant_content;
  runs_.emplace(vpn, run);
  TryMergeAround(vpn);
}

uint64_t PageTable::UnmapRange(Vpn vpn, uint64_t npages) {
  if (npages == 0) {
    return 0;
  }
  SplitAt(vpn);
  SplitAt(vpn + npages);
  uint64_t removed = 0;
  auto it = runs_.lower_bound(vpn);
  while (it != runs_.end() && it->first < vpn + npages) {
    removed += it->second.npages;
    it = runs_.erase(it);
  }
  return removed;
}

std::optional<PteView> PageTable::Lookup(Vpn vpn) const {
  auto it = runs_.upper_bound(vpn);
  if (it == runs_.begin()) {
    return std::nullopt;
  }
  --it;
  const Vpn start = it->first;
  const PteRun& run = it->second;
  if (vpn >= start + run.npages) {
    return std::nullopt;
  }
  const uint64_t idx = vpn - start;
  PteView view;
  view.flags = run.flags;
  view.backing = run.backing_base == kNoBacking ? kNoBacking : run.backing_base + idx;
  view.content = run.ContentAt(idx);
  return view;
}

void PageTable::ForEachRunIn(Vpn vpn, uint64_t npages,
                             const std::function<void(Vpn, const PteRun&)>& fn) const {
  if (npages == 0) {
    return;
  }
  const Vpn end = vpn + npages;
  auto it = runs_.upper_bound(vpn);
  if (it != runs_.begin()) {
    --it;
  }
  for (; it != runs_.end() && it->first < end; ++it) {
    const Vpn run_start = it->first;
    const PteRun& run = it->second;
    const Vpn run_end = run_start + run.npages;
    if (run_end <= vpn) {
      continue;
    }
    // Clip to the requested range.
    const Vpn clip_start = std::max(run_start, vpn);
    const Vpn clip_end = std::min(run_end, end);
    const uint64_t skip = clip_start - run_start;
    PteRun clipped = run;
    clipped.npages = clip_end - clip_start;
    if (clipped.backing_base != kNoBacking) {
      clipped.backing_base += skip;
    }
    if (!clipped.constant_content) {
      clipped.content_base += skip;
    }
    fn(clip_start, clipped);
  }
}

void PageTable::ForEachRun(const std::function<void(Vpn, const PteRun&)>& fn) const {
  for (const auto& [vpn, run] : runs_) {
    fn(vpn, run);
  }
}

void PageTable::CloneFrom(const PageTable& other) {
  if (runs_.empty()) {
    // Fresh clone (the mm-template attach path): the source runs are already
    // disjoint, sorted, and maximally merged, so copy them straight across
    // with end hints — O(n) with no split/merge/search work per run.
    for (const auto& [vpn, run] : other.runs_) {
      runs_.emplace_hint(runs_.end(), vpn, run);
    }
    return;
  }
  for (const auto& [vpn, run] : other.runs_) {
    MapRange(vpn, run.npages, run.flags, run.backing_base, run.content_base,
             run.constant_content);
  }
}

void PageTable::ProtectRange(Vpn vpn, uint64_t npages) {
  if (npages == 0) {
    return;
  }
  SplitAt(vpn);
  SplitAt(vpn + npages);
  for (auto it = runs_.lower_bound(vpn); it != runs_.end() && it->first < vpn + npages; ++it) {
    it->second.flags.write_protected = true;
  }
}

uint64_t PageTable::mapped_pages() const {
  uint64_t total = 0;
  for (const auto& [vpn, run] : runs_) {
    total += run.npages;
  }
  return total;
}

uint64_t PageTable::CountPagesIf(const std::function<bool(const PteFlags&)>& pred) const {
  uint64_t total = 0;
  for (const auto& [vpn, run] : runs_) {
    if (pred(run.flags)) {
      total += run.npages;
    }
  }
  return total;
}

uint64_t PageTable::MetadataBytes() const {
  // Each run is roughly one vm_area-sized record; mapped pages cost one
  // 8-byte PTE each. This matches the paper's observation of <1 MiB of
  // template metadata (e.g. ~400 KiB for a 70 MiB image).
  constexpr uint64_t kPerRunBytes = 96;
  constexpr uint64_t kPerPageBytes = 8;
  uint64_t bytes = 0;
  for (const auto& [vpn, run] : runs_) {
    bytes += kPerRunBytes + kPerPageBytes * run.npages;
  }
  return bytes;
}

}  // namespace trenv
