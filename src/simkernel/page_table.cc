#include "src/simkernel/page_table.h"

#include <cassert>

namespace trenv {

std::string_view PoolKindName(PoolKind kind) {
  switch (kind) {
    case PoolKind::kLocalDram:
      return "local-dram";
    case PoolKind::kCxl:
      return "cxl";
    case PoolKind::kRdma:
      return "rdma";
    case PoolKind::kNas:
      return "nas";
  }
  return "unknown";
}

bool PteRun::ContinuedBy(const PteRun& other, uint64_t gap) const {
  if (gap != npages) {
    return false;  // not adjacent
  }
  if (!(flags == other.flags)) {
    return false;
  }
  if (constant_content != other.constant_content) {
    return false;
  }
  const bool backing_continues =
      (backing_base == kNoBacking && other.backing_base == kNoBacking) ||
      (backing_base != kNoBacking && other.backing_base == backing_base + npages);
  const bool content_continues = constant_content
                                     ? other.content_base == content_base
                                     : other.content_base == content_base + npages;
  return backing_continues && content_continues;
}

size_t PageTable::LowerBound(Vpn vpn) const {
  return static_cast<size_t>(
      std::lower_bound(runs_.begin(), runs_.end(), vpn,
                       [](const RunEntry& e, Vpn v) { return e.vpn < v; }) -
      runs_.begin());
}

size_t PageTable::FirstOverlapping(Vpn vpn) const {
  // Hint: the run found by the last lookup, or its successor (the common
  // next position for sequential access). A wrong hint just falls through to
  // the binary search.
  const size_t hint = lookup_hint_;
  if (hint < runs_.size() && runs_[hint].vpn <= vpn) {
    if (vpn < runs_[hint].vpn + runs_[hint].run.npages) {
      return hint;
    }
    if (hint + 1 < runs_.size() && runs_[hint + 1].vpn <= vpn &&
        vpn < runs_[hint + 1].vpn + runs_[hint + 1].run.npages) {
      return hint + 1;
    }
  }
  const size_t i = static_cast<size_t>(
      std::upper_bound(runs_.begin(), runs_.end(), vpn,
                       [](Vpn v, const RunEntry& e) { return v < e.vpn; }) -
      runs_.begin());
  if (i > 0 && runs_[i - 1].vpn + runs_[i - 1].run.npages > vpn) {
    return i - 1;
  }
  return i;
}

void PageTable::SpliceWindow(size_t lo, size_t hi, const RunEntry* repl, size_t count) {
  const size_t old_count = hi - lo;
  const size_t common = std::min(old_count, count);
  std::copy(repl, repl + common, runs_.begin() + static_cast<ptrdiff_t>(lo));
  if (count > old_count) {
    runs_.insert(runs_.begin() + static_cast<ptrdiff_t>(hi), repl + common, repl + count);
  } else if (old_count > count) {
    runs_.erase(runs_.begin() + static_cast<ptrdiff_t>(lo + count),
                runs_.begin() + static_cast<ptrdiff_t>(hi));
  }
  lookup_hint_ = lo;
}

void PageTable::SplitAt(Vpn vpn) {
  const size_t i = FirstOverlapping(vpn);
  if (i >= runs_.size()) {
    return;
  }
  RunEntry& entry = runs_[i];
  if (entry.vpn >= vpn) {
    return;  // vpn already begins a run, or lies before it
  }
  const uint64_t head_pages = vpn - entry.vpn;
  RunEntry tail;
  tail.vpn = vpn;
  tail.run = entry.run;
  tail.run.npages = entry.run.npages - head_pages;
  if (tail.run.backing_base != kNoBacking) {
    tail.run.backing_base += head_pages;
  }
  if (!tail.run.constant_content) {
    tail.run.content_base += head_pages;
  }
  entry.run.npages = head_pages;
  runs_.insert(runs_.begin() + static_cast<ptrdiff_t>(i + 1), tail);
}

void PageTable::MapRange(Vpn vpn, uint64_t npages, PteFlags flags, uint64_t backing_base,
                         PageContent content_base, bool constant_content) {
  if (npages == 0) {
    return;
  }
  const Vpn end = vpn + npages;

  // Splice window: every run overlapping [vpn, end).
  const size_t lo = FirstOverlapping(vpn);
  size_t hi = lo;
  while (hi < runs_.size() && runs_[hi].vpn < end) {
    ++hi;
  }

  // Remnants of partially-overlapped runs at the window edges.
  RunEntry head{};
  RunEntry tail{};
  bool emit_head = false;
  bool emit_tail = false;
  if (lo < hi) {
    const RunEntry& first = runs_[lo];
    if (first.vpn < vpn) {
      emit_head = true;
      head.vpn = first.vpn;
      head.run = first.run;
      head.run.npages = vpn - first.vpn;
    }
    const RunEntry& last = runs_[hi - 1];
    const Vpn last_end = last.vpn + last.run.npages;
    if (last_end > end) {
      emit_tail = true;
      const uint64_t skip = end - last.vpn;
      tail.vpn = end;
      tail.run = last.run;
      tail.run.npages = last_end - end;
      if (tail.run.backing_base != kNoBacking) {
        tail.run.backing_base += skip;
      }
      if (!tail.run.constant_content) {
        tail.run.content_base += skip;
      }
    }
  }

  RunEntry cur;
  cur.vpn = vpn;
  cur.run.npages = npages;
  cur.run.flags = flags;
  cur.run.backing_base = backing_base;
  cur.run.content_base = content_base;
  cur.run.constant_content = constant_content;

  size_t wlo = lo;
  size_t whi = hi;
  // Merge with the predecessor: the head remnant, or the untouched left
  // neighbor ending exactly at vpn.
  if (emit_head) {
    if (head.run.ContinuedBy(cur.run, head.run.npages)) {
      head.run.npages += cur.run.npages;
      cur = head;
      emit_head = false;
    }
  } else if (lo > 0) {
    const RunEntry& pred = runs_[lo - 1];
    if (pred.vpn + pred.run.npages == vpn && pred.run.ContinuedBy(cur.run, pred.run.npages)) {
      RunEntry merged = pred;
      merged.run.npages += cur.run.npages;
      cur = merged;
      wlo = lo - 1;
    }
  }
  // Merge with the successor: the tail remnant, or the untouched right
  // neighbor starting exactly at end.
  if (emit_tail) {
    if (cur.run.ContinuedBy(tail.run, cur.run.npages)) {
      cur.run.npages += tail.run.npages;
      emit_tail = false;
    }
  } else if (hi < runs_.size()) {
    const RunEntry& succ = runs_[hi];
    if (succ.vpn == end && cur.run.ContinuedBy(succ.run, cur.run.npages)) {
      cur.run.npages += succ.run.npages;
      whi = hi + 1;
    }
  }

  RunEntry repl[3];
  size_t count = 0;
  if (emit_head) {
    repl[count++] = head;
  }
  repl[count++] = cur;
  if (emit_tail) {
    repl[count++] = tail;
  }
  SpliceWindow(wlo, whi, repl, count);
}

uint64_t PageTable::UnmapRange(Vpn vpn, uint64_t npages) {
  if (npages == 0) {
    return 0;
  }
  const Vpn end = vpn + npages;
  const size_t lo = FirstOverlapping(vpn);
  size_t hi = lo;
  uint64_t removed = 0;
  while (hi < runs_.size() && runs_[hi].vpn < end) {
    const RunEntry& entry = runs_[hi];
    removed += std::min(entry.vpn + entry.run.npages, end) - std::max(entry.vpn, vpn);
    ++hi;
  }
  if (lo == hi) {
    return 0;
  }

  RunEntry repl[2];
  size_t count = 0;
  const RunEntry& first = runs_[lo];
  if (first.vpn < vpn) {
    RunEntry head;
    head.vpn = first.vpn;
    head.run = first.run;
    head.run.npages = vpn - first.vpn;
    repl[count++] = head;
  }
  const RunEntry& last = runs_[hi - 1];
  const Vpn last_end = last.vpn + last.run.npages;
  if (last_end > end) {
    const uint64_t skip = end - last.vpn;
    RunEntry tail;
    tail.vpn = end;
    tail.run = last.run;
    tail.run.npages = last_end - end;
    if (tail.run.backing_base != kNoBacking) {
      tail.run.backing_base += skip;
    }
    if (!tail.run.constant_content) {
      tail.run.content_base += skip;
    }
    repl[count++] = tail;
  }
  SpliceWindow(lo, hi, repl, count);
  return removed;
}

std::optional<PteView> PageTable::Lookup(Vpn vpn) const {
  const size_t i = FirstOverlapping(vpn);
  if (i >= runs_.size() || runs_[i].vpn > vpn) {
    return std::nullopt;
  }
  lookup_hint_ = i;
  const RunEntry& entry = runs_[i];
  const uint64_t idx = vpn - entry.vpn;
  PteView view;
  view.flags = entry.run.flags;
  view.backing =
      entry.run.backing_base == kNoBacking ? kNoBacking : entry.run.backing_base + idx;
  view.content = entry.run.ContentAt(idx);
  return view;
}

void PageTable::CloneFrom(const PageTable& other) {
  if (runs_.empty()) {
    // Fresh clone (the mm-template attach path): one contiguous copy of the
    // source's already-disjoint, sorted, maximally-merged run array.
    runs_ = other.runs_;
    lookup_hint_ = 0;
    return;
  }
  for (const RunEntry& entry : other.runs_) {
    MapRange(entry.vpn, entry.run.npages, entry.run.flags, entry.run.backing_base,
             entry.run.content_base, entry.run.constant_content);
  }
}

void PageTable::ProtectRange(Vpn vpn, uint64_t npages) {
  if (npages == 0) {
    return;
  }
  SplitAt(vpn);
  SplitAt(vpn + npages);
  for (size_t i = LowerBound(vpn); i < runs_.size() && runs_[i].vpn < vpn + npages; ++i) {
    runs_[i].run.flags.write_protected = true;
  }
}

uint64_t PageTable::mapped_pages() const {
  uint64_t total = 0;
  for (const RunEntry& entry : runs_) {
    total += entry.run.npages;
  }
  return total;
}

uint64_t PageTable::MetadataBytes() const {
  // Each run is roughly one vm_area-sized record; mapped pages cost one
  // 8-byte PTE each. This matches the paper's observation of <1 MiB of
  // template metadata (e.g. ~400 KiB for a 70 MiB image).
  constexpr uint64_t kPerRunBytes = 96;
  constexpr uint64_t kPerPageBytes = 8;
  uint64_t bytes = 0;
  for (const RunEntry& entry : runs_) {
    bytes += kPerRunBytes + kPerPageBytes * entry.run.npages;
  }
  return bytes;
}

}  // namespace trenv
