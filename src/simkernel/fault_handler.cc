#include "src/simkernel/fault_handler.h"

#include <vector>

#include "src/common/cost_model.h"
#include "src/common/rng.h"

namespace trenv {

FaultHandler::FaultHandler(FrameAllocator* frames, const BackendRegistry* backends,
                           obs::Registry* stats, PageTouchObserver* observer)
    : frames_(frames), backends_(backends), observer_(observer) {
  if (stats != nullptr) {
    minor_ = stats->GetCounter("faults.minor");
    major_ = stats->GetCounter("faults.major");
    cow_ = stats->GetCounter("faults.cow");
    fetched_bytes_ = stats->GetCounter("fetch.bytes");
    direct_remote_ = stats->GetCounter("reads.direct_remote");
    direct_local_ = stats->GetCounter("reads.direct_local");
  }
}

void FaultHandler::Count(const BulkAccessStats& stats) {
  if (minor_ == nullptr) {
    return;
  }
  minor_->Add(static_cast<double>(stats.minor_faults));
  major_->Add(static_cast<double>(stats.major_faults));
  cow_->Add(static_cast<double>(stats.cow_faults));
  fetched_bytes_->Add(static_cast<double>(stats.bytes_fetched));
  direct_remote_->Add(static_cast<double>(stats.direct_remote));
  direct_local_->Add(static_cast<double>(stats.direct_local));
}

void BulkAccessStats::MergeFrom(const BulkAccessStats& other) {
  pages += other.pages;
  direct_local += other.direct_local;
  direct_remote += other.direct_remote;
  minor_faults += other.minor_faults;
  major_faults += other.major_faults;
  cow_faults += other.cow_faults;
  bytes_fetched += other.bytes_fetched;
  new_local_pages += other.new_local_pages;
  latency += other.latency;
  fetch_cpu += other.fetch_cpu;
}

Result<AccessOutcome> FaultHandler::Access(MmStruct& mm, Vaddr addr, bool write,
                                           PageContent new_content) {
  const Vma* vma = mm.FindVma(addr);
  if (vma == nullptr) {
    return Status::PermissionDenied("segfault: no VMA maps this address");
  }
  if (write && !vma->prot.write) {
    return Status::PermissionDenied("segfault: write to read-only VMA " + vma->name);
  }
  if (!write && !vma->prot.read) {
    return Status::PermissionDenied("segfault: read from non-readable VMA " + vma->name);
  }
  const Vpn vpn = AddrToVpn(addr);
  if (observer_ != nullptr) {
    observer_->OnTouch(mm, vpn, 1);
  }
  auto pte = mm.page_table().Lookup(vpn);
  if (!pte.has_value()) {
    return HandleUnpopulated(mm, *vma, vpn, write, new_content);
  }

  if (!pte->flags.valid) {
    // Lazy remote page (RDMA/NAS): major fault fetches 4 KiB and installs a
    // private local copy, writable per the VMA.
    MemoryBackend* backend = backends_->Get(pte->flags.pool);
    if (backend == nullptr) {
      return Status::Internal("no backend registered for pool");
    }
    TRENV_ASSIGN_OR_RETURN(FrameId frame, frames_->AllocatePages(1));
    const PageContent content = write ? new_content : pte->content;
    PteFlags flags;
    flags.valid = true;
    flags.write_protected = !vma->prot.write;
    flags.pool = PoolKind::kLocalDram;
    mm.page_table().MapRange(vpn, 1, flags, frame, content);
    mm.stats().major_faults += 1;
    mm.stats().local_pages += 1;
    if (major_ != nullptr) {
      major_->Increment();
      fetched_bytes_->Add(static_cast<double>(kPageSize));
    }
    AccessOutcome outcome;
    outcome.kind = AccessKind::kMajorFault;
    outcome.latency = cost::kMajorFaultEntry + backend->FetchLatency(1);
    outcome.content = content;
    return outcome;
  }

  // Valid PTE.
  if (!write) {
    AccessOutcome outcome;
    outcome.content = pte->content;
    if (pte->flags.remote()) {
      MemoryBackend* backend = backends_->Get(pte->flags.pool);
      if (backend == nullptr) {
        return Status::Internal("no backend registered for pool");
      }
      outcome.kind = AccessKind::kDirectRemote;
      outcome.latency = backend->EffectiveDirectLoadLatency();
      mm.stats().direct_remote_reads += 1;
      if (direct_remote_ != nullptr) {
        direct_remote_->Increment();
      }
    } else {
      outcome.kind = AccessKind::kDirectLocal;
      outcome.latency = cost::kLocalDramLatency;
      if (direct_local_ != nullptr) {
        direct_local_->Increment();
      }
    }
    return outcome;
  }

  // Write access.
  if (pte->flags.write_protected) {
    if (pte->flags.shared) {
      // Reader mapping of a shared region. CoW would fork the shared data
      // into a private copy, so the write is refused until shstate upgrades
      // this sandbox to owner (which revokes the other readers).
      return Status::PermissionDenied(
          "write to shared region reader mapping requires ownership upgrade");
    }
    return HandleCow(mm, vpn, *pte, write, new_content);
  }
  if (pte->flags.shared && pte->flags.remote()) {
    // Owner mapping of a shared region: the store goes straight to the pool
    // copy (byte-addressable CXL / RDMA write-through) and marks it dirty.
    MemoryBackend* backend = backends_->Get(pte->flags.pool);
    if (backend == nullptr) {
      return Status::Internal("no backend registered for pool");
    }
    PteFlags flags = pte->flags;
    flags.dirty = true;
    mm.page_table().MapRange(vpn, 1, flags, pte->backing, new_content);
    mm.stats().direct_remote_reads += 1;
    if (direct_remote_ != nullptr) {
      direct_remote_->Increment();
    }
    AccessOutcome outcome;
    outcome.kind = AccessKind::kDirectRemote;
    outcome.latency = backend->EffectiveDirectLoadLatency();
    outcome.content = new_content;
    return outcome;
  }
  // Direct local write: update the page's content in place.
  PteFlags flags = pte->flags;
  mm.page_table().MapRange(vpn, 1, flags, pte->backing, new_content);
  if (direct_local_ != nullptr) {
    direct_local_->Increment();
  }
  AccessOutcome outcome;
  outcome.kind = AccessKind::kDirectLocal;
  outcome.latency = cost::kLocalDramLatency;
  outcome.content = new_content;
  return outcome;
}

Result<AccessOutcome> FaultHandler::HandleUnpopulated(MmStruct& mm, const Vma& vma, Vpn vpn,
                                                      bool write, PageContent new_content) {
  (void)vma;
  // Zero-fill (anonymous) or page-cache-resident (file) minor fault. Both
  // allocate one private local frame.
  TRENV_ASSIGN_OR_RETURN(FrameId frame, frames_->AllocatePages(1));
  const PageContent content = write ? new_content : kZeroPageContent;
  PteFlags flags;
  flags.valid = true;
  flags.write_protected = !vma.prot.write;
  flags.pool = PoolKind::kLocalDram;
  mm.page_table().MapRange(vpn, 1, flags, frame, content, /*constant_content=*/!write);
  mm.stats().minor_faults += 1;
  mm.stats().local_pages += 1;
  if (minor_ != nullptr) {
    minor_->Increment();
  }
  AccessOutcome outcome;
  outcome.kind = AccessKind::kMinorFault;
  outcome.latency = cost::kMinorFault;
  outcome.content = content;
  return outcome;
}

Result<AccessOutcome> FaultHandler::HandleCow(MmStruct& mm, Vpn vpn, const PteView& pte,
                                              bool write, PageContent new_content) {
  (void)write;
  // Copy the page to a fresh local frame and install a writable PTE; the
  // shared original (e.g. in the CXL pool) is untouched (paper section 5.1).
  TRENV_ASSIGN_OR_RETURN(FrameId frame, frames_->AllocatePages(1));
  SimDuration latency = cost::kCowFault;
  if (pte.flags.remote()) {
    MemoryBackend* backend = backends_->Get(pte.flags.pool);
    if (backend == nullptr) {
      return Status::Internal("no backend registered for pool");
    }
    latency += backend->FetchLatency(1);
  }
  PteFlags flags;
  flags.valid = true;
  flags.write_protected = false;
  flags.pool = PoolKind::kLocalDram;
  mm.page_table().MapRange(vpn, 1, flags, frame, new_content);
  mm.stats().cow_faults += 1;
  mm.stats().local_pages += 1;
  if (cow_ != nullptr) {
    cow_->Increment();
    if (pte.flags.remote()) {
      fetched_bytes_->Add(static_cast<double>(kPageSize));
    }
  }
  AccessOutcome outcome;
  outcome.kind = AccessKind::kCowFault;
  outcome.latency = latency;
  outcome.content = new_content;
  return outcome;
}

Result<PageContent> FaultHandler::ReadPage(MmStruct& mm, Vaddr addr) {
  TRENV_ASSIGN_OR_RETURN(AccessOutcome outcome, Access(mm, addr, /*write=*/false));
  return outcome.content;
}

Status FaultHandler::WritePage(MmStruct& mm, Vaddr addr, PageContent content) {
  return Access(mm, addr, /*write=*/true, content).status();
}

Result<BulkAccessStats> FaultHandler::AccessRange(MmStruct& mm, Vaddr addr, uint64_t npages,
                                                  bool write) {
  BulkAccessStats stats;
  if (npages == 0) {
    return stats;
  }
  const Vma* vma = mm.FindVma(addr);
  const Vma* vma_end = mm.FindVma(addr + npages * kPageSize - 1);
  if (vma == nullptr || vma_end != vma) {
    return Status::InvalidArgument("range must lie within a single VMA");
  }
  if (write && !vma->prot.write) {
    return Status::PermissionDenied("segfault: write to read-only VMA " + vma->name);
  }
  const Vpn first_vpn = AddrToVpn(addr);
  if (observer_ != nullptr) {
    observer_->OnTouch(mm, first_vpn, npages);
  }

  // Snapshot the runs (the loop below mutates the table) into the reusable
  // per-handler scratch buffer: steady state performs no allocation here.
  std::vector<Segment>& segments = segments_scratch_;
  segments.clear();
  mm.page_table().ForEachRunIn(first_vpn, npages, [&](Vpn vpn, const PteRun& run) {
    segments.push_back({vpn, run});
  });

  Vpn cursor = first_vpn;
  const Vpn range_end = first_vpn + npages;
  auto handle_gap = [&](Vpn gap_start, uint64_t gap_pages) -> Status {
    if (gap_pages == 0) {
      return Status::Ok();
    }
    // Unpopulated: bulk zero-fill minor faults.
    TRENV_ASSIGN_OR_RETURN(FrameId frame, frames_->AllocatePages(gap_pages));
    PteFlags flags;
    flags.valid = true;
    flags.write_protected = !vma->prot.write;
    flags.pool = PoolKind::kLocalDram;
    if (write) {
      const PageContent base = MixU64(write_seed_++);
      mm.page_table().MapRange(gap_start, gap_pages, flags, frame, base);
    } else {
      mm.page_table().MapRange(gap_start, gap_pages, flags, frame, kZeroPageContent,
                               /*constant_content=*/true);
    }
    mm.stats().minor_faults += gap_pages;
    mm.stats().local_pages += gap_pages;
    stats.minor_faults += gap_pages;
    stats.new_local_pages += gap_pages;
    stats.latency += cost::kMinorFault * static_cast<double>(gap_pages);
    return Status::Ok();
  };

  for (const Segment& seg : segments) {
    if (seg.vpn > cursor) {
      TRENV_RETURN_IF_ERROR(handle_gap(cursor, seg.vpn - cursor));
    }
    const uint64_t n = seg.run.npages;
    const PteRun& run = seg.run;
    if (!run.flags.valid) {
      // Lazy remote run: bulk major faults.
      MemoryBackend* backend = backends_->Get(run.flags.pool);
      if (backend == nullptr) {
        return Status::Internal("no backend registered for pool");
      }
      TRENV_ASSIGN_OR_RETURN(FrameId frame, frames_->AllocatePages(n));
      PteFlags flags;
      flags.valid = true;
      flags.write_protected = !vma->prot.write;
      flags.pool = PoolKind::kLocalDram;
      PageContent content = run.content_base;
      bool constant = run.constant_content;
      if (write) {
        content = MixU64(write_seed_++);
        constant = false;
      }
      mm.page_table().MapRange(seg.vpn, n, flags, frame, content, constant);
      mm.stats().major_faults += n;
      mm.stats().local_pages += n;
      stats.major_faults += n;
      stats.new_local_pages += n;
      stats.bytes_fetched += n * kPageSize;
      stats.latency += cost::kMajorFaultEntry * static_cast<double>(n) + backend->FetchLatency(n);
      stats.fetch_cpu += backend->FetchCpuPerPage() * static_cast<double>(n);
    } else if (!write) {
      if (run.flags.remote()) {
        // Direct CXL loads: no fault, no latency charged here; the execution
        // model accounts the load-latency slowdown in aggregate.
        mm.stats().direct_remote_reads += n;
        stats.direct_remote += n;
      } else {
        stats.direct_local += n;
      }
    } else {
      // Write path.
      if (run.flags.write_protected) {
        if (run.flags.shared) {
          return Status::PermissionDenied(
              "write to shared region reader mapping requires ownership upgrade");
        }
        // Bulk CoW.
        MemoryBackend* backend =
            run.flags.remote() ? backends_->Get(run.flags.pool) : nullptr;
        TRENV_ASSIGN_OR_RETURN(FrameId frame, frames_->AllocatePages(n));
        PteFlags flags;
        flags.valid = true;
        flags.write_protected = false;
        flags.pool = PoolKind::kLocalDram;
        mm.page_table().MapRange(seg.vpn, n, flags, frame, MixU64(write_seed_++));
        mm.stats().cow_faults += n;
        mm.stats().local_pages += n;
        stats.cow_faults += n;
        stats.new_local_pages += n;
        stats.latency += cost::kCowFault * static_cast<double>(n);
        if (backend != nullptr) {
          stats.latency += backend->FetchLatency(n);
          stats.bytes_fetched += n * kPageSize;
        }
      } else if (run.flags.shared && run.flags.remote()) {
        // Owner mapping: bulk write-through to the pool copy. Like bulk
        // direct remote reads, no latency is charged here; shstate accounts
        // the pool write bytes, the execution model the load slowdown.
        PteFlags flags = run.flags;
        flags.dirty = true;
        mm.page_table().MapRange(seg.vpn, n, flags, run.backing_base, MixU64(write_seed_++));
        mm.stats().direct_remote_reads += n;
        stats.direct_remote += n;
      } else {
        // Direct local writes: refresh content.
        mm.page_table().MapRange(seg.vpn, n, run.flags, run.backing_base, MixU64(write_seed_++));
        stats.direct_local += n;
      }
    }
    cursor = seg.vpn + n;
  }
  if (cursor < range_end) {
    TRENV_RETURN_IF_ERROR(handle_gap(cursor, range_end - cursor));
  }
  stats.pages = npages;
  Count(stats);
  return stats;
}

}  // namespace trenv
