// Shared low-level types for the simulated kernel memory subsystem.
#ifndef TRENV_SIMKERNEL_TYPES_H_
#define TRENV_SIMKERNEL_TYPES_H_

#include <cstdint>
#include <string_view>

#include "src/common/units.h"

namespace trenv {

using Vaddr = uint64_t;   // virtual address
using FileId = int64_t;   // global file identity (page-cache keying)
using Vpn = uint64_t;     // virtual page number (Vaddr >> kPageShift)
using FrameId = uint64_t; // local DRAM frame handle
using PoolOffset = uint64_t;  // page offset within a remote memory pool

inline constexpr uint64_t kNoBacking = ~0ULL;

constexpr Vpn AddrToVpn(Vaddr addr) { return addr >> kPageShift; }
constexpr Vaddr VpnToAddr(Vpn vpn) { return vpn << kPageShift; }

// Which tier backs a mapping. kLocalDram is the node's own memory; the rest
// are disaggregated pools reached over CXL / RDMA / storage fabrics.
enum class PoolKind : uint8_t {
  kLocalDram = 0,
  kCxl = 1,
  kRdma = 2,
  kNas = 3,
};
inline constexpr size_t kPoolKindCount = 4;

std::string_view PoolKindName(PoolKind kind);

// Page protection bits on a VMA.
struct Protection {
  bool read = true;
  bool write = false;
  bool exec = false;

  static constexpr Protection ReadOnly() { return Protection{true, false, false}; }
  static constexpr Protection ReadWrite() { return Protection{true, true, false}; }
  static constexpr Protection ReadExec() { return Protection{true, false, true}; }

  bool operator==(const Protection&) const = default;
};

// Logical page content. A run of pages starting with content base B has
// content B, B+1, B+2, ...; copies preserve the progression and dedup
// compares it. Freshly-zeroed pages have content kZeroPageContent.
using PageContent = uint64_t;
inline constexpr PageContent kZeroPageContent = 0;

}  // namespace trenv

#endif  // TRENV_SIMKERNEL_TYPES_H_
