// File page cache model. Both the guest kernel and the host kernel own one
// of these in the VM platform; the paper's "duplicated page cache" problem
// (section 2.4) is literally the same file ranges resident in two caches.
//
// The cache is an interval set per file: inserting a range dedups against
// what is already resident, so accounting matches Linux semantics where a
// file page is cached once regardless of how many processes read it.
#ifndef TRENV_SIMKERNEL_PAGE_CACHE_H_
#define TRENV_SIMKERNEL_PAGE_CACHE_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/common/units.h"
#include "src/simkernel/types.h"

namespace trenv {

class PageCache {
 public:
  explicit PageCache(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // Caches [page_index, page_index + npages) of file_id. Returns how many of
  // those pages were newly inserted (the rest were already resident).
  uint64_t Insert(FileId file_id, uint64_t page_index, uint64_t npages);
  bool Contains(FileId file_id, uint64_t page_index) const;
  // Number of resident pages in the given range.
  uint64_t ResidentIn(FileId file_id, uint64_t page_index, uint64_t npages) const;

  // Drops a whole file; returns the number of pages released.
  uint64_t DropFile(FileId file_id);
  void Clear();

  uint64_t cached_pages() const { return cached_pages_; }
  uint64_t cached_bytes() const { return cached_pages_ * kPageSize; }

 private:
  // Per-file interval set: start page -> length.
  using Intervals = std::map<uint64_t, uint64_t>;

  std::string name_;
  std::map<FileId, Intervals> files_;
  uint64_t cached_pages_ = 0;
};

}  // namespace trenv

#endif  // TRENV_SIMKERNEL_PAGE_CACHE_H_
