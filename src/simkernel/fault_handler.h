// FaultHandler: resolves memory accesses against an MmStruct, implementing
// the paper's PTE state machine (section 5.1):
//
//   read  of valid local page            -> direct local load
//   read  of valid WP CXL page           -> direct remote load, NO fault
//   write of valid WP page               -> CoW fault: copy to local frame
//   touch of invalid remote (RDMA/NAS)   -> major fault: fetch 4 KiB, map local
//   touch of unpopulated anonymous page  -> minor fault: zero-fill local
//
// Shared-region extensions (src/shstate/, gated on PteFlags::shared so the
// classic states above are untouched):
//   write of shared owner page (!wp)     -> direct remote store, marks dirty
//   write of shared reader page (wp)     -> refused: needs ownership upgrade
//                                           (never CoW — a private copy would
//                                           silently fork the shared data)
//
// Bulk-range entry points process whole PTE runs at once so the platform can
// model multi-GiB working sets in O(runs).
#ifndef TRENV_SIMKERNEL_FAULT_HANDLER_H_
#define TRENV_SIMKERNEL_FAULT_HANDLER_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/common/time.h"
#include "src/mempool/backend.h"
#include "src/obs/registry.h"
#include "src/simkernel/frame_allocator.h"
#include "src/simkernel/mm_struct.h"

namespace trenv {

enum class AccessKind : uint8_t {
  kDirectLocal,
  kDirectRemote,
  kMinorFault,
  kMajorFault,
  kCowFault,
};

struct AccessOutcome {
  AccessKind kind;
  SimDuration latency;
  PageContent content = kZeroPageContent;  // content observed by a read
};

// Observes page touches as accesses resolve. The TrEnv working-set recorder
// hooks this during a function's first invocation to capture its access
// footprint — every touched page, whatever its PTE state, since the same
// profile drives both remote prefetch (which filters to lazy runs at plan
// time) and promotion heat (where direct CXL reads matter most). A null
// observer costs one branch per access run.
class PageTouchObserver {
 public:
  virtual ~PageTouchObserver() = default;
  // `npages` pages starting at `vpn` in `mm` were just touched (as one run).
  virtual void OnTouch(const MmStruct& mm, Vpn vpn, uint64_t npages) = 0;
};

// Aggregate result of touching a page range.
struct BulkAccessStats {
  uint64_t pages = 0;
  uint64_t direct_local = 0;
  uint64_t direct_remote = 0;
  uint64_t minor_faults = 0;
  uint64_t major_faults = 0;
  uint64_t cow_faults = 0;
  uint64_t bytes_fetched = 0;
  uint64_t new_local_pages = 0;
  SimDuration latency;      // wall latency of the touches
  SimDuration fetch_cpu;    // host CPU burned by fetch completions

  void MergeFrom(const BulkAccessStats& other);
};

class FaultHandler {
 public:
  // `stats` (optional) receives per-kind fault/fetch counters under the
  // "faults." / "fetch." / "reads." prefixes. `observer` (optional) is
  // notified of every touched page run (working-set recording).
  FaultHandler(FrameAllocator* frames, const BackendRegistry* backends,
               obs::Registry* stats = nullptr, PageTouchObserver* observer = nullptr);

  // Touches one page. `write` requests write access. new_content is the
  // content a write stores (ignored for reads).
  Result<AccessOutcome> Access(MmStruct& mm, Vaddr addr, bool write,
                               PageContent new_content = kZeroPageContent);

  Result<PageContent> ReadPage(MmStruct& mm, Vaddr addr);
  Status WritePage(MmStruct& mm, Vaddr addr, PageContent content);

  // Touches [addr, addr + npages * kPageSize). For writes the stored content
  // is derived from the pages' prior content (modelling in-place updates).
  Result<BulkAccessStats> AccessRange(MmStruct& mm, Vaddr addr, uint64_t npages, bool write);

 private:
  struct Segment {
    Vpn vpn;
    PteRun run;
  };

  Result<AccessOutcome> HandleUnpopulated(MmStruct& mm, const Vma& vma, Vpn vpn, bool write,
                                          PageContent new_content);
  Result<AccessOutcome> HandleCow(MmStruct& mm, Vpn vpn, const PteView& pte, bool write,
                                  PageContent new_content);

  // Applies a BulkAccessStats delta to the bound counters (no-op unbound).
  void Count(const BulkAccessStats& stats);

  FrameAllocator* frames_;
  const BackendRegistry* backends_;
  PageTouchObserver* observer_ = nullptr;
  uint64_t write_seed_ = 0x57a7e;  // distinguishes freshly written content
  // Scratch for AccessRange's run snapshot, reused across calls so bulk
  // accesses don't allocate once the buffer has grown to the working size.
  std::vector<Segment> segments_scratch_;
  // Telemetry counters, cached once so the hot path pays one add each.
  obs::Counter* minor_ = nullptr;
  obs::Counter* major_ = nullptr;
  obs::Counter* cow_ = nullptr;
  obs::Counter* fetched_bytes_ = nullptr;
  obs::Counter* direct_remote_ = nullptr;
  obs::Counter* direct_local_ = nullptr;
};

}  // namespace trenv

#endif  // TRENV_SIMKERNEL_FAULT_HANDLER_H_
