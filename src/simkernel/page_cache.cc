#include "src/simkernel/page_cache.h"

#include <algorithm>

namespace trenv {

uint64_t PageCache::Insert(FileId file_id, uint64_t page_index, uint64_t npages) {
  if (npages == 0) {
    return 0;
  }
  Intervals& intervals = files_[file_id];
  uint64_t inserted = 0;
  uint64_t cursor = page_index;
  const uint64_t end = page_index + npages;

  while (cursor < end) {
    // Find the first interval that could cover or follow `cursor`.
    auto it = intervals.upper_bound(cursor);
    if (it != intervals.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second > cursor) {
        // cursor inside an existing interval: skip past it.
        cursor = prev->first + prev->second;
        continue;
      }
    }
    // cursor is in a gap; it ends at the next interval start (or range end).
    const uint64_t gap_end = it == intervals.end() ? end : std::min(end, it->first);
    if (gap_end > cursor) {
      intervals.emplace(cursor, gap_end - cursor);
      inserted += gap_end - cursor;
      cursor = gap_end;
    }
  }
  // Coalesce the whole affected neighbourhood.
  auto it = intervals.lower_bound(page_index);
  if (it != intervals.begin()) {
    --it;
  }
  while (it != intervals.end()) {
    auto next = std::next(it);
    if (next == intervals.end() || next->first > page_index + npages + 1) {
      break;
    }
    if (it->first + it->second >= next->first) {
      const uint64_t merged_end = std::max(it->first + it->second, next->first + next->second);
      it->second = merged_end - it->first;
      intervals.erase(next);
    } else {
      ++it;
    }
  }
  cached_pages_ += inserted;
  return inserted;
}

bool PageCache::Contains(FileId file_id, uint64_t page_index) const {
  return ResidentIn(file_id, page_index, 1) == 1;
}

uint64_t PageCache::ResidentIn(FileId file_id, uint64_t page_index, uint64_t npages) const {
  auto file_it = files_.find(file_id);
  if (file_it == files_.end() || npages == 0) {
    return 0;
  }
  const Intervals& intervals = file_it->second;
  const uint64_t end = page_index + npages;
  uint64_t resident = 0;
  auto it = intervals.upper_bound(page_index);
  if (it != intervals.begin()) {
    --it;
  }
  for (; it != intervals.end() && it->first < end; ++it) {
    const uint64_t lo = std::max(it->first, page_index);
    const uint64_t hi = std::min(it->first + it->second, end);
    if (hi > lo) {
      resident += hi - lo;
    }
  }
  return resident;
}

uint64_t PageCache::DropFile(FileId file_id) {
  auto it = files_.find(file_id);
  if (it == files_.end()) {
    return 0;
  }
  uint64_t released = 0;
  for (const auto& [start, len] : it->second) {
    released += len;
  }
  files_.erase(it);
  cached_pages_ -= released;
  return released;
}

void PageCache::Clear() {
  files_.clear();
  cached_pages_ = 0;
}

}  // namespace trenv
