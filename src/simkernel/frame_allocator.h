// Local DRAM frame accounting for a simulated node.
//
// Frames carry no payload (logical page content lives in page-table runs);
// the allocator tracks how much local memory a node has committed, which is
// what the paper's memory-usage figures measure.
#ifndef TRENV_SIMKERNEL_FRAME_ALLOCATOR_H_
#define TRENV_SIMKERNEL_FRAME_ALLOCATOR_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/simkernel/types.h"

namespace trenv {

class FrameAllocator {
 public:
  explicit FrameAllocator(uint64_t capacity_bytes);

  // Allocates a contiguous range of n frames; returns the base FrameId.
  Result<FrameId> AllocatePages(uint64_t n);
  void FreePages(uint64_t n);

  uint64_t capacity_bytes() const { return capacity_bytes_; }
  uint64_t used_pages() const { return used_pages_; }
  uint64_t used_bytes() const { return used_pages_ * kPageSize; }
  uint64_t free_bytes() const { return capacity_bytes_ - used_bytes(); }
  uint64_t peak_used_bytes() const { return peak_used_pages_ * kPageSize; }

  void ResetPeak() { peak_used_pages_ = used_pages_; }

 private:
  uint64_t capacity_bytes_;
  uint64_t used_pages_ = 0;
  uint64_t peak_used_pages_ = 0;
  FrameId next_frame_ = 1;
};

}  // namespace trenv

#endif  // TRENV_SIMKERNEL_FRAME_ALLOCATOR_H_
