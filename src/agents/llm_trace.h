// LLM trace replay (paper section 9.6 "Evaluated Agents"): to make agent
// runs deterministic, the paper records real LLM outputs and response times
// and replays them from a simulated inference server. We synthesize an
// equivalent recorded trace per agent — once, seeded — whose totals match
// the Table 2/3 measurements; every benchmark run then replays it exactly.
#ifndef TRENV_AGENTS_LLM_TRACE_H_
#define TRENV_AGENTS_LLM_TRACE_H_

#include <cstdint>
#include <variant>
#include <vector>

#include "src/agents/agent_profile.h"
#include "src/common/rng.h"
#include "src/common/time.h"

namespace trenv {

// One recorded LLM round trip.
struct LlmCallStep {
  uint32_t input_tokens = 0;
  uint32_t output_tokens = 0;
  SimDuration response_latency;  // recorded inference-server time
};

// One tool/processing phase between LLM calls.
struct ToolStep {
  SimDuration cpu;               // host CPU demand
  SimDuration io;                // non-CPU wait (network, subprocess)
  int64_t memory_delta_bytes = 0;  // allocation (+) or release (-)
  uint64_t file_read_bytes = 0;  // drives page-cache population
  bool uses_browser = false;     // CPU runs inside the browser process
};

using AgentStep = std::variant<LlmCallStep, ToolStep>;

struct AgentTrace {
  std::string agent;
  std::vector<AgentStep> steps;

  SimDuration TotalLlmWait() const;
  SimDuration TotalToolCpu() const;
  SimDuration TotalToolIo() const;
  uint64_t TotalInputTokens() const;
  uint64_t TotalOutputTokens() const;
  uint64_t TotalFileReadBytes() const;
  // Uncontended end-to-end latency of the trace.
  SimDuration NominalLatency() const;
};

// Synthesizes the recorded trace for an agent. Deterministic for a fixed
// seed; totals match the profile's Table 2/3 numbers.
AgentTrace RecordTrace(const AgentProfile& profile, uint64_t seed);

}  // namespace trenv

#endif  // TRENV_AGENTS_LLM_TRACE_H_
