#include "src/agents/agent_profile.h"

namespace trenv {

std::vector<AgentProfile> Table2Agents() {
  std::vector<AgentProfile> agents;

  {
    AgentProfile a;
    a.name = "Blackjack";
    a.framework = "LangChain";
    a.description = "Play the Blackjack game";
    a.e2e_latency = SimDuration::FromSecondsF(3.2);
    a.dynamic_memory_bytes = 74 * kMiB;
    a.cpu_time = SimDuration::Millis(411);
    a.input_tokens = 1690;
    a.output_tokens = 8;
    a.llm_calls = 3;
    a.file_read_bytes = 6 * kMiB;
    a.read_only_memory_fraction = 0.6;
    a.snapshot_bytes = 420 * kMiB;
    agents.push_back(a);
  }
  {
    AgentProfile a;
    a.name = "Bug fixer";
    a.framework = "LangChain";
    a.description = "Fix the bugs in given code";
    a.e2e_latency = SimDuration::FromSecondsF(36.5);
    a.dynamic_memory_bytes = 95 * kMiB;
    a.cpu_time = SimDuration::Millis(809);
    a.input_tokens = 1557;
    a.output_tokens = 530;
    a.llm_calls = 4;
    a.file_read_bytes = 10 * kMiB;
    a.read_only_memory_fraction = 0.55;
    a.snapshot_bytes = 430 * kMiB;
    agents.push_back(a);
  }
  {
    AgentProfile a;
    a.name = "Map reduce";
    a.framework = "LangChain";
    a.description = "Split and summary a document";
    a.e2e_latency = SimDuration::FromSecondsF(56.5);
    a.dynamic_memory_bytes = 199 * kMiB;
    a.cpu_time = SimDuration::FromSecondsF(1.2);
    a.input_tokens = 8640;
    a.output_tokens = 2644;
    a.llm_calls = 9;
    a.file_read_bytes = 90 * kMiB;  // PDF parsing
    a.read_only_memory_fraction = 0.5;
    a.snapshot_bytes = 460 * kMiB;
    agents.push_back(a);
  }
  {
    AgentProfile a;
    a.name = "Shop assistant";
    a.framework = "Browser-Use";
    a.description = "Select the ideal products on a website";
    a.e2e_latency = SimDuration::FromSecondsF(140.7);
    a.dynamic_memory_bytes = 1080 * kMiB;
    a.cpu_time = SimDuration::FromSecondsF(10.3);
    a.input_tokens = 43185;
    a.output_tokens = 1494;
    a.llm_calls = 14;
    a.uses_browser = true;
    a.browser_cpu_fraction = 0.72;
    a.file_read_bytes = 280 * kMiB;
    a.read_only_memory_fraction = 0.45;
    a.vm_memory_bytes = 4 * kGiB;
    a.snapshot_bytes = 900 * kMiB;
    agents.push_back(a);
  }
  {
    AgentProfile a;
    a.name = "Blog summary";
    a.framework = "OWL";
    a.description = "Collect and summary blogs";
    a.e2e_latency = SimDuration::FromSecondsF(193.1);
    a.dynamic_memory_bytes = 1246 * kMiB;
    a.cpu_time = SimDuration::FromSecondsF(56.8);
    a.input_tokens = 49398;
    a.output_tokens = 2703;
    a.llm_calls = 16;
    a.uses_browser = true;
    a.browser_cpu_fraction = 0.78;
    // ~500 MB cached in the guest page cache AND again in the host (2.4).
    a.file_read_bytes = 500 * kMiB;
    a.read_only_memory_fraction = 0.42;
    a.vm_memory_bytes = 4 * kGiB;
    a.snapshot_bytes = 950 * kMiB;
    agents.push_back(a);
  }
  {
    AgentProfile a;
    a.name = "Game design";
    a.framework = "OpenManus";
    a.description = "Implement a html-based game";
    a.e2e_latency = SimDuration::FromSecondsF(107.0);
    a.dynamic_memory_bytes = 1389 * kMiB;
    a.cpu_time = SimDuration::FromSecondsF(7.5);
    a.input_tokens = 75121;
    a.output_tokens = 2098;
    a.llm_calls = 12;
    a.uses_browser = true;
    // Low CPU utilization (~7%) and infrequent browser use: browser sharing
    // helps little (Fig 24c).
    a.browser_cpu_fraction = 0.25;
    a.file_read_bytes = 220 * kMiB;
    a.read_only_memory_fraction = 0.4;
    a.vm_memory_bytes = 4 * kGiB;
    a.snapshot_bytes = 980 * kMiB;
    agents.push_back(a);
  }
  return agents;
}

const AgentProfile* FindAgent(const std::string& name) {
  static const std::vector<AgentProfile> kAgents = Table2Agents();
  for (const auto& agent : kAgents) {
    if (agent.name == name) {
      return &agent;
    }
  }
  return nullptr;
}

}  // namespace trenv
