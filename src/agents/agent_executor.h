// Trace analysis helpers: summarize a recorded agent trace and reproduce the
// Table 2 / Table 3 rows from it.
#ifndef TRENV_AGENTS_AGENT_EXECUTOR_H_
#define TRENV_AGENTS_AGENT_EXECUTOR_H_

#include "src/agents/llm_trace.h"

namespace trenv {

struct TraceSummary {
  SimDuration nominal_e2e;   // uncontended end-to-end latency
  SimDuration tool_cpu;      // Table 2 "CPU Time"
  SimDuration llm_wait;
  uint64_t input_tokens = 0;   // Table 3
  uint64_t output_tokens = 0;  // Table 3
  uint64_t file_read_bytes = 0;
  size_t llm_calls = 0;
  size_t tool_steps = 0;
};

TraceSummary SummarizeTrace(const AgentTrace& trace);

}  // namespace trenv

#endif  // TRENV_AGENTS_AGENT_EXECUTOR_H_
