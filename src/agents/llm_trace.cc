#include "src/agents/llm_trace.h"

#include <algorithm>
#include <cmath>

namespace trenv {

SimDuration AgentTrace::TotalLlmWait() const {
  SimDuration total;
  for (const auto& step : steps) {
    if (const auto* llm = std::get_if<LlmCallStep>(&step)) {
      total += llm->response_latency;
    }
  }
  return total;
}

SimDuration AgentTrace::TotalToolCpu() const {
  SimDuration total;
  for (const auto& step : steps) {
    if (const auto* tool = std::get_if<ToolStep>(&step)) {
      total += tool->cpu;
    }
  }
  return total;
}

SimDuration AgentTrace::TotalToolIo() const {
  SimDuration total;
  for (const auto& step : steps) {
    if (const auto* tool = std::get_if<ToolStep>(&step)) {
      total += tool->io;
    }
  }
  return total;
}

uint64_t AgentTrace::TotalInputTokens() const {
  uint64_t total = 0;
  for (const auto& step : steps) {
    if (const auto* llm = std::get_if<LlmCallStep>(&step)) {
      total += llm->input_tokens;
    }
  }
  return total;
}

uint64_t AgentTrace::TotalOutputTokens() const {
  uint64_t total = 0;
  for (const auto& step : steps) {
    if (const auto* llm = std::get_if<LlmCallStep>(&step)) {
      total += llm->output_tokens;
    }
  }
  return total;
}

uint64_t AgentTrace::TotalFileReadBytes() const {
  uint64_t total = 0;
  for (const auto& step : steps) {
    if (const auto* tool = std::get_if<ToolStep>(&step)) {
      total += tool->file_read_bytes;
    }
  }
  return total;
}

SimDuration AgentTrace::NominalLatency() const {
  return TotalLlmWait() + TotalToolCpu() + TotalToolIo();
}

AgentTrace RecordTrace(const AgentProfile& profile, uint64_t seed) {
  Rng rng(seed ^ MixU64(0xA6E27 + profile.input_tokens));
  AgentTrace trace;
  trace.agent = profile.name;

  const uint32_t llm_calls = std::max<uint32_t>(1, profile.llm_calls);
  const uint32_t tool_steps = llm_calls + 1;  // tool, llm, tool, ..., llm, tool

  // Budget split. Tool I/O (subprocesses, page loads) takes a slice of the
  // end-to-end time; LLM waiting absorbs the rest.
  const SimDuration tool_io_total = profile.e2e_latency * 0.08;
  SimDuration llm_wait_total =
      profile.e2e_latency - profile.cpu_time - tool_io_total;
  if (llm_wait_total < SimDuration::Zero()) {
    llm_wait_total = SimDuration::Zero();
  }

  // Random positive weights for splitting budgets across steps.
  auto weights = [&rng](uint32_t n) {
    std::vector<double> w(n);
    double sum = 0;
    for (auto& v : w) {
      v = 0.4 + rng.NextDouble();
      sum += v;
    }
    for (auto& v : w) {
      v /= sum;
    }
    return w;
  };
  const std::vector<double> llm_w = weights(llm_calls);
  const std::vector<double> cpu_w = weights(tool_steps);
  const std::vector<double> io_w = weights(tool_steps);
  const std::vector<double> file_w = weights(tool_steps);

  // Input tokens grow as the context accumulates: weight call i by (i+1).
  double in_norm = 0;
  for (uint32_t i = 0; i < llm_calls; ++i) {
    in_norm += static_cast<double>(i + 1);
  }

  // Dynamic memory ramps up over the first ~70% of tool steps.
  const auto ramp_steps = std::max<uint32_t>(1, tool_steps * 7 / 10);
  const int64_t mem_per_ramp_step =
      static_cast<int64_t>(profile.dynamic_memory_bytes / ramp_steps);

  uint64_t in_left = profile.input_tokens;
  uint64_t out_left = profile.output_tokens;
  for (uint32_t i = 0; i < llm_calls; ++i) {
    // Tool step before each LLM call.
    ToolStep tool;
    tool.cpu = profile.cpu_time * cpu_w[i];
    tool.io = tool_io_total * io_w[i];
    tool.memory_delta_bytes = i < ramp_steps ? mem_per_ramp_step : 0;
    tool.file_read_bytes =
        static_cast<uint64_t>(static_cast<double>(profile.file_read_bytes) * file_w[i]);
    tool.uses_browser = profile.uses_browser && rng.NextBool(0.85);
    trace.steps.emplace_back(tool);

    LlmCallStep llm;
    const bool last = i + 1 == llm_calls;
    llm.input_tokens = static_cast<uint32_t>(
        last ? in_left
             : std::min<uint64_t>(in_left, static_cast<uint64_t>(
                                               static_cast<double>(profile.input_tokens) *
                                               static_cast<double>(i + 1) / in_norm)));
    in_left -= llm.input_tokens;
    llm.output_tokens = static_cast<uint32_t>(
        last ? out_left : std::min<uint64_t>(out_left, profile.output_tokens / llm_calls));
    out_left -= llm.output_tokens;
    llm.response_latency = llm_wait_total * llm_w[i];
    trace.steps.emplace_back(llm);
  }
  // Final tool step renders/validates the result.
  ToolStep final_tool;
  final_tool.cpu = profile.cpu_time * cpu_w[tool_steps - 1];
  final_tool.io = tool_io_total * io_w[tool_steps - 1];
  final_tool.file_read_bytes = static_cast<uint64_t>(
      static_cast<double>(profile.file_read_bytes) * file_w[tool_steps - 1]);
  final_tool.uses_browser = false;
  trace.steps.emplace_back(final_tool);
  return trace;
}

}  // namespace trenv
