// Serverless-vs-LLM cost model (paper section 2.3, equations 1-2, Fig 3).
#ifndef TRENV_AGENTS_COST_MODEL_H_
#define TRENV_AGENTS_COST_MODEL_H_

#include "src/agents/agent_profile.h"

namespace trenv {

// C_LLM = L_in * P_in + L_out * P_out (USD).
double LlmCallCostUsd(uint64_t input_tokens, uint64_t output_tokens);

// C_s = T * P_s * M, with T in ms and M in GB (USD).
double ServerlessCostUsd(SimDuration e2e, uint64_t allocated_memory_bytes);

// C_s / C_LLM for an agent run (Fig 3's y-axis).
double RelativeServerlessCost(const AgentProfile& profile);

}  // namespace trenv

#endif  // TRENV_AGENTS_COST_MODEL_H_
