#include "src/agents/cost_model.h"

#include "src/common/cost_model.h"

namespace trenv {

double LlmCallCostUsd(uint64_t input_tokens, uint64_t output_tokens) {
  return static_cast<double>(input_tokens) * cost::kLlmUsdPerInputToken +
         static_cast<double>(output_tokens) * cost::kLlmUsdPerOutputToken;
}

double ServerlessCostUsd(SimDuration e2e, uint64_t allocated_memory_bytes) {
  const double gb = static_cast<double>(allocated_memory_bytes) / 1e9;
  return e2e.millis() * cost::kServerlessUsdPerMsPerGb * gb;
}

double RelativeServerlessCost(const AgentProfile& profile) {
  const double llm = LlmCallCostUsd(profile.input_tokens, profile.output_tokens);
  // Billed on the VM's allocated memory for the full end-to-end duration.
  const double serverless = ServerlessCostUsd(profile.e2e_latency, profile.vm_memory_bytes);
  return llm <= 0 ? 0 : serverless / llm;
}

}  // namespace trenv
