// Browser model and the shared-browser pool (paper section 6.2).
//
// A browser instance is memory- and CPU-heavy (main process, network
// service, GPU/compositor, renderers). TrEnv-S lets up to N agents share one
// instance, each in its own tab group: the fixed processes are multiplexed,
// so per-agent memory shrinks and browser CPU work is cheaper per agent
// (shared network stack / compositor).
#ifndef TRENV_AGENTS_BROWSER_H_
#define TRENV_AGENTS_BROWSER_H_

#include <cstdint>
#include <list>
#include <memory>

#include "src/common/units.h"

namespace trenv {

// Fixed footprint of one browser instance (main + utility processes).
inline constexpr uint64_t kBrowserBaseBytes = 620 * kMiB;
// Extra per attached agent (its tab group / renderer share).
inline constexpr uint64_t kBrowserPerAgentBytes = 95 * kMiB;
// CPU-efficiency factor for browser work on a shared instance: shared
// network service, cache, and compositor avoid duplicated work.
inline constexpr double kSharedBrowserCpuFactor = 0.55;

class Browser {
 public:
  explicit Browser(uint64_t id, uint32_t capacity) : id_(id), capacity_(capacity) {}

  uint64_t id() const { return id_; }
  uint32_t capacity() const { return capacity_; }
  uint32_t attached() const { return attached_; }
  bool HasSeat() const { return attached_ < capacity_; }

  void Attach() { ++attached_; }
  void Detach() {
    if (attached_ > 0) {
      --attached_;
    }
  }

  uint64_t MemoryBytes() const {
    return kBrowserBaseBytes + kBrowserPerAgentBytes * attached_;
  }

 private:
  uint64_t id_;
  uint32_t capacity_;
  uint32_t attached_ = 0;
};

// Hands out browser seats; grows the browser fleet on demand and reaps empty
// browsers.
class SharedBrowserPool {
 public:
  explicit SharedBrowserPool(uint32_t agents_per_browser)
      : agents_per_browser_(agents_per_browser) {}

  // Attaches an agent; returns the browser it shares.
  Browser* Acquire();
  void Release(Browser* browser);

  size_t browser_count() const { return browsers_.size(); }
  uint64_t TotalMemoryBytes() const;

 private:
  uint32_t agents_per_browser_;
  uint64_t next_id_ = 1;
  std::list<std::unique_ptr<Browser>> browsers_;
};

}  // namespace trenv

#endif  // TRENV_AGENTS_BROWSER_H_
