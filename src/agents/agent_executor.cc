#include "src/agents/agent_executor.h"

namespace trenv {

TraceSummary SummarizeTrace(const AgentTrace& trace) {
  TraceSummary summary;
  summary.nominal_e2e = trace.NominalLatency();
  summary.tool_cpu = trace.TotalToolCpu();
  summary.llm_wait = trace.TotalLlmWait();
  summary.input_tokens = trace.TotalInputTokens();
  summary.output_tokens = trace.TotalOutputTokens();
  summary.file_read_bytes = trace.TotalFileReadBytes();
  for (const auto& step : trace.steps) {
    if (std::holds_alternative<LlmCallStep>(step)) {
      ++summary.llm_calls;
    } else {
      ++summary.tool_steps;
    }
  }
  return summary;
}

}  // namespace trenv
