#include "src/agents/browser.h"

namespace trenv {

Browser* SharedBrowserPool::Acquire() {
  for (auto& browser : browsers_) {
    if (browser->HasSeat()) {
      browser->Attach();
      return browser.get();
    }
  }
  browsers_.push_back(std::make_unique<Browser>(next_id_++, agents_per_browser_));
  browsers_.back()->Attach();
  return browsers_.back().get();
}

uint64_t SharedBrowserPool::TotalMemoryBytes() const {
  uint64_t total = 0;
  for (const auto& browser : browsers_) {
    total += browser->MemoryBytes();
  }
  return total;
}

void SharedBrowserPool::Release(Browser* browser) {
  if (browser == nullptr) {
    return;
  }
  browser->Detach();
  for (auto it = browsers_.begin(); it != browsers_.end(); ++it) {
    if (it->get() == browser && (*it)->attached() == 0) {
      browsers_.erase(it);
      return;
    }
  }
}

}  // namespace trenv
