// Agent profiles: the six representative LLM agents of paper Table 2/3,
// with their VM sizing (section 9.6 configurations) and workload structure.
#ifndef TRENV_AGENTS_AGENT_PROFILE_H_
#define TRENV_AGENTS_AGENT_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/common/units.h"

namespace trenv {

struct AgentProfile {
  std::string name;
  std::string framework;  // LangChain / Browser-Use / OWL / OpenManus
  std::string description;

  // Table 2 measurements (on the VM platform, uncontended).
  SimDuration e2e_latency;
  uint64_t dynamic_memory_bytes;  // runtime-allocated memory (Table 2 "Memory")
  SimDuration cpu_time;           // active CPU across the whole run

  // Table 3 token usage.
  uint64_t input_tokens = 0;
  uint64_t output_tokens = 0;

  // Structure.
  uint32_t llm_calls = 4;        // number of LLM round trips
  bool uses_browser = false;
  // Bytes read from the filesystem during execution (drives page-cache
  // duplication; e.g. Blog summary caches ~500 MB in guest AND host).
  uint64_t file_read_bytes = 32 * kMiB;
  // Fraction of dynamic memory that is read-only post-warmup and therefore
  // shareable across instances via CXL templates.
  double read_only_memory_fraction = 0.5;
  // Fraction of the agent's CPU time spent inside browser processes.
  double browser_cpu_fraction = 0.0;

  // VM sizing (section 9.6 "Configurations").
  uint32_t vcpus = 1;
  uint64_t vm_memory_bytes = 2 * kGiB;
  uint64_t vm_disk_bytes = 5 * kGiB;

  // Post-boot guest image (snapshot) size for restore modelling.
  uint64_t snapshot_bytes = 640 * kMiB;

  double AvgCpuUtilization() const {
    return e2e_latency.seconds() <= 0 ? 0 : cpu_time.seconds() / e2e_latency.seconds();
  }
};

// The six evaluated agents (Blackjack, Bug fixer, Map reduce, Shop
// assistant, Blog summary, Game design).
std::vector<AgentProfile> Table2Agents();
const AgentProfile* FindAgent(const std::string& name);

}  // namespace trenv

#endif  // TRENV_AGENTS_AGENT_PROFILE_H_
