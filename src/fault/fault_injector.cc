#include "src/fault/fault_injector.h"

#include <algorithm>

#include "src/sim/event_scheduler.h"

namespace trenv {
namespace {

// Independent seed stream for the node plan so it never shifts with the
// number of fetch-path draws that preceded PlanNodeEvents.
constexpr uint64_t kNodePlanSeedSalt = 0x9E3779B97F4A7C15ULL;

}  // namespace

FaultInjector::FaultInjector(FaultSchedule schedule, obs::Registry* stats)
    : schedule_(std::move(schedule)), rng_(schedule_.seed) {
  BindStats(stats);
}

void FaultInjector::BindStats(obs::Registry* stats) {
  if (stats == nullptr) return;
  injected_counter_ = stats->GetCounter("fault.injected");
  retries_counter_ = stats->GetCounter("fault.retries");
  failovers_counter_ = stats->GetCounter("fault.failovers");
  crashes_counter_ = stats->GetCounter("fault.crashes");
  restarts_counter_ = stats->GetCounter("fault.restarts");
  deferred_counter_ = stats->GetCounter("fault.deferred");
  corrupt_counter_ = stats->GetCounter("fault.corrupt_fetches");
  exhausted_counter_ = stats->GetCounter("fault.exhausted_fetches");
}

SimTime FaultInjector::Now() const {
  return clock_ != nullptr ? clock_->now() : SimTime::Zero();
}

FaultInjector::FetchFault FaultInjector::OnFetchAttempt(PoolKind kind,
                                                        uint32_t pool_active_streams) {
  FetchFault fault;
  if (!Active()) return fault;
  const SimTime now = Now();
  for (const FaultWindow& w : schedule_.windows) {
    if (!w.Contains(now)) continue;
    switch (w.domain) {
      case FaultDomain::kRdmaFlap:
        if (kind == PoolKind::kRdma && rng_.NextBool(w.probability)) {
          fault.fail = true;
          RecordInjection(now, w.domain, w.target);
        }
        break;
      case FaultDomain::kRdmaDegrade:
        if (kind == PoolKind::kRdma) {
          // Load-dependent spike: the more concurrent fetch streams, the
          // worse the degraded NIC behaves.
          fault.latency_multiplier *=
              1.0 + w.severity * static_cast<double>(std::max(1u, pool_active_streams));
        }
        break;
      case FaultDomain::kCxlPortDegrade:
        if (kind == PoolKind::kCxl && w.Targets(active_node_)) {
          fault.latency_multiplier *= std::max(1.0, w.severity);
        }
        break;
      case FaultDomain::kNasStall:
        if (kind == PoolKind::kNas && rng_.NextBool(w.probability)) {
          fault.fail = true;
          RecordInjection(now, w.domain, w.target);
        }
        break;
      case FaultDomain::kPageCorruption:
        if ((kind == PoolKind::kRdma || kind == PoolKind::kNas) &&
            rng_.NextBool(w.probability)) {
          fault.corrupt = true;
          RecordInjection(now, w.domain, w.target);
        }
        break;
      case FaultDomain::kNodeCrash:
      case FaultDomain::kPoolPressure:
      case FaultDomain::kPoolNodeCrash:
        break;  // node-level domains; expanded by PlanNodeEvents
    }
  }
  return fault;
}

double FaultInjector::DirectLoadMultiplier(PoolKind kind) const {
  if (!Active() || kind != PoolKind::kCxl) return 1.0;
  const SimTime now = Now();
  double multiplier = 1.0;
  for (const FaultWindow& w : schedule_.windows) {
    if (w.domain != FaultDomain::kCxlPortDegrade) continue;
    if (!w.Contains(now) || !w.Targets(active_node_)) continue;
    multiplier *= std::max(1.0, w.severity);
  }
  return multiplier;
}

std::vector<FaultInjector::NodeEvent> FaultInjector::PlanNodeEvents(uint32_t node_count,
                                                                    uint32_t pool_node_count) {
  std::vector<NodeEvent> plan;
  if (!Active() || node_count == 0) return plan;
  Rng plan_rng(schedule_.seed ^ kNodePlanSeedSalt);
  for (const FaultWindow& w : schedule_.windows) {
    switch (w.domain) {
      case FaultDomain::kNodeCrash:
      case FaultDomain::kPoolNodeCrash: {
        const bool pool = w.domain == FaultDomain::kPoolNodeCrash;
        // Pool-crash windows are skipped (draw-free) when no pool exists, so
        // adding them to a schedule perturbs nothing in poolless runs.
        if (pool && pool_node_count == 0) break;
        if (!plan_rng.NextBool(w.probability)) break;
        // Crash windows must be bounded so a concrete instant can be drawn.
        const SimTime end = w.end == SimTime::Max() ? w.start + SimDuration::Seconds(1) : w.end;
        const int64_t span = std::max<int64_t>(1, (end - w.start).nanos());
        const SimTime when =
            w.start + SimDuration(static_cast<int64_t>(plan_rng.NextBounded(
                          static_cast<uint64_t>(span))));
        const uint32_t fleet = pool ? pool_node_count : node_count;
        const uint32_t node = w.target == kAnyTarget
                                  ? static_cast<uint32_t>(plan_rng.NextBounded(fleet))
                                  : std::min(w.target, fleet - 1);
        NodeEvent crash;
        crash.time = when;
        crash.node = node;
        crash.kind = pool ? NodeEvent::Kind::kPoolCrash : NodeEvent::Kind::kCrash;
        plan.push_back(crash);
        if (w.restart_after > SimDuration::Zero()) {
          NodeEvent restart = crash;
          restart.time = when + w.restart_after;
          restart.kind = pool ? NodeEvent::Kind::kPoolRestart : NodeEvent::Kind::kRestart;
          plan.push_back(restart);
        }
        break;
      }
      case FaultDomain::kPoolPressure: {
        NodeEvent begin;
        begin.time = w.start;
        begin.node = w.target;
        begin.kind = NodeEvent::Kind::kPressureStart;
        begin.severity = w.severity;
        plan.push_back(begin);
        if (w.end != SimTime::Max()) {
          NodeEvent finish = begin;
          finish.time = w.end;
          finish.kind = NodeEvent::Kind::kPressureEnd;
          finish.severity = 1.0;
          plan.push_back(finish);
        }
        break;
      }
      default:
        break;  // fetch-path domains; handled by OnFetchAttempt
    }
  }
  std::stable_sort(plan.begin(), plan.end(),
                   [](const NodeEvent& a, const NodeEvent& b) { return a.time < b.time; });
  return plan;
}

void FaultInjector::RecordInjection(SimTime t, FaultDomain domain, uint32_t target) {
  log_.push_back(Injection{t.nanos(), domain, target});
  ++injected_;
  if (injected_counter_ != nullptr) injected_counter_->Increment();
  if (domain == FaultDomain::kNodeCrash) {
    ++crashes_;
    if (crashes_counter_ != nullptr) crashes_counter_->Increment();
  }
}

void FaultInjector::CountRetry() {
  ++retries_;
  if (retries_counter_ != nullptr) retries_counter_->Increment();
}

void FaultInjector::CountFailover(SimDuration recovery_latency) {
  ++failovers_;
  if (failovers_counter_ != nullptr) failovers_counter_->Increment();
  recovery_ms_.RecordDuration(recovery_latency);
}

void FaultInjector::CountDeferred() {
  ++deferred_;
  if (deferred_counter_ != nullptr) deferred_counter_->Increment();
}

void FaultInjector::CountRestart() {
  ++restarts_;
  if (restarts_counter_ != nullptr) restarts_counter_->Increment();
}

void FaultInjector::CountExhausted() {
  ++exhausted_fetches_;
  if (exhausted_counter_ != nullptr) exhausted_counter_->Increment();
}

void FaultInjector::CountCorrupt() {
  ++corrupt_fetches_;
  if (corrupt_counter_ != nullptr) corrupt_counter_->Increment();
}

}  // namespace trenv
