// FaultInjector: the single seeded source of failures for a simulation.
//
// One injector serves a whole rack. The mempool backends consult it per fetch
// attempt (OnFetchAttempt / DirectLoadMultiplier); the Cluster expands its
// node-level windows once up front (PlanNodeEvents) into a time-ordered crash/
// restart/pressure plan it interleaves with arrivals.
//
// Determinism contract: with an empty schedule — or outside every window —
// the injector draws NO random numbers and perturbs NO latencies, so a run
// with a null injector and a run with an idle injector are byte-identical.
// Inside windows, all draws come from the injector's own Rng (fetch-ordered)
// or from a fresh Rng derived from the schedule seed (node plan), never from
// the workload's generators, so adding faults does not shift workload
// synthesis and the same seed + schedule replays the identical fault
// sequence at any --jobs=N.
#ifndef TRENV_FAULT_FAULT_INJECTOR_H_
#define TRENV_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/fault/fault_schedule.h"
#include "src/fault/retry_policy.h"
#include "src/obs/registry.h"
#include "src/simkernel/types.h"

namespace trenv {

class EventScheduler;

class FaultInjector {
 public:
  explicit FaultInjector(FaultSchedule schedule, obs::Registry* stats = nullptr);

  bool Active() const { return !schedule_.empty(); }
  const FaultSchedule& schedule() const { return schedule_; }

  // The injector reads virtual time from whichever scheduler is currently
  // driving the simulation. The Cluster rebinds this as it drains node
  // schedulers whose clocks diverge during RunAllToCompletion.
  void BindClock(const EventScheduler* scheduler) { clock_ = scheduler; }
  // Node whose backends are currently fetching; scopes kCxlPortDegrade
  // windows that target a single MHD port.
  void SetActiveNode(uint32_t node) { active_node_ = node; }
  void BindStats(obs::Registry* stats);

  const RetryPolicy& retry_policy() const { return retry_; }
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }

  // --- Fetch-path injection (called by MemoryBackend) -----------------------

  struct FetchFault {
    bool fail = false;     // attempt times out; retry after backoff
    bool corrupt = false;  // payload fails the dedup content hash; refetch
    double latency_multiplier = 1.0;
  };
  // Evaluates the schedule for one fetch attempt against pool `kind` at the
  // current virtual time. Draws randomness only inside matching windows.
  FetchFault OnFetchAttempt(PoolKind kind, uint32_t pool_active_streams);
  // Deterministic (no-draw) multiplier for direct byte-addressable loads;
  // models a degraded CXL port. 1.0 outside kCxlPortDegrade windows.
  double DirectLoadMultiplier(PoolKind kind) const;

  // --- Node-level plan (consumed by Cluster) --------------------------------

  struct NodeEvent {
    enum class Kind : uint8_t {
      kCrash,
      kRestart,
      kPressureStart,
      kPressureEnd,
      // Pool-node (shard holder) events; `node` is a pool-node index, not a
      // worker index. Routed by the Cluster to the PoolManager.
      kPoolCrash,
      kPoolRestart,
    };
    SimTime time;
    uint32_t node = 0;
    Kind kind = Kind::kCrash;
    double severity = 1.0;  // soft-mem-cap scale for pressure events
  };
  // Expands kNodeCrash / kPoolPressure / kPoolNodeCrash windows into
  // concrete, time-sorted events for a rack of `node_count` worker nodes and
  // `pool_node_count` pool nodes. Uses a fresh Rng derived from the schedule
  // seed so the plan is independent of how many fetch-path draws have
  // happened.
  std::vector<NodeEvent> PlanNodeEvents(uint32_t node_count, uint32_t pool_node_count = 0);

  // --- Accounting -----------------------------------------------------------

  // Every probabilistic hit and node-plan crash, in injection order; the
  // determinism test compares two runs' logs element-wise.
  struct Injection {
    int64_t time_ns = 0;
    FaultDomain domain = FaultDomain::kRdmaFlap;
    uint32_t target = kAnyTarget;

    bool operator==(const Injection&) const = default;
  };
  const std::vector<Injection>& injection_log() const { return log_; }

  void CountRetry();
  void CountFailover(SimDuration recovery_latency);
  void CountDeferred();
  void CountRestart();
  void RecordInjection(SimTime t, FaultDomain domain, uint32_t target);

  uint64_t injected() const { return injected_; }
  uint64_t retries() const { return retries_; }
  uint64_t failovers() const { return failovers_; }
  uint64_t crashes() const { return crashes_; }
  uint64_t restarts() const { return restarts_; }
  uint64_t deferred() const { return deferred_; }
  uint64_t corrupt_fetches() const { return corrupt_fetches_; }
  uint64_t exhausted_fetches() const { return exhausted_fetches_; }
  const Histogram& recovery_ms() const { return recovery_ms_; }

 private:
  SimTime Now() const;
  void CountExhausted();
  void CountCorrupt();
  friend class MemoryBackend;  // uses CountExhausted/CountCorrupt in FetchLatency

  FaultSchedule schedule_;
  RetryPolicy retry_;
  Rng rng_;
  const EventScheduler* clock_ = nullptr;
  uint32_t active_node_ = kAnyTarget;

  std::vector<Injection> log_;
  Histogram recovery_ms_;
  uint64_t injected_ = 0;
  uint64_t retries_ = 0;
  uint64_t failovers_ = 0;
  uint64_t crashes_ = 0;
  uint64_t restarts_ = 0;
  uint64_t deferred_ = 0;
  uint64_t corrupt_fetches_ = 0;
  uint64_t exhausted_fetches_ = 0;

  obs::Counter* injected_counter_ = nullptr;
  obs::Counter* retries_counter_ = nullptr;
  obs::Counter* failovers_counter_ = nullptr;
  obs::Counter* crashes_counter_ = nullptr;
  obs::Counter* restarts_counter_ = nullptr;
  obs::Counter* deferred_counter_ = nullptr;
  obs::Counter* corrupt_counter_ = nullptr;
  obs::Counter* exhausted_counter_ = nullptr;
};

}  // namespace trenv

#endif  // TRENV_FAULT_FAULT_INJECTOR_H_
