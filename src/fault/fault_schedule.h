// FaultSchedule: a declarative description of what breaks, when, and how
// badly. The recovery half of the paper's claim — execution environments
// survive across functions AND nodes because templates live in a shared
// CXL/RDMA pool — is only testable if the fabric can fail, so each window
// names a failure domain, a virtual-time interval, a probability, and a
// target (node / MHD port).
//
// A schedule is pure data: all randomness (which fetch flaps, when inside a
// window a node dies) comes from the FaultInjector's seeded Rng, so the same
// schedule + seed replays the identical fault sequence on every run.
#ifndef TRENV_FAULT_FAULT_SCHEDULE_H_
#define TRENV_FAULT_FAULT_SCHEDULE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/common/time.h"

namespace trenv {

// Matches every node / every MHD port.
inline constexpr uint32_t kAnyTarget = 0xffffffffu;

enum class FaultDomain : uint8_t {
  // A node dies at a drawn instant inside the window; its in-flight work is
  // lost locally and must fail over to survivors via the shared pool.
  kNodeCrash = 0,
  // An RDMA fetch attempt fails outright (NIC flap / switch reroute); the
  // retry policy re-issues it after a backoff.
  kRdmaFlap,
  // Load-dependent RDMA latency spike: every fetch is slowed by
  // 1 + severity * active_streams (NIC cache pressure under bursts).
  kRdmaDegrade,
  // One MHD port (or all, with kAnyTarget) serves loads and CoW copies
  // `severity` times slower — a degraded CXL link.
  kCxlPortDegrade,
  // A NAS block read stalls past its timeout and is retried.
  kNasStall,
  // The fetched payload fails the dedup store's content-hash check and is
  // discarded and refetched (transient wire corruption).
  kPageCorruption,
  // Shared-pool pressure: targeted nodes scale their soft memory cap by
  // `severity`, forcing keep-alive/template eviction until the window ends.
  kPoolPressure,
  // A *pool* node (shard holder in the memory-pool control plane) dies at a
  // drawn instant inside the window. With replication >= 2 a surviving
  // replica is promoted and no lease is revoked; with replication 1 the lost
  // shards are reseeded from the dedup store and affected leases revoked.
  kPoolNodeCrash,
};

std::string_view FaultDomainName(FaultDomain domain);

struct FaultWindow {
  FaultDomain domain = FaultDomain::kRdmaFlap;
  SimTime start;
  SimTime end = SimTime::Max();  // exclusive
  // Per-draw probability: per fetch attempt for link domains, per window for
  // kNodeCrash. Ignored by the deterministic domains (degrade, pressure).
  double probability = 1.0;
  // Node id (crash, pressure) or MHD port (CXL degrade); kAnyTarget = all
  // nodes for deterministic domains, a uniformly drawn node for crashes.
  uint32_t target = kAnyTarget;
  // Latency multiplier (degrade domains) or soft-mem-cap scale (pressure).
  double severity = 1.0;
  // kNodeCrash: the node restarts this long after dying; Zero = stays down.
  SimDuration restart_after;

  bool Contains(SimTime t) const { return start <= t && t < end; }
  bool Targets(uint32_t id) const { return target == kAnyTarget || target == id; }
};

struct FaultSchedule {
  uint64_t seed = 0xFA171;
  std::vector<FaultWindow> windows;

  bool empty() const { return windows.empty(); }
  FaultSchedule& Add(const FaultWindow& window) {
    windows.push_back(window);
    return *this;
  }
};

// Window builders for the common cases (tests and benches read better with
// named arguments than six-field aggregates).
FaultWindow NodeCrashWindow(SimTime start, SimTime end, double probability, uint32_t node,
                            SimDuration restart_after);
FaultWindow PoolCrashWindow(SimTime start, SimTime end, double probability, uint32_t pool_node,
                            SimDuration restart_after);
FaultWindow LinkFaultWindow(FaultDomain domain, SimTime start, SimTime end, double probability,
                            double severity = 1.0);
FaultWindow PoolPressureWindow(SimTime start, SimTime end, double cap_scale,
                               uint32_t node = kAnyTarget);

}  // namespace trenv

#endif  // TRENV_FAULT_FAULT_SCHEDULE_H_
