#include "src/fault/retry_policy.h"

#include <algorithm>

namespace trenv {

SimDuration RetryPolicy::BackoffFor(uint32_t attempt) const {
  if (attempt == 0) return SimDuration::Zero();
  double backoff = static_cast<double>(initial_backoff.nanos());
  for (uint32_t i = 1; i < attempt; ++i) {
    backoff *= backoff_multiplier;
    if (backoff >= static_cast<double>(max_backoff.nanos())) {
      return max_backoff;
    }
  }
  return std::min(SimDuration(static_cast<int64_t>(backoff)), max_backoff);
}

SimDuration RetryPolicy::OverheadBound() const {
  SimDuration total;
  for (uint32_t attempt = 1; attempt < max_attempts; ++attempt) {
    total += attempt_timeout + BackoffFor(attempt);
    if (total >= deadline) {
      // The deadline cuts retries short; the last attempt that crossed it may
      // still have spent a full timeout + backoff.
      return deadline + attempt_timeout + max_backoff;
    }
  }
  return total;
}

}  // namespace trenv
