#include "src/fault/fault_schedule.h"

namespace trenv {

std::string_view FaultDomainName(FaultDomain domain) {
  switch (domain) {
    case FaultDomain::kNodeCrash:
      return "node-crash";
    case FaultDomain::kRdmaFlap:
      return "rdma-flap";
    case FaultDomain::kRdmaDegrade:
      return "rdma-degrade";
    case FaultDomain::kCxlPortDegrade:
      return "cxl-port-degrade";
    case FaultDomain::kNasStall:
      return "nas-stall";
    case FaultDomain::kPageCorruption:
      return "page-corruption";
    case FaultDomain::kPoolPressure:
      return "pool-pressure";
    case FaultDomain::kPoolNodeCrash:
      return "pool-node-crash";
  }
  return "unknown";
}

FaultWindow NodeCrashWindow(SimTime start, SimTime end, double probability, uint32_t node,
                            SimDuration restart_after) {
  FaultWindow w;
  w.domain = FaultDomain::kNodeCrash;
  w.start = start;
  w.end = end;
  w.probability = probability;
  w.target = node;
  w.restart_after = restart_after;
  return w;
}

FaultWindow PoolCrashWindow(SimTime start, SimTime end, double probability, uint32_t pool_node,
                            SimDuration restart_after) {
  FaultWindow w;
  w.domain = FaultDomain::kPoolNodeCrash;
  w.start = start;
  w.end = end;
  w.probability = probability;
  w.target = pool_node;
  w.restart_after = restart_after;
  return w;
}

FaultWindow LinkFaultWindow(FaultDomain domain, SimTime start, SimTime end, double probability,
                            double severity) {
  FaultWindow w;
  w.domain = domain;
  w.start = start;
  w.end = end;
  w.probability = probability;
  w.severity = severity;
  return w;
}

FaultWindow PoolPressureWindow(SimTime start, SimTime end, double cap_scale, uint32_t node) {
  FaultWindow w;
  w.domain = FaultDomain::kPoolPressure;
  w.start = start;
  w.end = end;
  w.probability = 1.0;
  w.target = node;
  w.severity = cap_scale;
  return w;
}

}  // namespace trenv
