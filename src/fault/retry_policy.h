// RetryPolicy: capped exponential backoff with a total deadline, all in
// virtual time. Wrapped around remote fetches so an RDMA flap or NAS stall
// costs a bounded, deterministic amount of latency instead of either failing
// the invocation or hanging it forever.
#ifndef TRENV_FAULT_RETRY_POLICY_H_
#define TRENV_FAULT_RETRY_POLICY_H_

#include <cstdint>

#include "src/common/time.h"

namespace trenv {

struct RetryPolicy {
  // Attempts per fetch including the first; after the last the fetch is
  // served fail-open (the fabric eventually delivers, we just stop modelling
  // further flaps for it).
  uint32_t max_attempts = 4;
  // A failed/stalled attempt is declared dead after this long.
  SimDuration attempt_timeout = SimDuration::Micros(500);
  // Backoff before retry k is initial_backoff * backoff_multiplier^(k-1),
  // capped at max_backoff.
  SimDuration initial_backoff = SimDuration::Micros(200);
  double backoff_multiplier = 2.0;
  SimDuration max_backoff = SimDuration::Millis(10);
  // Total overhead budget: once timeouts + backoffs reach the deadline, stop
  // retrying and serve fail-open.
  SimDuration deadline = SimDuration::Millis(50);

  // Backoff slept before attempt `attempt` (1-based count of retries).
  SimDuration BackoffFor(uint32_t attempt) const;
  // Worst-case retry overhead a single fetch can accumulate on top of its
  // successful transfer: the tests use this to bound chaos-run latency.
  SimDuration OverheadBound() const;
};

}  // namespace trenv

#endif  // TRENV_FAULT_RETRY_POLICY_H_
