#include "src/sandbox/mount_namespace.h"

#include <vector>

namespace trenv {

SimDuration MountNamespace::Mount(const std::string& target, MountKind kind,
                                  std::shared_ptr<UnionFs> fs) {
  mounts_[target].push_back(MountEntry{kind, std::move(fs)});
  return cost::kMountSyscall;
}

Result<SimDuration> MountNamespace::Umount(const std::string& target) {
  auto it = mounts_.find(target);
  if (it == mounts_.end() || it->second.empty()) {
    return Status::NotFound("nothing mounted at " + target);
  }
  it->second.pop_back();
  if (it->second.empty()) {
    mounts_.erase(it);
  }
  return cost::kUmountSyscall;
}

Result<MountEntry> MountNamespace::Resolve(const std::string& target) const {
  auto it = mounts_.find(target);
  if (it == mounts_.end() || it->second.empty()) {
    return Status::NotFound("nothing mounted at " + target);
  }
  return it->second.back();
}

size_t MountNamespace::mount_count() const {
  size_t count = 0;
  for (const auto& [target, stack] : mounts_) {
    count += stack.size();
  }
  return count;
}

SimDuration MountNamespace::ColdSetupCost(uint32_t concurrent) {
  const SimDuration syscalls = cost::kMountSyscall * 9.0 + cost::kMknodSyscall * 6.0 +
                               cost::kPivotRootSyscall;
  return cost::kRootfsCreateBase + syscalls +
         cost::kRootfsCreatePerConcurrent * static_cast<double>(concurrent);
}

}  // namespace trenv
