#include "src/sandbox/union_fs.h"

namespace trenv {

void FsLayer::AddFile(const std::string& path, FileNode node) { files_[path] = node; }

const FileNode* FsLayer::Find(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

uint64_t FsLayer::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [path, node] : files_) {
    total += node.size_bytes;
  }
  return total;
}

void UnionFs::PushLower(std::shared_ptr<const FsLayer> layer) {
  lowers_.push_back(std::move(layer));
}

Status UnionFs::PopLower() {
  if (lowers_.empty()) {
    return Status::FailedPrecondition("no lower layers to pop");
  }
  lowers_.pop_back();
  return Status::Ok();
}

const std::shared_ptr<const FsLayer>& UnionFs::TopLower() const {
  static const std::shared_ptr<const FsLayer> kNull;
  return lowers_.empty() ? kNull : lowers_.back();
}

Result<FileNode> UnionFs::Stat(const std::string& path) const {
  auto upper_it = upper_.find(path);
  if (upper_it != upper_.end()) {
    return upper_it->second;
  }
  if (whiteouts_.contains(path)) {
    return Status::NotFound("file deleted (whiteout): " + path);
  }
  for (auto it = lowers_.rbegin(); it != lowers_.rend(); ++it) {
    const FileNode* node = (*it)->Find(path);
    if (node != nullptr) {
      return *node;
    }
  }
  return Status::NotFound("no such file: " + path);
}

Status UnionFs::Write(const std::string& path, uint64_t size_bytes, uint64_t content_id) {
  FileNode node;
  node.size_bytes = size_bytes;
  node.content_id = content_id;
  node.file_id = next_upper_file_id_++;
  upper_[path] = node;
  whiteouts_.erase(path);
  return Status::Ok();
}

Status UnionFs::Delete(const std::string& path) {
  const bool in_upper = upper_.erase(path) > 0;
  bool in_lower = false;
  for (auto it = lowers_.rbegin(); it != lowers_.rend(); ++it) {
    if ((*it)->Find(path) != nullptr) {
      in_lower = true;
      break;
    }
  }
  if (in_lower) {
    whiteouts_.insert(path);
    return Status::Ok();
  }
  if (!in_upper) {
    return Status::NotFound("no such file: " + path);
  }
  return Status::Ok();
}

uint64_t UnionFs::PurgeUpper() {
  const uint64_t purged = upper_.size() + whiteouts_.size();
  upper_.clear();
  whiteouts_.clear();
  return purged;
}

uint64_t UnionFs::upper_bytes() const {
  uint64_t total = 0;
  for (const auto& [path, node] : upper_) {
    total += node.size_bytes;
  }
  return total;
}

}  // namespace trenv
