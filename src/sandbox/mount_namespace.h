// Mount namespace: the container's private mount table. A cold-start rootfs
// needs >9 mounts, 6 mknods and a pivot_root (section 5.2.1); TrEnv's
// reconfiguration performs 2 mounts by overmounting only the function-
// specific overlay.
#ifndef TRENV_SANDBOX_MOUNT_NAMESPACE_H_
#define TRENV_SANDBOX_MOUNT_NAMESPACE_H_

#include <map>
#include <memory>
#include <string>

#include "src/common/cost_model.h"
#include "src/common/status.h"
#include "src/common/time.h"
#include "src/sandbox/union_fs.h"

namespace trenv {

enum class MountKind { kOverlay, kProc, kSysfs, kDevTmpfs, kTmpfs };

struct MountEntry {
  MountKind kind;
  std::shared_ptr<UnionFs> fs;  // only for kOverlay
};

class MountNamespace {
 public:
  // Mounts a filesystem at `target`; overmounting an existing path shadows
  // it, like Linux (this is how function overlays are swapped).
  SimDuration Mount(const std::string& target, MountKind kind,
                    std::shared_ptr<UnionFs> fs = nullptr);
  Result<SimDuration> Umount(const std::string& target);
  bool IsMounted(const std::string& target) const { return mounts_.contains(target); }
  // Resolves the active mount at `target` (topmost if overmounted).
  Result<MountEntry> Resolve(const std::string& target) const;
  size_t mount_count() const;

  // Cost of building a standard container rootfs from scratch:
  // 9 mounts + 6 mknod + pivot_root, plus superblock-lock contention.
  static SimDuration ColdSetupCost(uint32_t concurrent);

 private:
  // Each target keeps a stack of mounts; back() is active.
  std::map<std::string, std::vector<MountEntry>> mounts_;
};

}  // namespace trenv

#endif  // TRENV_SANDBOX_MOUNT_NAMESPACE_H_
