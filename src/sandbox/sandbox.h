// Sandbox: the repurposable isolation environment (paper Fig 5, section 5.2).
//
// A sandbox bundles the isolation components of Table 1 — network namespace,
// mount namespace + union rootfs, cgroup, and the cheap misc namespaces.
// TrEnv's insight is that after a function finishes, this bundle can be
// cleansed and repurposed for ANY pending function (type-agnostic), paying
// only 2 mounts + a cgroup reconfigure + a netns reset instead of a full
// cold creation.
#ifndef TRENV_SANDBOX_SANDBOX_H_
#define TRENV_SANDBOX_SANDBOX_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/common/time.h"
#include "src/sandbox/cgroup.h"
#include "src/sandbox/mount_namespace.h"
#include "src/sandbox/net_namespace.h"
#include "src/sandbox/union_fs.h"

namespace trenv {

enum class SandboxState { kInUse, kCleansing, kIdle };

// Cost of a sandbox lifecycle step, broken down as in Fig 4 / Fig 21.
struct SandboxCost {
  SimDuration network;
  SimDuration rootfs;
  SimDuration cgroup;
  SimDuration other;
  // Work that runs off the critical path (async purge of the upper dir).
  SimDuration deferred;

  SimDuration Total() const { return network + rootfs + cgroup + other; }
};

class Sandbox {
 public:
  Sandbox(uint64_t id, NetNamespace netns, Cgroup cgroup, std::shared_ptr<UnionFs> rootfs);

  uint64_t id() const { return id_; }
  SandboxState state() const { return state_; }
  const std::string& current_function() const { return current_function_; }

  NetNamespace& netns() { return netns_; }
  Cgroup& cgroup() { return cgroup_; }
  MountNamespace& mntns() { return mntns_; }
  const std::shared_ptr<UnionFs>& rootfs() const { return rootfs_; }
  // The function-specific overlay currently mounted (may be null).
  const std::shared_ptr<UnionFs>& function_overlay() const { return function_overlay_; }

  // Step B1: terminate processes, purge file modifications, park the sandbox.
  // `process_count` is the number of processes to kill. The purge itself is
  // accounted as deferred work (TrEnv runs it asynchronously).
  SandboxCost Cleanse(uint32_t process_count);

  // Step B2: repurpose an idle sandbox for `function`. Swaps the function
  // overlay (2 mounts), re-applies cgroup limits, resets the netns.
  Result<SandboxCost> Repurpose(const std::string& function,
                                std::shared_ptr<UnionFs> function_overlay, CgroupLimits limits);

  // Marks the sandbox as running a function (used by cold-start paths that
  // build the sandbox directly for one function).
  void Assign(const std::string& function) {
    current_function_ = function;
    state_ = SandboxState::kInUse;
  }

  // Mounts and records a function overlay (cold-start path). Returns the
  // mount cost.
  SimDuration AttachOverlay(std::shared_ptr<UnionFs> overlay);

 private:
  uint64_t id_;
  SandboxState state_ = SandboxState::kInUse;
  std::string current_function_;
  NetNamespace netns_;
  Cgroup cgroup_;
  MountNamespace mntns_;
  std::shared_ptr<UnionFs> rootfs_;
  std::shared_ptr<UnionFs> function_overlay_;
};

// Builds sandboxes the cold way (faasd / CRIU baselines) and models the
// per-component costs of Table 1 under concurrency.
class SandboxFactory {
 public:
  SandboxFactory(std::shared_ptr<const FsLayer> base_layer, uint64_t seed = 0x5b);

  struct CreateResult {
    std::unique_ptr<Sandbox> sandbox;
    SandboxCost cost;
  };
  // `concurrent` = number of other sandbox creations in flight. `use_clone_into`
  // selects CLONE_INTO_CGROUP (TrEnv) over spawn-then-migrate (baselines).
  CreateResult CreateCold(const std::string& function,
                          std::shared_ptr<UnionFs> function_overlay, CgroupLimits limits,
                          uint32_t concurrent, bool use_clone_into);

  CgroupManager& cgroup_manager() { return cgroups_; }

 private:
  std::shared_ptr<const FsLayer> base_layer_;
  NetNsFactory netns_factory_;
  CgroupManager cgroups_;
  uint64_t next_id_ = 1;
};

}  // namespace trenv

#endif  // TRENV_SANDBOX_SANDBOX_H_
