// SandboxPool: the universal (function-type-agnostic) pool of idle sandboxes
// plus the per-function overlay cache (paper section 5.2.1: "maintaining a
// pool of function-specific overlayfs, instead of discarding them").
//
// Overlay cache and layer registry are indexed by interned FunctionId on the
// hot path; the string overloads intern/look up at the boundary and are kept
// for registration-time callers and tests.
#ifndef TRENV_SANDBOX_SANDBOX_POOL_H_
#define TRENV_SANDBOX_SANDBOX_POOL_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/common/interner.h"
#include "src/sandbox/sandbox.h"
#include "src/sandbox/union_fs.h"

namespace trenv {

class SandboxPool {
 public:
  explicit SandboxPool(size_t max_idle = 256) : max_idle_(max_idle) {}

  // Parks a cleansed sandbox. Returns false (and drops it) if the pool is at
  // capacity.
  bool Put(std::unique_ptr<Sandbox> sandbox);
  // Takes ANY idle sandbox — repurposing is type-agnostic. Null if empty.
  std::unique_ptr<Sandbox> Take();

  size_t idle_count() const { return idle_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  // Overlay cache: function-specific union filesystems are expensive to
  // assemble (layer resolution) but cheap to reuse once purged.
  std::shared_ptr<UnionFs> AcquireOverlay(FunctionId function);
  std::shared_ptr<UnionFs> AcquireOverlay(const std::string& function) {
    return AcquireOverlay(InternFunction(function));
  }
  void ReleaseOverlay(FunctionId function, std::shared_ptr<UnionFs> overlay);
  void ReleaseOverlay(const std::string& function, std::shared_ptr<UnionFs> overlay) {
    ReleaseOverlay(InternFunction(function), std::move(overlay));
  }
  // Registers how to build a function's overlay (its dependency layer).
  void RegisterFunctionLayer(const std::string& function,
                             std::shared_ptr<const FsLayer> layer);
  size_t cached_overlay_count(const std::string& function) const;

  // Crash reset: drops idle sandboxes and cached overlays (node-local state
  // that died with the node) but keeps the function-layer registry — layer
  // definitions come from deployment, which survives in the control plane.
  void Clear() {
    idle_.clear();
    for (auto& cache : overlay_cache_) {
      cache.clear();
    }
  }

 private:
  size_t max_idle_;
  std::deque<std::unique_ptr<Sandbox>> idle_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  // Indexed by FunctionId (global id space — may be sparse).
  std::vector<std::shared_ptr<const FsLayer>> function_layers_;
  std::vector<std::vector<std::shared_ptr<UnionFs>>> overlay_cache_;
};

}  // namespace trenv

#endif  // TRENV_SANDBOX_SANDBOX_POOL_H_
