#include "src/sandbox/net_namespace.h"

namespace trenv {

SimDuration NetNamespace::ResetForReuse() {
  open_connections_.clear();
  return cost::kNetNsReset;
}

SimDuration NetNamespace::FullReset() {
  open_connections_.clear();
  firewall_rules_ = 0;
  // Dropping config rewrites a handful of netlink rules; same order as reset.
  return cost::kNetNsReset * 2.0;
}

SimDuration NetNsFactory::CreateCost(uint32_t concurrent) {
  // 80 ms uncontended; each concurrent creation adds serialization on global
  // kernel locks. At 15-way concurrency this reaches the ~400 ms the paper
  // measures, and keeps growing towards the multi-second worst case.
  return cost::kNetNsCreateBase +
         cost::kNetNsCreatePerConcurrent * static_cast<double>(concurrent);
}

}  // namespace trenv
