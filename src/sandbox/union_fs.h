// In-memory union filesystem modelling overlayfs (paper section 5.2.1).
//
// A UnionFs stacks shared read-only lower layers (base image + language
// runtime + function dependencies) under a private writable upper directory.
// Writes copy up; deletes whiteout; purging the upper dir restores the
// pristine view — exactly the cleansing step TrEnv runs between functions.
#ifndef TRENV_SANDBOX_UNION_FS_H_
#define TRENV_SANDBOX_UNION_FS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/simkernel/types.h"

namespace trenv {

struct FileNode {
  uint64_t size_bytes = 0;
  uint64_t content_id = 0;  // logical content; equal ids = identical bytes
  FileId file_id = -1;      // global id for page-cache keying
};

// A read-only layer shared between many sandboxes (e.g. a base Debian image
// or a function's site-packages). Immutable once built.
class FsLayer {
 public:
  explicit FsLayer(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void AddFile(const std::string& path, FileNode node);
  const FileNode* Find(const std::string& path) const;
  const std::map<std::string, FileNode>& files() const { return files_; }
  uint64_t TotalBytes() const;

 private:
  std::string name_;
  std::map<std::string, FileNode> files_;
};

class UnionFs {
 public:
  // Layers are ordered bottom-up; the last pushed lower is consulted first.
  void PushLower(std::shared_ptr<const FsLayer> layer);
  size_t lower_count() const { return lowers_.size(); }
  // Removes the topmost lower layer (TrEnv's function-overlay swap).
  Status PopLower();
  const std::shared_ptr<const FsLayer>& TopLower() const;

  // Lookup resolves upper -> whiteout -> lowers (top-down).
  Result<FileNode> Stat(const std::string& path) const;
  bool Exists(const std::string& path) const { return Stat(path).ok(); }

  // Copy-on-write write: lands in the upper dir regardless of origin.
  Status Write(const std::string& path, uint64_t size_bytes, uint64_t content_id);
  // Delete: removes from upper and whiteouts any lower-layer file.
  Status Delete(const std::string& path);

  // Cleansing: drops every upper-dir modification and whiteout. Returns the
  // number of upper entries removed (the purge cost driver).
  uint64_t PurgeUpper();

  uint64_t upper_file_count() const { return upper_.size() + whiteouts_.size(); }
  uint64_t upper_bytes() const;

 private:
  std::vector<std::shared_ptr<const FsLayer>> lowers_;
  std::map<std::string, FileNode> upper_;
  std::set<std::string> whiteouts_;
  FileId next_upper_file_id_ = 1'000'000;  // upper files get private ids
};

}  // namespace trenv

#endif  // TRENV_SANDBOX_UNION_FS_H_
