#include "src/sandbox/sandbox.h"

#include <utility>

namespace trenv {

Sandbox::Sandbox(uint64_t id, NetNamespace netns, Cgroup cgroup, std::shared_ptr<UnionFs> rootfs)
    : id_(id), netns_(std::move(netns)), cgroup_(std::move(cgroup)), rootfs_(std::move(rootfs)) {
  // A live sandbox always has the standard mounts.
  mntns_.Mount("/", MountKind::kOverlay, rootfs_);
  mntns_.Mount("/proc", MountKind::kProc);
  mntns_.Mount("/sys", MountKind::kSysfs);
  mntns_.Mount("/dev", MountKind::kDevTmpfs);
}

SandboxCost Sandbox::Cleanse(uint32_t process_count) {
  SandboxCost cost;
  // Kill every process of the finished instance (synchronous: security).
  cost.other += cost::kProcessKill * static_cast<double>(process_count);
  cgroup_.ClearProcesses();
  // Forcibly close network connections; config/statistics survive.
  cost.network += netns_.ResetForReuse();
  // Purge the upper dirs: deleting N files + an overlayfs remount. TrEnv
  // executes this asynchronously (section 5.2.1), so it is deferred cost.
  uint64_t purged = rootfs_->PurgeUpper();
  if (function_overlay_ != nullptr) {
    purged += function_overlay_->PurgeUpper();
  }
  cost.deferred += cost::kUpperDirDeletePerFile * static_cast<double>(purged) +
                   cost::kOverlayRemount;
  state_ = SandboxState::kIdle;
  current_function_.clear();
  return cost;
}

Result<SandboxCost> Sandbox::Repurpose(const std::string& function,
                                       std::shared_ptr<UnionFs> function_overlay,
                                       CgroupLimits limits) {
  if (state_ == SandboxState::kInUse) {
    return Status::FailedPrecondition("sandbox still in use by " + current_function_);
  }
  SandboxCost cost;
  // Swap the function-specific overlay: unmount the old (if any), mount the
  // new, and refresh /proc for the joining processes — TrEnv's "only 2
  // mounts at minimum" path.
  if (function_overlay_ != nullptr) {
    auto umount = mntns_.Umount("/app");
    if (umount.ok()) {
      cost.rootfs += *umount;
    }
  }
  function_overlay_ = std::move(function_overlay);
  cost.rootfs += mntns_.Mount("/app", MountKind::kOverlay, function_overlay_);
  cost.rootfs += mntns_.Mount("/proc", MountKind::kProc);
  // Restore the pending function's resource limits.
  cost.cgroup += cgroup_.Reconfigure(limits);
  // The netns was already reset during cleansing; nothing further unless the
  // previous tenant customized it.
  if (netns_.HasCustomConfig()) {
    cost.network += netns_.FullReset();
  }
  current_function_ = function;
  state_ = SandboxState::kInUse;
  return cost;
}

SandboxFactory::SandboxFactory(std::shared_ptr<const FsLayer> base_layer, uint64_t seed)
    : base_layer_(std::move(base_layer)), cgroups_(seed) {}

SandboxFactory::CreateResult SandboxFactory::CreateCold(
    const std::string& function, std::shared_ptr<UnionFs> function_overlay, CgroupLimits limits,
    uint32_t concurrent, bool use_clone_into) {
  CreateResult result;
  result.cost.network = NetNsFactory::CreateCost(concurrent);
  result.cost.rootfs = MountNamespace::ColdSetupCost(concurrent);
  result.cost.cgroup = cgroups_.CreateCost() + (use_clone_into
                                                    ? cgroups_.CloneIntoCost()
                                                    : cgroups_.MigrateCost(concurrent));
  result.cost.other = cost::kMiscNamespaces;

  auto rootfs = std::make_shared<UnionFs>();
  rootfs->PushLower(base_layer_);
  result.sandbox = std::make_unique<Sandbox>(next_id_++, netns_factory_.Create(),
                                             cgroups_.Create(limits), std::move(rootfs));
  if (function_overlay != nullptr) {
    result.cost.rootfs += result.sandbox->AttachOverlay(std::move(function_overlay));
  }
  result.sandbox->Assign(function);
  return result;
}

SimDuration Sandbox::AttachOverlay(std::shared_ptr<UnionFs> overlay) {
  function_overlay_ = std::move(overlay);
  return mntns_.Mount("/app", MountKind::kOverlay, function_overlay_);
}

}  // namespace trenv
