// Cgroup modelling (paper sections 4.1 and 5.2.2).
//
// Creation costs 16-32 ms; *migration* of an existing process into a cgroup
// costs 10-50 ms because of two global rw-semaphores and an RCU grace period
// (Fig 14). TrEnv avoids migration entirely via CLONE_INTO_CGROUP, which
// assigns the cgroup at clone() time for 100-300 us.
#ifndef TRENV_SANDBOX_CGROUP_H_
#define TRENV_SANDBOX_CGROUP_H_

#include <cstdint>
#include <set>

#include "src/common/cost_model.h"
#include "src/common/rng.h"
#include "src/common/time.h"

namespace trenv {

struct CgroupLimits {
  double cpu_cores = 1.0;
  uint64_t memory_bytes = 2ULL * 1024 * 1024 * 1024;
  uint64_t io_bps = 0;  // 0 = unlimited

  bool operator==(const CgroupLimits&) const = default;
};

class Cgroup {
 public:
  Cgroup(uint64_t id, CgroupLimits limits) : id_(id), limits_(limits) {}

  uint64_t id() const { return id_; }
  const CgroupLimits& limits() const { return limits_; }

  // Rewrites the cgroupfs limit files; cheap (TrEnv's repurposing step B2).
  SimDuration Reconfigure(CgroupLimits limits);

  void AddProcess(uint64_t pid) { procs_.insert(pid); }
  void RemoveProcess(uint64_t pid) { procs_.erase(pid); }
  size_t process_count() const { return procs_.size(); }
  void ClearProcesses() { procs_.clear(); }

 private:
  uint64_t id_;
  CgroupLimits limits_;
  std::set<uint64_t> procs_;
};

// Models cgroup lifecycle costs, including the global-lock contention on the
// migration path.
class CgroupManager {
 public:
  explicit CgroupManager(uint64_t seed = 0xc6) : rng_(seed) {}

  Cgroup Create(CgroupLimits limits);
  // Cost of creating the cgroup directory + controllers.
  SimDuration CreateCost();
  // Legacy path: spawn, then migrate the process into the cgroup. Slows down
  // under concurrent migrations (RCU grace periods serialize).
  SimDuration MigrateCost(uint32_t concurrent_migrations);
  // TrEnv path: CLONE_INTO_CGROUP at spawn time; no global synchronization.
  SimDuration CloneIntoCost();

 private:
  Rng rng_;
  uint64_t next_id_ = 1;
};

}  // namespace trenv

#endif  // TRENV_SANDBOX_CGROUP_H_
