#include "src/sandbox/cgroup.h"

#include <algorithm>

namespace trenv {

SimDuration Cgroup::Reconfigure(CgroupLimits limits) {
  limits_ = limits;
  return cost::kCgroupReconfigure;
}

Cgroup CgroupManager::Create(CgroupLimits limits) { return Cgroup(next_id_++, limits); }

SimDuration CgroupManager::CreateCost() {
  return SimDuration::FromMillisF(
      rng_.NextUniform(cost::kCgroupCreateBase.millis(), cost::kCgroupCreateMax.millis()));
}

SimDuration CgroupManager::MigrateCost(uint32_t concurrent_migrations) {
  const SimDuration cost =
      cost::kCgroupMigrateBase +
      cost::kCgroupMigratePerConcurrent * static_cast<double>(concurrent_migrations);
  return std::min(cost, cost::kCgroupMigrateMax);
}

SimDuration CgroupManager::CloneIntoCost() {
  return SimDuration::FromMicrosF(
      rng_.NextUniform(cost::kCloneIntoCgroupMin.micros(), cost::kCloneIntoCgroupMax.micros()));
}

}  // namespace trenv
