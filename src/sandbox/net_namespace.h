// Network namespace + veth pair. The most expensive sandbox component to
// create (Table 1: 80 ms to 10 s) and the safest to reuse: it holds no data
// produced by function execution, only configuration and statistics
// (section 8.1.1).
#ifndef TRENV_SANDBOX_NET_NAMESPACE_H_
#define TRENV_SANDBOX_NET_NAMESPACE_H_

#include <cstdint>
#include <set>
#include <string>

#include "src/common/cost_model.h"
#include "src/common/time.h"

namespace trenv {

class NetNamespace {
 public:
  explicit NetNamespace(uint64_t id) : id_(id) {}

  uint64_t id() const { return id_; }

  // Connection lifecycle during function execution.
  void OpenConnection(uint64_t conn_id) { open_connections_.insert(conn_id); }
  size_t open_connection_count() const { return open_connections_.size(); }
  void RecordTraffic(uint64_t bytes) { rx_bytes_ += bytes; }
  uint64_t rx_bytes() const { return rx_bytes_; }

  // Custom configuration (firewall rules / routing tables). Functions that
  // customize the netns need a reset before reuse.
  void AddFirewallRule() { ++firewall_rules_; }
  uint32_t firewall_rules() const { return firewall_rules_; }
  bool HasCustomConfig() const { return firewall_rules_ > 0; }

  // Repurposing: forcibly terminates connections (preventing data leakage)
  // but preserves config and interface statistics. Returns the reset cost.
  SimDuration ResetForReuse();
  // Full reset also drops custom configuration.
  SimDuration FullReset();

 private:
  uint64_t id_;
  std::set<uint64_t> open_connections_;
  uint64_t rx_bytes_ = 0;
  uint32_t firewall_rules_ = 0;
};

// Models the kernel-wide contention on netns creation (rtnl lock etc.):
// creations in flight inflate each other's latency.
class NetNsFactory {
 public:
  // Cost of creating one netns while `concurrent` other creations run.
  static SimDuration CreateCost(uint32_t concurrent);

  NetNamespace Create() { return NetNamespace(next_id_++); }

 private:
  uint64_t next_id_ = 1;
};

}  // namespace trenv

#endif  // TRENV_SANDBOX_NET_NAMESPACE_H_
