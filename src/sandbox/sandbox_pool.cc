#include "src/sandbox/sandbox_pool.h"

namespace trenv {

bool SandboxPool::Put(std::unique_ptr<Sandbox> sandbox) {
  if (idle_.size() >= max_idle_) {
    return false;
  }
  idle_.push_back(std::move(sandbox));
  return true;
}

std::unique_ptr<Sandbox> SandboxPool::Take() {
  if (idle_.empty()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  std::unique_ptr<Sandbox> sandbox = std::move(idle_.front());
  idle_.pop_front();
  return sandbox;
}

std::shared_ptr<UnionFs> SandboxPool::AcquireOverlay(const std::string& function) {
  auto cache_it = overlay_cache_.find(function);
  if (cache_it != overlay_cache_.end() && !cache_it->second.empty()) {
    std::shared_ptr<UnionFs> overlay = std::move(cache_it->second.back());
    cache_it->second.pop_back();
    return overlay;
  }
  // Assemble a fresh overlay from the function's dependency layer.
  auto overlay = std::make_shared<UnionFs>();
  auto layer_it = function_layers_.find(function);
  if (layer_it != function_layers_.end()) {
    overlay->PushLower(layer_it->second);
  }
  return overlay;
}

void SandboxPool::ReleaseOverlay(const std::string& function,
                                 std::shared_ptr<UnionFs> overlay) {
  if (overlay == nullptr) {
    return;
  }
  overlay->PurgeUpper();
  overlay_cache_[function].push_back(std::move(overlay));
}

void SandboxPool::RegisterFunctionLayer(const std::string& function,
                                        std::shared_ptr<const FsLayer> layer) {
  function_layers_[function] = std::move(layer);
}

size_t SandboxPool::cached_overlay_count(const std::string& function) const {
  auto it = overlay_cache_.find(function);
  return it == overlay_cache_.end() ? 0 : it->second.size();
}

}  // namespace trenv
