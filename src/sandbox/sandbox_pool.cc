#include "src/sandbox/sandbox_pool.h"

namespace trenv {

bool SandboxPool::Put(std::unique_ptr<Sandbox> sandbox) {
  if (idle_.size() >= max_idle_) {
    return false;
  }
  idle_.push_back(std::move(sandbox));
  return true;
}

std::unique_ptr<Sandbox> SandboxPool::Take() {
  if (idle_.empty()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  std::unique_ptr<Sandbox> sandbox = std::move(idle_.front());
  idle_.pop_front();
  return sandbox;
}

std::shared_ptr<UnionFs> SandboxPool::AcquireOverlay(FunctionId function) {
  if (function < overlay_cache_.size() && !overlay_cache_[function].empty()) {
    std::shared_ptr<UnionFs> overlay = std::move(overlay_cache_[function].back());
    overlay_cache_[function].pop_back();
    return overlay;
  }
  // Assemble a fresh overlay from the function's dependency layer.
  auto overlay = std::make_shared<UnionFs>();
  if (function < function_layers_.size() && function_layers_[function] != nullptr) {
    overlay->PushLower(function_layers_[function]);
  }
  return overlay;
}

void SandboxPool::ReleaseOverlay(FunctionId function, std::shared_ptr<UnionFs> overlay) {
  if (overlay == nullptr || function == kInvalidFunctionId) {
    return;
  }
  overlay->PurgeUpper();
  if (overlay_cache_.size() <= function) {
    overlay_cache_.resize(function + 1);
  }
  overlay_cache_[function].push_back(std::move(overlay));
}

void SandboxPool::RegisterFunctionLayer(const std::string& function,
                                        std::shared_ptr<const FsLayer> layer) {
  const FunctionId id = InternFunction(function);
  if (function_layers_.size() <= id) {
    function_layers_.resize(id + 1);
  }
  function_layers_[id] = std::move(layer);
}

size_t SandboxPool::cached_overlay_count(const std::string& function) const {
  const FunctionId id = GlobalFunctionInterner().Find(function);
  return id < overlay_cache_.size() ? overlay_cache_[id].size() : 0;
}

}  // namespace trenv
