// Pull-based arrival generation: the streaming half of the sharded-core
// refactor. A 10M-invocation trace never lives in memory — each generator
// keeps per-function state plus a bounded reorder buffer and hands out
// invocations one at a time in non-decreasing arrival order.
//
// Equivalence contract (pinned by tests/arrival_stream_test.cc): collecting a
// stream to a vector is byte-identical to the generate-then-SortSchedule
// path using the same RNG draws. The materialized MakeXxxWorkload helpers in
// arrival.h are now thin wrappers over these streams, so anything that held
// for the vectors holds for the streams.
//
// RNG ownership: streams borrow the caller's Rng (not owned) and consume it
// lazily, so a fully drained stream leaves the Rng exactly where the old
// materialized generator left it. Don't touch the Rng while a stream that
// borrowed it is still live.
#ifndef TRENV_WORKLOAD_ARRIVAL_STREAM_H_
#define TRENV_WORKLOAD_ARRIVAL_STREAM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/workload/arrival.h"

namespace trenv {

// One invocation at a time, arrival times non-decreasing, nullopt when the
// trace is exhausted. Next() may be called again after exhaustion.
class ArrivalStream {
 public:
  virtual ~ArrivalStream() = default;
  virtual std::optional<Invocation> Next() = 0;
};

// Drains a stream into a Schedule (already sorted by construction).
Schedule CollectAll(ArrivalStream& stream);

// Adapter for callers that already hold a materialized Schedule (must stay
// alive and unmodified while the stream reads it).
class ScheduleStream final : public ArrivalStream {
 public:
  explicit ScheduleStream(const Schedule& schedule) : schedule_(&schedule) {}
  std::optional<Invocation> Next() override {
    if (index_ >= schedule_->size()) {
      return std::nullopt;
    }
    return (*schedule_)[index_++];
  }

 private:
  const Schedule* schedule_;
  size_t index_ = 0;
};

// Plain Poisson arrivals with Zipf function choice; already monotone in the
// generator, so no reorder buffer at all. Draw-for-draw identical to the
// historical MakePoissonWorkload loop.
class PoissonArrivalStream final : public ArrivalStream {
 public:
  PoissonArrivalStream(std::vector<std::string> functions, double rate_per_sec,
                       SimDuration duration, double function_skew, Rng* rng);
  std::optional<Invocation> Next() override;

 private:
  std::vector<std::string> functions_;
  double rate_per_sec_;
  double duration_s_;
  double function_skew_;
  Rng* rng_;
  double t_ = 0;
  bool started_ = false;
  bool done_;
};

// W2 diurnal arrivals. The generator walks one base timeline; clump siblings
// land up to ~1 s past their base arrival, so a bounded (time, seq)-ordered
// buffer holds at most the clumps still ahead of the base clock — emission is
// safe once the buffered arrival is at or before the base time, because every
// future item lands at or after it. Draw-for-draw identical to the historical
// generate-then-stable_sort loop.
class DiurnalArrivalStream final : public ArrivalStream {
 public:
  DiurnalArrivalStream(std::vector<std::string> functions, const DiurnalOptions& options,
                       Rng* rng);
  std::optional<Invocation> Next() override;

 private:
  struct Buffered {
    SimTime time;
    uint64_t seq;  // generation order: the stable_sort tie-break
    uint32_t fn;
  };
  struct BufferedAfter {
    bool operator()(const Buffered& a, const Buffered& b) const {
      return a.time != b.time ? b.time < a.time : b.seq < a.seq;
    }
  };
  // Runs one iteration of the base-timeline loop, pushing 1 + clump_size
  // items into the buffer; sets gen_done_ when the timeline passes duration.
  void GenerateOne();

  std::vector<std::string> functions_;
  DiurnalOptions options_;
  double duration_s_;
  Rng* rng_;
  double t_ = 0;            // base timeline (seconds); the emission watermark
  uint64_t next_seq_ = 0;
  bool gen_done_;
  std::vector<Buffered> heap_;  // min-heap by (time, seq) via BufferedAfter
};

// W1 bursty arrivals. Per-function generator state: each function gets an
// independent child RNG forked from the caller's Rng (in function order) at
// construction, drives its own burst timeline, and buffers one burst (more
// only if bursts overlap) in a (time, seq) min-heap. A k-way merge across
// functions emits globally sorted arrivals with the stable_sort tie-break
// (time, function index, per-function generation order).
//
// Note the RNG derivation: the pre-stream generator threaded ONE shared Rng
// through all functions back-to-back, which cannot be streamed (function k's
// draws depended on every draw of functions 0..k-1). Forked child RNGs make
// the functions independent; the materialized MakeBurstyWorkload wrapper uses
// the same forked scheme, and the equivalence test pins stream == collect.
class BurstyArrivalStream final : public ArrivalStream {
 public:
  BurstyArrivalStream(std::vector<std::string> functions, const BurstyOptions& options,
                      Rng* rng);
  std::optional<Invocation> Next() override;

 private:
  struct Buffered {
    SimTime time;
    uint64_t seq;
  };
  struct BufferedAfter {
    bool operator()(const Buffered& a, const Buffered& b) const {
      return a.time != b.time ? b.time < a.time : b.seq < a.seq;
    }
  };
  struct FnState {
    std::string name;
    Rng rng;
    SimTime next_burst;
    uint64_t next_seq = 0;
    bool done = false;
    std::vector<Buffered> heap_;  // min-heap by (time, seq)
  };
  struct MergeEntry {
    SimTime time;
    uint32_t fn;
    uint64_t seq;
  };
  struct MergeAfter {
    bool operator()(const MergeEntry& a, const MergeEntry& b) const {
      if (a.time != b.time) {
        return b.time < a.time;
      }
      return a.fn != b.fn ? b.fn < a.fn : b.seq < a.seq;
    }
  };
  // Generates bursts until the function's buffer front is safe to emit (all
  // future items of this function arrive at or after it), then moves the
  // front into the merge heap. No-op if the function is exhausted and empty.
  void RefillMergeFrom(uint32_t fn);

  BurstyOptions options_;
  SimTime end_;
  std::vector<FnState> functions_;
  std::vector<MergeEntry> merge_;  // min-heap by (time, fn, seq) via MergeAfter
};

}  // namespace trenv

#endif  // TRENV_WORKLOAD_ARRIVAL_STREAM_H_
