// Industry-trace generators: statistical stand-ins for the Azure Functions
// trace (Shahrad et al., ATC'20) and the Huawei trace (Joosen et al.,
// SoCC'23) used in section 9.3. Both datasets record per-minute invocation
// counts; the paper distributes invocations randomly within each minute with
// a probability of skew/bursts — we reproduce exactly that procedure over
// synthesized per-minute counts.
#ifndef TRENV_WORKLOAD_TRACES_H_
#define TRENV_WORKLOAD_TRACES_H_

#include "src/workload/arrival.h"

namespace trenv {

struct IndustryTraceOptions {
  SimDuration duration = SimDuration::Minutes(30);
  // Mean invocations per minute per function (heavy-tailed across functions).
  double mean_rpm = 18.0;
  // Dispersion of per-function popularity (lognormal sigma). Azure's
  // popularity distribution is famously heavy-tailed.
  double popularity_sigma = 1.2;
  // Probability that a given minute's invocations arrive as a front-loaded
  // burst rather than spread uniformly (the paper's "probability of creating
  // skew or bursty loads").
  double burst_probability = 0.3;
  // Fraction of minutes a function is completely idle (Azure: most functions
  // are invoked rarely; Huawei: higher duty cycle).
  double idle_minute_fraction = 0.45;
  // On/off episode structure: functions alternate active episodes with idle
  // gaps that commonly exceed the 10-minute keep-alive TTL — the source of
  // real-world cold starts (Shahrad et al.).
  double active_minutes_mean = 7.0;
  double idle_minutes_mean = 14.0;
};

// Azure-like: extreme popularity skew, many idle minutes.
Schedule MakeAzureLikeWorkload(const std::vector<std::string>& functions, Rng& rng);
// Huawei-like: higher duty cycle, stronger per-minute bursts.
Schedule MakeHuaweiLikeWorkload(const std::vector<std::string>& functions, Rng& rng);
// Shared generator.
Schedule MakeIndustryWorkload(const std::vector<std::string>& functions,
                              const IndustryTraceOptions& options, Rng& rng);

}  // namespace trenv

#endif  // TRENV_WORKLOAD_TRACES_H_
