#include "src/workload/arrival_stream.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace trenv {

Schedule CollectAll(ArrivalStream& stream) {
  Schedule schedule;
  while (auto invocation = stream.Next()) {
    schedule.push_back(std::move(*invocation));
  }
  return schedule;
}

PoissonArrivalStream::PoissonArrivalStream(std::vector<std::string> functions,
                                           double rate_per_sec, SimDuration duration,
                                           double function_skew, Rng* rng)
    : functions_(std::move(functions)),
      rate_per_sec_(rate_per_sec),
      duration_s_(duration.seconds()),
      function_skew_(function_skew),
      rng_(rng),
      done_(functions_.empty() || rate_per_sec <= 0) {}

std::optional<Invocation> PoissonArrivalStream::Next() {
  if (done_) {
    return std::nullopt;
  }
  if (!started_) {
    started_ = true;
    t_ = rng_->NextExponential(1.0 / rate_per_sec_);
  }
  if (t_ >= duration_s_) {
    done_ = true;
    return std::nullopt;
  }
  const uint64_t pick = rng_->NextZipf(functions_.size(), function_skew_);
  Invocation invocation{SimTime::Zero() + SimDuration::FromSecondsF(t_), functions_[pick]};
  t_ += rng_->NextExponential(1.0 / rate_per_sec_);
  return invocation;
}

DiurnalArrivalStream::DiurnalArrivalStream(std::vector<std::string> functions,
                                           const DiurnalOptions& options, Rng* rng)
    : functions_(std::move(functions)),
      options_(options),
      duration_s_(options.duration.seconds()),
      rng_(rng),
      gen_done_(functions_.empty()) {}

void DiurnalArrivalStream::GenerateOne() {
  // One iteration of the historical loop, verbatim: rate from the raised
  // sinusoid, exponential step, rotated Zipf pick, optional clump.
  const double phase = 2.0 * std::numbers::pi * options_.cycles * (t_ / duration_s_);
  const double mix = 0.5 * (1.0 - std::cos(phase));
  const double rate = options_.trough_rate_per_sec +
                      (options_.peak_rate_per_sec - options_.trough_rate_per_sec) * mix;
  t_ += rng_->NextExponential(1.0 / std::max(rate, 1e-3));
  if (t_ >= duration_s_) {
    gen_done_ = true;
    return;
  }
  const uint64_t rotation = static_cast<uint64_t>(
      options_.cycles * t_ / duration_s_ * static_cast<double>(functions_.size()));
  const uint32_t pick = static_cast<uint32_t>(
      (rng_->NextZipf(functions_.size(), options_.function_skew) + rotation) %
      functions_.size());
  heap_.push_back({SimTime::Zero() + SimDuration::FromSecondsF(t_), next_seq_++, pick});
  std::push_heap(heap_.begin(), heap_.end(), BufferedAfter{});
  if (rng_->NextBool(options_.clump_probability)) {
    for (uint32_t k = 0; k < options_.clump_size; ++k) {
      heap_.push_back({SimTime::Zero() +
                           SimDuration::FromSecondsF(t_ + rng_->NextUniform(0.0, 1.0)),
                       next_seq_++, pick});
      std::push_heap(heap_.begin(), heap_.end(), BufferedAfter{});
    }
  }
}

std::optional<Invocation> DiurnalArrivalStream::Next() {
  // Emit the buffer front once it is at or before the base timeline: every
  // item still ungenerated lands at t >= t_ (clump offsets are nonnegative),
  // and equal-time latecomers carry a larger seq, so (time, seq) order —
  // stable_sort order — is final for the front.
  const auto front_safe = [&] {
    return !heap_.empty() &&
           heap_.front().time <= SimTime::Zero() + SimDuration::FromSecondsF(t_);
  };
  while (!gen_done_ && !front_safe()) {
    GenerateOne();
  }
  if (heap_.empty()) {
    return std::nullopt;
  }
  std::pop_heap(heap_.begin(), heap_.end(), BufferedAfter{});
  const Buffered item = heap_.back();
  heap_.pop_back();
  return Invocation{item.time, functions_[item.fn]};
}

BurstyArrivalStream::BurstyArrivalStream(std::vector<std::string> functions,
                                         const BurstyOptions& options, Rng* rng)
    : options_(options), end_(SimTime::Zero() + options.duration) {
  functions_.reserve(functions.size());
  for (auto& name : functions) {
    // Children are forked in function order, so the parent Rng advances by
    // exactly one draw per function regardless of trace length.
    FnState state{std::move(name), rng->Fork(), SimTime::Zero(), 0, false, {}};
    state.next_burst =
        SimTime::Zero() + SimDuration::FromSecondsF(state.rng.NextUniform(0, 30));
    functions_.push_back(std::move(state));
  }
  merge_.reserve(functions_.size());
  for (uint32_t fn = 0; fn < functions_.size(); ++fn) {
    RefillMergeFrom(fn);
  }
}

void BurstyArrivalStream::RefillMergeFrom(uint32_t fn) {
  FnState& state = functions_[fn];
  // A burst's offsets land in [next_burst, next_burst + spread); every later
  // burst starts at or after next_burst (gaps are nonnegative). So the buffer
  // front is final once it is at or before next_burst — generate bursts until
  // that holds (one burst in the common case; more only if bursts overlap).
  while (!state.done &&
         (state.heap_.empty() || state.next_burst < state.heap_.front().time)) {
    if (!(state.next_burst < end_)) {
      state.done = true;
      break;
    }
    for (uint32_t i = 0; i < options_.burst_size; ++i) {
      const SimDuration offset = SimDuration::FromSecondsF(
          state.rng.NextUniform(0, options_.burst_spread.seconds()));
      state.heap_.push_back({state.next_burst + offset, state.next_seq++});
      std::push_heap(state.heap_.begin(), state.heap_.end(), BufferedAfter{});
    }
    const double gap_s = options_.inter_burst.seconds() * state.rng.NextUniform(1.0, 1.2);
    state.next_burst += SimDuration::FromSecondsF(gap_s);
  }
  if (state.heap_.empty()) {
    return;
  }
  std::pop_heap(state.heap_.begin(), state.heap_.end(), BufferedAfter{});
  const Buffered item = state.heap_.back();
  state.heap_.pop_back();
  merge_.push_back({item.time, fn, item.seq});
  std::push_heap(merge_.begin(), merge_.end(), MergeAfter{});
}

std::optional<Invocation> BurstyArrivalStream::Next() {
  if (merge_.empty()) {
    return std::nullopt;
  }
  std::pop_heap(merge_.begin(), merge_.end(), MergeAfter{});
  const MergeEntry entry = merge_.back();
  merge_.pop_back();
  Invocation invocation{entry.time, functions_[entry.fn].name};
  RefillMergeFrom(entry.fn);
  return invocation;
}

}  // namespace trenv
