#include "src/workload/trace_csv.h"

#include <fstream>
#include <map>
#include <sstream>

namespace trenv {

namespace {

// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s) {
  const size_t first = s.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) {
    return "";
  }
  const size_t last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

}  // namespace

Result<Schedule> LoadTraceCsv(std::istream& in, const TraceCsvOptions& options, Rng& rng) {
  Schedule schedule;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') {
      continue;
    }
    // Optional header.
    if (line_no == 1 && trimmed.find("minute") != std::string::npos) {
      continue;
    }
    std::istringstream fields(trimmed);
    std::string minute_str;
    std::string function;
    std::string count_str;
    if (!std::getline(fields, minute_str, ',') || !std::getline(fields, function, ',') ||
        !std::getline(fields, count_str, ',')) {
      return Status::InvalidArgument("trace CSV line " + std::to_string(line_no) +
                                     ": expected minute,function,count");
    }
    uint64_t minute = 0;
    uint64_t count = 0;
    try {
      minute = std::stoull(Trim(minute_str));
      count = std::stoull(Trim(count_str));
    } catch (const std::exception&) {
      return Status::InvalidArgument("trace CSV line " + std::to_string(line_no) +
                                     ": non-numeric minute or count");
    }
    function = Trim(function);
    if (function.empty()) {
      return Status::InvalidArgument("trace CSV line " + std::to_string(line_no) +
                                     ": empty function name");
    }
    const bool bursty = rng.NextBool(options.burst_probability);
    for (uint64_t i = 0; i < count; ++i) {
      const double offset_s = bursty ? rng.NextUniform(0.0, options.burst_window_s)
                                     : rng.NextUniform(0.0, 60.0);
      schedule.push_back({SimTime::Zero() + SimDuration::FromSecondsF(
                              static_cast<double>(minute) * 60.0 + offset_s),
                          function});
    }
  }
  SortSchedule(schedule);
  return schedule;
}

Result<Schedule> LoadTraceCsvFile(const std::string& path, const TraceCsvOptions& options,
                                  Rng& rng) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open trace file: " + path);
  }
  return LoadTraceCsv(in, options, rng);
}

void WriteTraceCsv(const Schedule& schedule, std::ostream& out) {
  // Aggregate to (minute, function) -> count, preserving minute order.
  std::map<std::pair<uint64_t, std::string>, uint64_t> counts;
  for (const Invocation& invocation : schedule) {
    const auto minute = static_cast<uint64_t>(invocation.arrival.seconds() / 60.0);
    counts[{minute, invocation.function}] += 1;
  }
  out << "minute,function,count\n";
  for (const auto& [key, count] : counts) {
    out << key.first << "," << key.second << "," << count << "\n";
  }
}

}  // namespace trenv
