// Invocation schedules and the synthetic arrival-pattern generators for the
// paper's W1 (bursty) and W2 (diurnal) workloads (section 9.1).
#ifndef TRENV_WORKLOAD_ARRIVAL_H_
#define TRENV_WORKLOAD_ARRIVAL_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time.h"

namespace trenv {

struct Invocation {
  SimTime arrival;
  std::string function;
};

using Schedule = std::vector<Invocation>;

// Sorts by arrival time (generators emit per-function streams).
void SortSchedule(Schedule& schedule);

// W1: bursty traffic. Bursts arrive with inter-burst gaps *longer than the
// keep-alive threshold*, so traditional caching always misses. Each function
// drives its burst timeline from an independent child RNG forked from the
// caller's Rng in function order (the parent advances one draw per function),
// so the same trace can be generated lazily per function — see
// BurstyArrivalStream in arrival_stream.h.
struct BurstyOptions {
  SimDuration duration = SimDuration::Minutes(30);
  SimDuration inter_burst = SimDuration::Minutes(11);  // > 10 min keep-alive
  uint32_t burst_size = 40;           // invocations per function per burst
  SimDuration burst_spread = SimDuration::Seconds(4);  // arrivals inside a burst
};
Schedule MakeBurstyWorkload(const std::vector<std::string>& functions,
                            const BurstyOptions& options, Rng& rng);

// W2: diurnal traffic. The aggregate rate follows a day-night sinusoid
// (compressed into `duration`) and cycles across functions under tight
// memory, so instances are constantly evicted and recreated.
struct DiurnalOptions {
  SimDuration duration = SimDuration::Minutes(30);
  double peak_rate_per_sec = 4.0;   // aggregate arrival rate at peak
  double trough_rate_per_sec = 0.3;
  uint32_t cycles = 3;              // day-night cycles within duration
  double function_skew = 0.8;       // Zipf skew of function popularity
  // Arrivals clump (fan-out requests, retries): with this probability an
  // arrival drags `clump_size` siblings within ~1 s. Clumps create the
  // concurrency spikes that make W2's tight memory cap bite.
  double clump_probability = 0.25;
  uint32_t clump_size = 10;
};
Schedule MakeDiurnalWorkload(const std::vector<std::string>& functions,
                             const DiurnalOptions& options, Rng& rng);

// Plain Poisson arrivals with Zipf-distributed function choice; building
// block for tests and custom experiments.
Schedule MakePoissonWorkload(const std::vector<std::string>& functions, double rate_per_sec,
                             SimDuration duration, double function_skew, Rng& rng);

}  // namespace trenv

#endif  // TRENV_WORKLOAD_ARRIVAL_H_
