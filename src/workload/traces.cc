#include "src/workload/traces.h"

#include <algorithm>
#include <cmath>

namespace trenv {

Schedule MakeIndustryWorkload(const std::vector<std::string>& functions,
                              const IndustryTraceOptions& options, Rng& rng) {
  Schedule schedule;
  const auto minutes = static_cast<uint64_t>(options.duration.seconds() / 60.0);
  for (const auto& function : functions) {
    // Per-function popularity: lognormal with unit median scaled to mean_rpm.
    const double popularity = rng.NextLogNormal(0.0, options.popularity_sigma);
    const double rpm = options.mean_rpm * popularity;
    // On/off episodes: sample the active/idle state minute by minute.
    bool active = rng.NextBool(0.5);
    double state_left_min = rng.NextExponential(
        active ? options.active_minutes_mean : options.idle_minutes_mean);
    for (uint64_t minute = 0; minute < minutes; ++minute) {
      state_left_min -= 1.0;
      if (state_left_min <= 0) {
        active = !active;
        state_left_min = rng.NextExponential(
            active ? options.active_minutes_mean : options.idle_minutes_mean);
      }
      if (!active || rng.NextBool(options.idle_minute_fraction)) {
        continue;
      }
      // Poisson-ish count for this minute.
      const double lambda = std::max(0.1, rpm);
      auto count = static_cast<uint64_t>(std::max(0.0, rng.NextNormal(lambda, std::sqrt(lambda))));
      count = std::min<uint64_t>(count, 400);  // sanity cap
      const bool bursty_minute = rng.NextBool(options.burst_probability);
      for (uint64_t i = 0; i < count; ++i) {
        double offset_s;
        if (bursty_minute) {
          // Front-loaded: all invocations land in the first few seconds.
          offset_s = rng.NextUniform(0.0, 5.0);
        } else {
          offset_s = rng.NextUniform(0.0, 60.0);
        }
        schedule.push_back({SimTime::Zero() + SimDuration::FromSecondsF(
                                static_cast<double>(minute) * 60.0 + offset_s),
                            function});
      }
    }
  }
  SortSchedule(schedule);
  return schedule;
}

Schedule MakeAzureLikeWorkload(const std::vector<std::string>& functions, Rng& rng) {
  IndustryTraceOptions options;
  options.duration = SimDuration::Minutes(60);  // several on/off episodes
  options.mean_rpm = 14.0;
  options.popularity_sigma = 1.4;  // extreme skew
  options.burst_probability = 0.25;
  options.idle_minute_fraction = 0.35;
  options.active_minutes_mean = 5.0;
  options.idle_minutes_mean = 18.0;  // long gaps: frequent keep-alive misses
  return MakeIndustryWorkload(functions, options, rng);
}

Schedule MakeHuaweiLikeWorkload(const std::vector<std::string>& functions, Rng& rng) {
  IndustryTraceOptions options;
  options.duration = SimDuration::Minutes(60);
  options.mean_rpm = 22.0;
  options.popularity_sigma = 0.9;
  options.burst_probability = 0.45;  // strong sub-minute bursts
  options.idle_minute_fraction = 0.15;
  options.active_minutes_mean = 6.0;
  options.idle_minutes_mean = 12.0;
  return MakeIndustryWorkload(functions, options, rng);
}

}  // namespace trenv
