#include "src/workload/arrival.h"

#include <algorithm>

#include "src/workload/arrival_stream.h"

namespace trenv {

void SortSchedule(Schedule& schedule) {
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const Invocation& a, const Invocation& b) { return a.arrival < b.arrival; });
}

// The materialized generators are thin wrappers over the streaming ones:
// collecting a fully drained stream is byte-identical to the historical
// generate-then-SortSchedule loops (pinned by tests/arrival_stream_test.cc),
// and the caller's Rng ends up exactly where those loops left it.

Schedule MakeBurstyWorkload(const std::vector<std::string>& functions,
                            const BurstyOptions& options, Rng& rng) {
  BurstyArrivalStream stream(functions, options, &rng);
  return CollectAll(stream);
}

Schedule MakeDiurnalWorkload(const std::vector<std::string>& functions,
                             const DiurnalOptions& options, Rng& rng) {
  DiurnalArrivalStream stream(functions, options, &rng);
  return CollectAll(stream);
}

Schedule MakePoissonWorkload(const std::vector<std::string>& functions, double rate_per_sec,
                             SimDuration duration, double function_skew, Rng& rng) {
  PoissonArrivalStream stream(functions, rate_per_sec, duration, function_skew, &rng);
  return CollectAll(stream);
}

}  // namespace trenv
