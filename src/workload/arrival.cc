#include "src/workload/arrival.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace trenv {

void SortSchedule(Schedule& schedule) {
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const Invocation& a, const Invocation& b) { return a.arrival < b.arrival; });
}

Schedule MakeBurstyWorkload(const std::vector<std::string>& functions,
                            const BurstyOptions& options, Rng& rng) {
  Schedule schedule;
  // Stagger the functions' first bursts slightly so bursts of different
  // functions overlap but are not perfectly aligned.
  for (const auto& function : functions) {
    SimTime burst_start = SimTime::Zero() + SimDuration::FromSecondsF(rng.NextUniform(0, 30));
    while (burst_start < SimTime::Zero() + options.duration) {
      for (uint32_t i = 0; i < options.burst_size; ++i) {
        const SimDuration offset =
            SimDuration::FromSecondsF(rng.NextUniform(0, options.burst_spread.seconds()));
        schedule.push_back({burst_start + offset, function});
      }
      // Inter-burst gap jittered +-10% but always above the keep-alive TTL.
      const double gap_s = options.inter_burst.seconds() * rng.NextUniform(1.0, 1.2);
      burst_start += SimDuration::FromSecondsF(gap_s);
    }
  }
  SortSchedule(schedule);
  return schedule;
}

Schedule MakeDiurnalWorkload(const std::vector<std::string>& functions,
                             const DiurnalOptions& options, Rng& rng) {
  Schedule schedule;
  if (functions.empty()) {
    return schedule;
  }
  const double duration_s = options.duration.seconds();
  double t = 0;
  while (t < duration_s) {
    // Instantaneous rate follows a raised sinusoid across `cycles` periods.
    const double phase =
        2.0 * std::numbers::pi * options.cycles * (t / duration_s);
    const double mix = 0.5 * (1.0 - std::cos(phase));  // 0 at trough, 1 at peak
    const double rate = options.trough_rate_per_sec +
                        (options.peak_rate_per_sec - options.trough_rate_per_sec) * mix;
    t += rng.NextExponential(1.0 / std::max(rate, 1e-3));
    if (t >= duration_s) {
      break;
    }
    // Popularity rotates over time: the hot function shifts each cycle so
    // memory pressure keeps churning different images (W2's point).
    const uint64_t rotation =
        static_cast<uint64_t>(options.cycles * t / duration_s * static_cast<double>(functions.size()));
    const uint64_t pick = (rng.NextZipf(functions.size(), options.function_skew) + rotation) %
                          functions.size();
    schedule.push_back({SimTime::Zero() + SimDuration::FromSecondsF(t), functions[pick]});
    if (rng.NextBool(options.clump_probability)) {
      for (uint32_t k = 0; k < options.clump_size; ++k) {
        schedule.push_back({SimTime::Zero() + SimDuration::FromSecondsF(
                                t + rng.NextUniform(0.0, 1.0)),
                            functions[pick]});
      }
    }
  }
  SortSchedule(schedule);
  return schedule;
}

Schedule MakePoissonWorkload(const std::vector<std::string>& functions, double rate_per_sec,
                             SimDuration duration, double function_skew, Rng& rng) {
  Schedule schedule;
  if (functions.empty() || rate_per_sec <= 0) {
    return schedule;
  }
  double t = rng.NextExponential(1.0 / rate_per_sec);
  while (t < duration.seconds()) {
    const uint64_t pick = rng.NextZipf(functions.size(), function_skew);
    schedule.push_back({SimTime::Zero() + SimDuration::FromSecondsF(t), functions[pick]});
    t += rng.NextExponential(1.0 / rate_per_sec);
  }
  return schedule;
}

}  // namespace trenv
