#include "src/workload/pipeline.h"

namespace trenv {

PipelineSpec MakeChainPipeline(uint32_t nstages, uint64_t payload_pages,
                               const std::vector<std::string>& functions) {
  PipelineSpec spec;
  spec.name = "chain" + std::to_string(nstages);
  spec.payload_pages = payload_pages;
  spec.stages.reserve(nstages);
  for (uint32_t i = 0; i < nstages; ++i) {
    PipelineStage stage;
    stage.function = functions[i % functions.size()];
    if (i > 0) {
      stage.inputs.push_back(i - 1);
    }
    spec.stages.push_back(std::move(stage));
  }
  return spec;
}

PipelineSpec MakeFanOutFanInPipeline(uint32_t width, uint64_t payload_pages,
                                     const std::vector<std::string>& functions) {
  PipelineSpec spec;
  spec.name = "fan" + std::to_string(width);
  spec.payload_pages = payload_pages;
  spec.stages.reserve(width + 2);
  PipelineStage source;
  source.function = functions[0];
  spec.stages.push_back(std::move(source));
  for (uint32_t i = 0; i < width; ++i) {
    PipelineStage branch;
    branch.function = functions[(i + 1) % functions.size()];
    branch.inputs.push_back(0);
    spec.stages.push_back(std::move(branch));
  }
  PipelineStage sink;
  sink.function = functions[(width + 1) % functions.size()];
  for (uint32_t i = 0; i < width; ++i) {
    sink.inputs.push_back(i + 1);
  }
  spec.stages.push_back(std::move(sink));
  return spec;
}

std::vector<SimTime> MakePipelineArrivals(uint32_t jobs, double rate_per_sec, Rng& rng) {
  std::vector<SimTime> arrivals;
  arrivals.reserve(jobs);
  SimTime t;
  const double mean_gap = rate_per_sec > 0 ? 1.0 / rate_per_sec : 0.0;
  for (uint32_t i = 0; i < jobs; ++i) {
    t += SimDuration::FromSecondsF(rng.NextExponential(mean_gap));
    arrivals.push_back(t);
  }
  return arrivals;
}

}  // namespace trenv
