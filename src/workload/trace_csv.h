// CSV trace loader: turns real per-minute invocation-count dumps (the format
// of the Azure Functions and Huawei traces the paper replays) into
// schedules, using the paper's own procedure — "randomly distribute those
// within each minute, with a probability of creating skew or bursty loads".
//
// Accepted line format (header optional, '#' comments ignored):
//   minute,function,count
// e.g.
//   0,JS,14
//   0,IR,3
//   1,JS,17
#ifndef TRENV_WORKLOAD_TRACE_CSV_H_
#define TRENV_WORKLOAD_TRACE_CSV_H_

#include <istream>
#include <string>

#include "src/common/status.h"
#include "src/workload/arrival.h"

namespace trenv {

struct TraceCsvOptions {
  // Probability that a minute's invocations arrive front-loaded (the paper's
  // skew/burst knob).
  double burst_probability = 0.3;
  // Burst window at the start of a bursty minute.
  double burst_window_s = 5.0;
};

// Parses per-minute counts and expands them into a schedule. Unknown or
// malformed lines produce an error naming the line number.
Result<Schedule> LoadTraceCsv(std::istream& in, const TraceCsvOptions& options, Rng& rng);
Result<Schedule> LoadTraceCsvFile(const std::string& path, const TraceCsvOptions& options,
                                  Rng& rng);

// Serializes a schedule back to the per-minute CSV format (aggregating
// counts), so synthetic workloads can be exported and re-loaded.
void WriteTraceCsv(const Schedule& schedule, std::ostream& out);

}  // namespace trenv

#endif  // TRENV_WORKLOAD_TRACE_CSV_H_
