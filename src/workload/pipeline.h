// Stateful pipeline workloads: DAGs of function stages passing payloads.
//
// Faasm/Nexus-style scenarios (ROADMAP item 5): a job is one traversal of a
// stage DAG where every edge carries a payload region. How the payload moves
// (shared region handoff vs. copy-through-worker vs. NAS round-trip) is the
// PipelineDriver's concern (src/shstate/pipeline_driver.h); this header is
// the pure workload description.
#ifndef TRENV_WORKLOAD_PIPELINE_H_
#define TRENV_WORKLOAD_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time.h"

namespace trenv {

struct PipelineStage {
  std::string function;          // deployed function the stage invokes
  std::vector<uint32_t> inputs;  // predecessor stage indices (empty = source)
};

// A stage DAG in topological order (every input index < the stage's own).
struct PipelineSpec {
  std::string name;
  std::vector<PipelineStage> stages;
  uint64_t payload_pages = 256;  // pages carried per edge (4 KiB each)

  uint32_t EdgeCount() const {
    uint32_t edges = 0;
    for (const PipelineStage& stage : stages) {
      edges += static_cast<uint32_t>(stage.inputs.size());
    }
    return edges;
  }
};

// N-stage chain: s0 -> s1 -> ... -> s{n-1}. Stage i runs functions[i % size].
PipelineSpec MakeChainPipeline(uint32_t nstages, uint64_t payload_pages,
                               const std::vector<std::string>& functions);

// Fan-out/fan-in diamond: one source stage feeds `width` parallel stages whose
// outputs a final stage aggregates (source + width + sink stages total).
PipelineSpec MakeFanOutFanInPipeline(uint32_t width, uint64_t payload_pages,
                                     const std::vector<std::string>& functions);

// Poisson job arrivals: `jobs` start times at `rate_per_sec`, drawn from the
// caller's seeded rng (deterministic, sorted).
std::vector<SimTime> MakePipelineArrivals(uint32_t jobs, double rate_per_sec, Rng& rng);

}  // namespace trenv

#endif  // TRENV_WORKLOAD_PIPELINE_H_
