#include "src/poolctl/membership.h"

namespace trenv {

GossipMembership::GossipMembership(MembershipConfig config, uint32_t fleet,
                                   EventScheduler* clock, obs::Registry* stats)
    : config_(config), clock_(clock), rng_(config.seed) {
  nodes_.resize(fleet);
  if (stats != nullptr) {
    heartbeats_counter_ = stats->GetCounter("poolctl.heartbeats");
    dropped_counter_ = stats->GetCounter("poolctl.heartbeats_dropped");
    suspicions_counter_ = stats->GetCounter("poolctl.suspicions");
    false_suspicions_counter_ = stats->GetCounter("poolctl.false_suspicions");
    deaths_counter_ = stats->GetCounter("poolctl.deaths");
    rejoins_counter_ = stats->GetCounter("poolctl.rejoins");
    epoch_gauge_ = stats->GetGauge("poolctl.membership_epoch");
  }
}

void GossipMembership::Start(SimTime now) {
  if (running_) {
    return;
  }
  running_ = true;
  for (NodeState& node : nodes_) {
    node.last_beat = now;
  }
  tick_event_ = clock_->ScheduleAt(now + config_.heartbeat_interval, [this] { Tick(); });
}

void GossipMembership::Stop() {
  running_ = false;
  if (tick_event_ != kInvalidEventId) {
    (void)clock_->Cancel(tick_event_);
    tick_event_ = kInvalidEventId;
  }
}

void GossipMembership::NodeDown(uint32_t node) {
  if (node >= nodes_.size() || !nodes_[node].up) {
    return;
  }
  nodes_[node].up = false;
  nodes_[node].down_since = clock_->now();
  ++nodes_[node].downs;
}

void GossipMembership::NodeUp(uint32_t node) {
  if (node >= nodes_.size() || nodes_[node].up) {
    return;
  }
  // Heartbeats resume on the next tick; the state machine recovers (or
  // rejoins, if the node was declared dead meanwhile) from the beats alone.
  nodes_[node].up = true;
}

void GossipMembership::Tick() {
  const SimTime now = clock_->now();
  // Phase 1: deliver this interval's heartbeats, in node order. Loss is
  // evaluated per (tick, node) and drawn only when positive — a fault-free
  // schedule never touches the Rng, keeping disabled-fault runs identical.
  for (uint32_t n = 0; n < nodes_.size(); ++n) {
    if (!nodes_[n].up) {
      continue;  // a down node sends nothing; silence accrues suspicion
    }
    ++heartbeats_sent_;
    if (heartbeats_counter_ != nullptr) {
      heartbeats_counter_->Add(1);
    }
    const double loss = loss_ ? loss_(now, n) : 0.0;
    if (loss > 0.0 && rng_.NextBool(loss)) {
      ++heartbeats_dropped_;
      if (dropped_counter_ != nullptr) {
        dropped_counter_->Add(1);
      }
      continue;  // the fabric ate it: indistinguishable from a dead node
    }
    Deliver(n, now);
  }
  // Phase 2: accrue suspicion over the silence since each node's last beat.
  for (uint32_t n = 0; n < nodes_.size(); ++n) {
    Evaluate(n, now);
  }
  if (running_) {
    tick_event_ = clock_->ScheduleAt(now + config_.heartbeat_interval, [this] { Tick(); });
  }
}

void GossipMembership::Deliver(uint32_t node, SimTime now) {
  NodeState& state = nodes_[node];
  state.last_beat = now;
  switch (state.state) {
    case State::kAlive:
      break;
    case State::kSuspect: {
      // Recovered before declaration. If the node never actually went down
      // since we suspected it, the network dropped its beats: a false
      // suspicion — the failure-detector cost of RDMA flaps.
      if (state.was_up_at_suspicion && state.downs == state.downs_at_suspicion) {
        ++false_suspicions_;
        if (false_suspicions_counter_ != nullptr) {
          false_suspicions_counter_->Add(1);
        }
      }
      Announce(node, State::kSuspect, State::kAlive, now);
      state.state = State::kAlive;
      break;
    }
    case State::kDead:
      state.state = State::kJoining;
      state.join_streak = 1;
      Announce(node, State::kDead, State::kJoining, now);
      if (state.join_streak >= config_.join_beats) {
        state.state = State::kAlive;
        ++rejoins_;
        ++epoch_;
        if (rejoins_counter_ != nullptr) {
          rejoins_counter_->Add(1);
        }
        if (epoch_gauge_ != nullptr) {
          epoch_gauge_->Set(static_cast<double>(epoch_));
        }
        Announce(node, State::kJoining, State::kAlive, now);
      }
      break;
    case State::kJoining:
      ++state.join_streak;
      if (state.join_streak >= config_.join_beats) {
        state.state = State::kAlive;
        ++rejoins_;
        ++epoch_;
        if (rejoins_counter_ != nullptr) {
          rejoins_counter_->Add(1);
        }
        if (epoch_gauge_ != nullptr) {
          epoch_gauge_->Set(static_cast<double>(epoch_));
        }
        Announce(node, State::kJoining, State::kAlive, now);
      }
      break;
  }
}

void GossipMembership::Evaluate(uint32_t node, SimTime now) {
  NodeState& state = nodes_[node];
  if (state.state == State::kDead) {
    return;  // only beats (NodeUp + delivery) bring a dead node back
  }
  if (state.state == State::kJoining) {
    // A joining node that misses a beat (still flapping) restarts its
    // streak from dead — one lucky beat must not rejoin the ring.
    if (now > state.last_beat) {
      state.state = State::kDead;
      state.join_streak = 0;
      Announce(node, State::kJoining, State::kDead, now);
    }
    return;
  }
  const double phi = (now - state.last_beat).nanos() /
                     static_cast<double>(config_.heartbeat_interval.nanos());
  if (state.state == State::kAlive && phi >= config_.phi_suspect) {
    state.state = State::kSuspect;
    state.was_up_at_suspicion = state.up;
    state.downs_at_suspicion = state.downs;
    ++suspicions_;
    if (suspicions_counter_ != nullptr) {
      suspicions_counter_->Add(1);
    }
    Announce(node, State::kAlive, State::kSuspect, now);
  }
  if (state.state == State::kSuspect && phi >= config_.phi_dead) {
    state.state = State::kDead;
    state.join_streak = 0;
    ++deaths_;
    ++epoch_;
    if (deaths_counter_ != nullptr) {
      deaths_counter_->Add(1);
    }
    if (epoch_gauge_ != nullptr) {
      epoch_gauge_->Set(static_cast<double>(epoch_));
    }
    if (!state.up) {
      // True death: record how long the fleet served reads toward a corpse.
      detection_ms_.RecordDuration(now - state.down_since);
    }
    Announce(node, State::kSuspect, State::kDead, now);
  }
}

void GossipMembership::Announce(uint32_t node, State from, State to, SimTime when) {
  if (listener_) {
    listener_(Transition{node, from, to, when});
  }
}

uint32_t GossipMembership::alive_in_view() const {
  uint32_t count = 0;
  for (uint32_t n = 0; n < nodes_.size(); ++n) {
    if (InView(n)) {
      ++count;
    }
  }
  return count;
}

}  // namespace trenv
