#include "src/poolctl/control_plane.h"

#include <algorithm>
#include <string>

namespace trenv {

namespace {

// Heartbeat loss from the fault schedule: the worst kRdmaFlap window
// covering `now` that targets the node. Pure function of the schedule, so
// the detector's draws replay identically on every run.
double FlapLossAt(const FaultSchedule* faults, SimTime now, uint32_t node) {
  if (faults == nullptr) {
    return 0.0;
  }
  double loss = 0.0;
  for (const FaultWindow& window : faults->windows) {
    if (window.domain == FaultDomain::kRdmaFlap && window.Contains(now) &&
        window.Targets(node)) {
      loss = std::max(loss, window.probability);
    }
  }
  return loss;
}

}  // namespace

PoolControlPlane::PoolControlPlane(PoolCtlConfig config, PoolManager* mgr,
                                   const FaultSchedule* faults, obs::Registry* stats,
                                   obs::Tracer* tracer)
    : config_(config),
      mgr_(mgr),
      membership_(config.membership, mgr->pool_node_count(), &mgr->clock(), stats),
      tracer_(tracer) {
  mgr_->EnableContinuousControl(config_.policy);
  membership_.SetListener(
      [this](const GossipMembership::Transition& transition) { OnTransition(transition); });
  if (faults != nullptr && !faults->empty()) {
    membership_.SetHeartbeatLoss([faults](SimTime now, uint32_t node) {
      return FlapLossAt(faults, now, node);
    });
  }
  if (stats != nullptr) {
    ticks_counter_ = stats->GetCounter("poolctl.rebalance_ticks");
    moved_counter_ = stats->GetCounter("poolctl.rebalance_pages");
    promotions_counter_ = stats->GetCounter("poolctl.hot_promotions");
    demotions_counter_ = stats->GetCounter("poolctl.hot_demotions");
    under_replicated_gauge_ = stats->GetGauge("poolctl.under_replicated_shards");
  }
  if (tracer_ != nullptr) {
    trace_pid_ = tracer_->RegisterProcess(
        "poolctl", [clock = &mgr_->clock()] { return clock->now(); });
  }
}

void PoolControlPlane::Start(SimTime now) {
  if (running_) {
    return;
  }
  running_ = true;
  membership_.Start(now);
  rebalance_event_ =
      mgr_->clock().ScheduleAt(now + config_.rebalance_interval, [this] { RebalanceTick(); });
}

void PoolControlPlane::Quiesce() {
  if (!running_) {
    return;
  }
  running_ = false;
  membership_.Stop();
  if (rebalance_event_ != kInvalidEventId) {
    (void)mgr_->clock().Cancel(rebalance_event_);
    rebalance_event_ = kInvalidEventId;
  }
}

void PoolControlPlane::OnTransition(const GossipMembership::Transition& transition) {
  using State = GossipMembership::State;
  if (transition.to == State::kDead && transition.from == State::kSuspect) {
    mgr_->DeclareDead(transition.node, transition.when);
  } else if (transition.to == State::kAlive && transition.from == State::kJoining) {
    mgr_->DeclareJoined(transition.node, transition.when);
  }
  if (tracer_ != nullptr) {
    const char* name = nullptr;
    switch (transition.to) {
      case State::kSuspect:
        name = "membership.suspect";
        break;
      case State::kDead:
        name = transition.from == State::kJoining ? "membership.join_abort"
                                                  : "membership.dead";
        break;
      case State::kJoining:
        name = "membership.joining";
        break;
      case State::kAlive:
        name = transition.from == State::kJoining ? "membership.rejoined"
                                                  : "membership.recovered";
        break;
    }
    const obs::SpanId id = tracer_->Instant({trace_pid_, 0}, name, "poolctl");
    tracer_->Annotate(id, "pool_node", static_cast<int64_t>(transition.node));
    tracer_->Annotate(id, "epoch", static_cast<int64_t>(membership_.epoch()));
  }
}

void PoolControlPlane::RebalanceTick() {
  const SimTime now = mgr_->clock().now();
  const size_t nshards = mgr_->shard_count();
  scores_.resize(nshards, 0);
  last_fetches_.resize(nshards, 0);
  extra_.resize(nshards, 0);

  // Score update: halve (decay) and add this tick's fetch delta, then remap
  // scores to extra-replica targets. Promotion and demotion are both just a
  // different reconcile target — copies happen under the same budget, drops
  // are metadata-only.
  for (uint32_t s = 0; s < nshards; ++s) {
    const uint64_t fetches = mgr_->ShardFetches(s);
    const uint64_t delta = fetches - last_fetches_[s];
    last_fetches_[s] = fetches;
    scores_[s] = scores_[s] / 2 + delta;
    if (!config_.hot_shard_mitigation || config_.hot_promote_score == 0) {
      continue;
    }
    const uint32_t want = static_cast<uint32_t>(
        std::min<uint64_t>(config_.max_extra_replicas, scores_[s] / config_.hot_promote_score));
    if (want > extra_[s]) {
      hot_promotions_ += want - extra_[s];
      if (promotions_counter_ != nullptr) {
        promotions_counter_->Add(static_cast<double>(want - extra_[s]));
      }
    } else if (want < extra_[s]) {
      hot_demotions_ += extra_[s] - want;
      if (demotions_counter_ != nullptr) {
        demotions_counter_->Add(static_cast<double>(extra_[s] - want));
      }
    }
    extra_[s] = want;
  }

  const uint32_t base = mgr_->base_replication();
  uint64_t budget = config_.rebalance_budget_pages;
  uint64_t moved = 0;
  // Pass 1 — restore first: shards below the static replication factor get
  // the budget before any ring-alignment or hot-extra copying, so rolling
  // restarts never let redundancy decay while cosmetic moves proceed.
  for (uint32_t s = 0; s < nshards && budget > 0; ++s) {
    if (!mgr_->ShardUnderReplicated(s)) {
      continue;
    }
    const PoolManager::ReconcileResult result =
        mgr_->ReconcileShard(s, base + extra_[s], budget);
    budget -= std::min(budget, result.pages_moved);
    moved += result.pages_moved;
  }
  // Pass 2 — alignment + hot extras, resuming from the cursor so every
  // shard gets reconciled eventually even when each tick's budget only
  // covers a few moves.
  bool exhausted = false;
  for (uint32_t i = 0; i < nshards; ++i) {
    const uint32_t s = (cursor_ + i) % static_cast<uint32_t>(nshards);
    const PoolManager::ReconcileResult result =
        mgr_->ReconcileShard(s, base + extra_[s], budget);
    budget -= std::min(budget, result.pages_moved);
    moved += result.pages_moved;
    if (budget == 0 && !result.converged) {
      cursor_ = s;  // resume here next tick
      exhausted = true;
      break;
    }
  }
  if (!exhausted) {
    cursor_ = 0;
  }

  ++rebalance_ticks_;
  pages_moved_ += moved;
  tick_pages_.Record(static_cast<double>(moved));
  if (ticks_counter_ != nullptr) {
    ticks_counter_->Add(1);
  }
  if (moved_counter_ != nullptr) {
    moved_counter_->Add(static_cast<double>(moved));
  }
  if (under_replicated_gauge_ != nullptr) {
    under_replicated_gauge_->Set(static_cast<double>(mgr_->UnderReplicatedShards()));
  }
  if (tracer_ != nullptr && moved > 0) {
    const obs::SpanId id = tracer_->RecordSpanAt({trace_pid_, 0}, "rebalance.tick", "poolctl",
                                                 now, SimDuration::Zero());
    tracer_->Annotate(id, "pages_moved", static_cast<int64_t>(moved));
    tracer_->Annotate(id, "epoch", static_cast<int64_t>(membership_.epoch()));
  }
  if (running_) {
    rebalance_event_ = mgr_->clock().ScheduleAt(now + config_.rebalance_interval,
                                                [this] { RebalanceTick(); });
  }
}

uint64_t PoolControlPlane::DispatchPenaltyMs(uint32_t worker, SimTime now) const {
  const SimDuration backlog = mgr_->NicBacklog(worker, now);
  uint64_t ms = static_cast<uint64_t>(backlog.nanos() / 1000000);
  if (membership_.alive_in_view() < membership_.fleet()) {
    ms *= 2;  // degraded view: a cold pull here risks dead-read timeouts
  }
  return ms;
}

}  // namespace trenv
