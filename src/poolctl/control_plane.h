// PoolControlPlane: the continuous control loop over the poolmgr store.
//
// The legacy poolmgr wiring is single-shot: a crash instantly rewires the
// ring and schedules one delayed rebalance sweep that moves everything at
// once. This module replaces that with a running control plane on the pool
// clock (docs/control_plane.md):
//
//   * Membership — a GossipMembership detector observes heartbeats and
//     declares deaths/rejoins; ring surgery (DeclareDead/DeclareJoined)
//     happens only on declarations, so a node the network merely muted
//     keeps its copies and the read path pays dead-read timeouts instead of
//     losing replication.
//   * Continuous rebalancing — every tick reconciles shards toward their
//     ring owners under a per-tick page budget: a restore-first pass tops
//     up under-replicated shards, then a cursor walks the remaining shards
//     round-robin so ring alignment makes progress without ever saturating
//     the fabric. Rolling restarts therefore re-replicate incrementally
//     while the trace is still running.
//   * Hot-shard mitigation — per-shard fetch deltas feed a decaying score;
//     shards scoring above the promote threshold get up to
//     `max_extra_replicas` extra copies beyond the static factor (spread
//     reads fan the lease traffic across them), and decayed scores demote
//     the extras again (the drop is metadata-only).
//   * Admission control — installs the ContinuousPoolPolicy that makes the
//     poolmgr shed cold attaches to NAS when a worker NIC's backlog passes
//     the threshold (never dropping an accepted invocation).
//
// Determinism: every decision runs on the lock-stepped pool clock, iterates
// in node/shard order, and draws randomness only from the membership
// detector's private seeded Rng — output stays byte-identical across
// --jobs and --shards.
#ifndef TRENV_POOLCTL_CONTROL_PLANE_H_
#define TRENV_POOLCTL_CONTROL_PLANE_H_

#include <cstdint>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/time.h"
#include "src/fault/fault_schedule.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/poolctl/membership.h"
#include "src/poolmgr/pool_manager.h"

namespace trenv {

struct PoolCtlConfig {
  // false builds no control plane: the cluster keeps the legacy single-shot
  // crash wiring and stays bit-identical to before this subsystem existed.
  bool enabled = false;
  MembershipConfig membership;
  // Continuous rebalancer cadence and its per-tick fabric budget (pages of
  // background copy traffic per tick — the "per-epoch budget").
  SimDuration rebalance_interval = SimDuration::Millis(500);
  uint64_t rebalance_budget_pages = 8192;
  // Hot-shard mitigation: fetch-score decay is a halving per tick; every
  // `hot_promote_score` points of score buys one extra replica, capped.
  bool hot_shard_mitigation = true;
  uint64_t hot_promote_score = 24;
  uint32_t max_extra_replicas = 3;
  // Read/admission policy installed into the PoolManager.
  ContinuousPoolPolicy policy;
};

class PoolControlPlane {
 public:
  // `mgr` must outlive the plane; `faults` (nullable) supplies the RDMA-flap
  // windows that drive heartbeat loss; `stats`/`tracer` may be null.
  PoolControlPlane(PoolCtlConfig config, PoolManager* mgr, const FaultSchedule* faults,
                   obs::Registry* stats, obs::Tracer* tracer);
  PoolControlPlane(const PoolControlPlane&) = delete;
  PoolControlPlane& operator=(const PoolControlPlane&) = delete;

  // Starts the heartbeat and rebalance ticks (idempotent).
  void Start(SimTime now);
  // Cancels both periodic ticks so the pool clock's RunUntilIdle can drain.
  // Deliberately does NOT run a final unbudgeted converge: "replication
  // restored by trace end" must be earned by the continuous loop.
  void Quiesce();

  GossipMembership& membership() { return membership_; }
  const GossipMembership& membership() const { return membership_; }

  // Dispatch consult: extra cost (milliseconds, quantized) of routing an
  // invocation to `worker` now — its NIC backlog, doubled while the
  // membership view is degraded (cold pulls risk dead-read timeouts).
  uint64_t DispatchPenaltyMs(uint32_t worker, SimTime now) const;

  uint64_t rebalance_ticks() const { return rebalance_ticks_; }
  uint64_t pages_moved() const { return pages_moved_; }
  uint64_t hot_promotions() const { return hot_promotions_; }
  uint64_t hot_demotions() const { return hot_demotions_; }
  // Extra replicas currently promoted for a shard (0 when not hot).
  uint32_t ExtraReplicas(uint32_t shard_index) const {
    return shard_index < extra_.size() ? extra_[shard_index] : 0;
  }
  // Pages of background copy traffic per rebalance tick.
  const Histogram& tick_pages() const { return tick_pages_; }

 private:
  void OnTransition(const GossipMembership::Transition& transition);
  void RebalanceTick();

  PoolCtlConfig config_;
  PoolManager* mgr_;
  GossipMembership membership_;
  obs::Tracer* tracer_ = nullptr;
  obs::ProcessId trace_pid_ = 0;
  EventId rebalance_event_ = kInvalidEventId;
  bool running_ = false;

  // Hot-shard state, indexed by shard (grown lazily to shard_count).
  std::vector<uint64_t> scores_;
  std::vector<uint64_t> last_fetches_;
  std::vector<uint32_t> extra_;
  // Round-robin resume point for the budget-bound alignment pass.
  uint32_t cursor_ = 0;

  uint64_t rebalance_ticks_ = 0;
  uint64_t pages_moved_ = 0;
  uint64_t hot_promotions_ = 0;
  uint64_t hot_demotions_ = 0;
  Histogram tick_pages_;

  obs::Counter* ticks_counter_ = nullptr;
  obs::Counter* moved_counter_ = nullptr;
  obs::Counter* promotions_counter_ = nullptr;
  obs::Counter* demotions_counter_ = nullptr;
  obs::Gauge* under_replicated_gauge_ = nullptr;
};

}  // namespace trenv

#endif  // TRENV_POOLCTL_CONTROL_PLANE_H_
