// GossipMembership: a deterministic gossip-style failure detector for the
// memory-pool fleet.
//
// The poolmgr's legacy wiring learns about pool-node deaths instantly and
// perfectly — the fault plan calls OnPoolNodeCrash the moment the node dies.
// Production control planes have neither luxury: they observe heartbeats,
// accrue suspicion, and sometimes declare a live node dead because the
// *network* dropped its beats (an RDMA flap), not the node. This module is
// that detector, collapsed onto the control plane's own EventScheduler:
//
//   * One periodic tick delivers (or drops) a heartbeat per up node, in node
//     order, then re-evaluates suspicion — a phi-accrual detector simplified
//     to missed-interval counts (phi = elapsed / interval).
//   * Heartbeat loss is driven by the fault schedule's kRdmaFlap windows
//     through a caller-supplied probability function, drawn from the
//     detector's private seeded Rng — so false suspicion happens exactly
//     when the fabric is flapping, and identically on every run.
//   * The state machine is kAlive -> kSuspect -> kDead -> kJoining ->
//     kAlive. A suspect that beats again recovers (counted as a false
//     suspicion when the node never actually went down); a dead node must
//     deliver `join_beats` consecutive beats to rejoin, so one lucky beat
//     through a flap storm doesn't flap the ring too.
//
// The detector only observes and declares; ring surgery happens in the
// listener (PoolControlPlane -> PoolManager::DeclareDead/DeclareJoined).
#ifndef TRENV_POOLCTL_MEMBERSHIP_H_
#define TRENV_POOLCTL_MEMBERSHIP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/obs/registry.h"
#include "src/sim/event_scheduler.h"

namespace trenv {

struct MembershipConfig {
  SimDuration heartbeat_interval = SimDuration::Millis(500);
  // Missed-interval thresholds: a node is suspected after phi_suspect
  // silent intervals and declared dead after phi_dead.
  double phi_suspect = 3.0;
  double phi_dead = 8.0;
  // Consecutive delivered beats a dead node needs to rejoin the view.
  uint32_t join_beats = 2;
  uint64_t seed = 0x60551b;
};

class GossipMembership {
 public:
  enum class State : uint8_t { kAlive, kSuspect, kDead, kJoining };

  struct Transition {
    uint32_t node = 0;
    State from = State::kAlive;
    State to = State::kAlive;
    SimTime when;
  };
  using Listener = std::function<void(const Transition&)>;

  // `clock` is the control plane's scheduler (not owned); `stats` may be
  // null. Nothing is scheduled until Start().
  GossipMembership(MembershipConfig config, uint32_t fleet, EventScheduler* clock,
                   obs::Registry* stats);
  GossipMembership(const GossipMembership&) = delete;
  GossipMembership& operator=(const GossipMembership&) = delete;

  // Fires on every view change (suspicion, death, rejoin start, rejoin).
  void SetListener(Listener listener) { listener_ = std::move(listener); }
  // Probability that an up node's heartbeat this tick is lost in the
  // fabric; evaluated as loss(now, node). Null = lossless. Drawn from the
  // private Rng only when positive, so fault-free runs draw nothing.
  void SetHeartbeatLoss(std::function<double(SimTime, uint32_t)> loss) {
    loss_ = std::move(loss);
  }

  // Schedules the first tick one interval after `now`; every node starts
  // alive with its last beat stamped at `now`.
  void Start(SimTime now);
  // Cancels the pending tick so RunUntilIdle can drain (quiesce).
  void Stop();

  // Physical liveness from the fault plan. The detector never reads these
  // directly for state — it only stops/resumes the node's heartbeats and
  // uses them to tell false suspicion from true.
  void NodeDown(uint32_t node);
  void NodeUp(uint32_t node);

  State state(uint32_t node) const { return nodes_[node].state; }
  // In the view = counted as a member (alive or merely suspected).
  bool InView(uint32_t node) const {
    return nodes_[node].state == State::kAlive || nodes_[node].state == State::kSuspect;
  }
  uint32_t fleet() const { return static_cast<uint32_t>(nodes_.size()); }
  uint32_t alive_in_view() const;
  // Bumped on every death and every completed rejoin — the rebalancer's
  // cheap "membership changed" signal.
  uint64_t epoch() const { return epoch_; }

  uint64_t heartbeats_sent() const { return heartbeats_sent_; }
  uint64_t heartbeats_dropped() const { return heartbeats_dropped_; }
  uint64_t suspicions() const { return suspicions_; }
  uint64_t false_suspicions() const { return false_suspicions_; }
  uint64_t deaths() const { return deaths_; }
  uint64_t rejoins() const { return rejoins_; }
  // Down -> declared-dead lag per true death (the detector's latency).
  const Histogram& detection_ms() const { return detection_ms_; }

 private:
  struct NodeState {
    State state = State::kAlive;
    bool up = true;
    SimTime last_beat;
    SimTime down_since;
    // Down-transition count at suspicion time: if unchanged when the node
    // recovers, the node never died and the suspicion was the network's
    // fault — a false suspicion.
    uint64_t downs = 0;
    uint64_t downs_at_suspicion = 0;
    bool was_up_at_suspicion = false;
    uint32_t join_streak = 0;
  };

  void Tick();
  void Deliver(uint32_t node, SimTime now);
  void Evaluate(uint32_t node, SimTime now);
  void Announce(uint32_t node, State from, State to, SimTime when);

  MembershipConfig config_;
  EventScheduler* clock_;
  Rng rng_;
  std::vector<NodeState> nodes_;
  Listener listener_;
  std::function<double(SimTime, uint32_t)> loss_;
  EventId tick_event_ = kInvalidEventId;
  bool running_ = false;
  uint64_t epoch_ = 0;

  uint64_t heartbeats_sent_ = 0;
  uint64_t heartbeats_dropped_ = 0;
  uint64_t suspicions_ = 0;
  uint64_t false_suspicions_ = 0;
  uint64_t deaths_ = 0;
  uint64_t rejoins_ = 0;
  Histogram detection_ms_;

  obs::Counter* heartbeats_counter_ = nullptr;
  obs::Counter* dropped_counter_ = nullptr;
  obs::Counter* suspicions_counter_ = nullptr;
  obs::Counter* false_suspicions_counter_ = nullptr;
  obs::Counter* deaths_counter_ = nullptr;
  obs::Counter* rejoins_counter_ = nullptr;
  obs::Gauge* epoch_gauge_ = nullptr;
};

}  // namespace trenv

#endif  // TRENV_POOLCTL_MEMBERSHIP_H_
