#include "src/density/footprint.h"

#include "src/criu/restore_engine.h"

namespace trenv {

SandboxFootprint FootprintModel::Of(const FunctionInstance& instance) {
  SandboxFootprint fp;
  fp.private_bytes = instance.ResidentLocalPages() * kPageSize;
  uint64_t runs = 0;
  uint64_t vmas = 0;
  for (const auto& process : instance.processes()) {
    const MmStruct& mm = process->mm();
    runs += mm.page_table().run_count();
    vmas += mm.vma_count();
    fp.shared_pool_pages += mm.RemoteMappedPages();
  }
  fp.metadata_bytes = kSandboxMetadataBytes + runs * kBytesPerPtRun + vmas * kBytesPerVma;
  return fp;
}

}  // namespace trenv
