// Warm-sandbox density tiers: where an *idle* environment's private state
// lives while it sits in the keep-alive pool. This is orthogonal to where
// the template (shared, read-only) pages live — those stay in the dedup'd
// CXL/RDMA pool permanently. Tiering only moves the per-instance dirty
// pages that local DRAM would otherwise hold for the whole idle period,
// which is exactly the memory the soft cap fights over.
#ifndef TRENV_DENSITY_TIER_H_
#define TRENV_DENSITY_TIER_H_

#include <cstdint>
#include <string_view>

namespace trenv {

enum class DensityTier : uint8_t {
  kDramHot = 0,  // dirty pages resident in node DRAM (zero-cost reuse)
  kCxlWarm = 1,  // dirty pages parked on the CXL pool (bandwidth-bound fetch)
  kNasCold = 2,  // dirty pages spilled to NAS (block-I/O fetch)
};

inline constexpr size_t kDensityTierCount = 3;

inline std::string_view DensityTierName(DensityTier tier) {
  switch (tier) {
    case DensityTier::kDramHot:
      return "dram_hot";
    case DensityTier::kCxlWarm:
      return "cxl_warm";
    case DensityTier::kNasCold:
      return "nas_cold";
  }
  return "unknown";
}

}  // namespace trenv

#endif  // TRENV_DENSITY_TIER_H_
