// Honest per-warm-sandbox footprint accounting (the Nanvix lesson: density
// claims are only as good as the bytes they count). A parked environment
// costs the node three distinct things:
//
//   private_bytes   - dirty/private pages resident in local DRAM (CoW'd
//                     writes, grown heap, VM guest overhead). Paid once per
//                     instance; this is what tier demotion moves off-node.
//   metadata_bytes  - kernel-side bookkeeping that never leaves DRAM: page-
//                     table runs, VMA records, and the fixed sandbox cost
//                     (netns, cgroup, task structs). The floor an idle
//                     environment can ever shrink to.
//   shared_pool_pages - template pages the instance maps out of the dedup'd
//                     pool. Deliberately NOT part of NodeBytes(): those pages
//                     are stored once per rack (SnapshotDedupStore) and
//                     attributing them to every instance would double-count
//                     them K times for K warm instances. Aggregate shared
//                     cost is the dedup store's stored_unique_pages, once.
#ifndef TRENV_DENSITY_FOOTPRINT_H_
#define TRENV_DENSITY_FOOTPRINT_H_

#include <cstdint>

namespace trenv {

class FunctionInstance;

struct SandboxFootprint {
  uint64_t private_bytes = 0;
  uint64_t metadata_bytes = 0;
  uint64_t shared_pool_pages = 0;

  // What this instance costs the node while parked DRAM-hot. Shared pool
  // pages are excluded by design (counted once globally, see header note).
  uint64_t NodeBytes() const { return private_bytes + metadata_bytes; }
};

class FootprintModel {
 public:
  // Metadata cost constants, sized after the kernel structures they stand
  // for: one PTE run ~ a vm_area-ish span descriptor, one VMA record ~
  // sizeof(vm_area_struct), plus the fixed per-sandbox kernel state the
  // paper's Table 1 components imply (netns + cgroup + task + mounts).
  static constexpr uint64_t kBytesPerPtRun = 64;
  static constexpr uint64_t kBytesPerVma = 200;
  static constexpr uint64_t kSandboxMetadataBytes = 24 * 1024;

  static SandboxFootprint Of(const FunctionInstance& instance);
};

}  // namespace trenv

#endif  // TRENV_DENSITY_FOOTPRINT_H_
