#include "src/density/density_manager.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/common/cost_model.h"
#include "src/common/log.h"
#include "src/criu/restore_engine.h"
#include "src/density/footprint.h"

namespace trenv {

DensityManager::DensityManager(const DensityConfig& config, KeepAlivePool* keep_alive,
                               FrameAllocator* frames, EventScheduler* scheduler,
                               const BackendRegistry* backends, obs::Registry* stats)
    : enabled_(config.enabled),
      config_(config),
      keep_alive_(keep_alive),
      frames_(frames),
      scheduler_(scheduler) {
  if (!enabled_) {
    return;
  }
  warm_ = backends != nullptr ? backends->Get(config_.warm_pool) : nullptr;
  cold_ = backends != nullptr ? backends->Get(config_.cold_pool) : nullptr;
  if (warm_ == nullptr) {
    TRENV_WARN << "density: warm pool backend missing; tiering disabled";
    enabled_ = false;
    return;
  }
  if (stats != nullptr) {
    demotions_counter_ = stats->GetCounter("density.demotions");
    promotions_counter_ = stats->GetCounter("density.promotions");
    demoted_pages_counter_ = stats->GetCounter("density.demoted_pages");
    promoted_pages_counter_ = stats->GetCounter("density.promoted_pages");
    pressure_storms_counter_ = stats->GetCounter("density.pressure_storms");
    surplus_evictions_counter_ = stats->GetCounter("density.surplus_evictions");
    for (size_t i = 0; i < kDensityTierCount; ++i) {
      const std::string tier(DensityTierName(static_cast<DensityTier>(i)));
      tier_count_gauges_[i] = stats->GetGauge("density.tier." + tier + ".count");
      tier_bytes_gauges_[i] = stats->GetGauge("density.tier." + tier + ".bytes");
    }
  }
}

MemoryBackend* DensityManager::BackendForSwap(PoolKind kind) const {
  if (warm_ != nullptr && warm_->kind() == kind) {
    return warm_;
  }
  if (cold_ != nullptr && cold_->kind() == kind) {
    return cold_;
  }
  return nullptr;
}

void DensityManager::OnArrival(FunctionId fn, SimTime now) {
  if (fn == kInvalidFunctionId) {
    return;
  }
  if (traffic_.size() <= fn) {
    traffic_.resize(fn + 1);
  }
  Traffic& t = traffic_[fn];
  const double half = config_.traffic_half_life.seconds();
  t.score = t.score * std::exp2(-(now - t.last).seconds() / half) + 1.0;
  t.last = now;
}

double DensityManager::TrafficScore(FunctionId fn, SimTime now) const {
  if (fn >= traffic_.size() || traffic_[fn].score == 0.0) {
    return 0.0;
  }
  const Traffic& t = traffic_[fn];
  return t.score * std::exp2(-(now - t.last).seconds() / config_.traffic_half_life.seconds());
}

void DensityManager::OnPark(FunctionInstance& instance) {
  // Fresh from execution: dirty pages are frame-resident, so the instance
  // re-enters the ladder at the top.
  instance.density_tier = DensityTier::kDramHot;
  instance.footprint_bytes = FootprintModel::Of(instance).NodeBytes();
  ArmSweep();
}

SimDuration DensityManager::OnTake(FunctionInstance& instance) {
  SimDuration latency;
  if (instance.density_tier != DensityTier::kDramHot) {
    const uint64_t pages = instance.swapped_out_pages;
    if (pages > 0) {
      MemoryBackend* src = BackendForSwap(instance.swap_pool);
      // TrEnv-style lazy attach: block only on re-mapping the swap block's
      // page-table runs; the pages stream back on demand while the
      // invocation runs, billed to it via pending_demand_fetch.
      const double metadata_bytes =
          static_cast<double>(pages) * cost::kMmtMetadataBytesPerPage;
      latency = cost::kMmtIoctl +
                SimDuration::FromSecondsF(metadata_bytes / cost::kMmtAttachCopyBytesPerSec);
      const SimDuration fetch = src->FetchLatency(pages);
      auto frames = frames_->AllocatePages(pages);
      while (!frames.ok() && keep_alive_->EvictLru()) {
        frames = frames_->AllocatePages(pages);
      }
      if (!frames.ok()) {
        // Physical DRAM exhausted with nothing evictable left — the soft cap
        // is sized well under physical capacity, so this is a config error.
        TRENV_WARN << "density: promote could not re-charge " << pages << " frames";
      }
      (void)src->FreePages(instance.swap_base, pages);
      instance.swapped_out_pages = 0;
      instance.swap_base = 0;
      instance.swap_pool = PoolKind::kLocalDram;
      instance.pending_demand_fetch = fetch;
      promote_ms_.RecordDuration(fetch);
      promoted_pages_counter_->Add(static_cast<double>(pages));
    } else {
      promote_ms_.Record(0.0);
    }
    ++promotions_;
    promotions_counter_->Add(1);
    instance.density_tier = DensityTier::kDramHot;
  }
  attach_ms_.RecordDuration(latency);
  return latency;
}

void DensityManager::OnRetire(FunctionInstance& instance) {
  if (instance.swapped_out_pages == 0) {
    return;
  }
  MemoryBackend* src = BackendForSwap(instance.swap_pool);
  if (src != nullptr) {
    (void)src->FreePages(instance.swap_base, instance.swapped_out_pages);
  }
  instance.swap_base = 0;
  // swapped_out_pages stays set: ResidentLocalPages() must keep excluding
  // the swapped pages so the engine's Retire frees only frames still held.
}

void DensityManager::OnCrash() {
  // Pool contents are about to be dropped without orderly teardown; the swap
  // blocks live in the (surviving) shared pools and must not leak.
  keep_alive_->ForEachLru([&](uint32_t, FunctionInstance& instance) {
    if (instance.swapped_out_pages > 0) {
      MemoryBackend* src = BackendForSwap(instance.swap_pool);
      if (src != nullptr) {
        (void)src->FreePages(instance.swap_base, instance.swapped_out_pages);
      }
      instance.swap_base = 0;
    }
  });
  // The pending sweep event dies with the scheduler's queue.
  sweep_armed_ = false;
}

bool DensityManager::Demote(FunctionInstance& instance, DensityTier to) {
  MemoryBackend* dst = to == DensityTier::kCxlWarm ? warm_ : cold_;
  if (dst == nullptr) {
    return false;
  }
  if (instance.density_tier == DensityTier::kDramHot) {
    const uint64_t pages = instance.ResidentLocalPages();
    if (pages > 0) {
      auto base = dst->AllocatePages(pages);
      if (!base.ok() && to == DensityTier::kCxlWarm) {
        // Warm tier full. A freshly demoted env is the likeliest in the
        // whole pool to be re-attached, so it must land on the fast tier:
        // cascade the warm tier's coldest entries down to NAS to make room,
        // and only land on NAS directly when the cascade cannot.
        if (EvacuateWarm(pages)) {
          base = dst->AllocatePages(pages);
        }
        if (!base.ok() && cold_ != nullptr) {
          dst = cold_;
          to = DensityTier::kNasCold;
          base = dst->AllocatePages(pages);
        }
      }
      if (!base.ok()) {
        return false;  // every reachable tier full; the instance stays put
      }
      frames_->FreePages(pages);
      instance.swap_pool = dst->kind();
      instance.swap_base = *base;
      instance.swapped_out_pages = pages;
      // Background copy cost (off any attach path) at the tier's real rate.
      demote_ms_.RecordDuration(dst->FetchLatency(pages));
      demoted_pages_counter_->Add(static_cast<double>(pages));
    } else {
      demote_ms_.Record(0.0);
    }
  } else {
    // CXL-warm -> NAS-cold: move the existing swap block one rung down.
    const uint64_t pages = instance.swapped_out_pages;
    if (pages > 0) {
      MemoryBackend* src = BackendForSwap(instance.swap_pool);
      auto base = dst->AllocatePages(pages);
      if (!base.ok()) {
        return false;
      }
      if (src != nullptr) {
        (void)src->FreePages(instance.swap_base, pages);
      }
      instance.swap_pool = dst->kind();
      instance.swap_base = *base;
      demote_ms_.RecordDuration(dst->FetchLatency(pages));
      demoted_pages_counter_->Add(static_cast<double>(pages));
    } else {
      demote_ms_.Record(0.0);
    }
  }
  instance.density_tier = to;
  ++demotions_;
  demotions_counter_->Add(1);
  return true;
}

bool DensityManager::EvacuateWarm(uint64_t pages) {
  if (cold_ == nullptr) {
    return false;
  }
  const uint64_t need = pages * kPageSize;
  while (warm_->capacity_bytes() - warm_->used_bytes() < need) {
    const uint32_t slot = keep_alive_->TierLruHead(DensityTier::kCxlWarm);
    if (slot == KeepAlivePool::kNoSlot) {
      return false;  // nothing left to cascade (templates fill the rest)
    }
    FunctionInstance& victim = keep_alive_->InstanceAt(slot);
    if (!Demote(victim, DensityTier::kNasCold)) {
      return false;  // NAS full as well
    }
    victim.footprint_bytes = FootprintModel::Of(victim).NodeBytes();
    // Retier relinks the victim onto the NAS list, advancing the warm head.
    keep_alive_->Retier(slot, DensityTier::kNasCold, victim.footprint_bytes);
  }
  return true;
}

uint64_t DensityManager::RelievePressure(uint64_t target_bytes) {
  if (!enabled_ || frames_->used_bytes() <= target_bytes) {
    return 0;
  }
  struct Cand {
    uint32_t slot;
    FunctionInstance* instance;
  };
  std::vector<Cand> cands;
  keep_alive_->ForEachTierLru(
      DensityTier::kDramHot,
      [&](uint32_t slot, FunctionInstance& instance) { cands.push_back({slot, &instance}); });
  const uint64_t before = frames_->used_bytes();
  for (const Cand& c : cands) {
    if (frames_->used_bytes() <= target_bytes) {
      break;
    }
    if (Demote(*c.instance, DensityTier::kCxlWarm)) {
      // The dirty pages now live in a pool tier, not node DRAM: the parked
      // entry's node bill shrinks to page-table/VMA metadata.
      c.instance->footprint_bytes = FootprintModel::Of(*c.instance).NodeBytes();
      keep_alive_->Retier(c.slot, c.instance->density_tier, c.instance->footprint_bytes);
    }
  }
  UpdateGauges(scheduler_->now());
  return before - frames_->used_bytes();
}

void DensityManager::NotePressureStorm() {
  if (pressure_storms_counter_ != nullptr) {
    pressure_storms_counter_->Add(1);
  }
}

void DensityManager::ArmSweep() {
  if (sweep_armed_) {
    return;
  }
  sweep_armed_ = true;
  scheduler_->ScheduleAfter(config_.sweep_interval, [this] { SweepNow(); });
}

void DensityManager::SweepNow() {
  sweep_armed_ = false;
  const SimTime now = scheduler_->now();
  struct Cand {
    uint32_t slot;
    FunctionInstance* instance;
    DensityTier to;
  };
  std::vector<Cand> cands;
  // True while some parked instance could still move down a rung later: the
  // sweep re-arms only then, so an all-cold (or empty) pool lets the event
  // chain die and RunUntilIdle terminate.
  bool pending = false;
  keep_alive_->ForEachLru([&](uint32_t slot, FunctionInstance& instance) {
    DensityTier to;
    SimDuration threshold;
    if (instance.density_tier == DensityTier::kDramHot) {
      to = DensityTier::kCxlWarm;
      threshold = config_.demote_hot_after;
    } else if (instance.density_tier == DensityTier::kCxlWarm && cold_ != nullptr) {
      to = DensityTier::kNasCold;
      threshold = config_.demote_warm_after;
    } else {
      return;  // already at the coldest reachable rung
    }
    if (now - instance.last_used >= threshold &&
        TrafficScore(instance.function_id(), now) < config_.hot_traffic_floor) {
      cands.push_back({slot, &instance, to});
    } else {
      pending = true;  // too young or too trafficked — revisit next sweep
    }
  });
  for (const Cand& c : cands) {
    if (Demote(*c.instance, c.to)) {
      c.instance->footprint_bytes = FootprintModel::Of(*c.instance).NodeBytes();
      keep_alive_->Retier(c.slot, c.instance->density_tier, c.instance->footprint_bytes);
      if (c.instance->density_tier == DensityTier::kCxlWarm && cold_ != nullptr) {
        pending = true;  // one more rung below
      }
    } else {
      pending = true;  // destination tier full — retry next sweep
    }
  }
  EnforceSurplusCap(now);
  if (config_.surplus_per_function >= 0 && keep_alive_->size() > 0) {
    // The cap re-binds as the traffic score decays, so keep sweeping while
    // anything is parked; the chain ends when TTL expiry drains the pool.
    pending = true;
  }
  UpdateGauges(now);
  if (pending) {
    ArmSweep();
  }
}

void DensityManager::EnforceSurplusCap(SimTime now) {
  if (config_.surplus_per_function < 0) {
    return;
  }
  std::vector<FunctionId> fns;
  keep_alive_->ForEachLru(
      [&](uint32_t, FunctionInstance& instance) { fns.push_back(instance.function_id()); });
  std::sort(fns.begin(), fns.end());
  fns.erase(std::unique(fns.begin(), fns.end()), fns.end());
  for (const FunctionId fn : fns) {
    // Recent demand rounded up, plus the configured spares. A function with
    // zero live traffic keeps at most the spares.
    const size_t allowed = static_cast<size_t>(std::ceil(TrafficScore(fn, now))) +
                           static_cast<size_t>(config_.surplus_per_function);
    while (keep_alive_->CountFor(fn) > allowed && keep_alive_->EvictFnLru(fn)) {
      ++surplus_evictions_;
      if (surplus_evictions_counter_ != nullptr) {
        surplus_evictions_counter_->Add(1);
      }
    }
  }
}

void DensityManager::UpdateGauges(SimTime now) {
  for (size_t i = 0; i < kDensityTierCount; ++i) {
    const DensityTier tier = static_cast<DensityTier>(i);
    const double count = static_cast<double>(keep_alive_->CountInTier(tier));
    timeline_[i].Set(now, count);
    if (tier_count_gauges_[i] != nullptr) {
      tier_count_gauges_[i]->Set(count);
      tier_bytes_gauges_[i]->Set(static_cast<double>(keep_alive_->FootprintInTier(tier)));
    }
  }
}

}  // namespace trenv
