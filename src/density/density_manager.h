// DensityManager: the high-density keep-alive story (ROADMAP item 3). A
// node's soft memory cap used to be a binary admission rule — over the cap,
// evict warm instances until under it. That caps warm density at
// cap / mean-instance-RSS and throws the environment away exactly when the
// paper says it is cheapest to keep (the sandbox and template attach
// survive; only the dirty pages are per-instance).
//
// Instead, idle environments now migrate down a tier ladder
//
//   DRAM-hot  --(idle > demote_hot_after)-->  CXL-warm
//   CXL-warm  --(idle > demote_warm_after)--> NAS-cold
//
// on a background sweep clocked by the platform's EventScheduler, guided by
// age and a per-function traffic EWMA (recently-trafficked functions stay
// hot; the Nexus lesson is that density must not trade away the latency
// SLO). Demotion moves the instance's dirty private pages into the pool
// backend of the target tier and releases the node DRAM frames; the page
// tables are untouched, so promotion is a frame re-charge plus the tier's
// real fetch latency (CXL bandwidth or NAS block I/O) on the attach path.
//
// Pressure handling composes with this: the soft cap (and injected pool-
// pressure windows that squeeze it) first triggers a demotion storm — idle
// DRAM-hot instances demote LRU-first, freeing frames while keeping the
// environments warm — and only evicts once there is nothing left to demote
// and the pool-wide footprint exceeds the configured overcommit ceiling.
//
// Everything here is off by default (DensityConfig::enabled == false): the
// platform then never calls into the manager from a hot path, keeping every
// existing bench bit-identical.
#ifndef TRENV_DENSITY_DENSITY_MANAGER_H_
#define TRENV_DENSITY_DENSITY_MANAGER_H_

#include <cstdint>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/interner.h"
#include "src/common/time.h"
#include "src/density/tier.h"
#include "src/mempool/backend.h"
#include "src/obs/registry.h"
#include "src/platform/keep_alive_pool.h"
#include "src/sim/event_scheduler.h"
#include "src/simkernel/frame_allocator.h"

namespace trenv {

struct DensityConfig {
  // Master switch. When false the platform takes its historical code paths
  // and the manager is never consulted.
  bool enabled = false;
  // Pool tiers backing the CXL-warm / NAS-cold rungs. Resolved against the
  // platform's BackendRegistry at construction; a missing cold pool simply
  // disables the bottom rung.
  PoolKind warm_pool = PoolKind::kCxl;
  PoolKind cold_pool = PoolKind::kNas;
  // Background migration cadence and the idle-age thresholds per rung.
  SimDuration sweep_interval = SimDuration::Seconds(10);
  SimDuration demote_hot_after = SimDuration::Seconds(30);
  SimDuration demote_warm_after = SimDuration::Minutes(3);
  // Per-function traffic signal: an exponentially-decayed arrival score with
  // this half-life. Functions whose score exceeds hot_traffic_floor keep
  // their instances DRAM-hot regardless of age (they will be re-taken soon;
  // demoting them would just buy a promotion fetch).
  SimDuration traffic_half_life = SimDuration::Seconds(30);
  double hot_traffic_floor = 4.0;
  // Overcommit: total parked footprint (FootprintModel::NodeBytes, summed
  // across ALL tiers) may reach overcommit_factor x the effective soft cap
  // before eviction starts. This is what replaces the binary cap: demoted
  // instances cost the node only metadata, so the pool can hold far more
  // warm state than the DRAM budget, but not unboundedly.
  double overcommit_factor = 16.0;
  // Per-function surplus cap (ROADMAP item 3 follow-up): a function may keep
  // at most ceil(traffic score) + surplus_per_function instances parked —
  // its recent demand plus this many spares. The sweep trims extras
  // LRU-first (full eviction, not demotion: surplus beyond demand is dead
  // weight on every tier). Negative (default) disables the cap.
  int32_t surplus_per_function = -1;
};

class DensityManager {
 public:
  DensityManager(const DensityConfig& config, KeepAlivePool* keep_alive,
                 FrameAllocator* frames, EventScheduler* scheduler,
                 const BackendRegistry* backends, obs::Registry* stats);
  DensityManager(const DensityManager&) = delete;
  DensityManager& operator=(const DensityManager&) = delete;

  bool enabled() const { return enabled_; }

  // --- Platform hooks (only called when enabled) ---------------------------

  // Arrival of an invocation for `fn`: feeds the traffic EWMA.
  void OnArrival(FunctionId fn, SimTime now);

  // An instance is about to be parked: stamp its footprint and reset it to
  // the DRAM-hot tier (its dirty pages are resident right after execution).
  // Must run before KeepAlivePool::Put so the pool's per-tier aggregates see
  // the fresh values. Also arms the background sweep.
  void OnPark(FunctionInstance& instance);

  // A parked instance was taken for reuse: promote it back to DRAM-hot,
  // paying the source tier's real fetch cost. Returns the attach latency the
  // invocation must wait (zero for DRAM-hot instances). Every warm take is
  // recorded in attach_ms() — the histogram the peak-density SLO gates on.
  SimDuration OnTake(FunctionInstance& instance);

  // A parked instance is being retired/evicted: release its swap block.
  // Leaves swapped_out_pages set so the engine's Retire frees only the
  // frames the instance still holds.
  void OnRetire(FunctionInstance& instance);

  // Node crash: walk the pool (before KeepAlivePool::Drop) and release every
  // swap block; pool contents are about to be discarded without teardown.
  void OnCrash();

  // Demotion storm: demote idle DRAM-hot instances LRU-first until node
  // frame usage drops to `target_bytes` or no candidates remain. Returns
  // bytes freed. Called from the platform's cap enforcement and from
  // injected pool-pressure windows.
  uint64_t RelievePressure(uint64_t target_bytes);

  // Pool-wide parked-footprint ceiling for the given effective cap.
  uint64_t OvercommitCeiling(uint64_t cap_bytes) const {
    return static_cast<uint64_t>(static_cast<double>(cap_bytes) * config_.overcommit_factor);
  }

  void NotePressureStorm();

  // --- Introspection --------------------------------------------------------

  const Histogram& attach_ms() const { return attach_ms_; }
  const Histogram& promote_ms() const { return promote_ms_; }
  const Histogram& demote_ms() const { return demote_ms_; }
  // Parked-instance count over virtual time for the given tier (peak +
  // timeline; sampled at every sweep and pressure storm).
  const TimeSeriesGauge& tier_timeline(DensityTier tier) const {
    return timeline_[static_cast<size_t>(tier)];
  }
  uint64_t demotions() const { return demotions_; }
  uint64_t promotions() const { return promotions_; }
  uint64_t surplus_evictions() const { return surplus_evictions_; }

 private:
  struct Traffic {
    double score = 0;
    SimTime last;
  };

  // Decayed traffic score of `fn` at `now` (read-only).
  double TrafficScore(FunctionId fn, SimTime now) const;

  // Moves `instance`'s dirty pages one rung down. Returns false if the
  // target backend is missing or full (the instance stays where it is).
  bool Demote(FunctionInstance& instance, DensityTier to);

  MemoryBackend* BackendForSwap(PoolKind kind) const;
  // Demotes the warm tier's coldest entries to NAS until `pages` fit in the
  // warm pool; false when the cascade cannot free enough.
  bool EvacuateWarm(uint64_t pages);

  void ArmSweep();
  void SweepNow();
  // Trims each function's parked population to its surplus allowance
  // (no-op with the cap disabled).
  void EnforceSurplusCap(SimTime now);
  void UpdateGauges(SimTime now);

  bool enabled_ = false;
  DensityConfig config_;
  KeepAlivePool* keep_alive_;
  FrameAllocator* frames_;
  EventScheduler* scheduler_;
  MemoryBackend* warm_ = nullptr;
  MemoryBackend* cold_ = nullptr;

  std::vector<Traffic> traffic_;  // indexed by FunctionId; may be sparse
  bool sweep_armed_ = false;

  Histogram attach_ms_;
  Histogram promote_ms_;
  Histogram demote_ms_;
  TimeSeriesGauge timeline_[kDensityTierCount];
  uint64_t demotions_ = 0;
  uint64_t promotions_ = 0;
  uint64_t surplus_evictions_ = 0;

  // Registry instruments (owned by the platform's registry; null when the
  // manager is disabled).
  obs::Counter* demotions_counter_ = nullptr;
  obs::Counter* promotions_counter_ = nullptr;
  obs::Counter* demoted_pages_counter_ = nullptr;
  obs::Counter* promoted_pages_counter_ = nullptr;
  obs::Counter* pressure_storms_counter_ = nullptr;
  obs::Counter* surplus_evictions_counter_ = nullptr;
  obs::Gauge* tier_count_gauges_[kDensityTierCount] = {};
  obs::Gauge* tier_bytes_gauges_[kDensityTierCount] = {};
};

}  // namespace trenv

#endif  // TRENV_DENSITY_DENSITY_MANAGER_H_
