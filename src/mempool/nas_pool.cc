#include "src/mempool/nas_pool.h"

// Header-only implementation; this TU anchors the vtable.
