// RDMA memory pool: message-queue access model. Not byte-addressable, so
// mm-templates install *invalid* PTEs and every first touch takes a major
// fault that fetches a 4 KiB page (paper section 5.1).
//
// The pool models the paper's section-9.5 observations: latency is fine at
// low load but exhibits a pronounced tail under concurrent streams (NIC cache
// pressure, switch contention), and each fetch burns host CPU.
#ifndef TRENV_MEMPOOL_RDMA_POOL_H_
#define TRENV_MEMPOOL_RDMA_POOL_H_

#include <cstdint>

#include "src/common/cost_model.h"
#include "src/common/rng.h"
#include "src/mempool/backend.h"

namespace trenv {

class RdmaPool : public MemoryBackend {
 public:
  explicit RdmaPool(uint64_t capacity_bytes, uint64_t seed = 0x7d3a)
      : MemoryBackend(capacity_bytes), rng_(seed) {}

  PoolKind kind() const override { return PoolKind::kRdma; }
  std::string_view name() const override { return "rdma"; }
  bool byte_addressable() const override { return false; }

  SimDuration DirectLoadLatency() const override {
    // Direct loads are impossible; callers must fault. Returning the fetch
    // base keeps misuse visible in traces rather than silently free.
    return cost::kRdmaPageFetchBase;
  }
  SimDuration FetchCpuPerPage() const override { return cost::kRdmaPerFetchCpu; }

  void BeginStream() override { ++active_streams_; }
  void EndStream() override {
    if (active_streams_ > 0) {
      --active_streams_;
    }
  }
  uint32_t active_streams() const override { return active_streams_; }

  // Current contention multiplier (exposed for tests/benches).
  double LoadFactor() const;

 protected:
  SimDuration ComputeFetchLatency(uint64_t npages) override;
  // Scatter-gather bulk reads (working-set prefetch): the descriptor list is
  // posted up front, so transfers pipeline at near line rate instead of the
  // fault-driven readahead factor.
  SimDuration ComputeBulkFetchLatency(uint64_t nruns, uint64_t npages) override;

 private:
  Rng rng_;
  uint32_t active_streams_ = 0;
};

}  // namespace trenv

#endif  // TRENV_MEMPOOL_RDMA_POOL_H_
