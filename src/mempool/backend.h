// MemoryBackend: the abstract interface every disaggregated-memory tier
// implements (paper section 5.1: "mm-template supports various memory pool
// backends including CXL and RDMA").
//
// A backend owns a page-granular address space, remembers the logical content
// stored in it, and models the latency of reaching it — both the fault-path
// fetch (RDMA/NAS) and the direct byte-addressable load (CXL).
#ifndef TRENV_MEMPOOL_BACKEND_H_
#define TRENV_MEMPOOL_BACKEND_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/common/time.h"
#include "src/mempool/block_allocator.h"
#include "src/obs/registry.h"
#include "src/simkernel/types.h"

namespace trenv {

class FaultInjector;

// Remembers logical page contents stored into a pool, run-compressed the same
// way the page table is (content of page base+i is content_base+i). Backed by
// a sorted vector of runs: reads are a hinted binary search, writes and
// erases splice the affected window in one pass, so the chunk-churn the
// keep-alive pool drives performs no per-run node allocations. Semantics are
// bit-identical to the original std::map store (runs are never merged;
// pinned by tests/flat_store_equivalence_test.cc).
class ContentMap {
 public:
  void Write(PoolOffset page, uint64_t npages, PageContent content_base);
  Result<PageContent> Read(PoolOffset page) const;
  void Erase(PoolOffset page, uint64_t npages);
  uint64_t stored_pages() const;
  uint64_t run_count() const { return runs_.size(); }
  // Invokes fn(base, npages, content_base) for every run in offset order
  // (diagnostics and the store-equivalence test).
  template <typename Fn>
  void ForEachRun(Fn&& fn) const {
    for (const Run& run : runs_) {
      fn(run.base, run.npages, run.content_base);
    }
  }

 private:
  struct Run {
    PoolOffset base;
    uint64_t npages;
    PageContent content_base;
  };
  // Index of the first run whose end lies past `page`; runs_.size() if none.
  size_t FirstOverlapping(PoolOffset page) const;
  // Replaces runs_[lo, hi) with repl[0, count).
  void SpliceWindow(size_t lo, size_t hi, const Run* repl, size_t count);

  // Runs sorted by base, pairwise disjoint.
  std::vector<Run> runs_;
  // Search-start memo, not semantics: a stale or torn hint only costs a
  // binary search. Relaxed-atomic because const reads on the SHARED pool's
  // content map run concurrently from per-shard drains in a sharded cluster
  // run (writes stay coordinator-serial).
  mutable std::atomic<size_t> lookup_hint_{0};
};

class MemoryBackend {
 public:
  virtual ~MemoryBackend() = default;

  virtual PoolKind kind() const = 0;
  virtual std::string_view name() const = 0;
  // True if CPUs can issue loads directly against the pool (CXL).
  virtual bool byte_addressable() const = 0;

  uint64_t capacity_bytes() const { return allocator_.total_pages() * kPageSize; }
  uint64_t used_bytes() const { return allocator_.used_pages() * kPageSize; }
  uint64_t free_pages() const { return allocator_.free_pages(); }

  // Block management.
  [[nodiscard]] Result<PoolOffset> AllocatePages(uint64_t n) { return allocator_.Allocate(n); }
  [[nodiscard]] Status FreePages(PoolOffset base, uint64_t n);

  // Content store.
  [[nodiscard]] Status WriteContent(PoolOffset page, uint64_t npages, PageContent content_base);
  Result<PageContent> ReadContent(PoolOffset page) const { return content_.Read(page); }
  uint64_t stored_pages() const { return content_.stored_pages(); }

  // Fault-path fetch of n pages (RDMA read, NAS block I/O, or a memcpy out of
  // a byte-addressable pool). Includes fabric contention effects and, when a
  // FaultInjector is bound, injected flaps/stalls/corruption with retry +
  // capped exponential backoff charged in virtual time. Counts into the
  // stats registry bound with BindStats, if any.
  SimDuration FetchLatency(uint64_t npages);
  // Planned bulk fetch of `npages` spread over `nruns` page runs, issued as
  // one scatter-gather operation (working-set prefetch). The base round trip
  // is paid once and amortized across the whole batch — far cheaper than
  // `nruns` separate FetchLatency calls — with a per-run descriptor cost for
  // fragmentation. Runs through the same FaultInjector/RetryPolicy chaos
  // loop as FetchLatency and counts into the bound stats.
  SimDuration BulkFetchLatency(uint64_t nruns, uint64_t npages);
  // Binds "pool.<name>.fetch_ops" / "pool.<name>.fetch_pages" counters so
  // every fetch through this tier shows up in telemetry dumps.
  void BindStats(obs::Registry* stats);
  // Attaches the rack's fault injector; nullptr detaches. With no injector
  // (or an idle one) fetch latencies are bit-identical to the fault-free
  // model.
  void BindFaultInjector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }
  // Per-load latency for direct access; only meaningful if byte_addressable().
  virtual SimDuration DirectLoadLatency() const = 0;
  // DirectLoadLatency scaled by any active CXL port-degrade fault window.
  SimDuration EffectiveDirectLoadLatency() const;
  // CPU time the host burns per fetched page (e.g. RDMA completion handling);
  // zero for byte-addressable pools.
  virtual SimDuration FetchCpuPerPage() const { return SimDuration::Zero(); }

  // Load tracking: engines bracket an invocation's lazy-fetch window so the
  // pool can model contention (RDMA's P99 cliff under bursts).
  virtual void BeginStream() {}
  virtual void EndStream() {}
  virtual uint32_t active_streams() const { return 0; }

 protected:
  explicit MemoryBackend(uint64_t capacity_bytes)
      : allocator_(capacity_bytes / kPageSize) {}

  // The pool-specific latency model behind FetchLatency.
  virtual SimDuration ComputeFetchLatency(uint64_t npages) = 0;
  // The model behind BulkFetchLatency. The default charges the plain fetch
  // model plus one descriptor per extra run; pools with a real scatter-gather
  // fast path (RDMA) override it with an amortizing stream model.
  virtual SimDuration ComputeBulkFetchLatency(uint64_t nruns, uint64_t npages);

 private:
  // Shared chaos loop: `compute()` yields one attempt's transfer latency.
  template <typename ComputeFn>
  SimDuration FetchThroughFaults(uint64_t npages, ComputeFn&& compute);

  BlockAllocator allocator_;
  ContentMap content_;
  FaultInjector* injector_ = nullptr;
  obs::Counter* fetch_ops_ = nullptr;
  obs::Counter* fetch_pages_ = nullptr;
  obs::Counter* bulk_ops_ = nullptr;
  obs::Counter* bulk_runs_ = nullptr;
};

// Maps PoolKind -> backend for the fault handler. Does not own the backends.
class BackendRegistry {
 public:
  void Register(MemoryBackend* backend);
  MemoryBackend* Get(PoolKind kind) const;

 private:
  std::map<PoolKind, MemoryBackend*> backends_;
};

}  // namespace trenv

#endif  // TRENV_MEMPOOL_BACKEND_H_
