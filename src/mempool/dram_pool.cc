#include "src/mempool/dram_pool.h"

// Header-only implementation; this TU anchors the vtable.
