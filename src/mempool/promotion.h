// PromotionManager: the multi-layer hot/cold placement policy sketched in
// paper Fig 1 and section 9.5 — "a multi-layered architecture that
// strategically places hot pages in CXL and cold pages in RDMA integrates
// seamlessly with our approach". Tracks per-chunk access counts reported by
// the engines and migrates the hottest cold-tier chunks upward; templates
// referencing moved chunks are rewritten in place (all pool state is
// read-only, so migration is a copy + PTE rewrite, never a coherence
// problem).
#ifndef TRENV_MEMPOOL_PROMOTION_H_
#define TRENV_MEMPOOL_PROMOTION_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/status.h"
#include "src/mempool/tiered_pool.h"
#include "src/mmtemplate/registry.h"

namespace trenv {

class PromotionManager {
 public:
  struct Options {
    // Accesses a chunk must accumulate before it is promotion-eligible.
    uint64_t promote_threshold = 4;
    // Chunks moved per sweep (bounds the migration burst).
    size_t max_promotions_per_sweep = 16;
    // Multiplicative per-sweep heat decay in (0, 1]. 1.0 (default) keeps the
    // historical accumulate-forever counters; below 1.0 heat ages out, so a
    // chunk must keep earning its tier.
    double heat_decay = 1.0;
    // Live demotion: when the hottest tier holds more than this many tracked
    // pages, the coldest hot-tier chunks move back down at sweep time.
    // 0 (default) disables demotion entirely (historical behaviour).
    uint64_t hot_tier_budget_pages = 0;
    // A hot-tier chunk is demotion-eligible only while its decayed heat sits
    // below this (recently-hot chunks are never churned out).
    uint64_t demote_threshold = 2;
    // Chunks moved down per sweep (bounds the migration burst).
    size_t max_demotions_per_sweep = 16;
  };

  PromotionManager(TieredPool* pool, MmTemplateRegistry* templates, Options options);
  PromotionManager(TieredPool* pool, MmTemplateRegistry* templates)
      : PromotionManager(pool, templates, Options{}) {}

  // Records that `touches` accesses hit the chunk at `placement`.
  void RecordAccess(const PoolPlacement& placement, uint64_t touches);

  struct Move {
    PoolPlacement from;
    PoolPlacement to;
    SimDuration copy_latency;
    uint64_t templates_rewritten = 0;
  };

  // Decays heat, promotes up to max_promotions_per_sweep of the hottest
  // eligible chunks, then (with a hot-tier budget configured) demotes the
  // coldest hot-tier chunks until the tier fits its budget. Every registered
  // template that mapped a moved chunk is rewritten. Returns all moves
  // performed, promotions first (empty when nothing is eligible).
  std::vector<Move> Sweep();

  uint64_t promoted_chunks() const { return promoted_chunks_; }
  uint64_t demoted_chunks() const { return demoted_chunks_; }
  size_t tracked_chunks() const { return heat_.size(); }

 private:
  struct ChunkKey {
    PoolKind kind;
    PoolOffset base;
    uint64_t npages;
    auto operator<=>(const ChunkKey&) const = default;
  };

  // Moves one chunk and rewrites the templates that mapped it.
  bool ApplyMove(const ChunkKey& key, uint64_t heat, bool up, std::vector<Move>* moves);

  TieredPool* pool_;
  MmTemplateRegistry* templates_;
  Options options_;
  std::map<ChunkKey, uint64_t> heat_;
  uint64_t promoted_chunks_ = 0;
  uint64_t demoted_chunks_ = 0;
};

// Rewrites every PTE run in `table` whose backing lies inside the moved
// chunk so it points at the new placement (flags updated to the new tier's
// access mode). Returns the number of pages rewritten.
uint64_t RemapBacking(PageTable& table, const PoolPlacement& from, const PoolPlacement& to,
                      bool to_byte_addressable);

}  // namespace trenv

#endif  // TRENV_MEMPOOL_PROMOTION_H_
