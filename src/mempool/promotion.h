// PromotionManager: the multi-layer hot/cold placement policy sketched in
// paper Fig 1 and section 9.5 — "a multi-layered architecture that
// strategically places hot pages in CXL and cold pages in RDMA integrates
// seamlessly with our approach". Tracks per-chunk access counts reported by
// the engines and migrates the hottest cold-tier chunks upward; templates
// referencing moved chunks are rewritten in place (all pool state is
// read-only, so migration is a copy + PTE rewrite, never a coherence
// problem).
#ifndef TRENV_MEMPOOL_PROMOTION_H_
#define TRENV_MEMPOOL_PROMOTION_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/status.h"
#include "src/mempool/tiered_pool.h"
#include "src/mmtemplate/registry.h"

namespace trenv {

class PromotionManager {
 public:
  struct Options {
    // Accesses a chunk must accumulate before it is promotion-eligible.
    uint64_t promote_threshold = 4;
    // Chunks moved per sweep (bounds the migration burst).
    size_t max_promotions_per_sweep = 16;
  };

  PromotionManager(TieredPool* pool, MmTemplateRegistry* templates, Options options);
  PromotionManager(TieredPool* pool, MmTemplateRegistry* templates)
      : PromotionManager(pool, templates, Options{}) {}

  // Records that `touches` accesses hit the chunk at `placement`.
  void RecordAccess(const PoolPlacement& placement, uint64_t touches);

  struct Move {
    PoolPlacement from;
    PoolPlacement to;
    SimDuration copy_latency;
    uint64_t templates_rewritten = 0;
  };

  // Promotes up to max_promotions_per_sweep of the hottest eligible chunks
  // and rewrites every registered template that mapped them. Returns the
  // moves performed (empty when nothing is eligible or the hot tier is full).
  std::vector<Move> Sweep();

  uint64_t promoted_chunks() const { return promoted_chunks_; }
  size_t tracked_chunks() const { return heat_.size(); }

 private:
  struct ChunkKey {
    PoolKind kind;
    PoolOffset base;
    uint64_t npages;
    auto operator<=>(const ChunkKey&) const = default;
  };

  TieredPool* pool_;
  MmTemplateRegistry* templates_;
  Options options_;
  std::map<ChunkKey, uint64_t> heat_;
  uint64_t promoted_chunks_ = 0;
};

// Rewrites every PTE run in `table` whose backing lies inside the moved
// chunk so it points at the new placement (flags updated to the new tier's
// access mode). Returns the number of pages rewritten.
uint64_t RemapBacking(PageTable& table, const PoolPlacement& from, const PoolPlacement& to,
                      bool to_byte_addressable);

}  // namespace trenv

#endif  // TRENV_MEMPOOL_PROMOTION_H_
