// CXL memory pool: a multi-headed Type-3 device shared by up to a rack of
// nodes (paper section 3.1). Byte-addressable: mm-templates install *valid*
// write-protected PTEs against it, so reads cost only the extra load latency
// and no software is involved until a CoW write.
#ifndef TRENV_MEMPOOL_CXL_POOL_H_
#define TRENV_MEMPOOL_CXL_POOL_H_

#include <cstdint>
#include <set>
#include <string>

#include "src/common/cost_model.h"
#include "src/common/status.h"
#include "src/mempool/backend.h"

namespace trenv {

class CxlPool : public MemoryBackend {
 public:
  // port_count: CXL 2.0 multi-headed devices expose a fixed number of host
  // ports (the commercial solution cited in the paper supports 12).
  explicit CxlPool(uint64_t capacity_bytes, uint32_t port_count = 12)
      : MemoryBackend(capacity_bytes), port_count_(port_count) {}

  PoolKind kind() const override { return PoolKind::kCxl; }
  std::string_view name() const override { return "cxl-mhd"; }
  bool byte_addressable() const override { return true; }

  // Attaches a host to one of the device ports.
  Status AttachNode(uint32_t node_id);
  Status DetachNode(uint32_t node_id);
  uint32_t attached_nodes() const { return static_cast<uint32_t>(attached_.size()); }
  uint32_t port_count() const { return port_count_; }

  SimDuration DirectLoadLatency() const override { return cost::kCxlLoadLatency; }

 protected:
  // Fault-path fetch (used when CoW copies a CXL page to local DRAM):
  // streaming copy at CXL link bandwidth.
  SimDuration ComputeFetchLatency(uint64_t npages) override {
    const double bytes = static_cast<double>(npages) * static_cast<double>(kPageSize);
    return SimDuration::FromSecondsF(bytes / cost::kCxlBandwidthBytesPerSec);
  }

 private:
  uint32_t port_count_;
  std::set<uint32_t> attached_;
};

}  // namespace trenv

#endif  // TRENV_MEMPOOL_CXL_POOL_H_
