#include "src/mempool/tiered_pool.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace trenv {

void TieredPool::AddTier(MemoryBackend* backend) {
  assert(backend != nullptr);
  tiers_.push_back(backend);
}

MemoryBackend* TieredPool::TierFor(PoolKind kind) const {
  for (MemoryBackend* tier : tiers_) {
    if (tier->kind() == kind) {
      return tier;
    }
  }
  return nullptr;
}

size_t TieredPool::TierIndex(PoolKind kind) const {
  for (size_t i = 0; i < tiers_.size(); ++i) {
    if (tiers_[i]->kind() == kind) {
      return i;
    }
  }
  return tiers_.size();
}

Result<PoolPlacement> TieredPool::AllocatePages(uint64_t n, double hotness) {
  if (tiers_.empty()) {
    return Status::FailedPrecondition("tiered pool has no tiers");
  }
  hotness = std::clamp(hotness, 0.0, 1.0);
  // Preferred tier: hotness 1 -> tier 0 (hottest); hotness 0 -> last tier.
  const auto preferred = static_cast<size_t>(
      std::floor((1.0 - hotness) * static_cast<double>(tiers_.size() - 1) + 0.5));
  // Try preferred, then colder tiers, then warmer ones as a last resort.
  std::vector<size_t> order;
  for (size_t i = preferred; i < tiers_.size(); ++i) {
    order.push_back(i);
  }
  for (size_t i = preferred; i-- > 0;) {
    order.push_back(i);
  }
  for (size_t i : order) {
    auto result = tiers_[i]->AllocatePages(n);
    if (result.ok()) {
      return PoolPlacement{tiers_[i]->kind(), result.value(), n};
    }
  }
  return Status::OutOfMemory("all tiers exhausted");
}

Status TieredPool::FreePages(const PoolPlacement& placement) {
  MemoryBackend* tier = TierFor(placement.kind);
  if (tier == nullptr) {
    return Status::NotFound("no tier of this kind");
  }
  return tier->FreePages(placement.base, placement.npages);
}

Result<TieredPool::PromotionResult> TieredPool::Promote(const PoolPlacement& placement) {
  const size_t idx = TierIndex(placement.kind);
  if (idx >= tiers_.size()) {
    return Status::NotFound("placement tier not registered");
  }
  if (idx == 0) {
    return Status::FailedPrecondition("already in the hottest tier");
  }
  MemoryBackend* src = tiers_[idx];
  MemoryBackend* dst = tiers_[idx - 1];
  TRENV_ASSIGN_OR_RETURN(PoolOffset new_base, dst->AllocatePages(placement.npages));
  // Copy content run-by-run. Content is run-compressed, so walk pages but
  // batch identical progressions (cheap: placements are single blocks).
  auto first = src->ReadContent(placement.base);
  if (first.ok()) {
    TRENV_RETURN_IF_ERROR(dst->WriteContent(new_base, placement.npages, first.value()));
  }
  const SimDuration latency = src->FetchLatency(placement.npages);
  Status freed = src->FreePages(placement.base, placement.npages);
  if (!freed.ok()) {
    return freed;
  }
  return PromotionResult{PoolPlacement{dst->kind(), new_base, placement.npages}, latency};
}

Result<TieredPool::PromotionResult> TieredPool::Demote(const PoolPlacement& placement) {
  const size_t idx = TierIndex(placement.kind);
  if (idx >= tiers_.size()) {
    return Status::NotFound("placement tier not registered");
  }
  if (idx + 1 == tiers_.size()) {
    return Status::FailedPrecondition("already in the coldest tier");
  }
  MemoryBackend* src = tiers_[idx];
  MemoryBackend* dst = tiers_[idx + 1];
  TRENV_ASSIGN_OR_RETURN(PoolOffset new_base, dst->AllocatePages(placement.npages));
  auto first = src->ReadContent(placement.base);
  if (first.ok()) {
    TRENV_RETURN_IF_ERROR(dst->WriteContent(new_base, placement.npages, first.value()));
  }
  const SimDuration latency = dst->FetchLatency(placement.npages);
  Status freed = src->FreePages(placement.base, placement.npages);
  if (!freed.ok()) {
    return freed;
  }
  return PromotionResult{PoolPlacement{dst->kind(), new_base, placement.npages}, latency};
}

}  // namespace trenv
