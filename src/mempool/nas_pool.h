// Network-attached-storage tier: the cold bottom layer of the multi-layer
// architecture sketched in Fig 1. Block I/O interface, ~60 us per 4 KiB.
#ifndef TRENV_MEMPOOL_NAS_POOL_H_
#define TRENV_MEMPOOL_NAS_POOL_H_

#include "src/common/cost_model.h"
#include "src/mempool/backend.h"

namespace trenv {

class NasPool : public MemoryBackend {
 public:
  explicit NasPool(uint64_t capacity_bytes) : MemoryBackend(capacity_bytes) {}

  PoolKind kind() const override { return PoolKind::kNas; }
  std::string_view name() const override { return "nas"; }
  bool byte_addressable() const override { return false; }

  SimDuration DirectLoadLatency() const override { return cost::kNasPageFetchBase; }

 protected:
  SimDuration ComputeFetchLatency(uint64_t npages) override {
    return SimDuration(cost::kNasPageFetchBase.nanos() * static_cast<int64_t>(npages));
  }
};

}  // namespace trenv

#endif  // TRENV_MEMPOOL_NAS_POOL_H_
