#include "src/mempool/promotion.h"

#include <algorithm>

namespace trenv {

PromotionManager::PromotionManager(TieredPool* pool, MmTemplateRegistry* templates,
                                   Options options)
    : pool_(pool), templates_(templates), options_(options) {}

void PromotionManager::RecordAccess(const PoolPlacement& placement, uint64_t touches) {
  if (touches == 0 || placement.npages == 0) {
    return;
  }
  // Only chunks below the hottest tier can be promoted.
  if (pool_->tier_count() == 0 || placement.kind == pool_->tier(0)->kind()) {
    return;
  }
  heat_[ChunkKey{placement.kind, placement.base, placement.npages}] += touches;
}

uint64_t RemapBacking(PageTable& table, const PoolPlacement& from, const PoolPlacement& to,
                      bool to_byte_addressable) {
  // Collect matching run slices first (the rewrite mutates the table).
  struct Slice {
    Vpn vpn;
    uint64_t npages;
    uint64_t chunk_offset;  // pages into the moved chunk
    PageContent content_base;
    bool constant_content;
  };
  std::vector<Slice> slices;
  table.ForEachRun([&](Vpn vpn, const PteRun& run) {
    if (!run.flags.remote() || run.flags.pool != from.kind ||
        run.backing_base == kNoBacking) {
      return;
    }
    const uint64_t run_lo = run.backing_base;
    const uint64_t run_hi = run.backing_base + run.npages;
    const uint64_t chunk_lo = from.base;
    const uint64_t chunk_hi = from.base + from.npages;
    const uint64_t lo = std::max(run_lo, chunk_lo);
    const uint64_t hi = std::min(run_hi, chunk_hi);
    if (lo >= hi) {
      return;
    }
    Slice slice;
    slice.vpn = vpn + (lo - run_lo);
    slice.npages = hi - lo;
    slice.chunk_offset = lo - chunk_lo;
    slice.content_base =
        run.constant_content ? run.content_base : run.content_base + (lo - run_lo);
    slice.constant_content = run.constant_content;
    slices.push_back(slice);
  });

  uint64_t rewritten = 0;
  for (const Slice& slice : slices) {
    PteFlags flags;
    flags.pool = to.kind;
    flags.valid = to_byte_addressable;  // CXL: pre-populated; RDMA/NAS: lazy
    flags.write_protected = true;
    table.MapRange(slice.vpn, slice.npages, flags, to.base + slice.chunk_offset,
                   slice.content_base, slice.constant_content);
    rewritten += slice.npages;
  }
  return rewritten;
}

std::vector<PromotionManager::Move> PromotionManager::Sweep() {
  std::vector<Move> moves;
  // Hottest-first candidates over the threshold.
  std::vector<std::pair<uint64_t, ChunkKey>> candidates;
  for (const auto& [key, heat] : heat_) {
    if (heat >= options_.promote_threshold) {
      candidates.emplace_back(heat, key);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  for (const auto& [heat, key] : candidates) {
    if (moves.size() >= options_.max_promotions_per_sweep) {
      break;
    }
    PoolPlacement placement{key.kind, key.base, key.npages};
    auto promoted = pool_->Promote(placement);
    if (!promoted.ok()) {
      continue;  // hot tier full or tier missing: leave the chunk where it is
    }
    Move move;
    move.from = placement;
    move.to = promoted->placement;
    move.copy_latency = promoted->copy_latency;
    // Rewrite every template that mapped the old chunk.
    const bool byte_addressable =
        pool_->TierFor(move.to.kind) != nullptr &&
        pool_->TierFor(move.to.kind)->byte_addressable();
    templates_->ForEach([&](MmTemplate& tmpl) {
      if (RemapBacking(tmpl.page_table(), move.from, move.to, byte_addressable) > 0) {
        ++move.templates_rewritten;
      }
    });
    heat_.erase(key);
    ++promoted_chunks_;
    moves.push_back(move);
  }
  return moves;
}

}  // namespace trenv
