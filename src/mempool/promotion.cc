#include "src/mempool/promotion.h"

#include <algorithm>

namespace trenv {

PromotionManager::PromotionManager(TieredPool* pool, MmTemplateRegistry* templates,
                                   Options options)
    : pool_(pool), templates_(templates), options_(options) {}

void PromotionManager::RecordAccess(const PoolPlacement& placement, uint64_t touches) {
  if (touches == 0 || placement.npages == 0 || pool_->tier_count() == 0) {
    return;
  }
  // Chunks below the hottest tier are promotion candidates. Hot-tier chunks
  // are tracked only when a demotion budget is live — their (decayed) heat
  // decides which ones get churned out when the tier is over budget.
  if (placement.kind == pool_->tier(0)->kind() && options_.hot_tier_budget_pages == 0) {
    return;
  }
  heat_[ChunkKey{placement.kind, placement.base, placement.npages}] += touches;
}

uint64_t RemapBacking(PageTable& table, const PoolPlacement& from, const PoolPlacement& to,
                      bool to_byte_addressable) {
  // Collect matching run slices first (the rewrite mutates the table).
  struct Slice {
    Vpn vpn;
    uint64_t npages;
    uint64_t chunk_offset;  // pages into the moved chunk
    PageContent content_base;
    bool constant_content;
  };
  std::vector<Slice> slices;
  table.ForEachRun([&](Vpn vpn, const PteRun& run) {
    // Pool-kind + backing match (not remote()): a chunk promoted into a
    // local-DRAM tmpfs tier still carries its backing offset and must be
    // matched when it is later demoted back out.
    if (run.flags.pool != from.kind || run.backing_base == kNoBacking) {
      return;
    }
    const uint64_t run_lo = run.backing_base;
    const uint64_t run_hi = run.backing_base + run.npages;
    const uint64_t chunk_lo = from.base;
    const uint64_t chunk_hi = from.base + from.npages;
    const uint64_t lo = std::max(run_lo, chunk_lo);
    const uint64_t hi = std::min(run_hi, chunk_hi);
    if (lo >= hi) {
      return;
    }
    Slice slice;
    slice.vpn = vpn + (lo - run_lo);
    slice.npages = hi - lo;
    slice.chunk_offset = lo - chunk_lo;
    slice.content_base =
        run.constant_content ? run.content_base : run.content_base + (lo - run_lo);
    slice.constant_content = run.constant_content;
    slices.push_back(slice);
  });

  uint64_t rewritten = 0;
  for (const Slice& slice : slices) {
    PteFlags flags;
    flags.pool = to.kind;
    flags.valid = to_byte_addressable;  // CXL: pre-populated; RDMA/NAS: lazy
    flags.write_protected = true;
    table.MapRange(slice.vpn, slice.npages, flags, to.base + slice.chunk_offset,
                   slice.content_base, slice.constant_content);
    rewritten += slice.npages;
  }
  return rewritten;
}

bool PromotionManager::ApplyMove(const ChunkKey& key, uint64_t heat, bool up,
                                 std::vector<Move>* moves) {
  PoolPlacement placement{key.kind, key.base, key.npages};
  auto moved = up ? pool_->Promote(placement) : pool_->Demote(placement);
  if (!moved.ok()) {
    return false;  // destination tier full or missing: leave the chunk alone
  }
  Move move;
  move.from = placement;
  move.to = moved->placement;
  move.copy_latency = moved->copy_latency;
  // Rewrite every template that mapped the old chunk.
  const bool byte_addressable = pool_->TierFor(move.to.kind) != nullptr &&
                                pool_->TierFor(move.to.kind)->byte_addressable();
  templates_->ForEach([&](MmTemplate& tmpl) {
    if (RemapBacking(tmpl.page_table(), move.from, move.to, byte_addressable) > 0) {
      ++move.templates_rewritten;
    }
  });
  if (options_.hot_tier_budget_pages > 0) {
    // Demotion live: keep tracking the chunk under its new placement so it
    // stays eligible for future moves in either direction.
    heat_[ChunkKey{move.to.kind, move.to.base, move.to.npages}] = heat;
  }
  heat_.erase(key);
  if (up) {
    ++promoted_chunks_;
  } else {
    ++demoted_chunks_;
  }
  moves->push_back(move);
  return true;
}

std::vector<PromotionManager::Move> PromotionManager::Sweep() {
  std::vector<Move> moves;
  if (pool_->tier_count() == 0) {
    return moves;
  }
  if (options_.heat_decay < 1.0) {
    for (auto& [key, heat] : heat_) {
      heat = static_cast<uint64_t>(static_cast<double>(heat) * options_.heat_decay);
    }
    // Zero-heat entries stay tracked: for hot-tier chunks they are exactly
    // the coldest demotion candidates.
  }
  const PoolKind hot_kind = pool_->tier(0)->kind();

  // Hottest-first candidates over the threshold.
  std::vector<std::pair<uint64_t, ChunkKey>> candidates;
  for (const auto& [key, heat] : heat_) {
    if (key.kind != hot_kind && heat >= options_.promote_threshold) {
      candidates.emplace_back(heat, key);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  size_t promoted = 0;
  for (const auto& [heat, key] : candidates) {
    if (promoted >= options_.max_promotions_per_sweep) {
      break;
    }
    if (ApplyMove(key, heat, /*up=*/true, &moves)) {
      ++promoted;
    }
  }

  // Budget-driven demotion: churn the coldest hot-tier chunks out until the
  // tier fits (coldest-first; key order breaks heat ties deterministically).
  if (options_.hot_tier_budget_pages > 0 && pool_->tier_count() > 1) {
    uint64_t hot_pages = 0;
    std::vector<std::pair<uint64_t, ChunkKey>> coldest;
    for (const auto& [key, heat] : heat_) {
      if (key.kind != hot_kind) {
        continue;
      }
      hot_pages += key.npages;
      if (heat < options_.demote_threshold) {
        coldest.emplace_back(heat, key);
      }
    }
    std::sort(coldest.begin(), coldest.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first < b.first : a.second < b.second;
    });
    size_t demoted = 0;
    for (const auto& [heat, key] : coldest) {
      if (hot_pages <= options_.hot_tier_budget_pages ||
          demoted >= options_.max_demotions_per_sweep) {
        break;
      }
      if (ApplyMove(key, heat, /*up=*/false, &moves)) {
        ++demoted;
        hot_pages -= key.npages;
      }
    }
  }
  return moves;
}

}  // namespace trenv
