// Local-DRAM pool: models a tmpfs-style snapshot store in node memory.
// Used as the backing store for baseline snapshots (the paper stores CRIU /
// REAP / FaaSnap images on a DRAM- or CXL-backed tmpfs for fairness).
#ifndef TRENV_MEMPOOL_DRAM_POOL_H_
#define TRENV_MEMPOOL_DRAM_POOL_H_

#include "src/common/cost_model.h"
#include "src/mempool/backend.h"

namespace trenv {

class DramPool : public MemoryBackend {
 public:
  explicit DramPool(uint64_t capacity_bytes) : MemoryBackend(capacity_bytes) {}

  PoolKind kind() const override { return PoolKind::kLocalDram; }
  std::string_view name() const override { return "dram-tmpfs"; }
  bool byte_addressable() const override { return true; }

  SimDuration DirectLoadLatency() const override { return cost::kLocalDramLatency; }

 protected:
  SimDuration ComputeFetchLatency(uint64_t npages) override {
    // memcpy out of local DRAM at memory bandwidth.
    constexpr double kDramCopyBytesPerSec = 12.0 * static_cast<double>(kGiB);
    const double bytes = static_cast<double>(npages) * static_cast<double>(kPageSize);
    return SimDuration::FromSecondsF(bytes / kDramCopyBytesPerSec);
  }
};

}  // namespace trenv

#endif  // TRENV_MEMPOOL_DRAM_POOL_H_
