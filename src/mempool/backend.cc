#include "src/mempool/backend.h"

#include <cassert>

namespace trenv {

void ContentMap::SplitAt(PoolOffset page) {
  auto it = runs_.upper_bound(page);
  if (it == runs_.begin()) {
    return;
  }
  --it;
  const PoolOffset start = it->first;
  Run& run = it->second;
  if (start == page || start + run.npages <= page) {
    return;
  }
  const uint64_t head = page - start;
  Run tail{run.npages - head, run.content_base + head};
  run.npages = head;
  runs_.emplace(page, tail);
}

void ContentMap::Write(PoolOffset page, uint64_t npages, PageContent content_base) {
  if (npages == 0) {
    return;
  }
  Erase(page, npages);
  runs_.emplace(page, Run{npages, content_base});
}

Result<PageContent> ContentMap::Read(PoolOffset page) const {
  auto it = runs_.upper_bound(page);
  if (it == runs_.begin()) {
    return Status::NotFound("no content stored at pool offset");
  }
  --it;
  if (page >= it->first + it->second.npages) {
    return Status::NotFound("no content stored at pool offset");
  }
  return it->second.content_base + (page - it->first);
}

void ContentMap::Erase(PoolOffset page, uint64_t npages) {
  if (npages == 0) {
    return;
  }
  SplitAt(page);
  SplitAt(page + npages);
  auto it = runs_.lower_bound(page);
  while (it != runs_.end() && it->first < page + npages) {
    it = runs_.erase(it);
  }
}

uint64_t ContentMap::stored_pages() const {
  uint64_t total = 0;
  for (const auto& [base, run] : runs_) {
    total += run.npages;
  }
  return total;
}

SimDuration MemoryBackend::FetchLatency(uint64_t npages) {
  if (npages > 0 && fetch_ops_ != nullptr) {
    fetch_ops_->Increment();
    fetch_pages_->Add(static_cast<double>(npages));
  }
  return ComputeFetchLatency(npages);
}

void MemoryBackend::BindStats(obs::Registry* stats) {
  if (stats == nullptr) {
    fetch_ops_ = nullptr;
    fetch_pages_ = nullptr;
    return;
  }
  const std::string prefix = "pool." + std::string(name());
  fetch_ops_ = stats->GetCounter(prefix + ".fetch_ops");
  fetch_pages_ = stats->GetCounter(prefix + ".fetch_pages");
}

Status MemoryBackend::FreePages(PoolOffset base, uint64_t n) {
  TRENV_RETURN_IF_ERROR(allocator_.Free(base, n));
  content_.Erase(base, n);
  return Status::Ok();
}

Status MemoryBackend::WriteContent(PoolOffset page, uint64_t npages, PageContent content_base) {
  content_.Write(page, npages, content_base);
  return Status::Ok();
}

void BackendRegistry::Register(MemoryBackend* backend) {
  assert(backend != nullptr);
  backends_[backend->kind()] = backend;
}

MemoryBackend* BackendRegistry::Get(PoolKind kind) const {
  auto it = backends_.find(kind);
  return it == backends_.end() ? nullptr : it->second;
}

}  // namespace trenv
