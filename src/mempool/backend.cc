#include "src/mempool/backend.h"

#include <cassert>

#include "src/fault/fault_injector.h"

namespace trenv {

void ContentMap::SplitAt(PoolOffset page) {
  auto it = runs_.upper_bound(page);
  if (it == runs_.begin()) {
    return;
  }
  --it;
  const PoolOffset start = it->first;
  Run& run = it->second;
  if (start == page || start + run.npages <= page) {
    return;
  }
  const uint64_t head = page - start;
  Run tail{run.npages - head, run.content_base + head};
  run.npages = head;
  runs_.emplace(page, tail);
}

void ContentMap::Write(PoolOffset page, uint64_t npages, PageContent content_base) {
  if (npages == 0) {
    return;
  }
  Erase(page, npages);
  runs_.emplace(page, Run{npages, content_base});
}

Result<PageContent> ContentMap::Read(PoolOffset page) const {
  auto it = runs_.upper_bound(page);
  if (it == runs_.begin()) {
    return Status::NotFound("no content stored at pool offset");
  }
  --it;
  if (page >= it->first + it->second.npages) {
    return Status::NotFound("no content stored at pool offset");
  }
  return it->second.content_base + (page - it->first);
}

void ContentMap::Erase(PoolOffset page, uint64_t npages) {
  if (npages == 0) {
    return;
  }
  SplitAt(page);
  SplitAt(page + npages);
  auto it = runs_.lower_bound(page);
  while (it != runs_.end() && it->first < page + npages) {
    it = runs_.erase(it);
  }
}

uint64_t ContentMap::stored_pages() const {
  uint64_t total = 0;
  for (const auto& [base, run] : runs_) {
    total += run.npages;
  }
  return total;
}

SimDuration MemoryBackend::FetchLatency(uint64_t npages) {
  if (npages > 0 && fetch_ops_ != nullptr) {
    fetch_ops_->Increment();
    fetch_pages_->Add(static_cast<double>(npages));
  }
  if (injector_ == nullptr || !injector_->Active() || npages == 0) {
    return ComputeFetchLatency(npages);
  }
  // Chaos path: each attempt may flap (costs a timeout, then backoff + retry)
  // or deliver a corrupted payload (full transfer latency wasted — the dedup
  // store's content hash rejects it — then refetch). The loop is fail-open:
  // once attempts or the deadline are exhausted the fabric is assumed to
  // deliver, so injected faults degrade latency but never lose pages.
  const RetryPolicy& policy = injector_->retry_policy();
  SimDuration overhead;
  for (uint32_t attempt = 0;; ++attempt) {
    const FaultInjector::FetchFault fault =
        injector_->OnFetchAttempt(kind(), active_streams());
    const SimDuration transfer = ComputeFetchLatency(npages) * fault.latency_multiplier;
    if (!fault.fail && !fault.corrupt) {
      return overhead + transfer;
    }
    if (fault.corrupt) {
      injector_->CountCorrupt();
      overhead += transfer;  // the bad payload crossed the wire before the hash caught it
    } else {
      overhead += policy.attempt_timeout;
    }
    if (attempt + 1 >= policy.max_attempts || overhead >= policy.deadline) {
      injector_->CountExhausted();
      return overhead + ComputeFetchLatency(npages) * fault.latency_multiplier;
    }
    overhead += policy.BackoffFor(attempt + 1);
    injector_->CountRetry();
  }
}

SimDuration MemoryBackend::EffectiveDirectLoadLatency() const {
  const SimDuration base = DirectLoadLatency();
  if (injector_ == nullptr || !injector_->Active()) {
    return base;
  }
  return base * injector_->DirectLoadMultiplier(kind());
}

void MemoryBackend::BindStats(obs::Registry* stats) {
  if (stats == nullptr) {
    fetch_ops_ = nullptr;
    fetch_pages_ = nullptr;
    return;
  }
  const std::string prefix = "pool." + std::string(name());
  fetch_ops_ = stats->GetCounter(prefix + ".fetch_ops");
  fetch_pages_ = stats->GetCounter(prefix + ".fetch_pages");
}

Status MemoryBackend::FreePages(PoolOffset base, uint64_t n) {
  TRENV_RETURN_IF_ERROR(allocator_.Free(base, n));
  content_.Erase(base, n);
  return Status::Ok();
}

Status MemoryBackend::WriteContent(PoolOffset page, uint64_t npages, PageContent content_base) {
  content_.Write(page, npages, content_base);
  return Status::Ok();
}

void BackendRegistry::Register(MemoryBackend* backend) {
  assert(backend != nullptr);
  backends_[backend->kind()] = backend;
}

MemoryBackend* BackendRegistry::Get(PoolKind kind) const {
  auto it = backends_.find(kind);
  return it == backends_.end() ? nullptr : it->second;
}

}  // namespace trenv
