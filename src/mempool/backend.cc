#include "src/mempool/backend.h"

#include <algorithm>
#include <cassert>

#include "src/common/cost_model.h"
#include "src/fault/fault_injector.h"

namespace trenv {

size_t ContentMap::FirstOverlapping(PoolOffset page) const {
  const size_t hint = lookup_hint_.load(std::memory_order_relaxed);
  if (hint < runs_.size() && runs_[hint].base <= page &&
      page < runs_[hint].base + runs_[hint].npages) {
    return hint;
  }
  const size_t i = static_cast<size_t>(
      std::upper_bound(runs_.begin(), runs_.end(), page,
                       [](PoolOffset p, const Run& r) { return p < r.base; }) -
      runs_.begin());
  if (i > 0 && runs_[i - 1].base + runs_[i - 1].npages > page) {
    return i - 1;
  }
  return i;
}

void ContentMap::SpliceWindow(size_t lo, size_t hi, const Run* repl, size_t count) {
  const size_t old_count = hi - lo;
  const size_t common = std::min(old_count, count);
  std::copy(repl, repl + common, runs_.begin() + static_cast<ptrdiff_t>(lo));
  if (count > old_count) {
    runs_.insert(runs_.begin() + static_cast<ptrdiff_t>(hi), repl + common, repl + count);
  } else if (old_count > count) {
    runs_.erase(runs_.begin() + static_cast<ptrdiff_t>(lo + count),
                runs_.begin() + static_cast<ptrdiff_t>(hi));
  }
  lookup_hint_.store(lo, std::memory_order_relaxed);
}

void ContentMap::Write(PoolOffset page, uint64_t npages, PageContent content_base) {
  if (npages == 0) {
    return;
  }
  const PoolOffset end = page + npages;
  const size_t lo = FirstOverlapping(page);
  size_t hi = lo;
  while (hi < runs_.size() && runs_[hi].base < end) {
    ++hi;
  }
  Run repl[3];
  size_t count = 0;
  if (lo < hi) {
    const Run& first = runs_[lo];
    if (first.base < page) {
      repl[count++] = Run{first.base, page - first.base, first.content_base};
    }
  }
  repl[count++] = Run{page, npages, content_base};
  if (lo < hi) {
    const Run& last = runs_[hi - 1];
    const PoolOffset last_end = last.base + last.npages;
    if (last_end > end) {
      repl[count++] = Run{end, last_end - end, last.content_base + (end - last.base)};
    }
  }
  SpliceWindow(lo, hi, repl, count);
}

Result<PageContent> ContentMap::Read(PoolOffset page) const {
  const size_t i = FirstOverlapping(page);
  if (i >= runs_.size() || runs_[i].base > page) {
    return Status::NotFound("no content stored at pool offset");
  }
  lookup_hint_.store(i, std::memory_order_relaxed);
  return runs_[i].content_base + (page - runs_[i].base);
}

void ContentMap::Erase(PoolOffset page, uint64_t npages) {
  if (npages == 0) {
    return;
  }
  const PoolOffset end = page + npages;
  const size_t lo = FirstOverlapping(page);
  size_t hi = lo;
  while (hi < runs_.size() && runs_[hi].base < end) {
    ++hi;
  }
  if (lo == hi) {
    return;
  }
  Run repl[2];
  size_t count = 0;
  const Run& first = runs_[lo];
  if (first.base < page) {
    repl[count++] = Run{first.base, page - first.base, first.content_base};
  }
  const Run& last = runs_[hi - 1];
  const PoolOffset last_end = last.base + last.npages;
  if (last_end > end) {
    repl[count++] = Run{end, last_end - end, last.content_base + (end - last.base)};
  }
  SpliceWindow(lo, hi, repl, count);
}

uint64_t ContentMap::stored_pages() const {
  uint64_t total = 0;
  for (const Run& run : runs_) {
    total += run.npages;
  }
  return total;
}

template <typename ComputeFn>
SimDuration MemoryBackend::FetchThroughFaults(uint64_t npages, ComputeFn&& compute) {
  if (injector_ == nullptr || !injector_->Active() || npages == 0) {
    return compute();
  }
  // Chaos path: each attempt may flap (costs a timeout, then backoff + retry)
  // or deliver a corrupted payload (full transfer latency wasted — the dedup
  // store's content hash rejects it — then refetch). The loop is fail-open:
  // once attempts or the deadline are exhausted the fabric is assumed to
  // deliver, so injected faults degrade latency but never lose pages.
  const RetryPolicy& policy = injector_->retry_policy();
  SimDuration overhead;
  for (uint32_t attempt = 0;; ++attempt) {
    const FaultInjector::FetchFault fault =
        injector_->OnFetchAttempt(kind(), active_streams());
    const SimDuration transfer = compute() * fault.latency_multiplier;
    if (!fault.fail && !fault.corrupt) {
      return overhead + transfer;
    }
    if (fault.corrupt) {
      injector_->CountCorrupt();
      overhead += transfer;  // the bad payload crossed the wire before the hash caught it
    } else {
      overhead += policy.attempt_timeout;
    }
    if (attempt + 1 >= policy.max_attempts || overhead >= policy.deadline) {
      injector_->CountExhausted();
      return overhead + compute() * fault.latency_multiplier;
    }
    overhead += policy.BackoffFor(attempt + 1);
    injector_->CountRetry();
  }
}

SimDuration MemoryBackend::FetchLatency(uint64_t npages) {
  if (npages > 0 && fetch_ops_ != nullptr) {
    fetch_ops_->Increment();
    fetch_pages_->Add(static_cast<double>(npages));
  }
  return FetchThroughFaults(npages, [&] { return ComputeFetchLatency(npages); });
}

SimDuration MemoryBackend::BulkFetchLatency(uint64_t nruns, uint64_t npages) {
  if (npages > 0 && fetch_ops_ != nullptr) {
    fetch_ops_->Increment();
    fetch_pages_->Add(static_cast<double>(npages));
    bulk_ops_->Increment();
    bulk_runs_->Add(static_cast<double>(nruns));
  }
  return FetchThroughFaults(npages,
                            [&] { return ComputeBulkFetchLatency(nruns, npages); });
}

SimDuration MemoryBackend::ComputeBulkFetchLatency(uint64_t nruns, uint64_t npages) {
  SimDuration latency = ComputeFetchLatency(npages);
  if (nruns > 1) {
    latency += cost::kBulkFetchPerRun * static_cast<double>(nruns - 1);
  }
  return latency;
}

SimDuration MemoryBackend::EffectiveDirectLoadLatency() const {
  const SimDuration base = DirectLoadLatency();
  if (injector_ == nullptr || !injector_->Active()) {
    return base;
  }
  return base * injector_->DirectLoadMultiplier(kind());
}

void MemoryBackend::BindStats(obs::Registry* stats) {
  if (stats == nullptr) {
    fetch_ops_ = nullptr;
    fetch_pages_ = nullptr;
    bulk_ops_ = nullptr;
    bulk_runs_ = nullptr;
    return;
  }
  const std::string prefix = "pool." + std::string(name());
  fetch_ops_ = stats->GetCounter(prefix + ".fetch_ops");
  fetch_pages_ = stats->GetCounter(prefix + ".fetch_pages");
  bulk_ops_ = stats->GetCounter(prefix + ".bulk_fetch_ops");
  bulk_runs_ = stats->GetCounter(prefix + ".bulk_fetch_runs");
}

Status MemoryBackend::FreePages(PoolOffset base, uint64_t n) {
  TRENV_RETURN_IF_ERROR(allocator_.Free(base, n));
  content_.Erase(base, n);
  return Status::Ok();
}

Status MemoryBackend::WriteContent(PoolOffset page, uint64_t npages, PageContent content_base) {
  content_.Write(page, npages, content_base);
  return Status::Ok();
}

void BackendRegistry::Register(MemoryBackend* backend) {
  assert(backend != nullptr);
  backends_[backend->kind()] = backend;
}

MemoryBackend* BackendRegistry::Get(PoolKind kind) const {
  auto it = backends_.find(kind);
  return it == backends_.end() ? nullptr : it->second;
}

}  // namespace trenv
