// First-fit page-granular block allocator with free-list coalescing.
// Manages the address space of a memory pool; consolidated snapshot images
// are placed through this allocator.
#ifndef TRENV_MEMPOOL_BLOCK_ALLOCATOR_H_
#define TRENV_MEMPOOL_BLOCK_ALLOCATOR_H_

#include <cstdint>
#include <map>

#include "src/common/status.h"
#include "src/simkernel/types.h"

namespace trenv {

class BlockAllocator {
 public:
  explicit BlockAllocator(uint64_t total_pages);

  // Allocates n contiguous pages; returns the base page offset.
  Result<PoolOffset> Allocate(uint64_t n);
  // Frees a previously allocated block (must match an allocation exactly or
  // be a sub-range of one; partial frees split the allocation record).
  Status Free(PoolOffset base, uint64_t n);

  uint64_t total_pages() const { return total_pages_; }
  uint64_t used_pages() const { return used_pages_; }
  uint64_t free_pages() const { return total_pages_ - used_pages_; }
  // Largest contiguous free extent, for fragmentation diagnostics.
  uint64_t LargestFreeExtent() const;

 private:
  void CoalesceAround(PoolOffset base);

  uint64_t total_pages_;
  uint64_t used_pages_ = 0;
  // Free extents: base -> length.
  std::map<PoolOffset, uint64_t> free_list_;
};

}  // namespace trenv

#endif  // TRENV_MEMPOOL_BLOCK_ALLOCATOR_H_
