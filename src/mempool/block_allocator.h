// First-fit page-granular block allocator with free-list coalescing.
// Manages the address space of a memory pool; consolidated snapshot images
// are placed through this allocator.
//
// The free list is a sorted vector of extents rather than a node-based map:
// Allocate shrinks the chosen extent in place (no erase + reinsert), and
// Free either extends a neighboring extent in place or inserts one record.
// The keep-alive churn pattern — free a block, reallocate the same size —
// therefore runs allocation-free at steady state. Placement decisions are
// bit-identical to the original std::map free list (first fit from the
// lowest base; pinned by tests/flat_store_equivalence_test.cc).
#ifndef TRENV_MEMPOOL_BLOCK_ALLOCATOR_H_
#define TRENV_MEMPOOL_BLOCK_ALLOCATOR_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/simkernel/types.h"

namespace trenv {

class BlockAllocator {
 public:
  explicit BlockAllocator(uint64_t total_pages);

  // Allocates n contiguous pages; returns the base page offset.
  Result<PoolOffset> Allocate(uint64_t n);
  // Frees a previously allocated block (must match an allocation exactly or
  // be a sub-range of one; partial frees split the allocation record).
  Status Free(PoolOffset base, uint64_t n);

  uint64_t total_pages() const { return total_pages_; }
  uint64_t used_pages() const { return used_pages_; }
  uint64_t free_pages() const { return total_pages_ - used_pages_; }
  // Largest contiguous free extent, for fragmentation diagnostics.
  uint64_t LargestFreeExtent() const;
  // Number of free extents, for fragmentation diagnostics.
  uint64_t free_extent_count() const { return free_list_.size(); }
  // Invokes fn(base, len) for every free extent in base order (diagnostics
  // and the store-equivalence test).
  template <typename Fn>
  void ForEachFreeExtent(Fn&& fn) const {
    for (const Extent& extent : free_list_) {
      fn(extent.base, extent.len);
    }
  }

 private:
  struct Extent {
    PoolOffset base;
    uint64_t len;
  };

  // Index of the first free extent with base >= `base`.
  size_t LowerBound(PoolOffset base) const;

  uint64_t total_pages_;
  uint64_t used_pages_ = 0;
  // Free extents sorted by base, pairwise disjoint and non-adjacent.
  std::vector<Extent> free_list_;
};

}  // namespace trenv

#endif  // TRENV_MEMPOOL_BLOCK_ALLOCATOR_H_
