#include "src/mempool/rdma_pool.h"

#include <algorithm>
#include <cmath>

namespace trenv {

double RdmaPool::LoadFactor() const {
  const double excess =
      std::max<double>(0.0, static_cast<double>(active_streams_) -
                                static_cast<double>(cost::kRdmaLoadFreeStreams));
  return 1.0 + cost::kRdmaLoadLatencyFactor * excess;
}

SimDuration RdmaPool::ComputeFetchLatency(uint64_t npages) {
  if (npages == 0) {
    return SimDuration::Zero();
  }
  // Lognormal jitter reproduces the long tail; the mean of exp(N(mu, sigma))
  // with mu = -sigma^2/2 is exactly 1, so the base latency is unbiased.
  const double sigma = cost::kRdmaTailSigma;
  const double jitter = rng_.NextLogNormal(-sigma * sigma / 2.0, sigma);
  // A lone fault pays the full round trip; sequential fault streams get
  // readahead batching, amortizing (but not hiding) the fabric latency.
  const double base_ns = static_cast<double>(cost::kRdmaPageFetchBase.nanos());
  const double stream_ns =
      static_cast<double>(npages - 1) * base_ns * cost::kRdmaReadaheadFactor;
  return SimDuration(
      static_cast<int64_t>((base_ns + stream_ns) * LoadFactor() * jitter));
}

SimDuration RdmaPool::ComputeBulkFetchLatency(uint64_t nruns, uint64_t npages) {
  if (npages == 0) {
    return SimDuration::Zero();
  }
  // One base round trip for the whole scatter list, then pipelined page
  // streaming near line rate; fragmentation costs one descriptor per extra
  // run. A single jitter draw covers the batch — a bulk read is one fabric
  // operation, not npages independent tail samples.
  const double sigma = cost::kRdmaTailSigma;
  const double jitter = rng_.NextLogNormal(-sigma * sigma / 2.0, sigma);
  const double base_ns = static_cast<double>(cost::kRdmaPageFetchBase.nanos());
  const double stream_ns =
      static_cast<double>(npages - 1) * base_ns * cost::kRdmaBulkStreamFactor;
  const double scatter_ns =
      nruns > 1 ? static_cast<double>(nruns - 1) *
                      static_cast<double>(cost::kBulkFetchPerRun.nanos())
                : 0.0;
  return SimDuration(static_cast<int64_t>(
      (base_ns + stream_ns + scatter_ns) * LoadFactor() * jitter));
}

}  // namespace trenv
