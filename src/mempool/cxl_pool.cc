#include "src/mempool/cxl_pool.h"

namespace trenv {

Status CxlPool::AttachNode(uint32_t node_id) {
  if (attached_.contains(node_id)) {
    return Status::AlreadyExists("node already attached to CXL pool");
  }
  if (attached_.size() >= port_count_) {
    return Status::ResourceExhausted("all CXL device ports in use");
  }
  attached_.insert(node_id);
  return Status::Ok();
}

Status CxlPool::DetachNode(uint32_t node_id) {
  if (attached_.erase(node_id) == 0) {
    return Status::NotFound("node not attached to CXL pool");
  }
  return Status::Ok();
}

}  // namespace trenv
