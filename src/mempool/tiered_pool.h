// TieredPool: the multi-layer placement facade from Fig 1. Hot snapshot
// blocks land in the upper layers (local DRAM or CXL), cold blocks in lower
// layers (RDMA, NAS). Eviction/promotion policy is deliberately simple — the
// paper calls the specific strategy orthogonal to the core design.
#ifndef TRENV_MEMPOOL_TIERED_POOL_H_
#define TRENV_MEMPOOL_TIERED_POOL_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/mempool/backend.h"

namespace trenv {

struct PoolPlacement {
  PoolKind kind = PoolKind::kLocalDram;
  PoolOffset base = 0;
  uint64_t npages = 0;
};

class TieredPool {
 public:
  // Tiers must be added hottest-first. Does not take ownership.
  void AddTier(MemoryBackend* backend);
  size_t tier_count() const { return tiers_.size(); }
  MemoryBackend* tier(size_t i) const { return tiers_[i]; }
  MemoryBackend* TierFor(PoolKind kind) const;

  // Allocates n pages for a block with the given hotness in [0, 1]; hotter
  // blocks prefer upper tiers. Falls through to any tier with space.
  [[nodiscard]] Result<PoolPlacement> AllocatePages(uint64_t n, double hotness);
  [[nodiscard]] Status FreePages(const PoolPlacement& placement);

  // Moves a block one tier up (if space allows); returns the new placement
  // and models the inter-tier copy as the destination's fetch latency.
  struct PromotionResult {
    PoolPlacement placement;
    SimDuration copy_latency;
  };
  [[nodiscard]] Result<PromotionResult> Promote(const PoolPlacement& placement);

  // Mirror of Promote: moves a block one tier down (freeing hot-tier space
  // for blocks that earn it). The copy is modelled at the *destination*'s
  // fetch rate — writing into the colder medium is the bottleneck.
  [[nodiscard]] Result<PromotionResult> Demote(const PoolPlacement& placement);

 private:
  size_t TierIndex(PoolKind kind) const;
  std::vector<MemoryBackend*> tiers_;
};

}  // namespace trenv

#endif  // TRENV_MEMPOOL_TIERED_POOL_H_
