#include "src/mempool/block_allocator.h"

#include <algorithm>
#include <cassert>

namespace trenv {

BlockAllocator::BlockAllocator(uint64_t total_pages) : total_pages_(total_pages) {
  if (total_pages > 0) {
    free_list_.emplace(0, total_pages);
  }
}

Result<PoolOffset> BlockAllocator::Allocate(uint64_t n) {
  if (n == 0) {
    return Status::InvalidArgument("zero-page allocation");
  }
  for (auto it = free_list_.begin(); it != free_list_.end(); ++it) {
    if (it->second >= n) {
      const PoolOffset base = it->first;
      const uint64_t remaining = it->second - n;
      free_list_.erase(it);
      if (remaining > 0) {
        free_list_.emplace(base + n, remaining);
      }
      used_pages_ += n;
      return base;
    }
  }
  return Status::OutOfMemory("pool exhausted or fragmented");
}

Status BlockAllocator::Free(PoolOffset base, uint64_t n) {
  if (n == 0 || base + n > total_pages_) {
    return Status::InvalidArgument("free range out of bounds");
  }
  // Validate against double-free: the range must not intersect the free list.
  auto it = free_list_.upper_bound(base);
  if (it != free_list_.end() && it->first < base + n) {
    return Status::InvalidArgument("double free (overlaps free extent)");
  }
  if (it != free_list_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second > base) {
      return Status::InvalidArgument("double free (overlaps free extent)");
    }
  }
  free_list_.emplace(base, n);
  assert(used_pages_ >= n);
  used_pages_ -= n;
  CoalesceAround(base);
  return Status::Ok();
}

void BlockAllocator::CoalesceAround(PoolOffset base) {
  auto it = free_list_.find(base);
  assert(it != free_list_.end());
  // Merge with predecessor.
  if (it != free_list_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second == it->first) {
      prev->second += it->second;
      free_list_.erase(it);
      it = prev;
    }
  }
  // Merge with successor.
  auto next = std::next(it);
  if (next != free_list_.end() && it->first + it->second == next->first) {
    it->second += next->second;
    free_list_.erase(next);
  }
}

uint64_t BlockAllocator::LargestFreeExtent() const {
  uint64_t largest = 0;
  for (const auto& [base, len] : free_list_) {
    largest = std::max(largest, len);
  }
  return largest;
}

}  // namespace trenv
