#include "src/mempool/block_allocator.h"

#include <algorithm>
#include <cassert>

namespace trenv {

BlockAllocator::BlockAllocator(uint64_t total_pages) : total_pages_(total_pages) {
  if (total_pages > 0) {
    free_list_.push_back(Extent{0, total_pages});
  }
}

size_t BlockAllocator::LowerBound(PoolOffset base) const {
  return static_cast<size_t>(
      std::lower_bound(free_list_.begin(), free_list_.end(), base,
                       [](const Extent& e, PoolOffset b) { return e.base < b; }) -
      free_list_.begin());
}

Result<PoolOffset> BlockAllocator::Allocate(uint64_t n) {
  if (n == 0) {
    return Status::InvalidArgument("zero-page allocation");
  }
  for (size_t i = 0; i < free_list_.size(); ++i) {
    Extent& extent = free_list_[i];
    if (extent.len >= n) {
      const PoolOffset base = extent.base;
      // First fit: carve from the front of the extent. Shrinking in place
      // keeps the list sorted with no erase + reinsert.
      extent.base += n;
      extent.len -= n;
      if (extent.len == 0) {
        free_list_.erase(free_list_.begin() + static_cast<ptrdiff_t>(i));
      }
      used_pages_ += n;
      return base;
    }
  }
  return Status::OutOfMemory("pool exhausted or fragmented");
}

Status BlockAllocator::Free(PoolOffset base, uint64_t n) {
  if (n == 0 || base + n > total_pages_) {
    return Status::InvalidArgument("free range out of bounds");
  }
  // Validate against double-free: the range must not intersect the free list.
  const size_t i = LowerBound(base + 1);  // first extent with base' > base
  if (i < free_list_.size() && free_list_[i].base < base + n) {
    return Status::InvalidArgument("double free (overlaps free extent)");
  }
  if (i > 0 && free_list_[i - 1].base + free_list_[i - 1].len > base) {
    return Status::InvalidArgument("double free (overlaps free extent)");
  }
  assert(used_pages_ >= n);
  used_pages_ -= n;

  const bool merge_prev = i > 0 && free_list_[i - 1].base + free_list_[i - 1].len == base;
  const bool merge_next = i < free_list_.size() && base + n == free_list_[i].base;
  if (merge_prev && merge_next) {
    free_list_[i - 1].len += n + free_list_[i].len;
    free_list_.erase(free_list_.begin() + static_cast<ptrdiff_t>(i));
  } else if (merge_prev) {
    free_list_[i - 1].len += n;
  } else if (merge_next) {
    free_list_[i].base = base;
    free_list_[i].len += n;
  } else {
    free_list_.insert(free_list_.begin() + static_cast<ptrdiff_t>(i), Extent{base, n});
  }
  return Status::Ok();
}

uint64_t BlockAllocator::LargestFreeExtent() const {
  uint64_t largest = 0;
  for (const Extent& extent : free_list_) {
    largest = std::max(largest, extent.len);
  }
  return largest;
}

}  // namespace trenv
