#include "src/common/interner.h"

#include <cassert>

namespace trenv {

FunctionId Interner::Intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(name);
  if (it != index_.end()) {
    return it->second;
  }
  const FunctionId id = static_cast<FunctionId>(names_.size());
  auto [inserted, _] = index_.emplace(std::string(name), id);
  names_.push_back(&inserted->first);
  return id;
}

FunctionId Interner::Find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(name);
  return it == index_.end() ? kInvalidFunctionId : it->second;
}

std::string_view Interner::NameOf(FunctionId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  assert(id < names_.size());
  return *names_[id];
}

size_t Interner::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_.size();
}

Interner& GlobalFunctionInterner() {
  static Interner* interner = new Interner();
  return *interner;
}

FunctionId InternFunction(std::string_view name) {
  return GlobalFunctionInterner().Intern(name);
}

std::string_view FunctionName(FunctionId id) {
  return GlobalFunctionInterner().NameOf(id);
}

}  // namespace trenv
