// Minimal leveled logging. Default level is kWarning so that test and
// benchmark output stays clean; examples raise it to kInfo for narration.
#ifndef TRENV_COMMON_LOG_H_
#define TRENV_COMMON_LOG_H_

#include <sstream>
#include <string_view>

namespace trenv {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kNone = 4 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
void LogMessage(LogLevel level, std::string_view file, int line, std::string_view msg);

namespace log_internal {

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  ~LogLine() { LogMessage(level_, file_, line_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace log_internal
}  // namespace trenv

#define TRENV_LOG(level)                                               \
  if (static_cast<int>(::trenv::LogLevel::level) <                     \
      static_cast<int>(::trenv::GetLogLevel())) {                      \
  } else                                                               \
    ::trenv::log_internal::LogLine(::trenv::LogLevel::level, __FILE__, __LINE__)

#define TRENV_DEBUG TRENV_LOG(kDebug)
#define TRENV_INFO TRENV_LOG(kInfo)
#define TRENV_WARN TRENV_LOG(kWarning)
#define TRENV_ERROR TRENV_LOG(kError)

#endif  // TRENV_COMMON_LOG_H_
