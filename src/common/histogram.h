// Latency/size recorders with percentile queries and CDF export.
//
// Benchmarks reproduce the paper's figures by printing percentile rows and CDF
// series; this recorder is the single implementation behind all of them.
#ifndef TRENV_COMMON_HISTOGRAM_H_
#define TRENV_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/time.h"

namespace trenv {

// Stores raw samples; suitable for the sample counts in this repo (<= millions).
// Mean/Stddev are O(1) from running moments; order statistics (Min/Max/
// Percentile/Cdf) sort lazily on first query after a mutation, so querying
// only the moments never pays for a sort.
class Histogram {
 public:
  void Record(double value);
  void RecordDuration(SimDuration d) { Record(d.millis()); }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double Min() const;
  double Max() const;
  double Mean() const;
  double Stddev() const;
  // p in [0, 100]; linear interpolation between order statistics.
  double Percentile(double p) const;
  double Median() const { return Percentile(50); }
  double P99() const { return Percentile(99); }

  // Returns (value, cumulative_fraction) pairs at each distinct sample,
  // subsampled to at most max_points for plotting.
  std::vector<std::pair<double, double>> Cdf(size_t max_points = 200) const;

  void Clear();
  void MergeFrom(const Histogram& other);

  // One-line summary: count / mean / p50 / p99 / max.
  std::string Summary() const;

 private:
  void EnsureSorted() const;

  // mutable: EnsureSorted reorders in place from const accessors (logical
  // state — the multiset of samples — is unchanged).
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0;     // running Σx, maintained by Record/Clear/MergeFrom
  double sum_sq_ = 0;  // running Σx²
};

// Tracks a quantity over virtual time (e.g. memory in use) and reports the
// peak as well as the time integral (byte-seconds, for cost modelling).
class TimeSeriesGauge {
 public:
  void Set(SimTime now, double value);
  void Add(SimTime now, double delta);

  double current() const { return current_; }
  double peak() const { return peak_; }
  // Integral of the gauge over time, in value * seconds.
  double TimeIntegral(SimTime end) const;

  // Sampled series for plotting: (seconds, value).
  std::vector<std::pair<double, double>> Series() const;

 private:
  double current_ = 0;
  double peak_ = 0;
  double integral_ = 0;  // value * seconds accumulated up to last_update_.
  SimTime last_update_;
  std::vector<std::pair<double, double>> points_;
};

}  // namespace trenv

#endif  // TRENV_COMMON_HISTOGRAM_H_
