// Calibrated cost constants for the TrEnv simulation.
//
// Every latency/bandwidth constant the simulator uses lives here, annotated
// with the paper section or figure it was calibrated against. Benchmarks and
// the kernel/sandbox models consume these so that a single edit re-calibrates
// the whole system.
#ifndef TRENV_COMMON_COST_MODEL_H_
#define TRENV_COMMON_COST_MODEL_H_

#include "src/common/time.h"
#include "src/common/units.h"

namespace trenv {
namespace cost {

// ---------------------------------------------------------------------------
// Sandbox component creation (paper Table 1, Fig 4, section 4.1).
// ---------------------------------------------------------------------------

// Network namespace + veth pair. 80 ms in the uncontended case; under
// concurrent cold starts the kernel's global locks inflate this badly (the
// paper observes 400 ms at 15-way concurrency and up to 10 s in the worst
// case, section 3.3). Modelled as base + per-concurrent-creation penalty.
inline constexpr SimDuration kNetNsCreateBase = SimDuration::Millis(80);
inline constexpr SimDuration kNetNsCreatePerConcurrent = SimDuration::FromMillisF(23.0);
// Resetting a pooled netns (flush conntrack entries, close sockets) is cheap.
inline constexpr SimDuration kNetNsReset = SimDuration::FromMicrosF(120.0);

// Rootfs: mount namespace plus >9 mounts / 6 mknod / pivot_root (section
// 5.2.1). 10-800 ms in Table 1; concurrency pressure comes from superblock
// locks. TrEnv's reconfiguration needs only 2 mounts.
inline constexpr SimDuration kRootfsCreateBase = SimDuration::Millis(30);
inline constexpr SimDuration kRootfsCreatePerConcurrent = SimDuration::FromMillisF(8.0);
inline constexpr SimDuration kMountSyscall = SimDuration::FromMicrosF(180.0);
inline constexpr SimDuration kUmountSyscall = SimDuration::FromMicrosF(150.0);
inline constexpr SimDuration kMknodSyscall = SimDuration::FromMicrosF(60.0);
inline constexpr SimDuration kPivotRootSyscall = SimDuration::FromMicrosF(200.0);
// Remount of an overlayfs to flush stale inode caches during purge.
inline constexpr SimDuration kOverlayRemount = SimDuration::FromMicrosF(250.0);
// Deleting one file from the overlay upper dir during cleansing.
inline constexpr SimDuration kUpperDirDeletePerFile = SimDuration::FromMicrosF(12.0);

// Cgroup: creation 16-32 ms; migration 10-50 ms dominated by two global
// rw-semaphores and an RCU grace period (section 5.2.2, Fig 14).
inline constexpr SimDuration kCgroupCreateBase = SimDuration::Millis(16);
inline constexpr SimDuration kCgroupCreateMax = SimDuration::Millis(32);
inline constexpr SimDuration kCgroupMigrateBase = SimDuration::Millis(10);
inline constexpr SimDuration kCgroupMigratePerConcurrent = SimDuration::FromMillisF(2.5);
inline constexpr SimDuration kCgroupMigrateMax = SimDuration::Millis(50);
// CLONE_INTO_CGROUP bypasses the migration path entirely: 100-300 us.
inline constexpr SimDuration kCloneIntoCgroupMin = SimDuration::FromMicrosF(100.0);
inline constexpr SimDuration kCloneIntoCgroupMax = SimDuration::FromMicrosF(300.0);
// Re-applying limits to a pooled cgroup (writes to cgroupfs files).
inline constexpr SimDuration kCgroupReconfigure = SimDuration::FromMicrosF(80.0);

// Remaining namespaces (pid, uts, ipc, time): < 1 ms in Table 1.
inline constexpr SimDuration kMiscNamespaces = SimDuration::FromMicrosF(700.0);

// Killing and reaping one process during sandbox cleansing (step B1).
inline constexpr SimDuration kProcessKill = SimDuration::FromMicrosF(450.0);

// ---------------------------------------------------------------------------
// Process restore (CRIU; paper Table 1, Fig 4, section 7).
// ---------------------------------------------------------------------------

// Copy bandwidth of CRIU's memory restoration from a DRAM/CXL tmpfs snapshot:
// the paper measures ~60 ms for a 60 MiB image and >220 ms for 360 MiB, i.e.
// roughly 1 GiB/s end to end including page-table churn.
inline constexpr double kCriuMemCopyBytesPerSec = 1.0 * static_cast<double>(kGiB);
// Each restored VMA costs one mmap() replay.
inline constexpr SimDuration kMmapSyscall = SimDuration::FromMicrosF(2.2);
// Non-memory process state (fds, sockets, registers): 3-15 ms (Table 1),
// scaling with thread count; clone() per extra thread.
inline constexpr SimDuration kCriuMiscRestoreBase = SimDuration::Millis(3);
inline constexpr SimDuration kCriuPerThreadClone = SimDuration::FromMicrosF(85.0);
inline constexpr SimDuration kCriuPerOpenFd = SimDuration::FromMicrosF(15.0);
// Issuing the "repurpose" request and joining existing namespaces (step B3).
inline constexpr SimDuration kCriuRepurposeRequest = SimDuration::FromMicrosF(900.0);

// mm-template attach: copies only metadata (page-table runs + VMA records).
// ~400 KiB of metadata for a 70 MiB image (section 9.4) copied at memcpy
// speed, plus one ioctl round trip.
inline constexpr double kMmtMetadataBytesPerPage = 22.0;
inline constexpr double kMmtAttachCopyBytesPerSec = 6.0 * static_cast<double>(kGiB);
inline constexpr SimDuration kMmtIoctl = SimDuration::FromMicrosF(25.0);
// Setting up one PTE run during preprocessing (offline, not critical path).
inline constexpr SimDuration kMmtSetupPtPerRun = SimDuration::FromMicrosF(3.0);

// Function bootstrap from scratch (interpreter launch + imports) is profiled
// per function; this is only the floor for a trivial handler.
inline constexpr SimDuration kBootstrapFloor = SimDuration::Millis(120);

// ---------------------------------------------------------------------------
// Memory fabrics (sections 3.1, 9.1, 9.5).
// ---------------------------------------------------------------------------

// CXL load latency. The testbed table reports "641.1" for CXL (the unit in
// the paper text is a typo; real CXL 2.0 device loads are in the hundreds of
// nanoseconds, consistent with the cited measurements) - we use 641 ns.
inline constexpr SimDuration kCxlLoadLatency = SimDuration::Nanos(641);
inline constexpr SimDuration kLocalDramLatency = SimDuration::Nanos(95);
inline constexpr double kCxlBandwidthBytesPerSec = 22.0 * static_cast<double>(kGiB);
// Execution-time inflation for running with hot data on CXL instead of DRAM:
// the paper reports ~2x for very short memory-bound functions (DH, IR) and
// ~10% on average for the rest (section 9.2.1). The model scales between
// these with the function's memory-bound fraction.
inline constexpr double kCxlExecSlowdownPerMemBoundFraction = 1.0;

// RDMA: 6 us one-sided read for a 4 KiB page, plus heavy-tail behaviour under
// load (section 9.5: P99 cliffs of up to ~5x during bursts; extra CPU usage
// of ~1.24x vs CXL).
inline constexpr SimDuration kRdmaPageFetchBase = SimDuration::Micros(6);
// Sequential demand faults benefit from limited readahead on the RDMA
// backend (multi-page fetches), amortizing the round trip but staying far
// from fully-pipelined bandwidth.
inline constexpr double kRdmaReadaheadFactor = 0.4;  // per-page cost vs a lone fault
inline constexpr double kRdmaLoadLatencyFactor = 0.18;   // per concurrent stream
inline constexpr uint32_t kRdmaLoadFreeStreams = 4;      // contention-free streams
inline constexpr double kRdmaTailSigma = 0.55;           // lognormal sigma for jitter
inline constexpr SimDuration kRdmaPerFetchCpu = SimDuration::FromMicrosF(1.6);
// Planned bulk reads (working-set prefetch) post the whole scatter list as
// large pipelined one-sided reads, so the per-page cost approaches line rate
// (~8.5 GB/s on the 100 Gb fabric) instead of the fault-driven readahead
// factor above. Each extra run in the scatter list costs one descriptor.
inline constexpr double kRdmaBulkStreamFactor = 0.08;  // per-page cost vs a lone fault
inline constexpr SimDuration kBulkFetchPerRun = SimDuration::FromMicrosF(0.5);

// NAS / network-attached storage tier: block I/O, ~60 us per 4 KiB.
inline constexpr SimDuration kNasPageFetchBase = SimDuration::Micros(60);

// ---------------------------------------------------------------------------
// Page faults (sections 3.3, 5.1, 9.2.2).
// ---------------------------------------------------------------------------

// Kernel minor fault (zero-fill or mapping already resident).
inline constexpr SimDuration kMinorFault = SimDuration::FromMicrosF(0.9);
// Copy-on-write fault: fault entry/exit plus a 4 KiB copy.
inline constexpr SimDuration kCowFault = SimDuration::FromMicrosF(2.6);
// userfaultfd round trip to a userspace pager (REAP/FaaSnap lazy restore):
// "several microseconds ... even when snapshots are on a CXL-backed tmpfs".
inline constexpr SimDuration kUserfaultfdFault = SimDuration::FromMicrosF(5.5);
// Fault-path cost of a major fault before the backend fetch is added.
inline constexpr SimDuration kMajorFaultEntry = SimDuration::FromMicrosF(1.8);

// ---------------------------------------------------------------------------
// MicroVM / hypervisor (sections 6, 9.6, Fig 23).
// ---------------------------------------------------------------------------

// Vanilla Cloud Hypervisor restore performs a full guest-memory copy: >700 ms
// for the 2 GiB Blackjack guest (Fig 23) => ~2.7 GiB/s effective copy rate.
inline constexpr double kVmMemCopyBytesPerSec = 2.7 * static_cast<double>(kGiB);
// VMM process spawn + KVM vm/vcpu setup.
inline constexpr SimDuration kVmmSpawn = SimDuration::Millis(28);
inline constexpr SimDuration kVmDeviceSetupPerDevice = SimDuration::FromMillisF(3.5);
// E2B's observed startup components (section 9.6.1): ~97 ms network setup and
// ~63 ms cgroup migration.
inline constexpr SimDuration kE2bNetworkSetup = SimDuration::Millis(97);
inline constexpr SimDuration kE2bCgroupMigration = SimDuration::Millis(63);
// Restoring VM memory by mmap of a DAX device / image file (TrEnv CH patch):
// a single syscall-ish cost, pages populated lazily afterwards.
inline constexpr SimDuration kVmMmapRestore = SimDuration::FromMillisF(2.0);
// Two-dimensional (EPT) page fault costs in the guest.
inline constexpr SimDuration kEptViolation = SimDuration::FromMicrosF(4.0);

// Guest boot (kernel + init) when no snapshot is used at all.
inline constexpr SimDuration kGuestColdBoot = SimDuration::Millis(650);

// Loading VM snapshot metadata (device state, vCPU registers) sans memory.
inline constexpr SimDuration kVmSnapshotLoad = SimDuration::FromMillisF(4.0);
// Guest userspace wake-up after resume: vsock/network re-handshake with the
// agent server inside the guest. Common to every system.
inline constexpr SimDuration kVmGuestResume = SimDuration::Millis(120);
// Firecracker/E2B snapshot resume: mmap of the memory file plus touching the
// eager set.
inline constexpr SimDuration kE2bSnapshotMemResume = SimDuration::Millis(34);
// Extra DAX/virtiofs mapping setup for the RunD rootfs scheme (E2B+).
inline constexpr SimDuration kRundRootfsMapSetup = SimDuration::Millis(24);
// Fixed local-memory overhead of a microVM instance: guest kernel, VMM
// process, device buffers.
inline constexpr uint64_t kVmGuestOverheadBytes = 80 * kMiB;
// FaaSnap's asynchronous prefetch policy: fraction of the recorded working
// set loaded eagerly at restore, and the fraction of post-restore fault
// latency its overlap hides relative to REAP.
inline constexpr double kFaasnapEagerFraction = 0.4;
inline constexpr double kFaasnapHiddenFraction = 0.65;

// ---------------------------------------------------------------------------
// Billing (section 2.3).
// ---------------------------------------------------------------------------

// AWS Lambda: $1.67e-8 per ms per GB.
inline constexpr double kServerlessUsdPerMsPerGb = 1.67e-8;
// 2025 frontier-efficient LLM pricing: $0.5 / 1M input, $2 / 1M output
// (the efficient-model price class the paper's cost analysis assumes). With
// these prices and the Table 2/3 measurements, the serverless share of an
// agent's cost peaks at the paper's "up to 71%" (Fig 3).
inline constexpr double kLlmUsdPerInputToken = 0.5e-6;
inline constexpr double kLlmUsdPerOutputToken = 2.0e-6;

// ---------------------------------------------------------------------------
// Platform policy defaults (section 9.1).
// ---------------------------------------------------------------------------

inline constexpr SimDuration kKeepAliveTtl = SimDuration::Minutes(10);
inline constexpr uint64_t kDefaultNodeDramBytes = 256 * kGiB;
inline constexpr uint64_t kDefaultSoftMemCap = 64 * kGiB;
inline constexpr uint64_t kW2SoftMemCap = 32 * kGiB;
// Floor for injected soft-mem-cap pressure scales: a scale below this would
// shrink the cap to (near) zero and flush the entire keep-alive pool on the
// next enforcement pass, turning a transient pressure *window* into a cold
// restart of the whole node. 1% of the configured cap keeps eviction
// aggressive under the worst injected pressure while leaving the hottest
// instances parked.
inline constexpr double kSoftMemCapScaleFloor = 0.01;

}  // namespace cost
}  // namespace trenv

#endif  // TRENV_COMMON_COST_MODEL_H_
