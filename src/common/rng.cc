#include "src/common/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace trenv {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t MixU64(uint64_t v) {
  uint64_t state = v;
  return SplitMix64(state);
}

namespace {
uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection-free Lemire reduction would be overkill; modulo bias is
  // negligible for workload synthesis with 64-bit inputs.
  return NextU64() % bound;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(hi >= lo);
  return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

double Rng::NextExponential(double mean) {
  assert(mean > 0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0) {
    u = 1e-300;
  }
  return -mean * std::log(u);
}

double Rng::NextNormal(double mean, double stddev) {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0) {
    u1 = 1e-300;
  }
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::NextLogNormal(double mu, double sigma) {
  return std::exp(NextNormal(mu, sigma));
}

double Rng::NextPareto(double x_min, double alpha) {
  assert(x_min > 0 && alpha > 0);
  double u = NextDouble();
  if (u <= 0) {
    u = 1e-300;
  }
  return x_min / std::pow(u, 1.0 / alpha);
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  assert(n > 0);
  if (s <= 0) {
    return NextBounded(n);
  }
  // Inverse-CDF over precomputation-free approximation: sample by rejection on
  // the continuous bounding distribution. For the modest n used in workloads
  // (tens to hundreds of functions) a simple linear CDF walk is fine.
  double norm = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    norm += 1.0 / std::pow(static_cast<double>(i), s);
  }
  double target = NextDouble() * norm;
  double acc = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), s);
    if (acc >= target) {
      return i - 1;
    }
  }
  return n - 1;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace trenv
