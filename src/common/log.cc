#include "src/common/log.h"

#include <cstdio>
#include <string>

namespace trenv {

namespace {
LogLevel g_level = LogLevel::kWarning;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}

std::string_view Basename(std::string_view path) {
  const size_t pos = path.find_last_of('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

void LogMessage(LogLevel level, std::string_view file, int line, std::string_view msg) {
  const std::string_view base = Basename(file);
  std::fprintf(stderr, "[%s %.*s:%d] %.*s\n", LevelTag(level), static_cast<int>(base.size()),
               base.data(), line, static_cast<int>(msg.size()), msg.data());
}

}  // namespace trenv
