// Function-name interning: dense FunctionIds for the invocation hot path.
//
// Every simulated invocation used to re-hash its function's std::string
// through half a dozen std::map<std::string, ...> lookups (registry, metrics,
// keep-alive pool, engine snapshot/template/overlay stores). Interning the
// name once — at deployment / instance creation — turns all of those into
// vector indexing. String maps remain only at registration and reporting
// boundaries, where names enter or leave the system.
//
// The interner is process-global and mutex-guarded: interning happens on
// cold paths (deploy, instance construction), so the lock is uncontended in
// steady state, and a single id space means engines, platforms, and pools
// can never alias two different functions under one id — even when parallel
// sweeps drive many platforms concurrently. Ids are dense but their numeric
// order depends on interning order; nothing output-visible may iterate in id
// order (reporting structures stay string-keyed and sorted).
#ifndef TRENV_COMMON_INTERNER_H_
#define TRENV_COMMON_INTERNER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace trenv {

using FunctionId = uint32_t;
inline constexpr FunctionId kInvalidFunctionId = 0xFFFFFFFFu;

// A string -> dense id table. Thread-safe; ids are assigned in interning
// order and never change or disappear for the lifetime of the interner.
class Interner {
 public:
  Interner() = default;
  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;

  // Returns the id for `name`, assigning the next dense id on first sight.
  FunctionId Intern(std::string_view name);
  // Returns the id for `name` or kInvalidFunctionId if never interned.
  FunctionId Find(std::string_view name) const;
  // The interned string for `id`. `id` must have been returned by Intern.
  std::string_view NameOf(FunctionId id) const;
  size_t size() const;

 private:
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, FunctionId, StringHash, std::equal_to<>> index_;
  // Pointers into index_ keys: stable for the table's lifetime.
  std::vector<const std::string*> names_;
};

// The process-wide function-name id space.
Interner& GlobalFunctionInterner();

// Convenience wrappers over the global interner.
FunctionId InternFunction(std::string_view name);
std::string_view FunctionName(FunctionId id);

}  // namespace trenv

#endif  // TRENV_COMMON_INTERNER_H_
