#include "src/common/units.h"

#include <array>
#include <cstdio>

#include "src/common/time.h"

namespace trenv {

std::string FormatBytes(uint64_t bytes) {
  static constexpr std::array<const char*, 4> kSuffixes = {"B", "KiB", "MiB", "GiB"};
  double value = static_cast<double>(bytes);
  size_t idx = 0;
  while (value >= 1024.0 && idx + 1 < kSuffixes.size()) {
    value /= 1024.0;
    ++idx;
  }
  char buf[32];
  if (idx == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", value, kSuffixes[idx]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, kSuffixes[idx]);
  }
  return buf;
}

std::string SimDuration::ToString() const {
  char buf[32];
  const double abs_ns = static_cast<double>(ns_ < 0 ? -ns_ : ns_);
  if (abs_ns < 1e3) {
    std::snprintf(buf, sizeof(buf), "%ld ns", static_cast<long>(ns_));
  } else if (abs_ns < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1f us", static_cast<double>(ns_) / 1e3);
  } else if (abs_ns < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", static_cast<double>(ns_) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", static_cast<double>(ns_) / 1e9);
  }
  return buf;
}

}  // namespace trenv
