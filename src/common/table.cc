#include "src/common/table.h"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <sstream>

namespace trenv {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::Pct(double fraction, int precision) {
  return Num(fraction * 100.0, precision) + "%";
}

std::string Table::Ms(double ms, int precision) { return Num(ms, precision) + " ms"; }

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t i = 0; i < row.size(); ++i) {
      os << " " << std::setw(static_cast<int>(widths[i])) << std::left << row[i] << " |";
    }
    os << "\n";
  };
  auto print_sep = [&] {
    os << "+";
    for (size_t w : widths) {
      os << std::string(w + 2, '-') << "+";
    }
    os << "\n";
  };
  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) {
    print_row(row);
  }
  print_sep();
}

std::string Table::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

SeriesPrinter::SeriesPrinter(std::string x_label, std::vector<std::string> series_labels)
    : x_label_(std::move(x_label)), series_labels_(std::move(series_labels)) {}

void SeriesPrinter::AddPoint(double x, std::vector<double> ys) {
  assert(ys.size() == series_labels_.size());
  points_.emplace_back(x, std::move(ys));
}

void SeriesPrinter::Print(std::ostream& os) const {
  os << "# " << x_label_;
  for (const auto& label : series_labels_) {
    os << " " << label;
  }
  os << "\n";
  for (const auto& [x, ys] : points_) {
    os << x;
    for (double y : ys) {
      os << " " << y;
    }
    os << "\n";
  }
}

void PrintBanner(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace trenv
