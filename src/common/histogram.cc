#include "src/common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace trenv {

void Histogram::Record(double value) {
  samples_.push_back(value);
  sum_ += value;
  sum_sq_ += value * value;
  sorted_ = false;
}

void Histogram::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::Min() const {
  assert(!samples_.empty());
  EnsureSorted();
  return samples_.front();
}

double Histogram::Max() const {
  assert(!samples_.empty());
  EnsureSorted();
  return samples_.back();
}

double Histogram::Mean() const {
  if (samples_.empty()) {
    return 0;
  }
  return sum_ / static_cast<double>(samples_.size());
}

double Histogram::Stddev() const {
  const size_t n = samples_.size();
  if (n < 2) {
    return 0;
  }
  // Sample variance from the running moments: (Σx² - n·mean²) / (n-1),
  // clamped at 0 against cancellation when all samples are (nearly) equal.
  const double mean = sum_ / static_cast<double>(n);
  const double var =
      (sum_sq_ - static_cast<double>(n) * mean * mean) / static_cast<double>(n - 1);
  return var > 0 ? std::sqrt(var) : 0;
}

double Histogram::Percentile(double p) const {
  assert(!samples_.empty());
  assert(p >= 0 && p <= 100);
  EnsureSorted();
  if (samples_.size() == 1) {
    return samples_[0];
  }
  const double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::vector<std::pair<double, double>> Histogram::Cdf(size_t max_points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty()) {
    return out;
  }
  EnsureSorted();
  const size_t n = samples_.size();
  const size_t stride = std::max<size_t>(1, n / max_points);
  for (size_t i = 0; i < n; i += stride) {
    out.emplace_back(samples_[i], static_cast<double>(i + 1) / static_cast<double>(n));
  }
  if (out.back().first != samples_.back()) {
    out.emplace_back(samples_.back(), 1.0);
  } else {
    out.back().second = 1.0;
  }
  return out;
}

void Histogram::Clear() {
  samples_.clear();
  sum_ = 0;
  sum_sq_ = 0;
  sorted_ = true;
}

void Histogram::MergeFrom(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
  sorted_ = false;
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  if (samples_.empty()) {
    os << "n=0";
    return os.str();
  }
  os.precision(3);
  os << "n=" << count() << " mean=" << Mean() << " p50=" << Median() << " p99=" << P99()
     << " max=" << Max();
  return os.str();
}

void TimeSeriesGauge::Set(SimTime now, double value) {
  assert(now >= last_update_);
  integral_ += current_ * (now - last_update_).seconds();
  last_update_ = now;
  current_ = value;
  peak_ = std::max(peak_, current_);
  points_.emplace_back(now.seconds(), current_);
}

void TimeSeriesGauge::Add(SimTime now, double delta) { Set(now, current_ + delta); }

double TimeSeriesGauge::TimeIntegral(SimTime end) const {
  return integral_ + current_ * (end - last_update_).seconds();
}

std::vector<std::pair<double, double>> TimeSeriesGauge::Series() const { return points_; }

}  // namespace trenv
