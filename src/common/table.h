// Plain-text table renderer used by the benchmark harnesses to print the
// paper's tables and figure series in a uniform, diff-friendly format.
#ifndef TRENV_COMMON_TABLE_H_
#define TRENV_COMMON_TABLE_H_

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace trenv {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  // Formatting helpers for cells.
  static std::string Num(double v, int precision = 2);
  static std::string Pct(double fraction, int precision = 1);
  static std::string Ms(double ms, int precision = 1);

  void Print(std::ostream& os) const;
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a figure-style numeric series: one "x y1 y2 ..." row per point,
// preceded by a "# x series1 series2" header comment.
class SeriesPrinter {
 public:
  SeriesPrinter(std::string x_label, std::vector<std::string> series_labels);
  void AddPoint(double x, std::vector<double> ys);
  void Print(std::ostream& os) const;

 private:
  std::string x_label_;
  std::vector<std::string> series_labels_;
  std::vector<std::pair<double, std::vector<double>>> points_;
};

// Section banner for bench output, e.g. "=== Figure 17 (W1) ===".
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace trenv

#endif  // TRENV_COMMON_TABLE_H_
