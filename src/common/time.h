// Simulated time. All latencies in the simulator are expressed as SimDuration
// (nanoseconds); SimTime is an absolute instant on the virtual clock.
//
// Nothing in the library ever consults the wall clock: replays of 30-minute
// workload traces finish in milliseconds of real time and are deterministic.
#ifndef TRENV_COMMON_TIME_H_
#define TRENV_COMMON_TIME_H_

#include <cstdint>
#include <limits>
#include <string>

namespace trenv {

// A span of virtual time in nanoseconds. Plain struct with value semantics.
class SimDuration {
 public:
  constexpr SimDuration() : ns_(0) {}
  constexpr explicit SimDuration(int64_t ns) : ns_(ns) {}

  static constexpr SimDuration Nanos(int64_t n) { return SimDuration(n); }
  static constexpr SimDuration Micros(int64_t n) { return SimDuration(n * 1000); }
  static constexpr SimDuration Millis(int64_t n) { return SimDuration(n * 1000 * 1000); }
  static constexpr SimDuration Seconds(int64_t n) { return SimDuration(n * 1000 * 1000 * 1000); }
  static constexpr SimDuration Minutes(int64_t n) { return Seconds(n * 60); }
  static constexpr SimDuration FromSecondsF(double s) {
    return SimDuration(static_cast<int64_t>(s * 1e9));
  }
  static constexpr SimDuration FromMillisF(double ms) {
    return SimDuration(static_cast<int64_t>(ms * 1e6));
  }
  static constexpr SimDuration FromMicrosF(double us) {
    return SimDuration(static_cast<int64_t>(us * 1e3));
  }
  static constexpr SimDuration Zero() { return SimDuration(0); }
  static constexpr SimDuration Max() {
    return SimDuration(std::numeric_limits<int64_t>::max());
  }

  constexpr int64_t nanos() const { return ns_; }
  constexpr double micros() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double millis() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr SimDuration operator+(SimDuration o) const { return SimDuration(ns_ + o.ns_); }
  constexpr SimDuration operator-(SimDuration o) const { return SimDuration(ns_ - o.ns_); }
  constexpr SimDuration operator*(double f) const {
    return SimDuration(static_cast<int64_t>(static_cast<double>(ns_) * f));
  }
  constexpr SimDuration operator/(double f) const {
    return SimDuration(static_cast<int64_t>(static_cast<double>(ns_) / f));
  }
  constexpr double operator/(SimDuration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  SimDuration& operator+=(SimDuration o) {
    ns_ += o.ns_;
    return *this;
  }
  SimDuration& operator-=(SimDuration o) {
    ns_ -= o.ns_;
    return *this;
  }
  constexpr auto operator<=>(const SimDuration&) const = default;

  std::string ToString() const;

 private:
  int64_t ns_;
};

// An absolute instant on the virtual clock (nanoseconds since simulation start).
class SimTime {
 public:
  constexpr SimTime() : ns_(0) {}
  constexpr explicit SimTime(int64_t ns) : ns_(ns) {}

  static constexpr SimTime Zero() { return SimTime(0); }
  static constexpr SimTime Max() { return SimTime(std::numeric_limits<int64_t>::max()); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double millis() const { return static_cast<double>(ns_) / 1e6; }

  constexpr SimTime operator+(SimDuration d) const { return SimTime(ns_ + d.nanos()); }
  constexpr SimTime operator-(SimDuration d) const { return SimTime(ns_ - d.nanos()); }
  constexpr SimDuration operator-(SimTime o) const { return SimDuration(ns_ - o.ns_); }
  SimTime& operator+=(SimDuration d) {
    ns_ += d.nanos();
    return *this;
  }
  constexpr auto operator<=>(const SimTime&) const = default;

 private:
  int64_t ns_;
};

}  // namespace trenv

#endif  // TRENV_COMMON_TIME_H_
