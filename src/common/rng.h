// Deterministic random-number generation for workload synthesis.
//
// The simulator never uses std::random_device or global state: every source of
// randomness is an explicitly seeded Rng so that benchmark runs are replayable.
#ifndef TRENV_COMMON_RNG_H_
#define TRENV_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace trenv {

// xoshiro256** with a SplitMix64 seeder. Small, fast, and good enough
// statistical quality for workload generation.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t NextU64();
  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);
  // Uniform double in [0, 1).
  double NextDouble();
  // Uniform in [lo, hi].
  double NextUniform(double lo, double hi);
  int64_t NextInt(int64_t lo, int64_t hi);
  bool NextBool(double p_true);

  // Exponential with the given mean (> 0). Used for Poisson inter-arrivals.
  double NextExponential(double mean);
  // Normal via Box-Muller.
  double NextNormal(double mean, double stddev);
  // Log-normal parameterized by the mean/stddev of the *underlying* normal.
  double NextLogNormal(double mu, double sigma);
  // Pareto with scale x_m and shape alpha; models heavy-tailed bursts.
  double NextPareto(double x_min, double alpha);
  // Zipf-like rank selection over n items with skew s (s=0 => uniform).
  uint64_t NextZipf(uint64_t n, double s);

  // Derives an independent child generator; convenient for fan-out.
  Rng Fork();

 private:
  uint64_t s_[4];
};

// SplitMix64 single-step; exposed for seeding and for page-content derivation.
uint64_t SplitMix64(uint64_t& state);

// Stateless hash-style mix of a value; used to derive per-page logical content.
uint64_t MixU64(uint64_t v);

}  // namespace trenv

#endif  // TRENV_COMMON_RNG_H_
