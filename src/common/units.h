// Byte-size units and page-size constants shared across the simulator.
#ifndef TRENV_COMMON_UNITS_H_
#define TRENV_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace trenv {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

// The simulated architecture uses 4 KiB base pages, matching x86-64 Linux.
inline constexpr uint64_t kPageSize = 4 * kKiB;
inline constexpr uint64_t kPageShift = 12;
// CXL transfers happen at cache-line granularity.
inline constexpr uint64_t kCacheLineSize = 64;

constexpr uint64_t BytesToPages(uint64_t bytes) {
  return (bytes + kPageSize - 1) / kPageSize;
}

constexpr uint64_t PagesToBytes(uint64_t pages) { return pages * kPageSize; }

constexpr bool IsPageAligned(uint64_t addr) { return (addr & (kPageSize - 1)) == 0; }

constexpr uint64_t PageAlignDown(uint64_t addr) { return addr & ~(kPageSize - 1); }

constexpr uint64_t PageAlignUp(uint64_t addr) {
  return (addr + kPageSize - 1) & ~(kPageSize - 1);
}

// Renders a byte count as a short human-readable string, e.g. "74.0 MiB".
std::string FormatBytes(uint64_t bytes);

}  // namespace trenv

#endif  // TRENV_COMMON_UNITS_H_
