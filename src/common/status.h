// Status and Result<T>: lightweight error propagation for fallible paths.
//
// The simulator follows the os-systems convention of explicit error values on
// every fallible interface instead of exceptions. A Status carries a code and
// a human-readable message; Result<T> is a Status-or-value union.
#ifndef TRENV_COMMON_STATUS_H_
#define TRENV_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace trenv {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfMemory,
  kPermissionDenied,
  kFailedPrecondition,
  kResourceExhausted,
  kUnavailable,
  kInternal,
  kUnimplemented,
};

std::string_view StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  // Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Result<T>: either a value or a non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  Result(Status status) : state_(std::in_place_index<1>, std::move(status)) {
    assert(!std::get<1>(state_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return state_.index() == 0; }

  const T& value() const& {
    assert(ok());
    return std::get<0>(state_);
  }
  T& value() & {
    assert(ok());
    return std::get<0>(state_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<0>(state_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<1>(state_);
  }

  T value_or(T fallback) const {
    if (ok()) {
      return std::get<0>(state_);
    }
    return fallback;
  }

 private:
  std::variant<T, Status> state_;
};

// Propagation helpers in the spirit of absl's RETURN_IF_ERROR / ASSIGN_OR_RETURN.
#define TRENV_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::trenv::Status trenv_status_ = (expr);    \
    if (!trenv_status_.ok()) {                 \
      return trenv_status_;                    \
    }                                          \
  } while (0)

#define TRENV_CONCAT_INNER(a, b) a##b
#define TRENV_CONCAT(a, b) TRENV_CONCAT_INNER(a, b)

#define TRENV_ASSIGN_OR_RETURN(lhs, expr)                      \
  auto TRENV_CONCAT(trenv_result_, __LINE__) = (expr);         \
  if (!TRENV_CONCAT(trenv_result_, __LINE__).ok()) {           \
    return TRENV_CONCAT(trenv_result_, __LINE__).status();     \
  }                                                            \
  lhs = std::move(TRENV_CONCAT(trenv_result_, __LINE__)).value()

}  // namespace trenv

#endif  // TRENV_COMMON_STATUS_H_
