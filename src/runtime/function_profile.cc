#include "src/runtime/function_profile.h"

namespace trenv {

namespace {

FunctionProfile Base(std::string name, std::string lang, std::string desc, double mem_mb,
                     uint32_t threads) {
  FunctionProfile p;
  p.name = std::move(name);
  p.language = std::move(lang);
  p.description = std::move(desc);
  p.image_bytes = static_cast<uint64_t>(mem_mb * static_cast<double>(kMiB));
  p.threads = threads;
  return p;
}

}  // namespace

std::vector<FunctionProfile> Table4Functions() {
  std::vector<FunctionProfile> fns;

  // DH: dynamic web pages. Short, memory-bound (CXL nearly doubles it).
  {
    FunctionProfile p = Base("DH", "python", "Dynamic web pages generating", 50.4, 14);
    p.bootstrap = SimDuration::Millis(620);
    p.exec_cpu = SimDuration::Millis(55);
    p.exec_io = SimDuration::Millis(10);
    p.mem_bound_fraction = 0.9;
    p.pages = {.read_fraction = 0.62, .write_fraction = 0.11, .working_set_fraction = 0.30};
    fns.push_back(p);
  }
  // JS: JSON de/serialization. Short.
  {
    FunctionProfile p = Base("JS", "python", "Deserialize and serialize json", 94.9, 14);
    p.bootstrap = SimDuration::Millis(680);
    p.exec_cpu = SimDuration::Millis(95);
    p.exec_io = SimDuration::Millis(10);
    p.mem_bound_fraction = 0.10;
    p.pages = {.read_fraction = 0.50, .write_fraction = 0.21, .working_set_fraction = 0.32};
    fns.push_back(p);
  }
  // PR: pagerank. Many threads, compute + large touched set.
  {
    FunctionProfile p = Base("PR", "python", "Pagerank algorithm", 116, 395);
    p.bootstrap = SimDuration::Millis(900);
    p.exec_cpu = SimDuration::Millis(620);
    p.exec_io = SimDuration::Millis(15);
    p.mem_bound_fraction = 0.10;
    p.pages = {.read_fraction = 0.48, .write_fraction = 0.30, .working_set_fraction = 0.45};
    fns.push_back(p);
  }
  // IR: ResNet inference. Huge image, short run, read-dominated, mem-bound.
  {
    FunctionProfile p = Base("IR", "python", "Deep learning inference (ResNet)", 855, 141);
    p.bootstrap = SimDuration::Millis(3200);
    p.exec_cpu = SimDuration::Millis(85);
    p.exec_io = SimDuration::Millis(5);
    p.mem_bound_fraction = 0.85;
    p.pages = {.read_fraction = 0.72, .write_fraction = 0.08, .working_set_fraction = 0.55};
    fns.push_back(p);
  }
  // IP: image rotate/flip. Compute-bound.
  {
    FunctionProfile p = Base("IP", "python", "Image rotating and flipping", 67.1, 15);
    p.bootstrap = SimDuration::Millis(650);
    p.exec_cpu = SimDuration::Millis(310);
    p.exec_io = SimDuration::Millis(30);
    p.mem_bound_fraction = 0.08;
    p.pages = {.read_fraction = 0.42, .write_fraction = 0.23, .working_set_fraction = 0.35};
    fns.push_back(p);
  }
  // VP: video gray-scale. Compute-intensive, long.
  {
    FunctionProfile p = Base("VP", "python", "Gray-scale effect on video", 324, 204);
    p.bootstrap = SimDuration::Millis(1100);
    p.exec_cpu = SimDuration::Millis(1500);
    p.exec_io = SimDuration::Millis(120);
    p.mem_bound_fraction = 0.06;
    p.pages = {.read_fraction = 0.33, .write_fraction = 0.33, .working_set_fraction = 0.40};
    fns.push_back(p);
  }
  // CH: HTML table rendering. I/O-intensive.
  {
    FunctionProfile p = Base("CH", "python", "HTML tables rendering", 94.9, 38);
    p.bootstrap = SimDuration::Millis(700);
    p.exec_cpu = SimDuration::Millis(240);
    p.exec_io = SimDuration::Millis(420);
    p.mem_bound_fraction = 0.07;
    p.pages = {.read_fraction = 0.49, .write_fraction = 0.21, .working_set_fraction = 0.30};
    fns.push_back(p);
  }
  // CR: AES encryption in Node.js. ~500 ms execution (section 9.2.1).
  {
    FunctionProfile p = Base("CR", "nodejs", "AES encryption algorithm", 124, 16);
    p.bootstrap = SimDuration::Millis(520);
    p.exec_cpu = SimDuration::Millis(500);
    p.exec_io = SimDuration::Millis(10);
    p.mem_bound_fraction = 0.12;
    p.pages = {.read_fraction = 0.39, .write_fraction = 0.32, .working_set_fraction = 0.38};
    fns.push_back(p);
  }
  // JJS: Node.js JSON (port of JS).
  {
    FunctionProfile p = Base("JJS", "nodejs", "JSON de/serialization (Node.js)", 111, 21);
    p.bootstrap = SimDuration::Millis(480);
    p.exec_cpu = SimDuration::Millis(105);
    p.exec_io = SimDuration::Millis(10);
    p.mem_bound_fraction = 0.10;
    p.pages = {.read_fraction = 0.51, .write_fraction = 0.24, .working_set_fraction = 0.33};
    fns.push_back(p);
  }
  // IFR: Node.js image processing (port of IP). Write-heavy: Fig 10's low
  // end (~24% read-only) and the Fig 18b CoW-heavy case.
  {
    FunctionProfile p = Base("IFR", "nodejs", "Image rotating and flipping (Node.js)", 253, 21);
    p.bootstrap = SimDuration::Millis(560);
    p.exec_cpu = SimDuration::Millis(340);
    p.exec_io = SimDuration::Millis(25);
    p.mem_bound_fraction = 0.1;
    p.pages = {.read_fraction = 0.13, .write_fraction = 0.42, .working_set_fraction = 0.50};
    fns.push_back(p);
  }
  return fns;
}

const FunctionProfile* FindTable4Function(const std::string& name) {
  static const std::vector<FunctionProfile> kFunctions = Table4Functions();
  for (const auto& fn : kFunctions) {
    if (fn.name == name) {
      return &fn;
    }
  }
  return nullptr;
}

}  // namespace trenv
