// Simulated processes and function instances. A FunctionInstance is what a
// restore engine produces: one or more processes (each with an MmStruct)
// running inside a sandbox.
#ifndef TRENV_RUNTIME_PROCESS_H_
#define TRENV_RUNTIME_PROCESS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/simkernel/mm_struct.h"

namespace trenv {

class Process {
 public:
  Process(uint64_t pid, std::string name, uint32_t threads, uint32_t open_fds)
      : pid_(pid), name_(std::move(name)), threads_(threads), open_fds_(open_fds) {}

  uint64_t pid() const { return pid_; }
  const std::string& name() const { return name_; }
  uint32_t threads() const { return threads_; }
  uint32_t open_fds() const { return open_fds_; }

  MmStruct& mm() { return mm_; }
  const MmStruct& mm() const { return mm_; }

 private:
  uint64_t pid_;
  std::string name_;
  uint32_t threads_;
  uint32_t open_fds_;
  MmStruct mm_;
};

// Monotonic pid source per simulated node.
class PidAllocator {
 public:
  uint64_t Next() { return next_++; }

 private:
  uint64_t next_ = 1000;
};

}  // namespace trenv

#endif  // TRENV_RUNTIME_PROCESS_H_
