// ExecutionModel: turns a function profile plus the restore-time memory
// situation into a concrete execution plan for one invocation.
//
// Lazy restoration does not eliminate restore cost, it moves it into the
// execution phase (paper section 3.3) — `ExecutionOverheads` is how each
// engine expresses that deferred cost.
#ifndef TRENV_RUNTIME_EXECUTION_MODEL_H_
#define TRENV_RUNTIME_EXECUTION_MODEL_H_

#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/runtime/function_profile.h"

namespace trenv {

// What an engine's restore strategy costs during execution.
struct ExecutionOverheads {
  // Serial latency added by faults (userfaultfd round trips, RDMA fetches,
  // CoW copies) — extends wall time but not CPU demand.
  SimDuration added_latency;
  // Extra CPU demand (e.g. RDMA completion handling).
  SimDuration added_cpu;
  // Multiplier on the profile's CPU work from slower memory (CXL direct
  // loads): 1.0 = DRAM-resident.
  double cpu_multiplier = 1.0;
};

// A concrete plan for one invocation's execution phase.
struct ExecutionPlan {
  SimDuration cpu_work;       // submitted to the fair-share CPU
  SimDuration io_wait;        // pure waiting (no CPU)
  SimDuration fault_latency;  // serial fault overhead
};

class ExecutionModel {
 public:
  explicit ExecutionModel(uint64_t seed) : rng_(seed) {}

  ExecutionPlan Plan(const FunctionProfile& profile, const ExecutionOverheads& overheads);

  // The CXL slowdown multiplier for a profile (paper section 9.2.1: ~2x for
  // short memory-bound functions, ~10% on average otherwise).
  static double CxlCpuMultiplier(const FunctionProfile& profile);

 private:
  Rng rng_;
};

}  // namespace trenv

#endif  // TRENV_RUNTIME_EXECUTION_MODEL_H_
