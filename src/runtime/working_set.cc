#include "src/runtime/working_set.h"

#include <algorithm>
#include <cstddef>

namespace trenv {

size_t PageRunSet::FirstReaching(Vpn vpn) const {
  return static_cast<size_t>(
      std::lower_bound(runs_.begin(), runs_.end(), vpn,
                       [](const PageRun& r, Vpn v) { return r.vpn + r.npages < v; }) -
      runs_.begin());
}

void PageRunSet::Add(Vpn vpn, uint64_t npages) {
  if (npages == 0) {
    return;
  }
  Vpn end = vpn + npages;
  // Window of runs that overlap or abut [vpn, end): they all merge into one.
  const size_t lo = FirstReaching(vpn);
  size_t hi = lo;
  while (hi < runs_.size() && runs_[hi].vpn <= end) {
    vpn = std::min(vpn, runs_[hi].vpn);
    end = std::max(end, runs_[hi].vpn + runs_[hi].npages);
    pages_ -= runs_[hi].npages;
    ++hi;
  }
  const PageRun merged{vpn, end - vpn};
  if (lo < hi) {
    runs_[lo] = merged;
    runs_.erase(runs_.begin() + static_cast<ptrdiff_t>(lo + 1),
                runs_.begin() + static_cast<ptrdiff_t>(hi));
  } else {
    runs_.insert(runs_.begin() + static_cast<ptrdiff_t>(lo), merged);
  }
  pages_ += merged.npages;
}

uint64_t PageRunSet::OverlapPages(Vpn vpn, uint64_t npages) const {
  if (npages == 0) {
    return 0;
  }
  const Vpn end = vpn + npages;
  uint64_t covered = 0;
  for (size_t i = FirstReaching(vpn); i < runs_.size() && runs_[i].vpn < end; ++i) {
    const Vpn lo = std::max(runs_[i].vpn, vpn);
    const Vpn hi = std::min(runs_[i].vpn + runs_[i].npages, end);
    if (hi > lo) {
      covered += hi - lo;
    }
  }
  return covered;
}

}  // namespace trenv
