#include "src/runtime/execution_model.h"

#include <algorithm>
#include <cmath>

#include "src/common/cost_model.h"

namespace trenv {

double ExecutionModel::CxlCpuMultiplier(const FunctionProfile& profile) {
  return 1.0 + cost::kCxlExecSlowdownPerMemBoundFraction * profile.mem_bound_fraction;
}

ExecutionPlan ExecutionModel::Plan(const FunctionProfile& profile,
                                   const ExecutionOverheads& overheads) {
  // Lognormal noise with unit mean: exec time varies run to run (LLM-free
  // functions still jitter with input size and allocator behaviour).
  const double cv = std::max(0.0, profile.exec_noise_cv);
  double noise = 1.0;
  if (cv > 0) {
    const double sigma = std::sqrt(std::log(1.0 + cv * cv));
    noise = rng_.NextLogNormal(-sigma * sigma / 2.0, sigma);
  }
  ExecutionPlan plan;
  plan.cpu_work = profile.exec_cpu * (noise * overheads.cpu_multiplier) + overheads.added_cpu;
  plan.io_wait = profile.exec_io * noise;
  plan.fault_latency = overheads.added_latency;
  return plan;
}

}  // namespace trenv
