#include "src/runtime/process.h"

// Header-only implementation; this TU anchors the module in the build.
