// FunctionProfile: everything the platform knows about a serverless function
// — image size, thread/process structure, execution model, and page-access
// behaviour. The built-in profiles reproduce Table 4 of the paper (SeBS /
// FunctionBench workloads, Python and Node.js).
#ifndef TRENV_RUNTIME_FUNCTION_PROFILE_H_
#define TRENV_RUNTIME_FUNCTION_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/interner.h"
#include "src/common/time.h"
#include "src/common/units.h"
#include "src/sandbox/cgroup.h"

namespace trenv {

// Per-invocation page behaviour, measured the way the paper measures Fig 10:
// restore a snapshot, run one invocation, count pages read vs written.
struct PageProfile {
  // Fraction of snapshot-image pages that are read during one invocation.
  double read_fraction = 0.5;
  // Fraction of image pages written (these CoW when the image is shared).
  double write_fraction = 0.2;
  // REAP/FaaSnap working-set fraction (pages their recorded WS prefetches).
  double working_set_fraction = 0.35;

  // Of the pages *used* in an invocation, the fraction that stays read-only —
  // the quantity Fig 10 reports (24%..90% across functions).
  double ReadOnlyRatio() const {
    const double used = read_fraction + write_fraction;
    return used <= 0 ? 0 : read_fraction / used;
  }
};

struct FunctionProfile {
  std::string name;
  // Interned id for `name`, set at deployment (FunctionRegistry::Deploy).
  // Profiles constructed by hand carry kInvalidFunctionId; hot-path consumers
  // fall back to a global-interner lookup via FunctionIdOf below.
  FunctionId id = kInvalidFunctionId;
  std::string language;  // "python" or "nodejs"
  std::string description;
  // Identity of the function's *software* for snapshot content purposes.
  // Empty (the default) means the function's own name: its code/heap pages
  // are unlike anyone else's. Setting it to another function's tag declares
  // the two images byte-identical — e.g. the same app deployed per tenant —
  // which the dedup store then collapses to one stored copy.
  std::string content_tag;

  uint64_t image_bytes = 64 * kMiB;  // post-initialization snapshot size
  uint32_t threads = 1;              // threads CRIU must restore (Table 4)
  uint32_t processes = 1;
  uint32_t open_fds = 24;

  // Cold-start bootstrap: interpreter launch + imports + user init.
  SimDuration bootstrap = SimDuration::Millis(500);
  // Execution-phase demands on a warm, DRAM-resident instance.
  SimDuration exec_cpu = SimDuration::Millis(100);
  SimDuration exec_io = SimDuration::Millis(20);
  // Coefficient of variation of execution time (lognormal noise).
  double exec_noise_cv = 0.08;
  // How sensitive execution is to memory latency: 1.0 doubles CPU time when
  // hot data lives on CXL (paper: DH and IR nearly double; average ~+10%).
  double mem_bound_fraction = 0.1;

  PageProfile pages;
  CgroupLimits limits;

  uint64_t ImagePages() const { return BytesToPages(image_bytes); }
};

// The profile's interned id, resolving hand-built profiles (id unset) through
// the global interner. Valid for any profile whose name has been interned —
// i.e. after any engine's Prepare or a registry Deploy has seen it.
inline FunctionId FunctionIdOf(const FunctionProfile& profile) {
  return profile.id != kInvalidFunctionId ? profile.id
                                          : GlobalFunctionInterner().Find(profile.name);
}

// The ten evaluated functions of Table 4 with calibrated profiles.
std::vector<FunctionProfile> Table4Functions();
// Lookup by short name (DH, JS, PR, IR, IP, VP, CH, CR, JJS, IFR).
const FunctionProfile* FindTable4Function(const std::string& name);

}  // namespace trenv

#endif  // TRENV_RUNTIME_FUNCTION_PROFILE_H_
