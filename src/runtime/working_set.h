// Recorded first-invocation working sets (REAP-style, section 3.3 / TrEnv-X).
//
// The first invocation after an mm-template attach major-faults every page it
// touches; the fault footprint, kept as a compact sorted page-run profile per
// (function, process), is exactly the set a later attach wants resident
// before execution starts. The store uses the same flat sorted-run
// representation as the page table: recording coalesces adjacent faults in
// place, and replay walks O(runs), not O(pages).
#ifndef TRENV_RUNTIME_WORKING_SET_H_
#define TRENV_RUNTIME_WORKING_SET_H_

#include <cstdint>
#include <vector>

#include "src/simkernel/types.h"

namespace trenv {

// One recorded page run (virtual pages in the template's address space).
struct PageRun {
  Vpn vpn = 0;
  uint64_t npages = 0;
};

// A sorted, disjoint, coalesced set of page runs. Insertion merges with
// abutting/overlapping neighbours in one splice, so a fault storm that
// touches a region front-to-back records as a single run.
class PageRunSet {
 public:
  // Adds [vpn, vpn + npages), merging with overlapping/adjacent runs.
  void Add(Vpn vpn, uint64_t npages);

  uint64_t pages() const { return pages_; }
  uint64_t run_count() const { return runs_.size(); }
  bool empty() const { return runs_.empty(); }
  const std::vector<PageRun>& runs() const { return runs_; }

  // Pages of [vpn, vpn + npages) covered by the set (promotion heat: how many
  // recorded working-set pages land in a placed chunk's window).
  uint64_t OverlapPages(Vpn vpn, uint64_t npages) const;

 private:
  // Index of the first run whose end lies at/past `vpn`.
  size_t FirstReaching(Vpn vpn) const;

  std::vector<PageRun> runs_;  // sorted by vpn, pairwise disjoint
  uint64_t pages_ = 0;
};

// The recorded fault footprint of one function's first invocation, one run
// set per process (processes can overlap in virtual address space, so the
// sets cannot be merged). `complete` flips once the recording invocation
// finished; partially recorded profiles are never replayed.
struct WorkingSetProfile {
  std::vector<PageRunSet> processes;
  bool complete = false;

  uint64_t TotalPages() const {
    uint64_t total = 0;
    for (const PageRunSet& set : processes) {
      total += set.pages();
    }
    return total;
  }
  uint64_t TotalRuns() const {
    uint64_t total = 0;
    for (const PageRunSet& set : processes) {
      total += set.run_count();
    }
    return total;
  }
};

}  // namespace trenv

#endif  // TRENV_RUNTIME_WORKING_SET_H_
