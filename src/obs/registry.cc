#include "src/obs/registry.h"

namespace trenv {
namespace obs {

Counter* Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::unique_ptr<Counter>(new Counter(std::string(name))))
             .first;
  }
  return it->second.get();
}

Gauge* Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::unique_ptr<Gauge>(new Gauge(std::string(name))))
             .first;
  }
  return it->second.get();
}

const Counter* Registry::FindCounter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* Registry::FindGauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
}

Registry& DefaultRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

}  // namespace obs
}  // namespace trenv
