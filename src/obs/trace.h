// obs::Tracer: hierarchical spans stamped with the simulation's virtual time.
//
// A span is one phase of one invocation — "restore.sandbox", "mmt.attach",
// "exec.cpu" — placed on a (process, track) pair: the process is one platform
// / evaluated system (it owns the virtual clock), the track is one concurrent
// strand inside it (the platform uses its invocation token). Spans on the
// same track nest: StartSpan parents a new span under the track's innermost
// open span, which is exactly the invocation → restore → fault → fetch
// hierarchy when the call sites bracket their phases.
//
// Because the platform is event-driven, phases of one invocation start and
// end in different scheduler callbacks; span ids are plain values that live
// in the caller's state (e.g. the platform's InFlight record) between events.
// ScopedSpan covers the synchronous sections.
//
// Cost when disabled: every entry point checks one branch and returns; no
// allocation, no clock read, no map touch. Call sites may also simply hold a
// null Tracer* — ScopedSpan and all methods-on-null-free helpers tolerate it.
#ifndef TRENV_OBS_TRACE_H_
#define TRENV_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "src/common/time.h"

namespace trenv {
namespace obs {

using SpanId = uint64_t;
inline constexpr SpanId kInvalidSpanId = 0;

using ProcessId = uint64_t;

// Where a span lives: which registered process (clock domain) and which
// track (concurrent strand — e.g. an invocation token) inside it.
struct Loc {
  ProcessId pid = 0;
  uint64_t track = 0;
};

// Span annotation value: integers, floating point, or strings.
using AnnotationValue = std::variant<int64_t, double, std::string>;

struct Span {
  SpanId id = kInvalidSpanId;
  SpanId parent = kInvalidSpanId;
  std::string name;
  std::string category;
  Loc loc;
  SimTime start;
  SimTime end;
  bool open = false;
  bool instant = false;
  // Wall-clock duration of the simulator itself (self-profiling), captured
  // only when the tracer's capture_wall_time option is on.
  double wall_us = 0.0;
  std::vector<std::pair<std::string, AnnotationValue>> args;

  SimDuration duration() const { return end - start; }
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Tracing is on by default for a constructed tracer; instrumented code that
  // was handed no tracer at all passes nullptr and pays only a null check.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Also stamp spans with the wall-clock time the simulator spent inside
  // them (profiling the simulator, not the simulation).
  void set_capture_wall_time(bool capture) { capture_wall_time_ = capture; }

  // Registers a clock domain (one platform / scheduler). All spans at a Loc
  // with this pid are stamped by `clock`. Returns the pid to put in Locs.
  ProcessId RegisterProcess(std::string name, std::function<SimTime()> clock);

  // Virtual "now" of a process (Zero for unknown pids).
  SimTime now(ProcessId pid) const;

  // Opens a span at the process's current virtual time. The parent is the
  // innermost span still open on the same (pid, track); pass `parent`
  // explicitly to override. Returns kInvalidSpanId when disabled.
  SpanId StartSpan(Loc loc, std::string_view name, std::string_view category = {},
                   SpanId parent = kInvalidSpanId);

  // Closes a span at its process's current virtual time. No-op on
  // kInvalidSpanId or an already-closed span.
  void EndSpan(SpanId id);

  // Records an already-timed span (event-driven phases whose begin/end the
  // caller computed). Does not interact with the open-span stack.
  SpanId RecordSpanAt(Loc loc, std::string_view name, std::string_view category, SimTime start,
                      SimDuration duration, SpanId parent = kInvalidSpanId);

  // A zero-duration marker (dispatch decisions, evictions).
  SpanId Instant(Loc loc, std::string_view name, std::string_view category = {});

  // Attaches a key/value to a span. No-op on kInvalidSpanId.
  void Annotate(SpanId id, std::string_view key, AnnotationValue value);

  // Appends everything `other` recorded, remapping its process and span ids
  // into this tracer. Parallel sweeps use this: each run records into a
  // private tracer, and the per-run tracers merge into the main one in
  // deterministic run order after the sweep joins. All of `other`'s spans
  // should be closed; merged processes carry no clock (spans keep their
  // recorded times, but new spans at those pids would stamp time Zero).
  void MergeFrom(const Tracer& other);

  // Introspection (exporters, tests).
  const std::vector<Span>& spans() const { return spans_; }
  const Span* Find(SpanId id) const;
  size_t open_span_count() const;
  const std::map<ProcessId, std::string>& process_names() const { return process_names_; }
  void Clear();

 private:
  Span* Mutable(SpanId id);

  bool enabled_ = true;
  bool capture_wall_time_ = false;
  ProcessId next_pid_ = 1;
  std::map<ProcessId, std::string> process_names_;
  std::map<ProcessId, std::function<SimTime()>> clocks_;
  // Span id = index into spans_ + 1, so lookup is O(1).
  std::vector<Span> spans_;
  // Innermost-open-span stacks, keyed by (pid, track).
  std::map<std::pair<ProcessId, uint64_t>, std::vector<SpanId>> open_;
  // Wall-clock start stamps for open spans (self-profiling only).
  std::map<SpanId, std::chrono::steady_clock::time_point> wall_starts_;
};

// RAII span for synchronous sections. Tolerates a null tracer.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, Loc loc, std::string_view name, std::string_view category = {})
      : tracer_(tracer),
        id_(tracer != nullptr ? tracer->StartSpan(loc, name, category) : kInvalidSpanId) {}
  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->EndSpan(id_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void Annotate(std::string_view key, AnnotationValue value) {
    if (tracer_ != nullptr) {
      tracer_->Annotate(id_, key, std::move(value));
    }
  }
  SpanId id() const { return id_; }

 private:
  Tracer* tracer_;
  SpanId id_;
};

}  // namespace obs
}  // namespace trenv

#endif  // TRENV_OBS_TRACE_H_
