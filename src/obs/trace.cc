#include "src/obs/trace.h"

#include <algorithm>

namespace trenv {
namespace obs {

ProcessId Tracer::RegisterProcess(std::string name, std::function<SimTime()> clock) {
  const ProcessId pid = next_pid_++;
  process_names_.emplace(pid, std::move(name));
  clocks_.emplace(pid, std::move(clock));
  return pid;
}

SimTime Tracer::now(ProcessId pid) const {
  auto it = clocks_.find(pid);
  return it == clocks_.end() || !it->second ? SimTime::Zero() : it->second();
}

SpanId Tracer::StartSpan(Loc loc, std::string_view name, std::string_view category,
                         SpanId parent) {
  if (!enabled_) {
    return kInvalidSpanId;
  }
  auto& stack = open_[{loc.pid, loc.track}];
  if (parent == kInvalidSpanId && !stack.empty()) {
    parent = stack.back();
  }
  Span span;
  span.id = spans_.size() + 1;
  span.parent = parent;
  span.name = std::string(name);
  span.category = std::string(category);
  span.loc = loc;
  span.start = now(loc.pid);
  span.end = span.start;
  span.open = true;
  spans_.push_back(std::move(span));
  stack.push_back(spans_.back().id);
  if (capture_wall_time_) {
    wall_starts_.emplace(spans_.back().id, std::chrono::steady_clock::now());
  }
  return spans_.back().id;
}

void Tracer::EndSpan(SpanId id) {
  Span* span = Mutable(id);
  if (span == nullptr || !span->open) {
    return;
  }
  span->end = now(span->loc.pid);
  span->open = false;
  auto stack_it = open_.find({span->loc.pid, span->loc.track});
  if (stack_it != open_.end()) {
    auto& stack = stack_it->second;
    stack.erase(std::remove(stack.begin(), stack.end(), id), stack.end());
    if (stack.empty()) {
      open_.erase(stack_it);
    }
  }
  if (capture_wall_time_) {
    auto wall_it = wall_starts_.find(id);
    if (wall_it != wall_starts_.end()) {
      span->wall_us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - wall_it->second)
                          .count();
      wall_starts_.erase(wall_it);
    }
  }
}

SpanId Tracer::RecordSpanAt(Loc loc, std::string_view name, std::string_view category,
                            SimTime start, SimDuration duration, SpanId parent) {
  if (!enabled_) {
    return kInvalidSpanId;
  }
  Span span;
  span.id = spans_.size() + 1;
  span.parent = parent;
  span.name = std::string(name);
  span.category = std::string(category);
  span.loc = loc;
  span.start = start;
  span.end = start + duration;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

SpanId Tracer::Instant(Loc loc, std::string_view name, std::string_view category) {
  if (!enabled_) {
    return kInvalidSpanId;
  }
  const SimTime t = now(loc.pid);
  const SpanId id = RecordSpanAt(loc, name, category, t, SimDuration::Zero());
  Span* span = Mutable(id);
  if (span != nullptr) {
    span->instant = true;
  }
  return id;
}

void Tracer::Annotate(SpanId id, std::string_view key, AnnotationValue value) {
  Span* span = Mutable(id);
  if (span == nullptr) {
    return;
  }
  span->args.emplace_back(std::string(key), std::move(value));
}

void Tracer::MergeFrom(const Tracer& other) {
  if (!enabled_) {
    return;
  }
  std::map<ProcessId, ProcessId> pid_map;
  for (const auto& [pid, name] : other.process_names_) {
    pid_map[pid] = RegisterProcess(name, nullptr);
  }
  const SpanId id_base = spans_.size();
  for (const Span& span : other.spans_) {
    Span copy = span;
    copy.id += id_base;
    if (copy.parent != kInvalidSpanId) {
      copy.parent += id_base;
    }
    auto it = pid_map.find(copy.loc.pid);
    if (it != pid_map.end()) {
      copy.loc.pid = it->second;
    }
    spans_.push_back(std::move(copy));
  }
}

const Span* Tracer::Find(SpanId id) const {
  if (id == kInvalidSpanId || id > spans_.size()) {
    return nullptr;
  }
  return &spans_[id - 1];
}

Span* Tracer::Mutable(SpanId id) {
  if (id == kInvalidSpanId || id > spans_.size()) {
    return nullptr;
  }
  return &spans_[id - 1];
}

size_t Tracer::open_span_count() const {
  size_t n = 0;
  for (const auto& [key, stack] : open_) {
    n += stack.size();
  }
  return n;
}

void Tracer::Clear() {
  spans_.clear();
  open_.clear();
  wall_starts_.clear();
}

}  // namespace obs
}  // namespace trenv
