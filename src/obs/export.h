// Trace/metric exporters:
//
//   WriteChromeTrace  - Chrome trace_event JSON ("X"/"i" phases, virtual
//                       microseconds). Open the file in chrome://tracing or
//                       https://ui.perfetto.dev to see each invocation's
//                       restore/fault/fetch phases on its own track.
//   WritePrometheusText - Prometheus exposition-format dump of a Registry
//                       (counter/gauge totals at end of run).
#ifndef TRENV_OBS_EXPORT_H_
#define TRENV_OBS_EXPORT_H_

#include <ostream>
#include <string>

#include "src/common/status.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"

namespace trenv {
namespace obs {

// Writes the tracer's spans as Chrome trace_event JSON. If `registry` is
// non-null its counters/gauges are embedded as one final "C" sample per
// instrument so Perfetto shows end-of-run totals alongside the spans.
void WriteChromeTrace(const Tracer& tracer, std::ostream& out,
                      const Registry* registry = nullptr);
Status WriteChromeTraceFile(const Tracer& tracer, const std::string& path,
                            const Registry* registry = nullptr);

// Prometheus text exposition format. Instrument names are sanitized to
// [a-zA-Z0-9_:] ("pool.rdma.fetch_pages" -> "pool_rdma_fetch_pages").
void WritePrometheusText(const Registry& registry, std::ostream& out);
Status WritePrometheusFile(const Registry& registry, const std::string& path);

// JSON string escaping (shared with tests that parse the output back).
std::string JsonEscape(std::string_view s);

}  // namespace obs
}  // namespace trenv

#endif  // TRENV_OBS_EXPORT_H_
