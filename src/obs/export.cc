#include "src/obs/export.h"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace trenv {
namespace obs {

namespace {

std::string FormatDouble(double v) {
  if (!std::isfinite(v)) {
    return "0";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void WriteAnnotationValue(const AnnotationValue& value, std::ostream& out) {
  if (const auto* i = std::get_if<int64_t>(&value)) {
    out << *i;
  } else if (const auto* d = std::get_if<double>(&value)) {
    out << FormatDouble(*d);
  } else {
    out << '"' << JsonEscape(std::get<std::string>(value)) << '"';
  }
}

void WriteArgs(const Span& span, std::ostream& out) {
  out << "{";
  bool first = true;
  for (const auto& [key, value] : span.args) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << '"' << JsonEscape(key) << "\":";
    WriteAnnotationValue(value, out);
  }
  if (span.open) {
    out << (first ? "" : ",") << "\"unfinished\":true";
  }
  out << "}";
}

double ToTraceUs(SimTime t) { return static_cast<double>(t.nanos()) / 1e3; }

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void WriteChromeTrace(const Tracer& tracer, std::ostream& out, const Registry* registry) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\n";
  };

  // Process-name metadata so the UI labels each system/platform.
  for (const auto& [pid, name] : tracer.process_names()) {
    sep();
    out << "{\"ph\":\"M\",\"pid\":" << pid
        << ",\"name\":\"process_name\",\"args\":{\"name\":\"" << JsonEscape(name) << "\"}}";
  }

  SimTime last = SimTime::Zero();
  for (const Span& span : tracer.spans()) {
    sep();
    if (span.instant) {
      out << "{\"ph\":\"i\",\"s\":\"t\"";
    } else {
      out << "{\"ph\":\"X\",\"dur\":" << FormatDouble(ToTraceUs(span.end) - ToTraceUs(span.start));
    }
    out << ",\"pid\":" << span.loc.pid << ",\"tid\":" << span.loc.track
        << ",\"ts\":" << FormatDouble(ToTraceUs(span.start)) << ",\"name\":\""
        << JsonEscape(span.name) << "\"";
    if (!span.category.empty()) {
      out << ",\"cat\":\"" << JsonEscape(span.category) << "\"";
    }
    if (span.wall_us > 0.0) {
      out << ",\"wall_us\":" << FormatDouble(span.wall_us);
    }
    out << ",\"args\":";
    WriteArgs(span, out);
    out << "}";
    last = std::max(last, span.end);
  }

  // One end-of-run sample per instrument, as Chrome counter events.
  if (registry != nullptr) {
    for (const auto& [name, counter] : registry->counters()) {
      sep();
      out << "{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":" << FormatDouble(ToTraceUs(last))
          << ",\"name\":\"" << JsonEscape(name) << "\",\"args\":{\"value\":"
          << FormatDouble(counter->value()) << "}}";
    }
    for (const auto& [name, gauge] : registry->gauges()) {
      sep();
      out << "{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":" << FormatDouble(ToTraceUs(last))
          << ",\"name\":\"" << JsonEscape(name) << "\",\"args\":{\"value\":"
          << FormatDouble(gauge->value()) << ",\"max\":" << FormatDouble(gauge->max()) << "}}";
    }
  }
  out << "\n]}\n";
}

Status WriteChromeTraceFile(const Tracer& tracer, const std::string& path,
                            const Registry* registry) {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot open trace output file: " + path);
  }
  WriteChromeTrace(tracer, out, registry);
  return out.good() ? Status::Ok() : Status::Internal("write failed: " + path);
}

namespace {

std::string PrometheusName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

}  // namespace

void WritePrometheusText(const Registry& registry, std::ostream& out) {
  for (const auto& [name, counter] : registry.counters()) {
    const std::string prom = PrometheusName(name);
    out << "# TYPE " << prom << " counter\n";
    out << prom << " " << FormatDouble(counter->value()) << "\n";
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    const std::string prom = PrometheusName(name);
    out << "# TYPE " << prom << " gauge\n";
    out << prom << " " << FormatDouble(gauge->value()) << "\n";
    out << "# TYPE " << prom << "_max gauge\n";
    out << prom << "_max " << FormatDouble(gauge->max()) << "\n";
  }
}

Status WritePrometheusFile(const Registry& registry, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot open metrics output file: " + path);
  }
  WritePrometheusText(registry, out);
  return out.good() ? Status::Ok() : Status::Internal("write failed: " + path);
}

}  // namespace obs
}  // namespace trenv
