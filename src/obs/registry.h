// obs::Registry: named counters and gauges usable from any layer without
// plumbing MetricsCollector through constructors.
//
// Instruments are created on first use and live as long as the registry, so
// call sites can look a counter up once and keep the pointer — the hot-path
// cost of bumping a counter is a single `double` addition. A process-wide
// DefaultRegistry() exists for layers with no natural owner (the mm-template
// device, memory pools); components that want isolated accounting (the
// platform's MetricsCollector, tests) own a Registry of their own.
//
// Threading: instrument creation/lookup (GetCounter, GetGauge, Find*, Reset)
// is guarded by a mutex so concurrent sweep runs may touch the shared
// DefaultRegistry() — e.g. transient default bindings during construction —
// without racing. Counter::Add is an atomic CAS loop so counters bound to
// shared devices (the rack's CXL pool) survive concurrent per-shard drains;
// Gauge mutation stays lock-free-unsynchronized, so each concurrent
// simulation must own the gauges it writes (a sharded cluster run sets
// shared gauges only from the coordinator, between epochs). The
// counters()/gauges() iteration accessors require external quiescence
// (exporters run after the sweeps have joined).
#ifndef TRENV_OBS_REGISTRY_H_
#define TRENV_OBS_REGISTRY_H_

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace trenv {
namespace obs {

// A monotonically increasing total (invocations, pages fetched, CPU-seconds).
// Reset() is for experiment windows, not for call sites.
//
// Add is a lock-free CAS loop: counters bound to SHARED devices (the rack's
// CXL pool) are bumped concurrently by per-shard drains in a sharded cluster
// run. Integer-valued deltas well below 2^53 commute exactly in a double, so
// the final total is independent of shard interleaving — the property the
// byte-identical-at-any---shards contract leans on. (A plain fetch_add on
// std::atomic<double> needs C++20 library support that is uneven across
// toolchains; the CAS loop is the portable spelling.)
class Counter {
 public:
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  void Increment() { Add(1.0); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  double value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<double> value_{0.0};
};

// A sampled instantaneous value (pool occupancy, open streams). Remembers its
// high-water mark for end-of-run reporting.
class Gauge {
 public:
  void Set(double v) {
    value_ = v;
    max_ = std::max(max_, v);
  }
  void Add(double delta) { Set(value_ + delta); }
  void Reset() {
    value_ = 0.0;
    max_ = 0.0;
  }

  double value() const { return value_; }
  double max() const { return max_; }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  std::string name_;
  double value_ = 0.0;
  double max_ = 0.0;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Returns the instrument named `name`, creating it on first use. The
  // returned pointer is stable for the registry's lifetime.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);

  // Lookup without creation; nullptr if the instrument does not exist.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;

  // Zeroes every instrument's value but keeps the instruments themselves, so
  // cached pointers stay valid across experiment windows.
  void Reset();

  // Sorted-by-name iteration for the exporters.
  const std::map<std::string, std::unique_ptr<Counter>, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>, std::less<>>& gauges() const {
    return gauges_;
  }

 private:
  mutable std::mutex mu_;  // guards the maps, not the instrument values
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
};

// The process-wide registry for layers that have no owner to plumb one from.
Registry& DefaultRegistry();

}  // namespace obs
}  // namespace trenv

#endif  // TRENV_OBS_REGISTRY_H_
