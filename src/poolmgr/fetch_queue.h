// Per-NIC remote-fetch queue: batching, coalescing, and incast-aware
// queueing for template-shard transfers into a worker node.
//
// A lease miss needs shards from several pool nodes at once. The worker's
// NIC is the shared resource: requests issued at the same instant to the
// same source coalesce into one transfer (amortizing the per-op round
// trip), while transfers from *distinct* sources land on one receive
// pipeline simultaneously — the classic incast pattern — and pay a
// super-linear queueing penalty on top of the fabric's own load-dependent
// latency (RdmaPool already models per-stream NIC cache pressure; the
// queue opens one stream per source so that model sees the fan-in).
//
// The queue itself is work-conserving in virtual time: a NIC busy draining
// an earlier batch delays the next one by exactly the residual busy time,
// so back-to-back attaches on one worker serialize while attaches on
// different workers proceed in parallel. Everything is deterministic given
// the fabric backend's state.
#ifndef TRENV_POOLMGR_FETCH_QUEUE_H_
#define TRENV_POOLMGR_FETCH_QUEUE_H_

#include <cstdint>
#include <vector>

#include "src/common/time.h"
#include "src/mempool/backend.h"

namespace trenv {

// One shard's worth of pages wanted from one pool node.
struct FetchRequest {
  uint32_t source = 0;  // pool node holding the shard
  uint64_t npages = 0;
  // 0 (default): a demand-style fetch, charged through the fabric's plain
  // FetchLatency model. >= 1: a planned scatter-gather descriptor covering
  // `nruns` page runs (working-set prefetch); groups containing any such
  // request are charged through BulkFetchLatency, which amortizes the base
  // round trip across the batch.
  uint64_t nruns = 0;
};

struct FetchOutcome {
  SimDuration queue_delay;  // residual drain time of earlier batches
  SimDuration transfer;     // coalesced transfer incl. incast penalty
  uint64_t pages = 0;
  uint64_t ops = 0;        // transfers issued after coalescing
  uint64_t coalesced = 0;  // requests merged into an existing transfer
  uint64_t runs = 0;       // scatter-gather runs across bulk descriptors
  uint32_t sources = 0;    // distinct pool nodes in the batch (incast width)

  SimDuration Total() const { return queue_delay + transfer; }
};

class NicFetchQueue {
 public:
  // `incast_penalty` is the extra fractional latency charged per concurrent
  // source beyond the first (switch buffer pressure at the fan-in point).
  explicit NicFetchQueue(double incast_penalty = 0.04)
      : incast_penalty_(incast_penalty) {}

  // Issues one batch at `now` against `fabric` (the inter-node RDMA model;
  // its FetchLatency supplies load-dependent base cost, jitter, and any
  // injected flaps/corruption with retries). Mutates the NIC busy window.
  FetchOutcome Issue(SimTime now, std::vector<FetchRequest> requests,
                     MemoryBackend* fabric);

  SimTime busy_until() const { return busy_until_; }
  uint64_t total_pages() const { return total_pages_; }
  uint64_t total_ops() const { return total_ops_; }
  uint64_t total_coalesced() const { return total_coalesced_; }

 private:
  double incast_penalty_;
  SimTime busy_until_;
  uint64_t total_pages_ = 0;
  uint64_t total_ops_ = 0;
  uint64_t total_coalesced_ = 0;
};

}  // namespace trenv

#endif  // TRENV_POOLMGR_FETCH_QUEUE_H_
