#include "src/poolmgr/fetch_queue.h"

#include <algorithm>

namespace trenv {

FetchOutcome NicFetchQueue::Issue(SimTime now, std::vector<FetchRequest> requests,
                                  MemoryBackend* fabric) {
  FetchOutcome outcome;
  if (requests.empty() || fabric == nullptr) {
    return outcome;
  }
  // Coalesce per source: one transfer per pool node, pages summed. Stable
  // sort keeps request order deterministic for equal sources.
  std::stable_sort(requests.begin(), requests.end(),
                   [](const FetchRequest& a, const FetchRequest& b) {
                     return a.source < b.source;
                   });
  if (busy_until_ > now) {
    outcome.queue_delay = busy_until_ - now;
  }
  // Open one stream per distinct source for the whole batch so the fabric's
  // load model sees the fan-in width, then issue the coalesced transfers.
  for (size_t i = 0; i < requests.size();) {
    size_t j = i + 1;
    while (j < requests.size() && requests[j].source == requests[i].source) {
      ++j;
    }
    ++outcome.sources;
    outcome.coalesced += (j - i) - 1;
    fabric->BeginStream();
    i = j;
  }
  for (size_t i = 0; i < requests.size();) {
    uint64_t batch_pages = requests[i].npages;
    // Demand requests (nruns == 0) folded into a bulk descriptor count as one
    // run each.
    uint64_t batch_runs = requests[i].nruns > 0 ? requests[i].nruns : 1;
    bool bulk = requests[i].nruns > 0;
    size_t j = i + 1;
    while (j < requests.size() && requests[j].source == requests[i].source) {
      batch_pages += requests[j].npages;
      batch_runs += requests[j].nruns > 0 ? requests[j].nruns : 1;
      bulk = bulk || requests[j].nruns > 0;
      ++j;
    }
    if (bulk) {
      outcome.transfer += fabric->BulkFetchLatency(batch_runs, batch_pages);
      outcome.runs += batch_runs;
    } else {
      outcome.transfer += fabric->FetchLatency(batch_pages);
    }
    outcome.pages += batch_pages;
    ++outcome.ops;
    i = j;
  }
  for (uint32_t s = 0; s < outcome.sources; ++s) {
    fabric->EndStream();
  }
  if (outcome.sources > 1) {
    // Incast: concurrent senders overrun the receive pipeline; the penalty
    // grows with fan-in width on top of the per-stream load factor above.
    outcome.transfer =
        outcome.transfer * (1.0 + incast_penalty_ * static_cast<double>(outcome.sources - 1));
  }
  busy_until_ = now + outcome.queue_delay + outcome.transfer;
  total_pages_ += outcome.pages;
  total_ops_ += outcome.ops;
  total_coalesced_ += outcome.coalesced;
  return outcome;
}

}  // namespace trenv
