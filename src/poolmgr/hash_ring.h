// Consistent-hash ring for shard placement across pool nodes.
//
// Template chunks are content-addressed (the dedup store's fingerprint is the
// key), so placement must be a pure function of (key, live membership): any
// node that knows the membership can compute where a shard lives without a
// directory lookup, and a membership change remaps only the shards whose
// owners actually changed — the property the rebalancer relies on to move
// O(1/N) of the data instead of reshuffling everything.
//
// Each pool node projects `vnodes_per_node` virtual points onto the ring so
// shard load stays balanced even at small node counts. Replicas are the first
// R *distinct* nodes clockwise from the key's hash.
#ifndef TRENV_POOLMGR_HASH_RING_H_
#define TRENV_POOLMGR_HASH_RING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace trenv {

class HashRing {
 public:
  explicit HashRing(uint32_t vnodes_per_node = 48) : vnodes_(vnodes_per_node) {}

  void AddNode(uint32_t node);
  void RemoveNode(uint32_t node);
  bool Contains(uint32_t node) const;
  size_t node_count() const { return nodes_.size(); }
  size_t vnode_count() const { return ring_.size(); }

  // The first min(replicas, node_count) distinct nodes clockwise from
  // hash(key), primary first. Deterministic for a fixed membership.
  void OwnersFor(uint64_t key, uint32_t replicas, std::vector<uint32_t>* out) const;
  std::vector<uint32_t> OwnersFor(uint64_t key, uint32_t replicas) const {
    std::vector<uint32_t> out;
    OwnersFor(key, replicas, &out);
    return out;
  }

 private:
  struct VNode {
    uint64_t hash;
    uint32_t node;
    bool operator<(const VNode& o) const {
      return hash < o.hash || (hash == o.hash && node < o.node);
    }
  };

  uint32_t vnodes_;
  std::vector<VNode> ring_;     // sorted by (hash, node)
  std::vector<uint32_t> nodes_;  // sorted live membership
};

}  // namespace trenv

#endif  // TRENV_POOLMGR_HASH_RING_H_
