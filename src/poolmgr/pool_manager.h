// PoolManager: the cross-node memory-pool control plane.
//
// The paper's templates live in a disaggregated pool that every worker node
// attaches remotely (sections 4-5); TrEnv-X pushes template management onto
// the pool side. This module is that control plane for the simulated rack:
//
//   * Sharded template store — the dedup store's content-addressed chunks
//     become shards, placed across pool nodes by consistent hashing
//     (HashRing) with a configurable replication factor. Placement is a pure
//     function of (fingerprint, live membership): no directory service.
//   * Lease-based remote attach — a worker taking a template pays the
//     shard transfers once, then holds a refcounted, TTL-expiring lease;
//     further attaches on that worker are metadata-only until every grant
//     window lapses. Expiry is driven by the control plane's own
//     EventScheduler, which the Cluster advances in lock-step with the
//     worker clocks.
//   * Failure wiring — a pool-node crash (FaultDomain::kPoolNodeCrash)
//     revokes nothing when replication >= 2: a surviving replica is promoted
//     to primary and leases stay valid. With replication 1 the lost shards'
//     leases are revoked and the shard is reseeded from the dedup store (the
//     durable content source) on next use. A delayed rebalance restores the
//     replication factor and, after restarts, moves shards back to their
//     ring positions.
//   * Per-NIC fetch path — shard transfers go through each worker's
//     NicFetchQueue (batching, coalescing, incast-aware queueing) on top of
//     the fabric backend's load-dependent latency and fault injection.
//
// Everything is deterministic: placement is arithmetic, transfers draw from
// the fabric's seeded Rng in call order, and all bookkeeping iterates in
// shard-index / FunctionId order.
#ifndef TRENV_POOLMGR_POOL_MANAGER_H_
#define TRENV_POOLMGR_POOL_MANAGER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/interner.h"
#include "src/common/time.h"
#include "src/criu/deduplicator.h"
#include "src/obs/registry.h"
#include "src/poolmgr/fetch_queue.h"
#include "src/poolmgr/hash_ring.h"
#include "src/sim/event_scheduler.h"

namespace trenv {

struct PoolManagerConfig {
  // false leaves the cluster exactly as it was before the control plane
  // existed (node-local stores, no leases) — the bit-identical default.
  bool enabled = false;
  uint32_t pool_nodes = 4;
  uint32_t replication = 2;
  uint32_t vnodes_per_node = 48;
  // How long one attach grant keeps a worker's lease alive; each grant is
  // one refcount for one TTL window.
  SimDuration lease_ttl = SimDuration::Seconds(60);
  // Settle time between a membership change and the rebalance that restores
  // replication / ring placement.
  SimDuration rebalance_delay = SimDuration::Seconds(5);
  // NIC fan-in penalty per concurrent source beyond the first.
  double incast_penalty = 0.04;
  // Control-plane metadata costs (lease table + template descriptor copy).
  SimDuration attach_metadata_base = SimDuration::FromMicrosF(25.0);
  SimDuration attach_metadata_per_shard = SimDuration::FromMicrosF(2.0);
};

class PoolManager {
 public:
  // `fabric` models the inter-node transfer path (not owned); `stats` may be
  // null. Worker NICs are indexed [0, worker_nodes).
  PoolManager(PoolManagerConfig config, uint32_t worker_nodes, MemoryBackend* fabric,
              obs::Registry* stats);
  PoolManager(const PoolManager&) = delete;
  PoolManager& operator=(const PoolManager&) = delete;

  // The control plane's clock; the Cluster advances it in lock-step with
  // the worker-node schedulers and drains it at end of run.
  EventScheduler& clock() { return clock_; }

  // Registers a function's consolidated image: every chunk fingerprint
  // becomes (or joins) a shard placed on the ring. Idempotent per fid.
  void RegisterTemplate(FunctionId fid, const ConsolidatedImage& image);

  struct AttachOutcome {
    SimDuration latency;        // metadata + (on miss) shard transfers
    uint64_t fetched_pages = 0;  // remote pages pulled over the NIC
    bool lease_hit = false;
  };
  // A worker attaches fid's template at `now`: lease hit renews for another
  // TTL window and costs metadata only; a miss fetches every shard through
  // the worker's NIC queue and grants a fresh lease.
  AttachOutcome Attach(uint32_t worker, FunctionId fid, SimTime now);

  // Active grant windows the worker holds on fid's template (0 = no lease).
  uint32_t LeaseRefs(uint32_t worker, FunctionId fid) const;
  // Drops every lease a crashed worker held (nothing orderly to tear down).
  void ReleaseWorker(uint32_t worker);

  // Pool-node failure wiring (driven by the Cluster's fault plan).
  void OnPoolNodeCrash(uint32_t pool_node, SimTime when);
  void OnPoolNodeRestart(uint32_t pool_node, SimTime when);
  bool pool_node_alive(uint32_t pool_node) const {
    return pool_node < alive_.size() && alive_[pool_node];
  }

  // Immediate rebalance: restore replication for under-replicated shards and
  // re-align placements with the ring. Normally fires `rebalance_delay`
  // after a membership change; exposed for tests.
  void RunRebalance(SimTime now);

  // --- accounting -----------------------------------------------------------
  const Histogram& attach_ms() const { return attach_ms_; }
  uint64_t remote_fetch_pages() const { return remote_fetch_pages_; }
  uint64_t remote_fetch_ops() const { return remote_fetch_ops_; }
  uint64_t coalesced_requests() const { return coalesced_requests_; }
  uint64_t lease_hits() const { return lease_hits_; }
  uint64_t lease_misses() const { return lease_misses_; }
  uint64_t leases_expired() const { return leases_expired_; }
  uint64_t leases_revoked() const { return leases_revoked_; }
  uint64_t replica_promotions() const { return replica_promotions_; }
  uint64_t rebalance_moves() const { return rebalance_moves_; }
  uint64_t rebalanced_pages() const { return rebalanced_pages_; }
  uint64_t reseeded_shards() const { return reseeded_shards_; }
  size_t shard_count() const { return shards_.size(); }
  // Pages each pool node currently stores (primaries + replicas).
  std::vector<uint64_t> ShardPagesPerNode() const;
  // Pages each pool node serves as primary (the copy lease misses read).
  std::vector<uint64_t> PrimaryPagesPerNode() const;

 private:
  struct Shard {
    uint64_t fingerprint = 0;
    uint64_t npages = 0;
    // Live replica set, primary first. Empty = lost (every holder crashed);
    // reseeded from the dedup store on next use or rebalance.
    std::vector<uint32_t> replicas;
  };
  struct Lease {
    uint32_t refs = 0;
    SimTime expires;
  };

  void GrantLease(uint32_t worker, FunctionId fid, SimTime now);
  void ScheduleRebalance(SimTime when);
  // Ensures the shard has a live primary, reseeding from the dedup store if
  // every replica died. Returns false only when no pool node is alive.
  bool EnsureLivePrimary(uint32_t shard_index);
  void Count(obs::Counter* counter, double delta = 1.0) {
    if (counter != nullptr) {
      counter->Add(delta);
    }
  }

  PoolManagerConfig config_;
  MemoryBackend* fabric_;
  EventScheduler clock_;
  HashRing ring_;
  std::vector<bool> alive_;          // pool-node liveness
  std::vector<NicFetchQueue> nics_;  // one per worker node

  std::vector<Shard> shards_;
  std::map<uint64_t, uint32_t> shard_by_fingerprint_;
  // fid -> shard indices (sparse, indexed by interned FunctionId).
  std::vector<std::vector<uint32_t>> templates_;
  // Per worker: fid -> lease. std::map so revocation scans are in id order.
  std::vector<std::map<FunctionId, Lease>> leases_;
  bool rebalance_pending_ = false;

  Histogram attach_ms_;
  uint64_t remote_fetch_pages_ = 0;
  uint64_t remote_fetch_ops_ = 0;
  uint64_t coalesced_requests_ = 0;
  uint64_t lease_hits_ = 0;
  uint64_t lease_misses_ = 0;
  uint64_t leases_expired_ = 0;
  uint64_t leases_revoked_ = 0;
  uint64_t replica_promotions_ = 0;
  uint64_t rebalance_moves_ = 0;
  uint64_t rebalanced_pages_ = 0;
  uint64_t reseeded_shards_ = 0;

  obs::Counter* attaches_counter_ = nullptr;
  obs::Counter* lease_hits_counter_ = nullptr;
  obs::Counter* lease_misses_counter_ = nullptr;
  obs::Counter* expired_counter_ = nullptr;
  obs::Counter* revoked_counter_ = nullptr;
  obs::Counter* promotions_counter_ = nullptr;
  obs::Counter* fetch_pages_counter_ = nullptr;
  obs::Counter* fetch_ops_counter_ = nullptr;
  obs::Counter* coalesced_counter_ = nullptr;
  obs::Counter* rebalance_counter_ = nullptr;
  obs::Counter* reseed_counter_ = nullptr;
};

}  // namespace trenv

#endif  // TRENV_POOLMGR_POOL_MANAGER_H_
