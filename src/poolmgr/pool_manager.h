// PoolManager: the cross-node memory-pool control plane.
//
// The paper's templates live in a disaggregated pool that every worker node
// attaches remotely (sections 4-5); TrEnv-X pushes template management onto
// the pool side. This module is that control plane for the simulated rack:
//
//   * Sharded template store — the dedup store's content-addressed chunks
//     become shards, placed across pool nodes by consistent hashing
//     (HashRing) with a configurable replication factor. Placement is a pure
//     function of (fingerprint, live membership): no directory service.
//   * Lease-based remote attach — a worker taking a template pays the
//     shard transfers once, then holds a refcounted, TTL-expiring lease;
//     further attaches on that worker are metadata-only until every grant
//     window lapses. Expiry is driven by the control plane's own
//     EventScheduler, which the Cluster advances in lock-step with the
//     worker clocks.
//   * Failure wiring — a pool-node crash (FaultDomain::kPoolNodeCrash)
//     revokes nothing when replication >= 2: a surviving replica is promoted
//     to primary and leases stay valid. With replication 1 the lost shards'
//     leases are revoked and the shard is reseeded from the dedup store (the
//     durable content source) on next use. A delayed rebalance restores the
//     replication factor and, after restarts, moves shards back to their
//     ring positions.
//   * Per-NIC fetch path — shard transfers go through each worker's
//     NicFetchQueue (batching, coalescing, incast-aware queueing) on top of
//     the fabric backend's load-dependent latency and fault injection.
//
// Everything is deterministic: placement is arithmetic, transfers draw from
// the fabric's seeded Rng in call order, and all bookkeeping iterates in
// shard-index / FunctionId order.
#ifndef TRENV_POOLMGR_POOL_MANAGER_H_
#define TRENV_POOLMGR_POOL_MANAGER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/interner.h"
#include "src/common/time.h"
#include "src/criu/deduplicator.h"
#include "src/obs/registry.h"
#include "src/poolmgr/fetch_queue.h"
#include "src/poolmgr/hash_ring.h"
#include "src/sim/event_scheduler.h"

namespace trenv {

struct PoolManagerConfig {
  // false leaves the cluster exactly as it was before the control plane
  // existed (node-local stores, no leases) — the bit-identical default.
  bool enabled = false;
  uint32_t pool_nodes = 4;
  uint32_t replication = 2;
  uint32_t vnodes_per_node = 48;
  // How long one attach grant keeps a worker's lease alive; each grant is
  // one refcount for one TTL window.
  SimDuration lease_ttl = SimDuration::Seconds(60);
  // Settle time between a membership change and the rebalance that restores
  // replication / ring placement.
  SimDuration rebalance_delay = SimDuration::Seconds(5);
  // NIC fan-in penalty per concurrent source beyond the first.
  double incast_penalty = 0.04;
  // Control-plane metadata costs (lease table + template descriptor copy).
  SimDuration attach_metadata_base = SimDuration::FromMicrosF(25.0);
  SimDuration attach_metadata_per_shard = SimDuration::FromMicrosF(2.0);
};

// Read / admission policy installed by the poolctl continuous control plane
// (src/poolctl). Only active after EnableContinuousControl; the legacy
// single-shot path never consults it, so the default cluster stays
// bit-identical.
struct ContinuousPoolPolicy {
  // Spread lease-miss reads across a shard's whole replica set (hashed by
  // fingerprint and worker) instead of always hitting the primary.
  bool spread_reads = true;
  // Charged once per down-but-undeclared replica the read path skips: the
  // fetch RPC to a node the membership protocol has not yet declared dead
  // times out before failing over to the next copy.
  SimDuration dead_read_timeout = SimDuration::FromMicrosF(200.0);
  // Cold attaches arriving while the worker NIC's residual backlog exceeds
  // this are shed to the NAS fallback path instead of deepening the incast
  // queue. Zero disables shedding. The invocation is never dropped: it pays
  // the (slower, contention-free) NAS cost and still gets its lease.
  SimDuration shed_queue_threshold;
  SimDuration nas_fallback_base = SimDuration::FromMicrosF(400.0);
  SimDuration nas_fallback_per_page = SimDuration::FromMicrosF(1.2);
};

class PoolManager {
 public:
  // `fabric` models the inter-node transfer path (not owned); `stats` may be
  // null. Worker NICs are indexed [0, worker_nodes).
  PoolManager(PoolManagerConfig config, uint32_t worker_nodes, MemoryBackend* fabric,
              obs::Registry* stats);
  PoolManager(const PoolManager&) = delete;
  PoolManager& operator=(const PoolManager&) = delete;

  // The control plane's clock; the Cluster advances it in lock-step with
  // the worker-node schedulers and drains it at end of run.
  EventScheduler& clock() { return clock_; }

  // Registers a function's consolidated image: every chunk fingerprint
  // becomes (or joins) a shard placed on the ring. Idempotent per fid.
  void RegisterTemplate(FunctionId fid, const ConsolidatedImage& image);

  struct AttachOutcome {
    SimDuration latency;        // metadata + (on miss) shard transfers
    uint64_t fetched_pages = 0;  // remote pages pulled over the NIC
    bool lease_hit = false;
  };
  // A worker attaches fid's template at `now`: lease hit renews for another
  // TTL window and costs metadata only; a miss fetches every shard through
  // the worker's NIC queue and grants a fresh lease.
  AttachOutcome Attach(uint32_t worker, FunctionId fid, SimTime now);

  // Active grant windows the worker holds on fid's template (0 = no lease).
  uint32_t LeaseRefs(uint32_t worker, FunctionId fid) const;
  // Drops every lease a crashed worker held (nothing orderly to tear down).
  void ReleaseWorker(uint32_t worker);

  // Pool-node failure wiring (driven by the Cluster's fault plan). The
  // legacy pair couples physical liveness and the membership decision: a
  // crash immediately removes the node from the ring and a restart re-adds
  // it, each scheduling a delayed single-shot rebalance.
  void OnPoolNodeCrash(uint32_t pool_node, SimTime when);
  void OnPoolNodeRestart(uint32_t pool_node, SimTime when);
  bool pool_node_alive(uint32_t pool_node) const {
    return pool_node < alive_.size() && alive_[pool_node];
  }
  uint32_t pool_node_count() const { return static_cast<uint32_t>(alive_.size()); }

  // --- continuous control (poolctl) ----------------------------------------
  // Splits the legacy crash/restart coupling in two: the *data plane* learns
  // a node stopped answering (reads skip it, paying a dead-read timeout),
  // while the *membership decision* — ring removal, promotion, revocation —
  // waits for the gossip protocol's declaration. Installed once by
  // PoolControlPlane; everything below is inert until then.
  void EnableContinuousControl(const ContinuousPoolPolicy& policy);
  bool continuous() const { return continuous_; }

  // Data-plane liveness only: no ring change, no promotion, no revocation.
  void OnPoolNodeDown(uint32_t pool_node);
  void OnPoolNodeUp(uint32_t pool_node);
  // Membership declarations from the gossip protocol. DeclareDead removes
  // the node from the ring, promotes replicas, and revokes leases on fully
  // lost shards; DeclareJoined re-adds it (its copies were dropped from the
  // metadata at declaration, so the rebalancer re-copies incrementally).
  // Both are idempotent.
  void DeclareDead(uint32_t pool_node, SimTime when);
  void DeclareJoined(uint32_t pool_node, SimTime when);

  struct ReconcileResult {
    uint64_t pages_moved = 0;
    // False when the shard still needs copies: the budget ran out or a
    // desired owner is down. Extra copies are only dropped once converged.
    bool converged = true;
  };
  // Moves one shard incrementally toward the ring owners at
  // `target_replication`, copying at most `budget_pages` pages. Additions
  // (restore replication first) precede drops; the serving primary is
  // preserved when it remains a desired owner. The continuous rebalancer's
  // per-tick primitive; also reused by the single-shot sweep.
  ReconcileResult ReconcileShard(uint32_t shard_index, uint32_t target_replication,
                                 uint64_t budget_pages);

  // Immediate rebalance: restore replication for under-replicated shards and
  // re-align placements with the ring. Normally fires `rebalance_delay`
  // after a membership change; exposed for tests. Idempotent: a converged
  // shard (same owner set, primary preserved) is left untouched, so repeat
  // invocations — including after a node rejoin — change nothing.
  void RunRebalance(SimTime now);

  // --- accounting -----------------------------------------------------------
  const Histogram& attach_ms() const { return attach_ms_; }
  uint64_t remote_fetch_pages() const { return remote_fetch_pages_; }
  uint64_t remote_fetch_ops() const { return remote_fetch_ops_; }
  uint64_t coalesced_requests() const { return coalesced_requests_; }
  uint64_t lease_hits() const { return lease_hits_; }
  uint64_t lease_misses() const { return lease_misses_; }
  uint64_t leases_expired() const { return leases_expired_; }
  uint64_t leases_revoked() const { return leases_revoked_; }
  uint64_t replica_promotions() const { return replica_promotions_; }
  uint64_t rebalance_moves() const { return rebalance_moves_; }
  uint64_t rebalanced_pages() const { return rebalanced_pages_; }
  uint64_t reseeded_shards() const { return reseeded_shards_; }
  uint64_t shed_attaches() const { return shed_attaches_; }
  uint64_t shed_pages() const { return shed_pages_; }
  uint64_t dead_read_hops() const { return dead_read_hops_; }
  uint64_t nas_fallback_pages() const { return nas_fallback_pages_; }
  size_t shard_count() const { return shards_.size(); }
  uint32_t base_replication() const { return config_.replication; }
  // Lease-miss fetches this shard has served (the hot-shard signal).
  uint64_t ShardFetches(uint32_t shard_index) const;
  uint64_t ShardPages(uint32_t shard_index) const;
  // Current replica set, primary first (introspection for poolctl + tests).
  std::vector<uint32_t> ShardReplicas(uint32_t shard_index) const;
  // True when the shard holds fewer *live* copies than
  // min(replication, live ring nodes) — what the continuous rebalancer's
  // restore-first pass targets.
  bool ShardUnderReplicated(uint32_t shard_index) const;
  uint32_t UnderReplicatedShards() const;
  // Residual NIC drain time at `now` for one worker (the admission signal).
  SimDuration NicBacklog(uint32_t worker, SimTime now) const;
  // Pages each pool node currently stores (primaries + replicas).
  std::vector<uint64_t> ShardPagesPerNode() const;
  // Pages each pool node serves as primary (the copy lease misses read).
  std::vector<uint64_t> PrimaryPagesPerNode() const;
  // Pages each pool node has actually served to lease misses — the observed
  // per-node lease traffic the hot-shard gate measures.
  const std::vector<uint64_t>& ServedPagesPerNode() const { return served_pages_; }
  uint64_t PeakServedPages() const;

 private:
  struct Shard {
    uint64_t fingerprint = 0;
    uint64_t npages = 0;
    // Lease-miss fetches served (all replicas combined); the control plane
    // diffs this per tick to score popularity.
    uint64_t fetches = 0;
    // Live replica set, primary first. Empty = lost (every holder crashed);
    // reseeded from the dedup store on next use or rebalance.
    std::vector<uint32_t> replicas;
  };
  struct Lease {
    uint32_t refs = 0;
    SimTime expires;
  };

  void GrantLease(uint32_t worker, FunctionId fid, SimTime now);
  void ScheduleRebalance(SimTime when);
  // Ring removal + replica erase + promotion + lost-shard lease revocation —
  // the placement half of a crash, shared by OnPoolNodeCrash (legacy) and
  // DeclareDead (continuous). Idempotent.
  void RemoveFromPlacement(uint32_t pool_node);
  // True when the shard's owner set already equals `desired` (as a set) —
  // order-insensitive so a preserved promoted primary still counts as
  // converged (the idempotency fix for repeat rebalances after rejoins).
  static bool SameOwnerSet(const std::vector<uint32_t>& replicas,
                           const std::vector<uint32_t>& desired);
  // Picks the replica a lease miss reads for this shard. Legacy: always the
  // primary. Continuous: spread by (fingerprint, worker) hash, skipping
  // down-but-undeclared nodes (each skip is one timed-out read, counted into
  // `dead_hops`). Returns false when no listed replica answers.
  bool PickReadReplica(const Shard& shard, uint32_t worker, uint32_t* source,
                       uint64_t* dead_hops) const;
  // Ensures the shard has a live primary, reseeding from the dedup store if
  // every replica died. Returns false only when no pool node is alive.
  bool EnsureLivePrimary(uint32_t shard_index);
  void Count(obs::Counter* counter, double delta = 1.0) {
    if (counter != nullptr) {
      counter->Add(delta);
    }
  }

  PoolManagerConfig config_;
  MemoryBackend* fabric_;
  EventScheduler clock_;
  HashRing ring_;
  std::vector<bool> alive_;          // pool-node liveness
  std::vector<NicFetchQueue> nics_;  // one per worker node

  std::vector<Shard> shards_;
  std::map<uint64_t, uint32_t> shard_by_fingerprint_;
  // fid -> shard indices (sparse, indexed by interned FunctionId).
  std::vector<std::vector<uint32_t>> templates_;
  // Per worker: fid -> lease. std::map so revocation scans are in id order.
  std::vector<std::map<FunctionId, Lease>> leases_;
  bool rebalance_pending_ = false;
  bool continuous_ = false;
  ContinuousPoolPolicy policy_;
  // Lease-miss pages served per pool node (both modes; the hot-shard gate's
  // static-vs-continuous comparison reads it).
  std::vector<uint64_t> served_pages_;

  Histogram attach_ms_;
  uint64_t remote_fetch_pages_ = 0;
  uint64_t remote_fetch_ops_ = 0;
  uint64_t coalesced_requests_ = 0;
  uint64_t lease_hits_ = 0;
  uint64_t lease_misses_ = 0;
  uint64_t leases_expired_ = 0;
  uint64_t leases_revoked_ = 0;
  uint64_t replica_promotions_ = 0;
  uint64_t rebalance_moves_ = 0;
  uint64_t rebalanced_pages_ = 0;
  uint64_t reseeded_shards_ = 0;
  uint64_t shed_attaches_ = 0;
  uint64_t shed_pages_ = 0;
  uint64_t dead_read_hops_ = 0;
  uint64_t nas_fallback_pages_ = 0;

  obs::Counter* attaches_counter_ = nullptr;
  obs::Counter* lease_hits_counter_ = nullptr;
  obs::Counter* lease_misses_counter_ = nullptr;
  obs::Counter* expired_counter_ = nullptr;
  obs::Counter* revoked_counter_ = nullptr;
  obs::Counter* promotions_counter_ = nullptr;
  obs::Counter* fetch_pages_counter_ = nullptr;
  obs::Counter* fetch_ops_counter_ = nullptr;
  obs::Counter* coalesced_counter_ = nullptr;
  obs::Counter* rebalance_counter_ = nullptr;
  obs::Counter* reseed_counter_ = nullptr;
  obs::Counter* shed_counter_ = nullptr;
  obs::Counter* shed_pages_counter_ = nullptr;
  obs::Counter* dead_read_counter_ = nullptr;
  obs::Counter* nas_fallback_counter_ = nullptr;
};

}  // namespace trenv

#endif  // TRENV_POOLMGR_POOL_MANAGER_H_
