#include "src/poolmgr/pool_manager.h"

#include <algorithm>

#include "src/common/rng.h"

namespace trenv {

PoolManager::PoolManager(PoolManagerConfig config, uint32_t worker_nodes,
                         MemoryBackend* fabric, obs::Registry* stats)
    : config_(config), fabric_(fabric), ring_(config.vnodes_per_node) {
  alive_.assign(config_.pool_nodes, true);
  served_pages_.assign(config_.pool_nodes, 0);
  for (uint32_t n = 0; n < config_.pool_nodes; ++n) {
    ring_.AddNode(n);
  }
  nics_.reserve(worker_nodes);
  for (uint32_t w = 0; w < worker_nodes; ++w) {
    nics_.emplace_back(config_.incast_penalty);
  }
  leases_.resize(worker_nodes);
  if (stats != nullptr) {
    attaches_counter_ = stats->GetCounter("poolmgr.attaches");
    lease_hits_counter_ = stats->GetCounter("poolmgr.lease_hits");
    lease_misses_counter_ = stats->GetCounter("poolmgr.lease_misses");
    expired_counter_ = stats->GetCounter("poolmgr.leases_expired");
    revoked_counter_ = stats->GetCounter("poolmgr.leases_revoked");
    promotions_counter_ = stats->GetCounter("poolmgr.replica_promotions");
    fetch_pages_counter_ = stats->GetCounter("poolmgr.remote_fetch_pages");
    fetch_ops_counter_ = stats->GetCounter("poolmgr.remote_fetch_ops");
    coalesced_counter_ = stats->GetCounter("poolmgr.coalesced_requests");
    rebalance_counter_ = stats->GetCounter("poolmgr.rebalance_moves");
    reseed_counter_ = stats->GetCounter("poolmgr.reseeded_shards");
    shed_counter_ = stats->GetCounter("poolmgr.shed_attaches");
    shed_pages_counter_ = stats->GetCounter("poolmgr.shed_pages");
    dead_read_counter_ = stats->GetCounter("poolmgr.dead_read_hops");
    nas_fallback_counter_ = stats->GetCounter("poolmgr.nas_fallback_pages");
  }
}

void PoolManager::EnableContinuousControl(const ContinuousPoolPolicy& policy) {
  continuous_ = true;
  policy_ = policy;
}

void PoolManager::RegisterTemplate(FunctionId fid, const ConsolidatedImage& image) {
  if (fid == kInvalidFunctionId) {
    return;
  }
  if (templates_.size() <= fid) {
    templates_.resize(fid + 1);
  }
  if (!templates_[fid].empty()) {
    return;  // already registered (every node deploys the same function)
  }
  std::vector<uint32_t>& shard_ids = templates_[fid];
  for (const auto& process : image.processes) {
    for (const PlacedRegion& placed : process) {
      for (const PlacedChunk& chunk : placed.chunks) {
        uint32_t index;
        const auto it = shard_by_fingerprint_.find(chunk.fingerprint);
        if (it != shard_by_fingerprint_.end()) {
          index = it->second;  // dedup hit: runtimes shared across functions
        } else {
          index = static_cast<uint32_t>(shards_.size());
          Shard shard;
          shard.fingerprint = chunk.fingerprint;
          shard.npages = chunk.npages;
          ring_.OwnersFor(chunk.fingerprint, config_.replication, &shard.replicas);
          shards_.push_back(std::move(shard));
          shard_by_fingerprint_.emplace(chunk.fingerprint, index);
        }
        if (std::find(shard_ids.begin(), shard_ids.end(), index) == shard_ids.end()) {
          shard_ids.push_back(index);
        }
      }
    }
  }
}

bool PoolManager::EnsureLivePrimary(uint32_t shard_index) {
  Shard& shard = shards_[shard_index];
  if (!shard.replicas.empty()) {
    return true;
  }
  // Every holder crashed: reseed from the dedup store (the durable content
  // source) onto the current ring owners.
  ring_.OwnersFor(shard.fingerprint, config_.replication, &shard.replicas);
  if (shard.replicas.empty()) {
    return false;  // no pool node alive at all
  }
  ++reseeded_shards_;
  Count(reseed_counter_);
  return true;
}

PoolManager::AttachOutcome PoolManager::Attach(uint32_t worker, FunctionId fid, SimTime now) {
  AttachOutcome outcome;
  Count(attaches_counter_);
  const std::vector<uint32_t>* shard_ids =
      fid < templates_.size() && !templates_[fid].empty() ? &templates_[fid] : nullptr;
  if (worker >= leases_.size() || shard_ids == nullptr) {
    outcome.latency = config_.attach_metadata_base;
    return outcome;
  }
  outcome.latency = config_.attach_metadata_base +
                    config_.attach_metadata_per_shard *
                        static_cast<double>(shard_ids->size());
  auto lease_it = leases_[worker].find(fid);
  if (lease_it != leases_[worker].end() && lease_it->second.refs > 0) {
    // Lease hit: the shards are already mapped on this worker; renew only.
    outcome.lease_hit = true;
    ++lease_hits_;
    Count(lease_hits_counter_);
    GrantLease(worker, fid, now);
    attach_ms_.RecordDuration(outcome.latency);
    return outcome;
  }
  // Lease miss: pull every shard through this worker's NIC — from its
  // primary (legacy) or a hashed live replica (continuous spread reads).
  ++lease_misses_;
  Count(lease_misses_counter_);
  std::vector<FetchRequest> requests;
  requests.reserve(shard_ids->size());
  uint64_t nas_pages = 0;   // shards with no reachable replica (continuous)
  uint64_t dead_hops = 0;   // timed-out reads to down-but-undeclared nodes
  for (const uint32_t shard_index : *shard_ids) {
    Shard& shard = shards_[shard_index];
    if (!EnsureLivePrimary(shard_index)) {
      if (continuous_) {
        nas_pages += shard.npages;  // whole pool gone: NAS serves, slower
      }
      continue;  // legacy fails open — the dedup store still serves
    }
    ++shard.fetches;
    uint32_t source = shard.replicas.front();
    if (continuous_ && !PickReadReplica(shard, worker, &source, &dead_hops)) {
      // Every listed replica is down and none declared dead yet: fall back
      // to NAS rather than stall the invocation on an unreachable copy.
      nas_pages += shard.npages;
      continue;
    }
    requests.push_back(FetchRequest{source, shard.npages});
  }
  // Admission control at the NicFetchQueue boundary: a cold attach landing
  // on a NIC whose backlog already exceeds the threshold is shed whole to
  // the NAS fallback path — it never deepens the incast queue, and it never
  // drops: the invocation pays the fallback latency and still gets a lease.
  if (continuous_ && policy_.shed_queue_threshold > SimDuration::Zero() &&
      !requests.empty() && NicBacklog(worker, now) > policy_.shed_queue_threshold) {
    ++shed_attaches_;
    Count(shed_counter_);
    uint64_t batch_pages = 0;
    for (const FetchRequest& request : requests) {
      batch_pages += request.npages;
    }
    shed_pages_ += batch_pages;
    nas_pages += batch_pages;
    Count(shed_pages_counter_, static_cast<double>(batch_pages));
    requests.clear();
  }
  if (!requests.empty()) {
    for (const FetchRequest& request : requests) {
      if (request.source < served_pages_.size()) {
        served_pages_[request.source] += request.npages;
      }
    }
    const FetchOutcome fetch = nics_[worker].Issue(now, std::move(requests), fabric_);
    outcome.latency += fetch.Total();
    outcome.fetched_pages = fetch.pages;
    remote_fetch_pages_ += fetch.pages;
    remote_fetch_ops_ += fetch.ops;
    coalesced_requests_ += fetch.coalesced;
    Count(fetch_pages_counter_, static_cast<double>(fetch.pages));
    Count(fetch_ops_counter_, static_cast<double>(fetch.ops));
    Count(coalesced_counter_, static_cast<double>(fetch.coalesced));
  }
  if (dead_hops > 0) {
    dead_read_hops_ += dead_hops;
    Count(dead_read_counter_, static_cast<double>(dead_hops));
    outcome.latency += policy_.dead_read_timeout * static_cast<double>(dead_hops);
  }
  if (nas_pages > 0) {
    nas_fallback_pages_ += nas_pages;
    Count(nas_fallback_counter_, static_cast<double>(nas_pages));
    outcome.latency += policy_.nas_fallback_base +
                       policy_.nas_fallback_per_page * static_cast<double>(nas_pages);
  }
  GrantLease(worker, fid, now);
  attach_ms_.RecordDuration(outcome.latency);
  return outcome;
}

bool PoolManager::PickReadReplica(const Shard& shard, uint32_t worker, uint32_t* source,
                                  uint64_t* dead_hops) const {
  const size_t n = shard.replicas.size();
  size_t start = 0;
  if (policy_.spread_reads && n > 1) {
    // Hash, don't draw: the same (shard, worker) always starts at the same
    // replica, so spread reads stay byte-identical across runs and shards.
    start = static_cast<size_t>(MixU64(shard.fingerprint ^ (0x5EADu + worker)) % n);
  }
  for (size_t k = 0; k < n; ++k) {
    const uint32_t candidate = shard.replicas[(start + k) % n];
    if (candidate < alive_.size() && alive_[candidate]) {
      *source = candidate;
      return true;
    }
    ++*dead_hops;  // RPC to an undeclared-dead node times out first
  }
  return false;
}

void PoolManager::GrantLease(uint32_t worker, FunctionId fid, SimTime now) {
  Lease& lease = leases_[worker][fid];
  lease.refs += 1;
  lease.expires = now + config_.lease_ttl;
  // One expiry event per grant window: the lease dies when the last grant's
  // window lapses — refcounted expiry, driven by the control-plane clock.
  const SimTime expiry = std::max(now, clock_.now()) + config_.lease_ttl;
  clock_.ScheduleAt(expiry, [this, worker, fid] {
    auto it = leases_[worker].find(fid);
    if (it == leases_[worker].end() || it->second.refs == 0) {
      return;  // already revoked or released with the worker
    }
    if (--it->second.refs == 0) {
      leases_[worker].erase(it);
      ++leases_expired_;
      Count(expired_counter_);
    }
  });
}

uint32_t PoolManager::LeaseRefs(uint32_t worker, FunctionId fid) const {
  if (worker >= leases_.size() || fid == kInvalidFunctionId) {
    return 0;
  }
  const auto it = leases_[worker].find(fid);
  return it == leases_[worker].end() ? 0 : it->second.refs;
}

void PoolManager::ReleaseWorker(uint32_t worker) {
  if (worker < leases_.size()) {
    leases_[worker].clear();
  }
}

void PoolManager::OnPoolNodeCrash(uint32_t pool_node, SimTime when) {
  if (pool_node >= alive_.size() || !alive_[pool_node]) {
    return;
  }
  alive_[pool_node] = false;
  RemoveFromPlacement(pool_node);
  ScheduleRebalance(when + config_.rebalance_delay);
}

void PoolManager::RemoveFromPlacement(uint32_t pool_node) {
  if (ring_.Contains(pool_node)) {
    ring_.RemoveNode(pool_node);
  }
  // Walk shards in index order (deterministic). Losing a replica is silent;
  // losing a *primary* promotes a survivor; losing the last replica revokes
  // every lease whose template includes the shard.
  std::vector<bool> shard_lost(shards_.size(), false);
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    const auto it = std::find(shard.replicas.begin(), shard.replicas.end(), pool_node);
    if (it == shard.replicas.end()) {
      continue;
    }
    const bool was_primary = it == shard.replicas.begin();
    shard.replicas.erase(it);
    if (shard.replicas.empty()) {
      shard_lost[s] = true;
    } else if (was_primary) {
      // Replica promotion: the next live replica serves reads; leases stay
      // valid because placement metadata is all that changes.
      ++replica_promotions_;
      Count(promotions_counter_);
    }
  }
  // Revoke leases on templates that lost a shard entirely (replication 1):
  // those workers must re-fetch after the reseed.
  for (FunctionId fid = 0; fid < templates_.size(); ++fid) {
    bool lost = false;
    for (const uint32_t s : templates_[fid]) {
      if (shard_lost[s]) {
        lost = true;
        break;
      }
    }
    if (!lost) {
      continue;
    }
    for (auto& worker_leases : leases_) {
      const auto it = worker_leases.find(fid);
      if (it != worker_leases.end()) {
        worker_leases.erase(it);
        ++leases_revoked_;
        Count(revoked_counter_);
      }
    }
  }
}

void PoolManager::OnPoolNodeRestart(uint32_t pool_node, SimTime when) {
  if (pool_node >= alive_.size() || alive_[pool_node]) {
    return;
  }
  alive_[pool_node] = true;
  ring_.AddNode(pool_node);
  ScheduleRebalance(when + config_.rebalance_delay);
}

void PoolManager::OnPoolNodeDown(uint32_t pool_node) {
  if (pool_node < alive_.size()) {
    alive_[pool_node] = false;
  }
}

void PoolManager::OnPoolNodeUp(uint32_t pool_node) {
  if (pool_node < alive_.size()) {
    alive_[pool_node] = true;
  }
}

void PoolManager::DeclareDead(uint32_t pool_node, SimTime when) {
  (void)when;
  if (pool_node >= alive_.size() || !ring_.Contains(pool_node)) {
    return;  // already declared (or never known) — idempotent
  }
  RemoveFromPlacement(pool_node);
}

void PoolManager::DeclareJoined(uint32_t pool_node, SimTime when) {
  (void)when;
  if (pool_node >= alive_.size() || ring_.Contains(pool_node)) {
    return;  // already a member — idempotent
  }
  // Its copies were dropped from the metadata at DeclareDead, so the node
  // rejoins empty; the continuous rebalancer re-copies shards under budget.
  ring_.AddNode(pool_node);
}

void PoolManager::ScheduleRebalance(SimTime when) {
  if (rebalance_pending_) {
    return;  // one sweep covers every membership change before it fires
  }
  rebalance_pending_ = true;
  clock_.ScheduleAt(std::max(when, clock_.now()), [this] {
    rebalance_pending_ = false;
    RunRebalance(clock_.now());
  });
}

bool PoolManager::SameOwnerSet(const std::vector<uint32_t>& replicas,
                               const std::vector<uint32_t>& desired) {
  if (replicas.size() != desired.size()) {
    return false;
  }
  for (const uint32_t node : desired) {
    if (std::find(replicas.begin(), replicas.end(), node) == replicas.end()) {
      return false;
    }
  }
  return true;  // same size, no duplicates in either — equal as sets
}

void PoolManager::RunRebalance(SimTime now) {
  (void)now;
  if (ring_.node_count() == 0) {
    return;  // nothing alive to move to; retried after the next restart
  }
  std::vector<uint32_t> desired;
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    ring_.OwnersFor(shard.fingerprint, config_.replication, &desired);
    // Converged means same owner *set*: after a rejoin the preserved
    // promoted primary leaves `replicas` as a rotation of `desired`, and an
    // exact-order compare would re-enter the move/rotate body on every
    // later sweep for any unrelated membership change. Skipping on set
    // equality makes repeat invocations — second crash epochs, rejoins,
    // back-to-back sweeps — true no-ops.
    if (SameOwnerSet(shard.replicas, desired)) {
      continue;
    }
    const bool was_lost = shard.replicas.empty();
    // Count one move per node that newly receives the shard (background
    // copy traffic, off the attach critical path).
    uint64_t additions = 0;
    for (const uint32_t node : desired) {
      if (std::find(shard.replicas.begin(), shard.replicas.end(), node) ==
          shard.replicas.end()) {
        ++additions;
      }
    }
    if (additions > 0) {
      rebalance_moves_ += additions;
      rebalanced_pages_ += additions * shard.npages;
      Count(rebalance_counter_, static_cast<double>(additions));
    }
    if (was_lost) {
      ++reseeded_shards_;
      Count(reseed_counter_);
    }
    // Keep a surviving primary in place when the ring still lists it —
    // promotion already redirected readers there; demoting it back would
    // churn leases for no benefit.
    const uint32_t old_primary = was_lost ? 0 : shard.replicas.front();
    shard.replicas = desired;
    if (!was_lost) {
      const auto it = std::find(shard.replicas.begin(), shard.replicas.end(), old_primary);
      if (it != shard.replicas.end() && it != shard.replicas.begin()) {
        std::rotate(shard.replicas.begin(), it, it + 1);
      }
    }
  }
}

PoolManager::ReconcileResult PoolManager::ReconcileShard(uint32_t shard_index,
                                                         uint32_t target_replication,
                                                         uint64_t budget_pages) {
  ReconcileResult result;
  if (shard_index >= shards_.size() || ring_.node_count() == 0) {
    result.converged = ring_.node_count() != 0;
    return result;
  }
  Shard& shard = shards_[shard_index];
  std::vector<uint32_t> desired;
  ring_.OwnersFor(shard.fingerprint, target_replication, &desired);
  if (desired.empty()) {
    result.converged = false;
    return result;
  }
  const bool was_lost = shard.replicas.empty();
  // Phase 1 — additions, budget-bound, restore-first: copy the shard onto
  // every desired owner it is missing from. Down owners are skipped (a copy
  // to an unreachable node moves no bytes); they keep the shard unconverged
  // so a later tick retries once the node answers or is declared dead.
  uint64_t added = 0;
  for (const uint32_t node : desired) {
    if (std::find(shard.replicas.begin(), shard.replicas.end(), node) !=
        shard.replicas.end()) {
      continue;
    }
    if (node >= alive_.size() || !alive_[node]) {
      continue;
    }
    if (result.pages_moved + shard.npages > budget_pages) {
      break;
    }
    shard.replicas.push_back(node);
    result.pages_moved += shard.npages;
    ++added;
  }
  if (added > 0) {
    rebalance_moves_ += added;
    rebalanced_pages_ += result.pages_moved;
    Count(rebalance_counter_, static_cast<double>(added));
  }
  if (was_lost && !shard.replicas.empty()) {
    ++reseeded_shards_;
    Count(reseed_counter_);
  }
  for (const uint32_t node : desired) {
    if (std::find(shard.replicas.begin(), shard.replicas.end(), node) ==
        shard.replicas.end()) {
      result.converged = false;  // out of budget or owner down: retry later
      break;
    }
  }
  if (!result.converged) {
    return result;  // keep extra copies until the desired set is complete
  }
  // Phase 2 — drops, metadata-only and free: every desired owner holds a
  // copy, so surplus replicas (old homes, decayed hot-shard extras) can go.
  // The serving primary survives when it is still a desired owner.
  if (shard.replicas.size() > desired.size()) {
    const uint32_t old_primary = shard.replicas.front();
    std::vector<uint32_t> kept;
    kept.reserve(desired.size());
    for (const uint32_t node : shard.replicas) {
      if (std::find(desired.begin(), desired.end(), node) != desired.end()) {
        kept.push_back(node);
      }
    }
    shard.replicas = std::move(kept);
    if (!shard.replicas.empty() && shard.replicas.front() != old_primary && !was_lost) {
      ++replica_promotions_;
      Count(promotions_counter_);
    }
  }
  return result;
}

uint64_t PoolManager::ShardFetches(uint32_t shard_index) const {
  return shard_index < shards_.size() ? shards_[shard_index].fetches : 0;
}

uint64_t PoolManager::ShardPages(uint32_t shard_index) const {
  return shard_index < shards_.size() ? shards_[shard_index].npages : 0;
}

std::vector<uint32_t> PoolManager::ShardReplicas(uint32_t shard_index) const {
  return shard_index < shards_.size() ? shards_[shard_index].replicas
                                      : std::vector<uint32_t>{};
}

bool PoolManager::ShardUnderReplicated(uint32_t shard_index) const {
  if (shard_index >= shards_.size()) {
    return false;
  }
  const uint32_t want = std::min<uint32_t>(
      config_.replication, static_cast<uint32_t>(ring_.node_count()));
  uint32_t live = 0;
  for (const uint32_t node : shards_[shard_index].replicas) {
    if (node < alive_.size() && alive_[node]) {
      ++live;
    }
  }
  return live < want;
}

uint32_t PoolManager::UnderReplicatedShards() const {
  uint32_t count = 0;
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    if (ShardUnderReplicated(s)) {
      ++count;
    }
  }
  return count;
}

SimDuration PoolManager::NicBacklog(uint32_t worker, SimTime now) const {
  if (worker >= nics_.size()) {
    return SimDuration::Zero();
  }
  const SimTime busy = nics_[worker].busy_until();
  return busy > now ? busy - now : SimDuration::Zero();
}

uint64_t PoolManager::PeakServedPages() const {
  uint64_t peak = 0;
  for (const uint64_t pages : served_pages_) {
    peak = std::max(peak, pages);
  }
  return peak;
}

std::vector<uint64_t> PoolManager::PrimaryPagesPerNode() const {
  std::vector<uint64_t> pages(alive_.size(), 0);
  for (const Shard& shard : shards_) {
    if (!shard.replicas.empty() && shard.replicas.front() < pages.size()) {
      pages[shard.replicas.front()] += shard.npages;
    }
  }
  return pages;
}

std::vector<uint64_t> PoolManager::ShardPagesPerNode() const {
  std::vector<uint64_t> pages(alive_.size(), 0);
  for (const Shard& shard : shards_) {
    for (const uint32_t node : shard.replicas) {
      if (node < pages.size()) {
        pages[node] += shard.npages;
      }
    }
  }
  return pages;
}

}  // namespace trenv
