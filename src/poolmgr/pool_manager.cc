#include "src/poolmgr/pool_manager.h"

#include <algorithm>

namespace trenv {

PoolManager::PoolManager(PoolManagerConfig config, uint32_t worker_nodes,
                         MemoryBackend* fabric, obs::Registry* stats)
    : config_(config), fabric_(fabric), ring_(config.vnodes_per_node) {
  alive_.assign(config_.pool_nodes, true);
  for (uint32_t n = 0; n < config_.pool_nodes; ++n) {
    ring_.AddNode(n);
  }
  nics_.reserve(worker_nodes);
  for (uint32_t w = 0; w < worker_nodes; ++w) {
    nics_.emplace_back(config_.incast_penalty);
  }
  leases_.resize(worker_nodes);
  if (stats != nullptr) {
    attaches_counter_ = stats->GetCounter("poolmgr.attaches");
    lease_hits_counter_ = stats->GetCounter("poolmgr.lease_hits");
    lease_misses_counter_ = stats->GetCounter("poolmgr.lease_misses");
    expired_counter_ = stats->GetCounter("poolmgr.leases_expired");
    revoked_counter_ = stats->GetCounter("poolmgr.leases_revoked");
    promotions_counter_ = stats->GetCounter("poolmgr.replica_promotions");
    fetch_pages_counter_ = stats->GetCounter("poolmgr.remote_fetch_pages");
    fetch_ops_counter_ = stats->GetCounter("poolmgr.remote_fetch_ops");
    coalesced_counter_ = stats->GetCounter("poolmgr.coalesced_requests");
    rebalance_counter_ = stats->GetCounter("poolmgr.rebalance_moves");
    reseed_counter_ = stats->GetCounter("poolmgr.reseeded_shards");
  }
}

void PoolManager::RegisterTemplate(FunctionId fid, const ConsolidatedImage& image) {
  if (fid == kInvalidFunctionId) {
    return;
  }
  if (templates_.size() <= fid) {
    templates_.resize(fid + 1);
  }
  if (!templates_[fid].empty()) {
    return;  // already registered (every node deploys the same function)
  }
  std::vector<uint32_t>& shard_ids = templates_[fid];
  for (const auto& process : image.processes) {
    for (const PlacedRegion& placed : process) {
      for (const PlacedChunk& chunk : placed.chunks) {
        uint32_t index;
        const auto it = shard_by_fingerprint_.find(chunk.fingerprint);
        if (it != shard_by_fingerprint_.end()) {
          index = it->second;  // dedup hit: runtimes shared across functions
        } else {
          index = static_cast<uint32_t>(shards_.size());
          Shard shard;
          shard.fingerprint = chunk.fingerprint;
          shard.npages = chunk.npages;
          ring_.OwnersFor(chunk.fingerprint, config_.replication, &shard.replicas);
          shards_.push_back(std::move(shard));
          shard_by_fingerprint_.emplace(chunk.fingerprint, index);
        }
        if (std::find(shard_ids.begin(), shard_ids.end(), index) == shard_ids.end()) {
          shard_ids.push_back(index);
        }
      }
    }
  }
}

bool PoolManager::EnsureLivePrimary(uint32_t shard_index) {
  Shard& shard = shards_[shard_index];
  if (!shard.replicas.empty()) {
    return true;
  }
  // Every holder crashed: reseed from the dedup store (the durable content
  // source) onto the current ring owners.
  ring_.OwnersFor(shard.fingerprint, config_.replication, &shard.replicas);
  if (shard.replicas.empty()) {
    return false;  // no pool node alive at all
  }
  ++reseeded_shards_;
  Count(reseed_counter_);
  return true;
}

PoolManager::AttachOutcome PoolManager::Attach(uint32_t worker, FunctionId fid, SimTime now) {
  AttachOutcome outcome;
  Count(attaches_counter_);
  const std::vector<uint32_t>* shard_ids =
      fid < templates_.size() && !templates_[fid].empty() ? &templates_[fid] : nullptr;
  if (worker >= leases_.size() || shard_ids == nullptr) {
    outcome.latency = config_.attach_metadata_base;
    return outcome;
  }
  outcome.latency = config_.attach_metadata_base +
                    config_.attach_metadata_per_shard *
                        static_cast<double>(shard_ids->size());
  auto lease_it = leases_[worker].find(fid);
  if (lease_it != leases_[worker].end() && lease_it->second.refs > 0) {
    // Lease hit: the shards are already mapped on this worker; renew only.
    outcome.lease_hit = true;
    ++lease_hits_;
    Count(lease_hits_counter_);
    GrantLease(worker, fid, now);
    attach_ms_.RecordDuration(outcome.latency);
    return outcome;
  }
  // Lease miss: pull every shard from its primary through this worker's NIC.
  ++lease_misses_;
  Count(lease_misses_counter_);
  std::vector<FetchRequest> requests;
  requests.reserve(shard_ids->size());
  for (const uint32_t shard_index : *shard_ids) {
    if (!EnsureLivePrimary(shard_index)) {
      continue;  // whole pool down; fail open — the dedup store still serves
    }
    requests.push_back(
        FetchRequest{shards_[shard_index].replicas.front(), shards_[shard_index].npages});
  }
  const FetchOutcome fetch = nics_[worker].Issue(now, std::move(requests), fabric_);
  outcome.latency += fetch.Total();
  outcome.fetched_pages = fetch.pages;
  remote_fetch_pages_ += fetch.pages;
  remote_fetch_ops_ += fetch.ops;
  coalesced_requests_ += fetch.coalesced;
  Count(fetch_pages_counter_, static_cast<double>(fetch.pages));
  Count(fetch_ops_counter_, static_cast<double>(fetch.ops));
  Count(coalesced_counter_, static_cast<double>(fetch.coalesced));
  GrantLease(worker, fid, now);
  attach_ms_.RecordDuration(outcome.latency);
  return outcome;
}

void PoolManager::GrantLease(uint32_t worker, FunctionId fid, SimTime now) {
  Lease& lease = leases_[worker][fid];
  lease.refs += 1;
  lease.expires = now + config_.lease_ttl;
  // One expiry event per grant window: the lease dies when the last grant's
  // window lapses — refcounted expiry, driven by the control-plane clock.
  const SimTime expiry = std::max(now, clock_.now()) + config_.lease_ttl;
  clock_.ScheduleAt(expiry, [this, worker, fid] {
    auto it = leases_[worker].find(fid);
    if (it == leases_[worker].end() || it->second.refs == 0) {
      return;  // already revoked or released with the worker
    }
    if (--it->second.refs == 0) {
      leases_[worker].erase(it);
      ++leases_expired_;
      Count(expired_counter_);
    }
  });
}

uint32_t PoolManager::LeaseRefs(uint32_t worker, FunctionId fid) const {
  if (worker >= leases_.size() || fid == kInvalidFunctionId) {
    return 0;
  }
  const auto it = leases_[worker].find(fid);
  return it == leases_[worker].end() ? 0 : it->second.refs;
}

void PoolManager::ReleaseWorker(uint32_t worker) {
  if (worker < leases_.size()) {
    leases_[worker].clear();
  }
}

void PoolManager::OnPoolNodeCrash(uint32_t pool_node, SimTime when) {
  if (pool_node >= alive_.size() || !alive_[pool_node]) {
    return;
  }
  alive_[pool_node] = false;
  ring_.RemoveNode(pool_node);
  // Walk shards in index order (deterministic). Losing a replica is silent;
  // losing a *primary* promotes a survivor; losing the last replica revokes
  // every lease whose template includes the shard.
  std::vector<bool> shard_lost(shards_.size(), false);
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    const auto it = std::find(shard.replicas.begin(), shard.replicas.end(), pool_node);
    if (it == shard.replicas.end()) {
      continue;
    }
    const bool was_primary = it == shard.replicas.begin();
    shard.replicas.erase(it);
    if (shard.replicas.empty()) {
      shard_lost[s] = true;
    } else if (was_primary) {
      // Replica promotion: the next live replica serves reads; leases stay
      // valid because placement metadata is all that changes.
      ++replica_promotions_;
      Count(promotions_counter_);
    }
  }
  // Revoke leases on templates that lost a shard entirely (replication 1):
  // those workers must re-fetch after the reseed.
  for (FunctionId fid = 0; fid < templates_.size(); ++fid) {
    bool lost = false;
    for (const uint32_t s : templates_[fid]) {
      if (shard_lost[s]) {
        lost = true;
        break;
      }
    }
    if (!lost) {
      continue;
    }
    for (auto& worker_leases : leases_) {
      const auto it = worker_leases.find(fid);
      if (it != worker_leases.end()) {
        worker_leases.erase(it);
        ++leases_revoked_;
        Count(revoked_counter_);
      }
    }
  }
  ScheduleRebalance(when + config_.rebalance_delay);
}

void PoolManager::OnPoolNodeRestart(uint32_t pool_node, SimTime when) {
  if (pool_node >= alive_.size() || alive_[pool_node]) {
    return;
  }
  alive_[pool_node] = true;
  ring_.AddNode(pool_node);
  ScheduleRebalance(when + config_.rebalance_delay);
}

void PoolManager::ScheduleRebalance(SimTime when) {
  if (rebalance_pending_) {
    return;  // one sweep covers every membership change before it fires
  }
  rebalance_pending_ = true;
  clock_.ScheduleAt(std::max(when, clock_.now()), [this] {
    rebalance_pending_ = false;
    RunRebalance(clock_.now());
  });
}

void PoolManager::RunRebalance(SimTime now) {
  (void)now;
  if (ring_.node_count() == 0) {
    return;  // nothing alive to move to; retried after the next restart
  }
  std::vector<uint32_t> desired;
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    ring_.OwnersFor(shard.fingerprint, config_.replication, &desired);
    if (desired == shard.replicas) {
      continue;
    }
    const bool was_lost = shard.replicas.empty();
    // Count one move per node that newly receives the shard (background
    // copy traffic, off the attach critical path).
    uint64_t additions = 0;
    for (const uint32_t node : desired) {
      if (std::find(shard.replicas.begin(), shard.replicas.end(), node) ==
          shard.replicas.end()) {
        ++additions;
      }
    }
    if (additions > 0) {
      rebalance_moves_ += additions;
      rebalanced_pages_ += additions * shard.npages;
      Count(rebalance_counter_, static_cast<double>(additions));
    }
    if (was_lost) {
      ++reseeded_shards_;
      Count(reseed_counter_);
    }
    // Keep a surviving primary in place when the ring still lists it —
    // promotion already redirected readers there; demoting it back would
    // churn leases for no benefit.
    const uint32_t old_primary = was_lost ? 0 : shard.replicas.front();
    shard.replicas = desired;
    if (!was_lost) {
      const auto it = std::find(shard.replicas.begin(), shard.replicas.end(), old_primary);
      if (it != shard.replicas.end() && it != shard.replicas.begin()) {
        std::rotate(shard.replicas.begin(), it, it + 1);
      }
    }
  }
}

std::vector<uint64_t> PoolManager::PrimaryPagesPerNode() const {
  std::vector<uint64_t> pages(alive_.size(), 0);
  for (const Shard& shard : shards_) {
    if (!shard.replicas.empty() && shard.replicas.front() < pages.size()) {
      pages[shard.replicas.front()] += shard.npages;
    }
  }
  return pages;
}

std::vector<uint64_t> PoolManager::ShardPagesPerNode() const {
  std::vector<uint64_t> pages(alive_.size(), 0);
  for (const Shard& shard : shards_) {
    for (const uint32_t node : shard.replicas) {
      if (node < pages.size()) {
        pages[node] += shard.npages;
      }
    }
  }
  return pages;
}

}  // namespace trenv
