#include "src/poolmgr/hash_ring.h"

#include <algorithm>

#include "src/common/rng.h"

namespace trenv {
namespace {

// Virtual-point hash: mixes the node id and replica index so a node's points
// scatter uniformly. Purely arithmetic — placement never draws randomness, so
// every participant computes the same ring.
uint64_t VNodeHash(uint32_t node, uint32_t replica) {
  return MixU64((static_cast<uint64_t>(node) << 32) | (replica + 1));
}

}  // namespace

void HashRing::AddNode(uint32_t node) {
  if (Contains(node)) {
    return;
  }
  nodes_.insert(std::lower_bound(nodes_.begin(), nodes_.end(), node), node);
  ring_.reserve(ring_.size() + vnodes_);
  for (uint32_t r = 0; r < vnodes_; ++r) {
    const VNode vnode{VNodeHash(node, r), node};
    ring_.insert(std::lower_bound(ring_.begin(), ring_.end(), vnode), vnode);
  }
}

void HashRing::RemoveNode(uint32_t node) {
  const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), node);
  if (it == nodes_.end() || *it != node) {
    return;
  }
  nodes_.erase(it);
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [node](const VNode& v) { return v.node == node; }),
              ring_.end());
}

bool HashRing::Contains(uint32_t node) const {
  return std::binary_search(nodes_.begin(), nodes_.end(), node);
}

void HashRing::OwnersFor(uint64_t key, uint32_t replicas, std::vector<uint32_t>* out) const {
  out->clear();
  if (ring_.empty() || replicas == 0) {
    return;
  }
  const uint32_t want = std::min<uint32_t>(replicas, static_cast<uint32_t>(nodes_.size()));
  const uint64_t point = MixU64(key);
  size_t i = static_cast<size_t>(
      std::lower_bound(ring_.begin(), ring_.end(), VNode{point, 0}) - ring_.begin());
  for (size_t walked = 0; out->size() < want && walked < ring_.size(); ++walked) {
    if (i == ring_.size()) {
      i = 0;  // wrap past 2^64
    }
    const uint32_t node = ring_[i].node;
    if (std::find(out->begin(), out->end(), node) == out->end()) {
      out->push_back(node);
    }
    ++i;
  }
}

}  // namespace trenv
