#include "src/criu/trenv_engine.h"

#include <utility>

#include "src/common/cost_model.h"

namespace trenv {

TrEnvEngine::TrEnvEngine(SandboxFactory* factory, SandboxPool* pool, MmtApi* mmt,
                         SnapshotDedupStore* dedup, Options options, Checkpointer checkpointer)
    : RestoreEngine(checkpointer),
      factory_(factory),
      pool_(pool),
      mmt_(mmt),
      dedup_(dedup),
      options_(options) {
  if (options_.use_mm_template) {
    name_ = "trenv";
  } else if (options_.clone_into_cgroup) {
    name_ = "trenv-cgroup";  // repurpose + clone-into, no mm-template
  } else if (options_.repurpose_sandbox) {
    name_ = "trenv-reconfig";  // repurpose only
  } else {
    name_ = "trenv-base";
  }
}

TrEnvEngine::TrEnvEngine(SandboxFactory* factory, SandboxPool* pool, MmtApi* mmt,
                         SnapshotDedupStore* dedup)
    : TrEnvEngine(factory, pool, mmt, dedup, Options{}) {}

Status TrEnvEngine::Prepare(const FunctionProfile& profile) {
  TRENV_RETURN_IF_ERROR(RestoreEngine::Prepare(profile));
  const FunctionId fid = FunctionIdOf(profile);
  if (!options_.use_mm_template ||
      (fid < prepared_.size() && prepared_[fid] != nullptr)) {
    return Status::Ok();
  }
  const FunctionSnapshot* snapshot = SnapshotFor(profile);
  // Step A2: deduplicate the snapshot into the shared pool...
  TRENV_ASSIGN_OR_RETURN(ConsolidatedImage image, dedup_->Store(*snapshot));
  // ...and build one mm-template per process from the consolidated image.
  std::vector<MmtId> ids;
  for (size_t p = 0; p < image.processes.size(); ++p) {
    const ProcessImage& proc_image = snapshot->processes[p];
    MmtId id = mmt_->MmtCreate(profile.name + "/" + proc_image.process_name);
    for (const PlacedRegion& placed : image.processes[p]) {
      const MemoryRegion& region = placed.region;
      TRENV_RETURN_IF_ERROR(mmt_->MmtAddMap(id, region.start, region.bytes(), region.prot,
                                            region.is_private,
                                            region.type == VmaType::kFileBacked ? 1 : -1, 0,
                                            region.name));
      uint64_t done = 0;
      for (const PlacedChunk& chunk : placed.chunks) {
        TRENV_RETURN_IF_ERROR(mmt_->MmtSetupPt(id, region.start + done * kPageSize,
                                               chunk.npages * kPageSize, chunk.offset,
                                               chunk.pool)
                                  .status());
        done += chunk.npages;
      }
    }
    ids.push_back(id);
  }
  if (prepared_.size() <= fid) {
    prepared_.resize(fid + 1);
  }
  prepared_[fid] = std::make_unique<Prepared>(Prepared{std::move(ids), std::move(image)});
  return Status::Ok();
}

const std::vector<MmtId>* TrEnvEngine::TemplatesFor(const std::string& function) const {
  const FunctionId id = GlobalFunctionInterner().Find(function);
  return id < prepared_.size() && prepared_[id] != nullptr ? &prepared_[id]->templates
                                                           : nullptr;
}

const ConsolidatedImage* TrEnvEngine::ImageFor(const std::string& function) const {
  const FunctionId id = GlobalFunctionInterner().Find(function);
  return id < prepared_.size() && prepared_[id] != nullptr ? &prepared_[id]->image : nullptr;
}

Result<RestoreOutcome> TrEnvEngine::Restore(const FunctionProfile& profile,
                                            RestoreContext& ctx) {
  const FunctionSnapshot* snapshot = SnapshotFor(profile);
  if (snapshot == nullptr) {
    return Status::FailedPrecondition("function was never prepared: " + profile.name);
  }
  RestoreOutcome outcome;
  const SimTime t0 = ctx.tracer != nullptr ? ctx.tracer->now(ctx.trace_loc.pid) : SimTime();

  // --- Step B2: sandbox (repurpose if possible). ---
  std::unique_ptr<Sandbox> sandbox;
  if (options_.repurpose_sandbox) {
    sandbox = pool_->Take();
  }
  if (sandbox != nullptr) {
    auto overlay = pool_->AcquireOverlay(FunctionIdOf(profile));
    TRENV_ASSIGN_OR_RETURN(SandboxCost cost,
                           sandbox->Repurpose(profile.name, overlay, profile.limits));
    outcome.startup.sandbox = cost.Total();
    // The restored processes must still enter the reused cgroup: either via
    // legacy migration (global-rwsem-bound) or CLONE_INTO_CGROUP at spawn.
    outcome.startup.sandbox +=
        options_.clone_into_cgroup
            ? factory_->cgroup_manager().CloneIntoCost()
            : factory_->cgroup_manager().MigrateCost(ctx.concurrent_startups);
    outcome.startup.sandbox_repurposed = true;
  } else {
    SandboxFactory::CreateResult created =
        factory_->CreateCold(profile.name, pool_->AcquireOverlay(FunctionIdOf(profile)), profile.limits,
                             ctx.concurrent_startups, options_.clone_into_cgroup);
    sandbox = std::move(created.sandbox);
    outcome.startup.sandbox = created.cost.Total();
  }
  outcome.instance = std::make_unique<FunctionInstance>(profile.name, std::move(sandbox));
  TracePhase(ctx, outcome.startup.sandbox_repurposed ? "sandbox.repurpose" : "sandbox.cold", t0,
             outcome.startup.sandbox);

  // --- Step B3: CRIU repurpose request (non-memory process state). ---
  outcome.startup.process =
      cost::kCriuRepurposeRequest +
      cost::kCriuPerThreadClone * static_cast<double>(snapshot->TotalThreads()) +
      cost::kCriuPerOpenFd * static_cast<double>(profile.open_fds);
  TracePhase(ctx, "criu.process_state", t0 + outcome.startup.sandbox, outcome.startup.process);
  SimTime phase_start = t0 + outcome.startup.sandbox + outcome.startup.process;

  // --- Step B4: memory state. ---
  if (options_.use_mm_template) {
    TRENV_RETURN_IF_ERROR(
        MaterializeLayoutOnly(*snapshot, *outcome.instance, ctx, /*add_vmas=*/false));
    const std::vector<MmtId>& ids = PreparedFor(profile)->templates;
    size_t p = 0;
    for (auto& process : outcome.instance->processes()) {
      TRENV_ASSIGN_OR_RETURN(MmtAttachResult attach, mmt_->MmtAttach(ids[p++], &process->mm()));
      outcome.startup.memory += attach.latency;
      const obs::SpanId span = TracePhase(ctx, "mmt.attach", phase_start, attach.latency);
      if (ctx.tracer != nullptr) {
        ctx.tracer->Annotate(span, "process", process->name());
        ctx.tracer->Annotate(span, "metadata_bytes",
                             static_cast<int64_t>(attach.metadata_bytes));
        ctx.tracer->Annotate(span, "mapped_pages", static_cast<int64_t>(attach.mapped_pages));
      }
      phase_start = phase_start + attach.latency;
    }
  } else {
    // Ablation: repurposed sandbox but copy-based memory restoration.
    TRENV_RETURN_IF_ERROR(MaterializeLocal(*snapshot, *outcome.instance, ctx));
    uint64_t vma_count = 0;
    for (const auto& image : snapshot->processes) {
      vma_count += image.regions.size();
    }
    outcome.startup.memory =
        SimDuration::FromSecondsF(static_cast<double>(snapshot->TotalBytes()) /
                                  cost::kCriuMemCopyBytesPerSec) +
        cost::kMmapSyscall * static_cast<double>(vma_count);
    const obs::SpanId span = TracePhase(ctx, "criu.memcopy", phase_start, outcome.startup.memory);
    if (ctx.tracer != nullptr) {
      ctx.tracer->Annotate(span, "bytes", static_cast<int64_t>(snapshot->TotalBytes()));
    }
  }
  return outcome;
}

Result<ExecutionOverheads> TrEnvEngine::OnExecute(const FunctionProfile& profile,
                                                  FunctionInstance& instance,
                                                  RestoreContext& ctx) {
  SimDuration rollback_cost;
  if (options_.groundhog_restore && options_.use_mm_template && instance.invocations > 0) {
    // Roll the memory state back to the pristine template before reuse.
    const std::vector<MmtId>& ids = PreparedFor(profile)->templates;
    size_t p = 0;
    for (auto& process : instance.processes()) {
      MmStruct& mm = process->mm();
      ctx.frames->FreePages(mm.ResidentLocalPages());
      std::vector<Vaddr> starts;
      for (const auto& [start, vma] : mm.vmas()) {
        starts.push_back(start);
      }
      for (Vaddr start : starts) {
        TRENV_RETURN_IF_ERROR(mm.RemoveVma(start));
      }
      TRENV_ASSIGN_OR_RETURN(MmtAttachResult attach, mmt_->MmtAttach(ids[p++], &mm));
      rollback_cost += attach.latency;
    }
    if (ctx.tracer != nullptr && rollback_cost > SimDuration::Zero()) {
      ctx.tracer->RecordSpanAt(ctx.trace_loc, "mmt.rollback", "restore",
                               ctx.tracer->now(ctx.trace_loc.pid), rollback_cost,
                               ctx.trace_parent);
    }
  }
  // Open fetch streams on any message-model pools backing this instance, so
  // the pool's contention model sees the concurrent load.
  std::vector<MemoryBackend*> streams;
  uint64_t remote_cxl_pages = 0;
  for (auto& process : instance.processes()) {
    const uint64_t lazy_pages = process->mm().page_table().CountPagesIf(
        [](const PteFlags& f) { return f.remote() && !f.valid; });
    remote_cxl_pages += process->mm().page_table().CountPagesIf(
        [](const PteFlags& f) { return f.remote() && f.valid; });
    if (lazy_pages > 0) {
      for (PoolKind kind : {PoolKind::kRdma, PoolKind::kNas}) {
        MemoryBackend* backend = ctx.backends->Get(kind);
        if (backend != nullptr) {
          backend->BeginStream();
          streams.push_back(backend);
        }
      }
    }
  }
  if (!streams.empty()) {
    open_streams_[&instance] = std::move(streams);
  }

  TRENV_ASSIGN_OR_RETURN(BulkAccessStats stats, TouchInvocationPages(profile, instance, ctx));
  ExecutionOverheads overheads;
  overheads.added_latency = stats.latency;
  overheads.added_cpu = stats.fetch_cpu;
  // Direct CXL loads slow the CPU-bound portion (no faults, just latency).
  // The slowdown scales with the fraction of reads actually served from
  // remote byte-addressable memory: templates that keep hot regions in
  // local DRAM (the paper's suggested optimization) shrink it.
  (void)remote_cxl_pages;
  const uint64_t direct_reads = stats.direct_remote + stats.direct_local;
  if (stats.direct_remote > 0 && direct_reads > 0) {
    const double remote_fraction =
        static_cast<double>(stats.direct_remote) / static_cast<double>(direct_reads);
    overheads.cpu_multiplier =
        1.0 + (ExecutionModel::CxlCpuMultiplier(profile) - 1.0) * remote_fraction;
  }
  overheads.added_latency += rollback_cost;
  // Heat accounting for the tiered-promotion policy: every chunk of this
  // function's consolidated image was (potentially) touched.
  if (promotion_ != nullptr) {
    const Prepared* prepared = PreparedFor(profile);
    if (prepared != nullptr) {
      for (const auto& placed_regions : prepared->image.processes) {
        for (const auto& placed : placed_regions) {
          for (const auto& chunk : placed.chunks) {
            promotion_->RecordAccess(PoolPlacement{chunk.pool, chunk.offset, chunk.npages}, 1);
          }
        }
      }
    }
    if (++executions_since_sweep_ >= promotion_interval_) {
      executions_since_sweep_ = 0;
      for (const PromotionManager::Move& move : promotion_->Sweep()) {
        // Future templates see the new placement; update the recorded image
        // so heat accounting follows the chunk.
        for (auto& entry : prepared_) {
          if (entry == nullptr) {
            continue;
          }
          ConsolidatedImage& image = entry->image;
          for (auto& placed_regions : image.processes) {
            for (auto& placed : placed_regions) {
              for (auto& chunk : placed.chunks) {
                if (chunk.pool == move.from.kind && chunk.offset == move.from.base &&
                    chunk.npages == move.from.npages) {
                  chunk.pool = move.to.kind;
                  chunk.offset = move.to.base;
                }
              }
            }
          }
        }
      }
    }
  }
  return overheads;
}

void TrEnvEngine::OnExecuteDone(FunctionInstance& instance) {
  auto it = open_streams_.find(&instance);
  if (it == open_streams_.end()) {
    return;
  }
  for (MemoryBackend* backend : it->second) {
    backend->EndStream();
  }
  open_streams_.erase(it);
}

void TrEnvEngine::OnCrash() {
  // The node died: close whatever fetch streams its instances had open so
  // the shared pools' contention model doesn't count ghost readers forever.
  for (auto& [instance, backends] : open_streams_) {
    for (MemoryBackend* backend : backends) {
      backend->EndStream();
    }
  }
  open_streams_.clear();
}

void TrEnvEngine::Retire(std::unique_ptr<FunctionInstance> instance, RestoreContext& ctx) {
  OnExecuteDone(*instance);
  ctx.frames->FreePages(instance->ResidentLocalPages());
  std::unique_ptr<Sandbox> sandbox = instance->TakeSandbox();
  if (sandbox == nullptr || !options_.repurpose_sandbox) {
    return;
  }
  // Step B1: cleanse (kill processes, purge upper dirs) and park.
  sandbox->Cleanse(static_cast<uint32_t>(instance->processes().size()));
  // Return the function overlay to its cache for the next instance.
  pool_->ReleaseOverlay(instance->function_id(), sandbox->function_overlay());
  pool_->Put(std::move(sandbox));
}

}  // namespace trenv
