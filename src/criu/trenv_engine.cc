#include "src/criu/trenv_engine.h"

#include <algorithm>
#include <utility>

#include "src/common/cost_model.h"

namespace trenv {

TrEnvEngine::TrEnvEngine(SandboxFactory* factory, SandboxPool* pool, MmtApi* mmt,
                         SnapshotDedupStore* dedup, Options options, Checkpointer checkpointer)
    : RestoreEngine(checkpointer),
      factory_(factory),
      pool_(pool),
      mmt_(mmt),
      dedup_(dedup),
      options_(options),
      prefetch_nic_(options.prefetch.incast_penalty) {
  if (options_.use_mm_template) {
    name_ = "trenv";
  } else if (options_.clone_into_cgroup) {
    name_ = "trenv-cgroup";  // repurpose + clone-into, no mm-template
  } else if (options_.repurpose_sandbox) {
    name_ = "trenv-reconfig";  // repurpose only
  } else {
    name_ = "trenv-base";
  }
}

TrEnvEngine::TrEnvEngine(SandboxFactory* factory, SandboxPool* pool, MmtApi* mmt,
                         SnapshotDedupStore* dedup)
    : TrEnvEngine(factory, pool, mmt, dedup, Options{}) {}

Status TrEnvEngine::Prepare(const FunctionProfile& profile) {
  TRENV_RETURN_IF_ERROR(RestoreEngine::Prepare(profile));
  const FunctionId fid = FunctionIdOf(profile);
  if (!options_.use_mm_template ||
      (fid < prepared_.size() && prepared_[fid] != nullptr)) {
    return Status::Ok();
  }
  const FunctionSnapshot* snapshot = SnapshotFor(profile);
  // Step A2: deduplicate the snapshot into the shared pool...
  TRENV_ASSIGN_OR_RETURN(ConsolidatedImage image, dedup_->Store(*snapshot));
  // ...and build one mm-template per process from the consolidated image.
  std::vector<MmtId> ids;
  for (size_t p = 0; p < image.processes.size(); ++p) {
    const ProcessImage& proc_image = snapshot->processes[p];
    MmtId id = mmt_->MmtCreate(profile.name + "/" + proc_image.process_name);
    for (const PlacedRegion& placed : image.processes[p]) {
      const MemoryRegion& region = placed.region;
      TRENV_RETURN_IF_ERROR(mmt_->MmtAddMap(id, region.start, region.bytes(), region.prot,
                                            region.is_private,
                                            region.type == VmaType::kFileBacked ? 1 : -1, 0,
                                            region.name));
      uint64_t done = 0;
      for (const PlacedChunk& chunk : placed.chunks) {
        TRENV_RETURN_IF_ERROR(mmt_->MmtSetupPt(id, region.start + done * kPageSize,
                                               chunk.npages * kPageSize, chunk.offset,
                                               chunk.pool)
                                  .status());
        done += chunk.npages;
      }
    }
    ids.push_back(id);
  }
  if (prepared_.size() <= fid) {
    prepared_.resize(fid + 1);
  }
  prepared_[fid] = std::make_unique<Prepared>(Prepared{std::move(ids), std::move(image), {}});
  return Status::Ok();
}

const std::vector<MmtId>* TrEnvEngine::TemplatesFor(const std::string& function) const {
  const FunctionId id = GlobalFunctionInterner().Find(function);
  return id < prepared_.size() && prepared_[id] != nullptr ? &prepared_[id]->templates
                                                           : nullptr;
}

const ConsolidatedImage* TrEnvEngine::ImageFor(const std::string& function) const {
  const FunctionId id = GlobalFunctionInterner().Find(function);
  return id < prepared_.size() && prepared_[id] != nullptr ? &prepared_[id]->image : nullptr;
}

const WorkingSetProfile* TrEnvEngine::WorkingSetFor(const std::string& function) const {
  const FunctionId id = GlobalFunctionInterner().Find(function);
  if (id >= prepared_.size() || prepared_[id] == nullptr || !prepared_[id]->ws.complete) {
    return nullptr;
  }
  return &prepared_[id]->ws;
}

void TrEnvEngine::WorkingSetRecorder::Arm(WorkingSetProfile* ws, FunctionInstance& instance) {
  ws_ = ws;
  mms_.clear();
  for (auto& process : instance.processes()) {
    mms_.push_back(&process->mm());
  }
  if (ws_->processes.size() < mms_.size()) {
    ws_->processes.resize(mms_.size());
  }
}

void TrEnvEngine::WorkingSetRecorder::Disarm() {
  ws_ = nullptr;
  mms_.clear();
}

void TrEnvEngine::WorkingSetRecorder::OnTouch(const MmStruct& mm, Vpn vpn,
                                              uint64_t npages) {
  if (ws_ == nullptr) {
    return;
  }
  for (size_t p = 0; p < mms_.size(); ++p) {
    if (mms_[p] == &mm) {
      ws_->processes[p].Add(vpn, npages);
      return;
    }
  }
}

Result<RestoreOutcome> TrEnvEngine::Restore(const FunctionProfile& profile,
                                            RestoreContext& ctx) {
  const FunctionSnapshot* snapshot = SnapshotFor(profile);
  if (snapshot == nullptr) {
    return Status::FailedPrecondition("function was never prepared: " + profile.name);
  }
  RestoreOutcome outcome;
  const SimTime t0 = ctx.tracer != nullptr ? ctx.tracer->now(ctx.trace_loc.pid) : SimTime();

  // --- Step B2: sandbox (repurpose if possible). ---
  std::unique_ptr<Sandbox> sandbox;
  if (options_.repurpose_sandbox) {
    sandbox = pool_->Take();
  }
  if (sandbox != nullptr) {
    auto overlay = pool_->AcquireOverlay(FunctionIdOf(profile));
    TRENV_ASSIGN_OR_RETURN(SandboxCost cost,
                           sandbox->Repurpose(profile.name, overlay, profile.limits));
    outcome.startup.sandbox = cost.Total();
    // The restored processes must still enter the reused cgroup: either via
    // legacy migration (global-rwsem-bound) or CLONE_INTO_CGROUP at spawn.
    outcome.startup.sandbox +=
        options_.clone_into_cgroup
            ? factory_->cgroup_manager().CloneIntoCost()
            : factory_->cgroup_manager().MigrateCost(ctx.concurrent_startups);
    outcome.startup.sandbox_repurposed = true;
  } else {
    SandboxFactory::CreateResult created =
        factory_->CreateCold(profile.name, pool_->AcquireOverlay(FunctionIdOf(profile)), profile.limits,
                             ctx.concurrent_startups, options_.clone_into_cgroup);
    sandbox = std::move(created.sandbox);
    outcome.startup.sandbox = created.cost.Total();
  }
  outcome.instance = std::make_unique<FunctionInstance>(profile.name, std::move(sandbox));
  TracePhase(ctx, outcome.startup.sandbox_repurposed ? "sandbox.repurpose" : "sandbox.cold", t0,
             outcome.startup.sandbox);

  // --- Step B3: CRIU repurpose request (non-memory process state). ---
  outcome.startup.process =
      cost::kCriuRepurposeRequest +
      cost::kCriuPerThreadClone * static_cast<double>(snapshot->TotalThreads()) +
      cost::kCriuPerOpenFd * static_cast<double>(profile.open_fds);
  TracePhase(ctx, "criu.process_state", t0 + outcome.startup.sandbox, outcome.startup.process);
  SimTime phase_start = t0 + outcome.startup.sandbox + outcome.startup.process;

  // --- Step B4: memory state. ---
  if (options_.use_mm_template) {
    TRENV_RETURN_IF_ERROR(
        MaterializeLayoutOnly(*snapshot, *outcome.instance, ctx, /*add_vmas=*/false));
    const std::vector<MmtId>& ids = PreparedFor(profile)->templates;
    size_t p = 0;
    uint64_t attach_lazy_pages = 0;
    for (auto& process : outcome.instance->processes()) {
      TRENV_ASSIGN_OR_RETURN(MmtAttachResult attach, mmt_->MmtAttach(ids[p++], &process->mm()));
      outcome.startup.memory += attach.latency;
      attach_lazy_pages += attach.lazy_pages;
      const obs::SpanId span = TracePhase(ctx, "mmt.attach", phase_start, attach.latency);
      if (ctx.tracer != nullptr) {
        ctx.tracer->Annotate(span, "process", process->name());
        ctx.tracer->Annotate(span, "metadata_bytes",
                             static_cast<int64_t>(attach.metadata_bytes));
        ctx.tracer->Annotate(span, "mapped_pages", static_cast<int64_t>(attach.mapped_pages));
      }
      phase_start = phase_start + attach.latency;
    }
    // Fully byte-addressable templates (T-CXL) have nothing to prefetch; the
    // attach-time lazy-page count makes that a constant-time skip.
    if (options_.prefetch.enabled && attach_lazy_pages > 0) {
      PrefetchWorkingSet(profile, outcome, ctx, t0);
    }
  } else {
    // Ablation: repurposed sandbox but copy-based memory restoration.
    TRENV_RETURN_IF_ERROR(MaterializeLocal(*snapshot, *outcome.instance, ctx));
    uint64_t vma_count = 0;
    for (const auto& image : snapshot->processes) {
      vma_count += image.regions.size();
    }
    outcome.startup.memory =
        SimDuration::FromSecondsF(static_cast<double>(snapshot->TotalBytes()) /
                                  cost::kCriuMemCopyBytesPerSec) +
        cost::kMmapSyscall * static_cast<double>(vma_count);
    const obs::SpanId span = TracePhase(ctx, "criu.memcopy", phase_start, outcome.startup.memory);
    if (ctx.tracer != nullptr) {
      ctx.tracer->Annotate(span, "bytes", static_cast<int64_t>(snapshot->TotalBytes()));
    }
  }
  return outcome;
}

void TrEnvEngine::PrefetchWorkingSet(const FunctionProfile& profile, RestoreOutcome& outcome,
                                     RestoreContext& ctx, SimTime t0) {
  const Prepared* prepared = PreparedFor(profile);
  if (prepared == nullptr || !prepared->ws.complete) {
    return;  // nothing recorded yet: the first invocation demand-faults
  }
  const WorkingSetProfile& ws = prepared->ws;
  const double eager = options_.prefetch.eager_fraction;
  uint64_t budget =
      eager >= 1.0 ? ws.TotalPages()
                   : static_cast<uint64_t>(eager * static_cast<double>(ws.TotalPages()));
  if (budget == 0) {
    return;
  }

  // Intersect the recorded runs with the attached page tables: only runs
  // still lazy on a message-model pool (RDMA/NAS) are worth fetching; CXL
  // pages are read directly and resident pages need nothing.
  struct PlannedRun {
    MmStruct* mm;
    Vpn vpn;
    PteRun run;  // clipped template run
  };
  std::vector<PlannedRun> plan;
  size_t p = 0;
  for (auto& process : outcome.instance->processes()) {
    if (p >= ws.processes.size() || budget == 0) {
      break;
    }
    MmStruct& mm = process->mm();
    for (const PageRun& rec : ws.processes[p++].runs()) {
      if (budget == 0) {
        break;
      }
      mm.page_table().ForEachRunIn(rec.vpn, rec.npages, [&](Vpn vpn, const PteRun& run) {
        if (budget == 0 || run.flags.valid || !run.flags.remote()) {
          return;
        }
        PteRun clipped = run;
        clipped.npages = std::min(run.npages, budget);
        budget -= clipped.npages;
        plan.push_back(PlannedRun{&mm, vpn, clipped});
      });
    }
  }
  if (plan.empty()) {
    return;
  }

  // Map the fetched runs resident-local up front. Frame pressure stops the
  // prefetch gracefully: unplanned runs simply demand-fault as before.
  uint64_t pool_pages[kPoolKindCount] = {};
  uint64_t pool_runs[kPoolKindCount] = {};
  uint64_t mapped_pages = 0;
  uint64_t mapped_runs = 0;
  for (const PlannedRun& pr : plan) {
    auto frame_or = ctx.frames->AllocatePages(pr.run.npages);
    if (!frame_or.ok()) {
      break;
    }
    const Vma* vma = pr.mm->FindVma(VpnToAddr(pr.vpn));
    PteFlags flags;
    flags.valid = true;
    flags.write_protected = vma == nullptr || !vma->prot.write;
    flags.pool = PoolKind::kLocalDram;
    pr.mm->page_table().MapRange(pr.vpn, pr.run.npages, flags, frame_or.value(),
                                 pr.run.content_base, pr.run.constant_content);
    pr.mm->stats().local_pages += pr.run.npages;
    const auto pool = static_cast<size_t>(pr.run.flags.pool);
    pool_pages[pool] += pr.run.npages;
    pool_runs[pool] += 1;
    mapped_pages += pr.run.npages;
    mapped_runs += 1;
  }
  if (mapped_pages == 0) {
    return;
  }

  // One coalesced scatter-gather batch per message pool, issued through the
  // engine's NIC queue at restore start so concurrent attaches on this node
  // serialize (work-conserving busy window) and RetryPolicy/chaos apply.
  uint64_t ops = 0;
  for (size_t pool = 0; pool < kPoolKindCount; ++pool) {
    if (pool_pages[pool] == 0) {
      continue;
    }
    MemoryBackend* backend = ctx.backends->Get(static_cast<PoolKind>(pool));
    if (backend == nullptr) {
      continue;
    }
    std::vector<FetchRequest> requests;
    requests.push_back(
        FetchRequest{static_cast<uint32_t>(pool), pool_pages[pool], pool_runs[pool]});
    const FetchOutcome fetched = prefetch_nic_.Issue(ctx.now, std::move(requests), backend);
    ops += fetched.ops;
  }
  // The batches run asynchronously, overlapped with the B2 repurpose and B3
  // process-state phases; only what spills past that window lands on the
  // critical path as extra memory-phase latency.
  const SimDuration total = prefetch_nic_.busy_until() - ctx.now;
  const SimDuration hidden = outcome.startup.sandbox + outcome.startup.process;
  const SimDuration residual = total > hidden ? total - hidden : SimDuration::Zero();
  outcome.startup.memory += residual;

  const obs::SpanId span = TracePhase(ctx, "trenv.prefetch", t0, total);
  if (ctx.tracer != nullptr) {
    ctx.tracer->Annotate(span, "pages", static_cast<int64_t>(mapped_pages));
    ctx.tracer->Annotate(span, "runs", static_cast<int64_t>(mapped_runs));
    ctx.tracer->Annotate(span, "bulk_ops", static_cast<int64_t>(ops));
    ctx.tracer->Annotate(span, "hidden_ms", hidden.millis());
    ctx.tracer->Annotate(span, "residual_ms", residual.millis());
  }
  if (ctx.stats != nullptr) {
    ctx.stats->GetCounter("trenv.prefetch.attaches")->Increment();
    ctx.stats->GetCounter("trenv.prefetch.pages")->Add(static_cast<double>(mapped_pages));
    ctx.stats->GetCounter("trenv.prefetch.runs")->Add(static_cast<double>(mapped_runs));
    ctx.stats->GetCounter("trenv.prefetch.bulk_ops")->Add(static_cast<double>(ops));
  }
}

Result<ExecutionOverheads> TrEnvEngine::OnExecute(const FunctionProfile& profile,
                                                  FunctionInstance& instance,
                                                  RestoreContext& ctx) {
  SimDuration rollback_cost;
  if (options_.groundhog_restore && options_.use_mm_template && instance.invocations > 0) {
    // Roll the memory state back to the pristine template before reuse.
    const std::vector<MmtId>& ids = PreparedFor(profile)->templates;
    size_t p = 0;
    for (auto& process : instance.processes()) {
      MmStruct& mm = process->mm();
      ctx.frames->FreePages(mm.ResidentLocalPages());
      std::vector<Vaddr> starts;
      for (const auto& [start, vma] : mm.vmas()) {
        starts.push_back(start);
      }
      for (Vaddr start : starts) {
        TRENV_RETURN_IF_ERROR(mm.RemoveVma(start));
      }
      TRENV_ASSIGN_OR_RETURN(MmtAttachResult attach, mmt_->MmtAttach(ids[p++], &mm));
      rollback_cost += attach.latency;
    }
    if (ctx.tracer != nullptr && rollback_cost > SimDuration::Zero()) {
      ctx.tracer->RecordSpanAt(ctx.trace_loc, "mmt.rollback", "restore",
                               ctx.tracer->now(ctx.trace_loc.pid), rollback_cost,
                               ctx.trace_parent);
    }
  }
  // Open fetch streams on any message-model pools backing this instance, so
  // the pool's contention model sees the concurrent load.
  std::vector<MemoryBackend*> streams;
  uint64_t remote_cxl_pages = 0;
  for (auto& process : instance.processes()) {
    const uint64_t lazy_pages = process->mm().page_table().CountPagesIf(
        [](const PteFlags& f) { return f.remote() && !f.valid; });
    remote_cxl_pages += process->mm().page_table().CountPagesIf(
        [](const PteFlags& f) { return f.remote() && f.valid; });
    if (lazy_pages > 0) {
      for (PoolKind kind : {PoolKind::kRdma, PoolKind::kNas}) {
        MemoryBackend* backend = ctx.backends->Get(kind);
        if (backend != nullptr) {
          backend->BeginStream();
          streams.push_back(backend);
        }
      }
    }
  }
  if (!streams.empty()) {
    open_streams_[&instance] = std::move(streams);
  }

  // First recorded invocation: capture the major-fault footprint as the
  // function's working set (feeds both the attach prefetcher and promotion
  // heat). Recording is pure observation — fault costs are unchanged.
  Prepared* recording_target = nullptr;
  if (options_.use_mm_template &&
      (options_.prefetch.enabled || promotion_ != nullptr)) {
    Prepared* prepared = MutablePreparedFor(profile);
    if (prepared != nullptr && !prepared->ws.complete) {
      recording_target = prepared;
      recorder_.Arm(&recording_target->ws, instance);
      ctx.fault_observer = &recorder_;
    }
  }
  TRENV_ASSIGN_OR_RETURN(BulkAccessStats stats, TouchInvocationPages(profile, instance, ctx));
  if (recording_target != nullptr) {
    recorder_.Disarm();
    ctx.fault_observer = nullptr;
    recording_target->ws.complete = true;
    if (ctx.stats != nullptr) {
      ctx.stats->GetCounter("trenv.ws.recorded_pages")
          ->Add(static_cast<double>(recording_target->ws.TotalPages()));
      ctx.stats->GetCounter("trenv.ws.recorded_runs")
          ->Add(static_cast<double>(recording_target->ws.TotalRuns()));
    }
  }
  ExecutionOverheads overheads;
  overheads.added_latency = stats.latency;
  overheads.added_cpu = stats.fetch_cpu;
  // Direct CXL loads slow the CPU-bound portion (no faults, just latency).
  // The slowdown scales with the fraction of reads actually served from
  // remote byte-addressable memory: templates that keep hot regions in
  // local DRAM (the paper's suggested optimization) shrink it.
  (void)remote_cxl_pages;
  const uint64_t direct_reads = stats.direct_remote + stats.direct_local;
  if (stats.direct_remote > 0 && direct_reads > 0) {
    const double remote_fraction =
        static_cast<double>(stats.direct_remote) / static_cast<double>(direct_reads);
    overheads.cpu_multiplier =
        1.0 + (ExecutionModel::CxlCpuMultiplier(profile) - 1.0) * remote_fraction;
  }
  overheads.added_latency += rollback_cost;
  // Heat accounting for the tiered-promotion policy.
  if (promotion_ != nullptr) {
    const Prepared* prepared = PreparedFor(profile);
    if (prepared != nullptr) {
      HeatChunks(*prepared);
    }
    if (++executions_since_sweep_ >= promotion_interval_) {
      executions_since_sweep_ = 0;
      for (const PromotionManager::Move& move : promotion_->Sweep()) {
        // Future templates see the new placement; update the recorded image
        // so heat accounting follows the chunk.
        for (auto& entry : prepared_) {
          if (entry == nullptr) {
            continue;
          }
          ConsolidatedImage& image = entry->image;
          for (auto& placed_regions : image.processes) {
            for (auto& placed : placed_regions) {
              for (auto& chunk : placed.chunks) {
                if (chunk.pool == move.from.kind && chunk.offset == move.from.base &&
                    chunk.npages == move.from.npages) {
                  chunk.pool = move.to.kind;
                  chunk.offset = move.to.base;
                }
              }
            }
          }
        }
      }
    }
  }
  return overheads;
}

void TrEnvEngine::HeatChunks(const Prepared& prepared) {
  // With a recorded working set, heat each chunk by how many recorded pages
  // land in its window — untouched chunks stay cold and never migrate. Until
  // a first invocation has been recorded, fall back to heating every chunk
  // uniformly (the historical behaviour).
  //
  // Hit counts are quantized to [1, kChunkHeatMax] by chunk coverage rather
  // than fed as raw page counts: a raw count (hundreds of pages) would need
  // tens of decay sweeps to drop below demote_threshold, which unbinds the
  // hot-tier budget. Bounding the per-execute delta keeps the decay/threshold
  // dynamics the promotion knobs were tuned for while still ranking
  // candidates by recorded coverage.
  constexpr uint64_t kChunkHeatMax = 4;
  const bool use_ws = prepared.ws.complete;
  for (size_t p = 0; p < prepared.image.processes.size(); ++p) {
    const PageRunSet* set =
        use_ws && p < prepared.ws.processes.size() ? &prepared.ws.processes[p] : nullptr;
    for (const PlacedRegion& placed : prepared.image.processes[p]) {
      uint64_t done = 0;
      for (const PlacedChunk& chunk : placed.chunks) {
        uint64_t touches = 1;
        if (use_ws) {
          const Vpn base = AddrToVpn(placed.region.start) + done;
          const uint64_t hits =
              set != nullptr ? set->OverlapPages(base, chunk.npages) : 0;
          touches = chunk.npages > 0
                        ? (hits * kChunkHeatMax + chunk.npages - 1) / chunk.npages
                        : hits;
        }
        done += chunk.npages;
        if (touches == 0) {
          continue;
        }
        promotion_->RecordAccess(PoolPlacement{chunk.pool, chunk.offset, chunk.npages},
                                 touches);
      }
    }
  }
}

void TrEnvEngine::OnExecuteDone(FunctionInstance& instance) {
  auto it = open_streams_.find(&instance);
  if (it == open_streams_.end()) {
    return;
  }
  for (MemoryBackend* backend : it->second) {
    backend->EndStream();
  }
  open_streams_.erase(it);
}

void TrEnvEngine::OnCrash() {
  // The node died: close whatever fetch streams its instances had open so
  // the shared pools' contention model doesn't count ghost readers forever.
  for (auto& [instance, backends] : open_streams_) {
    for (MemoryBackend* backend : backends) {
      backend->EndStream();
    }
  }
  open_streams_.clear();
}

void TrEnvEngine::Retire(std::unique_ptr<FunctionInstance> instance, RestoreContext& ctx) {
  OnExecuteDone(*instance);
  ctx.frames->FreePages(instance->ResidentLocalPages());
  std::unique_ptr<Sandbox> sandbox = instance->TakeSandbox();
  if (sandbox == nullptr || !options_.repurpose_sandbox) {
    return;
  }
  // Step B1: cleanse (kill processes, purge upper dirs) and park.
  sandbox->Cleanse(static_cast<uint32_t>(instance->processes().size()));
  // Return the function overlay to its cache for the next instance.
  pool_->ReleaseOverlay(instance->function_id(), sandbox->function_overlay());
  pool_->Put(std::move(sandbox));
}

}  // namespace trenv
