// TrEnvEngine: the paper's system. Online restoration (Fig 6, steps B1-B4):
//
//   B1  finished instances are cleansed and parked in the universal pool
//   B2  a pending invocation repurposes ANY idle sandbox (2 mounts + cgroup
//       reconfigure), falling back to cold creation with CLONE_INTO_CGROUP
//   B3  CRIU "repurpose" restores non-memory process state into the sandbox
//   B4  mmt_attach copies template metadata; pages stay in the CXL/RDMA pool
//
// Execution reads CXL pages directly (zero software overhead), CoWs on
// write, and major-faults RDMA pages on first touch.
#ifndef TRENV_CRIU_TRENV_ENGINE_H_
#define TRENV_CRIU_TRENV_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/criu/deduplicator.h"
#include "src/criu/restore_engine.h"
#include "src/mempool/promotion.h"
#include "src/mmtemplate/api.h"
#include "src/poolmgr/fetch_queue.h"
#include "src/runtime/working_set.h"

namespace trenv {

class TrEnvEngine : public RestoreEngine {
 public:
  struct Options {
    // Disables sandbox repurposing (Fig 21's ablation steps): cold create.
    bool repurpose_sandbox = true;
    // Uses CLONE_INTO_CGROUP instead of spawn-then-migrate.
    bool clone_into_cgroup = true;
    // Uses mm-template attach; when false, falls back to CRIU-style memory
    // copy (the "Cgroup"-only ablation configuration).
    bool use_mm_template = true;
    // Groundhog-style sequential-request isolation (section 10): before a
    // warm instance serves a new invocation, its memory state is rolled back
    // to the pristine template (drop CoW pages, re-attach). Costs one extra
    // attach per reuse but guarantees no state flows between requests.
    bool groundhog_restore = false;
    // Working-set-guided batched prefetch on the attach fast path. The first
    // invocation after an attach records its major-fault footprint per
    // (function, process); later attaches of RDMA/NAS-homed templates issue
    // the recorded runs as coalesced bulk fetches through the NIC queue,
    // overlapped with the B2/B3 repurpose+restore phases, so only residual
    // cold pages demand-fault during execution. Off by default: disabled
    // runs are byte-identical to the pre-prefetch engine.
    struct Prefetch {
      bool enabled = false;
      // Leading fraction of the recorded working set fetched eagerly.
      double eager_fraction = 1.0;
      // Incast penalty of the engine's private prefetch NIC queue.
      double incast_penalty = 0.04;
    } prefetch = {};
  };

  // Optional hot-chunk promotion across tiers (not owned). Executions heat
  // the function's chunks — by recorded working-set hit counts once a first
  // invocation has been recorded, uniformly before that — and a sweep runs
  // every `promotion_interval` executions, migrating hot chunks toward the
  // byte-addressable tier.
  void EnablePromotion(PromotionManager* promotion, uint64_t interval = 32) {
    promotion_ = promotion;
    promotion_interval_ = interval;
  }

  TrEnvEngine(SandboxFactory* factory, SandboxPool* pool, MmtApi* mmt,
              SnapshotDedupStore* dedup, Options options,
              Checkpointer checkpointer = Checkpointer());
  // Full TrEnv (all optimizations on).
  TrEnvEngine(SandboxFactory* factory, SandboxPool* pool, MmtApi* mmt,
              SnapshotDedupStore* dedup);

  std::string_view name() const override { return name_; }

  // Step A: checkpoint, deduplicate into the pool, build one mm-template per
  // process.
  Status Prepare(const FunctionProfile& profile) override;

  Result<RestoreOutcome> Restore(const FunctionProfile& profile, RestoreContext& ctx) override;
  Result<ExecutionOverheads> OnExecute(const FunctionProfile& profile,
                                       FunctionInstance& instance, RestoreContext& ctx) override;
  void OnExecuteDone(FunctionInstance& instance) override;
  void OnCrash() override;
  // Step B1: cleanse the sandbox and park it in the universal pool.
  void Retire(std::unique_ptr<FunctionInstance> instance, RestoreContext& ctx) override;

  const SnapshotDedupStore* dedup() const { return dedup_; }
  // The templates built for a function (one per process); for tests.
  const std::vector<MmtId>* TemplatesFor(const std::string& function) const;
  // The consolidated (deduplicated) image Prepare built for a function;
  // null until prepared. The pool control plane shards this image.
  const ConsolidatedImage* ImageFor(const std::string& function) const;
  // The recorded first-invocation working set; null until a first invocation
  // completed with recording active (prefetch or promotion enabled).
  const WorkingSetProfile* WorkingSetFor(const std::string& function) const;
  // The engine's private prefetch NIC queue (tests/benches inspect totals).
  const NicFetchQueue& prefetch_nic() const { return prefetch_nic_; }

 private:
  // Per-function step-A products (one mm-template per process, plus the
  // consolidated image driving promotion heat accounting) and the recorded
  // first-invocation working set.
  struct Prepared {
    std::vector<MmtId> templates;
    ConsolidatedImage image;
    WorkingSetProfile ws;
  };
  const Prepared* PreparedFor(const FunctionProfile& profile) const {
    const FunctionId id = FunctionIdOf(profile);
    return id < prepared_.size() ? prepared_[id].get() : nullptr;
  }
  Prepared* MutablePreparedFor(const FunctionProfile& profile) {
    const FunctionId id = FunctionIdOf(profile);
    return id < prepared_.size() ? prepared_[id].get() : nullptr;
  }

  // Captures touched page runs into a WorkingSetProfile, mapping each
  // accessed MmStruct back to its process index (address spaces may overlap
  // between processes, so the sets are kept per process).
  class WorkingSetRecorder : public PageTouchObserver {
   public:
    void Arm(WorkingSetProfile* ws, FunctionInstance& instance);
    void Disarm();
    void OnTouch(const MmStruct& mm, Vpn vpn, uint64_t npages) override;

   private:
    WorkingSetProfile* ws_ = nullptr;
    std::vector<const MmStruct*> mms_;  // process order
  };

  // Issues the recorded working set as coalesced bulk fetches overlapped
  // with the B2/B3 phases; adds only the non-hidden residual to
  // outcome.startup.memory. No-op without a complete recorded profile.
  void PrefetchWorkingSet(const FunctionProfile& profile, RestoreOutcome& outcome,
                          RestoreContext& ctx, SimTime t0);
  // Heats the function's chunks for the promotion sweep: by recorded
  // working-set overlap when available, uniformly otherwise.
  void HeatChunks(const Prepared& prepared);

  SandboxFactory* factory_;
  SandboxPool* pool_;
  MmtApi* mmt_;
  SnapshotDedupStore* dedup_;
  Options options_;
  std::string name_;
  // Indexed by FunctionId (global id space — may be sparse); null = not
  // prepared with mm-templates.
  std::vector<std::unique_ptr<Prepared>> prepared_;
  // Streams opened against non-byte-addressable pools during execution.
  std::map<FunctionInstance*, std::vector<MemoryBackend*>> open_streams_;
  PromotionManager* promotion_ = nullptr;
  uint64_t promotion_interval_ = 32;
  uint64_t executions_since_sweep_ = 0;
  WorkingSetRecorder recorder_;
  // Work-conserving NIC window for prefetch batches: concurrent attaches on
  // one node serialize their bulk fetches here.
  NicFetchQueue prefetch_nic_;
};

}  // namespace trenv

#endif  // TRENV_CRIU_TRENV_ENGINE_H_
