// TrEnvEngine: the paper's system. Online restoration (Fig 6, steps B1-B4):
//
//   B1  finished instances are cleansed and parked in the universal pool
//   B2  a pending invocation repurposes ANY idle sandbox (2 mounts + cgroup
//       reconfigure), falling back to cold creation with CLONE_INTO_CGROUP
//   B3  CRIU "repurpose" restores non-memory process state into the sandbox
//   B4  mmt_attach copies template metadata; pages stay in the CXL/RDMA pool
//
// Execution reads CXL pages directly (zero software overhead), CoWs on
// write, and major-faults RDMA pages on first touch.
#ifndef TRENV_CRIU_TRENV_ENGINE_H_
#define TRENV_CRIU_TRENV_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/criu/deduplicator.h"
#include "src/criu/restore_engine.h"
#include "src/mempool/promotion.h"
#include "src/mmtemplate/api.h"

namespace trenv {

class TrEnvEngine : public RestoreEngine {
 public:
  struct Options {
    // Disables sandbox repurposing (Fig 21's ablation steps): cold create.
    bool repurpose_sandbox = true;
    // Uses CLONE_INTO_CGROUP instead of spawn-then-migrate.
    bool clone_into_cgroup = true;
    // Uses mm-template attach; when false, falls back to CRIU-style memory
    // copy (the "Cgroup"-only ablation configuration).
    bool use_mm_template = true;
    // Groundhog-style sequential-request isolation (section 10): before a
    // warm instance serves a new invocation, its memory state is rolled back
    // to the pristine template (drop CoW pages, re-attach). Costs one extra
    // attach per reuse but guarantees no state flows between requests.
    bool groundhog_restore = false;
  };

  // Optional hot-chunk promotion across tiers (not owned). Every execution
  // heats the function's chunks; a sweep runs every `promotion_interval`
  // executions and migrates hot chunks toward the byte-addressable tier.
  void EnablePromotion(PromotionManager* promotion, uint64_t interval = 32) {
    promotion_ = promotion;
    promotion_interval_ = interval;
  }

  TrEnvEngine(SandboxFactory* factory, SandboxPool* pool, MmtApi* mmt,
              SnapshotDedupStore* dedup, Options options,
              Checkpointer checkpointer = Checkpointer());
  // Full TrEnv (all optimizations on).
  TrEnvEngine(SandboxFactory* factory, SandboxPool* pool, MmtApi* mmt,
              SnapshotDedupStore* dedup);

  std::string_view name() const override { return name_; }

  // Step A: checkpoint, deduplicate into the pool, build one mm-template per
  // process.
  Status Prepare(const FunctionProfile& profile) override;

  Result<RestoreOutcome> Restore(const FunctionProfile& profile, RestoreContext& ctx) override;
  Result<ExecutionOverheads> OnExecute(const FunctionProfile& profile,
                                       FunctionInstance& instance, RestoreContext& ctx) override;
  void OnExecuteDone(FunctionInstance& instance) override;
  void OnCrash() override;
  // Step B1: cleanse the sandbox and park it in the universal pool.
  void Retire(std::unique_ptr<FunctionInstance> instance, RestoreContext& ctx) override;

  const SnapshotDedupStore* dedup() const { return dedup_; }
  // The templates built for a function (one per process); for tests.
  const std::vector<MmtId>* TemplatesFor(const std::string& function) const;
  // The consolidated (deduplicated) image Prepare built for a function;
  // null until prepared. The pool control plane shards this image.
  const ConsolidatedImage* ImageFor(const std::string& function) const;

 private:
  // Per-function step-A products (one mm-template per process, plus the
  // consolidated image driving promotion heat accounting).
  struct Prepared {
    std::vector<MmtId> templates;
    ConsolidatedImage image;
  };
  const Prepared* PreparedFor(const FunctionProfile& profile) const {
    const FunctionId id = FunctionIdOf(profile);
    return id < prepared_.size() ? prepared_[id].get() : nullptr;
  }

  SandboxFactory* factory_;
  SandboxPool* pool_;
  MmtApi* mmt_;
  SnapshotDedupStore* dedup_;
  Options options_;
  std::string name_;
  // Indexed by FunctionId (global id space — may be sparse); null = not
  // prepared with mm-templates.
  std::vector<std::unique_ptr<Prepared>> prepared_;
  // Streams opened against non-byte-addressable pools during execution.
  std::map<FunctionInstance*, std::vector<MemoryBackend*>> open_streams_;
  PromotionManager* promotion_ = nullptr;
  uint64_t promotion_interval_ = 32;
  uint64_t executions_since_sweep_ = 0;
};

}  // namespace trenv

#endif  // TRENV_CRIU_TRENV_ENGINE_H_
