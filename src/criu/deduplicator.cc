#include "src/criu/deduplicator.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"

namespace trenv {

namespace {

constexpr uint64_t kFingerprintSeed = 0x5ead0b6c0de5ULL;

// Memoized hash chains. The fingerprint is a sequential chain
// h_{i+1} = Mix(h_i ^ page_i), so it has no closed form — but its input is
// fully determined by (content_base, npages): page_i is the arithmetic
// progression content_base + i, or content_base repeated for constant-content
// chunks. Chunking fingerprints the same progressions over and over (fixed
// chunk size, runtimes shared across every function's snapshot), so we cache
// the chain prefixes per content_base and answer repeats — and shorter or
// longer prefixes of a seen progression — without re-mixing O(npages).
// thread_local: parallel sweeps fingerprint concurrently without a lock.
uint64_t MemoizedChain(PageContent base, uint64_t npages, bool constant) {
  // Bound the per-thread footprint: drop the memo wholesale if it grows past
  // a few thousand distinct bases (each chain is one chunk long).
  constexpr size_t kMaxBases = 4096;
  thread_local std::unordered_map<uint64_t, std::vector<uint64_t>> memo[2];
  auto& table = memo[constant ? 1 : 0];
  if (table.size() > kMaxBases) {
    table.clear();
  }
  std::vector<uint64_t>& chain = table[base];
  uint64_t hash = chain.empty() ? kFingerprintSeed : chain.back();
  if (chain.capacity() < npages) {
    chain.reserve(npages);
  }
  while (chain.size() < npages) {
    const uint64_t i = chain.size();
    hash = MixU64(hash ^ (constant ? base : base + i));
    chain.push_back(hash);
  }
  return chain[npages - 1];
}

}  // namespace

uint64_t SnapshotDedupStore::Fingerprint(PageContent content_base, uint64_t npages) {
  if (npages == 0) {
    return kFingerprintSeed;
  }
  // Chains are memoized per content_base up to the largest npages seen; very
  // large one-off runs fall back to the plain loop so the memo stays small.
  constexpr uint64_t kMemoMaxPages = 1 << 16;
  if (npages <= kMemoMaxPages) {
    return MemoizedChain(content_base, npages, /*constant=*/false);
  }
  uint64_t hash = kFingerprintSeed;
  for (uint64_t i = 0; i < npages; ++i) {
    hash = MixU64(hash ^ (content_base + i));
  }
  return hash;
}

uint64_t SnapshotDedupStore::FingerprintConstant(PageContent content, uint64_t npages) {
  if (npages == 0) {
    return kFingerprintSeed;
  }
  constexpr uint64_t kMemoMaxPages = 1 << 16;
  if (npages <= kMemoMaxPages) {
    return MemoizedChain(content, npages, /*constant=*/true);
  }
  uint64_t hash = kFingerprintSeed;
  for (uint64_t i = 0; i < npages; ++i) {
    hash = MixU64(hash ^ content);
  }
  return hash;
}

namespace {

// Hotness by region class: executable/runtime pages are read on every
// invocation (keep hot); heap/stack are function-private and colder.
double HotnessFor(const MemoryRegion& region) {
  if (region.type == VmaType::kFileBacked) {
    return 1.0;
  }
  return region.name == "[heap]" ? 0.5 : 0.3;
}

}  // namespace

Result<PlacedChunk> SnapshotDedupStore::StoreChunk(const ChunkKey& key, double hotness) {
  auto it = chunk_index_.find(key);
  if (it != chunk_index_.end()) {
    return it->second;  // dedup hit: share the existing placement
  }
  TRENV_ASSIGN_OR_RETURN(PoolPlacement placement, pool_->AllocatePages(key.npages, hotness));
  MemoryBackend* backend = pool_->TierFor(placement.kind);
  TRENV_RETURN_IF_ERROR(
      backend->WriteContent(placement.base, key.npages, key.content_base));
  PlacedChunk chunk{placement.kind, placement.base, key.npages,
                    key.constant ? FingerprintConstant(key.content_base, key.npages)
                                 : Fingerprint(key.content_base, key.npages)};
  chunk_index_.emplace(key, chunk);
  stored_unique_pages_ += key.npages;
  return chunk;
}

Result<ConsolidatedImage> SnapshotDedupStore::Store(const FunctionSnapshot& snapshot) {
  ConsolidatedImage image;
  image.function = snapshot.function;
  const uint64_t unique_before = stored_unique_pages_;

  for (const auto& process : snapshot.processes) {
    std::vector<PlacedRegion> placed_regions;
    for (const auto& region : process.regions) {
      PlacedRegion placed;
      placed.region = region;
      const double hotness = hotness_override_ >= 0.0 ? hotness_override_ : HotnessFor(region);
      uint64_t done = 0;
      while (done < region.npages) {
        const uint64_t n = std::min(chunk_pages_, region.npages - done);
        ChunkKey key;
        key.npages = n;
        key.constant = region.constant_content;
        key.content_base =
            region.constant_content ? region.content_base : region.content_base + done;
        TRENV_ASSIGN_OR_RETURN(PlacedChunk chunk, StoreChunk(key, hotness));
        placed.chunks.push_back(chunk);
        done += n;
      }
      image.total_pages += region.npages;
      placed_regions.push_back(std::move(placed));
    }
    image.processes.push_back(std::move(placed_regions));
  }
  total_ingested_pages_ += image.total_pages;
  image.unique_pages = stored_unique_pages_ - unique_before;
  return image;
}

}  // namespace trenv
