#include "src/criu/deduplicator.h"

#include <algorithm>

#include "src/common/rng.h"

namespace trenv {

uint64_t SnapshotDedupStore::Fingerprint(PageContent content_base, uint64_t npages) {
  uint64_t hash = 0x5ead0b6c0de5ULL;
  for (uint64_t i = 0; i < npages; ++i) {
    hash = MixU64(hash ^ (content_base + i));
  }
  return hash;
}

namespace {

// Hotness by region class: executable/runtime pages are read on every
// invocation (keep hot); heap/stack are function-private and colder.
double HotnessFor(const MemoryRegion& region) {
  if (region.type == VmaType::kFileBacked) {
    return 1.0;
  }
  return region.name == "[heap]" ? 0.5 : 0.3;
}

}  // namespace

Result<PlacedChunk> SnapshotDedupStore::StoreChunk(const ChunkKey& key, double hotness) {
  auto it = chunk_index_.find(key);
  if (it != chunk_index_.end()) {
    return it->second;  // dedup hit: share the existing placement
  }
  TRENV_ASSIGN_OR_RETURN(PoolPlacement placement, pool_->AllocatePages(key.npages, hotness));
  MemoryBackend* backend = pool_->TierFor(placement.kind);
  TRENV_RETURN_IF_ERROR(
      backend->WriteContent(placement.base, key.npages, key.content_base));
  PlacedChunk chunk{placement.kind, placement.base, key.npages};
  chunk_index_.emplace(key, chunk);
  stored_unique_pages_ += key.npages;
  return chunk;
}

Result<ConsolidatedImage> SnapshotDedupStore::Store(const FunctionSnapshot& snapshot) {
  ConsolidatedImage image;
  image.function = snapshot.function;
  const uint64_t unique_before = stored_unique_pages_;

  for (const auto& process : snapshot.processes) {
    std::vector<PlacedRegion> placed_regions;
    for (const auto& region : process.regions) {
      PlacedRegion placed;
      placed.region = region;
      const double hotness = HotnessFor(region);
      uint64_t done = 0;
      while (done < region.npages) {
        const uint64_t n = std::min(chunk_pages_, region.npages - done);
        ChunkKey key;
        key.npages = n;
        key.constant = region.constant_content;
        key.content_base =
            region.constant_content ? region.content_base : region.content_base + done;
        TRENV_ASSIGN_OR_RETURN(PlacedChunk chunk, StoreChunk(key, hotness));
        placed.chunks.push_back(chunk);
        done += n;
      }
      image.total_pages += region.npages;
      placed_regions.push_back(std::move(placed));
    }
    image.processes.push_back(std::move(placed_regions));
  }
  total_ingested_pages_ += image.total_pages;
  image.unique_pages = stored_unique_pages_ - unique_before;
  return image;
}

}  // namespace trenv
