// Checkpointer: produces FunctionSnapshots, either synthesized from a
// FunctionProfile (the offline preprocessing of step A1, with a realistic
// address-space layout) or dumped from a live simulated process.
//
// The synthesized layout is what makes cross-function dedup meaningful:
// functions of the same language share their interpreter/runtime regions
// (identical logical content), all functions share base C libraries, and
// heap/code regions are function-specific.
#ifndef TRENV_CRIU_CHECKPOINTER_H_
#define TRENV_CRIU_CHECKPOINTER_H_

#include <string>

#include "src/criu/process_image.h"
#include "src/runtime/function_profile.h"
#include "src/runtime/process.h"

namespace trenv {

// Fractions of a function's image attributed to each sharing class.
struct ImageLayoutModel {
  double common_libs = 0.10;      // glibc & friends: shared by everything
  double language_runtime = 0.33; // interpreter + stdlib: shared per language
  double function_code = 0.12;    // imports + user code (RO): unique per function
  double data_sections = 0.15;    // .data/.bss, writable private file maps
  double heap = 0.25;             // unique per function
  double stack_misc = 0.05;       // unique per function
};

class Checkpointer {
 public:
  Checkpointer(ImageLayoutModel layout = ImageLayoutModel()) : layout_(layout) {}

  // Step A1: synthesize the post-initialization snapshot for a function.
  FunctionSnapshot Checkpoint(const FunctionProfile& profile) const;

  // Dumps a live process's memory state (used in tests and by Groundhog-
  // style full-state restoration).
  ProcessImage CheckpointProcess(const Process& process) const;

  const ImageLayoutModel& layout() const { return layout_; }

 private:
  ImageLayoutModel layout_;
};

}  // namespace trenv

#endif  // TRENV_CRIU_CHECKPOINTER_H_
