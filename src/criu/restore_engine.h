// Restore engines: the five ways the evaluated systems get from "invocation
// arrived" to "function executing".
//
//   ColdStartEngine   - faasd: build sandbox, bootstrap interpreter.
//   VanillaCriuEngine - CRIU: build sandbox, copy memory image back.
//   ReapEngine(+)     - Firecracker + recorded working-set prefetch, lazy
//   FaasnapEngine(+)    userfaultfd paging for the rest (lazy_engines.h).
//   TrEnvEngine       - repurposed sandbox + mm-template attach
//                       (trenv_engine.h).
//
// An engine also owns the execution-phase memory behaviour of its instances
// (OnExecute) because lazy restoration defers restore cost into execution.
#ifndef TRENV_CRIU_RESTORE_ENGINE_H_
#define TRENV_CRIU_RESTORE_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/interner.h"
#include "src/common/status.h"
#include "src/criu/checkpointer.h"
#include "src/density/tier.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/criu/process_image.h"
#include "src/runtime/execution_model.h"
#include "src/runtime/function_profile.h"
#include "src/runtime/process.h"
#include "src/sandbox/sandbox.h"
#include "src/sandbox/sandbox_pool.h"
#include "src/simkernel/fault_handler.h"
#include "src/simkernel/types.h"

namespace trenv {

// Startup latency broken down as in Fig 4 / Fig 19 / Fig 21.
struct StartupBreakdown {
  SimDuration sandbox;  // isolation environment (netns + rootfs + cgroup + misc)
  SimDuration process;  // non-memory process state (clone/fds) or bootstrap
  SimDuration memory;   // memory restoration on the critical path

  // True when the `process` phase is CPU work (cold-start bootstrap) rather
  // than kernel-side latency; the invoker then routes it through the CPU.
  bool process_is_cpu = false;
  // True when the sandbox came from the repurposable pool (step B2 hit).
  bool sandbox_repurposed = false;

  SimDuration Total() const { return sandbox + process + memory; }
};

// A running (or keep-alive-cached) function environment.
class FunctionInstance {
 public:
  FunctionInstance(std::string function, std::unique_ptr<Sandbox> sandbox)
      : function_(std::move(function)),
        function_id_(InternFunction(function_)),
        sandbox_(std::move(sandbox)) {}

  const std::string& function() const { return function_; }
  FunctionId function_id() const { return function_id_; }
  Sandbox* sandbox() { return sandbox_.get(); }
  std::unique_ptr<Sandbox> TakeSandbox() { return std::move(sandbox_); }

  void AddProcess(std::unique_ptr<Process> process) {
    processes_.push_back(std::move(process));
  }
  std::vector<std::unique_ptr<Process>>& processes() { return processes_; }
  const std::vector<std::unique_ptr<Process>>& processes() const { return processes_; }
  Process* main_process() { return processes_.empty() ? nullptr : processes_.front().get(); }

  // Local DRAM pages attributable to this instance (process RSS + fixed
  // overhead such as a guest kernel for VM-based engines), NET of pages the
  // density manager has swapped out to a pool tier. The engine's Retire frees
  // exactly this many frames, so demoted pages (whose frames were already
  // released at demotion time) must not be counted twice.
  uint64_t ResidentLocalPages() const;
  uint64_t overhead_pages = 0;

  uint64_t invocations = 0;
  SimTime last_used;

  // --- Density-tiering state (owned by DensityManager; inert otherwise) ----
  // Which rung of the DRAM/CXL/NAS ladder the parked instance sits on.
  DensityTier density_tier = DensityTier::kDramHot;
  // FootprintModel::NodeBytes() stamped at park time (drives the pool's
  // per-tier aggregates and the overcommit ceiling).
  uint64_t footprint_bytes = 0;
  // Dirty pages demoted out of node DRAM into `swap_pool` at `swap_base`.
  uint64_t swapped_out_pages = 0;
  PoolKind swap_pool = PoolKind::kLocalDram;
  // Demand-fetch bill from a lazy promote: attach maps the swap block's
  // page-table runs only, and the pages stream back during the next
  // execution, which the platform extends by this amount (then clears it).
  SimDuration pending_demand_fetch;
  PoolOffset swap_base = 0;

 private:
  std::string function_;
  FunctionId function_id_;  // initialized from function_; keep declared after it
  std::unique_ptr<Sandbox> sandbox_;
  std::vector<std::unique_ptr<Process>> processes_;
};

// Shared machinery the platform hands to engines per operation.
struct RestoreContext {
  FrameAllocator* frames = nullptr;
  const BackendRegistry* backends = nullptr;
  PidAllocator* pids = nullptr;
  // Startups currently in flight (drives kernel-lock contention models).
  uint32_t concurrent_startups = 0;
  // Virtual time of the operation (the platform stamps its scheduler clock;
  // hand-built contexts default to zero). Engines that share a rate-limited
  // resource across operations (the prefetch NIC queue) need it for
  // work-conserving busy windows.
  SimTime now;
  // When set, TouchInvocationPages reports every touched page run here (the
  // TrEnv working-set recorder arms this during a first invocation).
  PageTouchObserver* fault_observer = nullptr;
  // Observability: engines record phase-detail spans under `trace_parent` at
  // `trace_loc` and bump counters in `stats`. All optional — a null tracer /
  // registry costs one branch per site.
  obs::Tracer* tracer = nullptr;
  obs::Loc trace_loc;
  obs::SpanId trace_parent = obs::kInvalidSpanId;
  obs::Registry* stats = nullptr;
};

struct RestoreOutcome {
  std::unique_ptr<FunctionInstance> instance;
  StartupBreakdown startup;
};

// Records one completed restore-phase detail span ("sandbox.cold",
// "mmt.attach", ...) under ctx.trace_parent. Returns the span for further
// annotation (kInvalidSpanId when tracing is off).
inline obs::SpanId TracePhase(RestoreContext& ctx, std::string_view name, SimTime start,
                              SimDuration duration) {
  if (ctx.tracer == nullptr) {
    return obs::kInvalidSpanId;
  }
  return ctx.tracer->RecordSpanAt(ctx.trace_loc, name, "restore", start, duration,
                                  ctx.trace_parent);
}

class RestoreEngine {
 public:
  virtual ~RestoreEngine() = default;

  virtual std::string_view name() const = 0;

  // Offline preprocessing (step A): snapshot creation, dedup, templates.
  virtual Status Prepare(const FunctionProfile& profile);

  // Online restoration (step B): produce a runnable instance.
  virtual Result<RestoreOutcome> Restore(const FunctionProfile& profile,
                                         RestoreContext& ctx) = 0;

  // Execution-phase page work for one invocation on `instance`. Mutates the
  // instance's page tables (faults make pages resident) and returns the
  // latency/CPU overheads the invocation pays.
  virtual Result<ExecutionOverheads> OnExecute(const FunctionProfile& profile,
                                               FunctionInstance& instance, RestoreContext& ctx);

  // Called when the invocation's execution finishes (closes fetch streams).
  virtual void OnExecuteDone(FunctionInstance& instance);

  // Called when the node hosting this engine crashes: discard any
  // per-instance bookkeeping (open fetch streams) without orderly teardown.
  // Prepared snapshots/templates survive — they live in the shared pool.
  virtual void OnCrash() {}

  // Tears an instance down (keep-alive eviction), releasing local memory.
  // Engines that pool sandboxes reclaim them here.
  virtual void Retire(std::unique_ptr<FunctionInstance> instance, RestoreContext& ctx);

 protected:
  explicit RestoreEngine(Checkpointer checkpointer) : checkpointer_(checkpointer) {}

  // Registration-boundary lookup (string hash + interner lock).
  const FunctionSnapshot* SnapshotFor(const std::string& function) const;
  // Hot-path lookup: vector index by the profile's interned id.
  const FunctionSnapshot* SnapshotFor(const FunctionProfile& profile) const {
    return SnapshotById(FunctionIdOf(profile));
  }
  const FunctionSnapshot* SnapshotById(FunctionId id) const {
    return id < snapshots_.size() ? snapshots_[id].get() : nullptr;
  }

  // Builds the instance's processes with all image pages resident in local
  // DRAM (what copy-based restoration produces).
  Status MaterializeLocal(const FunctionSnapshot& snapshot, FunctionInstance& instance,
                          RestoreContext& ctx);
  // Builds processes with only VMAs (no resident pages); pages arrive later
  // (prefetch, faults, or an mm-template attach supplies the mappings).
  Status MaterializeLayoutOnly(const FunctionSnapshot& snapshot, FunctionInstance& instance,
                               RestoreContext& ctx, bool add_vmas);

  // Per-invocation page touches derived from the profile's PageProfile,
  // executed through the fault handler against every process.
  Result<BulkAccessStats> TouchInvocationPages(const FunctionProfile& profile,
                                               FunctionInstance& instance, RestoreContext& ctx);

  Checkpointer checkpointer_;
  // Indexed by FunctionId (global id space — may be sparse); null = never
  // prepared. unique_ptr keeps snapshot addresses stable across growth.
  std::vector<std::unique_ptr<FunctionSnapshot>> snapshots_;
};

// faasd-style cold start: full sandbox creation + interpreter bootstrap.
class ColdStartEngine : public RestoreEngine {
 public:
  ColdStartEngine(SandboxFactory* factory, SandboxPool* pool, Checkpointer checkpointer = Checkpointer())
      : RestoreEngine(checkpointer), factory_(factory), pool_(pool) {}

  std::string_view name() const override { return "faasd"; }
  Result<RestoreOutcome> Restore(const FunctionProfile& profile, RestoreContext& ctx) override;

 private:
  SandboxFactory* factory_;
  SandboxPool* pool_;  // only for overlay assembly, not sandbox reuse
};

// Vanilla CRIU: sandbox creation + copy-based memory restoration from a
// snapshot held in a DRAM/CXL tmpfs.
class VanillaCriuEngine : public RestoreEngine {
 public:
  VanillaCriuEngine(SandboxFactory* factory, SandboxPool* pool, Checkpointer checkpointer = Checkpointer())
      : RestoreEngine(checkpointer), factory_(factory), pool_(pool) {}

  std::string_view name() const override { return "criu"; }
  Result<RestoreOutcome> Restore(const FunctionProfile& profile, RestoreContext& ctx) override;

 private:
  SandboxFactory* factory_;
  SandboxPool* pool_;
};

}  // namespace trenv

#endif  // TRENV_CRIU_RESTORE_ENGINE_H_
