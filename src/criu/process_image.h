// Snapshot images: the serialized post-initialization state of a function
// (paper Figs 6-8). A FunctionSnapshot holds one ProcessImage per Linux
// process; each image records the virtual memory layout with logical page
// contents plus the non-memory state CRIU restores (threads, fds).
#ifndef TRENV_CRIU_PROCESS_IMAGE_H_
#define TRENV_CRIU_PROCESS_IMAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/simkernel/types.h"
#include "src/simkernel/vma.h"

namespace trenv {

struct MemoryRegion {
  Vaddr start = 0;
  uint64_t npages = 0;
  Protection prot;
  bool is_private = true;
  VmaType type = VmaType::kAnonymous;
  std::string name;
  // Logical content of the region's pages (content_base + i, or constant).
  PageContent content_base = kZeroPageContent;
  bool constant_content = false;

  uint64_t bytes() const { return npages * kPageSize; }
  Vma ToVma() const;
};

struct ProcessImage {
  std::string process_name;
  uint32_t threads = 1;
  uint32_t open_fds = 0;
  std::vector<MemoryRegion> regions;

  uint64_t TotalPages() const;
  uint64_t TotalBytes() const { return TotalPages() * kPageSize; }
};

struct FunctionSnapshot {
  std::string function;
  std::vector<ProcessImage> processes;

  uint64_t TotalPages() const;
  uint64_t TotalBytes() const { return TotalPages() * kPageSize; }
  uint32_t TotalThreads() const;
};

}  // namespace trenv

#endif  // TRENV_CRIU_PROCESS_IMAGE_H_
