#include "src/criu/lazy_engines.h"

#include <algorithm>

#include "src/common/cost_model.h"

namespace trenv {

Result<RestoreOutcome> ReapEngine::Restore(const FunctionProfile& profile, RestoreContext& ctx) {
  const FunctionSnapshot* snapshot = SnapshotFor(profile);
  if (snapshot == nullptr) {
    return Status::FailedPrecondition("function was never prepared: " + profile.name);
  }

  RestoreOutcome outcome;

  // --- Sandbox: the Firecracker jailer. ---
  SimDuration netns_cost = options_.pooled_netns
                               ? cost::kNetNsReset
                               : NetNsFactory::CreateCost(ctx.concurrent_startups);
  // The VM does not share the container rootfs; it gets its own jailer dir
  // (cheap) + cgroup create + legacy migration of the VMM process.
  SimDuration cgroup_cost = factory_->cgroup_manager().CreateCost() +
                            factory_->cgroup_manager().MigrateCost(ctx.concurrent_startups);
  SimDuration vmm_cost = cost::kVmmSpawn + cost::kVmDeviceSetupPerDevice * 2.0;
  outcome.startup.sandbox = netns_cost + cgroup_cost + vmm_cost + cost::kMiscNamespaces;

  // Build the sandbox object (for uniform lifecycle handling).
  SandboxFactory::CreateResult created =
      factory_->CreateCold(profile.name, nullptr, profile.limits, 0, /*use_clone_into=*/false);
  outcome.instance =
      std::make_unique<FunctionInstance>(profile.name, std::move(created.sandbox));

  // --- Process: VM snapshot metadata (vCPU + device state). ---
  outcome.startup.process = cost::kVmSnapshotLoad;

  // --- Memory: eager prefetch of (a fraction of) the recorded working set;
  // the rest is served on demand via userfaultfd. ---
  TRENV_RETURN_IF_ERROR(
      MaterializeLayoutOnly(*snapshot, *outcome.instance, ctx, /*add_vmas=*/true));
  const double eager = profile.pages.working_set_fraction * options_.eager_fraction;
  uint64_t eager_pages_total = 0;
  for (auto& process : outcome.instance->processes()) {
    for (const auto& [start, vma] : process->mm().vmas()) {
      const auto eager_pages =
          static_cast<uint64_t>(eager * static_cast<double>(vma.npages()));
      if (eager_pages == 0) {
        continue;
      }
      TRENV_ASSIGN_OR_RETURN(FrameId frame, ctx.frames->AllocatePages(eager_pages));
      PteFlags flags;
      flags.valid = true;
      flags.write_protected = !vma.prot.write;
      flags.pool = PoolKind::kLocalDram;
      // Content comes from the snapshot; the checkpoint regions were added
      // as VMAs in the same order, so content base is recoverable — for the
      // simulation the eager set simply becomes resident.
      process->mm().page_table().MapRange(AddrToVpn(vma.start), eager_pages, flags, frame, 0);
      eager_pages_total += eager_pages;
    }
  }
  outcome.startup.memory = SimDuration::FromSecondsF(
      static_cast<double>(eager_pages_total * kPageSize) / cost::kCriuMemCopyBytesPerSec);

  // Guest kernel + VMM overhead occupies local memory for the VM's lifetime.
  const uint64_t overhead_pages = BytesToPages(cost::kVmGuestOverheadBytes);
  TRENV_RETURN_IF_ERROR(ctx.frames->AllocatePages(overhead_pages).status());
  outcome.instance->overhead_pages = overhead_pages;

  const SimTime t0 = ctx.tracer != nullptr ? ctx.tracer->now(ctx.trace_loc.pid) : SimTime();
  TracePhase(ctx, "sandbox.vm_jailer", t0, outcome.startup.sandbox);
  TracePhase(ctx, "vm.snapshot_load", t0 + outcome.startup.sandbox, outcome.startup.process);
  // A zero-page prefetch (working_set_fraction or eager_fraction of 0) did
  // no work, so it emits no span: traces show only phases that happened.
  if (eager_pages_total > 0) {
    const obs::SpanId prefetch = TracePhase(
        ctx, "vm.eager_prefetch", t0 + outcome.startup.sandbox + outcome.startup.process,
        outcome.startup.memory);
    if (ctx.tracer != nullptr) {
      ctx.tracer->Annotate(prefetch, "eager_pages", static_cast<int64_t>(eager_pages_total));
    }
  }
  return outcome;
}

Result<ExecutionOverheads> ReapEngine::OnExecute(const FunctionProfile& profile,
                                                 FunctionInstance& instance,
                                                 RestoreContext& ctx) {
  // Touch the invocation's pages. Pages not yet resident take a userfaultfd
  // round trip each — the deferred restoration cost (section 3.3: lazy
  // restore "merely defers the restoration overhead to the execution phase").
  TRENV_ASSIGN_OR_RETURN(BulkAccessStats stats, TouchInvocationPages(profile, instance, ctx));
  const uint64_t faulted = stats.minor_faults + stats.major_faults;
  const SimDuration fault_total =
      cost::kUserfaultfdFault * static_cast<double>(faulted) +
      SimDuration::FromSecondsF(static_cast<double>(faulted * kPageSize) /
                                cost::kCriuMemCopyBytesPerSec);
  // Roughly half the fault cost is CPU in the VMM's pager thread (context
  // switches + page copies) — it contends with everything else under load,
  // which is exactly why REAP/FaaSnap fall apart at P99 (section 9.2.2).
  // The rest is wall latency; FaaSnap's async prefetch hides a share of it.
  ExecutionOverheads overheads;
  overheads.added_cpu = fault_total * 0.5;
  overheads.added_latency = fault_total * 0.5 * (1.0 - options_.hidden_fault_fraction) +
                            cost::kCowFault * static_cast<double>(stats.cow_faults);
  if (ctx.tracer != nullptr && faulted > 0) {
    const obs::SpanId span = ctx.tracer->RecordSpanAt(
        ctx.trace_loc, "uffd.pagework", "fault", ctx.tracer->now(ctx.trace_loc.pid),
        fault_total, ctx.trace_parent);
    ctx.tracer->Annotate(span, "faulted_pages", static_cast<int64_t>(faulted));
    ctx.tracer->Annotate(span, "hidden_fraction", options_.hidden_fault_fraction);
  }
  return overheads;
}

FaasnapEngine::FaasnapEngine(SandboxFactory* factory, SandboxPool* pool, bool pooled_netns,
                             Checkpointer checkpointer)
    : ReapEngine(factory, pool,
                 Options{.pooled_netns = pooled_netns,
                         .eager_fraction = cost::kFaasnapEagerFraction,
                         .hidden_fault_fraction = cost::kFaasnapHiddenFraction},
                 checkpointer) {}

}  // namespace trenv
