// REAP and FaaSnap: the state-of-the-art lazy-restoration baselines
// (Firecracker microVMs, snapshot in a CXL/DRAM tmpfs).
//
// REAP records the first invocation's working set, prefetches it eagerly on
// restore, and serves the remaining pages through userfaultfd during
// execution. FaaSnap adds an asynchronous prefetch policy: a smaller eager
// set (faster startup) with overlapped loading that hides most fault
// latency. The "+" variants reuse network namespaces from a pool — the
// enhancement the paper grants them for a fair comparison (section 9.1).
#ifndef TRENV_CRIU_LAZY_ENGINES_H_
#define TRENV_CRIU_LAZY_ENGINES_H_

#include "src/criu/restore_engine.h"

namespace trenv {

class ReapEngine : public RestoreEngine {
 public:
  struct Options {
    bool pooled_netns = false;  // the "+" enhancement
    // Fraction of the recorded working set loaded eagerly at restore.
    double eager_fraction = 1.0;
    // Fraction of post-restore fault latency hidden by overlap.
    double hidden_fault_fraction = 0.0;
  };

  ReapEngine(SandboxFactory* factory, SandboxPool* pool, Options options,
             Checkpointer checkpointer = Checkpointer())
      : RestoreEngine(checkpointer), factory_(factory), pool_(pool), options_(options) {}

  std::string_view name() const override { return options_.pooled_netns ? "reap+" : "reap"; }

  Result<RestoreOutcome> Restore(const FunctionProfile& profile, RestoreContext& ctx) override;
  Result<ExecutionOverheads> OnExecute(const FunctionProfile& profile,
                                       FunctionInstance& instance, RestoreContext& ctx) override;

 protected:
  const Options& options() const { return options_; }

 private:
  SandboxFactory* factory_;
  SandboxPool* pool_;
  Options options_;
};

class FaasnapEngine : public ReapEngine {
 public:
  FaasnapEngine(SandboxFactory* factory, SandboxPool* pool, bool pooled_netns,
                Checkpointer checkpointer = Checkpointer());

  std::string_view name() const override {
    return options().pooled_netns ? "faasnap+" : "faasnap";
  }
};

}  // namespace trenv

#endif  // TRENV_CRIU_LAZY_ENGINES_H_
