// SnapshotDedupStore: step A2 of the paper's preprocessing — deduplicates
// snapshots into consolidated images on a remote memory pool, so identical
// regions (language runtimes, common libraries) are stored once per rack and
// shared by every function, instance, and node.
//
// Dedup granularity is a fixed chunk (default 2 MiB = 512 pages): regions
// are cut into chunks and each distinct chunk content is stored once. This
// captures both whole-region sharing and common prefixes.
#ifndef TRENV_CRIU_DEDUPLICATOR_H_
#define TRENV_CRIU_DEDUPLICATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/criu/process_image.h"
#include "src/mempool/tiered_pool.h"

namespace trenv {

// Where one region of a consolidated image lives: a list of (pool, offset)
// chunk placements in region order.
struct PlacedChunk {
  PoolKind pool;
  PoolOffset offset;  // pool page offset of the chunk start
  uint64_t npages;
  // Content hash of the chunk (Fingerprint / FingerprintConstant). Equal
  // fingerprints mean equal content, so this is the shard key the pool
  // control plane (src/poolmgr/) places on its consistent-hash ring.
  uint64_t fingerprint = 0;
};

struct PlacedRegion {
  MemoryRegion region;
  std::vector<PlacedChunk> chunks;
};

struct ConsolidatedImage {
  std::string function;
  // Mirrors FunctionSnapshot::processes.
  std::vector<std::vector<PlacedRegion>> processes;
  uint64_t total_pages = 0;   // pages in the snapshot
  uint64_t unique_pages = 0;  // pages newly stored for this snapshot
};

class SnapshotDedupStore {
 public:
  // Stores chunks in `pool`. Hotness for tiered placement is derived from
  // the region class (runtime/code hot, heap colder).
  explicit SnapshotDedupStore(TieredPool* pool, uint64_t chunk_pages = 512)
      : pool_(pool), chunk_pages_(chunk_pages) {}

  Result<ConsolidatedImage> Store(const FunctionSnapshot& snapshot);

  // Forces every chunk stored from now on to use this hotness instead of the
  // region-class heuristic. Lets a *live* placement policy start everything
  // cold and earn its way up (the ablation's T-DRAM-live configuration).
  // Negative (default) = use the heuristic.
  void set_hotness_override(double hotness) { hotness_override_ = hotness; }

  // Content hash of a chunk run, mixing every page's logical content
  // (page i holds content_base + i). This is what catches injected
  // page-fetch corruption: a payload whose fingerprint disagrees with the
  // stored chunk's is discarded and refetched (see
  // MemoryBackend::FetchLatency's retry loop). Repeated fingerprints of the
  // same progression are memoized per thread, so re-hashing a shared chunk
  // costs O(1) instead of O(npages).
  static uint64_t Fingerprint(PageContent content_base, uint64_t npages);
  // Fingerprint of a constant-content chunk (every page holds `content`,
  // the ChunkKey::constant representation). Memoized like Fingerprint.
  static uint64_t FingerprintConstant(PageContent content, uint64_t npages);

  // Global dedup statistics.
  uint64_t total_ingested_pages() const { return total_ingested_pages_; }
  uint64_t stored_unique_pages() const { return stored_unique_pages_; }
  double DedupRatio() const {
    return total_ingested_pages_ == 0
               ? 1.0
               : static_cast<double>(stored_unique_pages_) /
                     static_cast<double>(total_ingested_pages_);
  }

 private:
  // Key identifying a chunk's logical content.
  struct ChunkKey {
    PageContent content_base;
    uint64_t npages;
    bool constant;
    auto operator<=>(const ChunkKey&) const = default;
  };

  Result<PlacedChunk> StoreChunk(const ChunkKey& key, double hotness);

  TieredPool* pool_;
  uint64_t chunk_pages_;
  double hotness_override_ = -1.0;
  std::map<ChunkKey, PlacedChunk> chunk_index_;
  uint64_t total_ingested_pages_ = 0;
  uint64_t stored_unique_pages_ = 0;
};

}  // namespace trenv

#endif  // TRENV_CRIU_DEDUPLICATOR_H_
