#include "src/criu/checkpointer.h"

#include <algorithm>

#include "src/common/rng.h"

namespace trenv {

namespace {

// Stable 64-bit FNV-1a so snapshots are identical across runs and builds.
uint64_t HashName(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Content bases are spaced far apart so distinct progressions never collide.
PageContent ContentBaseFor(const std::string& tag) {
  return MixU64(HashName(tag)) | (1ULL << 63);  // keep clear of small literals
}

MemoryRegion MakeRegion(Vaddr start, uint64_t npages, Protection prot, VmaType type,
                        std::string name, PageContent content_base) {
  MemoryRegion region;
  region.start = start;
  region.npages = npages;
  region.prot = prot;
  region.type = type;
  region.name = std::move(name);
  region.content_base = content_base;
  return region;
}

}  // namespace

FunctionSnapshot Checkpointer::Checkpoint(const FunctionProfile& profile) const {
  FunctionSnapshot snapshot;
  snapshot.function = profile.name;
  // Function-specific regions key their content off the software identity:
  // profiles sharing a content_tag produce byte-identical images (and the
  // dedup store collapses them); distinct tags produce distinct pages.
  const std::string& tag = profile.content_tag.empty() ? profile.name : profile.content_tag;

  const uint64_t total_pages = profile.ImagePages();
  auto share = [&](double fraction) {
    return std::max<uint64_t>(1, static_cast<uint64_t>(fraction * static_cast<double>(total_pages)));
  };

  ProcessImage image;
  image.process_name = profile.name + "-main";
  image.threads = profile.threads;
  image.open_fds = profile.open_fds;

  // Layout mirrors a real interpreter process. Shared classes use content
  // bases derived from what they contain, so identical software maps to
  // identical logical content across functions and across nodes.
  Vaddr cursor = 0x7f0000000000;
  const uint64_t libs = share(layout_.common_libs);
  image.regions.push_back(MakeRegion(cursor, libs, Protection::ReadExec(), VmaType::kFileBacked,
                                     "libc+base-libs", ContentBaseFor("common-libs")));
  cursor += PageAlignUp(libs * kPageSize) + kPageSize;

  const uint64_t runtime = share(layout_.language_runtime);
  image.regions.push_back(MakeRegion(cursor, runtime, Protection::ReadExec(),
                                     VmaType::kFileBacked, profile.language + "-runtime",
                                     ContentBaseFor("runtime-" + profile.language)));
  cursor += PageAlignUp(runtime * kPageSize) + kPageSize;

  const uint64_t code = share(layout_.function_code);
  image.regions.push_back(MakeRegion(cursor, code, Protection::ReadOnly(), VmaType::kFileBacked,
                                     "imports+user-code", ContentBaseFor("code-" + tag)));
  cursor += PageAlignUp(code * kPageSize) + kPageSize;

  const uint64_t data = share(layout_.data_sections);
  image.regions.push_back(MakeRegion(cursor, data, Protection::ReadWrite(),
                                     VmaType::kFileBacked, ".data+.bss",
                                     ContentBaseFor("data-" + tag)));

  const uint64_t heap = share(layout_.heap);
  image.regions.push_back(MakeRegion(0x555500000000, heap, Protection::ReadWrite(),
                                     VmaType::kAnonymous, "[heap]",
                                     ContentBaseFor("heap-" + tag)));

  const uint64_t stack = share(layout_.stack_misc);
  image.regions.push_back(MakeRegion(0x7ffc00000000, stack, Protection::ReadWrite(),
                                     VmaType::kAnonymous, "[stack]",
                                     ContentBaseFor("stack-" + tag)));

  snapshot.processes.push_back(std::move(image));

  // Helper processes (multi-process functions): small per-process images.
  for (uint32_t p = 1; p < profile.processes; ++p) {
    ProcessImage helper;
    helper.process_name = profile.name + "-helper" + std::to_string(p);
    helper.threads = 2;
    helper.open_fds = 8;
    helper.regions.push_back(MakeRegion(0x7f0000000000, share(layout_.common_libs),
                                        Protection::ReadExec(), VmaType::kFileBacked,
                                        "libc+base-libs", ContentBaseFor("common-libs")));
    helper.regions.push_back(
        MakeRegion(0x555500000000, std::max<uint64_t>(1, share(layout_.heap) / 8),
                   Protection::ReadWrite(), VmaType::kAnonymous, "[heap]",
                   ContentBaseFor("heap-" + tag + "-p" + std::to_string(p))));
    snapshot.processes.push_back(std::move(helper));
  }
  return snapshot;
}

ProcessImage Checkpointer::CheckpointProcess(const Process& process) const {
  ProcessImage image;
  image.process_name = process.name();
  image.threads = process.threads();
  image.open_fds = process.open_fds();
  const MmStruct& mm = process.mm();
  for (const auto& [start, vma] : mm.vmas()) {
    // Dump each mapped run as one region; unmapped holes are skipped (CRIU
    // does not dump never-touched pages).
    mm.page_table().ForEachRunIn(AddrToVpn(vma.start), vma.npages(),
                                 [&](Vpn vpn, const PteRun& run) {
                                   MemoryRegion region;
                                   region.start = VpnToAddr(vpn);
                                   region.npages = run.npages;
                                   region.prot = vma.prot;
                                   region.is_private = vma.is_private;
                                   region.type = vma.type;
                                   region.name = vma.name;
                                   region.content_base = run.content_base;
                                   region.constant_content = run.constant_content;
                                   image.regions.push_back(std::move(region));
                                 });
  }
  return image;
}

}  // namespace trenv
