#include "src/criu/restore_engine.h"

#include <algorithm>

#include "src/common/cost_model.h"

namespace trenv {

uint64_t FunctionInstance::ResidentLocalPages() const {
  uint64_t pages = overhead_pages;
  for (const auto& process : processes_) {
    pages += process->mm().ResidentLocalPages();
  }
  // Pages the density manager parked in a pool tier no longer hold frames;
  // without this the engine's Retire would free them a second time.
  return pages > swapped_out_pages ? pages - swapped_out_pages : 0;
}

Status RestoreEngine::Prepare(const FunctionProfile& profile) {
  const FunctionId id = InternFunction(profile.name);
  if (snapshots_.size() <= id) {
    snapshots_.resize(id + 1);
  }
  if (snapshots_[id] == nullptr) {
    snapshots_[id] = std::make_unique<FunctionSnapshot>(checkpointer_.Checkpoint(profile));
  }
  return Status::Ok();
}

const FunctionSnapshot* RestoreEngine::SnapshotFor(const std::string& function) const {
  return SnapshotById(GlobalFunctionInterner().Find(function));
}

Status RestoreEngine::MaterializeLayoutOnly(const FunctionSnapshot& snapshot,
                                            FunctionInstance& instance, RestoreContext& ctx,
                                            bool add_vmas) {
  for (const auto& image : snapshot.processes) {
    auto process = std::make_unique<Process>(ctx.pids->Next(), image.process_name, image.threads,
                                             image.open_fds);
    if (add_vmas) {
      for (const auto& region : image.regions) {
        TRENV_RETURN_IF_ERROR(process->mm().AddVma(region.ToVma()));
      }
    }
    instance.AddProcess(std::move(process));
  }
  return Status::Ok();
}

Status RestoreEngine::MaterializeLocal(const FunctionSnapshot& snapshot,
                                       FunctionInstance& instance, RestoreContext& ctx) {
  TRENV_RETURN_IF_ERROR(MaterializeLayoutOnly(snapshot, instance, ctx, /*add_vmas=*/true));
  auto process_it = instance.processes().begin();
  for (const auto& image : snapshot.processes) {
    Process& process = **process_it++;
    for (const auto& region : image.regions) {
      TRENV_ASSIGN_OR_RETURN(FrameId frame, ctx.frames->AllocatePages(region.npages));
      PteFlags flags;
      flags.valid = true;
      flags.write_protected = !region.prot.write;
      flags.pool = PoolKind::kLocalDram;
      process.mm().page_table().MapRange(AddrToVpn(region.start), region.npages, flags, frame,
                                         region.content_base, region.constant_content);
    }
  }
  return Status::Ok();
}

Result<BulkAccessStats> RestoreEngine::TouchInvocationPages(const FunctionProfile& profile,
                                                            FunctionInstance& instance,
                                                            RestoreContext& ctx) {
  const FunctionSnapshot* snapshot = SnapshotFor(profile);
  if (snapshot == nullptr) {
    return Status::FailedPrecondition("function was never prepared: " + profile.name);
  }
  FaultHandler handler(ctx.frames, ctx.backends, ctx.stats, ctx.fault_observer);
  BulkAccessStats total;
  // Write budget: write_fraction of the WHOLE image, distributed over the
  // writable regions (heap, stack, .data) until exhausted — interpreters
  // mutate state wherever they may.
  uint64_t write_budget = static_cast<uint64_t>(profile.pages.write_fraction *
                                                static_cast<double>(snapshot->TotalPages()));
  auto process_it = instance.processes().begin();
  for (const auto& image : snapshot->processes) {
    if (process_it == instance.processes().end()) {
      break;
    }
    Process& process = **process_it++;
    for (const auto& region : image.regions) {
      // Reads touch the leading read_fraction of every region.
      const auto read_pages = static_cast<uint64_t>(profile.pages.read_fraction *
                                                    static_cast<double>(region.npages));
      if (read_pages > 0) {
        TRENV_ASSIGN_OR_RETURN(
            BulkAccessStats stats,
            handler.AccessRange(process.mm(), region.start, read_pages, /*write=*/false));
        total.MergeFrom(stats);
      }
      if (region.prot.write && write_budget > 0) {
        const uint64_t write_pages = std::min(region.npages, write_budget);
        write_budget -= write_pages;
        TRENV_ASSIGN_OR_RETURN(
            BulkAccessStats stats,
            handler.AccessRange(process.mm(), region.start, write_pages, /*write=*/true));
        total.MergeFrom(stats);
      }
    }
  }
  // One "fault.touch" span per invocation's page work, annotated with the
  // fault/fetch decomposition (the trace-level view of Fig 4's memory phase).
  if (ctx.tracer != nullptr) {
    const obs::SpanId span =
        ctx.tracer->RecordSpanAt(ctx.trace_loc, "fault.touch", "fault",
                                 ctx.tracer->now(ctx.trace_loc.pid), total.latency,
                                 ctx.trace_parent);
    ctx.tracer->Annotate(span, "pages", static_cast<int64_t>(total.pages));
    ctx.tracer->Annotate(span, "minor_faults", static_cast<int64_t>(total.minor_faults));
    ctx.tracer->Annotate(span, "major_faults", static_cast<int64_t>(total.major_faults));
    ctx.tracer->Annotate(span, "cow_faults", static_cast<int64_t>(total.cow_faults));
    ctx.tracer->Annotate(span, "bytes_fetched", static_cast<int64_t>(total.bytes_fetched));
    ctx.tracer->Annotate(span, "direct_remote", static_cast<int64_t>(total.direct_remote));
    ctx.tracer->Annotate(span, "direct_local", static_cast<int64_t>(total.direct_local));
    ctx.tracer->Annotate(span, "fetch_cpu_ms", total.fetch_cpu.millis());
  }
  return total;
}

Result<ExecutionOverheads> RestoreEngine::OnExecute(const FunctionProfile& profile,
                                                    FunctionInstance& instance,
                                                    RestoreContext& ctx) {
  // Default: run the touches through the fault handler and charge whatever
  // the page-table state implies (copy-restored instances: nothing).
  TRENV_ASSIGN_OR_RETURN(BulkAccessStats stats, TouchInvocationPages(profile, instance, ctx));
  ExecutionOverheads overheads;
  overheads.added_latency = stats.latency;
  overheads.added_cpu = stats.fetch_cpu;
  return overheads;
}

void RestoreEngine::OnExecuteDone(FunctionInstance& instance) { (void)instance; }

void RestoreEngine::Retire(std::unique_ptr<FunctionInstance> instance, RestoreContext& ctx) {
  ctx.frames->FreePages(instance->ResidentLocalPages());
}

Result<RestoreOutcome> ColdStartEngine::Restore(const FunctionProfile& profile,
                                                RestoreContext& ctx) {
  const FunctionSnapshot* snapshot = SnapshotFor(profile);
  if (snapshot == nullptr) {
    return Status::FailedPrecondition("function was never prepared: " + profile.name);
  }
  auto overlay = pool_->AcquireOverlay(FunctionIdOf(profile));
  SandboxFactory::CreateResult created = factory_->CreateCold(
      profile.name, overlay, profile.limits, ctx.concurrent_startups, /*use_clone_into=*/false);

  RestoreOutcome outcome;
  outcome.instance =
      std::make_unique<FunctionInstance>(profile.name, std::move(created.sandbox));
  // Bootstrapping allocates and initializes the whole image in local memory.
  TRENV_RETURN_IF_ERROR(MaterializeLocal(*snapshot, *outcome.instance, ctx));
  outcome.startup.sandbox = created.cost.Total();
  outcome.startup.process = profile.bootstrap;
  outcome.startup.process_is_cpu = true;

  const SimTime t0 = ctx.tracer != nullptr ? ctx.tracer->now(ctx.trace_loc.pid) : SimTime();
  TracePhase(ctx, "sandbox.cold", t0, outcome.startup.sandbox);
  const obs::SpanId boot = TracePhase(ctx, "bootstrap", t0 + outcome.startup.sandbox,
                                      outcome.startup.process);
  if (ctx.tracer != nullptr) {
    ctx.tracer->Annotate(boot, "image_bytes", static_cast<int64_t>(snapshot->TotalBytes()));
  }
  return outcome;
}

Result<RestoreOutcome> VanillaCriuEngine::Restore(const FunctionProfile& profile,
                                                  RestoreContext& ctx) {
  const FunctionSnapshot* snapshot = SnapshotFor(profile);
  if (snapshot == nullptr) {
    return Status::FailedPrecondition("function was never prepared: " + profile.name);
  }
  auto overlay = pool_->AcquireOverlay(FunctionIdOf(profile));
  SandboxFactory::CreateResult created = factory_->CreateCold(
      profile.name, overlay, profile.limits, ctx.concurrent_startups, /*use_clone_into=*/false);

  RestoreOutcome outcome;
  outcome.instance =
      std::make_unique<FunctionInstance>(profile.name, std::move(created.sandbox));
  TRENV_RETURN_IF_ERROR(MaterializeLocal(*snapshot, *outcome.instance, ctx));

  outcome.startup.sandbox = created.cost.Total();
  // Non-memory process state: base + per-thread clone() + per-fd restore,
  // plus one mmap() replay per restored VMA.
  uint64_t vma_count = 0;
  for (const auto& image : snapshot->processes) {
    vma_count += image.regions.size();
  }
  outcome.startup.process =
      cost::kCriuMiscRestoreBase +
      cost::kCriuPerThreadClone * static_cast<double>(snapshot->TotalThreads()) +
      cost::kCriuPerOpenFd * static_cast<double>(profile.open_fds) +
      cost::kMmapSyscall * static_cast<double>(vma_count);
  // Copy-based memory restoration from the tmpfs snapshot.
  outcome.startup.memory = SimDuration::FromSecondsF(
      static_cast<double>(snapshot->TotalBytes()) / cost::kCriuMemCopyBytesPerSec);

  const SimTime t0 = ctx.tracer != nullptr ? ctx.tracer->now(ctx.trace_loc.pid) : SimTime();
  TracePhase(ctx, "sandbox.cold", t0, outcome.startup.sandbox);
  TracePhase(ctx, "criu.process_state", t0 + outcome.startup.sandbox, outcome.startup.process);
  const obs::SpanId copy = TracePhase(
      ctx, "criu.memcopy", t0 + outcome.startup.sandbox + outcome.startup.process,
      outcome.startup.memory);
  if (ctx.tracer != nullptr) {
    ctx.tracer->Annotate(copy, "bytes", static_cast<int64_t>(snapshot->TotalBytes()));
    ctx.tracer->Annotate(copy, "vmas", static_cast<int64_t>(vma_count));
  }
  return outcome;
}

}  // namespace trenv
