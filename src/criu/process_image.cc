#include "src/criu/process_image.h"

namespace trenv {

Vma MemoryRegion::ToVma() const {
  Vma vma;
  vma.start = start;
  vma.length = npages * kPageSize;
  vma.prot = prot;
  vma.is_private = is_private;
  vma.type = type;
  vma.name = name;
  return vma;
}

uint64_t ProcessImage::TotalPages() const {
  uint64_t total = 0;
  for (const auto& region : regions) {
    total += region.npages;
  }
  return total;
}

uint64_t FunctionSnapshot::TotalPages() const {
  uint64_t total = 0;
  for (const auto& process : processes) {
    total += process.TotalPages();
  }
  return total;
}

uint32_t FunctionSnapshot::TotalThreads() const {
  uint32_t total = 0;
  for (const auto& process : processes) {
    total += process.threads;
  }
  return total;
}

}  // namespace trenv
