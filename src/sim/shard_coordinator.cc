#include "src/sim/shard_coordinator.h"

#include <chrono>

namespace trenv {

namespace {

// Spin iterations before parking on the condition variable. Epoch gaps are
// sub-microsecond when shards are load-balanced, so a short spin usually
// catches the barrier without a futex round trip.
constexpr uint32_t kSpinIterations = 4096;

// One spin step: back off a little so sibling hyperthreads make progress.
inline void SpinPause(uint32_t iteration) {
  if ((iteration & 0xff) == 0xff) {
    std::this_thread::yield();
  }
}

}  // namespace

ShardCoordinator::ShardCoordinator(size_t shards) : shards_(shards == 0 ? 1 : shards) {
  if (std::thread::hardware_concurrency() >= shards_) {
    spin_budget_ = kSpinIterations;
  }
  workers_.reserve(shards_ - 1);
  for (size_t i = 1; i < shards_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ShardCoordinator::~ShardCoordinator() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      work_ = nullptr;  // null work is the stop signal
      epoch_.fetch_add(1, std::memory_order_release);
    }
    epoch_cv_.notify_all();
    for (std::thread& worker : workers_) {
      worker.join();
    }
  }
}

void ShardCoordinator::WorkerLoop(size_t worker_index) {
  uint64_t seen = 0;
  for (;;) {
    // Wait for the next epoch: spin first, then park. The acquire load pairs
    // with the coordinator's release bump, publishing work_.
    bool advanced = false;
    for (uint32_t i = 0; i < spin_budget_; ++i) {
      if (epoch_.load(std::memory_order_acquire) != seen) {
        advanced = true;
        break;
      }
      SpinPause(i);
    }
    if (!advanced) {
      std::unique_lock<std::mutex> lock(mu_);
      epoch_cv_.wait(lock,
                     [&] { return epoch_.load(std::memory_order_acquire) != seen; });
    }
    seen = epoch_.load(std::memory_order_acquire);
    const std::function<void(size_t)>* work = work_;
    if (work == nullptr) {
      return;
    }
    (*work)(worker_index);
    if (done_count_.fetch_add(1, std::memory_order_acq_rel) + 1 == workers_.size()) {
      // Empty critical section: the coordinator is either still spinning (it
      // sees the count) or inside its cv wait (this notify lands after it
      // re-checked the predicate under mu_).
      { std::lock_guard<std::mutex> lock(mu_); }
      done_cv_.notify_one();
    }
  }
}

void ShardCoordinator::RunEpoch(const std::function<void(size_t)>& fn) {
  ++epochs_;
  if (workers_.empty()) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    done_count_.store(0, std::memory_order_relaxed);
    work_ = &fn;
    epoch_.fetch_add(1, std::memory_order_release);
  }
  epoch_cv_.notify_all();
  fn(0);
  const auto wait_start = std::chrono::steady_clock::now();
  const uint64_t want = workers_.size();
  bool done = false;
  for (uint32_t i = 0; i < spin_budget_; ++i) {
    if (done_count_.load(std::memory_order_acquire) == want) {
      done = true;
      break;
    }
    SpinPause(i);
  }
  if (!done) {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock,
                  [&] { return done_count_.load(std::memory_order_acquire) == want; });
  }
  barrier_wait_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wait_start).count();
}

}  // namespace trenv
