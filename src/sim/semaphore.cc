#include "src/sim/semaphore.h"

#include <cassert>

namespace trenv {

bool CountingResource::TryAcquire(uint64_t amount) {
  if (!waiters_.empty() || amount > available()) {
    return false;
  }
  in_use_ += amount;
  return true;
}

void CountingResource::Acquire(uint64_t amount, std::function<void()> on_granted) {
  assert(amount <= capacity_ && "acquisition can never be satisfied");
  if (TryAcquire(amount)) {
    on_granted();
    return;
  }
  waiters_.push_back(Waiter{amount, std::move(on_granted)});
}

void CountingResource::Release(uint64_t amount) {
  assert(amount <= in_use_);
  in_use_ -= amount;
  DrainWaiters();
}

void CountingResource::SetCapacity(uint64_t capacity) {
  capacity_ = capacity;
  DrainWaiters();
}

void CountingResource::DrainWaiters() {
  while (!waiters_.empty() && waiters_.front().amount <= capacity_ - in_use_) {
    Waiter w = std::move(waiters_.front());
    waiters_.pop_front();
    in_use_ += w.amount;
    w.on_granted();
  }
}

}  // namespace trenv
