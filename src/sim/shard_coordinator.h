// ShardCoordinator: the epoch barrier under the sharded simulation core.
//
// A sharded cluster run splits its nodes across N shards, each owning the
// nodes' per-platform EventSchedulers. The run proceeds in epochs: the
// coordinator picks a global target time, RunEpoch() drains every shard up to
// it concurrently, and control returns to the coordinator for the serial
// work between epochs (dispatch, mailbox routing, fault events). Shard 0
// always executes on the calling thread, so a 1-shard coordinator spawns no
// threads and is exactly the inline sequential loop — the bitwise reference
// the parallel runs are diffed against.
//
// The barrier is a hybrid: workers and the coordinator spin briefly (epochs
// are microseconds apart at simulation speed, so parking every epoch would
// dominate), then fall back to a condition variable. On a single-core host
// the spin budget is zero — spinning against the thread that must make
// progress only burns the scheduler quantum.
#ifndef TRENV_SIM_SHARD_COORDINATOR_H_
#define TRENV_SIM_SHARD_COORDINATOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace trenv {

class ShardCoordinator {
 public:
  // Spawns shards-1 worker threads (none for shards <= 1).
  explicit ShardCoordinator(size_t shards);
  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;
  ~ShardCoordinator();

  // Runs fn(0), ..., fn(shards-1) concurrently — fn(0) on the calling
  // thread — and returns once every shard has finished. fn must not throw
  // and must touch only shard-local state (plus the atomics audited in
  // docs/simulation_model.md).
  void RunEpoch(const std::function<void(size_t)>& fn);

  size_t shards() const { return shards_; }
  uint64_t epochs() const { return epochs_; }
  // Wall-clock seconds the coordinator spent waiting for the slowest shard
  // after finishing its own shard-0 work: the synchronization overhead the
  // sharded_scale bench reports.
  double barrier_wait_seconds() const { return barrier_wait_seconds_; }

 private:
  void WorkerLoop(size_t worker_index);

  const size_t shards_;
  uint64_t epochs_ = 0;
  double barrier_wait_seconds_ = 0;
  // Iterations to spin before parking; zero when the host has fewer cores
  // than shards (spinning would starve the very threads being awaited).
  uint32_t spin_budget_ = 0;

  std::mutex mu_;
  std::condition_variable epoch_cv_;  // workers wait here for the next epoch
  std::condition_variable done_cv_;   // the coordinator waits here for workers
  // Epoch sequence number: bumped (under mu_, with release semantics) to
  // publish work_; workers acquire-load it to see the new work function.
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> done_count_{0};
  const std::function<void(size_t)>* work_ = nullptr;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace trenv

#endif  // TRENV_SIM_SHARD_COORDINATOR_H_
