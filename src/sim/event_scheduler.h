// Discrete-event scheduler: the heart of the simulation.
//
// All platform dynamics (invocation arrivals, startup phases, CPU sharing,
// keep-alive expiry) are events on one virtual timeline. Events scheduled for
// the same instant execute in scheduling order, which keeps runs
// deterministic for a fixed seed.
//
// Implementation: a vector-backed binary min-heap keyed by (time, insertion
// sequence) — identical dispatch order to the previous red-black-tree
// implementation, without its two node allocations per ScheduleAt. Heap
// entries are 24-byte PODs; callbacks live in a free-listed slot arena, and
// the EventId encodes (slot, generation) so Cancel and the liveness test at
// pop are O(1) array accesses with no hashing. Cancellation is lazy: Cancel
// destroys the callback and bumps the slot generation; the heap entry stays
// behind as a tombstone, recognized at pop by its stale generation and
// skipped. Compact() bounds tombstone growth so a schedule/cancel-heavy
// workload (the keep-alive pattern) cannot bloat the heap past ~2x the live
// event count.
#ifndef TRENV_SIM_EVENT_SCHEDULER_H_
#define TRENV_SIM_EVENT_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/time.h"

namespace trenv {

// Encodes (generation << 32) | (slot + 1); 0 is never a valid id.
using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventScheduler {
 public:
  EventScheduler() = default;
  EventScheduler(const EventScheduler&) = delete;
  EventScheduler& operator=(const EventScheduler&) = delete;

  SimTime now() const { return now_; }

  // Schedules fn at absolute time t (must be >= now()).
  EventId ScheduleAt(SimTime t, std::function<void()> fn);
  // Schedules fn after a relative delay (clamped to >= 0).
  EventId ScheduleAfter(SimDuration delay, std::function<void()> fn);
  // Cancels a pending event. Returns false if it already ran or was cancelled.
  bool Cancel(EventId id);

  bool HasPending() const { return live_count_ > 0; }
  size_t pending_count() const { return live_count_; }

  // Time of the earliest live event, or nullopt when the queue is idle.
  // Non-const: prunes cancelled tombstones off the heap top to find it.
  // Lets external drivers (shstate::PipelineDriver) interleave their own
  // action queue with the scheduler without running anything early.
  std::optional<SimTime> NextEventTime();

  // Runs the earliest pending event, advancing the clock. Returns false if
  // there was nothing to run.
  bool RunNext();
  // Drains the event queue completely.
  void RunUntilIdle();
  // Runs all events with time <= t, then advances the clock to exactly t.
  void RunUntil(SimTime t);

  // Drops every pending event without running it; the clock does not move.
  // Outstanding EventIds become stale (Cancel on them returns false). Models
  // a node crash: whatever the dead node had queued simply never happens.
  void Clear();

  uint64_t executed_count() const { return executed_; }

 private:
  struct HeapEntry {
    SimTime time;
    uint64_t seq = 0;  // insertion order; tie-break at equal times
    uint32_t slot = 0;
    uint32_t generation = 0;
  };
  // std::push_heap/pop_heap build a max-heap on "less", so "a after b" as the
  // comparator yields a min-heap on (time, seq).
  struct RunsAfter {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      return b.time < a.time || (b.time == a.time && b.seq < a.seq);
    }
  };
  struct Slot {
    std::function<void()> fn;
    uint32_t generation = 0;
    bool live = false;
  };

  bool IsLive(const HeapEntry& entry) const {
    const Slot& slot = slots_[entry.slot];
    return slot.live && slot.generation == entry.generation;
  }
  // Releases a slot back to the free list, invalidating outstanding ids and
  // heap tombstones pointing at it.
  void ReleaseSlot(uint32_t index);
  // Pops tombstones (cancelled entries) off the heap top so front() — when it
  // exists — is the earliest live event.
  void PruneCancelledTop();
  // Rebuilds the heap without tombstones; called when tombstones outnumber
  // live events.
  void Compact();

  SimTime now_;
  uint64_t next_seq_ = 1;
  uint64_t executed_ = 0;
  size_t live_count_ = 0;
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
};

}  // namespace trenv

#endif  // TRENV_SIM_EVENT_SCHEDULER_H_
