// Discrete-event scheduler: the heart of the simulation.
//
// All platform dynamics (invocation arrivals, startup phases, CPU sharing,
// keep-alive expiry) are events on one virtual timeline. Events scheduled for
// the same instant execute in scheduling order, which keeps runs
// deterministic for a fixed seed.
#ifndef TRENV_SIM_EVENT_SCHEDULER_H_
#define TRENV_SIM_EVENT_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "src/common/time.h"

namespace trenv {

using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventScheduler {
 public:
  EventScheduler() = default;
  EventScheduler(const EventScheduler&) = delete;
  EventScheduler& operator=(const EventScheduler&) = delete;

  SimTime now() const { return now_; }

  // Schedules fn at absolute time t (must be >= now()).
  EventId ScheduleAt(SimTime t, std::function<void()> fn);
  // Schedules fn after a relative delay (clamped to >= 0).
  EventId ScheduleAfter(SimDuration delay, std::function<void()> fn);
  // Cancels a pending event. Returns false if it already ran or was cancelled.
  bool Cancel(EventId id);

  bool HasPending() const { return !events_.empty(); }
  size_t pending_count() const { return events_.size(); }

  // Runs the earliest pending event, advancing the clock. Returns false if
  // there was nothing to run.
  bool RunNext();
  // Drains the event queue completely.
  void RunUntilIdle();
  // Runs all events with time <= t, then advances the clock to exactly t.
  void RunUntil(SimTime t);

  uint64_t executed_count() const { return executed_; }

 private:
  // Key orders by (time, insertion sequence) for determinism.
  using Key = std::pair<SimTime, EventId>;

  SimTime now_;
  EventId next_id_ = 1;
  uint64_t executed_ = 0;
  std::map<Key, std::function<void()>> events_;
  std::map<EventId, SimTime> id_to_time_;
};

}  // namespace trenv

#endif  // TRENV_SIM_EVENT_SCHEDULER_H_
