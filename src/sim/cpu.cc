#include "src/sim/cpu.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

namespace trenv {

FairShareCpu::FairShareCpu(EventScheduler* scheduler, double cores)
    : scheduler_(scheduler), cores_(cores), last_sync_(scheduler->now()) {
  assert(cores > 0);
}

double FairShareCpu::current_load() const {
  double load = 0;
  for (const auto& [id, task] : tasks_) {
    load += task.weight;
  }
  return load;
}

double FairShareCpu::current_utilization() const {
  const double load = current_load();
  return std::min(1.0, load / cores_);
}

double FairShareCpu::consumed_cpu_seconds(SimTime now) const {
  double consumed = consumed_work_ns_;
  // Account the in-flight interval since the last sync.
  const double elapsed_ns = static_cast<double>((now - last_sync_).nanos());
  const double rate = RatePerUnitWeight();
  for (const auto& [id, task] : tasks_) {
    consumed += std::min(task.remaining_work_ns, elapsed_ns * rate * task.weight);
  }
  return consumed / 1e9;
}

double FairShareCpu::RatePerUnitWeight() const {
  const double load = current_load();
  if (load <= 0) {
    return 0;
  }
  // Each unit of weight progresses at min(1, cores/load) of full speed.
  return std::min(1.0, cores_ / load);
}

CpuTaskId FairShareCpu::Submit(SimDuration work, std::function<void()> on_complete) {
  return SubmitWeighted(work, 1.0, std::move(on_complete));
}

CpuTaskId FairShareCpu::SubmitWeighted(SimDuration work, double weight,
                                       std::function<void()> on_complete) {
  assert(weight > 0);
  Sync();
  const CpuTaskId id = next_id_++;
  Task task;
  task.remaining_work_ns = std::max<double>(0.0, static_cast<double>(work.nanos()));
  task.weight = weight;
  task.on_complete = std::move(on_complete);
  tasks_.emplace(id, std::move(task));
  Rearm();
  return id;
}

bool FairShareCpu::Cancel(CpuTaskId id) {
  Sync();
  auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return false;
  }
  tasks_.erase(it);
  Rearm();
  return true;
}

void FairShareCpu::Reset() {
  tasks_.clear();
  pending_event_ = kInvalidEventId;
  last_sync_ = scheduler_->now();
}

void FairShareCpu::Sync() {
  const SimTime now = scheduler_->now();
  const double elapsed_ns = static_cast<double>((now - last_sync_).nanos());
  last_sync_ = now;
  if (elapsed_ns <= 0 || tasks_.empty()) {
    return;
  }
  const double rate = RatePerUnitWeight();
  for (auto& [id, task] : tasks_) {
    const double done = std::min(task.remaining_work_ns, elapsed_ns * rate * task.weight);
    task.remaining_work_ns -= done;
    consumed_work_ns_ += done;
  }
}

void FairShareCpu::Rearm() {
  if (pending_event_ != kInvalidEventId) {
    scheduler_->Cancel(pending_event_);
    pending_event_ = kInvalidEventId;
  }
  if (tasks_.empty()) {
    return;
  }
  // Find the earliest finisher under the current share.
  const double rate = RatePerUnitWeight();
  assert(rate > 0);
  double min_finish_ns = std::numeric_limits<double>::infinity();
  for (const auto& [id, task] : tasks_) {
    const double finish_ns = task.remaining_work_ns / (rate * task.weight);
    min_finish_ns = std::min(min_finish_ns, finish_ns);
  }
  const auto delay = SimDuration(static_cast<int64_t>(std::ceil(min_finish_ns)));
  pending_event_ = scheduler_->ScheduleAfter(delay, [this] {
    pending_event_ = kInvalidEventId;
    Sync();
    // Collect all tasks that have (numerically) finished. A small epsilon
    // absorbs floating-point residue from the rate computation.
    constexpr double kEpsilonNs = 0.5;
    std::vector<std::function<void()>> done;
    for (auto it = tasks_.begin(); it != tasks_.end();) {
      if (it->second.remaining_work_ns <= kEpsilonNs) {
        consumed_work_ns_ += it->second.remaining_work_ns;
        done.push_back(std::move(it->second.on_complete));
        it = tasks_.erase(it);
      } else {
        ++it;
      }
    }
    Rearm();
    for (auto& fn : done) {
      fn();
    }
  });
}

}  // namespace trenv
