// Fixed-size worker pool for running independent simulations concurrently.
//
// The simulator itself is single-threaded by design — one EventScheduler, one
// virtual clock. Parallelism lives a level up: experiment sweeps (one
// Testbed / VM platform per configuration) are embarrassingly parallel as
// long as each run owns its scheduler, registry, and tracer. This pool is the
// substrate for bench::ParallelSweep; it makes no attempt at work stealing or
// priorities because sweep tasks are few (5-30) and long (whole simulations).
//
// Tasks must not throw: an escaped exception would terminate the process
// (the sim layer reports failures through Status, not exceptions).
#ifndef TRENV_SIM_THREAD_POOL_H_
#define TRENV_SIM_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace trenv {

class ThreadPool {
 public:
  // Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(unsigned threads);
  // Joins after draining the queue.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Safe to call from any thread, including from a task.
  void Submit(std::function<void()> task);

  // Blocks until the queue is empty and every worker is idle. Completed-task
  // side effects are visible to the caller afterwards (the mutex orders
  // them), so results written from tasks can be read without further
  // synchronization.
  void Wait();

  unsigned thread_count() const { return static_cast<unsigned>(workers_.size()); }

  // hardware_concurrency with a floor of 1 (it may return 0).
  static unsigned DefaultThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  unsigned active_ = 0;
  bool stop_ = false;
};

}  // namespace trenv

#endif  // TRENV_SIM_THREAD_POOL_H_
