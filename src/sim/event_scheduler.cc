#include "src/sim/event_scheduler.h"

#include <algorithm>
#include <cassert>

namespace trenv {

namespace {
constexpr uint64_t kSlotMask = 0xffffffffULL;
}  // namespace

EventId EventScheduler::ScheduleAt(SimTime t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule in the past");
  uint32_t slot_index;
  if (!free_slots_.empty()) {
    slot_index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot_index = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[slot_index];
  slot.fn = std::move(fn);
  slot.live = true;
  heap_.push_back(HeapEntry{t, next_seq_++, slot_index, slot.generation});
  std::push_heap(heap_.begin(), heap_.end(), RunsAfter{});
  ++live_count_;
  return (static_cast<EventId>(slot.generation) << 32) | (slot_index + 1);
}

EventId EventScheduler::ScheduleAfter(SimDuration delay, std::function<void()> fn) {
  if (delay < SimDuration::Zero()) {
    delay = SimDuration::Zero();
  }
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool EventScheduler::Cancel(EventId id) {
  if (id == kInvalidEventId || (id & kSlotMask) == 0) {
    return false;
  }
  const uint32_t slot_index = static_cast<uint32_t>((id & kSlotMask) - 1);
  const uint32_t generation = static_cast<uint32_t>(id >> 32);
  if (slot_index >= slots_.size()) {
    return false;
  }
  Slot& slot = slots_[slot_index];
  if (!slot.live || slot.generation != generation) {
    return false;  // already ran, already cancelled, or never scheduled
  }
  ReleaseSlot(slot_index);
  --live_count_;
  // The heap entry stays behind as a 24-byte tombstone (the callback is gone
  // already); bound their number so cancel-heavy workloads (keep-alive
  // timers) don't accumulate dead entries.
  if (heap_.size() > 64 && heap_.size() > 2 * live_count_) {
    Compact();
  }
  return true;
}

void EventScheduler::ReleaseSlot(uint32_t index) {
  Slot& slot = slots_[index];
  slot.fn = nullptr;
  slot.live = false;
  ++slot.generation;  // invalidates the id and any heap tombstone
  free_slots_.push_back(index);
}

void EventScheduler::Compact() {
  std::erase_if(heap_, [this](const HeapEntry& entry) { return !IsLive(entry); });
  std::make_heap(heap_.begin(), heap_.end(), RunsAfter{});
}

void EventScheduler::PruneCancelledTop() {
  while (!heap_.empty() && !IsLive(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), RunsAfter{});
    heap_.pop_back();
  }
}

std::optional<SimTime> EventScheduler::NextEventTime() {
  PruneCancelledTop();
  if (heap_.empty()) {
    return std::nullopt;
  }
  return heap_.front().time;
}

bool EventScheduler::RunNext() {
  for (;;) {
    if (heap_.empty()) {
      return false;
    }
    std::pop_heap(heap_.begin(), heap_.end(), RunsAfter{});
    const HeapEntry entry = heap_.back();
    heap_.pop_back();
    if (!IsLive(entry)) {
      continue;  // tombstone
    }
    std::function<void()> fn = std::move(slots_[entry.slot].fn);
    ReleaseSlot(entry.slot);
    --live_count_;
    now_ = entry.time;
    ++executed_;
    fn();
    return true;
  }
}

void EventScheduler::RunUntilIdle() {
  while (RunNext()) {
  }
}

void EventScheduler::Clear() {
  // Release slot-by-slot (not slots_.clear()) so generations keep advancing
  // and stale EventIds held by callers still fail Cancel's liveness check.
  for (uint32_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].live) {
      ReleaseSlot(i);
    }
  }
  heap_.clear();
  live_count_ = 0;
}

void EventScheduler::RunUntil(SimTime t) {
  for (;;) {
    PruneCancelledTop();
    if (heap_.empty() || t < heap_.front().time) {
      break;
    }
    RunNext();
  }
  if (now_ < t) {
    now_ = t;
  }
}

}  // namespace trenv
