#include "src/sim/event_scheduler.h"

#include <cassert>

namespace trenv {

EventId EventScheduler::ScheduleAt(SimTime t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule in the past");
  const EventId id = next_id_++;
  events_.emplace(Key{t, id}, std::move(fn));
  id_to_time_.emplace(id, t);
  return id;
}

EventId EventScheduler::ScheduleAfter(SimDuration delay, std::function<void()> fn) {
  if (delay < SimDuration::Zero()) {
    delay = SimDuration::Zero();
  }
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool EventScheduler::Cancel(EventId id) {
  auto it = id_to_time_.find(id);
  if (it == id_to_time_.end()) {
    return false;
  }
  events_.erase(Key{it->second, id});
  id_to_time_.erase(it);
  return true;
}

bool EventScheduler::RunNext() {
  if (events_.empty()) {
    return false;
  }
  auto it = events_.begin();
  const Key key = it->first;
  std::function<void()> fn = std::move(it->second);
  events_.erase(it);
  id_to_time_.erase(key.second);
  now_ = key.first;
  ++executed_;
  fn();
  return true;
}

void EventScheduler::RunUntilIdle() {
  while (RunNext()) {
  }
}

void EventScheduler::RunUntil(SimTime t) {
  while (!events_.empty() && events_.begin()->first.first <= t) {
    RunNext();
  }
  if (now_ < t) {
    now_ = t;
  }
}

}  // namespace trenv
