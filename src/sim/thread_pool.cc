#include "src/sim/thread_pool.h"

#include <algorithm>
#include <utility>

namespace trenv {

unsigned ThreadPool::DefaultThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads) {
  threads = std::max(1u, threads);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // stop_ set and queue drained
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) {
        all_idle_.notify_all();
      }
    }
  }
}

}  // namespace trenv
