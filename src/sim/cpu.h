// Processor-sharing CPU model.
//
// A FairShareCpu has C cores and a set of runnable tasks, each with some
// remaining CPU work. When k tasks are runnable, each progresses at rate
// min(1, C/k) - the classic work-conserving processor-sharing queue. This is
// how overcommit effects in the paper (200 agents on 20 cores, concurrent
// cold starts) appear in the simulation: latency inflation *emerges* from the
// share model rather than being hard-coded.
//
// A task optionally carries a weight (e.g. a browser process that aggregates
// the demand of several agents).
#ifndef TRENV_SIM_CPU_H_
#define TRENV_SIM_CPU_H_

#include <cstdint>
#include <functional>
#include <map>

#include "src/common/time.h"
#include "src/sim/event_scheduler.h"

namespace trenv {

using CpuTaskId = uint64_t;
inline constexpr CpuTaskId kInvalidCpuTaskId = 0;

class FairShareCpu {
 public:
  FairShareCpu(EventScheduler* scheduler, double cores);

  // Submits a CPU burst of `work` (CPU-seconds at full speed). on_complete
  // fires when the burst finishes; actual wall time depends on contention.
  CpuTaskId Submit(SimDuration work, std::function<void()> on_complete);
  CpuTaskId SubmitWeighted(SimDuration work, double weight, std::function<void()> on_complete);

  // Cancels an in-flight burst (its callback never fires).
  bool Cancel(CpuTaskId id);

  // Drops every runnable task without completing it (crash recovery). The
  // pending completion event is assumed already gone — call this only after
  // the owning scheduler was Clear()ed.
  void Reset();

  double cores() const { return cores_; }
  size_t runnable_count() const { return tasks_.size(); }
  // Current aggregate demand (sum of weights of runnable tasks).
  double current_load() const;
  // Fraction of capacity currently used: min(1, load/cores).
  double current_utilization() const;
  // Total CPU-seconds consumed since construction, for utilization reports.
  double consumed_cpu_seconds(SimTime now) const;

 private:
  struct Task {
    double remaining_work_ns;  // at full-speed execution
    double weight;
    std::function<void()> on_complete;
  };

  // Advances every runnable task's remaining work to the current instant and
  // re-arms the single completion event for the earliest finisher.
  void Sync();
  void Rearm();
  double RatePerUnitWeight() const;

  EventScheduler* scheduler_;
  double cores_;
  std::map<CpuTaskId, Task> tasks_;
  CpuTaskId next_id_ = 1;
  SimTime last_sync_;
  EventId pending_event_ = kInvalidEventId;
  double consumed_work_ns_ = 0;
};

}  // namespace trenv

#endif  // TRENV_SIM_CPU_H_
