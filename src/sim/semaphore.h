// Counting resources for the DES: FIFO-queued acquisition of an integral
// capacity (memory caps, browser seats, sandbox-pool slots).
#ifndef TRENV_SIM_SEMAPHORE_H_
#define TRENV_SIM_SEMAPHORE_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "src/sim/event_scheduler.h"

namespace trenv {

class CountingResource {
 public:
  explicit CountingResource(uint64_t capacity) : capacity_(capacity) {}

  uint64_t capacity() const { return capacity_; }
  uint64_t in_use() const { return in_use_; }
  uint64_t available() const { return capacity_ - in_use_; }
  size_t waiting() const { return waiters_.size(); }

  // Tries to take `amount` immediately. Returns false if unavailable.
  bool TryAcquire(uint64_t amount);
  // Takes `amount` now or queues the grant callback (FIFO). The callback runs
  // synchronously from the Release() that frees enough capacity.
  void Acquire(uint64_t amount, std::function<void()> on_granted);
  void Release(uint64_t amount);

  // Grows/shrinks capacity (shrinking never revokes granted units).
  void SetCapacity(uint64_t capacity);

 private:
  void DrainWaiters();

  struct Waiter {
    uint64_t amount;
    std::function<void()> on_granted;
  };

  uint64_t capacity_;
  uint64_t in_use_ = 0;
  std::deque<Waiter> waiters_;
};

}  // namespace trenv

#endif  // TRENV_SIM_SEMAPHORE_H_
