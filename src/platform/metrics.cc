#include "src/platform/metrics.h"

namespace trenv {

MetricsCollector::MetricsCollector()
    : fetch_cpu_(registry_.GetCounter("platform.fetch_cpu_seconds")) {}

FunctionMetrics MetricsCollector::Aggregate() const {
  FunctionMetrics total;
  for (const auto& [name, metrics] : per_function_) {
    total.e2e_ms.MergeFrom(metrics.e2e_ms);
    total.startup_ms.MergeFrom(metrics.startup_ms);
    total.exec_ms.MergeFrom(metrics.exec_ms);
    total.invocations += metrics.invocations;
    total.warm_starts += metrics.warm_starts;
    total.repurposed_starts += metrics.repurposed_starts;
    total.cold_starts += metrics.cold_starts;
    total.prewarm_starts += metrics.prewarm_starts;
  }
  return total;
}

FunctionMetrics& MetricsCollector::ForFunctionSlow(FunctionId id) {
  FunctionMetrics& metrics = per_function_[std::string(FunctionName(id))];
  if (by_id_.size() <= id) {
    by_id_.resize(id + 1, nullptr);
  }
  by_id_[id] = &metrics;
  return metrics;
}

void MetricsCollector::Clear() {
  per_function_.clear();
  by_id_.clear();  // cached pointers died with the map nodes
  memory_gauge_ = TimeSeriesGauge();
  registry_.Reset();  // keeps instruments (and cached pointers) alive
}

}  // namespace trenv
