#include "src/platform/metrics.h"

namespace trenv {

MetricsCollector::MetricsCollector()
    : fetch_cpu_(registry_.GetCounter("platform.fetch_cpu_seconds")) {}

FunctionMetrics MetricsCollector::Aggregate() const {
  FunctionMetrics total;
  for (const auto& [name, metrics] : per_function_) {
    total.e2e_ms.MergeFrom(metrics.e2e_ms);
    total.startup_ms.MergeFrom(metrics.startup_ms);
    total.exec_ms.MergeFrom(metrics.exec_ms);
    total.invocations += metrics.invocations;
    total.warm_starts += metrics.warm_starts;
    total.repurposed_starts += metrics.repurposed_starts;
    total.cold_starts += metrics.cold_starts;
    total.prewarm_starts += metrics.prewarm_starts;
  }
  return total;
}

void MetricsCollector::Clear() {
  per_function_.clear();
  memory_gauge_ = TimeSeriesGauge();
  registry_.Reset();  // keeps instruments (and cached pointers) alive
}

}  // namespace trenv
