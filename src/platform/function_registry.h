// FunctionRegistry: deployed functions, keyed by name at the deployment
// boundary and by interned FunctionId on the invocation hot path.
#ifndef TRENV_PLATFORM_FUNCTION_REGISTRY_H_
#define TRENV_PLATFORM_FUNCTION_REGISTRY_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/interner.h"
#include "src/common/status.h"
#include "src/runtime/function_profile.h"

namespace trenv {

class FunctionRegistry {
 public:
  // Interns the function name and stores the profile with its id set.
  Status Deploy(FunctionProfile profile);
  Result<const FunctionProfile*> Find(const std::string& name) const;
  // O(1) hot-path lookup; nullptr if `id` was never deployed here.
  const FunctionProfile* FindById(FunctionId id) const {
    return id < by_id_.size() ? by_id_[id] : nullptr;
  }
  std::vector<std::string> Names() const;
  size_t size() const { return functions_.size(); }

 private:
  std::map<std::string, FunctionProfile> functions_;
  // Indexed by FunctionId (global id space, so the vector may be sparse when
  // several registries coexist). Pointers into functions_ nodes are stable.
  std::vector<const FunctionProfile*> by_id_;
};

}  // namespace trenv

#endif  // TRENV_PLATFORM_FUNCTION_REGISTRY_H_
