// FunctionRegistry: deployed functions, keyed by name.
#ifndef TRENV_PLATFORM_FUNCTION_REGISTRY_H_
#define TRENV_PLATFORM_FUNCTION_REGISTRY_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/runtime/function_profile.h"

namespace trenv {

class FunctionRegistry {
 public:
  Status Deploy(FunctionProfile profile);
  Result<const FunctionProfile*> Find(const std::string& name) const;
  std::vector<std::string> Names() const;
  size_t size() const { return functions_.size(); }

 private:
  std::map<std::string, FunctionProfile> functions_;
};

}  // namespace trenv

#endif  // TRENV_PLATFORM_FUNCTION_REGISTRY_H_
