#include "src/platform/keep_alive_pool.h"

#include <cassert>

namespace trenv {

uint32_t KeepAlivePool::AcquireSlot() {
  if (!free_slots_.empty()) {
    const uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

std::unique_ptr<FunctionInstance> KeepAlivePool::Detach(uint32_t slot) {
  Slot& s = slots_[slot];
  // Global LRU list.
  if (s.lru_prev != kNil) {
    slots_[s.lru_prev].lru_next = s.lru_next;
  } else {
    lru_head_ = s.lru_next;
  }
  if (s.lru_next != kNil) {
    slots_[s.lru_next].lru_prev = s.lru_prev;
  } else {
    lru_tail_ = s.lru_prev;
  }
  // Per-function list.
  FnList& fn = by_function_[s.function];
  if (s.fn_prev != kNil) {
    slots_[s.fn_prev].fn_next = s.fn_next;
  } else {
    fn.head = s.fn_next;
  }
  if (s.fn_next != kNil) {
    slots_[s.fn_next].fn_prev = s.fn_prev;
  } else {
    fn.tail = s.fn_prev;
  }
  --fn.count;
  --size_;
  UnlinkTier(slot);
  --tier_counts_[static_cast<size_t>(s.tier)];
  tier_bytes_[static_cast<size_t>(s.tier)] -= s.footprint_bytes;
  footprint_bytes_ -= s.footprint_bytes;
  std::unique_ptr<FunctionInstance> instance = std::move(s.instance);
  s = Slot{};
  free_slots_.push_back(slot);
  return instance;
}

void KeepAlivePool::Put(std::unique_ptr<FunctionInstance> instance, SimTime now) {
  Put(std::move(instance), now, ttl_);
}

void KeepAlivePool::Put(std::unique_ptr<FunctionInstance> instance, SimTime now,
                        SimDuration ttl) {
  assert(instance != nullptr);
  instance->last_used = now;
  const FunctionId function = instance->function_id();
  const uint32_t slot = AcquireSlot();
  Slot& s = slots_[slot];
  s.tier = instance->density_tier;
  s.footprint_bytes = instance->footprint_bytes;
  ++tier_counts_[static_cast<size_t>(s.tier)];
  tier_bytes_[static_cast<size_t>(s.tier)] += s.footprint_bytes;
  footprint_bytes_ += s.footprint_bytes;
  if (footprint_bytes_ > peak_footprint_bytes_) {
    peak_footprint_bytes_ = footprint_bytes_;
  }
  s.instance = std::move(instance);
  s.expiry = now + ttl;
  s.function = function;
  // Link at the global MRU position.
  s.lru_prev = lru_tail_;
  s.lru_next = kNil;
  if (lru_tail_ != kNil) {
    slots_[lru_tail_].lru_next = slot;
  } else {
    lru_head_ = slot;
  }
  lru_tail_ = slot;
  LinkTier(slot);
  // Link at the function's MRU position.
  if (by_function_.size() <= function) {
    by_function_.resize(function + 1);
  }
  FnList& fn = by_function_[function];
  s.fn_prev = fn.tail;
  s.fn_next = kNil;
  if (fn.tail != kNil) {
    slots_[fn.tail].fn_next = slot;
  } else {
    fn.head = slot;
  }
  fn.tail = slot;
  ++fn.count;
  ++size_;
  if (size_ > peak_size_) {
    peak_size_ = size_;
  }
}

void KeepAlivePool::Retier(uint32_t slot, DensityTier tier, uint64_t footprint_bytes) {
  Slot& s = slots_[slot];
  UnlinkTier(slot);
  --tier_counts_[static_cast<size_t>(s.tier)];
  tier_bytes_[static_cast<size_t>(s.tier)] -= s.footprint_bytes;
  footprint_bytes_ -= s.footprint_bytes;
  s.tier = tier;
  s.footprint_bytes = footprint_bytes;
  LinkTier(slot);
  ++tier_counts_[static_cast<size_t>(s.tier)];
  tier_bytes_[static_cast<size_t>(s.tier)] += s.footprint_bytes;
  footprint_bytes_ += s.footprint_bytes;
}

std::unique_ptr<FunctionInstance> KeepAlivePool::TakeWarm(FunctionId function) {
  if (function >= by_function_.size() || by_function_[function].tail == kNil) {
    ++warm_misses_;
    return nullptr;
  }
  ++warm_hits_;
  return Detach(by_function_[function].tail);
}

bool KeepAlivePool::EvictLru() {
  if (lru_head_ == kNil) {
    return false;
  }
  evict_(Detach(lru_head_));
  return true;
}

bool KeepAlivePool::EvictFnLru(FunctionId function) {
  if (function >= by_function_.size() || by_function_[function].head == kNil) {
    return false;
  }
  evict_(Detach(by_function_[function].head));
  return true;
}

bool KeepAlivePool::EvictHotLru() {
  const uint32_t head = tier_head_[static_cast<size_t>(DensityTier::kDramHot)];
  if (head == kNil) {
    return false;
  }
  evict_(Detach(head));
  return true;
}

void KeepAlivePool::LinkTier(uint32_t slot) {
  Slot& s = slots_[slot];
  const size_t t = static_cast<size_t>(s.tier);
  s.tier_prev = tier_tail_[t];
  s.tier_next = kNil;
  if (tier_tail_[t] != kNil) {
    slots_[tier_tail_[t]].tier_next = slot;
  } else {
    tier_head_[t] = slot;
  }
  tier_tail_[t] = slot;
}

void KeepAlivePool::UnlinkTier(uint32_t slot) {
  Slot& s = slots_[slot];
  const size_t t = static_cast<size_t>(s.tier);
  if (s.tier_prev != kNil) {
    slots_[s.tier_prev].tier_next = s.tier_next;
  } else {
    tier_head_[t] = s.tier_next;
  }
  if (s.tier_next != kNil) {
    slots_[s.tier_next].tier_prev = s.tier_prev;
  } else {
    tier_tail_[t] = s.tier_prev;
  }
  s.tier_prev = kNil;
  s.tier_next = kNil;
}

size_t KeepAlivePool::ExpireStale(SimTime now) {
  // Per-entry TTLs make expiry non-monotone in LRU order: scan the list.
  size_t evicted = 0;
  for (uint32_t slot = lru_head_; slot != kNil;) {
    const uint32_t next = slots_[slot].lru_next;
    if (slots_[slot].expiry <= now) {
      evict_(Detach(slot));
      ++evicted;
    }
    slot = next;
  }
  return evicted;
}

void KeepAlivePool::EvictAll() {
  while (EvictLru()) {
  }
}

void KeepAlivePool::Drop() {
  slots_.clear();
  free_slots_.clear();
  by_function_.clear();
  lru_head_ = kNil;
  lru_tail_ = kNil;
  for (size_t i = 0; i < kDensityTierCount; ++i) {
    tier_head_[i] = kNil;
    tier_tail_[i] = kNil;
  }
  size_ = 0;
  for (size_t i = 0; i < kDensityTierCount; ++i) {
    tier_counts_[i] = 0;
    tier_bytes_[i] = 0;
  }
  footprint_bytes_ = 0;
}

}  // namespace trenv
