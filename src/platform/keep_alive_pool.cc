#include "src/platform/keep_alive_pool.h"

#include <cassert>

namespace trenv {

void KeepAlivePool::Put(std::unique_ptr<FunctionInstance> instance, SimTime now) {
  Put(std::move(instance), now, ttl_);
}

void KeepAlivePool::Put(std::unique_ptr<FunctionInstance> instance, SimTime now,
                        SimDuration ttl) {
  assert(instance != nullptr);
  instance->last_used = now;
  const std::string function = instance->function();
  lru_.push_back(Entry{std::move(instance), now + ttl});
  by_function_[function].push_back(std::prev(lru_.end()));
}

std::unique_ptr<FunctionInstance> KeepAlivePool::TakeWarm(const std::string& function) {
  auto it = by_function_.find(function);
  if (it == by_function_.end() || it->second.empty()) {
    ++warm_misses_;
    return nullptr;
  }
  ++warm_hits_;
  LruList::iterator entry_it = it->second.back();
  it->second.pop_back();
  if (it->second.empty()) {
    by_function_.erase(it);
  }
  std::unique_ptr<FunctionInstance> instance = std::move(entry_it->instance);
  lru_.erase(entry_it);
  return instance;
}

bool KeepAlivePool::EvictLru() {
  if (lru_.empty()) {
    return false;
  }
  auto entry_it = lru_.begin();
  const std::string function = entry_it->instance->function();
  auto& iters = by_function_[function];
  for (auto it = iters.begin(); it != iters.end(); ++it) {
    if (*it == entry_it) {
      iters.erase(it);
      break;
    }
  }
  if (iters.empty()) {
    by_function_.erase(function);
  }
  std::unique_ptr<FunctionInstance> instance = std::move(entry_it->instance);
  lru_.erase(entry_it);
  evict_(std::move(instance));
  return true;
}

size_t KeepAlivePool::ExpireStale(SimTime now) {
  // Per-entry TTLs make expiry non-monotone in LRU order: scan the list.
  size_t evicted = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->expiry <= now) {
      auto expired = it++;
      const std::string function = expired->instance->function();
      auto& iters = by_function_[function];
      for (auto fit = iters.begin(); fit != iters.end(); ++fit) {
        if (*fit == expired) {
          iters.erase(fit);
          break;
        }
      }
      if (iters.empty()) {
        by_function_.erase(function);
      }
      std::unique_ptr<FunctionInstance> instance = std::move(expired->instance);
      lru_.erase(expired);
      evict_(std::move(instance));
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

void KeepAlivePool::EvictAll() {
  while (EvictLru()) {
  }
}

void KeepAlivePool::Drop() {
  lru_.clear();
  by_function_.clear();
}

size_t KeepAlivePool::CountFor(const std::string& function) const {
  auto it = by_function_.find(function);
  return it == by_function_.end() ? 0 : it->second.size();
}

}  // namespace trenv
