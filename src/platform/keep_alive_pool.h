// KeepAlivePool: warm instances cached for reuse, LRU-ordered, with a fixed
// TTL (10 minutes, like OpenWhisk) and memory-pressure eviction — the
// scheduling policy all evaluated systems share (paper section 9.1).
//
// Storage is a slot arena: entries live in a vector of slots threaded onto
// two intrusive doubly-linked lists (the global LRU order and the per-
// function list, bucketed by interned FunctionId). Park/take/evict are all
// pointer-free index relinks, so keep-alive churn — every completed
// invocation parks here, every warm hit takes from here — performs no node
// allocations and no string hashing. Eviction and expiry order are identical
// to the original std::list + std::map implementation.
#ifndef TRENV_PLATFORM_KEEP_ALIVE_POOL_H_
#define TRENV_PLATFORM_KEEP_ALIVE_POOL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/interner.h"
#include "src/common/time.h"
#include "src/criu/restore_engine.h"

namespace trenv {

class KeepAlivePool {
 public:
  using EvictFn = std::function<void(std::unique_ptr<FunctionInstance>)>;
  // Sentinel slot index ("no slot"), returned by TierLruHead on empty tiers.
  static constexpr uint32_t kNoSlot = 0xFFFFFFFFu;

  KeepAlivePool(SimDuration ttl, EvictFn evict) : ttl_(ttl), evict_(std::move(evict)) {}

  // Parks a warm instance (most-recently-used position). `ttl` overrides the
  // pool default for this entry (per-function policies).
  void Put(std::unique_ptr<FunctionInstance> instance, SimTime now);
  void Put(std::unique_ptr<FunctionInstance> instance, SimTime now, SimDuration ttl);
  // Takes a warm instance of `function` if any (MRU of that function).
  std::unique_ptr<FunctionInstance> TakeWarm(FunctionId function);
  std::unique_ptr<FunctionInstance> TakeWarm(const std::string& function) {
    return TakeWarm(GlobalFunctionInterner().Find(function));
  }
  // Evicts the single least-recently-used idle instance. Returns false if
  // the pool is empty.
  bool EvictLru();
  // Evicts `function`'s least-recently-used idle instance. Returns false if
  // the function has nothing parked. The density manager's per-function
  // surplus cap trims with this so the victim is always the entry that
  // function would reuse last.
  bool EvictFnLru(FunctionId function);
  // Evicts every instance idle since before `now - ttl`.
  size_t ExpireStale(SimTime now);
  void EvictAll();
  // Discards every parked instance WITHOUT running the evict callback: the
  // node crashed, so there is nothing orderly to tear down.
  void Drop();

  size_t size() const { return size_; }
  // High-water mark of size() over the pool's lifetime (survives Drop).
  size_t peak_size() const { return peak_size_; }
  size_t CountFor(FunctionId function) const {
    return function < by_function_.size() ? by_function_[function].count : 0;
  }
  size_t CountFor(const std::string& function) const {
    return CountFor(GlobalFunctionInterner().Find(function));
  }
  uint64_t warm_hits() const { return warm_hits_; }
  uint64_t warm_misses() const { return warm_misses_; }

  SimDuration ttl() const { return ttl_; }

  // --- Density-tier aggregates ---------------------------------------------
  // Maintained from each instance's density_tier/footprint_bytes at Put time
  // and adjusted by Retier when the density manager migrates a parked entry.
  size_t CountInTier(DensityTier tier) const { return tier_counts_[static_cast<size_t>(tier)]; }
  uint64_t FootprintInTier(DensityTier tier) const {
    return tier_bytes_[static_cast<size_t>(tier)];
  }
  // Total parked footprint across all tiers (the overcommit ceiling's input).
  uint64_t footprint_bytes() const { return footprint_bytes_; }
  // High-water mark of footprint_bytes() over the pool's lifetime.
  uint64_t peak_footprint_bytes() const { return peak_footprint_bytes_; }

  // Re-buckets a parked entry after the density manager moved it to `tier`
  // and re-stamps its node footprint (demotion moves the private pages into
  // a pool tier, shrinking the node bill to metadata; the instance's own
  // density_tier/footprint_bytes have already been updated).
  void Retier(uint32_t slot, DensityTier tier, uint64_t footprint_bytes);

  // Visits every parked entry in LRU order (coldest first). `fn` gets the
  // slot index (valid for Retier) and the instance; it must not add or
  // remove pool entries.
  template <typename Fn>
  void ForEachLru(Fn&& fn) {
    for (uint32_t slot = lru_head_; slot != kNil;) {
      const uint32_t next = slots_[slot].lru_next;
      fn(slot, *slots_[slot].instance);
      slot = next;
    }
  }

  // Visits only the parked entries in `tier`, coldest first (entries are
  // appended when parked or retiered, so list order is arrival-at-tier
  // order). Migration decisions walk exactly the population they can act on
  // instead of paying for the whole pool: pressure relief walks the hot
  // list, warm-tier evacuation walks the CXL list.
  template <typename Fn>
  void ForEachTierLru(DensityTier tier, Fn&& fn) {
    for (uint32_t slot = tier_head_[static_cast<size_t>(tier)]; slot != kNil;) {
      const uint32_t next = slots_[slot].tier_next;
      fn(slot, *slots_[slot].instance);
      slot = next;
    }
  }

  // Evicts the least-recently-used DRAM-hot entry (the only parked entries
  // still holding node frames); false when none is hot. Last-resort frame
  // relief when every swap tier is full.
  bool EvictHotLru();

  // Coldest parked entry in `tier` (kNoSlot when the tier is empty), and the
  // instance behind a slot. Together with Retier these let the density
  // manager cascade entries down one at a time without walking the tier.
  uint32_t TierLruHead(DensityTier tier) const {
    return tier_head_[static_cast<size_t>(tier)];
  }
  FunctionInstance& InstanceAt(uint32_t slot) { return *slots_[slot].instance; }

 private:
  static constexpr uint32_t kNil = kNoSlot;

  struct Slot {
    std::unique_ptr<FunctionInstance> instance;
    SimTime expiry;
    FunctionId function = kInvalidFunctionId;
    // Mirrors instance->density_tier / footprint_bytes so Detach can adjust
    // the aggregates without touching the (possibly moved-out) instance.
    DensityTier tier = DensityTier::kDramHot;
    uint64_t footprint_bytes = 0;
    // Global LRU list links (head = LRU, tail = MRU).
    uint32_t lru_prev = kNil;
    uint32_t lru_next = kNil;
    // Per-function list links (tail = that function's MRU).
    uint32_t fn_prev = kNil;
    uint32_t fn_next = kNil;
    // Per-tier list links (the list matching `tier`).
    uint32_t tier_prev = kNil;
    uint32_t tier_next = kNil;
  };
  struct FnList {
    uint32_t head = kNil;
    uint32_t tail = kNil;
    size_t count = 0;
  };

  uint32_t AcquireSlot();
  // Appends `slot` to / removes it from the list of its current tier (link
  // maintenance only; tier aggregates are the caller's job).
  void LinkTier(uint32_t slot);
  void UnlinkTier(uint32_t slot);
  // Unlinks `slot` from both lists and pushes it onto the free list;
  // returns its instance.
  std::unique_ptr<FunctionInstance> Detach(uint32_t slot);

  SimDuration ttl_;
  EvictFn evict_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  std::vector<FnList> by_function_;  // indexed by FunctionId; may be sparse
  uint32_t lru_head_ = kNil;
  uint32_t lru_tail_ = kNil;
  uint32_t tier_head_[kDensityTierCount] = {kNil, kNil, kNil};
  uint32_t tier_tail_[kDensityTierCount] = {kNil, kNil, kNil};
  size_t size_ = 0;
  size_t peak_size_ = 0;
  uint64_t warm_hits_ = 0;
  uint64_t warm_misses_ = 0;
  size_t tier_counts_[kDensityTierCount] = {};
  uint64_t tier_bytes_[kDensityTierCount] = {};
  uint64_t footprint_bytes_ = 0;
  uint64_t peak_footprint_bytes_ = 0;
};

}  // namespace trenv

#endif  // TRENV_PLATFORM_KEEP_ALIVE_POOL_H_
