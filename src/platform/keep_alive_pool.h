// KeepAlivePool: warm instances cached for reuse, LRU-ordered, with a fixed
// TTL (10 minutes, like OpenWhisk) and memory-pressure eviction — the
// scheduling policy all evaluated systems share (paper section 9.1).
#ifndef TRENV_PLATFORM_KEEP_ALIVE_POOL_H_
#define TRENV_PLATFORM_KEEP_ALIVE_POOL_H_

#include <functional>
#include <list>
#include <map>
#include <memory>
#include <string>

#include "src/common/time.h"
#include "src/criu/restore_engine.h"

namespace trenv {

class KeepAlivePool {
 public:
  using EvictFn = std::function<void(std::unique_ptr<FunctionInstance>)>;

  KeepAlivePool(SimDuration ttl, EvictFn evict) : ttl_(ttl), evict_(std::move(evict)) {}

  // Parks a warm instance (most-recently-used position). `ttl` overrides the
  // pool default for this entry (per-function policies).
  void Put(std::unique_ptr<FunctionInstance> instance, SimTime now);
  void Put(std::unique_ptr<FunctionInstance> instance, SimTime now, SimDuration ttl);
  // Takes a warm instance of `function` if any (MRU of that function).
  std::unique_ptr<FunctionInstance> TakeWarm(const std::string& function);
  // Evicts the single least-recently-used idle instance. Returns false if
  // the pool is empty.
  bool EvictLru();
  // Evicts every instance idle since before `now - ttl`.
  size_t ExpireStale(SimTime now);
  void EvictAll();
  // Discards every parked instance WITHOUT running the evict callback: the
  // node crashed, so there is nothing orderly to tear down.
  void Drop();

  size_t size() const { return lru_.size(); }
  size_t CountFor(const std::string& function) const;
  uint64_t warm_hits() const { return warm_hits_; }
  uint64_t warm_misses() const { return warm_misses_; }

  SimDuration ttl() const { return ttl_; }

 private:
  struct Entry {
    std::unique_ptr<FunctionInstance> instance;
    SimTime expiry;
  };
  using LruList = std::list<Entry>;

  SimDuration ttl_;
  EvictFn evict_;
  LruList lru_;  // front = LRU, back = MRU
  std::map<std::string, std::list<LruList::iterator>> by_function_;
  uint64_t warm_hits_ = 0;
  uint64_t warm_misses_ = 0;
};

}  // namespace trenv

#endif  // TRENV_PLATFORM_KEEP_ALIVE_POOL_H_
