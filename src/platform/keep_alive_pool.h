// KeepAlivePool: warm instances cached for reuse, LRU-ordered, with a fixed
// TTL (10 minutes, like OpenWhisk) and memory-pressure eviction — the
// scheduling policy all evaluated systems share (paper section 9.1).
//
// Storage is a slot arena: entries live in a vector of slots threaded onto
// two intrusive doubly-linked lists (the global LRU order and the per-
// function list, bucketed by interned FunctionId). Park/take/evict are all
// pointer-free index relinks, so keep-alive churn — every completed
// invocation parks here, every warm hit takes from here — performs no node
// allocations and no string hashing. Eviction and expiry order are identical
// to the original std::list + std::map implementation.
#ifndef TRENV_PLATFORM_KEEP_ALIVE_POOL_H_
#define TRENV_PLATFORM_KEEP_ALIVE_POOL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/interner.h"
#include "src/common/time.h"
#include "src/criu/restore_engine.h"

namespace trenv {

class KeepAlivePool {
 public:
  using EvictFn = std::function<void(std::unique_ptr<FunctionInstance>)>;

  KeepAlivePool(SimDuration ttl, EvictFn evict) : ttl_(ttl), evict_(std::move(evict)) {}

  // Parks a warm instance (most-recently-used position). `ttl` overrides the
  // pool default for this entry (per-function policies).
  void Put(std::unique_ptr<FunctionInstance> instance, SimTime now);
  void Put(std::unique_ptr<FunctionInstance> instance, SimTime now, SimDuration ttl);
  // Takes a warm instance of `function` if any (MRU of that function).
  std::unique_ptr<FunctionInstance> TakeWarm(FunctionId function);
  std::unique_ptr<FunctionInstance> TakeWarm(const std::string& function) {
    return TakeWarm(GlobalFunctionInterner().Find(function));
  }
  // Evicts the single least-recently-used idle instance. Returns false if
  // the pool is empty.
  bool EvictLru();
  // Evicts every instance idle since before `now - ttl`.
  size_t ExpireStale(SimTime now);
  void EvictAll();
  // Discards every parked instance WITHOUT running the evict callback: the
  // node crashed, so there is nothing orderly to tear down.
  void Drop();

  size_t size() const { return size_; }
  size_t CountFor(FunctionId function) const {
    return function < by_function_.size() ? by_function_[function].count : 0;
  }
  size_t CountFor(const std::string& function) const {
    return CountFor(GlobalFunctionInterner().Find(function));
  }
  uint64_t warm_hits() const { return warm_hits_; }
  uint64_t warm_misses() const { return warm_misses_; }

  SimDuration ttl() const { return ttl_; }

 private:
  static constexpr uint32_t kNil = 0xFFFFFFFFu;

  struct Slot {
    std::unique_ptr<FunctionInstance> instance;
    SimTime expiry;
    FunctionId function = kInvalidFunctionId;
    // Global LRU list links (head = LRU, tail = MRU).
    uint32_t lru_prev = kNil;
    uint32_t lru_next = kNil;
    // Per-function list links (tail = that function's MRU).
    uint32_t fn_prev = kNil;
    uint32_t fn_next = kNil;
  };
  struct FnList {
    uint32_t head = kNil;
    uint32_t tail = kNil;
    size_t count = 0;
  };

  uint32_t AcquireSlot();
  // Unlinks `slot` from both lists and pushes it onto the free list;
  // returns its instance.
  std::unique_ptr<FunctionInstance> Detach(uint32_t slot);

  SimDuration ttl_;
  EvictFn evict_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  std::vector<FnList> by_function_;  // indexed by FunctionId; may be sparse
  uint32_t lru_head_ = kNil;
  uint32_t lru_tail_ = kNil;
  size_t size_ = 0;
  uint64_t warm_hits_ = 0;
  uint64_t warm_misses_ = 0;
};

}  // namespace trenv

#endif  // TRENV_PLATFORM_KEEP_ALIVE_POOL_H_
