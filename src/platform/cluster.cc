#include "src/platform/cluster.h"

namespace trenv {

Cluster::Cluster(ClusterConfig config)
    : config_(config),
      base_layer_(std::make_shared<FsLayer>("debian-base")),
      cxl_(std::make_unique<CxlPool>(config.cxl_pool_bytes)) {
  backends_.Register(cxl_.get());
  tiered_.AddTier(cxl_.get());
  dedup_ = std::make_unique<SnapshotDedupStore>(&tiered_);
  // The shared device belongs to no single node; its fetch stats go to the
  // cluster-owned registry (never the process-wide one: concurrent clusters
  // in a parallel sweep would race on it).
  cxl_->BindStats(&stats_);

  for (uint32_t i = 0; i < config_.nodes; ++i) {
    // Each node occupies one port of the multi-headed device.
    (void)cxl_->AttachNode(i);
    auto node = std::make_unique<Node>();
    node->sandbox_factory =
        std::make_unique<SandboxFactory>(base_layer_, config_.node_config.seed ^ (0x5b + i));
    node->sandbox_pool = std::make_unique<SandboxPool>();
    node->mmt = std::make_unique<MmtApi>(&backends_);
    node->engine = std::make_unique<TrEnvEngine>(node->sandbox_factory.get(),
                                                 node->sandbox_pool.get(), node->mmt.get(),
                                                 dedup_.get());
    PlatformConfig node_config = config_.node_config;
    node_config.seed ^= 0x900d + i;
    if (node_config.tracer != nullptr) {
      // Each node is its own trace process (clock domain): one swim lane per
      // node in the exported view.
      node_config.trace_process = "node" + std::to_string(i);
    }
    node->platform =
        std::make_unique<ServerlessPlatform>(node_config, node->engine.get(), &backends_);
    node->mmt->BindStats(&node->platform->metrics().registry());
    nodes_.push_back(std::move(node));
  }
}

Status Cluster::Deploy(const FunctionProfile& profile) {
  for (auto& node : nodes_) {
    node->sandbox_pool->RegisterFunctionLayer(
        profile.name, std::make_shared<FsLayer>(profile.name + "-deps"));
    // Every node runs Prepare; snapshot chunks dedup against the shared
    // store, so only the first node actually writes pool pages.
    TRENV_RETURN_IF_ERROR(node->platform->Deploy(profile));
  }
  return Status::Ok();
}

Status Cluster::DeployTable4Functions() {
  for (const FunctionProfile& profile : Table4Functions()) {
    TRENV_RETURN_IF_ERROR(Deploy(profile));
  }
  return Status::Ok();
}

size_t Cluster::PickNode(const std::string& function) {
  (void)function;
  if (config_.dispatch == ClusterConfig::Dispatch::kRoundRobin) {
    const size_t node = next_node_;
    next_node_ = (next_node_ + 1) % nodes_.size();
    return node;
  }
  // Least-loaded: fewest in-flight startups, then least DRAM in use — the
  // "dispatch to whichever node has available CPU" ideal of section 3.2.
  size_t best = 0;
  for (size_t i = 1; i < nodes_.size(); ++i) {
    const auto& candidate = nodes_[i];
    const auto& incumbent = nodes_[best];
    const auto key = [](const Node& n) {
      return std::make_pair(n.platform->concurrent_startups(),
                            n.platform->frames().used_bytes());
    };
    if (key(*candidate) < key(*incumbent)) {
      best = i;
    }
  }
  return best;
}

Status Cluster::Submit(SimTime arrival, const std::string& function) {
  const size_t node_index = PickNode(function);
  ServerlessPlatform& platform = *nodes_[node_index]->platform;
  if (platform.tracer() != nullptr) {
    // Dispatch marker on the chosen node's control track (track 0).
    const obs::SpanId id =
        platform.tracer()->Instant({platform.trace_pid(), 0}, "dispatch", "cluster");
    platform.tracer()->Annotate(id, "function", function);
    platform.tracer()->Annotate(id, "node", static_cast<int64_t>(node_index));
  }
  return platform.Submit(arrival, function);
}

Status Cluster::Run(const Schedule& schedule) {
  // Dispatch decisions use the load at submission time, so interleave:
  // advance every node up to each arrival before placing it.
  for (const Invocation& invocation : schedule) {
    for (auto& node : nodes_) {
      node->platform->scheduler().RunUntil(invocation.arrival);
    }
    TRENV_RETURN_IF_ERROR(Submit(invocation.arrival, invocation.function));
  }
  RunAllToCompletion();
  return Status::Ok();
}

void Cluster::RunAllToCompletion() {
  for (auto& node : nodes_) {
    node->platform->RunToCompletion();
  }
}

uint64_t Cluster::NodeDramBytes() const {
  uint64_t total = 0;
  for (const auto& node : nodes_) {
    total += node->platform->frames().used_bytes();
  }
  return total;
}

FunctionMetrics Cluster::AggregateMetrics() const {
  FunctionMetrics total;
  for (const auto& node : nodes_) {
    FunctionMetrics agg = node->platform->metrics().Aggregate();
    total.e2e_ms.MergeFrom(agg.e2e_ms);
    total.startup_ms.MergeFrom(agg.startup_ms);
    total.exec_ms.MergeFrom(agg.exec_ms);
    total.invocations += agg.invocations;
    total.warm_starts += agg.warm_starts;
    total.repurposed_starts += agg.repurposed_starts;
    total.cold_starts += agg.cold_starts;
  }
  return total;
}

uint64_t Cluster::TotalInvocations() const { return AggregateMetrics().invocations; }

}  // namespace trenv
