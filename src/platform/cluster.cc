#include "src/platform/cluster.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <tuple>
#include <utility>

#include "src/common/interner.h"

namespace trenv {

Cluster::Cluster(ClusterConfig config)
    : config_(config),
      base_layer_(std::make_shared<FsLayer>("debian-base")),
      cxl_(std::make_unique<CxlPool>(config.cxl_pool_bytes)) {
  backends_.Register(cxl_.get());
  tiered_.AddTier(cxl_.get());
  dedup_ = std::make_unique<SnapshotDedupStore>(&tiered_);
  // The shared device belongs to no single node; its fetch stats go to the
  // cluster-owned registry (never the process-wide one: concurrent clusters
  // in a parallel sweep would race on it).
  cxl_->BindStats(&stats_);
  if (!config_.faults.empty()) {
    injector_ = std::make_unique<FaultInjector>(config_.faults, &stats_);
    injector_->set_retry_policy(config_.retry);
    cxl_->BindFaultInjector(injector_.get());
  }
  if (config_.poolmgr.enabled) {
    // Shard pulls ride their own RDMA fabric (not the MHD ports), so attach
    // traffic sees NIC-style load-dependent latency and fault injection.
    fabric_ = std::make_unique<RdmaPool>(config_.cxl_pool_bytes,
                                         config_.node_config.seed ^ 0xfab);
    fabric_->BindStats(&stats_);
    if (injector_ != nullptr) {
      fabric_->BindFaultInjector(injector_.get());
    }
    pool_mgr_ = std::make_unique<PoolManager>(config_.poolmgr, config_.nodes, fabric_.get(),
                                              &stats_);
    if (config_.poolctl.enabled) {
      // The continuous control plane runs on the pool clock from time zero;
      // it installs the continuous read/admission policy into the manager
      // and takes over crash/restart routing (see ApplyNodeEvent).
      pool_ctl_ = std::make_unique<PoolControlPlane>(config_.poolctl, pool_mgr_.get(),
                                                     &config_.faults, &stats_,
                                                     config_.node_config.tracer);
      pool_ctl_->Start(SimTime());
    }
  }
  if (config_.shstate.enabled) {
    // Shared-state regions live on the same tiered pool as templates; the
    // data plane's clock joins the lock-step advance like poolmgr's.
    shstate_ = std::make_unique<RegionManager>(config_.shstate, config_.nodes, &tiered_,
                                               &backends_, &stats_);
  }

  for (uint32_t i = 0; i < config_.nodes; ++i) {
    // Each node occupies one port of the multi-headed device.
    (void)cxl_->AttachNode(i);
    auto node = std::make_unique<Node>();
    node->sandbox_factory =
        std::make_unique<SandboxFactory>(base_layer_, config_.node_config.seed ^ (0x5b + i));
    node->sandbox_pool = std::make_unique<SandboxPool>();
    node->mmt = std::make_unique<MmtApi>(&backends_);
    node->engine = std::make_unique<TrEnvEngine>(node->sandbox_factory.get(),
                                                 node->sandbox_pool.get(), node->mmt.get(),
                                                 dedup_.get());
    PlatformConfig node_config = config_.node_config;
    node_config.seed ^= 0x900d + i;
    node_config.node_index = i;
    if (node_config.tracer != nullptr) {
      // Each node is its own trace process (clock domain): one swim lane per
      // node in the exported view.
      node_config.trace_process = "node" + std::to_string(i);
    }
    node->platform =
        std::make_unique<ServerlessPlatform>(node_config, node->engine.get(), &backends_);
    node->mmt->BindStats(&node->platform->metrics().registry());
    nodes_.push_back(std::move(node));
  }
}

Status Cluster::Deploy(const FunctionProfile& profile) {
  for (auto& node : nodes_) {
    node->sandbox_pool->RegisterFunctionLayer(
        profile.name, std::make_shared<FsLayer>(profile.name + "-deps"));
    // Every node runs Prepare; snapshot chunks dedup against the shared
    // store, so only the first node actually writes pool pages.
    TRENV_RETURN_IF_ERROR(node->platform->Deploy(profile));
  }
  if (pool_mgr_ != nullptr && !nodes_.empty()) {
    // Shard the deduplicated image across the pool nodes; RegisterTemplate
    // is idempotent, so one registration covers every node's deployment.
    const FunctionId fid = GlobalFunctionInterner().Find(profile.name);
    const ConsolidatedImage* image = nodes_[0]->engine->ImageFor(profile.name);
    if (fid != kInvalidFunctionId && image != nullptr) {
      pool_mgr_->RegisterTemplate(fid, *image);
    }
  }
  return Status::Ok();
}

Status Cluster::DeployTable4Functions() {
  for (const FunctionProfile& profile : Table4Functions()) {
    TRENV_RETURN_IF_ERROR(Deploy(profile));
  }
  return Status::Ok();
}

bool Cluster::AnyAlive() const {
  for (const auto& node : nodes_) {
    if (node->alive) {
      return true;
    }
  }
  return false;
}

size_t Cluster::PickNode(const std::string& function, SimTime arrival) {
  // Callers guarantee at least one node is alive.
  if (config_.dispatch == ClusterConfig::Dispatch::kRoundRobin) {
    while (!nodes_[next_node_]->alive) {
      next_node_ = (next_node_ + 1) % nodes_.size();
    }
    const size_t node = next_node_;
    next_node_ = (next_node_ + 1) % nodes_.size();
    return node;
  }
  if (config_.dispatch == ClusterConfig::Dispatch::kTemplateLocality) {
    // Template locality: prefer a node that already has the function warm
    // (keep-alive instance), then one holding a live template lease (attach
    // is metadata-only there), then fall back to least-loaded. Ties break by
    // node index, so placement is deterministic.
    const FunctionId fid = GlobalFunctionInterner().Find(function);
    const auto key = [&](size_t i) {
      const Node& n = *nodes_[i];
      const bool warm =
          fid != kInvalidFunctionId && n.platform->keep_alive().CountFor(fid) > 0;
      const bool leased = fid != kInvalidFunctionId && pool_mgr_ != nullptr &&
                          pool_mgr_->LeaseRefs(static_cast<uint32_t>(i), fid) > 0;
      // Membership-view consult: with the continuous control plane on, a
      // node whose NIC is backlogged (or, during a degraded view, any cold
      // pull at all) is penalized before the load tie-breakers. Zero for
      // every node when poolctl is off, so legacy ordering is unchanged.
      const uint64_t penalty =
          pool_ctl_ != nullptr
              ? pool_ctl_->DispatchPenaltyMs(static_cast<uint32_t>(i), arrival)
              : 0;
      return std::make_tuple(!warm, !leased, penalty,
                             n.platform->concurrent_startups() + WindowLoad(i),
                             n.platform->frames().used_bytes());
    };
    size_t best = nodes_.size();
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (!nodes_[i]->alive) {
        continue;
      }
      if (best == nodes_.size() || key(i) < key(best)) {
        best = i;
      }
    }
    return best;
  }
  // Least-loaded: fewest in-flight startups, then least DRAM in use — the
  // "dispatch to whichever node has available CPU" ideal of section 3.2.
  size_t best = nodes_.size();
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i]->alive) {
      continue;
    }
    if (best == nodes_.size()) {
      best = i;
      continue;
    }
    const auto key = [&](size_t j) {
      const Node& n = *nodes_[j];
      return std::make_pair(n.platform->concurrent_startups() + WindowLoad(j),
                            n.platform->frames().used_bytes());
    };
    if (key(i) < key(best)) {
      best = i;
    }
  }
  return best;
}

Status Cluster::Submit(SimTime arrival, const std::string& function) {
  return Submit(arrival, function, SubmitOptions{});
}

Status Cluster::Submit(SimTime arrival, const std::string& function, SubmitOptions options) {
  const Status status = Dispatch(arrival, function, std::move(options));
  if (status.ok()) {
    ++accepted_;
  }
  return status;
}

Status Cluster::Dispatch(SimTime arrival, const std::string& function,
                         SubmitOptions options) {
  if (!AnyAlive()) {
    if (injector_ == nullptr) {
      return Status::Unavailable("no node alive to accept invocation of '" + function + "'");
    }
    // Whole-rack outage mid-chaos: park the invocation; the next restart
    // flushes the deferred queue.
    deferred_.push_back(Deferred{arrival, function, std::move(options.on_complete)});
    injector_->CountDeferred();
    return Status::Ok();
  }
  const size_t node_index =
      (options.preferred_node >= 0 &&
       static_cast<size_t>(options.preferred_node) < nodes_.size() &&
       nodes_[options.preferred_node]->alive)
          ? static_cast<size_t>(options.preferred_node)
          : PickNode(function, arrival);
  ServerlessPlatform& platform = *nodes_[node_index]->platform;
  if (platform.tracer() != nullptr) {
    // Dispatch marker on the chosen node's control track (track 0).
    const obs::SpanId id =
        platform.tracer()->Instant({platform.trace_pid(), 0}, "dispatch", "cluster");
    platform.tracer()->Annotate(id, "function", function);
    platform.tracer()->Annotate(id, "node", static_cast<int64_t>(node_index));
  }
  SimTime start = arrival;
  if (pool_mgr_ != nullptr) {
    // Attach the template through the control plane before the invocation
    // can start: a lease hit is metadata-only; a miss pulls the shards over
    // the chosen node's NIC. Expired leases up to `arrival` lapse first.
    pool_mgr_->clock().RunUntil(arrival);
    const FunctionId fid = GlobalFunctionInterner().Find(function);
    const PoolManager::AttachOutcome attach =
        pool_mgr_->Attach(static_cast<uint32_t>(node_index), fid, arrival);
    start = arrival + attach.latency;
    if (platform.tracer() != nullptr) {
      const obs::SpanId id =
          platform.tracer()->Instant({platform.trace_pid(), 0}, "poolmgr.attach", "poolmgr");
      platform.tracer()->Annotate(id, "lease_hit", attach.lease_hit ? int64_t{1} : int64_t{0});
      platform.tracer()->Annotate(id, "fetched_pages",
                                  static_cast<int64_t>(attach.fetched_pages));
      platform.tracer()->Annotate(id, "latency_us", attach.latency.nanos() / 1000);
    }
  }
  if (mailbox_ != nullptr) {
    // Sharded run: defer the platform submit into the owning shard's mailbox;
    // it is applied at the start of the next epoch, before any scheduler
    // drains, so event sequence numbers match an immediate submit. A
    // rejection surfaces when the mailbox drains (it still aborts the run).
    mailbox_->cmds.push_back(SubmitCmd{start, static_cast<uint32_t>(node_index), function,
                                       std::move(options.on_complete)});
    mailbox_->inboxes[mailbox_->shard_of[node_index]].push_back(mailbox_->cmds.size() - 1);
    if (!window_dispatches_.empty()) {
      ++window_dispatches_[node_index];
    }
    return Status::Ok();
  }
  const Status status = platform.Submit(start, function, std::move(options.on_complete));
  if (!status.ok()) {
    // Name the rejecting node: "invocation failed" without a culprit is
    // useless in a rack-sized log.
    return Status(status.code(), "node " + std::to_string(node_index) +
                                     " rejected invocation of '" + function +
                                     "': " + status.message());
  }
  return status;
}

void Cluster::FocusNode(size_t i) {
  if (injector_ == nullptr) {
    return;
  }
  injector_->BindClock(&nodes_[i]->platform->scheduler());
  injector_->SetActiveNode(static_cast<uint32_t>(i));
}

void Cluster::AdvanceAllTo(SimTime t) {
  // Dead nodes advance too (their queue is empty; only the clock moves), so
  // a restarted node rejoins at the cluster-wide instant.
  for (size_t i = 0; i < nodes_.size(); ++i) {
    FocusNode(i);
    nodes_[i]->platform->scheduler().RunUntil(t);
  }
  if (pool_mgr_ != nullptr) {
    // The control plane's clock (lease expiries, rebalances) moves in
    // lock-step with the worker nodes.
    pool_mgr_->clock().RunUntil(t);
  }
  if (shstate_ != nullptr) {
    // Invalidation shootdowns and reader-lease expiries follow the same
    // lock-step timeline.
    shstate_->clock().RunUntil(t);
  }
}

void Cluster::CrashNode(size_t i, SimTime when) {
  Node& node = *nodes_[i];
  if (!node.alive) {
    return;
  }
  node.alive = false;
  injector_->RecordInjection(when, FaultDomain::kNodeCrash, static_cast<uint32_t>(i));
  std::vector<LostInvocation> lost = node.platform->Crash();
  node.sandbox_pool->Clear();
  if (pool_mgr_ != nullptr) {
    // A dead worker tears down nothing orderly; its leases just vanish.
    pool_mgr_->ReleaseWorker(static_cast<uint32_t>(i));
  }
  if (shstate_ != nullptr) {
    // Region ownership the dead worker held becomes vacant (the bytes are
    // durable in the pool); its reader leases vanish like poolmgr's.
    shstate_->ReleaseWorker(static_cast<uint32_t>(i));
  }
  // Failover: everything the dead node had accepted restarts on a survivor
  // once the dispatcher's health check fires. TrEnv restores from the shared
  // snapshot (redeploy_penalty zero); the cold-redeploy baseline pays a
  // snapshot pull per recovered invocation first.
  const SimTime redispatch =
      when + config_.failover.detection_latency + config_.failover.redeploy_penalty;
  for (LostInvocation& invocation : lost) {
    injector_->CountFailover(redispatch - invocation.arrival);
    SubmitOptions options;
    options.on_complete = std::move(invocation.on_complete);
    (void)Dispatch(redispatch, invocation.function, std::move(options));
  }
}

void Cluster::RestartNode(size_t i, SimTime when) {
  Node& node = *nodes_[i];
  if (node.alive) {
    return;
  }
  node.alive = true;
  injector_->CountRestart();
  if (deferred_.empty()) {
    return;
  }
  // Flush invocations parked during a whole-rack outage.
  std::vector<Deferred> parked;
  parked.swap(deferred_);
  const SimTime ready = when + config_.failover.detection_latency;
  for (Deferred& d : parked) {
    injector_->CountFailover(ready - d.arrival);
    SubmitOptions options;
    options.on_complete = std::move(d.on_complete);
    (void)Dispatch(std::max(ready, d.arrival), d.function, std::move(options));
  }
}

void Cluster::ApplyNodeEvent(const FaultInjector::NodeEvent& event) {
  switch (event.kind) {
    case FaultInjector::NodeEvent::Kind::kCrash:
      if (event.node < nodes_.size()) {
        CrashNode(event.node, event.time);
      }
      break;
    case FaultInjector::NodeEvent::Kind::kRestart:
      if (event.node < nodes_.size()) {
        RestartNode(event.node, event.time);
      }
      break;
    case FaultInjector::NodeEvent::Kind::kPressureStart:
    case FaultInjector::NodeEvent::Kind::kPressureEnd:
      for (size_t i = 0; i < nodes_.size(); ++i) {
        if (event.node == kAnyTarget || event.node == i) {
          FocusNode(i);
          nodes_[i]->platform->SetSoftMemCapScale(event.severity);
        }
      }
      break;
    case FaultInjector::NodeEvent::Kind::kPoolCrash:
      if (pool_mgr_ != nullptr && pool_mgr_->pool_node_alive(event.node)) {
        injector_->RecordInjection(event.time, FaultDomain::kPoolNodeCrash, event.node);
        if (pool_ctl_ != nullptr) {
          // Continuous mode: the data plane learns the node is silent, but
          // ring surgery waits for the membership protocol's declaration.
          pool_mgr_->OnPoolNodeDown(event.node);
          pool_ctl_->membership().NodeDown(event.node);
        } else {
          pool_mgr_->OnPoolNodeCrash(event.node, event.time);
        }
      }
      break;
    case FaultInjector::NodeEvent::Kind::kPoolRestart:
      if (pool_mgr_ != nullptr) {
        if (pool_ctl_ != nullptr) {
          if (!pool_mgr_->pool_node_alive(event.node)) {
            pool_mgr_->OnPoolNodeUp(event.node);
            pool_ctl_->membership().NodeUp(event.node);
          }
        } else {
          pool_mgr_->OnPoolNodeRestart(event.node, event.time);
        }
      }
      break;
  }
}

Status Cluster::Run(const Schedule& schedule) {
  // Dispatch decisions use the load at submission time, so interleave:
  // advance every node up to each arrival before placing it. Node-level
  // fault events (crashes, restarts, pressure windows) merge into the same
  // timeline so their ordering against arrivals is exact.
  std::vector<FaultInjector::NodeEvent> plan;
  if (injector_ != nullptr) {
    plan = injector_->PlanNodeEvents(static_cast<uint32_t>(nodes_.size()),
                                     pool_mgr_ != nullptr ? config_.poolmgr.pool_nodes : 0);
  }
  size_t next_event = 0;
  for (const Invocation& invocation : schedule) {
    while (next_event < plan.size() && plan[next_event].time <= invocation.arrival) {
      AdvanceAllTo(plan[next_event].time);
      ApplyNodeEvent(plan[next_event]);
      ++next_event;
    }
    AdvanceAllTo(invocation.arrival);
    TRENV_RETURN_IF_ERROR(Submit(invocation.arrival, invocation.function));
  }
  while (next_event < plan.size()) {
    AdvanceAllTo(plan[next_event].time);
    ApplyNodeEvent(plan[next_event]);
    ++next_event;
  }
  RunAllToCompletion();
  return Status::Ok();
}

bool Cluster::CanShardAcrossThreads() const {
  // shstate is cross-node-shared and unsynchronized (region maps, clock), so
  // it degrades sharded runs to one shard like the other shared components.
  return injector_ == nullptr && config_.node_config.tracer == nullptr &&
         config_.node_config.prewarm == nullptr && !config_.node_config.density.enabled &&
         shstate_ == nullptr;
}

Status Cluster::RunSharded(ArrivalStream& arrivals, const ShardedRunOptions& options) {
  std::vector<FaultInjector::NodeEvent> plan;
  if (injector_ != nullptr) {
    plan = injector_->PlanNodeEvents(static_cast<uint32_t>(nodes_.size()),
                                     pool_mgr_ != nullptr ? config_.poolmgr.pool_nodes : 0);
  }
  // Shard count: clamped to the node count; degraded to one shard when a
  // cross-node-shared component (injector, tracer, prewarm, density) is
  // configured. Degradation changes only how much work runs concurrently —
  // the epoch algorithm below is identical, so output is still independent
  // of the requested shard count.
  uint32_t shards = std::max<uint32_t>(1, options.shards);
  shards = std::min<uint32_t>(shards, static_cast<uint32_t>(nodes_.size()));
  if (!CanShardAcrossThreads()) {
    shards = 1;
  }
  sharded_effective_shards_ = shards;

  // Contiguous node ranges per shard; node -> shard for the mailbox router.
  std::vector<std::pair<size_t, size_t>> shard_range(shards);
  MailboxSink sink;
  sink.inboxes.resize(shards);
  sink.shard_of.resize(nodes_.size());
  for (uint32_t s = 0; s < shards; ++s) {
    shard_range[s] = {nodes_.size() * s / shards, nodes_.size() * (s + 1) / shards};
    for (size_t i = shard_range[s].first; i < shard_range[s].second; ++i) {
      sink.shard_of[i] = s;
    }
  }
  mailbox_ = &sink;
  const bool windowed = options.lookahead > SimDuration::Zero();
  if (windowed) {
    window_dispatches_.assign(nodes_.size(), 0);
  }
  struct SinkGuard {
    Cluster* cluster;
    ~SinkGuard() {
      cluster->mailbox_ = nullptr;
      cluster->window_dispatches_.clear();
    }
  } guard{this};

  ShardCoordinator coordinator(shards);

  // One epoch: each shard first applies its mailbox (in global push order,
  // before any drain, so scheduler sequence numbers match an immediate
  // submit), then drains its nodes in index order up to the target. The
  // control plane's clock follows on the coordinator thread. Lambdas are
  // built once; `target` is rebound per epoch.
  SimTime target;
  const std::function<void(size_t)> advance_shard = [&](size_t s) {
    for (const size_t idx : sink.inboxes[s]) {
      const SubmitCmd& cmd = sink.cmds[idx];
      sink.statuses[idx] =
          nodes_[cmd.node]->platform->Submit(cmd.start, cmd.function, cmd.on_complete);
    }
    for (size_t i = shard_range[s].first; i < shard_range[s].second; ++i) {
      if (injector_ != nullptr) {
        FocusNode(i);  // injector implies shards == 1: still coordinator-serial
      }
      nodes_[i]->platform->scheduler().RunUntil(target);
    }
  };
  const std::function<void(size_t)> finish_shard = [&](size_t s) {
    for (const size_t idx : sink.inboxes[s]) {
      const SubmitCmd& cmd = sink.cmds[idx];
      sink.statuses[idx] =
          nodes_[cmd.node]->platform->Submit(cmd.start, cmd.function, cmd.on_complete);
    }
    for (size_t i = shard_range[s].first; i < shard_range[s].second; ++i) {
      if (injector_ != nullptr) {
        FocusNode(i);
      }
      nodes_[i]->platform->RunToCompletion();
    }
  };

  // Scans mailbox outcomes in global sequence order (the deterministic
  // (time, shard, seq) drain order), clears the epoch's mailboxes, and
  // surfaces the first rejection exactly as the sequential Dispatch would.
  const auto settle_mailbox = [&]() -> Status {
    Status first = Status::Ok();
    for (size_t idx = 0; idx < sink.cmds.size(); ++idx) {
      const Status& status = sink.statuses[idx];
      if (!status.ok() && first.ok()) {
        first = Status(status.code(),
                       "node " + std::to_string(sink.cmds[idx].node) +
                           " rejected invocation of '" + sink.cmds[idx].function +
                           "': " + status.message());
      }
    }
    sink.cmds.clear();
    sink.statuses.clear();
    for (auto& inbox : sink.inboxes) {
      inbox.clear();
    }
    return first;
  };
  const auto epoch_advance = [&](SimTime t) -> Status {
    target = t;
    sink.statuses.resize(sink.cmds.size());
    coordinator.RunEpoch(advance_shard);
    TRENV_RETURN_IF_ERROR(settle_mailbox());
    if (pool_mgr_ != nullptr) {
      pool_mgr_->clock().RunUntil(t);
    }
    if (windowed) {
      // A sync point refreshes the real load state; the window's provisional
      // placement counts are now visible as concurrent startups.
      std::fill(window_dispatches_.begin(), window_dispatches_.end(), 0u);
    }
    return Status::Ok();
  };

  // The main loop mirrors Run(): node-level fault events merge into the
  // arrival timeline at exactly the sequential interleaving.
  size_t next_event = 0;
  std::optional<Invocation> pending = arrivals.Next();
  while (pending.has_value() || next_event < plan.size()) {
    if (next_event < plan.size() &&
        (!pending.has_value() || plan[next_event].time <= pending->arrival)) {
      TRENV_RETURN_IF_ERROR(epoch_advance(plan[next_event].time));
      ApplyNodeEvent(plan[next_event]);
      ++next_event;
      continue;
    }
    const SimTime window_start = pending->arrival;
    TRENV_RETURN_IF_ERROR(epoch_advance(window_start));
    if (!windowed) {
      // Per-arrival epochs: dispatch sees exactly the sequential load state.
      TRENV_RETURN_IF_ERROR(Submit(pending->arrival, pending->function));
      pending = arrivals.Next();
      continue;
    }
    // Batched dispatch: every arrival inside [window_start, window_start +
    // lookahead) places against the snapshot at window_start plus this
    // window's own placements. Fault events still cut the window short so
    // their interleaving matches the sequential run.
    const SimTime window_end = window_start + options.lookahead;
    while (pending.has_value() && pending->arrival < window_end &&
           !(next_event < plan.size() && plan[next_event].time <= pending->arrival)) {
      TRENV_RETURN_IF_ERROR(Submit(pending->arrival, pending->function));
      pending = arrivals.Next();
    }
  }

  // Final epoch: flush the last window's mailboxes, then drain every node to
  // completion (nodes diverge in time here, exactly like RunAllToCompletion —
  // no cross-node interaction remains).
  sink.statuses.resize(sink.cmds.size());
  coordinator.RunEpoch(finish_shard);
  TRENV_RETURN_IF_ERROR(settle_mailbox());
  if (pool_ctl_ != nullptr) {
    // Stop the periodic heartbeat/rebalance ticks or the pool clock never
    // drains. No final converge: replication at trace end is whatever the
    // continuous loop actually restored.
    pool_ctl_->Quiesce();
  }
  if (pool_mgr_ != nullptr) {
    pool_mgr_->clock().RunUntilIdle();
  }
  sharded_epochs_ = coordinator.epochs();
  sharded_barrier_wait_ = coordinator.barrier_wait_seconds();
  return Status::Ok();
}

void Cluster::RunAllToCompletion() {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    FocusNode(i);
    nodes_[i]->platform->RunToCompletion();
  }
  if (pool_ctl_ != nullptr) {
    // Cancel the periodic ticks (heartbeats, rebalancing) so the drain
    // below terminates; lease expiries still lapse on their own.
    pool_ctl_->Quiesce();
  }
  if (pool_mgr_ != nullptr) {
    // Let outstanding lease-expiry and rebalance events lapse; every grant
    // schedules exactly one expiry, so this drains.
    pool_mgr_->clock().RunUntilIdle();
  }
  if (shstate_ != nullptr) {
    // Same for invalidation shootdowns and reader-lease expiries.
    shstate_->clock().RunUntilIdle();
  }
}

std::optional<SimTime> Cluster::NextEventTime() {
  std::optional<SimTime> earliest;
  const auto consider = [&](std::optional<SimTime> t) {
    if (t.has_value() && (!earliest.has_value() || *t < *earliest)) {
      earliest = t;
    }
  };
  for (auto& node : nodes_) {
    consider(node->platform->scheduler().NextEventTime());
  }
  if (pool_mgr_ != nullptr) {
    consider(pool_mgr_->clock().NextEventTime());
  }
  if (shstate_ != nullptr) {
    consider(shstate_->clock().NextEventTime());
  }
  return earliest;
}

void Cluster::AdvanceClocksTo(SimTime t) { AdvanceAllTo(t); }

std::vector<FaultInjector::NodeEvent> Cluster::PlanFaultEvents() {
  if (injector_ == nullptr) {
    return {};
  }
  return injector_->PlanNodeEvents(static_cast<uint32_t>(nodes_.size()),
                                   pool_mgr_ != nullptr ? config_.poolmgr.pool_nodes : 0);
}

void Cluster::ApplyFaultEvent(const FaultInjector::NodeEvent& event) { ApplyNodeEvent(event); }

void Cluster::DrainAll() { RunAllToCompletion(); }

uint64_t Cluster::NodeDramBytes() const {
  uint64_t total = 0;
  for (const auto& node : nodes_) {
    total += node->platform->frames().used_bytes();
  }
  return total;
}

FunctionMetrics Cluster::AggregateMetrics() const {
  FunctionMetrics total;
  for (const auto& node : nodes_) {
    FunctionMetrics agg = node->platform->metrics().Aggregate();
    total.e2e_ms.MergeFrom(agg.e2e_ms);
    total.startup_ms.MergeFrom(agg.startup_ms);
    total.exec_ms.MergeFrom(agg.exec_ms);
    total.invocations += agg.invocations;
    total.warm_starts += agg.warm_starts;
    total.repurposed_starts += agg.repurposed_starts;
    total.cold_starts += agg.cold_starts;
  }
  return total;
}

uint64_t Cluster::TotalInvocations() const { return AggregateMetrics().invocations; }

}  // namespace trenv
