// Histogram-based keep-alive / pre-warming policy, after Shahrad et al.
// (ATC'20) — the class of "complex strategies" the paper's related-work
// section says TrEnv makes unnecessary (section 10). Implemented as the
// strongest-reasonable caching baseline for the ablation bench.
//
// Per function, the policy learns the inter-arrival-time (IT) distribution:
//   - keep-alive window  = a high IT percentile (cover most reuse), capped;
//   - pre-warm delay     = a low IT percentile (have an instance ready just
//                          before the next predicted arrival), only used
//                          when the distribution is concentrated enough for
//                          prediction to make sense.
#ifndef TRENV_PLATFORM_PREWARM_H_
#define TRENV_PLATFORM_PREWARM_H_

#include <deque>
#include <map>
#include <optional>
#include <string>

#include "src/common/histogram.h"
#include "src/common/time.h"

namespace trenv {

class PrewarmPolicy {
 public:
  struct Options {
    // Observations kept per function (sliding window).
    size_t window = 64;
    // Keep-alive = this IT percentile, clamped to [min, max].
    double keep_percentile = 95;
    SimDuration min_keep_alive = SimDuration::Seconds(30);
    SimDuration max_keep_alive = SimDuration::Minutes(10);
    // Pre-warm fires this IT percentile after the last arrival...
    double prewarm_percentile = 25;
    // ...but only when the IT distribution is predictable: p75/p25 below
    // this ratio (concentrated) and at least `min_samples` observations.
    double max_dispersion = 4.0;
    size_t min_samples = 8;
  };

  PrewarmPolicy() : PrewarmPolicy(Options{}) {}
  explicit PrewarmPolicy(Options options) : options_(options) {}

  // Records an invocation arrival for `function`.
  void RecordArrival(const std::string& function, SimTime now);

  // How long to keep this function's instances warm after use.
  SimDuration KeepAliveFor(const std::string& function) const;

  // If prediction is worthwhile, the delay (from the last arrival) after
  // which an instance should be pre-warmed; nullopt when unpredictable.
  std::optional<SimDuration> PrewarmDelay(const std::string& function) const;

  size_t ObservationCount(const std::string& function) const;

 private:
  struct FunctionState {
    SimTime last_arrival;
    bool has_arrival = false;
    std::deque<double> inter_arrival_s;
  };

  // Percentile over the sliding window (returns 0 when empty).
  static double PercentileOf(const std::deque<double>& samples, double p);

  Options options_;
  std::map<std::string, FunctionState> functions_;
};

}  // namespace trenv

#endif  // TRENV_PLATFORM_PREWARM_H_
