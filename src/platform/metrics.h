// MetricsCollector: per-function latency recorders plus node-level memory
// and CPU accounting — the quantities behind every figure in section 9.
#ifndef TRENV_PLATFORM_METRICS_H_
#define TRENV_PLATFORM_METRICS_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/interner.h"
#include "src/common/time.h"
#include "src/obs/registry.h"

namespace trenv {

struct FunctionMetrics {
  Histogram e2e_ms;
  Histogram startup_ms;
  Histogram exec_ms;
  uint64_t invocations = 0;
  uint64_t warm_starts = 0;
  uint64_t repurposed_starts = 0;
  uint64_t cold_starts = 0;
  uint64_t prewarm_starts = 0;  // instances created ahead of a prediction
};

class MetricsCollector {
 public:
  MetricsCollector();
  MetricsCollector(const MetricsCollector&) = delete;
  MetricsCollector& operator=(const MetricsCollector&) = delete;

  FunctionMetrics& ForFunction(const std::string& name) { return per_function_[name]; }
  // Hot-path variant: one vector index once the id's entry is cached. The
  // backing store stays the string-keyed map, so reporting (per_function())
  // keeps its sorted-by-name iteration order.
  FunctionMetrics& ForFunction(FunctionId id) {
    if (id < by_id_.size() && by_id_[id] != nullptr) {
      return *by_id_[id];
    }
    return ForFunctionSlow(id);
  }
  const std::map<std::string, FunctionMetrics>& per_function() const { return per_function_; }

  // Merged view across all functions.
  FunctionMetrics Aggregate() const;

  TimeSeriesGauge& memory_gauge() { return memory_gauge_; }
  const TimeSeriesGauge& memory_gauge() const { return memory_gauge_; }
  uint64_t peak_memory_bytes() const { return static_cast<uint64_t>(memory_gauge_.peak()); }

  // Named-counter/gauge registry shared by the whole node: the platform's own
  // accounting lives here alongside whatever any layer records, and the
  // Prometheus/Chrome exporters read it.
  obs::Registry& registry() { return registry_; }
  const obs::Registry& registry() const { return registry_; }

  // Extra CPU-seconds burned on fetch handling (RDMA completions etc.) —
  // backed by the "platform.fetch_cpu_seconds" registry counter.
  void AddFetchCpuSeconds(double seconds) { fetch_cpu_->Add(seconds); }
  double fetch_cpu_seconds() const { return fetch_cpu_->value(); }

  void Clear();

 private:
  FunctionMetrics& ForFunctionSlow(FunctionId id);

  std::map<std::string, FunctionMetrics> per_function_;
  // Cache: FunctionId -> map node (stable std::map pointers). Cleared with
  // per_function_ — the pointers die with the nodes.
  std::vector<FunctionMetrics*> by_id_;
  TimeSeriesGauge memory_gauge_;
  obs::Registry registry_;
  obs::Counter* fetch_cpu_;  // owned by registry_
};

}  // namespace trenv

#endif  // TRENV_PLATFORM_METRICS_H_
