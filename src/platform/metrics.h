// MetricsCollector: per-function latency recorders plus node-level memory
// and CPU accounting — the quantities behind every figure in section 9.
#ifndef TRENV_PLATFORM_METRICS_H_
#define TRENV_PLATFORM_METRICS_H_

#include <map>
#include <string>

#include "src/common/histogram.h"
#include "src/common/time.h"

namespace trenv {

struct FunctionMetrics {
  Histogram e2e_ms;
  Histogram startup_ms;
  Histogram exec_ms;
  uint64_t invocations = 0;
  uint64_t warm_starts = 0;
  uint64_t repurposed_starts = 0;
  uint64_t cold_starts = 0;
  uint64_t prewarm_starts = 0;  // instances created ahead of a prediction
};

class MetricsCollector {
 public:
  FunctionMetrics& ForFunction(const std::string& name) { return per_function_[name]; }
  const std::map<std::string, FunctionMetrics>& per_function() const { return per_function_; }

  // Merged view across all functions.
  FunctionMetrics Aggregate() const;

  TimeSeriesGauge& memory_gauge() { return memory_gauge_; }
  const TimeSeriesGauge& memory_gauge() const { return memory_gauge_; }
  uint64_t peak_memory_bytes() const { return static_cast<uint64_t>(memory_gauge_.peak()); }

  // Extra CPU-seconds burned on fetch handling (RDMA completions etc.).
  double fetch_cpu_seconds = 0;

  void Clear();

 private:
  std::map<std::string, FunctionMetrics> per_function_;
  TimeSeriesGauge memory_gauge_;
};

}  // namespace trenv

#endif  // TRENV_PLATFORM_METRICS_H_
