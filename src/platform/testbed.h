// Testbed: one-stop assembly of a complete evaluated system — memory pools,
// sandbox machinery, a restore engine, and the platform — matching the
// paper's testbed (section 9.1). This is the entry point examples, tests,
// and benchmarks use.
#ifndef TRENV_PLATFORM_TESTBED_H_
#define TRENV_PLATFORM_TESTBED_H_

#include <memory>
#include <string>

#include "src/criu/lazy_engines.h"
#include "src/criu/trenv_engine.h"
#include "src/mempool/cxl_pool.h"
#include "src/mempool/dram_pool.h"
#include "src/mempool/nas_pool.h"
#include "src/mempool/rdma_pool.h"
#include "src/mempool/tiered_pool.h"
#include "src/platform/platform.h"

namespace trenv {

// The systems compared throughout section 9.
enum class SystemKind {
  kFaasd,          // cold start baseline
  kCriu,           // vanilla CRIU restore
  kReap,           // REAP (Firecracker, lazy restore)
  kReapPlus,       // REAP + pooled netns
  kFaasnap,        // FaaSnap
  kFaasnapPlus,    // FaaSnap + pooled netns
  kTrEnvCxl,       // T-CXL
  kTrEnvRdma,      // T-RDMA
  kTrEnvTiered,    // CXL hot + RDMA cold (section 9.5 closing remark)
  kTrEnvDramHot,   // hot regions pinned in node DRAM, rest on CXL (the
                   // paper's suggested fix for the CXL execution penalty)
  kTrEnvDramLive,  // like DramHot but *earned*: chunks start on CXL and a
                   // live policy (heat decay + DRAM budget) promotes/demotes
  kTrEnvReconfig,  // ablation: sandbox repurposing only (Fig 21 "Reconfig")
  kTrEnvCgroup,    // ablation: + CLONE_INTO_CGROUP, no mm-template (Fig 21)
};

std::string SystemName(SystemKind kind);

class Testbed {
 public:
  explicit Testbed(SystemKind system, PlatformConfig config = {});

  SystemKind system() const { return system_; }
  ServerlessPlatform& platform() { return *platform_; }
  RestoreEngine& engine() { return *engine_; }
  SandboxPool& sandbox_pool() { return sandbox_pool_; }
  CxlPool& cxl() { return *cxl_; }
  RdmaPool& rdma() { return *rdma_; }
  // The node-local DRAM pool (snapshot tmpfs / pinned hot regions).
  DramPool& tmpfs() { return *tmpfs_; }
  // NAS spill tier for density tiering; registered with the backend registry
  // only when PlatformConfig::density is enabled.
  NasPool& nas() { return *nas_; }
  TieredPool& tiered() { return tiered_; }
  MmtApi& mmt() { return *mmt_; }
  // Live placement policy (kTrEnvDramLive only; null otherwise).
  PromotionManager* promotion() { return promotion_.get(); }
  const BackendRegistry& backends() const { return backends_; }
  SnapshotDedupStore* dedup() { return dedup_.get(); }

  // Deploys all ten Table-4 functions.
  [[nodiscard]] Status DeployTable4Functions();

  // Attaches a fault injector to every backend and clocks it off this
  // platform's scheduler. nullptr detaches.
  void BindFaultInjector(FaultInjector* injector);

 private:
  SystemKind system_;
  std::shared_ptr<FsLayer> base_layer_;
  std::unique_ptr<CxlPool> cxl_;
  std::unique_ptr<RdmaPool> rdma_;
  std::unique_ptr<DramPool> tmpfs_;
  std::unique_ptr<NasPool> nas_;
  BackendRegistry backends_;
  TieredPool tiered_;
  SandboxFactory sandbox_factory_;
  SandboxPool sandbox_pool_;
  std::unique_ptr<MmtApi> mmt_;
  std::unique_ptr<SnapshotDedupStore> dedup_;
  std::unique_ptr<PromotionManager> promotion_;
  std::unique_ptr<RestoreEngine> engine_;
  std::unique_ptr<ServerlessPlatform> platform_;
};

}  // namespace trenv

#endif  // TRENV_PLATFORM_TESTBED_H_
