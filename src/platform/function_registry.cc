#include "src/platform/function_registry.h"

namespace trenv {

Status FunctionRegistry::Deploy(FunctionProfile profile) {
  if (profile.name.empty()) {
    return Status::InvalidArgument("function needs a name");
  }
  if (functions_.contains(profile.name)) {
    return Status::AlreadyExists("function already deployed: " + profile.name);
  }
  profile.id = InternFunction(profile.name);
  auto [it, inserted] = functions_.emplace(profile.name, std::move(profile));
  const FunctionId id = it->second.id;
  if (by_id_.size() <= id) {
    by_id_.resize(id + 1, nullptr);
  }
  by_id_[id] = &it->second;
  return Status::Ok();
}

Result<const FunctionProfile*> FunctionRegistry::Find(const std::string& name) const {
  auto it = functions_.find(name);
  if (it == functions_.end()) {
    return Status::NotFound("no such function: " + name);
  }
  return &it->second;
}

std::vector<std::string> FunctionRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(functions_.size());
  for (const auto& [name, profile] : functions_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace trenv
