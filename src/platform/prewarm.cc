#include "src/platform/prewarm.h"

#include <algorithm>
#include <vector>

namespace trenv {

void PrewarmPolicy::RecordArrival(const std::string& function, SimTime now) {
  FunctionState& state = functions_[function];
  if (state.has_arrival) {
    const double it_s = (now - state.last_arrival).seconds();
    if (it_s >= 0) {
      state.inter_arrival_s.push_back(it_s);
      while (state.inter_arrival_s.size() > options_.window) {
        state.inter_arrival_s.pop_front();
      }
    }
  }
  state.last_arrival = now;
  state.has_arrival = true;
}

double PrewarmPolicy::PercentileOf(const std::deque<double>& samples, double p) {
  if (samples.empty()) {
    return 0;
  }
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

SimDuration PrewarmPolicy::KeepAliveFor(const std::string& function) const {
  auto it = functions_.find(function);
  if (it == functions_.end() || it->second.inter_arrival_s.size() < options_.min_samples) {
    return options_.max_keep_alive;  // no data: be conservative (fixed TTL)
  }
  const double keep_s = PercentileOf(it->second.inter_arrival_s, options_.keep_percentile);
  return std::clamp(SimDuration::FromSecondsF(keep_s * 1.1), options_.min_keep_alive,
                    options_.max_keep_alive);
}

std::optional<SimDuration> PrewarmPolicy::PrewarmDelay(const std::string& function) const {
  auto it = functions_.find(function);
  if (it == functions_.end() || it->second.inter_arrival_s.size() < options_.min_samples) {
    return std::nullopt;
  }
  const auto& samples = it->second.inter_arrival_s;
  const double p25 = PercentileOf(samples, 25);
  const double p75 = PercentileOf(samples, 75);
  if (p25 <= 0 || p75 / p25 > options_.max_dispersion) {
    return std::nullopt;  // too dispersed to predict
  }
  const double delay_s = PercentileOf(samples, options_.prewarm_percentile);
  // A gap shorter than the keep-alive window needs no pre-warming: the
  // instance is still cached.
  if (SimDuration::FromSecondsF(delay_s) <= KeepAliveFor(function)) {
    return std::nullopt;
  }
  return SimDuration::FromSecondsF(delay_s * 0.9);
}

size_t PrewarmPolicy::ObservationCount(const std::string& function) const {
  auto it = functions_.find(function);
  return it == functions_.end() ? 0 : it->second.inter_arrival_s.size();
}

}  // namespace trenv
