#include "src/platform/testbed.h"

#include "src/fault/fault_injector.h"

namespace trenv {

std::string SystemName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kFaasd:
      return "faasd";
    case SystemKind::kCriu:
      return "CRIU";
    case SystemKind::kReap:
      return "REAP";
    case SystemKind::kReapPlus:
      return "REAP+";
    case SystemKind::kFaasnap:
      return "FaaSnap";
    case SystemKind::kFaasnapPlus:
      return "FaaSnap+";
    case SystemKind::kTrEnvCxl:
      return "T-CXL";
    case SystemKind::kTrEnvRdma:
      return "T-RDMA";
    case SystemKind::kTrEnvTiered:
      return "T-Tiered";
    case SystemKind::kTrEnvDramHot:
      return "T-DRAM-hot";
    case SystemKind::kTrEnvDramLive:
      return "T-DRAM-live";
    case SystemKind::kTrEnvReconfig:
      return "Reconfig";
    case SystemKind::kTrEnvCgroup:
      return "Cgroup";
  }
  return "unknown";
}

namespace {

std::shared_ptr<FsLayer> MakeBaseLayer() {
  auto layer = std::make_shared<FsLayer>("debian-base");
  // Representative base image contents (ids double as page-cache keys).
  layer->AddFile("/lib/libc.so.6", FileNode{2 * kMiB, 0x11, 1});
  layer->AddFile("/usr/bin/python3", FileNode{6 * kMiB, 0x12, 2});
  layer->AddFile("/usr/bin/node", FileNode{80 * kMiB, 0x13, 3});
  layer->AddFile("/etc/passwd", FileNode{4 * kKiB, 0x14, 4});
  return layer;
}

}  // namespace

Testbed::Testbed(SystemKind system, PlatformConfig config)
    : system_(system),
      base_layer_(MakeBaseLayer()),
      // 128 GiB experimental Samsung CXL device; RDMA pool sized generously.
      cxl_(std::make_unique<CxlPool>(128 * kGiB)),
      rdma_(std::make_unique<RdmaPool>(256 * kGiB, config.seed ^ 0x4d)),
      tmpfs_(std::make_unique<DramPool>(64 * kGiB)),
      nas_(std::make_unique<NasPool>(512 * kGiB)),
      sandbox_factory_(base_layer_, config.seed ^ 0x5b) {
  backends_.Register(cxl_.get());
  backends_.Register(rdma_.get());
  backends_.Register(tmpfs_.get());
  if (config.density.enabled) {
    // The NAS spill tier exists only under density tiering: registering it
    // unconditionally would make TrEnv's execution path open (empty) NAS
    // fetch streams and perturb the historical runs.
    backends_.Register(nas_.get());
  }

  // Tier order controls where the dedup store places consolidated images.
  switch (system_) {
    case SystemKind::kTrEnvRdma:
      tiered_.AddTier(rdma_.get());
      break;
    case SystemKind::kTrEnvTiered:
      tiered_.AddTier(cxl_.get());
      tiered_.AddTier(rdma_.get());
      break;
    case SystemKind::kTrEnvDramHot:
    case SystemKind::kTrEnvDramLive:
      // Hot (file-backed, read-every-invocation) regions live in node DRAM,
      // shared by all local instances; colder private regions stay on CXL.
      tiered_.AddTier(tmpfs_.get());
      tiered_.AddTier(cxl_.get());
      break;
    default:
      tiered_.AddTier(cxl_.get());
      break;
  }

  mmt_ = std::make_unique<MmtApi>(&backends_);
  dedup_ = std::make_unique<SnapshotDedupStore>(&tiered_);
  if (system_ == SystemKind::kTrEnvDramLive) {
    // Everything starts on the cold (CXL) tier; DRAM residency is earned
    // through the live promote/demote policy below, never assumed.
    dedup_->set_hotness_override(0.0);
  }

  switch (system_) {
    case SystemKind::kFaasd:
      engine_ = std::make_unique<ColdStartEngine>(&sandbox_factory_, &sandbox_pool_);
      break;
    case SystemKind::kCriu:
      engine_ = std::make_unique<VanillaCriuEngine>(&sandbox_factory_, &sandbox_pool_);
      break;
    case SystemKind::kReap:
      engine_ = std::make_unique<ReapEngine>(&sandbox_factory_, &sandbox_pool_,
                                             ReapEngine::Options{.pooled_netns = false});
      break;
    case SystemKind::kReapPlus:
      engine_ = std::make_unique<ReapEngine>(&sandbox_factory_, &sandbox_pool_,
                                             ReapEngine::Options{.pooled_netns = true});
      break;
    case SystemKind::kFaasnap:
      engine_ = std::make_unique<FaasnapEngine>(&sandbox_factory_, &sandbox_pool_,
                                                /*pooled_netns=*/false);
      break;
    case SystemKind::kFaasnapPlus:
      engine_ = std::make_unique<FaasnapEngine>(&sandbox_factory_, &sandbox_pool_,
                                                /*pooled_netns=*/true);
      break;
    case SystemKind::kTrEnvCxl:
    case SystemKind::kTrEnvRdma:
    case SystemKind::kTrEnvTiered:
    case SystemKind::kTrEnvDramHot:
    case SystemKind::kTrEnvDramLive: {
      TrEnvEngine::Options opts;
      opts.prefetch.enabled = config.trenv_prefetch;
      opts.prefetch.eager_fraction = config.trenv_prefetch_eager_fraction;
      engine_ = std::make_unique<TrEnvEngine>(&sandbox_factory_, &sandbox_pool_, mmt_.get(),
                                              dedup_.get(), opts);
      break;
    }
    case SystemKind::kTrEnvReconfig:
      engine_ = std::make_unique<TrEnvEngine>(
          &sandbox_factory_, &sandbox_pool_, mmt_.get(), dedup_.get(),
          TrEnvEngine::Options{.repurpose_sandbox = true,
                               .clone_into_cgroup = false,
                               .use_mm_template = false});
      break;
    case SystemKind::kTrEnvCgroup:
      engine_ = std::make_unique<TrEnvEngine>(
          &sandbox_factory_, &sandbox_pool_, mmt_.get(), dedup_.get(),
          TrEnvEngine::Options{.repurpose_sandbox = true,
                               .clone_into_cgroup = true,
                               .use_mm_template = false});
      break;
  }
  if (system_ == SystemKind::kTrEnvDramLive) {
    PromotionManager::Options live;
    live.promote_threshold = 4;
    live.heat_decay = 0.5;
    // DRAM budget well under the pinned-split's tmpfs usage: the policy must
    // choose which chunks deserve node DRAM rather than pinning them all.
    live.hot_tier_budget_pages = 32 * 1024;  // 128 MiB
    live.demote_threshold = 2;
    promotion_ = std::make_unique<PromotionManager>(&tiered_, &mmt_->registry(), live);
    static_cast<TrEnvEngine*>(engine_.get())->EnablePromotion(promotion_.get());
  }
  // The trace process defaults to the evaluated system's name, so multi-
  // testbed comparisons show up as separate processes in one trace.
  if (config.tracer != nullptr && config.trace_process == "platform") {
    config.trace_process = SystemName(system_);
  }
  platform_ = std::make_unique<ServerlessPlatform>(config, engine_.get(), &backends_);

  // Route pool / mm-template stats into the platform's own registry, so one
  // dump covers the whole stack of this testbed.
  obs::Registry* stats = &platform_->metrics().registry();
  cxl_->BindStats(stats);
  rdma_->BindStats(stats);
  tmpfs_->BindStats(stats);
  if (config.density.enabled) {
    nas_->BindStats(stats);
  }
  mmt_->BindStats(stats);
}

Status Testbed::DeployTable4Functions() {
  for (const FunctionProfile& profile : Table4Functions()) {
    sandbox_pool_.RegisterFunctionLayer(
        profile.name, std::make_shared<FsLayer>(profile.name + "-deps"));
    TRENV_RETURN_IF_ERROR(platform_->Deploy(profile));
  }
  return Status::Ok();
}

void Testbed::BindFaultInjector(FaultInjector* injector) {
  if (injector != nullptr) {
    injector->BindClock(&platform_->scheduler());
  }
  cxl_->BindFaultInjector(injector);
  rdma_->BindFaultInjector(injector);
  tmpfs_->BindFaultInjector(injector);
  nas_->BindFaultInjector(injector);
}

}  // namespace trenv
