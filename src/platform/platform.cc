#include "src/platform/platform.h"

#include <algorithm>

#include "src/common/log.h"

namespace trenv {

ServerlessPlatform::ServerlessPlatform(PlatformConfig config, RestoreEngine* engine,
                                       const BackendRegistry* backends)
    : config_(config),
      engine_(engine),
      backends_(backends),
      cpu_(&scheduler_, config.cores),
      frames_(config.dram_bytes),
      keep_alive_(config.keep_alive_ttl,
                  [this](std::unique_ptr<FunctionInstance> instance) {
                    RetireInstance(std::move(instance));
                  }),
      exec_model_(config.seed ^ 0xE1EC),
      density_(config.density, &keep_alive_, &frames_, &scheduler_, backends,
               &metrics_.registry()) {
  if (config_.tracer != nullptr) {
    tracer_ = config_.tracer;
    trace_pid_ = tracer_->RegisterProcess(config_.trace_process,
                                          [this] { return scheduler_.now(); });
  }
}

RestoreContext ServerlessPlatform::MakeContext() {
  RestoreContext ctx;
  ctx.frames = &frames_;
  ctx.backends = backends_;
  ctx.pids = &pids_;
  ctx.concurrent_startups = concurrent_startups_;
  ctx.now = scheduler_.now();
  ctx.stats = &metrics_.registry();
  return ctx;
}

Status ServerlessPlatform::Deploy(const FunctionProfile& profile) {
  TRENV_RETURN_IF_ERROR(registry_.Deploy(profile));
  return engine_->Prepare(profile);
}

Status ServerlessPlatform::Submit(SimTime arrival, const std::string& function) {
  return Submit(arrival, function, CompletionFn());
}

Status ServerlessPlatform::Submit(SimTime arrival, const std::string& function,
                                  CompletionFn on_complete) {
  TRENV_RETURN_IF_ERROR(registry_.Find(function).status());
  // Track the invocation from acceptance, not from its arrival event: if the
  // node crashes first, Crash() finds it in queued_ and hands it back for
  // re-dispatch instead of silently losing it with the event queue.
  const uint64_t ticket = next_ticket_++;
  queued_.emplace(ticket, LostInvocation{function, arrival, ticket, std::move(on_complete)});
  scheduler_.ScheduleAt(arrival, [this, ticket] {
    auto it = queued_.find(ticket);
    const std::string fn = std::move(it->second.function);
    CompletionFn done = std::move(it->second.on_complete);
    queued_.erase(it);
    StartInvocation(fn, ticket, std::move(done));
  });
  return Status::Ok();
}

Status ServerlessPlatform::Run(const Schedule& schedule) {
  for (const Invocation& invocation : schedule) {
    TRENV_RETURN_IF_ERROR(Submit(invocation.arrival, invocation.function));
  }
  RunToCompletion();
  return Status::Ok();
}

void ServerlessPlatform::RunToCompletion() { scheduler_.RunUntilIdle(); }

void ServerlessPlatform::SampleMemory() {
  metrics_.memory_gauge().Set(scheduler_.now(), static_cast<double>(frames_.used_bytes()));
}

void ServerlessPlatform::RetireInstance(std::unique_ptr<FunctionInstance> instance) {
  if (density_.enabled()) {
    density_.OnRetire(*instance);
  }
  RestoreContext ctx = MakeContext();
  engine_->Retire(std::move(instance), ctx);
  SampleMemory();
}

uint64_t ServerlessPlatform::EffectiveCap() const {
  // The scale==1.0 branch keeps the fault-free path free of floating-point
  // arithmetic so runs without pressure windows stay byte-identical.
  return mem_cap_scale_ == 1.0
             ? config_.soft_mem_cap_bytes
             : static_cast<uint64_t>(static_cast<double>(config_.soft_mem_cap_bytes) *
                                     mem_cap_scale_);
}

void ServerlessPlatform::EnforceMemoryCap() {
  const uint64_t cap = EffectiveCap();
  if (density_.enabled()) {
    // Demotion first: moving idle dirty pages to a pool tier relieves frame
    // pressure while keeping the environments warm. Frame pressure beyond
    // that comes from running instances, which evicting (frame-free)
    // demoted entries cannot relieve — so density replaces the binary evict
    // loop with the overcommit ceiling on the total parked footprint
    // (metadata included), the bound that decides when warmth must die.
    if (frames_.used_bytes() > cap) {
      density_.RelievePressure(cap);
    }
    // Every swap tier full: the only parked entries still holding frames are
    // the DRAM-hot ones, so shed those (coldest first) as a last resort.
    while (frames_.used_bytes() > cap && keep_alive_.EvictHotLru()) {
    }
    const uint64_t ceiling = density_.OvercommitCeiling(cap);
    while (keep_alive_.footprint_bytes() > ceiling && keep_alive_.EvictLru()) {
    }
    return;
  }
  // Soft cap: evict idle instances (LRU first) until under the cap or empty.
  while (frames_.used_bytes() > cap && keep_alive_.EvictLru()) {
  }
}

void ServerlessPlatform::SetSoftMemCapScale(double scale) {
  // Clamp below at the documented floor: injected pressure may squeeze the
  // cap hard but never to (near) zero, which would flush the entire pool and
  // turn a transient window into a node-wide cold restart.
  mem_cap_scale_ = std::max(scale, cost::kSoftMemCapScaleFloor);
  if (soft_cap_gauge_ == nullptr) {
    soft_cap_gauge_ = metrics_.registry().GetGauge("platform.soft_mem_cap_bytes");
  }
  soft_cap_gauge_->Set(static_cast<double>(EffectiveCap()));
  if (density_.enabled() && mem_cap_scale_ < 1.0) {
    density_.NotePressureStorm();
  }
  EnforceMemoryCap();
  SampleMemory();
}

std::vector<LostInvocation> ServerlessPlatform::Crash() {
  std::vector<LostInvocation> lost;
  lost.reserve(queued_.size() + inflight_.size());
  for (auto& [ticket, invocation] : queued_) {
    lost.push_back(std::move(invocation));
  }
  for (auto& [token, flight] : inflight_) {
    if (tracer_ != nullptr && flight.root_span != obs::kInvalidSpanId) {
      tracer_->Annotate(flight.root_span, "failed", std::string("node-crash"));
      tracer_->EndSpan(flight.root_span);
    }
    lost.push_back(LostInvocation{flight.function, flight.arrival, flight.ticket,
                                  std::move(flight.on_complete)});
  }
  // (arrival, ticket) is a strict total order — tickets are unique — so the
  // re-dispatch order is fully determined even when a queued and an in-flight
  // invocation share an arrival time. (Arrival alone was ambiguous there:
  // queued_ and inflight_ interleave by acceptance vs. start order.)
  std::sort(lost.begin(), lost.end(),
            [](const LostInvocation& a, const LostInvocation& b) {
              return a.arrival != b.arrival ? a.arrival < b.arrival : a.ticket < b.ticket;
            });
  queued_.clear();
  inflight_.clear();
  concurrent_startups_ = 0;
  if (density_.enabled()) {
    density_.OnCrash();  // releases parked swap blocks before the pool drops
  }
  keep_alive_.Drop();
  engine_->OnCrash();
  scheduler_.Clear();
  cpu_.Reset();
  frames_.FreePages(frames_.used_pages());
  SampleMemory();
  return lost;
}

void ServerlessPlatform::StartInvocation(const std::string& function, uint64_t ticket,
                                         CompletionFn on_complete) {
  auto profile_or = registry_.Find(function);
  if (!profile_or.ok()) {
    ++failed_invocations_;
    return;
  }
  const FunctionProfile& profile = **profile_or;
  keep_alive_.ExpireStale(scheduler_.now());
  if (mem_cap_scale_ != 1.0) {
    // Under an injected pressure window the squeezed cap applies before the
    // warm lookup, so parked instances are evicted rather than reused. The
    // scale==1.0 guard keeps the fault-free path untouched.
    EnforceMemoryCap();
  }
  if (config_.prewarm != nullptr) {
    config_.prewarm->RecordArrival(function, scheduler_.now());
    MaybeSchedulePrewarm(function);
  }
  if (density_.enabled()) {
    density_.OnArrival(FunctionIdOf(profile), scheduler_.now());
  }

  const uint64_t token = next_token_++;
  InFlight& flight = inflight_[token];
  flight.function = function;
  flight.profile = &profile;
  flight.fid = FunctionIdOf(profile);
  flight.ticket = ticket;
  flight.on_complete = std::move(on_complete);
  flight.arrival = scheduler_.now();
  if (tracer_ != nullptr) {
    flight.root_span = tracer_->StartSpan(TraceLoc(token), "invocation", "invocation");
    tracer_->Annotate(flight.root_span, "function", function);
  }

  // Warm hit: reuse a cached instance of the same function immediately.
  if (auto warm = keep_alive_.TakeWarm(flight.fid); warm != nullptr) {
    flight.instance = std::move(warm);
    flight.warm = true;
    metrics_.ForFunction(flight.fid).warm_starts += 1;
    if (tracer_ != nullptr) {
      tracer_->Instant(TraceLoc(token), "warm.hit", "invocation");
    }
    if (density_.enabled()) {
      // Demoted instances pay the tier's fetch latency before executing.
      flight.promote_latency = density_.OnTake(*flight.instance);
      if (flight.promote_latency > SimDuration::Zero()) {
        SampleMemory();
        scheduler_.ScheduleAfter(flight.promote_latency,
                                 [this, token] { BeginExecution(token); });
        return;
      }
    }
    BeginExecution(token);
    return;
  }

  EnforceMemoryCap();
  ++concurrent_startups_;
  RestoreContext ctx = MakeContext();
  ctx.tracer = tracer_;
  ctx.trace_loc = TraceLoc(token);
  ctx.trace_parent = flight.root_span;
  auto outcome = engine_->Restore(profile, ctx);
  if (!outcome.ok()) {
    TRENV_WARN << "restore failed for " << function << ": " << outcome.status();
    --concurrent_startups_;
    ++failed_invocations_;
    if (tracer_ != nullptr) {
      tracer_->Annotate(flight.root_span, "failed", std::string("restore"));
      tracer_->EndSpan(flight.root_span);
    }
    inflight_.erase(token);
    return;
  }
  flight.instance = std::move(outcome->instance);
  flight.startup = outcome->startup;
  auto& fn_metrics = metrics_.ForFunction(flight.fid);
  if (outcome->startup.sandbox_repurposed) {
    fn_metrics.repurposed_starts += 1;
  } else {
    fn_metrics.cold_starts += 1;
  }
  SampleMemory();
  BeginStartupPhases(token);
}

void ServerlessPlatform::BeginStartupPhases(uint64_t token) {
  InFlight& flight = inflight_.at(token);
  if (tracer_ != nullptr) {
    flight.phase_span = tracer_->StartSpan(TraceLoc(token), "restore.sandbox", "restore");
    tracer_->Annotate(flight.phase_span, "repurposed",
                      static_cast<int64_t>(flight.startup.sandbox_repurposed ? 1 : 0));
  }
  // Phase 1: sandbox setup (wall latency; holds the contention window).
  scheduler_.ScheduleAfter(flight.startup.sandbox, [this, token] {
    --concurrent_startups_;
    InFlight& f = inflight_.at(token);
    if (tracer_ != nullptr) {
      tracer_->EndSpan(f.phase_span);
      f.phase_span = tracer_->StartSpan(TraceLoc(token), "restore.process", "restore");
    }
    // Phase 2: process state (bootstrap burns CPU; CRIU restore is mostly
    // kernel-side latency).
    auto then_memory = [this, token] {
      InFlight& f2 = inflight_.at(token);
      if (tracer_ != nullptr) {
        tracer_->EndSpan(f2.phase_span);
        f2.phase_span = tracer_->StartSpan(TraceLoc(token), "restore.memory", "restore");
      }
      // Phase 3: memory restoration (copy or attach).
      scheduler_.ScheduleAfter(f2.startup.memory, [this, token] { BeginExecution(token); });
    };
    if (f.startup.process_is_cpu) {
      cpu_.Submit(f.startup.process, then_memory);
    } else {
      scheduler_.ScheduleAfter(f.startup.process, then_memory);
    }
  });
}

void ServerlessPlatform::BeginExecution(uint64_t token) {
  InFlight& flight = inflight_.at(token);
  flight.exec_start = scheduler_.now();
  const FunctionProfile& profile = *flight.profile;

  RestoreContext ctx = MakeContext();
  if (tracer_ != nullptr) {
    tracer_->EndSpan(flight.phase_span);  // close restore.memory (cold path)
    flight.phase_span = tracer_->StartSpan(TraceLoc(token), "exec", "invocation");
    ctx.tracer = tracer_;
    ctx.trace_loc = TraceLoc(token);
    ctx.trace_parent = flight.phase_span;
  }
  auto overheads_or = engine_->OnExecute(profile, *flight.instance, ctx);
  if (!overheads_or.ok()) {
    TRENV_WARN << "execution page work failed: " << overheads_or.status();
    ++failed_invocations_;
    if (tracer_ != nullptr) {
      tracer_->EndSpan(flight.phase_span);
      tracer_->Annotate(flight.root_span, "failed", std::string("exec"));
      tracer_->EndSpan(flight.root_span);
    }
    RetireInstance(std::move(flight.instance));
    inflight_.erase(token);
    return;
  }
  SampleMemory();
  const ExecutionPlan plan = exec_model_.Plan(profile, *overheads_or);
  metrics_.AddFetchCpuSeconds(overheads_or->added_cpu.seconds());

  obs::SpanId cpu_span = obs::kInvalidSpanId;
  if (tracer_ != nullptr) {
    tracer_->Annotate(flight.phase_span, "added_cpu_ms", overheads_or->added_cpu.millis());
    tracer_->Annotate(flight.phase_span, "fault_ms", plan.fault_latency.millis());
    cpu_span = tracer_->StartSpan(TraceLoc(token), "exec.cpu", "exec");
  }
  // A lazy promote left its pages streaming in from the swap tier: this
  // invocation pays the demand faults (zero unless density promoted it).
  const SimDuration demand = flight.instance->pending_demand_fetch;
  flight.instance->pending_demand_fetch = SimDuration();
  // CPU burst first; fault latency and I/O wait extend wall time afterwards.
  cpu_.Submit(plan.cpu_work, [this, token, plan, demand, cpu_span] {
    obs::SpanId wait_span = obs::kInvalidSpanId;
    if (tracer_ != nullptr) {
      tracer_->EndSpan(cpu_span);
      wait_span = tracer_->StartSpan(TraceLoc(token), "exec.wait", "exec");
    }
    scheduler_.ScheduleAfter(plan.io_wait + plan.fault_latency + demand,
                             [this, token, wait_span] {
      if (tracer_ != nullptr) {
        tracer_->EndSpan(wait_span);
      }
      Complete(token);
    });
  });
}

void ServerlessPlatform::Complete(uint64_t token) {
  InFlight& flight = inflight_.at(token);
  engine_->OnExecuteDone(*flight.instance);
  if (tracer_ != nullptr) {
    tracer_->EndSpan(flight.phase_span);  // close exec
    tracer_->Annotate(flight.root_span, "warm", static_cast<int64_t>(flight.warm ? 1 : 0));
    tracer_->EndSpan(flight.root_span);
  }

  auto& fn_metrics = metrics_.ForFunction(flight.fid);
  fn_metrics.invocations += 1;
  fn_metrics.e2e_ms.Record((scheduler_.now() - flight.arrival).millis());
  // Warm startup cost is the tier-promotion fetch (0.0 with density off —
  // promote_latency stays default-zero, keeping the record bit-identical).
  fn_metrics.startup_ms.Record(flight.warm ? flight.promote_latency.millis()
                                           : flight.startup.Total().millis());
  fn_metrics.exec_ms.Record((scheduler_.now() - flight.exec_start).millis());

  flight.instance->invocations += 1;
  const SimDuration ttl = config_.prewarm != nullptr
                              ? config_.prewarm->KeepAliveFor(flight.function)
                              : config_.keep_alive_ttl;
  const bool density = density_.enabled();
  if (density) {
    density_.OnPark(*flight.instance);  // stamp footprint/tier before Put
  }
  keep_alive_.Put(std::move(flight.instance), scheduler_.now(), ttl);
  // TTL sweep: wake up when this instance would expire.
  scheduler_.ScheduleAfter(ttl + SimDuration::Millis(1),
                           [this] { keep_alive_.ExpireStale(scheduler_.now()); });
  CompletionFn done = std::move(flight.on_complete);
  inflight_.erase(token);
  if (density) {
    // Parks are where the footprint grows; without enforcement here a burst
    // can out-park the sweep and exhaust physical DRAM before the next
    // arrival-side check. Density-off keeps the legacy arrival-only cadence.
    EnforceMemoryCap();
  }
  SampleMemory();
  if (done) {
    // Last: the callback may submit follow-on work (pipeline successors) to
    // other nodes, and this invocation's bookkeeping is fully settled above.
    done(config_.node_index, scheduler_.now());
  }
}

void ServerlessPlatform::MaybeSchedulePrewarm(const std::string& function) {
  auto delay = config_.prewarm->PrewarmDelay(function);
  if (!delay.has_value()) {
    return;
  }
  scheduler_.ScheduleAfter(*delay, [this, function] { PrewarmNow(function); });
}

void ServerlessPlatform::PrewarmNow(const std::string& function) {
  keep_alive_.ExpireStale(scheduler_.now());
  if (keep_alive_.CountFor(function) > 0) {
    return;  // a warm instance already exists
  }
  auto profile_or = registry_.Find(function);
  if (!profile_or.ok()) {
    return;
  }
  EnforceMemoryCap();
  // Pre-warms run off the invocation-token track space but still burn a
  // token, so every trace track maps to exactly one startup.
  const uint64_t track = next_token_++;
  obs::SpanId span = obs::kInvalidSpanId;
  RestoreContext ctx = MakeContext();
  if (tracer_ != nullptr) {
    span = tracer_->StartSpan(TraceLoc(track), "prewarm", "invocation");
    tracer_->Annotate(span, "function", function);
    ctx.tracer = tracer_;
    ctx.trace_loc = TraceLoc(track);
    ctx.trace_parent = span;
  }
  auto outcome = engine_->Restore(**profile_or, ctx);
  if (!outcome.ok()) {
    if (tracer_ != nullptr) {
      tracer_->EndSpan(span);
    }
    return;
  }
  metrics_.ForFunction(function).prewarm_starts += 1;
  // The instance becomes warm once its (off-critical-path) startup elapses.
  auto shared = std::make_shared<std::unique_ptr<FunctionInstance>>(
      std::move(outcome->instance));
  const SimDuration ttl = config_.prewarm != nullptr
                              ? config_.prewarm->KeepAliveFor(function)
                              : config_.keep_alive_ttl;
  scheduler_.ScheduleAfter(outcome->startup.Total(), [this, shared, ttl, span] {
    if (tracer_ != nullptr) {
      tracer_->EndSpan(span);
    }
    if (density_.enabled()) {
      density_.OnPark(**shared);
    }
    keep_alive_.Put(std::move(*shared), scheduler_.now(), ttl);
    if (density_.enabled()) {
      EnforceMemoryCap();
    }
    SampleMemory();
  });
  SampleMemory();
}

void ServerlessPlatform::EvictAllIdle() { keep_alive_.EvictAll(); }

}  // namespace trenv
