// Cluster: a rack of nodes sharing one disaggregated memory pool — the
// "across nodes" half of the paper's title.
//
// Every node runs its own ServerlessPlatform (local DRAM, sandbox pool,
// TrEnv engine), but all nodes attach to the SAME CXL multi-headed device
// and the SAME content-addressed snapshot store. Deploying a function on N
// nodes therefore stores its image once per rack (paper section 8.2: "Only
// one copy is needed per rack if it is read-only, reducing the cost by a
// factor of the number of machines").
#ifndef TRENV_PLATFORM_CLUSTER_H_
#define TRENV_PLATFORM_CLUSTER_H_

#include <memory>
#include <vector>

#include "src/criu/trenv_engine.h"
#include "src/mempool/cxl_pool.h"
#include "src/mempool/rdma_pool.h"
#include "src/obs/registry.h"
#include "src/platform/platform.h"

namespace trenv {

struct ClusterConfig {
  uint32_t nodes = 4;
  PlatformConfig node_config;
  uint64_t cxl_pool_bytes = 512 * kGiB;  // the 7.5 TB-class MHD, scaled down
  enum class Dispatch { kRoundRobin, kLeastLoaded };
  Dispatch dispatch = Dispatch::kLeastLoaded;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Deploys a function on every node; the snapshot dedups into the shared
  // pool, so the rack stores one copy regardless of node count.
  Status Deploy(const FunctionProfile& profile);
  Status DeployTable4Functions();

  // Dispatches an invocation to a node per the configured policy.
  Status Submit(SimTime arrival, const std::string& function);
  Status Run(const Schedule& schedule);

  size_t node_count() const { return nodes_.size(); }
  ServerlessPlatform& node(size_t i) { return *nodes_[i]->platform; }
  CxlPool& cxl() { return *cxl_; }
  const SnapshotDedupStore& dedup() const { return *dedup_; }
  // Stats of the shared pool devices (fetches, fetch CPU). Cluster-owned so
  // concurrent clusters never race on the process-wide DefaultRegistry().
  obs::Registry& registry() { return stats_; }
  const obs::Registry& registry() const { return stats_; }

  // Rack-level memory accounting: one shared pool copy + per-node DRAM.
  uint64_t PoolBytes() const { return cxl_->used_bytes(); }
  uint64_t NodeDramBytes() const;
  uint64_t RackTotalBytes() const { return PoolBytes() + NodeDramBytes(); }

  // Aggregated metrics across nodes.
  FunctionMetrics AggregateMetrics() const;
  uint64_t TotalInvocations() const;

 private:
  struct Node {
    std::unique_ptr<SandboxFactory> sandbox_factory;
    std::unique_ptr<SandboxPool> sandbox_pool;
    std::unique_ptr<MmtApi> mmt;
    std::unique_ptr<TrEnvEngine> engine;
    std::unique_ptr<ServerlessPlatform> platform;
  };

  size_t PickNode(const std::string& function);
  // One virtual timeline shared by all nodes: Run drains schedulers in
  // lock-step so cross-node ordering stays deterministic.
  void RunAllToCompletion();

  ClusterConfig config_;
  obs::Registry stats_;
  std::shared_ptr<FsLayer> base_layer_;
  std::unique_ptr<CxlPool> cxl_;
  BackendRegistry backends_;
  TieredPool tiered_;
  std::unique_ptr<SnapshotDedupStore> dedup_;
  std::vector<std::unique_ptr<Node>> nodes_;
  size_t next_node_ = 0;
};

}  // namespace trenv

#endif  // TRENV_PLATFORM_CLUSTER_H_
