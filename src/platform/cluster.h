// Cluster: a rack of nodes sharing one disaggregated memory pool — the
// "across nodes" half of the paper's title.
//
// Every node runs its own ServerlessPlatform (local DRAM, sandbox pool,
// TrEnv engine), but all nodes attach to the SAME CXL multi-headed device
// and the SAME content-addressed snapshot store. Deploying a function on N
// nodes therefore stores its image once per rack (paper section 8.2: "Only
// one copy is needed per rack if it is read-only, reducing the cost by a
// factor of the number of machines").
#ifndef TRENV_PLATFORM_CLUSTER_H_
#define TRENV_PLATFORM_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/criu/trenv_engine.h"
#include "src/fault/fault_injector.h"
#include "src/mempool/cxl_pool.h"
#include "src/mempool/rdma_pool.h"
#include "src/obs/registry.h"
#include "src/platform/platform.h"
#include "src/poolctl/control_plane.h"
#include "src/poolmgr/pool_manager.h"
#include "src/shstate/region_manager.h"
#include "src/sim/shard_coordinator.h"
#include "src/workload/arrival_stream.h"

namespace trenv {

// How the rack reacts to a node death. Recovered invocations restart from
// the shared snapshot on a survivor; the only question is how long detection
// and (for the cold-redeploy baseline) snapshot re-distribution take.
struct FailoverPolicy {
  // Health-check lag before the dispatcher notices a dead node and
  // re-dispatches its accepted-but-incomplete invocations.
  SimDuration detection_latency = SimDuration::Millis(50);
  // Extra delay charged per recovered invocation before it can restart.
  // Zero for TrEnv (the template is already in the shared pool); set it to
  // a snapshot-pull cost to model conventional per-node re-deployment.
  SimDuration redeploy_penalty;
};

// How Cluster::RunSharded splits one run across threads.
struct ShardedRunOptions {
  // Worker threads driving disjoint node ranges; clamped to the node count.
  // Every setting produces byte-identical results — shards only decide how
  // much of each epoch's node-drain work runs concurrently.
  uint32_t shards = 1;
  // Conservative-lookahead window. Zero: one synchronization epoch per
  // arrival, so every dispatch sees exactly the load state the sequential
  // Run() would see — byte-identical to Run() on the same schedule. Positive:
  // all arrivals inside one window are dispatched against the load snapshot
  // taken at the window start (plus a deterministic count of the window's own
  // placements per node), amortizing the barrier across many arrivals. The
  // window grid depends only on the trace, never on the shard count, so
  // output is still independent of --shards.
  SimDuration lookahead;
};

struct ClusterConfig {
  uint32_t nodes = 4;
  PlatformConfig node_config;
  uint64_t cxl_pool_bytes = 512 * kGiB;  // the 7.5 TB-class MHD, scaled down
  // kTemplateLocality routes an invocation to the node already holding a
  // warm instance or a template lease for the function (falling back to
  // least-loaded), so attaches are metadata-only instead of shard pulls.
  enum class Dispatch { kRoundRobin, kLeastLoaded, kTemplateLocality };
  Dispatch dispatch = Dispatch::kLeastLoaded;
  // Cross-node memory-pool control plane (sharded template store + leases).
  // Disabled by default: the cluster then behaves bit-identically to one
  // built before the control plane existed.
  PoolManagerConfig poolmgr;
  // Continuous pool control plane (gossip membership, budgeted rebalancing,
  // admission control, hot-shard replication) layered over poolmgr; requires
  // poolmgr.enabled. Disabled by default: the legacy single-shot crash
  // wiring stays active and every existing run is byte-identical.
  PoolCtlConfig poolctl;
  // Shared-state data plane (writable regions + ownership transfer over the
  // pool). Disabled by default: no RegionManager is built and every existing
  // code path is byte-identical.
  ShStateConfig shstate;
  // Fault-injection campaign; an empty schedule means the fault-free fabric
  // (bit-identical behaviour to a cluster with no injector at all).
  FaultSchedule faults;
  RetryPolicy retry;
  FailoverPolicy failover;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Deploys a function on every node; the snapshot dedups into the shared
  // pool, so the rack stores one copy regardless of node count.
  [[nodiscard]] Status Deploy(const FunctionProfile& profile);
  [[nodiscard]] Status DeployTable4Functions();

  // Dispatches an invocation to a node per the configured policy. If every
  // node is down (mid-crash-window), the invocation is parked and
  // re-dispatched when a node restarts. Errors name the rejecting node.
  [[nodiscard]] Status Submit(SimTime arrival, const std::string& function);

  // Extra dispatch controls for pipeline drivers.
  struct SubmitOptions {
    // Fires when the invocation completes; survives crash re-dispatch.
    CompletionFn on_complete;
    // Data-locality hint: dispatch here when the node is alive (the node
    // already attached the invocation's input region's pool home). Negative
    // = use the configured policy.
    int32_t preferred_node = -1;
  };
  [[nodiscard]] Status Submit(SimTime arrival, const std::string& function,
                              SubmitOptions options);
  [[nodiscard]] Status Run(const Schedule& schedule);

  // Sharded run: the trace pulls lazily from `arrivals` (a 10M-invocation
  // trace never materializes) and the per-node EventSchedulers advance in
  // parallel epochs under conservative-lookahead synchronization. Cross-shard
  // interactions (dispatch, poolmgr attach, failover re-dispatch) stay on the
  // coordinator thread between epochs; platform submits travel through
  // per-shard mailboxes drained in deterministic global-sequence order at the
  // next epoch. Output is byte-identical at any `shards` setting, and with
  // lookahead zero it is byte-identical to Run() on the collected schedule.
  //
  // Preconditions for cross-thread sharding: no fault injector, no tracer,
  // no prewarm policy, density off. When any of those is configured the run
  // degrades to one shard (same epoch algorithm, same output at any
  // requested shard count) — see docs/simulation_model.md.
  [[nodiscard]] Status RunSharded(ArrivalStream& arrivals,
                                  const ShardedRunOptions& options = {});

  // Introspection for the last RunSharded (the sharded_scale bench reports
  // synchronization overhead from these).
  uint32_t sharded_effective_shards() const { return sharded_effective_shards_; }
  uint64_t sharded_epochs() const { return sharded_epochs_; }
  double sharded_barrier_wait_seconds() const { return sharded_barrier_wait_; }

  size_t node_count() const { return nodes_.size(); }
  ServerlessPlatform& node(size_t i) { return *nodes_[i]->platform; }
  bool node_alive(size_t i) const { return nodes_[i]->alive; }
  CxlPool& cxl() { return *cxl_; }
  const SnapshotDedupStore& dedup() const { return *dedup_; }
  // Null when the configured FaultSchedule is empty.
  FaultInjector* fault_injector() { return injector_.get(); }
  // Null unless ClusterConfig::poolmgr.enabled.
  PoolManager* pool_manager() { return pool_mgr_.get(); }
  const PoolManager* pool_manager() const { return pool_mgr_.get(); }
  // Null unless ClusterConfig::poolctl.enabled (and poolmgr.enabled).
  PoolControlPlane* pool_control() { return pool_ctl_.get(); }
  const PoolControlPlane* pool_control() const { return pool_ctl_.get(); }
  // Null unless ClusterConfig::shstate.enabled.
  RegionManager* shared_state() { return shstate_.get(); }
  const RegionManager* shared_state() const { return shstate_.get(); }

  // --- pipeline-driver hooks -------------------------------------------------
  // An external driver (shstate::PipelineDriver) interleaves its own action
  // queue with the cluster's timeline through these instead of Run().
  //
  // Earliest pending event across node schedulers and control-plane clocks.
  std::optional<SimTime> NextEventTime();
  // Runs every clock up to t in lock-step (wraps the private AdvanceAllTo).
  void AdvanceClocksTo(SimTime t);
  // Node-level fault plan (empty without an injector) and its application,
  // so a driver can merge crash/restart events into its own loop exactly
  // like Run() does.
  std::vector<FaultInjector::NodeEvent> PlanFaultEvents();
  void ApplyFaultEvent(const FaultInjector::NodeEvent& event);
  // Drains every scheduler (wraps the private RunAllToCompletion).
  void DrainAll();
  // Invocations the cluster accepted via Submit — the chaos bench's
  // zero-loss check compares this against completed counts.
  uint64_t accepted_invocations() const { return accepted_; }
  // Stats of the shared pool devices (fetches, fetch CPU). Cluster-owned so
  // concurrent clusters never race on the process-wide DefaultRegistry().
  obs::Registry& registry() { return stats_; }
  const obs::Registry& registry() const { return stats_; }

  // Rack-level memory accounting: one shared pool copy + per-node DRAM.
  uint64_t PoolBytes() const { return cxl_->used_bytes(); }
  uint64_t NodeDramBytes() const;
  uint64_t RackTotalBytes() const { return PoolBytes() + NodeDramBytes(); }

  // Aggregated metrics across nodes.
  FunctionMetrics AggregateMetrics() const;
  uint64_t TotalInvocations() const;

 private:
  struct Node {
    std::unique_ptr<SandboxFactory> sandbox_factory;
    std::unique_ptr<SandboxPool> sandbox_pool;
    std::unique_ptr<MmtApi> mmt;
    std::unique_ptr<TrEnvEngine> engine;
    std::unique_ptr<ServerlessPlatform> platform;
    bool alive = true;
  };

  // An invocation accepted while every node was down, parked until restart.
  struct Deferred {
    SimTime arrival;  // the invocation's original arrival
    std::string function;
    CompletionFn on_complete;
  };

  // A platform Submit deferred into a per-shard mailbox: the owning shard
  // applies it at the start of the next epoch, in global push order, before
  // draining any scheduler — so event sequence numbers match the sequential
  // run's exactly.
  struct SubmitCmd {
    SimTime start;
    uint32_t node;
    std::string function;
    CompletionFn on_complete;
  };
  // Mailbox state live only inside RunSharded; Dispatch routes platform
  // submits here instead of calling Submit directly when non-null.
  struct MailboxSink {
    std::vector<SubmitCmd> cmds;                // global (time, seq) order
    std::vector<std::vector<size_t>> inboxes;   // per shard: indices into cmds
    std::vector<Status> statuses;               // indexed like cmds
    std::vector<uint32_t> shard_of;             // node index -> shard
  };

  bool AnyAlive() const;
  // True when node drains may run on concurrent threads: the injector binds
  // per-node state, the tracer and prewarm policy are cross-node-shared and
  // unsynchronized, and density migration writes the shared pools.
  bool CanShardAcrossThreads() const;
  // Placements already made in the current lookahead window; zero in
  // per-arrival and legacy modes (window_dispatches_ is empty there).
  uint32_t WindowLoad(size_t node) const {
    return window_dispatches_.empty() ? 0u : window_dispatches_[node];
  }
  size_t PickNode(const std::string& function, SimTime arrival);
  // Submit minus acceptance accounting: used both for fresh arrivals and for
  // re-dispatching recovered invocations (which were already counted).
  Status Dispatch(SimTime arrival, const std::string& function) {
    return Dispatch(arrival, function, SubmitOptions{});
  }
  Status Dispatch(SimTime arrival, const std::string& function,
                  SubmitOptions options);
  // Points the injector's clock and CXL-port scope at node i before its
  // scheduler is drained (node clocks diverge during RunAllToCompletion).
  void FocusNode(size_t i);
  // Runs every node's scheduler up to t in lock-step.
  void AdvanceAllTo(SimTime t);
  void ApplyNodeEvent(const FaultInjector::NodeEvent& event);
  void CrashNode(size_t i, SimTime when);
  void RestartNode(size_t i, SimTime when);
  // One virtual timeline shared by all nodes: Run drains schedulers in
  // lock-step so cross-node ordering stays deterministic.
  void RunAllToCompletion();

  ClusterConfig config_;
  obs::Registry stats_;
  std::shared_ptr<FsLayer> base_layer_;
  std::unique_ptr<CxlPool> cxl_;
  BackendRegistry backends_;
  TieredPool tiered_;
  std::unique_ptr<SnapshotDedupStore> dedup_;
  std::unique_ptr<FaultInjector> injector_;
  // Inter-node transfer fabric for the pool control plane's shard pulls;
  // separate from the MHD so attach traffic contends on its own NIC path.
  std::unique_ptr<RdmaPool> fabric_;
  std::unique_ptr<PoolManager> pool_mgr_;
  std::unique_ptr<PoolControlPlane> pool_ctl_;
  std::unique_ptr<RegionManager> shstate_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<Deferred> deferred_;
  size_t next_node_ = 0;
  uint64_t accepted_ = 0;
  // Non-null only while RunSharded is on the stack.
  MailboxSink* mailbox_ = nullptr;
  // Windowed dispatch only: per-node count of placements already made in the
  // current lookahead window, added to the load key so a burst inside one
  // window spreads instead of dog-piling the snapshot's least-loaded node.
  // Empty in per-arrival and legacy modes (PickNode then reads all zeros).
  std::vector<uint32_t> window_dispatches_;
  uint32_t sharded_effective_shards_ = 0;
  uint64_t sharded_epochs_ = 0;
  double sharded_barrier_wait_ = 0;
};

}  // namespace trenv

#endif  // TRENV_PLATFORM_CLUSTER_H_
