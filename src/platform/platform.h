// ServerlessPlatform: a faasd-like single-node platform driving one restore
// engine through a discrete-event simulation.
//
// Per invocation:
//   arrival -> warm hit? -> execution
//           -> restore (sandbox / process / memory phases) -> execution
//   execution = engine page work + CPU burst on the fair-share CPU + I/O wait
//   completion -> instance parked in the keep-alive pool (TTL + LRU + a soft
//   node memory cap that evicts idle instances under pressure)
//
// All evaluated systems run through this same loop; only the engine differs,
// exactly like the paper's methodology.
#ifndef TRENV_PLATFORM_PLATFORM_H_
#define TRENV_PLATFORM_PLATFORM_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/cost_model.h"
#include "src/criu/restore_engine.h"
#include "src/density/density_manager.h"
#include "src/platform/function_registry.h"
#include "src/platform/keep_alive_pool.h"
#include "src/platform/metrics.h"
#include "src/platform/prewarm.h"
#include "src/runtime/execution_model.h"
#include "src/sim/cpu.h"
#include "src/sim/event_scheduler.h"
#include "src/workload/arrival.h"

namespace trenv {

struct PlatformConfig {
  double cores = 64;  // dual 32-core Xeon Gold 6454S
  uint64_t dram_bytes = cost::kDefaultNodeDramBytes;
  uint64_t soft_mem_cap_bytes = cost::kDefaultSoftMemCap;
  SimDuration keep_alive_ttl = cost::kKeepAliveTtl;
  uint64_t seed = 42;
  // Optional histogram-based keep-alive/pre-warm policy (Shahrad et al.) —
  // the caching-strategy baseline of section 10. Null = fixed TTL, no
  // pre-warming (the paper's default policy). Not owned.
  PrewarmPolicy* prewarm = nullptr;
  // Optional tracer; the platform registers itself as one trace process
  // (named `trace_process`) clocked by its own scheduler. Not owned.
  obs::Tracer* tracer = nullptr;
  std::string trace_process = "platform";
  // Density tiering (off by default; see src/density/density_manager.h).
  // When disabled the platform takes its historical code paths verbatim.
  DensityConfig density;
  // Which cluster node this platform is (reported to completion callbacks so
  // a pipeline driver knows where an invocation actually finished — after a
  // crash re-dispatch that differs from where it was submitted).
  uint32_t node_index = 0;
  // Working-set-guided batched prefetch on the TrEnv attach path (only
  // meaningful for mm-template systems; Testbed threads these into
  // TrEnvEngine::Options::prefetch). Off by default: disabled runs take the
  // historical code paths byte-identically.
  bool trenv_prefetch = false;
  double trenv_prefetch_eager_fraction = 1.0;
};

// Invoked when an invocation completes successfully: the completing node's
// index and the virtual completion time. Carried through crash re-dispatch,
// so pipeline successors fire exactly once per accepted invocation.
using CompletionFn = std::function<void(uint32_t node, SimTime when)>;

// An invocation a crashed node accepted but had not completed: the cluster
// re-dispatches these to surviving nodes. The acceptance ticket makes
// (arrival, ticket) a strict total order, so failover re-dispatch order is
// deterministic even when queued and in-flight invocations share an arrival
// time (required for sharded replay to match the sequential run).
struct LostInvocation {
  std::string function;
  SimTime arrival;
  uint64_t ticket = 0;
  CompletionFn on_complete;  // preserved across re-dispatch (may be null)
};

class ServerlessPlatform {
 public:
  ServerlessPlatform(PlatformConfig config, RestoreEngine* engine,
                     const BackendRegistry* backends);
  ServerlessPlatform(const ServerlessPlatform&) = delete;
  ServerlessPlatform& operator=(const ServerlessPlatform&) = delete;

  // Deploys a function: registers it and runs the engine's preprocessing.
  [[nodiscard]] Status Deploy(const FunctionProfile& profile);

  // Schedules one invocation at `arrival` (absolute virtual time).
  [[nodiscard]] Status Submit(SimTime arrival, const std::string& function);
  // Same, with a completion callback (fires on success only; failure paths
  // drop it and count failed_invocations instead).
  [[nodiscard]] Status Submit(SimTime arrival, const std::string& function,
                              CompletionFn on_complete);
  // Schedules a whole workload and runs the simulation to completion.
  [[nodiscard]] Status Run(const Schedule& schedule);
  // Runs whatever is scheduled without submitting more work.
  void RunToCompletion();

  // Node failure: drops all node-local state (pending events, CPU bursts,
  // warm instances, sandboxes' frames) and returns every accepted-but-
  // incomplete invocation, sorted by arrival, for re-dispatch elsewhere.
  // Deployed functions and engine snapshots survive — they live in the
  // shared pool / control plane, which is the paper's cross-node story.
  std::vector<LostInvocation> Crash();

  // Scales the soft memory cap (injected pool pressure); 1.0 restores the
  // configured cap and is exactly the fault-free behaviour. Scales are
  // clamped below at cost::kSoftMemCapScaleFloor so a pressure window can
  // squeeze but never erase the cap; the effective cap is exported as the
  // "platform.soft_mem_cap_bytes" gauge.
  void SetSoftMemCapScale(double scale);

  MetricsCollector& metrics() { return metrics_; }
  const MetricsCollector& metrics() const { return metrics_; }
  EventScheduler& scheduler() { return scheduler_; }
  FrameAllocator& frames() { return frames_; }
  FairShareCpu& cpu() { return cpu_; }
  RestoreEngine* engine() { return engine_; }
  const FunctionRegistry& registry() { return registry_; }
  uint32_t concurrent_startups() const { return concurrent_startups_; }
  uint64_t failed_invocations() const { return failed_invocations_; }
  // Warm-instance inventory; locality-aware dispatch reads CountFor().
  const KeepAlivePool& keep_alive() const { return keep_alive_; }
  DensityManager& density() { return density_; }
  const DensityManager& density() const { return density_; }
  obs::Tracer* tracer() const { return tracer_; }
  obs::ProcessId trace_pid() const { return trace_pid_; }

  // Drains the keep-alive pool (end-of-experiment accounting).
  void EvictAllIdle();

 private:
  struct InFlight {
    std::string function;
    // Resolved once at acceptance: the deployed profile (stable std::map
    // node) and its interned id, so the per-invocation callbacks do no
    // string-map lookups.
    const FunctionProfile* profile = nullptr;
    FunctionId fid = kInvalidFunctionId;
    // The acceptance ticket from Submit, carried through so Crash() can
    // rebuild the (arrival, ticket) total order across queued_ + inflight_.
    uint64_t ticket = 0;
    CompletionFn on_complete;
    SimTime arrival;
    SimTime exec_start;
    StartupBreakdown startup;
    std::unique_ptr<FunctionInstance> instance;
    bool warm = false;
    // Tier-promotion fetch paid on a warm take (zero when density is off or
    // the instance was already DRAM-hot); recorded as the warm startup cost.
    SimDuration promote_latency;
    // Root "invocation" span and the currently open phase child — span ids
    // persist across the scheduler callbacks that play the phases out.
    obs::SpanId root_span = obs::kInvalidSpanId;
    obs::SpanId phase_span = obs::kInvalidSpanId;
  };

  RestoreContext MakeContext();
  // The (process, track) pair all of one invocation's spans live on.
  obs::Loc TraceLoc(uint64_t token) const { return {trace_pid_, token}; }
  void StartInvocation(const std::string& function, uint64_t ticket,
                       CompletionFn on_complete);
  void BeginStartupPhases(uint64_t token);
  void BeginExecution(uint64_t token);
  void Complete(uint64_t token);
  void SampleMemory();
  void EnforceMemoryCap();
  // The soft cap after the current pressure scale (clamped at the floor).
  uint64_t EffectiveCap() const;
  void RetireInstance(std::unique_ptr<FunctionInstance> instance);
  // Pre-warm machinery (active only with a PrewarmPolicy configured).
  void MaybeSchedulePrewarm(const std::string& function);
  void PrewarmNow(const std::string& function);

  PlatformConfig config_;
  RestoreEngine* engine_;
  const BackendRegistry* backends_;

  EventScheduler scheduler_;
  FairShareCpu cpu_;
  FrameAllocator frames_;
  PidAllocator pids_;
  FunctionRegistry registry_;
  KeepAlivePool keep_alive_;
  MetricsCollector metrics_;
  ExecutionModel exec_model_;
  DensityManager density_;

  obs::Tracer* tracer_ = nullptr;
  obs::ProcessId trace_pid_ = 0;

  std::map<uint64_t, InFlight> inflight_;
  // Accepted invocations whose arrival event has not fired yet, keyed by
  // ticket. Tracked so a crash can recover work that was only queued.
  std::map<uint64_t, LostInvocation> queued_;
  uint64_t next_token_ = 1;
  uint64_t next_ticket_ = 1;
  uint32_t concurrent_startups_ = 0;
  uint64_t failed_invocations_ = 0;
  double mem_cap_scale_ = 1.0;
  obs::Gauge* soft_cap_gauge_ = nullptr;  // created on first pressure change
};

}  // namespace trenv

#endif  // TRENV_PLATFORM_PLATFORM_H_
