// Tests for the discrete-event core: scheduler, processor-sharing CPU,
// counting resources.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/cpu.h"
#include "src/sim/event_scheduler.h"
#include "src/sim/semaphore.h"

namespace trenv {
namespace {

TEST(EventSchedulerTest, RunsInTimeOrder) {
  EventScheduler sched;
  std::vector<int> order;
  sched.ScheduleAt(SimTime(30), [&] { order.push_back(3); });
  sched.ScheduleAt(SimTime(10), [&] { order.push_back(1); });
  sched.ScheduleAt(SimTime(20), [&] { order.push_back(2); });
  sched.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), SimTime(30));
}

TEST(EventSchedulerTest, SameInstantRunsInScheduleOrder) {
  EventScheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.ScheduleAt(SimTime(100), [&order, i] { order.push_back(i); });
  }
  sched.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventSchedulerTest, CancelPreventsExecution) {
  EventScheduler sched;
  bool ran = false;
  EventId id = sched.ScheduleAfter(SimDuration::Millis(1), [&] { ran = true; });
  EXPECT_TRUE(sched.Cancel(id));
  EXPECT_FALSE(sched.Cancel(id));  // double cancel
  sched.RunUntilIdle();
  EXPECT_FALSE(ran);
}

TEST(EventSchedulerTest, EventsCanScheduleEvents) {
  EventScheduler sched;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) {
      sched.ScheduleAfter(SimDuration::Millis(10), tick);
    }
  };
  sched.ScheduleAfter(SimDuration::Millis(10), tick);
  sched.RunUntilIdle();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sched.now(), SimTime(SimDuration::Millis(50).nanos()));
}

TEST(EventSchedulerTest, RunUntilStopsAtBoundary) {
  EventScheduler sched;
  int count = 0;
  sched.ScheduleAt(SimTime(10), [&] { ++count; });
  sched.ScheduleAt(SimTime(20), [&] { ++count; });
  sched.RunUntil(SimTime(15));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sched.now(), SimTime(15));
  sched.RunUntilIdle();
  EXPECT_EQ(count, 2);
}

TEST(FairShareCpuTest, SingleTaskRunsAtFullSpeed) {
  EventScheduler sched;
  FairShareCpu cpu(&sched, 4);
  SimTime done;
  cpu.Submit(SimDuration::Seconds(2), [&] { done = sched.now(); });
  sched.RunUntilIdle();
  EXPECT_EQ(done, SimTime(SimDuration::Seconds(2).nanos()));
}

TEST(FairShareCpuTest, ContentionSlowsTasksDown) {
  EventScheduler sched;
  FairShareCpu cpu(&sched, 1);
  std::vector<double> finish_s;
  for (int i = 0; i < 2; ++i) {
    cpu.Submit(SimDuration::Seconds(1), [&] { finish_s.push_back(sched.now().seconds()); });
  }
  sched.RunUntilIdle();
  ASSERT_EQ(finish_s.size(), 2u);
  // Two equal 1s tasks sharing one core both finish at ~2s.
  EXPECT_NEAR(finish_s[0], 2.0, 1e-6);
  EXPECT_NEAR(finish_s[1], 2.0, 1e-6);
}

TEST(FairShareCpuTest, NoContentionBelowCoreCount) {
  EventScheduler sched;
  FairShareCpu cpu(&sched, 8);
  std::vector<double> finish_s;
  for (int i = 0; i < 4; ++i) {
    cpu.Submit(SimDuration::Seconds(1), [&] { finish_s.push_back(sched.now().seconds()); });
  }
  sched.RunUntilIdle();
  for (double f : finish_s) {
    EXPECT_NEAR(f, 1.0, 1e-6);
  }
}

TEST(FairShareCpuTest, LateArrivalSharesRemainingWork) {
  EventScheduler sched;
  FairShareCpu cpu(&sched, 1);
  double first_done = 0;
  double second_done = 0;
  cpu.Submit(SimDuration::Seconds(2), [&] { first_done = sched.now().seconds(); });
  sched.ScheduleAt(SimTime(SimDuration::Seconds(1).nanos()), [&] {
    cpu.Submit(SimDuration::Seconds(1), [&] { second_done = sched.now().seconds(); });
  });
  sched.RunUntilIdle();
  // Task A: 1s alone (1s work done), then shares: each gets 0.5/s. A has 1s
  // left -> done at t=3. B has 1s work, gets 0.5/s until A finishes... both
  // have equal remaining at t=1, so both finish at t=3.
  EXPECT_NEAR(first_done, 3.0, 1e-6);
  EXPECT_NEAR(second_done, 3.0, 1e-6);
}

TEST(FairShareCpuTest, WeightedTaskGetsProportionalShare) {
  EventScheduler sched;
  FairShareCpu cpu(&sched, 1);
  double heavy_done = 0;
  double light_done = 0;
  cpu.SubmitWeighted(SimDuration::Seconds(3), 3.0,
                     [&] { heavy_done = sched.now().seconds(); });
  cpu.SubmitWeighted(SimDuration::Seconds(1), 1.0,
                     [&] { light_done = sched.now().seconds(); });
  sched.RunUntilIdle();
  // Heavy gets 3/4 of the core, light 1/4: both need 4 seconds.
  EXPECT_NEAR(heavy_done, 4.0, 1e-6);
  EXPECT_NEAR(light_done, 4.0, 1e-6);
}

TEST(FairShareCpuTest, CancelRemovesTask) {
  EventScheduler sched;
  FairShareCpu cpu(&sched, 1);
  bool cancelled_ran = false;
  double other_done = 0;
  CpuTaskId id = cpu.Submit(SimDuration::Seconds(10), [&] { cancelled_ran = true; });
  cpu.Submit(SimDuration::Seconds(1), [&] { other_done = sched.now().seconds(); });
  sched.ScheduleAt(SimTime(SimDuration::Millis(500).nanos()), [&] { cpu.Cancel(id); });
  sched.RunUntilIdle();
  EXPECT_FALSE(cancelled_ran);
  // Other task: 0.5s at half speed (0.25 done), then full speed for 0.75s.
  EXPECT_NEAR(other_done, 1.25, 1e-6);
}

TEST(FairShareCpuTest, UtilizationTracksConsumption) {
  EventScheduler sched;
  FairShareCpu cpu(&sched, 2);
  cpu.Submit(SimDuration::Seconds(1), [] {});
  cpu.Submit(SimDuration::Seconds(1), [] {});
  sched.RunUntilIdle();
  EXPECT_NEAR(cpu.consumed_cpu_seconds(sched.now()), 2.0, 1e-6);
}

TEST(FairShareCpuTest, ZeroWorkCompletesImmediately) {
  EventScheduler sched;
  FairShareCpu cpu(&sched, 1);
  bool done = false;
  cpu.Submit(SimDuration::Zero(), [&] { done = true; });
  sched.RunUntilIdle();
  EXPECT_TRUE(done);
  EXPECT_EQ(sched.now(), SimTime(0));
}

TEST(CountingResourceTest, TryAcquireRespectsCapacity) {
  CountingResource res(10);
  EXPECT_TRUE(res.TryAcquire(6));
  EXPECT_FALSE(res.TryAcquire(5));
  EXPECT_TRUE(res.TryAcquire(4));
  EXPECT_EQ(res.available(), 0u);
}

TEST(CountingResourceTest, WaitersGrantedFifoOnRelease) {
  CountingResource res(10);
  ASSERT_TRUE(res.TryAcquire(10));
  std::vector<int> grants;
  res.Acquire(5, [&] { grants.push_back(1); });
  res.Acquire(3, [&] { grants.push_back(2); });
  EXPECT_TRUE(grants.empty());
  res.Release(6);
  EXPECT_EQ(grants, (std::vector<int>{1}));
  res.Release(4);
  EXPECT_EQ(grants, (std::vector<int>{1, 2}));
}

TEST(CountingResourceTest, FifoHeadOfLineBlocks) {
  CountingResource res(10);
  ASSERT_TRUE(res.TryAcquire(8));
  std::vector<int> grants;
  res.Acquire(5, [&] { grants.push_back(1); });  // needs 5, only 2 free
  res.Acquire(1, [&] { grants.push_back(2); });  // would fit but queued FIFO
  EXPECT_TRUE(grants.empty());
  res.Release(3);  // 5 free -> waiter 1 granted, resource full again
  EXPECT_EQ(grants, (std::vector<int>{1}));
  res.Release(1);
  EXPECT_EQ(grants, (std::vector<int>{1, 2}));
}

TEST(CountingResourceTest, CapacityGrowthDrainsWaiters) {
  CountingResource res(2);
  ASSERT_TRUE(res.TryAcquire(2));
  bool granted = false;
  res.Acquire(2, [&] { granted = true; });
  res.SetCapacity(4);
  EXPECT_TRUE(granted);
}

}  // namespace
}  // namespace trenv
