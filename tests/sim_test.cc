// Tests for the discrete-event core: scheduler, processor-sharing CPU,
// counting resources.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/cpu.h"
#include "src/sim/event_scheduler.h"
#include "src/sim/semaphore.h"

namespace trenv {
namespace {

TEST(EventSchedulerTest, RunsInTimeOrder) {
  EventScheduler sched;
  std::vector<int> order;
  sched.ScheduleAt(SimTime(30), [&] { order.push_back(3); });
  sched.ScheduleAt(SimTime(10), [&] { order.push_back(1); });
  sched.ScheduleAt(SimTime(20), [&] { order.push_back(2); });
  sched.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), SimTime(30));
}

TEST(EventSchedulerTest, SameInstantRunsInScheduleOrder) {
  EventScheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.ScheduleAt(SimTime(100), [&order, i] { order.push_back(i); });
  }
  sched.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventSchedulerTest, CancelPreventsExecution) {
  EventScheduler sched;
  bool ran = false;
  EventId id = sched.ScheduleAfter(SimDuration::Millis(1), [&] { ran = true; });
  EXPECT_TRUE(sched.Cancel(id));
  EXPECT_FALSE(sched.Cancel(id));  // double cancel
  sched.RunUntilIdle();
  EXPECT_FALSE(ran);
}

TEST(EventSchedulerTest, EventsCanScheduleEvents) {
  EventScheduler sched;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) {
      sched.ScheduleAfter(SimDuration::Millis(10), tick);
    }
  };
  sched.ScheduleAfter(SimDuration::Millis(10), tick);
  sched.RunUntilIdle();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sched.now(), SimTime(SimDuration::Millis(50).nanos()));
}

TEST(EventSchedulerTest, RunUntilStopsAtBoundary) {
  EventScheduler sched;
  int count = 0;
  sched.ScheduleAt(SimTime(10), [&] { ++count; });
  sched.ScheduleAt(SimTime(20), [&] { ++count; });
  sched.RunUntil(SimTime(15));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sched.now(), SimTime(15));
  sched.RunUntilIdle();
  EXPECT_EQ(count, 2);
}

TEST(EventSchedulerTest, SameInstantOrderSurvivesCancellation) {
  // Cancelling an interleaved subset of same-instant events must not perturb
  // the insertion order of the survivors (the heap tie-breaks on sequence
  // number, and tombstones are skipped at pop).
  EventScheduler sched;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(sched.ScheduleAt(SimTime(100), [&order, i] { order.push_back(i); }));
  }
  for (int i = 1; i < 10; i += 2) {
    EXPECT_TRUE(sched.Cancel(ids[i]));
  }
  sched.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 6, 8}));
}

TEST(EventSchedulerTest, CancelThenRescheduleKeepsDeterministicOrder) {
  // The keep-alive pattern: cancel a pending timer and re-arm it. The new
  // event must run in the order implied by its (time, new insertion index),
  // not by any recycled identity of the cancelled one.
  EventScheduler sched;
  std::vector<int> order;
  EventId timer = sched.ScheduleAt(SimTime(50), [&] { order.push_back(1); });
  sched.ScheduleAt(SimTime(50), [&] { order.push_back(2); });
  EXPECT_TRUE(sched.Cancel(timer));
  sched.ScheduleAt(SimTime(50), [&] { order.push_back(3); });  // re-armed after event 2
  sched.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{2, 3}));
}

TEST(EventSchedulerTest, StaleIdDoesNotCancelRecycledSlot) {
  // After heavy cancel/reschedule churn, internal slots are recycled; an
  // EventId from a previous occupant must never cancel the new one.
  EventScheduler sched;
  bool ran = false;
  EventId old_id = sched.ScheduleAt(SimTime(10), [] {});
  EXPECT_TRUE(sched.Cancel(old_id));
  // The new event likely reuses the old slot; the stale id must stay dead.
  EventId new_id = sched.ScheduleAt(SimTime(10), [&] { ran = true; });
  EXPECT_FALSE(sched.Cancel(old_id));
  EXPECT_NE(old_id, new_id);
  sched.RunUntilIdle();
  EXPECT_TRUE(ran);
}

TEST(EventSchedulerTest, RunUntilBoundaryWithCancelledHead) {
  // RunUntil must not stop early (or advance time past t) when the earliest
  // heap entries are tombstones.
  EventScheduler sched;
  int count = 0;
  EventId head = sched.ScheduleAt(SimTime(5), [&] { ++count; });
  sched.ScheduleAt(SimTime(10), [&] { ++count; });
  sched.ScheduleAt(SimTime(20), [&] { ++count; });
  EXPECT_TRUE(sched.Cancel(head));
  sched.RunUntil(SimTime(15));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sched.now(), SimTime(15));
  EXPECT_TRUE(sched.HasPending());
  sched.RunUntilIdle();
  EXPECT_EQ(count, 2);
}

TEST(EventSchedulerTest, RunUntilAtExactEventTimeRunsTheEvent) {
  EventScheduler sched;
  int count = 0;
  sched.ScheduleAt(SimTime(10), [&] { ++count; });
  sched.ScheduleAt(SimTime(11), [&] { ++count; });
  sched.RunUntil(SimTime(10));  // inclusive boundary
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sched.now(), SimTime(10));
}

TEST(EventSchedulerTest, CancelChurnKeepsPendingCountExact) {
  // Long-lived keep-alive timers that are almost always cancelled: the
  // scheduler must report only live events and eventually run exactly the
  // survivors, regardless of internal tombstone compaction.
  EventScheduler sched;
  int ran = 0;
  for (int round = 0; round < 100; ++round) {
    std::vector<EventId> batch;
    for (int i = 0; i < 64; ++i) {
      batch.push_back(sched.ScheduleAfter(SimDuration::Minutes(10 + i), [&] { ++ran; }));
    }
    // Cancel all but the last of this round's batch.
    for (size_t i = 0; i + 1 < batch.size(); ++i) {
      EXPECT_TRUE(sched.Cancel(batch[i]));
    }
    EXPECT_EQ(sched.pending_count(), static_cast<size_t>(round + 1));
  }
  EXPECT_TRUE(sched.HasPending());
  sched.RunUntilIdle();
  EXPECT_EQ(ran, 100);
  EXPECT_FALSE(sched.HasPending());
  EXPECT_EQ(sched.pending_count(), 0u);
}

TEST(FairShareCpuTest, SingleTaskRunsAtFullSpeed) {
  EventScheduler sched;
  FairShareCpu cpu(&sched, 4);
  SimTime done;
  cpu.Submit(SimDuration::Seconds(2), [&] { done = sched.now(); });
  sched.RunUntilIdle();
  EXPECT_EQ(done, SimTime(SimDuration::Seconds(2).nanos()));
}

TEST(FairShareCpuTest, ContentionSlowsTasksDown) {
  EventScheduler sched;
  FairShareCpu cpu(&sched, 1);
  std::vector<double> finish_s;
  for (int i = 0; i < 2; ++i) {
    cpu.Submit(SimDuration::Seconds(1), [&] { finish_s.push_back(sched.now().seconds()); });
  }
  sched.RunUntilIdle();
  ASSERT_EQ(finish_s.size(), 2u);
  // Two equal 1s tasks sharing one core both finish at ~2s.
  EXPECT_NEAR(finish_s[0], 2.0, 1e-6);
  EXPECT_NEAR(finish_s[1], 2.0, 1e-6);
}

TEST(FairShareCpuTest, NoContentionBelowCoreCount) {
  EventScheduler sched;
  FairShareCpu cpu(&sched, 8);
  std::vector<double> finish_s;
  for (int i = 0; i < 4; ++i) {
    cpu.Submit(SimDuration::Seconds(1), [&] { finish_s.push_back(sched.now().seconds()); });
  }
  sched.RunUntilIdle();
  for (double f : finish_s) {
    EXPECT_NEAR(f, 1.0, 1e-6);
  }
}

TEST(FairShareCpuTest, LateArrivalSharesRemainingWork) {
  EventScheduler sched;
  FairShareCpu cpu(&sched, 1);
  double first_done = 0;
  double second_done = 0;
  cpu.Submit(SimDuration::Seconds(2), [&] { first_done = sched.now().seconds(); });
  sched.ScheduleAt(SimTime(SimDuration::Seconds(1).nanos()), [&] {
    cpu.Submit(SimDuration::Seconds(1), [&] { second_done = sched.now().seconds(); });
  });
  sched.RunUntilIdle();
  // Task A: 1s alone (1s work done), then shares: each gets 0.5/s. A has 1s
  // left -> done at t=3. B has 1s work, gets 0.5/s until A finishes... both
  // have equal remaining at t=1, so both finish at t=3.
  EXPECT_NEAR(first_done, 3.0, 1e-6);
  EXPECT_NEAR(second_done, 3.0, 1e-6);
}

TEST(FairShareCpuTest, WeightedTaskGetsProportionalShare) {
  EventScheduler sched;
  FairShareCpu cpu(&sched, 1);
  double heavy_done = 0;
  double light_done = 0;
  cpu.SubmitWeighted(SimDuration::Seconds(3), 3.0,
                     [&] { heavy_done = sched.now().seconds(); });
  cpu.SubmitWeighted(SimDuration::Seconds(1), 1.0,
                     [&] { light_done = sched.now().seconds(); });
  sched.RunUntilIdle();
  // Heavy gets 3/4 of the core, light 1/4: both need 4 seconds.
  EXPECT_NEAR(heavy_done, 4.0, 1e-6);
  EXPECT_NEAR(light_done, 4.0, 1e-6);
}

TEST(FairShareCpuTest, CancelRemovesTask) {
  EventScheduler sched;
  FairShareCpu cpu(&sched, 1);
  bool cancelled_ran = false;
  double other_done = 0;
  CpuTaskId id = cpu.Submit(SimDuration::Seconds(10), [&] { cancelled_ran = true; });
  cpu.Submit(SimDuration::Seconds(1), [&] { other_done = sched.now().seconds(); });
  sched.ScheduleAt(SimTime(SimDuration::Millis(500).nanos()), [&] { cpu.Cancel(id); });
  sched.RunUntilIdle();
  EXPECT_FALSE(cancelled_ran);
  // Other task: 0.5s at half speed (0.25 done), then full speed for 0.75s.
  EXPECT_NEAR(other_done, 1.25, 1e-6);
}

TEST(FairShareCpuTest, UtilizationTracksConsumption) {
  EventScheduler sched;
  FairShareCpu cpu(&sched, 2);
  cpu.Submit(SimDuration::Seconds(1), [] {});
  cpu.Submit(SimDuration::Seconds(1), [] {});
  sched.RunUntilIdle();
  EXPECT_NEAR(cpu.consumed_cpu_seconds(sched.now()), 2.0, 1e-6);
}

TEST(FairShareCpuTest, ZeroWorkCompletesImmediately) {
  EventScheduler sched;
  FairShareCpu cpu(&sched, 1);
  bool done = false;
  cpu.Submit(SimDuration::Zero(), [&] { done = true; });
  sched.RunUntilIdle();
  EXPECT_TRUE(done);
  EXPECT_EQ(sched.now(), SimTime(0));
}

TEST(CountingResourceTest, TryAcquireRespectsCapacity) {
  CountingResource res(10);
  EXPECT_TRUE(res.TryAcquire(6));
  EXPECT_FALSE(res.TryAcquire(5));
  EXPECT_TRUE(res.TryAcquire(4));
  EXPECT_EQ(res.available(), 0u);
}

TEST(CountingResourceTest, WaitersGrantedFifoOnRelease) {
  CountingResource res(10);
  ASSERT_TRUE(res.TryAcquire(10));
  std::vector<int> grants;
  res.Acquire(5, [&] { grants.push_back(1); });
  res.Acquire(3, [&] { grants.push_back(2); });
  EXPECT_TRUE(grants.empty());
  res.Release(6);
  EXPECT_EQ(grants, (std::vector<int>{1}));
  res.Release(4);
  EXPECT_EQ(grants, (std::vector<int>{1, 2}));
}

TEST(CountingResourceTest, FifoHeadOfLineBlocks) {
  CountingResource res(10);
  ASSERT_TRUE(res.TryAcquire(8));
  std::vector<int> grants;
  res.Acquire(5, [&] { grants.push_back(1); });  // needs 5, only 2 free
  res.Acquire(1, [&] { grants.push_back(2); });  // would fit but queued FIFO
  EXPECT_TRUE(grants.empty());
  res.Release(3);  // 5 free -> waiter 1 granted, resource full again
  EXPECT_EQ(grants, (std::vector<int>{1}));
  res.Release(1);
  EXPECT_EQ(grants, (std::vector<int>{1, 2}));
}

TEST(CountingResourceTest, CapacityGrowthDrainsWaiters) {
  CountingResource res(2);
  ASSERT_TRUE(res.TryAcquire(2));
  bool granted = false;
  res.Acquire(2, [&] { granted = true; });
  res.SetCapacity(4);
  EXPECT_TRUE(granted);
}

}  // namespace
}  // namespace trenv
