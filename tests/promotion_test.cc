// Tests for the hot-chunk promotion policy across memory tiers.
#include <gtest/gtest.h>

#include "src/criu/trenv_engine.h"
#include "src/mempool/cxl_pool.h"
#include "src/mempool/promotion.h"
#include "src/mempool/rdma_pool.h"
#include "src/mmtemplate/api.h"
#include "src/simkernel/fault_handler.h"

namespace trenv {
namespace {

class PromotionTest : public ::testing::Test {
 protected:
  PromotionTest() : cxl_(1 * kGiB), rdma_(4 * kGiB), frames_(4 * kGiB), api_(&backends_) {
    backends_.Register(&cxl_);
    backends_.Register(&rdma_);
    tiered_.AddTier(&cxl_);
    tiered_.AddTier(&rdma_);
  }

  // Allocates an n-page chunk in RDMA holding content_base.. and builds a
  // template mapping it at `addr`.
  PoolPlacement MakeColdChunk(MmtId id, Vaddr addr, uint64_t npages, PageContent content) {
    auto base = rdma_.AllocatePages(npages);
    EXPECT_TRUE(base.ok());
    EXPECT_TRUE(rdma_.WriteContent(*base, npages, content).ok());
    EXPECT_TRUE(
        api_.MmtAddMap(id, addr, npages * kPageSize, Protection::ReadWrite(), true, -1, 0).ok());
    EXPECT_TRUE(api_.MmtSetupPt(id, addr, npages * kPageSize, *base, PoolKind::kRdma).ok());
    return PoolPlacement{PoolKind::kRdma, *base, npages};
  }

  CxlPool cxl_;
  RdmaPool rdma_;
  FrameAllocator frames_;
  BackendRegistry backends_;
  TieredPool tiered_;
  MmtApi api_;
};

constexpr Vaddr kAddr = 0x40000000;

TEST_F(PromotionTest, ColdChunkPromotesAfterThreshold) {
  PromotionManager manager(&tiered_, &api_.registry(),
                           PromotionManager::Options{.promote_threshold = 3});
  MmtId id = api_.MmtCreate("fn");
  PoolPlacement cold = MakeColdChunk(id, kAddr, 32, 0x7007);

  manager.RecordAccess(cold, 1);
  EXPECT_TRUE(manager.Sweep().empty());  // below threshold
  manager.RecordAccess(cold, 2);
  auto moves = manager.Sweep();
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].from.kind, PoolKind::kRdma);
  EXPECT_EQ(moves[0].to.kind, PoolKind::kCxl);
  EXPECT_EQ(moves[0].templates_rewritten, 1u);
  EXPECT_GT(moves[0].copy_latency, SimDuration::Zero());
  // Content survived the migration.
  EXPECT_EQ(*cxl_.ReadContent(moves[0].to.base + 5), 0x7007u + 5);
  // Idempotent: nothing left to promote.
  EXPECT_TRUE(manager.Sweep().empty());
  EXPECT_EQ(manager.promoted_chunks(), 1u);
}

TEST_F(PromotionTest, PromotedTemplateServesDirectReads) {
  PromotionManager manager(&tiered_, &api_.registry(),
                           PromotionManager::Options{.promote_threshold = 1});
  MmtId id = api_.MmtCreate("fn");
  PoolPlacement cold = MakeColdChunk(id, kAddr, 16, 0xCAFE);
  manager.RecordAccess(cold, 5);
  ASSERT_EQ(manager.Sweep().size(), 1u);

  // Fresh attach after the sweep: reads are now zero-fault CXL loads.
  MmStruct mm;
  ASSERT_TRUE(api_.MmtAttach(id, &mm).ok());
  FaultHandler kernel(&frames_, &backends_);
  auto outcome = kernel.Access(mm, kAddr + 3 * kPageSize, /*write=*/false);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->kind, AccessKind::kDirectRemote);
  EXPECT_EQ(outcome->content, 0xCAFEu + 3);
  EXPECT_EQ(mm.stats().major_faults, 0u);
}

TEST_F(PromotionTest, AlreadyAttachedTemplatesAreRewrittenToo) {
  PromotionManager manager(&tiered_, &api_.registry(),
                           PromotionManager::Options{.promote_threshold = 1});
  MmtId id = api_.MmtCreate("fn");
  PoolPlacement cold = MakeColdChunk(id, kAddr, 8, 0xBEAD);
  manager.RecordAccess(cold, 9);
  ASSERT_EQ(manager.Sweep().size(), 1u);
  // The TEMPLATE is rewritten; an mm attached before the sweep keeps its
  // lazy RDMA view until re-attached (templates are the unit of sharing).
  auto tmpl = api_.registry().Lookup(id);
  ASSERT_TRUE(tmpl.ok());
  auto pte = (*tmpl)->page_table().Lookup(AddrToVpn(kAddr));
  ASSERT_TRUE(pte.has_value());
  EXPECT_EQ(pte->flags.pool, PoolKind::kCxl);
  EXPECT_TRUE(pte->flags.valid);
}

TEST_F(PromotionTest, HottestFirstAndSweepBounded) {
  PromotionManager manager(
      &tiered_, &api_.registry(),
      PromotionManager::Options{.promote_threshold = 1, .max_promotions_per_sweep = 1});
  MmtId id = api_.MmtCreate("fn");
  PoolPlacement lukewarm = MakeColdChunk(id, kAddr, 8, 0x1);
  PoolPlacement blazing = MakeColdChunk(id, kAddr + kMiB, 8, 0x2);
  manager.RecordAccess(lukewarm, 2);
  manager.RecordAccess(blazing, 50);
  auto moves = manager.Sweep();
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].from.base, blazing.base);  // hottest chosen first
  EXPECT_EQ(manager.tracked_chunks(), 1u);      // lukewarm still tracked
  EXPECT_EQ(manager.Sweep().size(), 1u);        // next sweep picks it up
}

TEST_F(PromotionTest, HotTierChunksNeverTracked) {
  PromotionManager manager(&tiered_, &api_.registry());
  manager.RecordAccess(PoolPlacement{PoolKind::kCxl, 0, 8}, 100);
  EXPECT_EQ(manager.tracked_chunks(), 0u);
}

TEST_F(PromotionTest, FullHotTierLeavesChunkInPlace) {
  // Fill CXL completely so promotion has nowhere to go.
  auto filler = cxl_.AllocatePages(cxl_.capacity_bytes() / kPageSize);
  ASSERT_TRUE(filler.ok());
  PromotionManager manager(&tiered_, &api_.registry(),
                           PromotionManager::Options{.promote_threshold = 1});
  MmtId id = api_.MmtCreate("fn");
  PoolPlacement cold = MakeColdChunk(id, kAddr, 8, 0x3);
  manager.RecordAccess(cold, 10);
  EXPECT_TRUE(manager.Sweep().empty());
  // The template still points at RDMA and still works.
  auto tmpl = api_.registry().Lookup(id);
  auto pte = (*tmpl)->page_table().Lookup(AddrToVpn(kAddr));
  EXPECT_EQ(pte->flags.pool, PoolKind::kRdma);
}

TEST(EnginePromotionTest, TieredEngineMigratesHotFunctionToCxl) {
  // A T-Tiered engine with promotion enabled: a function whose image landed
  // in RDMA gets pulled into CXL after enough executions.
  CxlPool cxl(8 * kGiB);
  RdmaPool rdma(8 * kGiB);
  BackendRegistry backends;
  backends.Register(&cxl);
  backends.Register(&rdma);
  TieredPool tiered;
  tiered.AddTier(&cxl);
  tiered.AddTier(&rdma);
  SnapshotDedupStore dedup(&tiered);
  SandboxFactory factory(std::make_shared<FsLayer>("base"));
  SandboxPool pool;
  MmtApi api(&backends);
  PromotionManager promotion(&tiered, &api.registry(),
                             PromotionManager::Options{.promote_threshold = 3,
                                                       .max_promotions_per_sweep = 64});
  TrEnvEngine engine(&factory, &pool, &api, &dedup);
  engine.EnablePromotion(&promotion, /*interval=*/4);

  FunctionProfile profile;
  profile.name = "hot-fn";
  profile.language = "python";
  profile.image_bytes = 16 * kMiB;
  profile.threads = 4;
  ASSERT_TRUE(engine.Prepare(profile).ok());
  FrameAllocator frames(8 * kGiB);
  PidAllocator pids;
  RestoreContext ctx;
  ctx.frames = &frames;
  ctx.backends = &backends;
  ctx.pids = &pids;

  const uint64_t cxl_before = cxl.used_bytes();
  // Execute repeatedly; sweeps run every 4 executions.
  for (int i = 0; i < 12; ++i) {
    auto outcome = engine.Restore(profile, ctx);
    ASSERT_TRUE(outcome.ok());
    ASSERT_TRUE(engine.OnExecute(profile, *outcome->instance, ctx).ok());
    engine.OnExecuteDone(*outcome->instance);
    engine.Retire(std::move(outcome->instance), ctx);
  }
  EXPECT_GT(promotion.promoted_chunks(), 0u);
  EXPECT_GT(cxl.used_bytes(), cxl_before);
  // Templates now map (at least partly) to CXL.
  uint64_t cxl_pages = 0;
  api.registry().ForEach([&](MmTemplate& tmpl) {
    cxl_pages += tmpl.page_table().CountPagesIf(
        [](const PteFlags& f) { return f.pool == PoolKind::kCxl; });
  });
  EXPECT_GT(cxl_pages, 0u);
}

TEST(RemapBackingTest, RewritesOnlyIntersectingSlices) {
  PageTable table;
  PteFlags rdma_lazy;
  rdma_lazy.valid = false;
  rdma_lazy.write_protected = true;
  rdma_lazy.pool = PoolKind::kRdma;
  // One run covering pool pages [100, 164); the moved chunk is [116, 132).
  table.MapRange(0, 64, rdma_lazy, 100, 0x9000);
  const PoolPlacement from{PoolKind::kRdma, 116, 16};
  const PoolPlacement to{PoolKind::kCxl, 500, 16};
  EXPECT_EQ(RemapBacking(table, from, to, /*to_byte_addressable=*/true), 16u);
  // Pages before/after the chunk untouched.
  EXPECT_EQ(table.Lookup(10)->flags.pool, PoolKind::kRdma);
  EXPECT_EQ(table.Lookup(40)->flags.pool, PoolKind::kRdma);
  // The slice moved, with backing and content progression intact.
  auto moved = table.Lookup(20);
  ASSERT_TRUE(moved.has_value());
  EXPECT_EQ(moved->flags.pool, PoolKind::kCxl);
  EXPECT_TRUE(moved->flags.valid);
  EXPECT_EQ(moved->backing, 500u + 4);  // page 20 = chunk offset 4
  EXPECT_EQ(moved->content, 0x9000u + 20);
}

}  // namespace
}  // namespace trenv
