// Tests for the hot-chunk promotion policy across memory tiers.
#include <gtest/gtest.h>

#include "src/criu/trenv_engine.h"
#include "src/mempool/cxl_pool.h"
#include "src/mempool/promotion.h"
#include "src/mempool/rdma_pool.h"
#include "src/mmtemplate/api.h"
#include "src/simkernel/fault_handler.h"

namespace trenv {
namespace {

class PromotionTest : public ::testing::Test {
 protected:
  PromotionTest() : cxl_(1 * kGiB), rdma_(4 * kGiB), frames_(4 * kGiB), api_(&backends_) {
    backends_.Register(&cxl_);
    backends_.Register(&rdma_);
    tiered_.AddTier(&cxl_);
    tiered_.AddTier(&rdma_);
  }

  // Allocates an n-page chunk in RDMA holding content_base.. and builds a
  // template mapping it at `addr`.
  PoolPlacement MakeColdChunk(MmtId id, Vaddr addr, uint64_t npages, PageContent content) {
    auto base = rdma_.AllocatePages(npages);
    EXPECT_TRUE(base.ok());
    EXPECT_TRUE(rdma_.WriteContent(*base, npages, content).ok());
    EXPECT_TRUE(
        api_.MmtAddMap(id, addr, npages * kPageSize, Protection::ReadWrite(), true, -1, 0).ok());
    EXPECT_TRUE(api_.MmtSetupPt(id, addr, npages * kPageSize, *base, PoolKind::kRdma).ok());
    return PoolPlacement{PoolKind::kRdma, *base, npages};
  }

  CxlPool cxl_;
  RdmaPool rdma_;
  FrameAllocator frames_;
  BackendRegistry backends_;
  TieredPool tiered_;
  MmtApi api_;
};

constexpr Vaddr kAddr = 0x40000000;

TEST_F(PromotionTest, ColdChunkPromotesAfterThreshold) {
  PromotionManager manager(&tiered_, &api_.registry(),
                           PromotionManager::Options{.promote_threshold = 3});
  MmtId id = api_.MmtCreate("fn");
  PoolPlacement cold = MakeColdChunk(id, kAddr, 32, 0x7007);

  manager.RecordAccess(cold, 1);
  EXPECT_TRUE(manager.Sweep().empty());  // below threshold
  manager.RecordAccess(cold, 2);
  auto moves = manager.Sweep();
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].from.kind, PoolKind::kRdma);
  EXPECT_EQ(moves[0].to.kind, PoolKind::kCxl);
  EXPECT_EQ(moves[0].templates_rewritten, 1u);
  EXPECT_GT(moves[0].copy_latency, SimDuration::Zero());
  // Content survived the migration.
  EXPECT_EQ(*cxl_.ReadContent(moves[0].to.base + 5), 0x7007u + 5);
  // Idempotent: nothing left to promote.
  EXPECT_TRUE(manager.Sweep().empty());
  EXPECT_EQ(manager.promoted_chunks(), 1u);
}

TEST_F(PromotionTest, PromotedTemplateServesDirectReads) {
  PromotionManager manager(&tiered_, &api_.registry(),
                           PromotionManager::Options{.promote_threshold = 1});
  MmtId id = api_.MmtCreate("fn");
  PoolPlacement cold = MakeColdChunk(id, kAddr, 16, 0xCAFE);
  manager.RecordAccess(cold, 5);
  ASSERT_EQ(manager.Sweep().size(), 1u);

  // Fresh attach after the sweep: reads are now zero-fault CXL loads.
  MmStruct mm;
  ASSERT_TRUE(api_.MmtAttach(id, &mm).ok());
  FaultHandler kernel(&frames_, &backends_);
  auto outcome = kernel.Access(mm, kAddr + 3 * kPageSize, /*write=*/false);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->kind, AccessKind::kDirectRemote);
  EXPECT_EQ(outcome->content, 0xCAFEu + 3);
  EXPECT_EQ(mm.stats().major_faults, 0u);
}

TEST_F(PromotionTest, AlreadyAttachedTemplatesAreRewrittenToo) {
  PromotionManager manager(&tiered_, &api_.registry(),
                           PromotionManager::Options{.promote_threshold = 1});
  MmtId id = api_.MmtCreate("fn");
  PoolPlacement cold = MakeColdChunk(id, kAddr, 8, 0xBEAD);
  manager.RecordAccess(cold, 9);
  ASSERT_EQ(manager.Sweep().size(), 1u);
  // The TEMPLATE is rewritten; an mm attached before the sweep keeps its
  // lazy RDMA view until re-attached (templates are the unit of sharing).
  auto tmpl = api_.registry().Lookup(id);
  ASSERT_TRUE(tmpl.ok());
  auto pte = (*tmpl)->page_table().Lookup(AddrToVpn(kAddr));
  ASSERT_TRUE(pte.has_value());
  EXPECT_EQ(pte->flags.pool, PoolKind::kCxl);
  EXPECT_TRUE(pte->flags.valid);
}

TEST_F(PromotionTest, HottestFirstAndSweepBounded) {
  PromotionManager manager(
      &tiered_, &api_.registry(),
      PromotionManager::Options{.promote_threshold = 1, .max_promotions_per_sweep = 1});
  MmtId id = api_.MmtCreate("fn");
  PoolPlacement lukewarm = MakeColdChunk(id, kAddr, 8, 0x1);
  PoolPlacement blazing = MakeColdChunk(id, kAddr + kMiB, 8, 0x2);
  manager.RecordAccess(lukewarm, 2);
  manager.RecordAccess(blazing, 50);
  auto moves = manager.Sweep();
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].from.base, blazing.base);  // hottest chosen first
  EXPECT_EQ(manager.tracked_chunks(), 1u);      // lukewarm still tracked
  EXPECT_EQ(manager.Sweep().size(), 1u);        // next sweep picks it up
}

TEST_F(PromotionTest, HotTierChunksNeverTracked) {
  PromotionManager manager(&tiered_, &api_.registry());
  manager.RecordAccess(PoolPlacement{PoolKind::kCxl, 0, 8}, 100);
  EXPECT_EQ(manager.tracked_chunks(), 0u);
}

TEST_F(PromotionTest, FullHotTierLeavesChunkInPlace) {
  // Fill CXL completely so promotion has nowhere to go.
  auto filler = cxl_.AllocatePages(cxl_.capacity_bytes() / kPageSize);
  ASSERT_TRUE(filler.ok());
  PromotionManager manager(&tiered_, &api_.registry(),
                           PromotionManager::Options{.promote_threshold = 1});
  MmtId id = api_.MmtCreate("fn");
  PoolPlacement cold = MakeColdChunk(id, kAddr, 8, 0x3);
  manager.RecordAccess(cold, 10);
  EXPECT_TRUE(manager.Sweep().empty());
  // The template still points at RDMA and still works.
  auto tmpl = api_.registry().Lookup(id);
  auto pte = (*tmpl)->page_table().Lookup(AddrToVpn(kAddr));
  EXPECT_EQ(pte->flags.pool, PoolKind::kRdma);
}

TEST_F(PromotionTest, SweepOnEmptyPoolIsANoOp) {
  // A manager over a tier-less pool must not dereference tier(0): accesses
  // are dropped and sweeps return nothing.
  TieredPool empty;
  PromotionManager manager(&empty, &api_.registry());
  manager.RecordAccess(PoolPlacement{PoolKind::kRdma, 0, 8}, 100);
  EXPECT_EQ(manager.tracked_chunks(), 0u);
  EXPECT_TRUE(manager.Sweep().empty());
}

TEST_F(PromotionTest, AllChunksAlreadyHotPromotesNothing) {
  // With a demotion budget live, hot-tier chunks ARE tracked — but a sweep
  // must never try to promote them further.
  PromotionManager manager(&tiered_, &api_.registry(),
                           PromotionManager::Options{.promote_threshold = 1,
                                                     .hot_tier_budget_pages = 1024});
  manager.RecordAccess(PoolPlacement{PoolKind::kCxl, 0, 8}, 50);
  manager.RecordAccess(PoolPlacement{PoolKind::kCxl, 8, 8}, 50);
  EXPECT_EQ(manager.tracked_chunks(), 2u);
  EXPECT_TRUE(manager.Sweep().empty());  // under budget, nothing to move
  EXPECT_EQ(manager.promoted_chunks(), 0u);
  EXPECT_EQ(manager.demoted_chunks(), 0u);
}

TEST_F(PromotionTest, ZeroPromotionsPerSweepFreezesPlacement) {
  PromotionManager manager(
      &tiered_, &api_.registry(),
      PromotionManager::Options{.promote_threshold = 1, .max_promotions_per_sweep = 0});
  MmtId id = api_.MmtCreate("fn");
  PoolPlacement cold = MakeColdChunk(id, kAddr, 8, 0x4);
  manager.RecordAccess(cold, 100);
  EXPECT_TRUE(manager.Sweep().empty());
  EXPECT_EQ(manager.tracked_chunks(), 1u);  // still eligible next time
  EXPECT_EQ(manager.promoted_chunks(), 0u);
}

TEST_F(PromotionTest, BudgetDrivenDemotionChurnsColdestFirst) {
  PromotionManager manager(&tiered_, &api_.registry(),
                           PromotionManager::Options{.promote_threshold = 1,
                                                     .heat_decay = 0.5,
                                                     .hot_tier_budget_pages = 8,
                                                     .demote_threshold = 2});
  MmtId id = api_.MmtCreate("fn");
  // Two 8-page chunks resident in the hot (CXL) tier, mapped by the template.
  auto MakeHotChunk = [&](Vaddr addr, PageContent content) {
    auto base = cxl_.AllocatePages(8);
    EXPECT_TRUE(base.ok());
    EXPECT_TRUE(cxl_.WriteContent(*base, 8, content).ok());
    EXPECT_TRUE(api_.MmtAddMap(id, addr, 8 * kPageSize, Protection::ReadWrite(), true, -1, 0).ok());
    EXPECT_TRUE(api_.MmtSetupPt(id, addr, 8 * kPageSize, *base, PoolKind::kCxl).ok());
    return PoolPlacement{PoolKind::kCxl, *base, 8};
  };
  PoolPlacement busy = MakeHotChunk(kAddr, 0x10);
  PoolPlacement idle = MakeHotChunk(kAddr + kMiB, 0x20);
  manager.RecordAccess(busy, 10);
  manager.RecordAccess(idle, 1);

  // After decay: busy=5 (above demote_threshold), idle=0 (below). 16 hot
  // pages exceed the 8-page budget, so exactly the idle chunk moves down.
  auto moves = manager.Sweep();
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].from.base, idle.base);
  EXPECT_EQ(moves[0].from.kind, PoolKind::kCxl);
  EXPECT_EQ(moves[0].to.kind, PoolKind::kRdma);
  EXPECT_EQ(moves[0].templates_rewritten, 1u);
  EXPECT_EQ(manager.demoted_chunks(), 1u);
  // Content survived the downward copy.
  EXPECT_EQ(*rdma_.ReadContent(moves[0].to.base + 2), 0x20u + 2);
  // The template's PTEs now point at the lazy RDMA placement.
  auto tmpl = api_.registry().Lookup(id);
  auto pte = (*tmpl)->page_table().Lookup(AddrToVpn(kAddr + kMiB));
  ASSERT_TRUE(pte.has_value());
  EXPECT_EQ(pte->flags.pool, PoolKind::kRdma);
  EXPECT_FALSE(pte->flags.valid);
  // The busy chunk stayed hot and the tier now fits its budget.
  EXPECT_TRUE(manager.Sweep().empty());
}

TEST_F(PromotionTest, DemotedChunkEarnsItsWayBackUp) {
  PromotionManager manager(&tiered_, &api_.registry(),
                           PromotionManager::Options{.promote_threshold = 3,
                                                     .heat_decay = 0.5,
                                                     .hot_tier_budget_pages = 64,
                                                     .demote_threshold = 2});
  MmtId id = api_.MmtCreate("fn");
  PoolPlacement cold = MakeColdChunk(id, kAddr, 16, 0x7A7A);
  manager.RecordAccess(cold, 8);
  auto up = manager.Sweep();
  ASSERT_EQ(up.size(), 1u);
  EXPECT_EQ(up[0].to.kind, PoolKind::kCxl);

  // Idle sweeps decay the chunk to zero heat; shrink the budget by flooding
  // accesses on another hot chunk is unnecessary — just assert the demotion
  // path picks it up once the tier is over budget.
  PromotionManager::Options tight;
  tight.promote_threshold = 3;
  tight.heat_decay = 0.5;
  tight.hot_tier_budget_pages = 8;  // the 16-page chunk no longer fits
  tight.demote_threshold = 2;
  PromotionManager tight_manager(&tiered_, &api_.registry(), tight);
  tight_manager.RecordAccess(PoolPlacement{PoolKind::kCxl, up[0].to.base, 16}, 1);
  auto down = tight_manager.Sweep();  // decayed heat 0 < 2, over budget
  ASSERT_EQ(down.size(), 1u);
  EXPECT_EQ(down[0].to.kind, PoolKind::kRdma);
  // Round trip preserved the content and the template stayed attached.
  EXPECT_EQ(*rdma_.ReadContent(down[0].to.base + 7), 0x7A7Au + 7);
  auto tmpl = api_.registry().Lookup(id);
  auto pte = (*tmpl)->page_table().Lookup(AddrToVpn(kAddr));
  ASSERT_TRUE(pte.has_value());
  EXPECT_EQ(pte->flags.pool, PoolKind::kRdma);
}

TEST(EnginePromotionTest, TieredEngineMigratesHotFunctionToCxl) {
  // A T-Tiered engine with promotion enabled: a function whose image landed
  // in RDMA gets pulled into CXL after enough executions.
  CxlPool cxl(8 * kGiB);
  RdmaPool rdma(8 * kGiB);
  BackendRegistry backends;
  backends.Register(&cxl);
  backends.Register(&rdma);
  TieredPool tiered;
  tiered.AddTier(&cxl);
  tiered.AddTier(&rdma);
  SnapshotDedupStore dedup(&tiered);
  SandboxFactory factory(std::make_shared<FsLayer>("base"));
  SandboxPool pool;
  MmtApi api(&backends);
  PromotionManager promotion(&tiered, &api.registry(),
                             PromotionManager::Options{.promote_threshold = 3,
                                                       .max_promotions_per_sweep = 64});
  TrEnvEngine engine(&factory, &pool, &api, &dedup);
  engine.EnablePromotion(&promotion, /*interval=*/4);

  FunctionProfile profile;
  profile.name = "hot-fn";
  profile.language = "python";
  profile.image_bytes = 16 * kMiB;
  profile.threads = 4;
  ASSERT_TRUE(engine.Prepare(profile).ok());
  FrameAllocator frames(8 * kGiB);
  PidAllocator pids;
  RestoreContext ctx;
  ctx.frames = &frames;
  ctx.backends = &backends;
  ctx.pids = &pids;

  const uint64_t cxl_before = cxl.used_bytes();
  // Execute repeatedly; sweeps run every 4 executions.
  for (int i = 0; i < 12; ++i) {
    auto outcome = engine.Restore(profile, ctx);
    ASSERT_TRUE(outcome.ok());
    ASSERT_TRUE(engine.OnExecute(profile, *outcome->instance, ctx).ok());
    engine.OnExecuteDone(*outcome->instance);
    engine.Retire(std::move(outcome->instance), ctx);
  }
  EXPECT_GT(promotion.promoted_chunks(), 0u);
  EXPECT_GT(cxl.used_bytes(), cxl_before);
  // Templates now map (at least partly) to CXL.
  uint64_t cxl_pages = 0;
  api.registry().ForEach([&](MmTemplate& tmpl) {
    cxl_pages += tmpl.page_table().CountPagesIf(
        [](const PteFlags& f) { return f.pool == PoolKind::kCxl; });
  });
  EXPECT_GT(cxl_pages, 0u);
}

TEST(RemapBackingTest, RewritesOnlyIntersectingSlices) {
  PageTable table;
  PteFlags rdma_lazy;
  rdma_lazy.valid = false;
  rdma_lazy.write_protected = true;
  rdma_lazy.pool = PoolKind::kRdma;
  // One run covering pool pages [100, 164); the moved chunk is [116, 132).
  table.MapRange(0, 64, rdma_lazy, 100, 0x9000);
  const PoolPlacement from{PoolKind::kRdma, 116, 16};
  const PoolPlacement to{PoolKind::kCxl, 500, 16};
  EXPECT_EQ(RemapBacking(table, from, to, /*to_byte_addressable=*/true), 16u);
  // Pages before/after the chunk untouched.
  EXPECT_EQ(table.Lookup(10)->flags.pool, PoolKind::kRdma);
  EXPECT_EQ(table.Lookup(40)->flags.pool, PoolKind::kRdma);
  // The slice moved, with backing and content progression intact.
  auto moved = table.Lookup(20);
  ASSERT_TRUE(moved.has_value());
  EXPECT_EQ(moved->flags.pool, PoolKind::kCxl);
  EXPECT_TRUE(moved->flags.valid);
  EXPECT_EQ(moved->backing, 500u + 4);  // page 20 = chunk offset 4
  EXPECT_EQ(moved->content, 0x9000u + 20);
}

}  // namespace
}  // namespace trenv
