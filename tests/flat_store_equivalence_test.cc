// Bitwise equivalence of the sorted-vector hot-path stores against the
// original std::map implementations (tests/reference_stores.h). Randomized
// operation sequences — the same seeded stream applied to both stores — must
// leave bit-identical observable state after every step: run boundaries and
// every per-run field, lookups, removal counts, page/extent counts, and
// allocator placement decisions. This is the acceptance bar for the flat
// rewrite: not "equivalent behavior" but the same splits, the same merges,
// the same first-fit choices.
#include <gtest/gtest.h>

#include <optional>
#include <tuple>
#include <vector>

#include "src/common/rng.h"
#include "src/mempool/backend.h"
#include "src/mempool/block_allocator.h"
#include "src/simkernel/page_table.h"
#include "tests/reference_stores.h"

namespace trenv {
namespace {

// ---------------------------------------------------------------------------
// PageTable
// ---------------------------------------------------------------------------

struct RunDump {
  Vpn vpn;
  uint64_t npages;
  PteFlags flags;
  uint64_t backing;
  PageContent content;
  bool constant;

  bool operator==(const RunDump& o) const {
    return vpn == o.vpn && npages == o.npages && flags == o.flags && backing == o.backing &&
           content == o.content && constant == o.constant;
  }
};

template <typename Table>
std::vector<RunDump> DumpTable(const Table& table) {
  std::vector<RunDump> out;
  table.ForEachRun([&](Vpn vpn, const PteRun& run) {
    out.push_back({vpn, run.npages, run.flags, run.backing_base, run.content_base,
                   run.constant_content});
  });
  return out;
}

PteFlags FlagsVariant(uint64_t v) {
  PteFlags f;
  switch (v % 4) {
    case 0:
      f.valid = true;
      f.pool = PoolKind::kLocalDram;
      break;
    case 1:
      f.valid = true;
      f.write_protected = true;
      f.pool = PoolKind::kCxl;
      break;
    case 2:
      f.valid = false;
      f.pool = PoolKind::kRdma;
      break;
    default:
      f.valid = false;
      f.write_protected = true;
      f.pool = PoolKind::kNas;
      break;
  }
  return f;
}

void ExpectSameLookup(const PageTable& pt, const ref::RefPageTable& rt, Vpn vpn) {
  const std::optional<PteView> a = pt.Lookup(vpn);
  const std::optional<PteView> b = rt.Lookup(vpn);
  ASSERT_EQ(a.has_value(), b.has_value()) << "vpn " << vpn;
  if (a.has_value()) {
    EXPECT_TRUE(a->flags == b->flags) << "vpn " << vpn;
    EXPECT_EQ(a->backing, b->backing) << "vpn " << vpn;
    EXPECT_EQ(a->content, b->content) << "vpn " << vpn;
  }
}

void ExpectSameTable(const PageTable& pt, const ref::RefPageTable& rt) {
  EXPECT_EQ(pt.run_count(), rt.run_count());
  EXPECT_EQ(pt.mapped_pages(), rt.mapped_pages());
  const std::vector<RunDump> a = DumpTable(pt);
  const std::vector<RunDump> b = DumpTable(rt);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i] == b[i]) << "run " << i << " differs (vpn " << a[i].vpn << " vs "
                              << b[i].vpn << ")";
  }
}

TEST(FlatStoreEquivalenceTest, PageTableRandomizedOps) {
  constexpr Vpn kSpace = 4096;
  for (uint64_t seed : {11u, 29u, 47u}) {
    Rng rng(seed);
    PageTable pt;
    ref::RefPageTable rt;
    for (int step = 0; step < 4000; ++step) {
      const Vpn vpn = rng.NextBounded(kSpace);
      const uint64_t npages = 1 + rng.NextBounded(256);
      switch (rng.NextBounded(6)) {
        case 0:
        case 1: {  // map: weighted up, it drives the splits and merges
          const PteFlags flags = FlagsVariant(rng.NextU64());
          const bool constant = rng.NextBool(0.2);
          const uint64_t backing = rng.NextBool(0.3) ? kNoBacking : rng.NextBounded(1 << 20);
          const PageContent content = rng.NextBounded(1 << 20);
          pt.MapRange(vpn, npages, flags, backing, content, constant);
          rt.MapRange(vpn, npages, flags, backing, content, constant);
          break;
        }
        case 2: {
          EXPECT_EQ(pt.UnmapRange(vpn, npages), rt.UnmapRange(vpn, npages));
          break;
        }
        case 3: {
          pt.ProtectRange(vpn, npages);
          rt.ProtectRange(vpn, npages);
          break;
        }
        case 4: {
          ExpectSameLookup(pt, rt, vpn);
          break;
        }
        default: {  // clipped window walk
          std::vector<RunDump> a;
          std::vector<RunDump> b;
          pt.ForEachRunIn(vpn, npages, [&](Vpn v, const PteRun& run) {
            a.push_back({v, run.npages, run.flags, run.backing_base, run.content_base,
                         run.constant_content});
          });
          rt.ForEachRunIn(vpn, npages, [&](Vpn v, const PteRun& run) {
            b.push_back({v, run.npages, run.flags, run.backing_base, run.content_base,
                         run.constant_content});
          });
          ASSERT_EQ(a.size(), b.size());
          for (size_t i = 0; i < a.size(); ++i) {
            EXPECT_TRUE(a[i] == b[i]);
          }
          break;
        }
      }
      if (step % 64 == 0) {
        ExpectSameTable(pt, rt);
        EXPECT_EQ(pt.CountPagesIf([](const PteFlags& f) { return f.remote(); }),
                  rt.CountPagesIf([](const PteFlags& f) { return f.remote(); }));
        EXPECT_EQ(pt.CountPagesIf([](const PteFlags& f) { return f.valid; }),
                  rt.CountPagesIf([](const PteFlags& f) { return f.valid; }));
      }
      if (HasFatalFailure()) {
        FAIL() << "diverged at seed " << seed << " step " << step;
      }
    }
    ExpectSameTable(pt, rt);
    for (Vpn v = 0; v < kSpace; v += 7) {
      ExpectSameLookup(pt, rt, v);
    }
  }
}

TEST(FlatStoreEquivalenceTest, PageTableCloneFrom) {
  Rng rng(5);
  PageTable src_pt;
  ref::RefPageTable src_rt;
  for (int i = 0; i < 200; ++i) {
    const Vpn vpn = rng.NextBounded(2048);
    const uint64_t npages = 1 + rng.NextBounded(64);
    const PteFlags flags = FlagsVariant(rng.NextU64());
    const uint64_t backing = rng.NextBool(0.5) ? kNoBacking : rng.NextBounded(1 << 16);
    src_pt.MapRange(vpn, npages, flags, backing, i * 1000);
    src_rt.MapRange(vpn, npages, flags, backing, i * 1000);
  }
  // Clone into empty (the mmt_attach metadata-copy fast path).
  PageTable fresh_pt;
  ref::RefPageTable fresh_rt;
  fresh_pt.CloneFrom(src_pt);
  fresh_rt.CloneFrom(src_rt);
  ExpectSameTable(fresh_pt, fresh_rt);
  // Clone over existing state (the overlay path).
  PageTable over_pt;
  ref::RefPageTable over_rt;
  PteFlags local = FlagsVariant(0);
  over_pt.MapRange(100, 900, local, kNoBacking, 7);
  over_rt.MapRange(100, 900, local, kNoBacking, 7);
  over_pt.CloneFrom(src_pt);
  over_rt.CloneFrom(src_rt);
  ExpectSameTable(over_pt, over_rt);
}

// ---------------------------------------------------------------------------
// ContentMap
// ---------------------------------------------------------------------------

void ExpectSameContent(const ContentMap& cm, const ref::RefContentMap& rm) {
  EXPECT_EQ(cm.stored_pages(), rm.stored_pages());
  EXPECT_EQ(cm.run_count(), rm.run_count());
  std::vector<std::tuple<PoolOffset, uint64_t, PageContent>> a;
  cm.ForEachRun([&](PoolOffset base, uint64_t npages, PageContent content) {
    a.emplace_back(base, npages, content);
  });
  EXPECT_EQ(a, rm.DumpRuns());
}

TEST(FlatStoreEquivalenceTest, ContentMapRandomizedOps) {
  constexpr PoolOffset kSpace = 2048;
  for (uint64_t seed : {3u, 17u, 71u}) {
    Rng rng(seed);
    ContentMap cm;
    ref::RefContentMap rm;
    for (int step = 0; step < 4000; ++step) {
      const PoolOffset page = rng.NextBounded(kSpace);
      const uint64_t npages = 1 + rng.NextBounded(128);
      switch (rng.NextBounded(4)) {
        case 0:
        case 1: {
          const PageContent content = rng.NextBounded(1 << 20);
          cm.Write(page, npages, content);
          rm.Write(page, npages, content);
          break;
        }
        case 2: {
          cm.Erase(page, npages);
          rm.Erase(page, npages);
          break;
        }
        default: {
          const Result<PageContent> a = cm.Read(page);
          const Result<PageContent> b = rm.Read(page);
          ASSERT_EQ(a.ok(), b.ok()) << "page " << page;
          if (a.ok()) {
            EXPECT_EQ(*a, *b) << "page " << page;
          }
          break;
        }
      }
      if (step % 64 == 0) {
        ExpectSameContent(cm, rm);
      }
      if (HasFatalFailure()) {
        FAIL() << "diverged at seed " << seed << " step " << step;
      }
    }
    ExpectSameContent(cm, rm);
  }
}

// ---------------------------------------------------------------------------
// BlockAllocator
// ---------------------------------------------------------------------------

void ExpectSameAllocator(const BlockAllocator& ba, const ref::RefBlockAllocator& ra) {
  EXPECT_EQ(ba.used_pages(), ra.used_pages());
  EXPECT_EQ(ba.free_pages(), ra.free_pages());
  EXPECT_EQ(ba.LargestFreeExtent(), ra.LargestFreeExtent());
  EXPECT_EQ(ba.free_extent_count(), ra.free_extent_count());
  std::vector<std::pair<PoolOffset, uint64_t>> a;
  ba.ForEachFreeExtent([&](PoolOffset base, uint64_t len) { a.emplace_back(base, len); });
  EXPECT_EQ(a, ra.DumpFreeList());
}

TEST(FlatStoreEquivalenceTest, BlockAllocatorRandomizedChurn) {
  constexpr uint64_t kTotal = 1 << 16;
  for (uint64_t seed : {7u, 23u, 59u}) {
    Rng rng(seed);
    BlockAllocator ba(kTotal);
    ref::RefBlockAllocator ra(kTotal);
    std::vector<std::pair<PoolOffset, uint64_t>> live;
    for (int step = 0; step < 4000; ++step) {
      if (live.empty() || rng.NextBool(0.55)) {
        const uint64_t n = 1 + rng.NextBounded(512);
        const Result<PoolOffset> a = ba.Allocate(n);
        const Result<PoolOffset> b = ra.Allocate(n);
        ASSERT_EQ(a.ok(), b.ok()) << "step " << step;
        if (a.ok()) {
          // First-fit must pick the identical extent.
          ASSERT_EQ(*a, *b) << "step " << step;
          live.emplace_back(*a, n);
        }
      } else {
        const size_t idx = rng.NextBounded(live.size());
        const auto [base, n] = live[idx];
        EXPECT_TRUE(ba.Free(base, n).ok());
        EXPECT_TRUE(ra.Free(base, n).ok());
        live[idx] = live.back();
        live.pop_back();
      }
      if (step % 64 == 0) {
        ExpectSameAllocator(ba, ra);
      }
      if (HasFatalFailure()) {
        FAIL() << "diverged at seed " << seed << " step " << step;
      }
    }
    // Double frees rejected identically, with no state change.
    if (!live.empty()) {
      const auto [base, n] = live.front();
      EXPECT_TRUE(ba.Free(base, n).ok());
      EXPECT_TRUE(ra.Free(base, n).ok());
      EXPECT_FALSE(ba.Free(base, n).ok());
      EXPECT_FALSE(ra.Free(base, n).ok());
    }
    ExpectSameAllocator(ba, ra);
  }
}

}  // namespace
}  // namespace trenv
