// Tests for function profiles, the execution model, and the working-set
// page-run store.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/cost_model.h"
#include "src/runtime/execution_model.h"
#include "src/runtime/working_set.h"

namespace trenv {
namespace {

TEST(PageRunSetTest, StartsEmpty) {
  PageRunSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.pages(), 0u);
  EXPECT_EQ(set.run_count(), 0u);
  EXPECT_EQ(set.OverlapPages(0, 1000), 0u);
  set.Add(100, 0);  // zero-length add is a no-op
  EXPECT_TRUE(set.empty());
}

TEST(PageRunSetTest, DisjointRunsStaySorted) {
  PageRunSet set;
  set.Add(300, 10);
  set.Add(100, 10);
  set.Add(200, 10);
  EXPECT_EQ(set.run_count(), 3u);
  EXPECT_EQ(set.pages(), 30u);
  const std::vector<PageRun>& runs = set.runs();
  EXPECT_EQ(runs[0].vpn, 100u);
  EXPECT_EQ(runs[1].vpn, 200u);
  EXPECT_EQ(runs[2].vpn, 300u);
}

TEST(PageRunSetTest, OverlappingAndAbuttingRunsMerge) {
  PageRunSet set;
  set.Add(100, 10);
  set.Add(110, 10);  // abuts -> one run [100, 120)
  EXPECT_EQ(set.run_count(), 1u);
  EXPECT_EQ(set.pages(), 20u);
  set.Add(105, 30);  // overlaps -> [100, 135)
  EXPECT_EQ(set.run_count(), 1u);
  EXPECT_EQ(set.pages(), 35u);
  // Re-adding a covered range changes nothing (recording is idempotent).
  set.Add(100, 35);
  EXPECT_EQ(set.run_count(), 1u);
  EXPECT_EQ(set.pages(), 35u);
}

TEST(PageRunSetTest, BridgingRunSplicesItsNeighbors) {
  PageRunSet set;
  set.Add(100, 10);
  set.Add(200, 10);
  set.Add(300, 10);
  set.Add(108, 195);  // covers the gap and both inner runs -> [100, 310)
  EXPECT_EQ(set.run_count(), 1u);
  EXPECT_EQ(set.pages(), 210u);
  EXPECT_EQ(set.runs()[0].vpn, 100u);
  EXPECT_EQ(set.runs()[0].npages, 210u);
}

TEST(PageRunSetTest, OverlapPagesClipsAtBothEnds) {
  PageRunSet set;
  set.Add(100, 50);   // [100, 150)
  set.Add(200, 50);   // [200, 250)
  EXPECT_EQ(set.OverlapPages(0, 100), 0u);
  EXPECT_EQ(set.OverlapPages(100, 50), 50u);
  EXPECT_EQ(set.OverlapPages(120, 100), 30u + 20u);  // tail of 1st + head of 2nd
  EXPECT_EQ(set.OverlapPages(0, 10000), 100u);
  EXPECT_EQ(set.OverlapPages(150, 50), 0u);  // exactly the gap
}

TEST(WorkingSetProfileTest, TotalsSumAcrossProcesses) {
  WorkingSetProfile ws;
  ws.processes.resize(2);
  ws.processes[0].Add(100, 10);
  ws.processes[0].Add(300, 5);
  ws.processes[1].Add(100, 20);  // same vpns, distinct process
  EXPECT_EQ(ws.TotalPages(), 35u);
  EXPECT_EQ(ws.TotalRuns(), 3u);
  EXPECT_FALSE(ws.complete);
}

TEST(FunctionProfileTest, TableFourMatchesPaper) {
  const auto fns = Table4Functions();
  ASSERT_EQ(fns.size(), 10u);
  // Spot-check the Table 4 columns.
  const FunctionProfile* ir = FindTable4Function("IR");
  ASSERT_NE(ir, nullptr);
  EXPECT_EQ(ir->language, "python");
  EXPECT_NEAR(static_cast<double>(ir->image_bytes) / static_cast<double>(kMiB), 855, 1);
  EXPECT_EQ(ir->threads, 141u);
  const FunctionProfile* pr = FindTable4Function("PR");
  EXPECT_EQ(pr->threads, 395u);
  const FunctionProfile* cr = FindTable4Function("CR");
  EXPECT_EQ(cr->language, "nodejs");
  EXPECT_EQ(FindTable4Function("nope"), nullptr);
}

TEST(FunctionProfileTest, ReadOnlyRatiosSpanPaperRange) {
  double lo = 1.0;
  double hi = 0.0;
  for (const auto& fn : Table4Functions()) {
    const double ratio = fn.pages.ReadOnlyRatio();
    lo = std::min(lo, ratio);
    hi = std::max(hi, ratio);
    EXPECT_GT(ratio, 0.0) << fn.name;
    EXPECT_LT(ratio, 1.0) << fn.name;
  }
  // Fig 10: 24% (IFR) to 90% (IR).
  EXPECT_LT(lo, 0.30);
  EXPECT_GT(hi, 0.85);
}

TEST(FunctionProfileTest, FractionsAreSane) {
  for (const auto& fn : Table4Functions()) {
    EXPECT_GT(fn.pages.read_fraction, 0.0) << fn.name;
    EXPECT_LE(fn.pages.read_fraction, 1.0) << fn.name;
    EXPECT_GT(fn.pages.write_fraction, 0.0) << fn.name;
    EXPECT_LE(fn.pages.write_fraction, 1.0) << fn.name;
    EXPECT_GT(fn.pages.working_set_fraction, 0.0) << fn.name;
    EXPECT_LE(fn.pages.working_set_fraction, 1.0) << fn.name;
    EXPECT_GT(fn.exec_cpu, SimDuration::Zero()) << fn.name;
    EXPECT_GE(fn.bootstrap, cost::kBootstrapFloor) << fn.name;
  }
}

TEST(ExecutionModelTest, NoiseIsUnitMean) {
  ExecutionModel model(42);
  FunctionProfile profile;
  profile.exec_cpu = SimDuration::Millis(100);
  profile.exec_noise_cv = 0.1;
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    sum += model.Plan(profile, ExecutionOverheads{}).cpu_work.millis();
  }
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(ExecutionModelTest, ZeroCvIsDeterministic) {
  ExecutionModel model(1);
  FunctionProfile profile;
  profile.exec_cpu = SimDuration::Millis(50);
  profile.exec_noise_cv = 0.0;
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(model.Plan(profile, ExecutionOverheads{}).cpu_work.millis(), 50.0);
  }
}

TEST(ExecutionModelTest, OverheadsComposeCorrectly) {
  ExecutionModel model(2);
  FunctionProfile profile;
  profile.exec_cpu = SimDuration::Millis(100);
  profile.exec_io = SimDuration::Millis(20);
  profile.exec_noise_cv = 0.0;
  ExecutionOverheads overheads;
  overheads.cpu_multiplier = 1.5;
  overheads.added_cpu = SimDuration::Millis(10);
  overheads.added_latency = SimDuration::Millis(7);
  const ExecutionPlan plan = model.Plan(profile, overheads);
  EXPECT_DOUBLE_EQ(plan.cpu_work.millis(), 160.0);  // 100*1.5 + 10
  EXPECT_DOUBLE_EQ(plan.io_wait.millis(), 20.0);
  EXPECT_DOUBLE_EQ(plan.fault_latency.millis(), 7.0);
}

TEST(ExecutionModelTest, CxlMultiplierMatchesPaperAnchors) {
  // DH/IR nearly double; the rest gain ~10% (section 9.2.1).
  EXPECT_NEAR(ExecutionModel::CxlCpuMultiplier(*FindTable4Function("DH")), 1.9, 0.05);
  EXPECT_NEAR(ExecutionModel::CxlCpuMultiplier(*FindTable4Function("IR")), 1.85, 0.05);
  EXPECT_NEAR(ExecutionModel::CxlCpuMultiplier(*FindTable4Function("CH")), 1.07, 0.05);
  EXPECT_NEAR(ExecutionModel::CxlCpuMultiplier(*FindTable4Function("JS")), 1.10, 0.05);
}

}  // namespace
}  // namespace trenv
