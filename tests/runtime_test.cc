// Tests for function profiles and the execution model.
#include <gtest/gtest.h>

#include "src/common/cost_model.h"
#include "src/runtime/execution_model.h"

namespace trenv {
namespace {

TEST(FunctionProfileTest, TableFourMatchesPaper) {
  const auto fns = Table4Functions();
  ASSERT_EQ(fns.size(), 10u);
  // Spot-check the Table 4 columns.
  const FunctionProfile* ir = FindTable4Function("IR");
  ASSERT_NE(ir, nullptr);
  EXPECT_EQ(ir->language, "python");
  EXPECT_NEAR(static_cast<double>(ir->image_bytes) / static_cast<double>(kMiB), 855, 1);
  EXPECT_EQ(ir->threads, 141u);
  const FunctionProfile* pr = FindTable4Function("PR");
  EXPECT_EQ(pr->threads, 395u);
  const FunctionProfile* cr = FindTable4Function("CR");
  EXPECT_EQ(cr->language, "nodejs");
  EXPECT_EQ(FindTable4Function("nope"), nullptr);
}

TEST(FunctionProfileTest, ReadOnlyRatiosSpanPaperRange) {
  double lo = 1.0;
  double hi = 0.0;
  for (const auto& fn : Table4Functions()) {
    const double ratio = fn.pages.ReadOnlyRatio();
    lo = std::min(lo, ratio);
    hi = std::max(hi, ratio);
    EXPECT_GT(ratio, 0.0) << fn.name;
    EXPECT_LT(ratio, 1.0) << fn.name;
  }
  // Fig 10: 24% (IFR) to 90% (IR).
  EXPECT_LT(lo, 0.30);
  EXPECT_GT(hi, 0.85);
}

TEST(FunctionProfileTest, FractionsAreSane) {
  for (const auto& fn : Table4Functions()) {
    EXPECT_GT(fn.pages.read_fraction, 0.0) << fn.name;
    EXPECT_LE(fn.pages.read_fraction, 1.0) << fn.name;
    EXPECT_GT(fn.pages.write_fraction, 0.0) << fn.name;
    EXPECT_LE(fn.pages.write_fraction, 1.0) << fn.name;
    EXPECT_GT(fn.pages.working_set_fraction, 0.0) << fn.name;
    EXPECT_LE(fn.pages.working_set_fraction, 1.0) << fn.name;
    EXPECT_GT(fn.exec_cpu, SimDuration::Zero()) << fn.name;
    EXPECT_GE(fn.bootstrap, cost::kBootstrapFloor) << fn.name;
  }
}

TEST(ExecutionModelTest, NoiseIsUnitMean) {
  ExecutionModel model(42);
  FunctionProfile profile;
  profile.exec_cpu = SimDuration::Millis(100);
  profile.exec_noise_cv = 0.1;
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    sum += model.Plan(profile, ExecutionOverheads{}).cpu_work.millis();
  }
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(ExecutionModelTest, ZeroCvIsDeterministic) {
  ExecutionModel model(1);
  FunctionProfile profile;
  profile.exec_cpu = SimDuration::Millis(50);
  profile.exec_noise_cv = 0.0;
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(model.Plan(profile, ExecutionOverheads{}).cpu_work.millis(), 50.0);
  }
}

TEST(ExecutionModelTest, OverheadsComposeCorrectly) {
  ExecutionModel model(2);
  FunctionProfile profile;
  profile.exec_cpu = SimDuration::Millis(100);
  profile.exec_io = SimDuration::Millis(20);
  profile.exec_noise_cv = 0.0;
  ExecutionOverheads overheads;
  overheads.cpu_multiplier = 1.5;
  overheads.added_cpu = SimDuration::Millis(10);
  overheads.added_latency = SimDuration::Millis(7);
  const ExecutionPlan plan = model.Plan(profile, overheads);
  EXPECT_DOUBLE_EQ(plan.cpu_work.millis(), 160.0);  // 100*1.5 + 10
  EXPECT_DOUBLE_EQ(plan.io_wait.millis(), 20.0);
  EXPECT_DOUBLE_EQ(plan.fault_latency.millis(), 7.0);
}

TEST(ExecutionModelTest, CxlMultiplierMatchesPaperAnchors) {
  // DH/IR nearly double; the rest gain ~10% (section 9.2.1).
  EXPECT_NEAR(ExecutionModel::CxlCpuMultiplier(*FindTable4Function("DH")), 1.9, 0.05);
  EXPECT_NEAR(ExecutionModel::CxlCpuMultiplier(*FindTable4Function("IR")), 1.85, 0.05);
  EXPECT_NEAR(ExecutionModel::CxlCpuMultiplier(*FindTable4Function("CH")), 1.07, 0.05);
  EXPECT_NEAR(ExecutionModel::CxlCpuMultiplier(*FindTable4Function("JS")), 1.10, 0.05);
}

}  // namespace
}  // namespace trenv
