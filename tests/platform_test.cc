// Integration tests: the full platform loop across all evaluated systems.
#include <gtest/gtest.h>

#include "src/platform/testbed.h"
#include "src/workload/traces.h"

namespace trenv {
namespace {

Schedule SingleInvocation(const std::string& fn) {
  return Schedule{{SimTime::Zero(), fn}};
}

TEST(PlatformTest, SingleInvocationCompletes) {
  Testbed bed(SystemKind::kTrEnvCxl);
  ASSERT_TRUE(bed.DeployTable4Functions().ok());
  ASSERT_TRUE(bed.platform().Run(SingleInvocation("JS")).ok());
  const auto& metrics = bed.platform().metrics().per_function().at("JS");
  EXPECT_EQ(metrics.invocations, 1u);
  EXPECT_EQ(bed.platform().failed_invocations(), 0u);
  EXPECT_EQ(metrics.e2e_ms.count(), 1u);
  EXPECT_GT(metrics.e2e_ms.Mean(), 0.0);
}

TEST(PlatformTest, WarmHitSkipsStartup) {
  Testbed bed(SystemKind::kCriu);
  ASSERT_TRUE(bed.DeployTable4Functions().ok());
  Schedule schedule{{SimTime::Zero(), "JS"},
                    {SimTime::Zero() + SimDuration::Seconds(30), "JS"}};
  ASSERT_TRUE(bed.platform().Run(schedule).ok());
  const auto& metrics = bed.platform().metrics().per_function().at("JS");
  EXPECT_EQ(metrics.invocations, 2u);
  EXPECT_EQ(metrics.warm_starts, 1u);
  EXPECT_EQ(metrics.cold_starts, 1u);
  // Warm start records 0 startup.
  EXPECT_DOUBLE_EQ(metrics.startup_ms.Min(), 0.0);
}

TEST(PlatformTest, KeepAliveExpiresAfterTtl) {
  PlatformConfig config;
  config.keep_alive_ttl = SimDuration::Seconds(60);
  Testbed bed(SystemKind::kCriu, config);
  ASSERT_TRUE(bed.DeployTable4Functions().ok());
  Schedule schedule{{SimTime::Zero(), "JS"},
                    {SimTime::Zero() + SimDuration::Seconds(120), "JS"}};
  ASSERT_TRUE(bed.platform().Run(schedule).ok());
  const auto& metrics = bed.platform().metrics().per_function().at("JS");
  EXPECT_EQ(metrics.warm_starts, 0u);  // TTL expired before the second call
  EXPECT_EQ(metrics.cold_starts, 2u);
}

TEST(PlatformTest, TrEnvSecondStartIsRepurposedAcrossFunctions) {
  PlatformConfig config;
  config.keep_alive_ttl = SimDuration::Seconds(10);
  Testbed bed(SystemKind::kTrEnvCxl, config);
  ASSERT_TRUE(bed.DeployTable4Functions().ok());
  // JS runs, instance expires (TTL), then CR arrives: its sandbox should be
  // repurposed from JS's retired sandbox.
  Schedule schedule{{SimTime::Zero(), "JS"},
                    {SimTime::Zero() + SimDuration::Seconds(30), "CR"}};
  ASSERT_TRUE(bed.platform().Run(schedule).ok());
  const auto& cr = bed.platform().metrics().per_function().at("CR");
  EXPECT_EQ(cr.repurposed_starts, 1u);
  EXPECT_EQ(cr.cold_starts, 0u);
}

TEST(PlatformTest, MemoryCapEvictsIdleInstances) {
  PlatformConfig config;
  config.soft_mem_cap_bytes = 1 * kGiB;  // tight: CRIU instances are heavy
  Testbed bed(SystemKind::kCriu, config);
  ASSERT_TRUE(bed.DeployTable4Functions().ok());
  // Several distinct heavyweight functions keep instances alive.
  Schedule schedule;
  const std::vector<std::string> fns = {"IR", "VP", "IFR", "PR", "JS", "CR"};
  for (size_t i = 0; i < fns.size(); ++i) {
    schedule.push_back({SimTime::Zero() + SimDuration::Seconds(static_cast<int64_t>(10 * i)),
                        fns[i]});
  }
  ASSERT_TRUE(bed.platform().Run(schedule).ok());
  // The cap bounds resident memory (plus at most one in-flight instance).
  EXPECT_LT(bed.platform().metrics().peak_memory_bytes(), 2 * kGiB);
  EXPECT_EQ(bed.platform().failed_invocations(), 0u);
}

TEST(PlatformTest, UnknownFunctionRejected) {
  Testbed bed(SystemKind::kFaasd);
  ASSERT_TRUE(bed.DeployTable4Functions().ok());
  EXPECT_EQ(bed.platform().Submit(SimTime::Zero(), "nope").code(), StatusCode::kNotFound);
}

TEST(PlatformTest, AllSystemsSurviveAMixedBurst) {
  for (SystemKind kind :
       {SystemKind::kFaasd, SystemKind::kCriu, SystemKind::kReapPlus, SystemKind::kFaasnapPlus,
        SystemKind::kTrEnvCxl, SystemKind::kTrEnvRdma, SystemKind::kTrEnvTiered}) {
    Testbed bed(kind);
    ASSERT_TRUE(bed.DeployTable4Functions().ok());
    Schedule schedule;
    const std::vector<std::string> fns = {"DH", "JS", "CR", "IR"};
    for (int burst = 0; burst < 2; ++burst) {
      for (int i = 0; i < 8; ++i) {
        schedule.push_back({SimTime::Zero() + SimDuration::Seconds(burst * 60) +
                                SimDuration::Millis(i * 50),
                            fns[static_cast<size_t>(i) % fns.size()]});
      }
    }
    SortSchedule(schedule);
    ASSERT_TRUE(bed.platform().Run(schedule).ok()) << SystemName(kind);
    EXPECT_EQ(bed.platform().failed_invocations(), 0u) << SystemName(kind);
    EXPECT_EQ(bed.platform().metrics().Aggregate().invocations, 16u) << SystemName(kind);
  }
}

TEST(PlatformTest, TrEnvBeatsCriuOnColdHeavyWorkload) {
  // W1-style: every burst arrives after keep-alive expiry.
  auto run = [](SystemKind kind) {
    PlatformConfig config;
    config.keep_alive_ttl = SimDuration::Seconds(30);
    Testbed bed(kind, config);
    EXPECT_TRUE(bed.DeployTable4Functions().ok());
    const std::vector<std::string> fns = {"DH", "JS", "CR", "JJS"};
    // Warm-up phase, as in the paper's methodology (section 9.1).
    Schedule warmup;
    for (int i = 0; i < 12; ++i) {
      warmup.push_back({SimTime::Zero() + SimDuration::Millis(i * 20),
                        fns[static_cast<size_t>(i) % fns.size()]});
    }
    EXPECT_TRUE(bed.platform().Run(warmup).ok());
    bed.platform().metrics().Clear();
    Schedule schedule;
    for (int burst = 1; burst <= 3; ++burst) {
      for (int i = 0; i < 12; ++i) {
        schedule.push_back({SimTime::Zero() + SimDuration::Seconds(burst * 60) +
                                SimDuration::Millis(i * 20),
                            fns[static_cast<size_t>(i) % fns.size()]});
      }
    }
    SortSchedule(schedule);
    EXPECT_TRUE(bed.platform().Run(schedule).ok());
    return std::make_pair(bed.platform().metrics().Aggregate().e2e_ms.P99(),
                          bed.platform().metrics().per_function().at("DH").e2e_ms.P99());
  };
  const auto [criu_p99, criu_dh_p99] = run(SystemKind::kCriu);
  const auto [trenv_p99, trenv_dh_p99] = run(SystemKind::kTrEnvCxl);
  // Aggregate P99 is floored by CR's ~500 ms execution; short functions see
  // the multi-x wins the paper reports.
  EXPECT_LT(trenv_p99 * 1.5, criu_p99);
  EXPECT_LT(trenv_dh_p99 * 3.0, criu_dh_p99);
}

TEST(PlatformTest, TrEnvUsesLessMemoryThanCriu) {
  auto peak = [](SystemKind kind) {
    Testbed bed(kind);
    EXPECT_TRUE(bed.DeployTable4Functions().ok());
    Schedule schedule;
    // 20 concurrent instances of the big IR function.
    for (int i = 0; i < 20; ++i) {
      schedule.push_back({SimTime::Zero() + SimDuration::Millis(i), "IR"});
    }
    EXPECT_TRUE(bed.platform().Run(schedule).ok());
    return bed.platform().metrics().peak_memory_bytes();
  };
  const uint64_t criu_peak = peak(SystemKind::kCriu);
  const uint64_t trenv_peak = peak(SystemKind::kTrEnvCxl);
  EXPECT_LT(trenv_peak * 2, criu_peak);
}

TEST(PlatformTest, CxlFasterThanRdmaAtP99) {
  auto p99 = [](SystemKind kind) {
    Testbed bed(kind);
    EXPECT_TRUE(bed.DeployTable4Functions().ok());
    Schedule schedule;
    for (int i = 0; i < 30; ++i) {
      schedule.push_back({SimTime::Zero() + SimDuration::Millis(i * 10), "IR"});
    }
    EXPECT_TRUE(bed.platform().Run(schedule).ok());
    return bed.platform().metrics().Aggregate().e2e_ms.P99();
  };
  EXPECT_LT(p99(SystemKind::kTrEnvCxl), p99(SystemKind::kTrEnvRdma));
}

TEST(KeepAlivePoolTest, EvictsLruFirstUnderPressure) {
  std::vector<std::string> evicted;
  KeepAlivePool pool(SimDuration::Minutes(10),
                     [&evicted](std::unique_ptr<FunctionInstance> instance) {
                       evicted.push_back(instance->function());
                     });
  SimTime now;
  pool.Put(std::make_unique<FunctionInstance>("oldest", nullptr), now);
  now += SimDuration::Seconds(1);
  pool.Put(std::make_unique<FunctionInstance>("middle", nullptr), now);
  now += SimDuration::Seconds(1);
  pool.Put(std::make_unique<FunctionInstance>("newest", nullptr), now);
  ASSERT_EQ(pool.size(), 3u);

  // Memory pressure evicts in LRU order, one victim per call.
  EXPECT_TRUE(pool.EvictLru());
  EXPECT_TRUE(pool.EvictLru());
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_EQ(evicted[0], "oldest");
  EXPECT_EQ(evicted[1], "middle");
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.CountFor("newest"), 1u);
  // The survivor is still warm-takeable; the victims are gone.
  EXPECT_EQ(pool.TakeWarm("oldest"), nullptr);
  EXPECT_NE(pool.TakeWarm("newest"), nullptr);
  // Draining an empty pool reports false instead of looping forever.
  EXPECT_FALSE(pool.EvictLru());
}

TEST(KeepAlivePoolTest, ReuseRefreshesLruPosition) {
  std::vector<std::string> evicted;
  KeepAlivePool pool(SimDuration::Minutes(10),
                     [&evicted](std::unique_ptr<FunctionInstance> instance) {
                       evicted.push_back(instance->function());
                     });
  SimTime now;
  pool.Put(std::make_unique<FunctionInstance>("a", nullptr), now);
  now += SimDuration::Seconds(1);
  pool.Put(std::make_unique<FunctionInstance>("b", nullptr), now);
  // Take "a" warm and park it again: "b" becomes the LRU victim.
  auto warm = pool.TakeWarm("a");
  ASSERT_NE(warm, nullptr);
  now += SimDuration::Seconds(1);
  pool.Put(std::move(warm), now);
  EXPECT_TRUE(pool.EvictLru());
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], "b");
}

TEST(KeepAlivePoolTest, DropDiscardsWithoutEvictCallback) {
  // Crash semantics: Drop() must NOT run the evict callback — the node is
  // gone, there is no orderly teardown to perform.
  int evict_calls = 0;
  KeepAlivePool pool(SimDuration::Minutes(10),
                     [&evict_calls](std::unique_ptr<FunctionInstance>) { ++evict_calls; });
  SimTime now;
  pool.Put(std::make_unique<FunctionInstance>("a", nullptr), now);
  pool.Put(std::make_unique<FunctionInstance>("b", nullptr), now);
  pool.Drop();
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(evict_calls, 0);
  EXPECT_EQ(pool.TakeWarm("a"), nullptr);
  // The pool remains usable after a drop.
  pool.Put(std::make_unique<FunctionInstance>("c", nullptr), now);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(KeepAlivePoolTest, SlotReuseAfterEvictThenReRegister) {
  // Evicting every instance of a function frees its arena slots; parking the
  // SAME FunctionId again must reuse those slots with fresh links — stale
  // fn-list or LRU links from the previous tenancy would corrupt both lists.
  int evict_calls = 0;
  KeepAlivePool pool(SimDuration::Minutes(10),
                     [&evict_calls](std::unique_ptr<FunctionInstance>) { ++evict_calls; });
  SimTime now;
  pool.Put(std::make_unique<FunctionInstance>("recycled", nullptr), now);
  pool.Put(std::make_unique<FunctionInstance>("recycled", nullptr), now);
  pool.Put(std::make_unique<FunctionInstance>("bystander", nullptr), now);
  const FunctionId fid = GlobalFunctionInterner().Find("recycled");
  ASSERT_NE(fid, kInvalidFunctionId);
  ASSERT_EQ(pool.CountFor(fid), 2u);

  // Evict both "recycled" instances (LRU order puts them first).
  EXPECT_TRUE(pool.EvictLru());
  EXPECT_TRUE(pool.EvictLru());
  EXPECT_EQ(evict_calls, 2);
  EXPECT_EQ(pool.CountFor(fid), 0u);
  EXPECT_EQ(pool.TakeWarm(fid), nullptr);
  EXPECT_EQ(pool.size(), 1u);

  // Re-register the same FunctionId: the freed slots are reused and the
  // per-function list is rebuilt from scratch.
  now += SimDuration::Seconds(1);
  pool.Put(std::make_unique<FunctionInstance>("recycled", nullptr), now);
  now += SimDuration::Seconds(1);
  pool.Put(std::make_unique<FunctionInstance>("recycled", nullptr), now);
  EXPECT_EQ(pool.CountFor(fid), 2u);
  EXPECT_EQ(pool.size(), 3u);
  // Warm takes drain the rebuilt list MRU-first, leaving the bystander.
  EXPECT_NE(pool.TakeWarm(fid), nullptr);
  EXPECT_NE(pool.TakeWarm(fid), nullptr);
  EXPECT_EQ(pool.TakeWarm(fid), nullptr);
  EXPECT_EQ(pool.CountFor(fid), 0u);
  EXPECT_EQ(pool.CountFor("bystander"), 1u);
  // The LRU list survived the churn: the bystander is still evictable.
  EXPECT_TRUE(pool.EvictLru());
  EXPECT_FALSE(pool.EvictLru());
}

TEST(PlatformTest, SoftMemCapPressureEvictsIdleInstances) {
  // CRIU keeps warm instances fully resident in local DRAM, so the frame
  // allocator directly reflects keep-alive pool occupancy. Probe mid-run
  // (before the keep-alive TTL expiry event drains the pool at idle).
  // A small base cap keeps the clamped pressure cap (scale floors at
  // kSoftMemCapScaleFloor) below one instance's RSS, so the window still
  // drains the whole pool.
  PlatformConfig small_cap;
  small_cap.soft_mem_cap_bytes = 8 * kMiB;
  Testbed bed(SystemKind::kCriu, small_cap);
  ASSERT_TRUE(bed.DeployTable4Functions().ok());
  ServerlessPlatform& platform = bed.platform();
  uint64_t warm_bytes = 0;
  uint64_t pressured_bytes = ~0ull;
  uint64_t relieved_warm_starts = 0;
  platform.scheduler().ScheduleAt(SimTime::Zero() + SimDuration::Seconds(10), [&] {
    warm_bytes = platform.frames().used_bytes();
    // Injected pool pressure: squeeze the cap — every idle instance must be
    // evicted and its DRAM returned.
    platform.SetSoftMemCapScale(0.0);
    pressured_bytes = platform.frames().used_bytes();
    // Lifting the pressure restores normal keep-alive behaviour.
    platform.SetSoftMemCapScale(1.0);
  });
  Schedule schedule{{SimTime::Zero(), "JS"},
                    {SimTime::Zero() + SimDuration::Seconds(20), "JS"}};
  ASSERT_TRUE(platform.Run(schedule).ok());
  relieved_warm_starts = platform.metrics().per_function().at("JS").warm_starts;
  EXPECT_GT(warm_bytes, 0u);
  EXPECT_EQ(pressured_bytes, 0u);
  // The instance parked at t=0 was evicted by the pressure window, so the
  // t=20s invocation cold-starts even though it is well within the TTL.
  EXPECT_EQ(relieved_warm_starts, 0u);
}

TEST(PlatformTest, SoftMemCapScaleClampsAtFloorAndExportsGauge) {
  Testbed bed(SystemKind::kCriu);
  ServerlessPlatform& platform = bed.platform();
  obs::Registry& stats = platform.metrics().registry();
  // A zero (or negative) scale is clamped at the documented floor instead of
  // flushing the pool: the effective cap never reaches zero.
  platform.SetSoftMemCapScale(0.0);
  const double floored = stats.GetGauge("platform.soft_mem_cap_bytes")->value();
  EXPECT_NEAR(floored,
              cost::kSoftMemCapScaleFloor * static_cast<double>(cost::kDefaultSoftMemCap),
              1.0);
  EXPECT_GT(floored, 0.0);
  // Squeezes above the floor apply exactly.
  platform.SetSoftMemCapScale(0.5);
  EXPECT_DOUBLE_EQ(stats.GetGauge("platform.soft_mem_cap_bytes")->value(),
                   0.5 * static_cast<double>(cost::kDefaultSoftMemCap));
  // Lifting the pressure restores the configured cap, and the gauge says so.
  platform.SetSoftMemCapScale(1.0);
  EXPECT_DOUBLE_EQ(stats.GetGauge("platform.soft_mem_cap_bytes")->value(),
                   static_cast<double>(cost::kDefaultSoftMemCap));
}

TEST(PlatformTest, DeterministicAcrossRuns) {
  auto digest = [] {
    Testbed bed(SystemKind::kTrEnvCxl);
    EXPECT_TRUE(bed.DeployTable4Functions().ok());
    Rng rng(7);
    Schedule schedule =
        MakePoissonWorkload({"DH", "JS", "CR"}, 2.0, SimDuration::Seconds(60), 0.5, rng);
    EXPECT_TRUE(bed.platform().Run(schedule).ok());
    const auto agg = bed.platform().metrics().Aggregate();
    return std::make_tuple(agg.invocations, agg.e2e_ms.Mean(), agg.e2e_ms.P99(),
                           bed.platform().metrics().peak_memory_bytes());
  };
  EXPECT_EQ(digest(), digest());
}

}  // namespace
}  // namespace trenv
