// Tests for the continuous pool control plane (src/poolctl/): the gossip
// failure detector's state machine (suspicion, death, false suspicion,
// rejoin), the budgeted continuous rebalancer, admission shedding, dead-read
// failover, hot-shard replica promotion/demotion, and cluster-level chaos
// with zero accepted-invocation loss.
#include <gtest/gtest.h>

#include <vector>

#include "src/fault/fault_schedule.h"
#include "src/mempool/rdma_pool.h"
#include "src/platform/cluster.h"
#include "src/poolctl/control_plane.h"
#include "src/poolctl/membership.h"
#include "src/poolmgr/pool_manager.h"
#include "src/sim/event_scheduler.h"

namespace trenv {
namespace {

using State = GossipMembership::State;

SimTime At(double seconds) { return SimTime::Zero() + SimDuration::FromMicrosF(seconds * 1e6); }

// ------------------------------------------------------- GossipMembership

TEST(MembershipTest, FaultFreeFleetStaysAlive) {
  EventScheduler clock;
  GossipMembership membership(MembershipConfig{}, 4, &clock, nullptr);
  membership.Start(SimTime::Zero());
  clock.RunUntil(At(10.0));
  for (uint32_t n = 0; n < 4; ++n) {
    EXPECT_EQ(membership.state(n), State::kAlive);
    EXPECT_TRUE(membership.InView(n));
  }
  EXPECT_EQ(membership.alive_in_view(), 4u);
  EXPECT_EQ(membership.suspicions(), 0u);
  EXPECT_EQ(membership.deaths(), 0u);
  EXPECT_EQ(membership.epoch(), 0u);
  // 20 ticks in 10s at a 500ms interval, 4 beats each; none lost.
  EXPECT_EQ(membership.heartbeats_sent(), 80u);
  EXPECT_EQ(membership.heartbeats_dropped(), 0u);
  membership.Stop();
  clock.RunUntilIdle();  // nothing pending once stopped
}

TEST(MembershipTest, DeathIsDetectedDeclaredAndRejoined) {
  EventScheduler clock;
  GossipMembership membership(MembershipConfig{}, 4, &clock, nullptr);
  std::vector<GossipMembership::Transition> log;
  membership.SetListener(
      [&log](const GossipMembership::Transition& t) { log.push_back(t); });
  membership.Start(SimTime::Zero());
  clock.RunUntil(At(1.0));  // last beat delivered at t=1.0s
  membership.NodeDown(2);
  // phi = silent intervals / interval: suspect at 3 (t=2.5s), dead at 8
  // (t=5.0s).
  clock.RunUntil(At(2.4));
  EXPECT_EQ(membership.state(2), State::kAlive);
  clock.RunUntil(At(2.6));
  EXPECT_EQ(membership.state(2), State::kSuspect);
  EXPECT_TRUE(membership.InView(2));  // suspects still count as members
  EXPECT_EQ(membership.suspicions(), 1u);
  clock.RunUntil(At(5.1));
  EXPECT_EQ(membership.state(2), State::kDead);
  EXPECT_FALSE(membership.InView(2));
  EXPECT_EQ(membership.alive_in_view(), 3u);
  EXPECT_EQ(membership.deaths(), 1u);
  EXPECT_EQ(membership.false_suspicions(), 0u);  // a true death
  EXPECT_EQ(membership.epoch(), 1u);
  // Detection latency: down at 1.0s, declared at 5.0s.
  ASSERT_EQ(membership.detection_ms().count(), 1u);
  EXPECT_NEAR(membership.detection_ms().Mean(), 4000.0, 1.0);
  // Rejoin: the node must deliver join_beats consecutive beats; one beat
  // only reaches kJoining.
  membership.NodeUp(2);
  clock.RunUntil(At(5.6));
  EXPECT_EQ(membership.state(2), State::kJoining);
  EXPECT_FALSE(membership.InView(2));
  clock.RunUntil(At(6.1));
  EXPECT_EQ(membership.state(2), State::kAlive);
  EXPECT_EQ(membership.rejoins(), 1u);
  EXPECT_EQ(membership.epoch(), 2u);
  membership.Stop();
  // The full state machine walked alive -> suspect -> dead -> joining ->
  // alive, in order.
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0].to, State::kSuspect);
  EXPECT_EQ(log[1].to, State::kDead);
  EXPECT_EQ(log[2].to, State::kJoining);
  EXPECT_EQ(log[3].to, State::kAlive);
  EXPECT_EQ(log[3].from, State::kJoining);
}

TEST(MembershipTest, FlapWindowCausesFalseSuspicionNotDeath) {
  EventScheduler clock;
  GossipMembership membership(MembershipConfig{}, 4, &clock, nullptr);
  // Node 1's beats are eaten by the fabric for [1.0s, 3.5s) — the node
  // itself never goes down.
  membership.SetHeartbeatLoss([](SimTime now, uint32_t node) {
    return node == 1 && now >= At(1.0) && now < At(3.5) ? 1.0 : 0.0;
  });
  membership.Start(SimTime::Zero());
  clock.RunUntil(At(3.0));
  EXPECT_EQ(membership.state(1), State::kSuspect);
  EXPECT_EQ(membership.heartbeats_dropped(), 5u);  // ticks 1.0 .. 3.0
  // The window ends before phi reaches the death threshold: the first beat
  // through recovers the node and the suspicion is charged to the network.
  clock.RunUntil(At(3.6));
  EXPECT_EQ(membership.state(1), State::kAlive);
  EXPECT_EQ(membership.false_suspicions(), 1u);
  EXPECT_EQ(membership.deaths(), 0u);
  EXPECT_EQ(membership.epoch(), 0u);
  EXPECT_EQ(membership.detection_ms().count(), 0u);
  membership.Stop();
}

TEST(MembershipTest, ShortBlipNeverReachesSuspicion) {
  EventScheduler clock;
  GossipMembership membership(MembershipConfig{}, 4, &clock, nullptr);
  membership.Start(SimTime::Zero());
  clock.RunUntil(At(1.1));
  membership.NodeDown(3);
  clock.RunUntil(At(1.9));
  membership.NodeUp(3);  // back before phi accrued to phi_suspect
  clock.RunUntil(At(6.0));
  EXPECT_EQ(membership.state(3), State::kAlive);
  EXPECT_EQ(membership.suspicions(), 0u);
  EXPECT_EQ(membership.deaths(), 0u);
  membership.Stop();
}

// ------------------------------------------- PoolManager continuous policy

ConsolidatedImage TwoChunkImage(uint64_t fp_a, uint64_t fp_b) {
  ConsolidatedImage image;
  PlacedRegion placed;
  placed.chunks.push_back(PlacedChunk{PoolKind::kCxl, 0, 512, fp_a});
  placed.chunks.push_back(PlacedChunk{PoolKind::kCxl, 512, 512, fp_b});
  image.processes.push_back({placed});
  image.total_pages = 1024;
  return image;
}

PoolManagerConfig ContinuousPoolConfig(uint32_t replication, uint32_t pool_nodes = 4) {
  PoolManagerConfig config;
  config.enabled = true;
  config.pool_nodes = pool_nodes;
  config.replication = replication;
  config.lease_ttl = SimDuration::Seconds(10);
  return config;
}

TEST(PoolCtlTest, BackloggedNicShedsColdAttachToNas) {
  RdmaPool fabric(kGiB);
  PoolManager mgr(ContinuousPoolConfig(2), /*worker_nodes=*/2, &fabric, nullptr);
  ContinuousPoolPolicy policy;
  policy.shed_queue_threshold = SimDuration::FromMicrosF(10.0);
  mgr.EnableContinuousControl(policy);
  mgr.RegisterTemplate(0, TwoChunkImage(0xAA, 0xBB));
  mgr.RegisterTemplate(1, TwoChunkImage(0xCC, 0xDD));
  // First cold attach fills worker 0's NIC; the second lands at the same
  // instant behind that backlog and is shed whole to the NAS path.
  const auto first = mgr.Attach(0, 0, SimTime::Zero());
  EXPECT_EQ(first.fetched_pages, 1024u);
  EXPECT_GT(mgr.NicBacklog(0, SimTime::Zero()), policy.shed_queue_threshold);
  const auto shed = mgr.Attach(0, 1, SimTime::Zero());
  EXPECT_FALSE(shed.lease_hit);
  EXPECT_EQ(shed.fetched_pages, 0u);  // no NIC pages: NAS served it
  EXPECT_EQ(mgr.shed_attaches(), 1u);
  EXPECT_EQ(mgr.shed_pages(), 1024u);
  EXPECT_EQ(mgr.nas_fallback_pages(), 1024u);
  // Shed, not dropped: the NAS path is slower than metadata but the lease
  // is granted all the same.
  EXPECT_GT(shed.latency, SimDuration::Zero());
  EXPECT_EQ(mgr.LeaseRefs(0, 1), 1u);
  // Worker 1's NIC is idle: same attach, no shed.
  const auto other = mgr.Attach(1, 1, SimTime::Zero());
  EXPECT_EQ(other.fetched_pages, 1024u);
  EXPECT_EQ(mgr.shed_attaches(), 1u);
}

TEST(PoolCtlTest, DeadReadsSkipToLiveReplica) {
  RdmaPool fabric(kGiB);
  PoolManager mgr(ContinuousPoolConfig(2), /*worker_nodes=*/2, &fabric, nullptr);
  ContinuousPoolPolicy policy;
  policy.spread_reads = false;  // always start at the primary: the dead hop
                                // below is then deterministic
  mgr.EnableContinuousControl(policy);
  mgr.RegisterTemplate(0, TwoChunkImage(0xAA, 0xBB));
  // The primary goes silent but is NOT declared dead: placement keeps it,
  // and a lease-miss read pays one timed-out hop before failing over to the
  // surviving replica.
  const uint32_t down = mgr.ShardReplicas(0).front();
  mgr.OnPoolNodeDown(down);
  const auto attach = mgr.Attach(0, 0, SimTime::Zero());
  EXPECT_EQ(attach.fetched_pages, 1024u);  // still served remotely in full
  EXPECT_GE(mgr.dead_read_hops(), 1u);
  EXPECT_EQ(mgr.leases_revoked(), 0u);
  EXPECT_EQ(mgr.replica_promotions(), 0u);  // no ring surgery happened
  EXPECT_TRUE(mgr.ShardUnderReplicated(0));  // poolctl's restore signal
  mgr.OnPoolNodeUp(down);
  EXPECT_FALSE(mgr.ShardUnderReplicated(0));
}

TEST(PoolCtlTest, AllReplicasDownFallsBackToNas) {
  RdmaPool fabric(kGiB);
  PoolManager mgr(ContinuousPoolConfig(2), /*worker_nodes=*/2, &fabric, nullptr);
  mgr.EnableContinuousControl(ContinuousPoolPolicy{});
  mgr.RegisterTemplate(0, TwoChunkImage(0xAA, 0xBB));
  for (uint32_t n = 0; n < 4; ++n) {
    mgr.OnPoolNodeDown(n);
  }
  // Every listed replica is unreachable and none declared dead: the attach
  // falls back to NAS for every shard — slower, but never dropped and still
  // leased.
  const auto attach = mgr.Attach(0, 0, SimTime::Zero());
  EXPECT_FALSE(attach.lease_hit);
  EXPECT_EQ(attach.fetched_pages, 0u);
  EXPECT_EQ(mgr.nas_fallback_pages(), 1024u);
  EXPECT_EQ(mgr.LeaseRefs(0, 0), 1u);
  EXPECT_GT(attach.latency, SimDuration::Zero());
}

TEST(PoolCtlTest, ReconcileShardHonorsBudgetAndConverges) {
  RdmaPool fabric(kGiB);
  PoolManager mgr(ContinuousPoolConfig(1), /*worker_nodes=*/2, &fabric, nullptr);
  mgr.EnableContinuousControl(ContinuousPoolPolicy{});
  mgr.RegisterTemplate(0, TwoChunkImage(0xAA, 0xBB));
  ASSERT_EQ(mgr.ShardReplicas(0).size(), 1u);
  // Budget below the shard size: nothing moves, not converged.
  const auto starved = mgr.ReconcileShard(0, 2, /*budget_pages=*/100);
  EXPECT_EQ(starved.pages_moved, 0u);
  EXPECT_FALSE(starved.converged);
  EXPECT_EQ(mgr.ShardReplicas(0).size(), 1u);
  // Budget covers the copy: one replica added, converged.
  const auto funded = mgr.ReconcileShard(0, 2, /*budget_pages=*/512);
  EXPECT_EQ(funded.pages_moved, 512u);
  EXPECT_TRUE(funded.converged);
  EXPECT_EQ(mgr.ShardReplicas(0).size(), 2u);
  // Idempotent: reconciling a converged shard moves nothing.
  const auto again = mgr.ReconcileShard(0, 2, /*budget_pages=*/512);
  EXPECT_EQ(again.pages_moved, 0u);
  EXPECT_TRUE(again.converged);
  // Demotion back to the base factor is a free metadata drop.
  const auto demoted = mgr.ReconcileShard(0, 1, /*budget_pages=*/0);
  EXPECT_EQ(demoted.pages_moved, 0u);
  EXPECT_TRUE(demoted.converged);
  EXPECT_EQ(mgr.ShardReplicas(0).size(), 1u);
}

// --------------------------------------------------------- PoolControlPlane

TEST(PoolCtlTest, HotShardGainsExtraReplicasAndDecaysBack) {
  RdmaPool fabric(kGiB);
  auto pool_config = ContinuousPoolConfig(1, /*pool_nodes=*/8);
  pool_config.lease_ttl = SimDuration::Millis(40);  // every round is a miss
  PoolManager mgr(pool_config, /*worker_nodes=*/4, &fabric, nullptr);
  PoolCtlConfig ctl;
  ctl.enabled = true;
  ctl.hot_promote_score = 4;
  ctl.max_extra_replicas = 2;
  PoolControlPlane plane(ctl, &mgr, nullptr, nullptr, nullptr);
  plane.Start(SimTime::Zero());
  mgr.RegisterTemplate(0, TwoChunkImage(0xAA, 0xBB));
  // Hammer the template from every worker: each 100ms round is 4 fresh
  // lease misses, far above the promote threshold per 500ms tick.
  SimTime t = SimTime::Zero();
  for (int round = 1; round <= 30; ++round) {
    t = SimTime::Zero() + SimDuration::Millis(100) * round;
    mgr.clock().RunUntil(t);
    for (uint32_t worker = 0; worker < 4; ++worker) {
      (void)mgr.Attach(worker, 0, t);
    }
  }
  mgr.clock().RunUntil(t + SimDuration::Millis(600));  // one more tick
  EXPECT_GT(plane.hot_promotions(), 0u);
  EXPECT_EQ(plane.ExtraReplicas(0), 2u);
  EXPECT_EQ(plane.ExtraReplicas(1), 2u);
  // The promoted copies are real placements beyond the static factor.
  EXPECT_EQ(mgr.ShardReplicas(0).size(), 3u);
  EXPECT_EQ(mgr.ShardReplicas(1).size(), 3u);
  EXPECT_GT(plane.pages_moved(), 0u);
  // Traffic stops: the decaying score demotes the extras and the reconcile
  // drops them back to the base factor (metadata-only).
  mgr.clock().RunUntil(t + SimDuration::Seconds(6));
  EXPECT_GT(plane.hot_demotions(), 0u);
  EXPECT_EQ(plane.ExtraReplicas(0), 0u);
  EXPECT_EQ(mgr.ShardReplicas(0).size(), 1u);
  EXPECT_EQ(mgr.ShardReplicas(1).size(), 1u);
  plane.Quiesce();
  mgr.clock().RunUntilIdle();
}

// ------------------------------------------------------------ Cluster level

ClusterConfig PoolCtlClusterConfig() {
  ClusterConfig config;
  config.nodes = 4;
  config.dispatch = ClusterConfig::Dispatch::kTemplateLocality;
  config.poolmgr.enabled = true;
  config.poolmgr.pool_nodes = 8;
  config.poolmgr.replication = 2;
  config.poolctl.enabled = true;
  return config;
}

Schedule SpacedSchedule(int count, SimDuration gap, const std::string& function) {
  Schedule schedule;
  for (int i = 0; i < count; ++i) {
    schedule.push_back({SimTime::Zero() + gap * i, function});
  }
  return schedule;
}

TEST(PoolCtlClusterTest, DisabledByDefault) {
  Cluster plain(ClusterConfig{});
  EXPECT_EQ(plain.pool_control(), nullptr);
  ClusterConfig pool_only = PoolCtlClusterConfig();
  pool_only.poolctl.enabled = false;
  Cluster cluster(pool_only);
  EXPECT_NE(cluster.pool_manager(), nullptr);
  EXPECT_EQ(cluster.pool_control(), nullptr);
  EXPECT_FALSE(cluster.pool_manager()->continuous());
}

TEST(PoolCtlClusterTest, CrashIsDeclaredRestoredAndRejoinedWithZeroLoss) {
  ClusterConfig config = PoolCtlClusterConfig();
  // Pool node 1 dies at ~2s and restarts 6s later: the detector needs ~4s
  // of silence to declare it, the rebalancer restores replication, and the
  // rejoin re-admits it — all while invocations keep arriving.
  config.faults.Add(PoolCrashWindow(At(2.0), At(2.1), /*probability=*/1.0,
                                    /*pool_node=*/1,
                                    /*restart_after=*/SimDuration::Seconds(6)));
  // Table4's 859 shards put ~106k pages on the dead node; the restore pass
  // gets ~10 ticks between declaration (~6s) and trace end, so give each
  // tick enough budget to finish re-replicating within the trace.
  config.poolctl.rebalance_budget_pages = 32768;
  Cluster cluster(config);
  ASSERT_TRUE(cluster.DeployTable4Functions().ok());
  ASSERT_TRUE(cluster.Run(SpacedSchedule(36, SimDuration::Millis(300), "JS")).ok());
  ASSERT_NE(cluster.pool_control(), nullptr);
  const GossipMembership& membership = cluster.pool_control()->membership();
  // Zero accepted-invocation loss through death, declaration, and rejoin.
  EXPECT_EQ(cluster.accepted_invocations(), 36u);
  EXPECT_EQ(cluster.TotalInvocations(), 36u);
  EXPECT_GE(membership.deaths(), 1u);
  EXPECT_GE(membership.rejoins(), 1u);
  EXPECT_GE(membership.epoch(), 2u);
  EXPECT_GE(membership.detection_ms().count(), 1u);
  // Replication restored by trace end — earned by the continuous loop, not
  // a drain-time converge.
  EXPECT_EQ(cluster.pool_manager()->UnderReplicatedShards(), 0u);
  EXPECT_GT(cluster.pool_control()->rebalance_ticks(), 0u);
}

TEST(PoolCtlClusterTest, FlapStormCausesFalseSuspicionsWithoutLoss) {
  ClusterConfig config = PoolCtlClusterConfig();
  // Every pool node's heartbeats are eaten for [1s, 4s) — long enough to
  // suspect the whole fleet, short enough that nobody is declared dead.
  config.faults.Add(LinkFaultWindow(FaultDomain::kRdmaFlap, At(1.0), At(4.0),
                                    /*probability=*/1.0));
  Cluster cluster(config);
  ASSERT_TRUE(cluster.DeployTable4Functions().ok());
  ASSERT_TRUE(cluster.Run(SpacedSchedule(16, SimDuration::Millis(300), "JS")).ok());
  ASSERT_NE(cluster.pool_control(), nullptr);
  const GossipMembership& membership = cluster.pool_control()->membership();
  EXPECT_GT(membership.false_suspicions(), 0u);
  EXPECT_EQ(membership.deaths(), 0u);  // nobody was actually down
  EXPECT_EQ(cluster.pool_manager()->leases_revoked(), 0u);
  EXPECT_EQ(cluster.accepted_invocations(), 16u);
  EXPECT_EQ(cluster.TotalInvocations(), 16u);
  EXPECT_EQ(cluster.pool_manager()->UnderReplicatedShards(), 0u);
}

TEST(PoolCtlClusterTest, ContinuousRunsAreDeterministic) {
  const auto fingerprint = [] {
    ClusterConfig config = PoolCtlClusterConfig();
    config.faults.Add(PoolCrashWindow(At(1.0), At(1.5), 1.0, /*pool_node=*/2,
                                      /*restart_after=*/SimDuration::Seconds(5)));
    config.faults.Add(LinkFaultWindow(FaultDomain::kRdmaFlap, At(2.0), At(3.0),
                                      /*probability=*/0.6));
    Cluster cluster(config);
    EXPECT_TRUE(cluster.DeployTable4Functions().ok());
    EXPECT_TRUE(cluster.Run(SpacedSchedule(24, SimDuration::Millis(300), "CR")).ok());
    const PoolManager& mgr = *cluster.pool_manager();
    const GossipMembership& membership = cluster.pool_control()->membership();
    return std::make_tuple(cluster.AggregateMetrics().e2e_ms.Mean(), mgr.remote_fetch_pages(),
                           mgr.lease_hits(), mgr.dead_read_hops(), mgr.nas_fallback_pages(),
                           membership.heartbeats_dropped(), membership.suspicions(),
                           membership.deaths(), membership.rejoins(),
                           cluster.pool_control()->pages_moved(),
                           mgr.attach_ms().Percentile(99));
  };
  EXPECT_EQ(fingerprint(), fingerprint());
}

}  // namespace
}  // namespace trenv
