// System-wide invariant and property tests: the guarantees the paper's
// security discussion (section 8.1) and design sections rest on, checked
// under randomized operation sequences.
#include <gtest/gtest.h>

#include <set>

#include "src/criu/trenv_engine.h"
#include "src/mempool/cxl_pool.h"
#include "src/mempool/rdma_pool.h"
#include "src/platform/testbed.h"
#include "src/workload/traces.h"

namespace trenv {
namespace {

std::vector<std::string> bench_names() {
  std::vector<std::string> names;
  for (const auto& fn : Table4Functions()) {
    names.push_back(fn.name);
  }
  return names;
}

// ---------------------------------------------------------------------------
// Security invariants (section 8.1).
// ---------------------------------------------------------------------------

TEST(SecurityInvariantTest, RepurposedSandboxLeaksNothing) {
  SandboxFactory factory(std::make_shared<FsLayer>("base"));
  auto cold = factory.CreateCold("tenant-a", std::make_shared<UnionFs>(), CgroupLimits{}, 0,
                                 /*use_clone_into=*/true);
  Sandbox& sandbox = *cold.sandbox;

  // Tenant A leaves every kind of residue behind.
  ASSERT_TRUE(sandbox.rootfs()->Write("/tmp/credentials", 4096, 0x5EC12E7).ok());
  ASSERT_TRUE(sandbox.function_overlay()->Write("/app/cache.bin", 1 * kMiB, 0xCAC4E).ok());
  sandbox.netns().OpenConnection(42);
  sandbox.cgroup().AddProcess(1234);

  sandbox.Cleanse(/*process_count=*/2);
  auto repurposed = sandbox.Repurpose("tenant-b", std::make_shared<UnionFs>(), CgroupLimits{});
  ASSERT_TRUE(repurposed.ok());

  // Nothing of tenant A survives into tenant B's view.
  EXPECT_FALSE(sandbox.rootfs()->Exists("/tmp/credentials"));
  EXPECT_FALSE(sandbox.function_overlay()->Exists("/app/cache.bin"));
  EXPECT_EQ(sandbox.netns().open_connection_count(), 0u);
  EXPECT_EQ(sandbox.cgroup().process_count(), 0u);
}

TEST(SecurityInvariantTest, NetnsConfigResetOnlyWhenCustomized) {
  SandboxFactory factory(std::make_shared<FsLayer>("base"));
  auto cold = factory.CreateCold("a", nullptr, CgroupLimits{}, 0, true);
  Sandbox& sandbox = *cold.sandbox;
  sandbox.netns().AddFirewallRule();  // tenant customizes the netns
  sandbox.Cleanse(1);
  ASSERT_TRUE(sandbox.Repurpose("b", std::make_shared<UnionFs>(), CgroupLimits{}).ok());
  // Custom config was wiped before handing the netns to the next tenant.
  EXPECT_FALSE(sandbox.netns().HasCustomConfig());
}

TEST(SecurityInvariantTest, UnprivilegedCallerCannotUseMmtDevice) {
  CxlPool cxl(kGiB);
  BackendRegistry backends;
  backends.Register(&cxl);
  MmtApi api(&backends);
  api.set_caller_privileged(false);
  EXPECT_EQ(api.MmtCreate("x"), kInvalidMmtId);
  EXPECT_EQ(api.MmtAddMap(1, 0x1000, kPageSize, Protection::ReadOnly(), true, -1, 0).code(),
            StatusCode::kPermissionDenied);
  MmStruct mm;
  EXPECT_EQ(api.MmtAttach(1, &mm).status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(api.MmtDestroy(1).code(), StatusCode::kPermissionDenied);
  // Privilege restored: the device works again.
  api.set_caller_privileged(true);
  EXPECT_NE(api.MmtCreate("x"), kInvalidMmtId);
}

TEST(SecurityInvariantTest, AslrLimitationIsReal) {
  // Documented limitation (section 8.1.2): every instance restored from the
  // same template shares the same virtual layout.
  Testbed bed(SystemKind::kTrEnvCxl);
  ASSERT_TRUE(bed.DeployTable4Functions().ok());
  FrameAllocator frames(8 * kGiB);
  PidAllocator pids;
  RestoreContext ctx;
  ctx.frames = &frames;
  ctx.backends = &bed.backends();
  ctx.pids = &pids;
  auto* engine = static_cast<TrEnvEngine*>(&bed.engine());
  const FunctionProfile* js = FindTable4Function("JS");
  auto a = engine->Restore(*js, ctx);
  auto b = engine->Restore(*js, ctx);
  ASSERT_TRUE(a.ok() && b.ok());
  const auto& vmas_a = a.value().instance->main_process()->mm().vmas();
  const auto& vmas_b = b.value().instance->main_process()->mm().vmas();
  ASSERT_EQ(vmas_a.size(), vmas_b.size());
  auto it_b = vmas_b.begin();
  for (const auto& [start, vma] : vmas_a) {
    EXPECT_EQ(start, it_b->first);  // identical layout: ASLR is defeated
    ++it_b;
  }
}

TEST(SecurityInvariantTest, GroundhogRollbackDropsWrittenState) {
  Testbed bed(SystemKind::kTrEnvCxl);
  // Build a dedicated Groundhog-mode engine on the same substrate.
  SandboxPool pool;
  SandboxFactory factory(std::make_shared<FsLayer>("base"));
  MmtApi mmt(&bed.backends());
  TieredPool tiered;
  tiered.AddTier(&bed.cxl());
  SnapshotDedupStore dedup(&tiered);
  TrEnvEngine engine(&factory, &pool, &mmt, &dedup,
                     TrEnvEngine::Options{.groundhog_restore = true});
  const FunctionProfile* js = FindTable4Function("JS");
  ASSERT_TRUE(engine.Prepare(*js).ok());
  FrameAllocator frames(8 * kGiB);
  PidAllocator pids;
  RestoreContext ctx;
  ctx.frames = &frames;
  ctx.backends = &bed.backends();
  ctx.pids = &pids;
  auto outcome = engine.Restore(*js, ctx);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(engine.OnExecute(*js, *outcome->instance, ctx).ok());
  const uint64_t dirty_pages = outcome->instance->ResidentLocalPages();
  EXPECT_GT(dirty_pages, 0u);  // the invocation CoW'd pages

  // Second invocation on the same (warm) instance: rollback first.
  outcome->instance->invocations = 1;
  auto second = engine.OnExecute(*js, *outcome->instance, ctx);
  ASSERT_TRUE(second.ok());
  // Rollback cost appears, and the page count does not accumulate across
  // invocations (fresh CoW set each time).
  EXPECT_GT(second->added_latency, SimDuration::Zero());
  EXPECT_LE(outcome->instance->ResidentLocalPages(), dirty_pages + 8);
}

// ---------------------------------------------------------------------------
// Memory conservation: local frames always return to zero.
// ---------------------------------------------------------------------------

class MemoryConservationTest : public ::testing::TestWithParam<SystemKind> {};

TEST_P(MemoryConservationTest, FramesReturnToZeroAfterDrain) {
  Testbed bed(GetParam());
  ASSERT_TRUE(bed.DeployTable4Functions().ok());
  Rng rng(31);
  Schedule schedule =
      MakePoissonWorkload(bench_names(), 4.0, SimDuration::Minutes(4), 0.5, rng);
  ASSERT_TRUE(bed.platform().Run(schedule).ok());
  bed.platform().EvictAllIdle();
  EXPECT_EQ(bed.platform().frames().used_bytes(), 0u) << SystemName(GetParam());
  EXPECT_EQ(bed.platform().failed_invocations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSystems, MemoryConservationTest,
                         ::testing::Values(SystemKind::kFaasd, SystemKind::kCriu,
                                           SystemKind::kReapPlus, SystemKind::kFaasnapPlus,
                                           SystemKind::kTrEnvCxl, SystemKind::kTrEnvRdma,
                                           SystemKind::kTrEnvTiered,
                                           SystemKind::kTrEnvDramHot),
                         [](const auto& param_info) {
                           std::string name = SystemName(param_info.param);
                           std::erase_if(name, [](char c) { return !std::isalnum(c); });
                           return name;
                         });

// ---------------------------------------------------------------------------
// CoW isolation under randomized write patterns.
// ---------------------------------------------------------------------------

class CowIsolationFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CowIsolationFuzzTest, InstancesNeverObserveEachOthersWrites) {
  Rng rng(GetParam());
  CxlPool cxl(4 * kGiB);
  BackendRegistry backends;
  backends.Register(&cxl);
  FrameAllocator frames(4 * kGiB);
  FaultHandler kernel(&frames, &backends);
  MmtApi api(&backends);

  constexpr Vaddr kBase = 0x10000000;
  constexpr uint64_t kPages = 64;
  MmtId id = api.MmtCreate("fuzz");
  ASSERT_TRUE(
      api.MmtAddMap(id, kBase, kPages * kPageSize, Protection::ReadWrite(), true, -1, 0).ok());
  auto pool_base = cxl.AllocatePages(kPages);
  ASSERT_TRUE(pool_base.ok());
  ASSERT_TRUE(cxl.WriteContent(*pool_base, kPages, 0xF00D).ok());
  ASSERT_TRUE(api.MmtSetupPt(id, kBase, kPages * kPageSize, *pool_base, PoolKind::kCxl).ok());

  constexpr int kInstances = 4;
  std::vector<MmStruct> mms(kInstances);
  // Reference model: expected content per (instance, page).
  std::vector<std::map<uint64_t, PageContent>> expected(kInstances);
  for (auto& mm : mms) {
    ASSERT_TRUE(api.MmtAttach(id, &mm).ok());
  }

  for (int op = 0; op < 500; ++op) {
    const int instance = static_cast<int>(rng.NextBounded(kInstances));
    const uint64_t page = rng.NextBounded(kPages);
    const Vaddr addr = kBase + page * kPageSize;
    if (rng.NextBool(0.4)) {
      const PageContent value = rng.NextU64() | 1;
      ASSERT_TRUE(kernel.WritePage(mms[static_cast<size_t>(instance)], addr, value).ok());
      expected[static_cast<size_t>(instance)][page] = value;
    } else {
      auto content = kernel.ReadPage(mms[static_cast<size_t>(instance)], addr);
      ASSERT_TRUE(content.ok());
      auto it = expected[static_cast<size_t>(instance)].find(page);
      const PageContent want =
          it != expected[static_cast<size_t>(instance)].end() ? it->second : 0xF00D + page;
      EXPECT_EQ(*content, want) << "instance " << instance << " page " << page;
    }
  }
  // The shared pool image is never mutated.
  for (uint64_t page = 0; page < kPages; ++page) {
    EXPECT_EQ(*cxl.ReadContent(*pool_base + page), 0xF00D + page);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CowIsolationFuzzTest, ::testing::Values(3, 17, 99, 1234));

// ---------------------------------------------------------------------------
// DRAM-hot placement ablation behaves as designed.
// ---------------------------------------------------------------------------

TEST(DramHotTest, HotRegionsAvoidCxlPenalty) {
  auto exec_multiplier_proxy = [](SystemKind kind) {
    Testbed bed(kind);
    EXPECT_TRUE(bed.DeployTable4Functions().ok());
    FrameAllocator frames(16 * kGiB);
    PidAllocator pids;
    RestoreContext ctx;
    ctx.frames = &frames;
    ctx.backends = &bed.backends();
    ctx.pids = &pids;
    const FunctionProfile* dh = FindTable4Function("DH");
    auto outcome = bed.engine().Restore(*dh, ctx);
    EXPECT_TRUE(outcome.ok());
    auto overheads = bed.engine().OnExecute(*dh, *outcome->instance, ctx);
    EXPECT_TRUE(overheads.ok());
    return overheads->cpu_multiplier;
  };
  const double pure_cxl = exec_multiplier_proxy(SystemKind::kTrEnvCxl);
  const double dram_hot = exec_multiplier_proxy(SystemKind::kTrEnvDramHot);
  // DH is memory-bound: on pure CXL the multiplier approaches 1.9; pinning
  // the hot file-backed regions in DRAM removes most of it.
  EXPECT_GT(pure_cxl, 1.6);
  EXPECT_LT(dram_hot, 1.35);
  EXPECT_GE(dram_hot, 1.0);
}

// ---------------------------------------------------------------------------
// Keep-alive pool invariants under random churn.
// ---------------------------------------------------------------------------

TEST(KeepAliveFuzzTest, LruOrderAndCountsHold) {
  Rng rng(5);
  size_t retired = 0;
  KeepAlivePool pool(SimDuration::Seconds(60),
                     [&](std::unique_ptr<FunctionInstance> instance) {
                       ++retired;
                       instance.reset();
                     });
  SimTime now;
  size_t live = 0;
  const std::vector<std::string> fns = {"a", "b", "c"};
  for (int op = 0; op < 400; ++op) {
    now += SimDuration::Seconds(static_cast<int64_t>(rng.NextBounded(10)));
    const std::string fn = fns[rng.NextBounded(fns.size())];
    switch (rng.NextBounded(4)) {
      case 0: {
        pool.Put(std::make_unique<FunctionInstance>(fn, nullptr), now);
        ++live;
        break;
      }
      case 1: {
        if (auto taken = pool.TakeWarm(fn); taken != nullptr) {
          EXPECT_EQ(taken->function(), fn);
          --live;
        }
        break;
      }
      case 2: {
        const size_t expired = pool.ExpireStale(now);
        live -= expired;
        break;
      }
      case 3: {
        if (pool.EvictLru()) {
          --live;
        }
        break;
      }
    }
    EXPECT_EQ(pool.size(), live);
  }
  pool.EvictAll();
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_GT(retired, 0u);
}

}  // namespace
}  // namespace trenv
