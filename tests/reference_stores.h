// Test-only reference implementations of the hot-path run stores, preserved
// verbatim (modulo naming and dump accessors) from the original std::map
// code that shipped before the sorted-vector rewrite. The equivalence test
// (flat_store_equivalence_test.cc) drives randomized operation sequences
// through both a reference store and its production counterpart and asserts
// the externally observable state — run boundaries, per-field values,
// lookups, counts — is bit-identical after every operation. These classes
// exist only to pin that bar; nothing outside tests/ may include this file.
#ifndef TRENV_TESTS_REFERENCE_STORES_H_
#define TRENV_TESTS_REFERENCE_STORES_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <iterator>
#include <map>
#include <optional>
#include <vector>

#include "src/common/status.h"
#include "src/simkernel/page_table.h"
#include "src/simkernel/types.h"

namespace trenv {
namespace ref {

// The original std::map-backed PageTable (run key = first vpn of the run).
class RefPageTable {
 public:
  void MapRange(Vpn vpn, uint64_t npages, PteFlags flags, uint64_t backing_base,
                PageContent content_base, bool constant_content = false) {
    if (npages == 0) {
      return;
    }
    UnmapRange(vpn, npages);
    PteRun run;
    run.npages = npages;
    run.flags = flags;
    run.backing_base = backing_base;
    run.content_base = content_base;
    run.constant_content = constant_content;
    runs_.emplace(vpn, run);
    TryMergeAround(vpn);
  }

  uint64_t UnmapRange(Vpn vpn, uint64_t npages) {
    if (npages == 0) {
      return 0;
    }
    SplitAt(vpn);
    SplitAt(vpn + npages);
    uint64_t removed = 0;
    auto it = runs_.lower_bound(vpn);
    while (it != runs_.end() && it->first < vpn + npages) {
      removed += it->second.npages;
      it = runs_.erase(it);
    }
    return removed;
  }

  void ProtectRange(Vpn vpn, uint64_t npages) {
    if (npages == 0) {
      return;
    }
    SplitAt(vpn);
    SplitAt(vpn + npages);
    for (auto it = runs_.lower_bound(vpn); it != runs_.end() && it->first < vpn + npages;
         ++it) {
      it->second.flags.write_protected = true;
    }
  }

  std::optional<PteView> Lookup(Vpn vpn) const {
    auto it = runs_.upper_bound(vpn);
    if (it == runs_.begin()) {
      return std::nullopt;
    }
    --it;
    const Vpn start = it->first;
    const PteRun& run = it->second;
    if (vpn >= start + run.npages) {
      return std::nullopt;
    }
    const uint64_t idx = vpn - start;
    PteView view;
    view.flags = run.flags;
    view.backing = run.backing_base == kNoBacking ? kNoBacking : run.backing_base + idx;
    view.content = run.ContentAt(idx);
    return view;
  }

  void ForEachRunIn(Vpn vpn, uint64_t npages,
                    const std::function<void(Vpn, const PteRun&)>& fn) const {
    if (npages == 0) {
      return;
    }
    const Vpn end = vpn + npages;
    auto it = runs_.upper_bound(vpn);
    if (it != runs_.begin()) {
      --it;
    }
    for (; it != runs_.end() && it->first < end; ++it) {
      const Vpn run_start = it->first;
      const PteRun& run = it->second;
      const Vpn run_end = run_start + run.npages;
      if (run_end <= vpn) {
        continue;
      }
      const Vpn clip_start = std::max(run_start, vpn);
      const Vpn clip_end = std::min(run_end, end);
      const uint64_t skip = clip_start - run_start;
      PteRun clipped = run;
      clipped.npages = clip_end - clip_start;
      if (clipped.backing_base != kNoBacking) {
        clipped.backing_base += skip;
      }
      if (!clipped.constant_content) {
        clipped.content_base += skip;
      }
      fn(clip_start, clipped);
    }
  }

  void ForEachRun(const std::function<void(Vpn, const PteRun&)>& fn) const {
    for (const auto& [vpn, run] : runs_) {
      fn(vpn, run);
    }
  }

  void CloneFrom(const RefPageTable& other) {
    if (runs_.empty()) {
      for (const auto& [vpn, run] : other.runs_) {
        runs_.emplace_hint(runs_.end(), vpn, run);
      }
      return;
    }
    for (const auto& [vpn, run] : other.runs_) {
      MapRange(vpn, run.npages, run.flags, run.backing_base, run.content_base,
               run.constant_content);
    }
  }

  uint64_t run_count() const { return runs_.size(); }

  uint64_t mapped_pages() const {
    uint64_t total = 0;
    for (const auto& [vpn, run] : runs_) {
      total += run.npages;
    }
    return total;
  }

  uint64_t CountPagesIf(const std::function<bool(const PteFlags&)>& pred) const {
    uint64_t total = 0;
    for (const auto& [vpn, run] : runs_) {
      if (pred(run.flags)) {
        total += run.npages;
      }
    }
    return total;
  }

 private:
  void SplitAt(Vpn vpn) {
    auto it = runs_.upper_bound(vpn);
    if (it == runs_.begin()) {
      return;
    }
    --it;
    const Vpn start = it->first;
    PteRun& run = it->second;
    if (start == vpn || start + run.npages <= vpn) {
      return;
    }
    const uint64_t head_pages = vpn - start;
    PteRun tail = run;
    tail.npages = run.npages - head_pages;
    if (tail.backing_base != kNoBacking) {
      tail.backing_base += head_pages;
    }
    if (!tail.constant_content) {
      tail.content_base += head_pages;
    }
    run.npages = head_pages;
    runs_.emplace(vpn, tail);
  }

  void TryMergeAround(Vpn vpn) {
    auto it = runs_.find(vpn);
    if (it == runs_.end()) {
      return;
    }
    if (it != runs_.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second.npages == it->first &&
          prev->second.ContinuedBy(it->second, prev->second.npages)) {
        prev->second.npages += it->second.npages;
        runs_.erase(it);
        it = prev;
      }
    }
    auto next = std::next(it);
    if (next != runs_.end() && it->first + it->second.npages == next->first &&
        it->second.ContinuedBy(next->second, it->second.npages)) {
      it->second.npages += next->second.npages;
      runs_.erase(next);
    }
  }

  std::map<Vpn, PteRun> runs_;
};

// The original std::map-backed ContentMap.
class RefContentMap {
 public:
  void Write(PoolOffset page, uint64_t npages, PageContent content_base) {
    if (npages == 0) {
      return;
    }
    Erase(page, npages);
    runs_.emplace(page, Run{npages, content_base});
  }

  Result<PageContent> Read(PoolOffset page) const {
    auto it = runs_.upper_bound(page);
    if (it == runs_.begin()) {
      return Status::NotFound("no content stored at pool offset");
    }
    --it;
    if (page >= it->first + it->second.npages) {
      return Status::NotFound("no content stored at pool offset");
    }
    return it->second.content_base + (page - it->first);
  }

  void Erase(PoolOffset page, uint64_t npages) {
    if (npages == 0) {
      return;
    }
    SplitAt(page);
    SplitAt(page + npages);
    auto it = runs_.lower_bound(page);
    while (it != runs_.end() && it->first < page + npages) {
      it = runs_.erase(it);
    }
  }

  uint64_t stored_pages() const {
    uint64_t total = 0;
    for (const auto& [base, run] : runs_) {
      total += run.npages;
    }
    return total;
  }

  uint64_t run_count() const { return runs_.size(); }

  // Dump accessor for the equivalence test: (base, npages, content_base).
  std::vector<std::tuple<PoolOffset, uint64_t, PageContent>> DumpRuns() const {
    std::vector<std::tuple<PoolOffset, uint64_t, PageContent>> out;
    out.reserve(runs_.size());
    for (const auto& [base, run] : runs_) {
      out.emplace_back(base, run.npages, run.content_base);
    }
    return out;
  }

 private:
  struct Run {
    uint64_t npages;
    PageContent content_base;
  };

  void SplitAt(PoolOffset page) {
    auto it = runs_.upper_bound(page);
    if (it == runs_.begin()) {
      return;
    }
    --it;
    const PoolOffset start = it->first;
    Run& run = it->second;
    if (start == page || start + run.npages <= page) {
      return;
    }
    const uint64_t head = page - start;
    Run tail{run.npages - head, run.content_base + head};
    run.npages = head;
    runs_.emplace(page, tail);
  }

  std::map<PoolOffset, Run> runs_;
};

// The original std::map-backed first-fit BlockAllocator.
class RefBlockAllocator {
 public:
  explicit RefBlockAllocator(uint64_t total_pages) : total_pages_(total_pages) {
    if (total_pages > 0) {
      free_list_.emplace(0, total_pages);
    }
  }

  Result<PoolOffset> Allocate(uint64_t n) {
    if (n == 0) {
      return Status::InvalidArgument("zero-page allocation");
    }
    for (auto it = free_list_.begin(); it != free_list_.end(); ++it) {
      if (it->second >= n) {
        const PoolOffset base = it->first;
        const uint64_t remaining = it->second - n;
        free_list_.erase(it);
        if (remaining > 0) {
          free_list_.emplace(base + n, remaining);
        }
        used_pages_ += n;
        return base;
      }
    }
    return Status::OutOfMemory("pool exhausted or fragmented");
  }

  Status Free(PoolOffset base, uint64_t n) {
    if (n == 0 || base + n > total_pages_) {
      return Status::InvalidArgument("free range out of bounds");
    }
    auto it = free_list_.upper_bound(base);
    if (it != free_list_.end() && it->first < base + n) {
      return Status::InvalidArgument("double free (overlaps free extent)");
    }
    if (it != free_list_.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second > base) {
        return Status::InvalidArgument("double free (overlaps free extent)");
      }
    }
    free_list_.emplace(base, n);
    assert(used_pages_ >= n);
    used_pages_ -= n;
    CoalesceAround(base);
    return Status::Ok();
  }

  uint64_t used_pages() const { return used_pages_; }
  uint64_t free_pages() const { return total_pages_ - used_pages_; }

  uint64_t LargestFreeExtent() const {
    uint64_t largest = 0;
    for (const auto& [base, len] : free_list_) {
      largest = std::max(largest, len);
    }
    return largest;
  }

  uint64_t free_extent_count() const { return free_list_.size(); }

  // Dump accessor for the equivalence test: (base, len) of each free extent.
  std::vector<std::pair<PoolOffset, uint64_t>> DumpFreeList() const {
    return {free_list_.begin(), free_list_.end()};
  }

 private:
  void CoalesceAround(PoolOffset base) {
    auto it = free_list_.find(base);
    assert(it != free_list_.end());
    if (it != free_list_.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second == it->first) {
        prev->second += it->second;
        free_list_.erase(it);
        it = prev;
      }
    }
    auto next = std::next(it);
    if (next != free_list_.end() && it->first + it->second == next->first) {
      it->second += next->second;
      free_list_.erase(next);
    }
  }

  uint64_t total_pages_;
  uint64_t used_pages_ = 0;
  std::map<PoolOffset, uint64_t> free_list_;
};

}  // namespace ref
}  // namespace trenv

#endif  // TRENV_TESTS_REFERENCE_STORES_H_
