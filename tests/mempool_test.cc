// Tests for the memory-pool substrate: block allocator, content map, the
// four backends, and tiered placement.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/cost_model.h"
#include "src/mempool/cxl_pool.h"
#include "src/mempool/dram_pool.h"
#include "src/mempool/nas_pool.h"
#include "src/mempool/rdma_pool.h"
#include "src/mempool/tiered_pool.h"

namespace trenv {
namespace {

TEST(BlockAllocatorTest, AllocateAndFree) {
  BlockAllocator alloc(100);
  auto a = alloc.Allocate(30);
  ASSERT_TRUE(a.ok());
  auto b = alloc.Allocate(70);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(alloc.free_pages(), 0u);
  EXPECT_FALSE(alloc.Allocate(1).ok());
  ASSERT_TRUE(alloc.Free(*a, 30).ok());
  EXPECT_EQ(alloc.free_pages(), 30u);
  EXPECT_TRUE(alloc.Allocate(30).ok());
}

TEST(BlockAllocatorTest, CoalescingEnablesLargeRealloc) {
  BlockAllocator alloc(100);
  auto a = alloc.Allocate(25);
  auto b = alloc.Allocate(25);
  auto c = alloc.Allocate(25);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(alloc.Free(*a, 25).ok());
  ASSERT_TRUE(alloc.Free(*c, 25).ok());
  // Fragmented: largest extent is 25 + trailing 25.
  EXPECT_FALSE(alloc.Allocate(60).ok());
  ASSERT_TRUE(alloc.Free(*b, 25).ok());
  // Now fully coalesced.
  EXPECT_EQ(alloc.LargestFreeExtent(), 100u);
  EXPECT_TRUE(alloc.Allocate(100).ok());
}

TEST(BlockAllocatorTest, DoubleFreeDetected) {
  BlockAllocator alloc(100);
  auto a = alloc.Allocate(10);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(alloc.Free(*a, 10).ok());
  EXPECT_EQ(alloc.Free(*a, 10).code(), StatusCode::kInvalidArgument);
}

TEST(BlockAllocatorTest, OutOfBoundsFreeRejected) {
  BlockAllocator alloc(100);
  EXPECT_EQ(alloc.Free(90, 20).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(alloc.Free(0, 0).code(), StatusCode::kInvalidArgument);
}

TEST(ContentMapTest, WriteReadErase) {
  ContentMap map;
  map.Write(100, 10, 5000);
  EXPECT_EQ(*map.Read(100), 5000u);
  EXPECT_EQ(*map.Read(109), 5009u);
  EXPECT_FALSE(map.Read(110).ok());
  EXPECT_EQ(map.stored_pages(), 10u);
  map.Erase(103, 4);
  EXPECT_EQ(map.stored_pages(), 6u);
  EXPECT_TRUE(map.Read(102).ok());
  EXPECT_FALSE(map.Read(103).ok());
  EXPECT_FALSE(map.Read(106).ok());
  EXPECT_EQ(*map.Read(107), 5007u);
}

TEST(ContentMapTest, OverwriteReplacesRange) {
  ContentMap map;
  map.Write(0, 10, 100);
  map.Write(5, 10, 900);
  EXPECT_EQ(*map.Read(4), 104u);
  EXPECT_EQ(*map.Read(5), 900u);
  EXPECT_EQ(*map.Read(14), 909u);
  EXPECT_EQ(map.stored_pages(), 15u);
}

TEST(ContentMapTest, EraseSpanningMultipleRuns) {
  ContentMap map;
  map.Write(0, 10, 100);
  map.Write(10, 10, 500);  // adjacent but distinct content: two runs
  map.Write(30, 10, 900);
  EXPECT_EQ(map.run_count(), 3u);
  // Erase a window cutting into the first run, swallowing the second whole,
  // crossing the gap, and cutting into the third.
  map.Erase(5, 30);
  EXPECT_EQ(map.run_count(), 2u);
  EXPECT_EQ(map.stored_pages(), 10u);
  EXPECT_EQ(*map.Read(4), 104u);
  EXPECT_FALSE(map.Read(5).ok());
  EXPECT_FALSE(map.Read(15).ok());
  EXPECT_FALSE(map.Read(34).ok());
  EXPECT_EQ(*map.Read(35), 905u);
  EXPECT_EQ(*map.Read(39), 909u);
}

TEST(ContentMapTest, PartialRunEraseAtBothEnds) {
  ContentMap map;
  map.Write(100, 20, 7000);
  // Front partial erase: run shrinks from the left.
  map.Erase(95, 8);  // covers [100, 103)
  EXPECT_FALSE(map.Read(102).ok());
  EXPECT_EQ(*map.Read(103), 7003u);
  EXPECT_EQ(map.stored_pages(), 17u);
  // Tail partial erase: run shrinks from the right.
  map.Erase(115, 10);  // covers [115, 120)
  EXPECT_EQ(*map.Read(114), 7014u);
  EXPECT_FALSE(map.Read(115).ok());
  EXPECT_EQ(map.stored_pages(), 12u);
  EXPECT_EQ(map.run_count(), 1u);
}

TEST(ContentMapTest, WriteOverSplitRun) {
  ContentMap map;
  map.Write(0, 20, 1000);
  map.Erase(8, 4);  // split into [0,8) and [12,20)
  EXPECT_EQ(map.run_count(), 2u);
  // Overwrite a window straddling the hole and both fragments.
  map.Write(6, 10, 5000);  // covers [6, 16)
  EXPECT_EQ(*map.Read(5), 1005u);
  EXPECT_EQ(*map.Read(6), 5000u);
  EXPECT_EQ(*map.Read(15), 5009u);
  EXPECT_EQ(*map.Read(16), 1016u);
  EXPECT_EQ(map.stored_pages(), 20u);
  EXPECT_EQ(map.run_count(), 3u);
}

TEST(ContentMapTest, EraseEverythingLeavesEmptyMap) {
  ContentMap map;
  map.Write(10, 5, 100);
  map.Write(20, 5, 200);
  map.Erase(0, 100);
  EXPECT_EQ(map.stored_pages(), 0u);
  EXPECT_EQ(map.run_count(), 0u);
  EXPECT_FALSE(map.Read(12).ok());
}

TEST(BlockAllocatorTest, FreeListCoalescingUnderChurn) {
  BlockAllocator alloc(1000);
  // Allocate ten 100-page blocks, free them in an interleaved order, and
  // check the free list coalesces back to a single extent at every point
  // where adjacency allows.
  std::vector<PoolOffset> blocks;
  for (int i = 0; i < 10; ++i) {
    auto b = alloc.Allocate(100);
    ASSERT_TRUE(b.ok());
    blocks.push_back(*b);
  }
  EXPECT_EQ(alloc.free_extent_count(), 0u);
  // Free evens: five isolated extents, nothing adjacent.
  for (int i = 0; i < 10; i += 2) {
    ASSERT_TRUE(alloc.Free(blocks[static_cast<size_t>(i)], 100).ok());
  }
  EXPECT_EQ(alloc.free_extent_count(), 5u);
  EXPECT_EQ(alloc.LargestFreeExtent(), 100u);
  // Free odds: each merges with both neighbors; the list collapses to one.
  for (int i = 1; i < 10; i += 2) {
    ASSERT_TRUE(alloc.Free(blocks[static_cast<size_t>(i)], 100).ok());
  }
  EXPECT_EQ(alloc.free_extent_count(), 1u);
  EXPECT_EQ(alloc.LargestFreeExtent(), 1000u);
  // Keep-alive steady state: free one block, reallocate the same size —
  // first fit hands back the same base and the extent count is unchanged.
  auto a = alloc.Allocate(64);
  ASSERT_TRUE(a.ok());
  const uint64_t extents_before = alloc.free_extent_count();
  ASSERT_TRUE(alloc.Free(*a, 64).ok());
  auto again = alloc.Allocate(64);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *a);
  EXPECT_EQ(alloc.free_extent_count(), extents_before);
}

TEST(CxlPoolTest, PortLimitEnforced) {
  CxlPool pool(kGiB, /*port_count=*/2);
  EXPECT_TRUE(pool.AttachNode(1).ok());
  EXPECT_TRUE(pool.AttachNode(2).ok());
  EXPECT_EQ(pool.AttachNode(3).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(pool.AttachNode(1).code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(pool.DetachNode(1).ok());
  EXPECT_TRUE(pool.AttachNode(3).ok());
}

TEST(CxlPoolTest, ByteAddressableWithSubMicrosecondLoads) {
  CxlPool pool(kGiB);
  EXPECT_TRUE(pool.byte_addressable());
  EXPECT_LT(pool.DirectLoadLatency().nanos(), 1000);
  EXPECT_GT(pool.DirectLoadLatency(), cost::kLocalDramLatency);
}

TEST(RdmaPoolTest, NotByteAddressable) {
  RdmaPool pool(kGiB);
  EXPECT_FALSE(pool.byte_addressable());
  EXPECT_GT(pool.FetchCpuPerPage(), SimDuration::Zero());
}

TEST(RdmaPoolTest, FetchLatencyNearBaseWhenIdle) {
  RdmaPool pool(kGiB, 42);
  double total_us = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    total_us += pool.FetchLatency(1).micros();
  }
  // Lognormal jitter is mean-1, so the average should be close to 6 us.
  EXPECT_NEAR(total_us / n, cost::kRdmaPageFetchBase.micros(), 1.0);
}

TEST(RdmaPoolTest, LatencyInflatesUnderLoad) {
  RdmaPool pool(kGiB, 42);
  EXPECT_DOUBLE_EQ(pool.LoadFactor(), 1.0);
  for (uint32_t i = 0; i < cost::kRdmaLoadFreeStreams + 10; ++i) {
    pool.BeginStream();
  }
  EXPECT_GT(pool.LoadFactor(), 2.0);
  for (uint32_t i = 0; i < cost::kRdmaLoadFreeStreams + 10; ++i) {
    pool.EndStream();
  }
  EXPECT_DOUBLE_EQ(pool.LoadFactor(), 1.0);
}

TEST(RdmaPoolTest, TailHeavierThanMedian) {
  RdmaPool pool(kGiB, 7);
  std::vector<double> lat;
  for (int i = 0; i < 5000; ++i) {
    lat.push_back(pool.FetchLatency(1).micros());
  }
  std::sort(lat.begin(), lat.end());
  const double p50 = lat[lat.size() / 2];
  const double p99 = lat[static_cast<size_t>(static_cast<double>(lat.size()) * 0.99)];
  EXPECT_GT(p99 / p50, 2.0);  // pronounced tail (section 9.5)
}

TEST(NasPoolTest, FetchScalesLinearly) {
  NasPool pool(kGiB);
  EXPECT_EQ(pool.FetchLatency(10).nanos(), cost::kNasPageFetchBase.nanos() * 10);
}

TEST(RdmaPoolTest, BulkFetchAmortizesTheRoundTrip) {
  // The pipelined bulk stream must cost far less per page than the same
  // pages demand-fetched one run at a time: the base round trip is paid once
  // and the per-page stream factor is a fraction of the readahead factor.
  RdmaPool bulk_pool(kGiB, 42);
  RdmaPool demand_pool(kGiB, 42);
  const uint64_t npages = 4096;
  double bulk_us = 0;
  double demand_us = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    bulk_us += bulk_pool.BulkFetchLatency(/*nruns=*/8, npages).micros();
    demand_us += demand_pool.FetchLatency(npages).micros();
  }
  EXPECT_LT(bulk_us * 2.0, demand_us);  // >= 2x cheaper on average
}

TEST(RdmaPoolTest, BulkFetchChargesPerRunScatterCost) {
  // Same page count, more runs -> strictly more scatter-descriptor overhead.
  // Same seed in two pools so the jitter draws line up pairwise.
  RdmaPool few_pool(kGiB, 11);
  RdmaPool many_pool(kGiB, 11);
  for (int i = 0; i < 50; ++i) {
    const SimDuration few = few_pool.BulkFetchLatency(/*nruns=*/1, 1024);
    const SimDuration many = many_pool.BulkFetchLatency(/*nruns=*/64, 1024);
    EXPECT_LT(few, many);
  }
}

TEST(RdmaPoolTest, BulkFetchOfNothingIsFree) {
  RdmaPool pool(kGiB, 42);
  EXPECT_EQ(pool.BulkFetchLatency(0, 0), SimDuration::Zero());
}

TEST(NasPoolTest, BulkFetchUsesTheDefaultModel) {
  // Backends without a bulk override charge the plain fetch model plus the
  // per-run descriptor cost, so routing a batch through BulkFetchLatency can
  // never be cheaper than the demand path for them.
  NasPool pool(kGiB);
  EXPECT_EQ(pool.BulkFetchLatency(1, 10).nanos(), pool.FetchLatency(10).nanos());
  EXPECT_EQ(pool.BulkFetchLatency(3, 10).nanos(),
            pool.FetchLatency(10).nanos() + 2 * cost::kBulkFetchPerRun.nanos());
}

TEST(DramPoolTest, FastestDirectLoad) {
  DramPool dram(kGiB);
  CxlPool cxl(kGiB);
  EXPECT_LT(dram.DirectLoadLatency(), cxl.DirectLoadLatency());
}

TEST(BackendTest, ContentSurvivesAllocation) {
  CxlPool pool(kGiB);
  auto base = pool.AllocatePages(16);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(pool.WriteContent(*base, 16, 12345).ok());
  EXPECT_EQ(*pool.ReadContent(*base + 7), 12352u);
  ASSERT_TRUE(pool.FreePages(*base, 16).ok());
  EXPECT_FALSE(pool.ReadContent(*base).ok());
}

TEST(BackendRegistryTest, LookupByKind) {
  CxlPool cxl(kGiB);
  RdmaPool rdma(kGiB);
  BackendRegistry reg;
  reg.Register(&cxl);
  reg.Register(&rdma);
  EXPECT_EQ(reg.Get(PoolKind::kCxl), &cxl);
  EXPECT_EQ(reg.Get(PoolKind::kRdma), &rdma);
  EXPECT_EQ(reg.Get(PoolKind::kNas), nullptr);
}

class TieredPoolTest : public ::testing::Test {
 protected:
  TieredPoolTest() : cxl_(16 * kPageSize * 1024), rdma_(kGiB) {
    tiered_.AddTier(&cxl_);
    tiered_.AddTier(&rdma_);
  }
  CxlPool cxl_;
  RdmaPool rdma_;
  TieredPool tiered_;
};

TEST_F(TieredPoolTest, HotGoesToUpperTier) {
  auto hot = tiered_.AllocatePages(64, /*hotness=*/1.0);
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(hot->kind, PoolKind::kCxl);
  auto cold = tiered_.AllocatePages(64, /*hotness=*/0.0);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->kind, PoolKind::kRdma);
}

TEST_F(TieredPoolTest, SpillsWhenHotTierFull) {
  // Exhaust the CXL tier.
  auto big = tiered_.AllocatePages(16 * 1024, 1.0);
  ASSERT_TRUE(big.ok());
  ASSERT_EQ(big->kind, PoolKind::kCxl);
  auto spill = tiered_.AllocatePages(64, 1.0);
  ASSERT_TRUE(spill.ok());
  EXPECT_EQ(spill->kind, PoolKind::kRdma);
}

TEST_F(TieredPoolTest, PromoteMovesUpAndPreservesContent) {
  auto cold = tiered_.AllocatePages(32, 0.0);
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(cold->kind, PoolKind::kRdma);
  ASSERT_TRUE(rdma_.WriteContent(cold->base, 32, 800).ok());
  auto promoted = tiered_.Promote(*cold);
  ASSERT_TRUE(promoted.ok());
  EXPECT_EQ(promoted->placement.kind, PoolKind::kCxl);
  EXPECT_EQ(*cxl_.ReadContent(promoted->placement.base + 3), 803u);
  EXPECT_GT(promoted->copy_latency, SimDuration::Zero());
  // Promoting from the top tier fails cleanly.
  EXPECT_EQ(tiered_.Promote(promoted->placement).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(TieredPoolTest, FreeReturnsCapacity) {
  auto p = tiered_.AllocatePages(128, 1.0);
  ASSERT_TRUE(p.ok());
  const uint64_t used = cxl_.used_bytes();
  ASSERT_TRUE(tiered_.FreePages(*p).ok());
  EXPECT_LT(cxl_.used_bytes(), used);
}

// Fallback ordering when a tier errors: the preferred tier is tried first,
// then colder tiers in order, then warmer ones as a last resort.
class TieredFallbackTest : public ::testing::Test {
 protected:
  TieredFallbackTest()
      : cxl_(64 * kPageSize), rdma_(64 * kPageSize), nas_(64 * kPageSize) {
    tiered_.AddTier(&cxl_);
    tiered_.AddTier(&rdma_);
    tiered_.AddTier(&nas_);
  }
  // Fills a backend so its next AllocatePages errors.
  static void Exhaust(MemoryBackend& backend) {
    ASSERT_TRUE(backend.AllocatePages(64).ok());
    ASSERT_FALSE(backend.AllocatePages(1).ok());
  }
  CxlPool cxl_;
  RdmaPool rdma_;
  NasPool nas_;
  TieredPool tiered_;
};

TEST_F(TieredFallbackTest, ErroringPreferredTierFallsColderFirst) {
  // hotness 0.5 with three tiers prefers the middle (RDMA) tier.
  Exhaust(rdma_);
  auto spill = tiered_.AllocatePages(8, 0.5);
  ASSERT_TRUE(spill.ok());
  EXPECT_EQ(spill->kind, PoolKind::kNas);
}

TEST_F(TieredFallbackTest, FallsBackUpwardWhenAllColderTiersError) {
  Exhaust(rdma_);
  Exhaust(nas_);
  auto spill = tiered_.AllocatePages(8, 0.5);
  ASSERT_TRUE(spill.ok());
  EXPECT_EQ(spill->kind, PoolKind::kCxl);
}

TEST_F(TieredFallbackTest, AllTiersErroringReportsOutOfMemory) {
  Exhaust(cxl_);
  Exhaust(rdma_);
  Exhaust(nas_);
  auto spill = tiered_.AllocatePages(8, 0.5);
  ASSERT_FALSE(spill.ok());
  EXPECT_EQ(spill.status().code(), StatusCode::kOutOfMemory);
}

TEST_F(TieredFallbackTest, PromoteFailsCleanlyWhenUpperTierErrors) {
  auto cold = tiered_.AllocatePages(8, 0.0);
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(cold->kind, PoolKind::kNas);
  ASSERT_TRUE(nas_.WriteContent(cold->base, 8, 900).ok());
  // The tier above (RDMA) has no room: promotion must surface the error and
  // leave the original placement intact — content readable, pages freeable.
  Exhaust(rdma_);
  auto promoted = tiered_.Promote(*cold);
  ASSERT_FALSE(promoted.ok());
  EXPECT_EQ(*nas_.ReadContent(cold->base), 900u);
  EXPECT_TRUE(tiered_.FreePages(*cold).ok());
}

}  // namespace
}  // namespace trenv
