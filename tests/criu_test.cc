// Tests for the CRIU substrate: checkpointing, snapshot dedup, and all five
// restore engines' cost structure and page behaviour.
#include <gtest/gtest.h>

#include "src/common/cost_model.h"
#include "src/common/rng.h"
#include "src/criu/checkpointer.h"
#include "src/criu/deduplicator.h"
#include "src/criu/lazy_engines.h"
#include "src/criu/trenv_engine.h"
#include "src/mempool/cxl_pool.h"
#include "src/mempool/rdma_pool.h"

namespace trenv {
namespace {

FunctionProfile SmallFn(const std::string& name, const std::string& lang, double mem_mb) {
  FunctionProfile p;
  p.name = name;
  p.language = lang;
  p.image_bytes = static_cast<uint64_t>(mem_mb * static_cast<double>(kMiB));
  p.threads = 8;
  p.pages = {.read_fraction = 0.5, .write_fraction = 0.2, .working_set_fraction = 0.3};
  return p;
}

TEST(CheckpointerTest, SnapshotCoversImageSize) {
  Checkpointer cp;
  FunctionSnapshot snap = cp.Checkpoint(SmallFn("f1", "python", 100));
  EXPECT_EQ(snap.function, "f1");
  ASSERT_EQ(snap.processes.size(), 1u);
  // Region pages sum to roughly the image size (rounding slack allowed).
  const double pages = static_cast<double>(snap.TotalPages());
  const double expect = static_cast<double>(BytesToPages(100 * kMiB));
  EXPECT_NEAR(pages / expect, 1.0, 0.05);
  EXPECT_EQ(snap.TotalThreads(), 8u);
}

TEST(CheckpointerTest, SameLanguageSharesRuntimeContent) {
  Checkpointer cp;
  FunctionSnapshot a = cp.Checkpoint(SmallFn("fa", "python", 100));
  FunctionSnapshot b = cp.Checkpoint(SmallFn("fb", "python", 100));
  FunctionSnapshot c = cp.Checkpoint(SmallFn("fc", "nodejs", 100));
  auto find = [](const FunctionSnapshot& s, const std::string& substr) -> const MemoryRegion* {
    for (const auto& r : s.processes[0].regions) {
      if (r.name.find(substr) != std::string::npos) {
        return &r;
      }
    }
    return nullptr;
  };
  const MemoryRegion* rt_a = find(a, "runtime");
  const MemoryRegion* rt_b = find(b, "runtime");
  const MemoryRegion* rt_c = find(c, "runtime");
  ASSERT_TRUE(rt_a && rt_b && rt_c);
  EXPECT_EQ(rt_a->content_base, rt_b->content_base);   // same language
  EXPECT_NE(rt_a->content_base, rt_c->content_base);   // different language
  // Heaps are always unique.
  EXPECT_NE(find(a, "[heap]")->content_base, find(b, "[heap]")->content_base);
  // Common libs shared across languages.
  EXPECT_EQ(find(a, "libc")->content_base, find(c, "libc")->content_base);
}

TEST(CheckpointerTest, MultiProcessFunctionsGetHelperImages) {
  FunctionProfile p = SmallFn("multi", "python", 100);
  p.processes = 3;
  Checkpointer cp;
  FunctionSnapshot snap = cp.Checkpoint(p);
  EXPECT_EQ(snap.processes.size(), 3u);
}

class DedupTest : public ::testing::Test {
 protected:
  DedupTest() : cxl_(8 * kGiB) {
    tiered_.AddTier(&cxl_);
  }
  CxlPool cxl_;
  TieredPool tiered_;
};

TEST_F(DedupTest, IdenticalRegionsStoredOnce) {
  SnapshotDedupStore store(&tiered_);
  Checkpointer cp;
  auto img_a = store.Store(cp.Checkpoint(SmallFn("fa", "python", 100)));
  ASSERT_TRUE(img_a.ok());
  const uint64_t after_a = store.stored_unique_pages();
  auto img_b = store.Store(cp.Checkpoint(SmallFn("fb", "python", 100)));
  ASSERT_TRUE(img_b.ok());
  const uint64_t added_by_b = store.stored_unique_pages() - after_a;
  // fb shares libc + python runtime with fa: ~43% of its image dedups away.
  EXPECT_LT(static_cast<double>(added_by_b), 0.65 * static_cast<double>(img_b->total_pages));
  EXPECT_LT(store.DedupRatio(), 0.8);
  // Storing fa again is a pure dedup hit.
  auto img_a2 = store.Store(cp.Checkpoint(SmallFn("fa", "python", 100)));
  ASSERT_TRUE(img_a2.ok());
  EXPECT_EQ(img_a2->unique_pages, 0u);
}

TEST_F(DedupTest, PlacementsCoverRegionsInOrder) {
  SnapshotDedupStore store(&tiered_, /*chunk_pages=*/64);
  Checkpointer cp;
  auto image = store.Store(cp.Checkpoint(SmallFn("f", "python", 10)));
  ASSERT_TRUE(image.ok());
  for (const auto& process : image->processes) {
    for (const auto& placed : process) {
      uint64_t chunk_pages = 0;
      for (const auto& chunk : placed.chunks) {
        chunk_pages += chunk.npages;
      }
      EXPECT_EQ(chunk_pages, placed.region.npages);
    }
  }
}

TEST_F(DedupTest, ContentActuallyInPool) {
  SnapshotDedupStore store(&tiered_);
  Checkpointer cp;
  auto image = store.Store(cp.Checkpoint(SmallFn("f", "python", 10)));
  ASSERT_TRUE(image.ok());
  const auto& placed = image->processes[0][0];
  const auto& chunk = placed.chunks[0];
  auto content = cxl_.ReadContent(chunk.offset);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, placed.region.content_base);
}

// The memoized fingerprint fast paths must agree with the defining loop for
// every (base, npages) — including repeats, prefix reuse (shorter chunk after
// a longer one), and the chain-extension path (longer after shorter).
TEST_F(DedupTest, FingerprintFastPathMatchesLoop) {
  auto loop_progression = [](PageContent base, uint64_t npages) {
    uint64_t hash = 0x5ead0b6c0de5ULL;
    for (uint64_t i = 0; i < npages; ++i) {
      hash = MixU64(hash ^ (base + i));
    }
    return hash;
  };
  auto loop_constant = [](PageContent content, uint64_t npages) {
    uint64_t hash = 0x5ead0b6c0de5ULL;
    for (uint64_t i = 0; i < npages; ++i) {
      hash = MixU64(hash ^ content);
    }
    return hash;
  };
  const PageContent bases[] = {0, 1, 1000, 0xDEADBEEF, ~0ULL - 4096};
  const uint64_t sizes[] = {0, 1, 2, 15, 16, 512, 513, 511, 512};  // repeats on purpose
  for (const PageContent base : bases) {
    for (const uint64_t n : sizes) {
      EXPECT_EQ(SnapshotDedupStore::Fingerprint(base, n), loop_progression(base, n))
          << "base " << base << " npages " << n;
      EXPECT_EQ(SnapshotDedupStore::FingerprintConstant(base, n), loop_constant(base, n))
          << "base " << base << " npages " << n;
    }
  }
  // A second identical pass must hit the memo and return the same values.
  for (const PageContent base : bases) {
    EXPECT_EQ(SnapshotDedupStore::Fingerprint(base, 512), loop_progression(base, 512));
    EXPECT_EQ(SnapshotDedupStore::FingerprintConstant(base, 512), loop_constant(base, 512));
  }
  // Constant and progression chains must stay distinct (npages > 1).
  EXPECT_NE(SnapshotDedupStore::Fingerprint(42, 8),
            SnapshotDedupStore::FingerprintConstant(42, 8));
}

// Engine fixture with the full substrate.
class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : base_layer_(std::make_shared<FsLayer>("base")),
        cxl_(32 * kGiB),
        rdma_(32 * kGiB),
        frames_(64 * kGiB),
        factory_(base_layer_),
        mmt_(&backends_) {
    backends_.Register(&cxl_);
    backends_.Register(&rdma_);
    tiered_cxl_.AddTier(&cxl_);
    tiered_rdma_.AddTier(&rdma_);
    profile_ = SmallFn("fn", "python", 128);
    profile_.threads = 14;
  }

  RestoreContext Ctx() {
    RestoreContext ctx;
    ctx.frames = &frames_;
    ctx.backends = &backends_;
    ctx.pids = &pids_;
    return ctx;
  }

  std::shared_ptr<FsLayer> base_layer_;
  CxlPool cxl_;
  RdmaPool rdma_;
  FrameAllocator frames_;
  BackendRegistry backends_;
  TieredPool tiered_cxl_;
  TieredPool tiered_rdma_;
  SandboxFactory factory_;
  SandboxPool pool_;
  MmtApi mmt_;
  PidAllocator pids_;
  FunctionProfile profile_;
};

TEST_F(EngineTest, ColdStartMaterializesFullImage) {
  ColdStartEngine engine(&factory_, &pool_);
  ASSERT_TRUE(engine.Prepare(profile_).ok());
  RestoreContext ctx = Ctx();
  auto outcome = engine.Restore(profile_, ctx);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->startup.process_is_cpu);
  EXPECT_EQ(outcome->startup.process, profile_.bootstrap);
  EXPECT_GT(outcome->startup.sandbox.millis(), 100.0);
  // Whole image resident locally.
  const double resident = static_cast<double>(outcome->instance->ResidentLocalPages());
  EXPECT_NEAR(resident / static_cast<double>(profile_.ImagePages()), 1.0, 0.06);
}

TEST_F(EngineTest, CriuMemoryCopyDominatesItsStartup) {
  VanillaCriuEngine engine(&factory_, &pool_);
  ASSERT_TRUE(engine.Prepare(profile_).ok());
  RestoreContext ctx = Ctx();
  auto outcome = engine.Restore(profile_, ctx);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->startup.process_is_cpu);
  // 128 MiB at ~1 GiB/s: ~125 ms of memory restoration.
  EXPECT_NEAR(outcome->startup.memory.millis(), 125.0, 15.0);
  // CRIU restore is far cheaper than a cold bootstrap but pays the copy.
  EXPECT_LT(outcome->startup.process.millis(), 10.0);
}

TEST_F(EngineTest, ReapPrefetchesWorkingSetOnly) {
  ReapEngine engine(&factory_, &pool_, ReapEngine::Options{.pooled_netns = true});
  ASSERT_TRUE(engine.Prepare(profile_).ok());
  RestoreContext ctx = Ctx();
  auto outcome = engine.Restore(profile_, ctx);
  ASSERT_TRUE(outcome.ok());
  const uint64_t overhead = outcome->instance->overhead_pages;
  const double resident =
      static_cast<double>(outcome->instance->ResidentLocalPages() - overhead);
  const double ws = profile_.pages.working_set_fraction * static_cast<double>(profile_.ImagePages());
  EXPECT_NEAR(resident / ws, 1.0, 0.1);
  // Execution pays userfaultfd costs for the rest.
  auto overheads = engine.OnExecute(profile_, *outcome->instance, ctx);
  ASSERT_TRUE(overheads.ok());
  EXPECT_GT(overheads->added_latency.millis(), 1.0);
  // Second invocation is mostly resident: far cheaper.
  auto second = engine.OnExecute(profile_, *outcome->instance, ctx);
  ASSERT_TRUE(second.ok());
  EXPECT_LT(second->added_latency.nanos(), overheads->added_latency.nanos() / 5);
}

TEST_F(EngineTest, FaasnapStartsFasterButStillLazy) {
  ReapEngine reap(&factory_, &pool_, ReapEngine::Options{.pooled_netns = true});
  FaasnapEngine faasnap(&factory_, &pool_, /*pooled_netns=*/true);
  ASSERT_TRUE(reap.Prepare(profile_).ok());
  ASSERT_TRUE(faasnap.Prepare(profile_).ok());
  RestoreContext ctx = Ctx();
  auto reap_outcome = reap.Restore(profile_, ctx);
  auto faasnap_outcome = faasnap.Restore(profile_, ctx);
  ASSERT_TRUE(reap_outcome.ok() && faasnap_outcome.ok());
  EXPECT_LT(faasnap_outcome->startup.memory, reap_outcome->startup.memory);
}

TEST_F(EngineTest, TrEnvColdFallbackUsesCloneInto) {
  SnapshotDedupStore dedup(&tiered_cxl_);
  TrEnvEngine engine(&factory_, &pool_, &mmt_, &dedup);
  ASSERT_TRUE(engine.Prepare(profile_).ok());
  RestoreContext ctx = Ctx();
  // Pool empty: falls back to cold creation, but with CLONE_INTO_CGROUP.
  auto outcome = engine.Restore(profile_, ctx);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->startup.sandbox_repurposed);
  // Memory restoration via attach is sub-millisecond even on the cold path.
  EXPECT_LT(outcome->startup.memory.millis(), 1.5);
  // No local memory materialized: everything maps to CXL.
  EXPECT_EQ(outcome->instance->ResidentLocalPages(), 0u);
  EXPECT_GT(outcome->instance->main_process()->mm().RemoteMappedPages(), 0u);
}

TEST_F(EngineTest, TrEnvRepurposeRoundTrip) {
  SnapshotDedupStore dedup(&tiered_cxl_);
  TrEnvEngine engine(&factory_, &pool_, &mmt_, &dedup);
  FunctionProfile fn_a = SmallFn("fn-a", "python", 64);
  FunctionProfile fn_b = SmallFn("fn-b", "nodejs", 96);
  ASSERT_TRUE(engine.Prepare(fn_a).ok());
  ASSERT_TRUE(engine.Prepare(fn_b).ok());
  RestoreContext ctx = Ctx();

  auto first = engine.Restore(fn_a, ctx);
  ASSERT_TRUE(first.ok());
  // Retire parks the sandbox in the universal pool.
  engine.Retire(std::move(first->instance), ctx);
  EXPECT_EQ(pool_.idle_count(), 1u);
  EXPECT_EQ(frames_.used_pages(), 0u);  // all memory released

  // A DIFFERENT function repurposes the same sandbox.
  auto second = engine.Restore(fn_b, ctx);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->startup.sandbox_repurposed);
  EXPECT_EQ(second->instance->sandbox()->current_function(), "fn-b");
  // Repurposed startup is dramatically cheaper than the cold path:
  // ~1 ms sandbox + sub-ms attach + thread clones.
  EXPECT_LT(second->startup.Total().millis(), 10.0);
}

TEST_F(EngineTest, TrEnvCxlExecutionCowsOnlyWrites) {
  SnapshotDedupStore dedup(&tiered_cxl_);
  TrEnvEngine engine(&factory_, &pool_, &mmt_, &dedup);
  ASSERT_TRUE(engine.Prepare(profile_).ok());
  RestoreContext ctx = Ctx();
  auto outcome = engine.Restore(profile_, ctx);
  ASSERT_TRUE(outcome.ok());
  auto overheads = engine.OnExecute(profile_, *outcome->instance, ctx);
  ASSERT_TRUE(overheads.ok());
  // CXL reads are direct: only written pages become local.
  const uint64_t resident = outcome->instance->ResidentLocalPages();
  const auto writable_estimate = static_cast<uint64_t>(
      profile_.pages.write_fraction * 0.35 * static_cast<double>(profile_.ImagePages()));
  EXPECT_GT(resident, 0u);
  EXPECT_LT(resident, profile_.ImagePages() / 3);
  EXPECT_GT(resident, writable_estimate / 4);
  // Memory-latency slowdown applies.
  EXPECT_GT(overheads->cpu_multiplier, 1.0);
  engine.OnExecuteDone(*outcome->instance);
}

TEST_F(EngineTest, TrEnvRdmaExecutionFaultsAndOpensStreams) {
  SnapshotDedupStore dedup(&tiered_rdma_);
  TrEnvEngine engine(&factory_, &pool_, &mmt_, &dedup);
  ASSERT_TRUE(engine.Prepare(profile_).ok());
  RestoreContext ctx = Ctx();
  auto outcome = engine.Restore(profile_, ctx);
  ASSERT_TRUE(outcome.ok());
  auto overheads = engine.OnExecute(profile_, *outcome->instance, ctx);
  ASSERT_TRUE(overheads.ok());
  // RDMA fetches add real latency and CPU.
  EXPECT_GT(overheads->added_latency.millis(), 5.0);
  EXPECT_GT(overheads->added_cpu.micros(), 100.0);
  EXPECT_EQ(rdma_.active_streams(), 1u);
  engine.OnExecuteDone(*outcome->instance);
  EXPECT_EQ(rdma_.active_streams(), 0u);
}

TEST_F(EngineTest, TrEnvSharesPoolPagesAcrossInstances) {
  SnapshotDedupStore dedup(&tiered_cxl_);
  TrEnvEngine engine(&factory_, &pool_, &mmt_, &dedup);
  ASSERT_TRUE(engine.Prepare(profile_).ok());
  const uint64_t pool_used_after_prepare = cxl_.used_bytes();
  RestoreContext ctx = Ctx();
  auto a = engine.Restore(profile_, ctx);
  auto b = engine.Restore(profile_, ctx);
  ASSERT_TRUE(a.ok() && b.ok());
  // Two instances, zero extra pool bytes: templates map the same image.
  EXPECT_EQ(cxl_.used_bytes(), pool_used_after_prepare);
  const auto* templates = engine.TemplatesFor(profile_.name);
  ASSERT_NE(templates, nullptr);
  auto tmpl = mmt_.registry().Lookup((*templates)[0]);
  ASSERT_TRUE(tmpl.ok());
  EXPECT_EQ((*tmpl)->attach_count(), 2u);
}

TEST_F(EngineTest, AblationOrdering) {
  // Startup latency must strictly improve along Fig 21's optimization steps:
  // CRIU > Reconfig > Cgroup > full TrEnv.
  SnapshotDedupStore dedup(&tiered_cxl_);
  VanillaCriuEngine criu(&factory_, &pool_);
  TrEnvEngine reconfig(&factory_, &pool_, &mmt_, &dedup,
                       TrEnvEngine::Options{.repurpose_sandbox = true,
                                            .clone_into_cgroup = false,
                                            .use_mm_template = false});
  TrEnvEngine cgroup(&factory_, &pool_, &mmt_, &dedup,
                     TrEnvEngine::Options{.repurpose_sandbox = true,
                                          .clone_into_cgroup = true,
                                          .use_mm_template = false});
  SnapshotDedupStore dedup_full(&tiered_cxl_);
  TrEnvEngine full(&factory_, &pool_, &mmt_, &dedup_full);

  auto startup_of = [&](RestoreEngine& engine) {
    EXPECT_TRUE(engine.Prepare(profile_).ok());
    RestoreContext ctx = Ctx();
    // Warm the sandbox pool so repurposing engines hit it.
    auto warmup = engine.Restore(profile_, ctx);
    EXPECT_TRUE(warmup.ok());
    engine.Retire(std::move(warmup->instance), ctx);
    auto outcome = engine.Restore(profile_, ctx);
    EXPECT_TRUE(outcome.ok());
    SimDuration total = outcome->startup.Total();
    engine.Retire(std::move(outcome->instance), ctx);
    while (pool_.Take() != nullptr) {
    }
    return total;
  };

  const SimDuration criu_t = startup_of(criu);
  const SimDuration reconfig_t = startup_of(reconfig);
  const SimDuration cgroup_t = startup_of(cgroup);
  const SimDuration full_t = startup_of(full);
  EXPECT_GT(criu_t, reconfig_t);
  EXPECT_GT(reconfig_t, cgroup_t);
  EXPECT_GT(cgroup_t, full_t);
  // Full TrEnv: paper reports ~8-18 ms class startups.
  EXPECT_LT(full_t.millis(), 20.0);
}

// --- Lazy-engine boundary conditions -------------------------------------

// Finds the first span with `name` in `tracer`, or null.
const obs::Span* FindSpan(const obs::Tracer& tracer, std::string_view name) {
  for (const auto& span : tracer.spans()) {
    if (span.name == name) {
      return &span;
    }
  }
  return nullptr;
}

TEST_F(EngineTest, ReapEagerFractionZeroPrefetchesNothing) {
  ReapEngine engine(&factory_, &pool_,
                    ReapEngine::Options{.pooled_netns = true, .eager_fraction = 0.0});
  ASSERT_TRUE(engine.Prepare(profile_).ok());
  obs::Tracer tracer;
  RestoreContext ctx = Ctx();
  ctx.tracer = &tracer;
  ctx.trace_loc = {tracer.RegisterProcess("test", [] { return SimTime(); }), 0};
  auto outcome = engine.Restore(profile_, ctx);
  ASSERT_TRUE(outcome.ok());
  // No eager load: the memory phase is free and only the fixed VM overhead
  // is resident. A zero-page prefetch must also leave no trace span behind.
  EXPECT_EQ(outcome->startup.memory, SimDuration::Zero());
  EXPECT_EQ(outcome->instance->ResidentLocalPages(), outcome->instance->overhead_pages);
  EXPECT_EQ(FindSpan(tracer, "vm.eager_prefetch"), nullptr);
  // Everything deferred to execution: the fault bill is the full invocation.
  auto overheads = engine.OnExecute(profile_, *outcome->instance, ctx);
  ASSERT_TRUE(overheads.ok());
  EXPECT_GT(overheads->added_latency.millis(), 1.0);
}

TEST_F(EngineTest, ReapEagerFractionOneLoadsExactlyTheRecordedSet) {
  ReapEngine engine(&factory_, &pool_,
                    ReapEngine::Options{.pooled_netns = true, .eager_fraction = 1.0});
  ASSERT_TRUE(engine.Prepare(profile_).ok());
  obs::Tracer tracer;
  RestoreContext ctx = Ctx();
  ctx.tracer = &tracer;
  ctx.trace_loc = {tracer.RegisterProcess("test", [] { return SimTime(); }), 0};
  auto outcome = engine.Restore(profile_, ctx);
  ASSERT_TRUE(outcome.ok());
  // The span's eager_pages annotation must agree with what became resident.
  const uint64_t eager =
      outcome->instance->ResidentLocalPages() - outcome->instance->overhead_pages;
  EXPECT_GT(eager, 0u);
  const obs::Span* span = FindSpan(tracer, "vm.eager_prefetch");
  ASSERT_NE(span, nullptr);
  const auto* annotated = [&]() -> const int64_t* {
    for (const auto& [key, value] : span->args) {
      if (key == "eager_pages") {
        return std::get_if<int64_t>(&value);
      }
    }
    return nullptr;
  }();
  ASSERT_NE(annotated, nullptr);
  EXPECT_EQ(static_cast<uint64_t>(*annotated), eager);
  EXPECT_GT(outcome->startup.memory, SimDuration::Zero());
}

TEST_F(EngineTest, ReapZeroWorkingSetEmitsNoPrefetchSpan) {
  FunctionProfile no_ws = SmallFn("no-ws", "python", 64);
  no_ws.pages.working_set_fraction = 0.0;
  ReapEngine engine(&factory_, &pool_, ReapEngine::Options{.pooled_netns = true});
  ASSERT_TRUE(engine.Prepare(no_ws).ok());
  obs::Tracer tracer;
  RestoreContext ctx = Ctx();
  ctx.tracer = &tracer;
  ctx.trace_loc = {tracer.RegisterProcess("test", [] { return SimTime(); }), 0};
  auto outcome = engine.Restore(no_ws, ctx);
  ASSERT_TRUE(outcome.ok());
  // An empty working set means a full eager fraction still loads zero pages.
  EXPECT_EQ(outcome->startup.memory, SimDuration::Zero());
  EXPECT_EQ(outcome->instance->ResidentLocalPages(), outcome->instance->overhead_pages);
  EXPECT_EQ(FindSpan(tracer, "vm.eager_prefetch"), nullptr);
}

// --- TrEnv working-set recording and batched prefetch ---------------------

TEST_F(EngineTest, TrEnvPrefetchOffByDefaultKeepsDemandFaulting) {
  SnapshotDedupStore dedup(&tiered_rdma_);
  TrEnvEngine engine(&factory_, &pool_, &mmt_, &dedup);
  ASSERT_TRUE(engine.Prepare(profile_).ok());
  RestoreContext ctx = Ctx();
  auto first = engine.Restore(profile_, ctx);
  ASSERT_TRUE(first.ok());
  auto first_exec = engine.OnExecute(profile_, *first->instance, ctx);
  ASSERT_TRUE(first_exec.ok());
  engine.OnExecuteDone(*first->instance);
  engine.Retire(std::move(first->instance), ctx);
  // Nothing recorded, nothing prefetched: the default engine is unchanged.
  EXPECT_EQ(engine.WorkingSetFor(profile_.name), nullptr);
  EXPECT_EQ(engine.prefetch_nic().total_ops(), 0u);
  auto second = engine.Restore(profile_, ctx);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->instance->ResidentLocalPages(), 0u);
  // The second invocation demand-faults the full set again.
  auto second_exec = engine.OnExecute(profile_, *second->instance, ctx);
  ASSERT_TRUE(second_exec.ok());
  EXPECT_GT(second_exec->added_latency.millis(), 5.0);
  engine.OnExecuteDone(*second->instance);
}

TEST_F(EngineTest, TrEnvRecordsWorkingSetOnFirstInvocation) {
  SnapshotDedupStore dedup(&tiered_rdma_);
  TrEnvEngine::Options opts;
  opts.prefetch.enabled = true;
  TrEnvEngine engine(&factory_, &pool_, &mmt_, &dedup, opts);
  ASSERT_TRUE(engine.Prepare(profile_).ok());
  RestoreContext ctx = Ctx();
  auto outcome = engine.Restore(profile_, ctx);
  ASSERT_TRUE(outcome.ok());
  // Restore alone records nothing — the profile completes with the first
  // invocation's touches.
  EXPECT_EQ(engine.WorkingSetFor(profile_.name), nullptr);
  ASSERT_TRUE(engine.OnExecute(profile_, *outcome->instance, ctx).ok());
  engine.OnExecuteDone(*outcome->instance);
  const WorkingSetProfile* ws = engine.WorkingSetFor(profile_.name);
  ASSERT_NE(ws, nullptr);
  EXPECT_TRUE(ws->complete);
  EXPECT_GT(ws->TotalPages(), 0u);
  EXPECT_GT(ws->TotalRuns(), 0u);
  EXPECT_LE(ws->TotalPages(), profile_.ImagePages());
  // Compact representation: orders of magnitude fewer runs than pages.
  EXPECT_LT(ws->TotalRuns() * 8, ws->TotalPages());
}

TEST_F(EngineTest, TrEnvSecondAttachPrefetchesTheRecordedSet) {
  SnapshotDedupStore dedup(&tiered_rdma_);
  TrEnvEngine::Options opts;
  opts.prefetch.enabled = true;
  TrEnvEngine engine(&factory_, &pool_, &mmt_, &dedup, opts);
  ASSERT_TRUE(engine.Prepare(profile_).ok());
  RestoreContext ctx = Ctx();
  auto first = engine.Restore(profile_, ctx);
  ASSERT_TRUE(first.ok());
  auto first_exec = engine.OnExecute(profile_, *first->instance, ctx);
  ASSERT_TRUE(first_exec.ok());
  engine.OnExecuteDone(*first->instance);
  engine.Retire(std::move(first->instance), ctx);
  const WorkingSetProfile* ws = engine.WorkingSetFor(profile_.name);
  ASSERT_NE(ws, nullptr);

  obs::Tracer tracer;
  RestoreContext traced = Ctx();
  traced.tracer = &tracer;
  traced.trace_loc = {tracer.RegisterProcess("test", [] { return SimTime(); }), 0};
  auto second = engine.Restore(profile_, traced);
  ASSERT_TRUE(second.ok());
  // Every recorded page is resident straight out of Restore, delivered as
  // coalesced bulk fetches through the engine's NIC queue.
  EXPECT_EQ(second->instance->ResidentLocalPages(), ws->TotalPages());
  EXPECT_GT(engine.prefetch_nic().total_ops(), 0u);
  EXPECT_EQ(engine.prefetch_nic().total_pages(), ws->TotalPages());
  const obs::Span* span = FindSpan(tracer, "trenv.prefetch");
  ASSERT_NE(span, nullptr);
  // The second invocation's demand-fault bill collapses: only residual cold
  // pages (touches outside the recorded set) still fault.
  auto second_exec = engine.OnExecute(profile_, *second->instance, traced);
  ASSERT_TRUE(second_exec.ok());
  EXPECT_LT(second_exec->added_latency.nanos(), first_exec->added_latency.nanos() / 4);
  engine.OnExecuteDone(*second->instance);
}

TEST_F(EngineTest, TrEnvPrefetchSkipsByteAddressableTemplates) {
  // T-CXL templates attach with zero lazy pages (reads go straight to CXL),
  // so the prefetcher must not issue anything even when enabled.
  SnapshotDedupStore dedup(&tiered_cxl_);
  TrEnvEngine::Options opts;
  opts.prefetch.enabled = true;
  TrEnvEngine engine(&factory_, &pool_, &mmt_, &dedup, opts);
  ASSERT_TRUE(engine.Prepare(profile_).ok());
  RestoreContext ctx = Ctx();
  auto first = engine.Restore(profile_, ctx);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(engine.OnExecute(profile_, *first->instance, ctx).ok());
  engine.OnExecuteDone(*first->instance);
  engine.Retire(std::move(first->instance), ctx);
  // A working set was still recorded (it feeds promotion)...
  EXPECT_NE(engine.WorkingSetFor(profile_.name), nullptr);
  auto second = engine.Restore(profile_, ctx);
  ASSERT_TRUE(second.ok());
  // ...but the second attach fetched nothing: CXL pages need no prefetch.
  EXPECT_EQ(engine.prefetch_nic().total_ops(), 0u);
  EXPECT_EQ(second->instance->ResidentLocalPages(), 0u);
  engine.OnExecuteDone(*second->instance);
}

TEST_F(EngineTest, TrEnvPromotionHeatsByRecordedWorkingSet) {
  // With promotion enabled (prefetch off), the first invocation still records
  // the working set, and subsequent heat accounting follows it: touched
  // chunks migrate to the byte-addressable tier, untouched chunks stay cold
  // in RDMA instead of being heated uniformly.
  TieredPool tiered;
  tiered.AddTier(&cxl_);
  tiered.AddTier(&rdma_);
  SnapshotDedupStore dedup(&tiered);
  PromotionManager promotion(&tiered, &mmt_.registry(),
                             PromotionManager::Options{.promote_threshold = 3,
                                                       .max_promotions_per_sweep = 64});
  TrEnvEngine engine(&factory_, &pool_, &mmt_, &dedup);
  engine.EnablePromotion(&promotion, /*interval=*/4);
  ASSERT_TRUE(engine.Prepare(profile_).ok());
  RestoreContext ctx = Ctx();
  for (int i = 0; i < 8; ++i) {
    auto outcome = engine.Restore(profile_, ctx);
    ASSERT_TRUE(outcome.ok());
    ASSERT_TRUE(engine.OnExecute(profile_, *outcome->instance, ctx).ok());
    engine.OnExecuteDone(*outcome->instance);
    engine.Retire(std::move(outcome->instance), ctx);
  }
  // Promotion alone arms the recorder — no prefetch needed.
  const WorkingSetProfile* ws = engine.WorkingSetFor(profile_.name);
  ASSERT_NE(ws, nullptr);
  ASSERT_GT(ws->TotalPages(), 0u);
  ASSERT_LT(ws->TotalPages(), profile_.ImagePages());
  EXPECT_GT(promotion.promoted_chunks(), 0u);
  // Touched chunks moved into CXL; cold chunks are still RDMA-homed. Under
  // uniform heating everything would have crossed the threshold together.
  uint64_t cxl_pages = 0;
  uint64_t rdma_pages = 0;
  mmt_.registry().ForEach([&](MmTemplate& tmpl) {
    cxl_pages += tmpl.page_table().CountPagesIf(
        [](const PteFlags& f) { return f.pool == PoolKind::kCxl; });
    rdma_pages += tmpl.page_table().CountPagesIf(
        [](const PteFlags& f) { return f.pool == PoolKind::kRdma; });
  });
  EXPECT_GT(cxl_pages, 0u);
  EXPECT_GT(rdma_pages, 0u);
}

}  // namespace
}  // namespace trenv
