// Randomized PTE flag invariants across the mm-template lifecycle: chunks
// bounce between tiers (promotion/demotion), templates are spliced with
// private local runs, and after every sweep each template's page table must
// still satisfy:
//
//   * remote()  <=>  the pool-id names a registered remote tier, and the
//     run's backing offset lies inside a chunk currently placed on exactly
//     that tier;
//   * valid mirrors the tier's byte-addressability (CXL pre-populated,
//     RDMA/NAS lazy), and remote template runs stay write-protected;
//   * the shared / owner / dirty bits (src/shstate/) never appear in a
//     template — MmtAttach enforces this and refuses to clone a dirty one.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/mempool/cxl_pool.h"
#include "src/mempool/promotion.h"
#include "src/mempool/rdma_pool.h"
#include "src/mmtemplate/api.h"
#include "src/simkernel/mm_struct.h"

namespace trenv {
namespace {

class PteInvariantsTest : public ::testing::Test {
 protected:
  // A deliberately small CXL tier so promotion sweeps hit capacity and the
  // hot-tier budget forces demotions back out.
  PteInvariantsTest() : cxl_(2 * kMiB), rdma_(1 * kGiB), api_(&backends_) {
    backends_.Register(&cxl_);
    backends_.Register(&rdma_);
    tiered_.AddTier(&cxl_);
    tiered_.AddTier(&rdma_);
  }

  struct Chunk {
    PoolPlacement placement;
    Vaddr addr = 0;
  };

  Chunk MakeColdChunk(MmtId id, Vaddr addr, uint64_t npages, PageContent content) {
    auto base = rdma_.AllocatePages(npages);
    EXPECT_TRUE(base.ok());
    EXPECT_TRUE(rdma_.WriteContent(*base, npages, content).ok());
    EXPECT_TRUE(
        api_.MmtAddMap(id, addr, npages * kPageSize, Protection::ReadWrite(), true, -1, 0)
            .ok());
    EXPECT_TRUE(api_.MmtSetupPt(id, addr, npages * kPageSize, *base, PoolKind::kRdma).ok());
    return Chunk{PoolPlacement{PoolKind::kRdma, *base, npages}, addr};
  }

  // The invariant walk: every remote run in every template must point into a
  // chunk currently placed on the run's pool, with tier-consistent flags.
  void CheckTemplates(const std::vector<Chunk>& chunks, int round) {
    api_.registry().ForEach([&](MmTemplate& tmpl) {
      tmpl.page_table().ForEachRun([&](Vpn vpn, const PteRun& run) {
        SCOPED_TRACE("round " + std::to_string(round) + " vpn " + std::to_string(vpn));
        EXPECT_FALSE(run.flags.shared);
        EXPECT_FALSE(run.flags.owner);
        EXPECT_FALSE(run.flags.dirty);
        if (!run.flags.remote()) {
          return;  // spliced private pages; local frames, no tier invariant
        }
        EXPECT_TRUE(run.flags.write_protected);
        ASSERT_NE(run.backing_base, kNoBacking);
        MemoryBackend* backend = backends_.Get(run.flags.pool);
        ASSERT_NE(backend, nullptr);
        EXPECT_EQ(run.flags.valid, backend->byte_addressable());
        bool inside_matching_chunk = false;
        for (const Chunk& chunk : chunks) {
          if (chunk.placement.kind == run.flags.pool &&
              run.backing_base >= chunk.placement.base &&
              run.backing_base + run.npages <= chunk.placement.base + chunk.placement.npages) {
            inside_matching_chunk = true;
            break;
          }
        }
        // A run whose pool-id disagrees with where its chunk actually lives
        // means a promotion/demotion left a stale PTE behind.
        EXPECT_TRUE(inside_matching_chunk)
            << "pool " << static_cast<int>(run.flags.pool) << " backing "
            << run.backing_base;
      });
    });
  }

  CxlPool cxl_;
  RdmaPool rdma_;
  BackendRegistry backends_;
  TieredPool tiered_;
  MmtApi api_;
};

TEST_F(PteInvariantsTest, RandomizedPromotionDemotionSpliceKeepsFlagsConsistent) {
  PromotionManager::Options options;
  options.promote_threshold = 2;
  options.max_promotions_per_sweep = 4;
  options.heat_decay = 0.5;
  options.hot_tier_budget_pages = 64;  // ~2-3 chunks: forces constant churn
  options.demote_threshold = 4;
  options.max_demotions_per_sweep = 4;
  PromotionManager manager(&tiered_, &api_.registry(), options);

  Rng rng(0x9e3779b9);
  std::vector<Chunk> chunks;
  std::vector<MmtId> templates;
  constexpr Vaddr kBase = 0x40000000;
  for (uint32_t t = 0; t < 3; ++t) {
    const MmtId id = api_.MmtCreate("fn" + std::to_string(t));
    templates.push_back(id);
    for (uint32_t c = 0; c < 4; ++c) {
      const uint64_t npages = 8 + rng.NextU64() % 25;  // 8..32 pages
      const Vaddr addr = kBase + (t * 64 + c * 16) * kMiB;
      chunks.push_back(MakeColdChunk(id, addr, npages, 0x1000 * (t * 4 + c + 1)));
    }
  }

  for (int round = 0; round < 60; ++round) {
    // Random heat: some chunks earn promotion, idle ones decay toward the
    // demotion threshold.
    for (Chunk& chunk : chunks) {
      if (rng.NextDouble() < 0.5) {
        manager.RecordAccess(chunk.placement, 1 + rng.NextU64() % 4);
      }
    }
    // Occasional splice: a private local run punched into the middle of a
    // template chunk (the CoW shape), splitting the remote run around it.
    if (rng.NextDouble() < 0.4) {
      const Chunk& chunk = chunks[rng.NextU64() % chunks.size()];
      if (chunk.placement.npages > 4) {
        const MmtId id = templates[rng.NextU64() % templates.size()];
        auto tmpl = api_.registry().Lookup(id);
        ASSERT_TRUE(tmpl.ok());
        // Only splice the template that actually maps this chunk's window.
        if ((*tmpl)->FindVma(chunk.addr) != nullptr) {
          const uint64_t offset = 1 + rng.NextU64() % (chunk.placement.npages - 2);
          PteFlags local;
          local.valid = true;
          local.write_protected = false;
          local.pool = PoolKind::kLocalDram;
          (*tmpl)->page_table().MapRange(AddrToVpn(chunk.addr) + offset, 1, local,
                                         /*backing_base=*/round + 1,
                                         /*content_base=*/0xbeef);
        }
      }
    }
    const auto moves = manager.Sweep();
    for (const auto& move : moves) {
      for (Chunk& chunk : chunks) {
        if (chunk.placement.kind == move.from.kind &&
            chunk.placement.base == move.from.base &&
            chunk.placement.npages == move.from.npages) {
          chunk.placement = move.to;
        }
      }
    }
    CheckTemplates(chunks, round);
  }
  // The sweep loop must have actually moved chunks both ways, or the test
  // exercised nothing.
  EXPECT_GT(manager.promoted_chunks(), 0u);
  EXPECT_GT(manager.demoted_chunks(), 0u);
}

TEST_F(PteInvariantsTest, AttachRefusesTemplateWithSharedRegionBits) {
  const MmtId id = api_.MmtCreate("poisoned");
  Chunk chunk = MakeColdChunk(id, 0x40000000, 8, 0x42);
  auto tmpl = api_.registry().Lookup(id);
  ASSERT_TRUE(tmpl.ok());
  MmStruct target;
  ASSERT_TRUE(api_.MmtAttach(id, &target).ok());  // clean template attaches

  // Poison one PTE with an shstate owner bit; the next attach must refuse.
  PteFlags poisoned;
  poisoned.valid = true;
  poisoned.write_protected = false;
  poisoned.pool = chunk.placement.kind;
  poisoned.shared = true;
  poisoned.owner = true;
  (*tmpl)->page_table().MapRange(AddrToVpn(chunk.addr), 1, poisoned,
                                 chunk.placement.base, 0x42);
  MmStruct second;
  auto attach = api_.MmtAttach(id, &second);
  EXPECT_FALSE(attach.ok());
  // And the failed attach left the target untouched.
  EXPECT_EQ(second.page_table().mapped_pages(), 0u);
}

}  // namespace
}  // namespace trenv
