// Streaming/materialized equivalence: collecting an ArrivalStream must be
// byte-identical to the generate-then-SortSchedule path using the same RNG
// draws, across seeds. The reference generators below are the historical
// materialized loops, kept verbatim so the streams are pinned against the
// original semantics rather than against themselves.
#include "src/workload/arrival_stream.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/workload/arrival.h"

namespace trenv {
namespace {

const std::vector<uint64_t> kSeeds = {1, 7, 42, 1234, 987654321};
const std::vector<std::string> kFns = {"JS", "DH", "IR", "CR", "PR"};

// The pre-stream MakePoissonWorkload loop, verbatim.
Schedule ReferencePoisson(const std::vector<std::string>& functions, double rate_per_sec,
                          SimDuration duration, double function_skew, Rng& rng) {
  Schedule schedule;
  if (functions.empty() || rate_per_sec <= 0) {
    return schedule;
  }
  double t = rng.NextExponential(1.0 / rate_per_sec);
  while (t < duration.seconds()) {
    const uint64_t pick = rng.NextZipf(functions.size(), function_skew);
    schedule.push_back({SimTime::Zero() + SimDuration::FromSecondsF(t), functions[pick]});
    t += rng.NextExponential(1.0 / rate_per_sec);
  }
  return schedule;
}

// The pre-stream MakeDiurnalWorkload loop, verbatim.
Schedule ReferenceDiurnal(const std::vector<std::string>& functions,
                          const DiurnalOptions& options, Rng& rng) {
  Schedule schedule;
  if (functions.empty()) {
    return schedule;
  }
  const double duration_s = options.duration.seconds();
  double t = 0;
  while (t < duration_s) {
    const double phase = 2.0 * std::numbers::pi * options.cycles * (t / duration_s);
    const double mix = 0.5 * (1.0 - std::cos(phase));
    const double rate = options.trough_rate_per_sec +
                        (options.peak_rate_per_sec - options.trough_rate_per_sec) * mix;
    t += rng.NextExponential(1.0 / std::max(rate, 1e-3));
    if (t >= duration_s) {
      break;
    }
    const uint64_t rotation = static_cast<uint64_t>(
        options.cycles * t / duration_s * static_cast<double>(functions.size()));
    const uint64_t pick = (rng.NextZipf(functions.size(), options.function_skew) + rotation) %
                          functions.size();
    schedule.push_back({SimTime::Zero() + SimDuration::FromSecondsF(t), functions[pick]});
    if (rng.NextBool(options.clump_probability)) {
      for (uint32_t k = 0; k < options.clump_size; ++k) {
        schedule.push_back({SimTime::Zero() + SimDuration::FromSecondsF(
                                t + rng.NextUniform(0.0, 1.0)),
                            functions[pick]});
      }
    }
  }
  SortSchedule(schedule);
  return schedule;
}

// The bursty generate-then-sort loop with the stream's RNG derivation: each
// function's timeline comes from a child Rng forked from the parent in
// function order (the shared-Rng original cannot be streamed — function k's
// draws depended on every draw of functions 0..k-1).
Schedule ReferenceBursty(const std::vector<std::string>& functions,
                         const BurstyOptions& options, Rng& rng) {
  Schedule schedule;
  for (const auto& function : functions) {
    Rng child = rng.Fork();
    SimTime burst_start = SimTime::Zero() + SimDuration::FromSecondsF(child.NextUniform(0, 30));
    while (burst_start < SimTime::Zero() + options.duration) {
      for (uint32_t i = 0; i < options.burst_size; ++i) {
        const SimDuration offset =
            SimDuration::FromSecondsF(child.NextUniform(0, options.burst_spread.seconds()));
        schedule.push_back({burst_start + offset, function});
      }
      const double gap_s = options.inter_burst.seconds() * child.NextUniform(1.0, 1.2);
      burst_start += SimDuration::FromSecondsF(gap_s);
    }
  }
  SortSchedule(schedule);
  return schedule;
}

void ExpectIdentical(const Schedule& expected, const Schedule& actual,
                     const std::string& what) {
  ASSERT_EQ(expected.size(), actual.size()) << what;
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i].arrival.nanos(), actual[i].arrival.nanos())
        << what << " diverges at index " << i;
    ASSERT_EQ(expected[i].function, actual[i].function)
        << what << " diverges at index " << i;
  }
}

void ExpectSorted(const Schedule& schedule) {
  for (size_t i = 1; i < schedule.size(); ++i) {
    ASSERT_LE(schedule[i - 1].arrival.nanos(), schedule[i].arrival.nanos());
  }
}

TEST(ArrivalStreamTest, PoissonMatchesReferenceAcrossSeeds) {
  for (const uint64_t seed : kSeeds) {
    Rng ref_rng(seed);
    const Schedule expected =
        ReferencePoisson(kFns, 6.0, SimDuration::Minutes(5), 0.8, ref_rng);
    Rng rng(seed);
    PoissonArrivalStream stream(kFns, 6.0, SimDuration::Minutes(5), 0.8, &rng);
    const Schedule actual = CollectAll(stream);
    ExpectIdentical(expected, actual, "poisson seed " + std::to_string(seed));
    ASSERT_FALSE(actual.empty());
    ExpectSorted(actual);
    // A fully drained stream leaves the caller's Rng exactly where the
    // materialized loop left it.
    EXPECT_EQ(ref_rng.NextU64(), rng.NextU64());
  }
}

TEST(ArrivalStreamTest, DiurnalMatchesReferenceAcrossSeeds) {
  DiurnalOptions options;
  options.duration = SimDuration::Minutes(10);
  for (const uint64_t seed : kSeeds) {
    Rng ref_rng(seed);
    const Schedule expected = ReferenceDiurnal(kFns, options, ref_rng);
    Rng rng(seed);
    DiurnalArrivalStream stream(kFns, options, &rng);
    const Schedule actual = CollectAll(stream);
    ExpectIdentical(expected, actual, "diurnal seed " + std::to_string(seed));
    ASSERT_FALSE(actual.empty());
    ExpectSorted(actual);
    EXPECT_EQ(ref_rng.NextU64(), rng.NextU64());
  }
}

TEST(ArrivalStreamTest, BurstyMatchesReferenceAcrossSeeds) {
  for (const uint64_t seed : kSeeds) {
    Rng ref_rng(seed);
    const Schedule expected = ReferenceBursty(kFns, BurstyOptions{}, ref_rng);
    Rng rng(seed);
    BurstyArrivalStream stream(kFns, BurstyOptions{}, &rng);
    const Schedule actual = CollectAll(stream);
    ExpectIdentical(expected, actual, "bursty seed " + std::to_string(seed));
    ASSERT_FALSE(actual.empty());
    ExpectSorted(actual);
    EXPECT_EQ(ref_rng.NextU64(), rng.NextU64());
  }
}

TEST(ArrivalStreamTest, BurstyHandlesOverlappingBursts) {
  // Gaps shorter than the spread force bursts to overlap, so a function's
  // reorder buffer must hold more than one burst at a time — the stress case
  // for the per-function watermark.
  BurstyOptions options;
  options.duration = SimDuration::Minutes(5);
  options.inter_burst = SimDuration::Seconds(5);
  options.burst_spread = SimDuration::Seconds(30);
  options.burst_size = 7;
  for (const uint64_t seed : kSeeds) {
    Rng ref_rng(seed);
    const Schedule expected = ReferenceBursty(kFns, options, ref_rng);
    Rng rng(seed);
    BurstyArrivalStream stream(kFns, options, &rng);
    const Schedule actual = CollectAll(stream);
    ExpectIdentical(expected, actual, "overlapping bursty seed " + std::to_string(seed));
    ExpectSorted(actual);
  }
}

TEST(ArrivalStreamTest, MaterializedWrappersCollectTheStreams) {
  // MakeXxxWorkload must be exactly CollectAll(stream) — same draws, same
  // output — so every Schedule consumer inherits the streaming semantics.
  Rng a(42);
  Rng b(42);
  PoissonArrivalStream poisson(kFns, 4.0, SimDuration::Minutes(3), 0.5, &b);
  ExpectIdentical(MakePoissonWorkload(kFns, 4.0, SimDuration::Minutes(3), 0.5, a),
                  CollectAll(poisson), "poisson wrapper");

  Rng c(42);
  Rng d(42);
  DiurnalArrivalStream diurnal(kFns, DiurnalOptions{}, &d);
  ExpectIdentical(MakeDiurnalWorkload(kFns, DiurnalOptions{}, c), CollectAll(diurnal),
                  "diurnal wrapper");

  Rng e(42);
  Rng f(42);
  BurstyArrivalStream bursty(kFns, BurstyOptions{}, &f);
  ExpectIdentical(MakeBurstyWorkload(kFns, BurstyOptions{}, e), CollectAll(bursty),
                  "bursty wrapper");
}

TEST(ArrivalStreamTest, ScheduleStreamRoundTrips) {
  Rng rng(7);
  const Schedule schedule = MakePoissonWorkload(kFns, 2.0, SimDuration::Minutes(2), 0.4, rng);
  ScheduleStream stream(schedule);
  ExpectIdentical(schedule, CollectAll(stream), "schedule round trip");
  // Exhausted streams keep returning nullopt.
  EXPECT_FALSE(stream.Next().has_value());
}

TEST(ArrivalStreamTest, EmptyInputsYieldEmptyStreams) {
  Rng rng(3);
  PoissonArrivalStream no_fns({}, 4.0, SimDuration::Minutes(1), 0.5, &rng);
  EXPECT_FALSE(no_fns.Next().has_value());
  PoissonArrivalStream no_rate(kFns, 0.0, SimDuration::Minutes(1), 0.5, &rng);
  EXPECT_FALSE(no_rate.Next().has_value());
  DiurnalArrivalStream no_fns_diurnal({}, DiurnalOptions{}, &rng);
  EXPECT_FALSE(no_fns_diurnal.Next().has_value());
  BurstyArrivalStream no_fns_bursty({}, BurstyOptions{}, &rng);
  EXPECT_FALSE(no_fns_bursty.Next().has_value());
  // None of the empty streams may have consumed a draw.
  Rng fresh(3);
  EXPECT_EQ(fresh.NextU64(), rng.NextU64());
}

}  // namespace
}  // namespace trenv
