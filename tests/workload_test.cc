// Tests for the workload generators (W1, W2, industry traces).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "src/workload/traces.h"

namespace trenv {
namespace {

const std::vector<std::string> kFns = {"A", "B", "C", "D"};

bool IsSorted(const Schedule& s) {
  for (size_t i = 1; i < s.size(); ++i) {
    if (s[i].arrival < s[i - 1].arrival) {
      return false;
    }
  }
  return true;
}

TEST(BurstyWorkloadTest, BurstsSeparatedByMoreThanKeepAlive) {
  Rng rng(1);
  BurstyOptions options;
  options.duration = SimDuration::Minutes(40);
  Schedule schedule = MakeBurstyWorkload(kFns, options, rng);
  ASSERT_FALSE(schedule.empty());
  EXPECT_TRUE(IsSorted(schedule));
  // Per function: gaps between consecutive bursts exceed 10 minutes.
  for (const auto& fn : kFns) {
    std::vector<double> times;
    for (const auto& inv : schedule) {
      if (inv.function == fn) {
        times.push_back(inv.arrival.seconds());
      }
    }
    ASSERT_GE(times.size(), options.burst_size);
    double burst_start = times.front();
    double prev = times.front();
    for (double t : times) {
      if (t - prev > 60) {  // new burst
        EXPECT_GT(t - burst_start, 600.0) << fn;
        burst_start = t;
      }
      prev = t;
    }
  }
}

TEST(BurstyWorkloadTest, AllFunctionsCovered) {
  Rng rng(2);
  Schedule schedule = MakeBurstyWorkload(kFns, BurstyOptions{}, rng);
  std::map<std::string, int> counts;
  for (const auto& inv : schedule) {
    counts[inv.function]++;
  }
  EXPECT_EQ(counts.size(), kFns.size());
}

TEST(DiurnalWorkloadTest, RateVariesAcrossCycle) {
  Rng rng(3);
  DiurnalOptions options;
  options.duration = SimDuration::Minutes(30);
  options.cycles = 3;
  Schedule schedule = MakeDiurnalWorkload(kFns, options, rng);
  ASSERT_GT(schedule.size(), 500u);
  EXPECT_TRUE(IsSorted(schedule));
  // Bucket into 30 one-minute bins; peak bins should be much busier.
  std::vector<int> bins(30, 0);
  for (const auto& inv : schedule) {
    const auto bin = static_cast<size_t>(inv.arrival.seconds() / 60.0);
    if (bin < bins.size()) {
      bins[bin]++;
    }
  }
  const int max_bin = *std::max_element(bins.begin(), bins.end());
  const int min_bin = *std::min_element(bins.begin(), bins.end());
  EXPECT_GT(max_bin, 3 * std::max(min_bin, 1));
}

TEST(PoissonWorkloadTest, RateApproximatelyHonoured) {
  Rng rng(4);
  Schedule schedule =
      MakePoissonWorkload(kFns, /*rate=*/5.0, SimDuration::Minutes(10), 0.0, rng);
  EXPECT_NEAR(static_cast<double>(schedule.size()), 3000.0, 300.0);
  EXPECT_TRUE(IsSorted(schedule));
}

TEST(PoissonWorkloadTest, ZipfSkewConcentratesOnFirstFunction) {
  Rng rng(5);
  Schedule schedule =
      MakePoissonWorkload(kFns, 5.0, SimDuration::Minutes(10), /*skew=*/1.5, rng);
  std::map<std::string, int> counts;
  for (const auto& inv : schedule) {
    counts[inv.function]++;
  }
  EXPECT_GT(counts["A"], counts["D"] * 3);
}

TEST(IndustryTraceTest, AzureAndHuaweiShapesDiffer) {
  Rng rng_a(6);
  Rng rng_h(6);
  Schedule azure = MakeAzureLikeWorkload(kFns, rng_a);
  Schedule huawei = MakeHuaweiLikeWorkload(kFns, rng_h);
  ASSERT_FALSE(azure.empty());
  ASSERT_FALSE(huawei.empty());
  EXPECT_TRUE(IsSorted(azure));
  EXPECT_TRUE(IsSorted(huawei));
  // Huawei's duty cycle is higher: more invocations for equal settings.
  EXPECT_GT(huawei.size(), azure.size());
}

TEST(IndustryTraceTest, WithinMinuteBurstsExist) {
  Rng rng(7);
  IndustryTraceOptions options;
  options.burst_probability = 1.0;  // force bursts
  options.idle_minute_fraction = 0.0;
  Schedule schedule = MakeIndustryWorkload(kFns, options, rng);
  ASSERT_FALSE(schedule.empty());
  // All invocations within the first 5 seconds of each minute.
  for (const auto& inv : schedule) {
    const double within = inv.arrival.seconds() - 60.0 * std::floor(inv.arrival.seconds() / 60.0);
    EXPECT_LE(within, 5.001);
  }
}

TEST(IndustryTraceTest, Deterministic) {
  Rng a(8);
  Rng b(8);
  Schedule s1 = MakeAzureLikeWorkload(kFns, a);
  Schedule s2 = MakeAzureLikeWorkload(kFns, b);
  ASSERT_EQ(s1.size(), s2.size());
  for (size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].arrival, s2[i].arrival);
    EXPECT_EQ(s1[i].function, s2[i].function);
  }
}

}  // namespace
}  // namespace trenv
