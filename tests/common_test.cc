// Unit tests for src/common: Status/Result, SimTime, Rng, Histogram, units.
#include <gtest/gtest.h>

#include "src/common/histogram.h"
#include "src/common/interner.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/table.h"
#include "src/common/time.h"
#include "src/common/units.h"

namespace trenv {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> Doubler(Result<int> in) {
  TRENV_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_EQ(Doubler(Status::Internal("boom")).status().code(), StatusCode::kInternal);
}

TEST(SimTimeTest, Arithmetic) {
  SimTime t0;
  SimTime t1 = t0 + SimDuration::Millis(5);
  EXPECT_EQ((t1 - t0).millis(), 5.0);
  EXPECT_LT(t0, t1);
  EXPECT_EQ(SimDuration::Seconds(2).nanos(), 2'000'000'000);
  EXPECT_DOUBLE_EQ(SimDuration::Micros(1500).millis(), 1.5);
}

TEST(SimDurationTest, ScalingAndFormatting) {
  SimDuration d = SimDuration::Millis(10) * 2.5;
  EXPECT_DOUBLE_EQ(d.millis(), 25.0);
  EXPECT_EQ(SimDuration::Micros(3).ToString(), "3.0 us");
  EXPECT_EQ(SimDuration::Seconds(3).ToString(), "3.00 s");
  EXPECT_DOUBLE_EQ(SimDuration::Seconds(1) / SimDuration::Millis(100), 10.0);
}

TEST(UnitsTest, PageMath) {
  EXPECT_EQ(BytesToPages(1), 1u);
  EXPECT_EQ(BytesToPages(kPageSize), 1u);
  EXPECT_EQ(BytesToPages(kPageSize + 1), 2u);
  EXPECT_EQ(PageAlignUp(kPageSize + 1), 2 * kPageSize);
  EXPECT_EQ(PageAlignDown(kPageSize + 1), kPageSize);
  EXPECT_TRUE(IsPageAligned(0));
  EXPECT_FALSE(IsPageAligned(100));
  EXPECT_EQ(FormatBytes(74 * kMiB), "74.0 MiB");
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const uint64_t v = rng.NextBounded(10);
    EXPECT_LT(v, 10u);
    const int64_t n = rng.NextInt(-5, 5);
    EXPECT_GE(n, -5);
    EXPECT_LE(n, 5);
  }
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Rng rng(99);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(3.0);
  }
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(RngTest, NormalMomentsRoughlyCorrect) {
  Rng rng(5);
  double sum = 0;
  double sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextNormal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(11);
  int low = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextZipf(100, 1.2) < 10) {
      ++low;
    }
  }
  // With s=1.2 the first 10 ranks should absorb well over half the mass.
  EXPECT_GT(low, n / 2);
}

TEST(RngTest, ParetoRespectsMinimum) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.NextPareto(2.0, 1.5), 2.0);
  }
}

TEST(HistogramTest, Percentiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) {
    h.Record(i);
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.Min(), 1);
  EXPECT_DOUBLE_EQ(h.Max(), 100);
  EXPECT_NEAR(h.Median(), 50.5, 0.01);
  EXPECT_NEAR(h.P99(), 99.01, 0.1);
  EXPECT_NEAR(h.Mean(), 50.5, 1e-9);
}

TEST(HistogramTest, SingleSample) {
  Histogram h;
  h.Record(5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 5.0);
}

TEST(HistogramTest, CdfMonotone) {
  Histogram h;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    h.Record(rng.NextDouble() * 100);
  }
  auto cdf = h.Cdf(50);
  ASSERT_FALSE(cdf.empty());
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(HistogramTest, MergePreservesAllSamples) {
  Histogram a;
  Histogram b;
  a.Record(1);
  b.Record(2);
  b.Record(3);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.Max(), 3);
}

TEST(TimeSeriesGaugeTest, PeakAndIntegral) {
  TimeSeriesGauge g;
  g.Set(SimTime(0), 10);
  g.Set(SimTime(SimDuration::Seconds(2).nanos()), 20);
  g.Add(SimTime(SimDuration::Seconds(3).nanos()), -15);
  EXPECT_DOUBLE_EQ(g.current(), 5);
  EXPECT_DOUBLE_EQ(g.peak(), 20);
  // 10*2 + 20*1 + 5*1 = 45 at t=4s.
  EXPECT_DOUBLE_EQ(g.TimeIntegral(SimTime(SimDuration::Seconds(4).nanos())), 45);
}

TEST(TableTest, RendersAllRows) {
  Table t({"name", "value"});
  t.AddRow({"alpha", Table::Num(1.5)});
  t.AddRow({"beta", Table::Pct(0.25)});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("25.0%"), std::string::npos);
}

TEST(InternerTest, EmptyStringIsAValidKey) {
  Interner interner;
  // The empty string is a legal (if odd) function name: it gets a dense id
  // like any other and must not collide with real names.
  const FunctionId empty = interner.Intern("");
  const FunctionId named = interner.Intern("f");
  EXPECT_NE(empty, kInvalidFunctionId);
  EXPECT_NE(empty, named);
  EXPECT_EQ(interner.Find(""), empty);
  EXPECT_EQ(interner.NameOf(empty), "");
  EXPECT_EQ(interner.size(), 2u);
}

TEST(InternerTest, ReinterningReturnsTheSameId) {
  Interner interner;
  const FunctionId first = interner.Intern("resize-image");
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(interner.Intern("resize-image"), first);
  }
  EXPECT_EQ(interner.size(), 1u);  // duplicates allocate nothing
  EXPECT_EQ(interner.Find("resize-image"), first);
  EXPECT_EQ(interner.Find("never-interned"), kInvalidFunctionId);
}

TEST(InternerTest, RoundTripsAfterManyInserts) {
  Interner interner;
  // Force the unordered_map through several rehashes: NameOf must keep
  // returning the original strings (the name table points into stable map
  // keys, not into buckets).
  constexpr int kCount = 5000;
  std::vector<FunctionId> ids;
  for (int i = 0; i < kCount; ++i) {
    ids.push_back(interner.Intern("fn-" + std::to_string(i)));
  }
  EXPECT_EQ(interner.size(), static_cast<size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(interner.NameOf(ids[i]), "fn-" + std::to_string(i)) << i;
    EXPECT_EQ(interner.Find("fn-" + std::to_string(i)), ids[i]) << i;
  }
}

}  // namespace
}  // namespace trenv
