// Tests for rack-level multi-node sharing (paper sections 5.1, 8.2): many
// nodes, one CXL multi-headed device, one consolidated image per rack.
#include <gtest/gtest.h>

#include "src/platform/cluster.h"

namespace trenv {
namespace {

TEST(ClusterTest, DeployStoresOneImagePerRack) {
  // Deploy the same functions on 1 node and on 6 nodes: the shared pool
  // must hold the SAME number of bytes (cross-node dedup).
  ClusterConfig one_cfg;
  one_cfg.nodes = 1;
  Cluster one(one_cfg);
  ASSERT_TRUE(one.DeployTable4Functions().ok());

  ClusterConfig six_cfg;
  six_cfg.nodes = 6;
  Cluster six(six_cfg);
  ASSERT_TRUE(six.DeployTable4Functions().ok());

  EXPECT_EQ(one.PoolBytes(), six.PoolBytes());
  EXPECT_GT(six.PoolBytes(), 0u);
  // Six nodes ingest 6x the pages but store them once: the rack-level dedup
  // ratio is 1/6 of the single-node ratio (section 8.2's "reduced by a
  // factor of the number of machines").
  EXPECT_NEAR(six.dedup().DedupRatio() * 6.0, one.dedup().DedupRatio(), 0.02);
}

TEST(ClusterTest, PortLimitEnforcedByMhd) {
  ClusterConfig config;
  config.nodes = 12;  // exactly the commercial MHD's port count
  Cluster cluster(config);
  EXPECT_EQ(cluster.node_count(), 12u);
  EXPECT_EQ(cluster.cxl().attached_nodes(), 12u);
  EXPECT_EQ(cluster.cxl().AttachNode(99).code(), StatusCode::kResourceExhausted);
}

TEST(ClusterTest, RoundRobinSpreadsInvocations) {
  ClusterConfig config;
  config.nodes = 4;
  config.dispatch = ClusterConfig::Dispatch::kRoundRobin;
  Cluster cluster(config);
  ASSERT_TRUE(cluster.DeployTable4Functions().ok());
  Schedule schedule;
  for (int i = 0; i < 8; ++i) {
    schedule.push_back({SimTime::Zero() + SimDuration::Millis(i * 10), "JS"});
  }
  ASSERT_TRUE(cluster.Run(schedule).ok());
  for (size_t i = 0; i < cluster.node_count(); ++i) {
    EXPECT_EQ(cluster.node(i).metrics().Aggregate().invocations, 2u) << "node " << i;
  }
  EXPECT_EQ(cluster.TotalInvocations(), 8u);
}

TEST(ClusterTest, LeastLoadedAvoidsBusyNodes) {
  ClusterConfig config;
  config.nodes = 3;
  config.dispatch = ClusterConfig::Dispatch::kLeastLoaded;
  Cluster cluster(config);
  ASSERT_TRUE(cluster.DeployTable4Functions().ok());
  // A burst of simultaneous launches must not all land on node 0.
  Schedule schedule;
  for (int i = 0; i < 9; ++i) {
    schedule.push_back({SimTime::Zero() + SimDuration::Millis(i), "IR"});
  }
  ASSERT_TRUE(cluster.Run(schedule).ok());
  size_t nodes_used = 0;
  for (size_t i = 0; i < cluster.node_count(); ++i) {
    if (cluster.node(i).metrics().Aggregate().invocations > 0) {
      ++nodes_used;
    }
  }
  EXPECT_EQ(nodes_used, 3u);
  EXPECT_EQ(cluster.TotalInvocations(), 9u);
}

TEST(ClusterTest, RackMemoryScalesSublinearly) {
  // N nodes each running the big IR function: per-node DRAM holds only CoW
  // pages; the 855 MiB image exists once, in the pool.
  auto rack_bytes = [](uint32_t nodes) {
    ClusterConfig config;
    config.nodes = nodes;
    Cluster cluster(config);
    EXPECT_TRUE(cluster.DeployTable4Functions().ok());
    Schedule schedule;
    for (uint32_t i = 0; i < nodes; ++i) {
      schedule.push_back({SimTime::Zero() + SimDuration::Millis(i), "IR"});
    }
    EXPECT_TRUE(cluster.Run(schedule).ok());
    // Sample memory while instances are still warm in keep-alive.
    uint64_t dram = 0;
    for (size_t i = 0; i < cluster.node_count(); ++i) {
      dram += static_cast<uint64_t>(cluster.node(i).metrics().peak_memory_bytes());
    }
    return std::make_pair(cluster.PoolBytes(), dram);
  };
  const auto [pool_1, dram_1] = rack_bytes(1);
  const auto [pool_6, dram_6] = rack_bytes(6);
  EXPECT_EQ(pool_1, pool_6);  // one rack copy regardless of node count
  // Per-node DRAM grows ~linearly but is far smaller than 6 full images.
  EXPECT_LT(dram_6, 6ULL * FindTable4Function("IR")->image_bytes / 2);
}

TEST(ClusterTest, CrossNodeInstancesShareContent) {
  ClusterConfig config;
  config.nodes = 2;
  Cluster cluster(config);
  ASSERT_TRUE(cluster.DeployTable4Functions().ok());
  Schedule schedule{{SimTime::Zero(), "JS"}, {SimTime::Zero() + SimDuration::Millis(1), "JS"}};
  config.dispatch = ClusterConfig::Dispatch::kRoundRobin;
  ASSERT_TRUE(cluster.Run(schedule).ok());
  // Both nodes executed without growing the shared pool (reads direct).
  EXPECT_EQ(cluster.TotalInvocations(), 2u);
  EXPECT_EQ(cluster.AggregateMetrics().e2e_ms.count(), 2u);
}

}  // namespace
}  // namespace trenv
