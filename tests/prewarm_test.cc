// Tests for the histogram-based keep-alive / pre-warm policy and its
// integration with the platform.
#include <gtest/gtest.h>

#include "src/platform/prewarm.h"
#include "src/platform/testbed.h"

namespace trenv {
namespace {

TEST(PrewarmPolicyTest, ConservativeWithoutData) {
  PrewarmPolicy policy;
  EXPECT_EQ(policy.KeepAliveFor("fn"), SimDuration::Minutes(10));
  EXPECT_FALSE(policy.PrewarmDelay("fn").has_value());
}

TEST(PrewarmPolicyTest, LearnsShortKeepAliveForFrequentFunction) {
  PrewarmPolicy policy;
  SimTime t;
  for (int i = 0; i < 20; ++i) {
    policy.RecordArrival("chatty", t);
    t += SimDuration::Seconds(5);
  }
  // Arrivals every 5 s: keep-alive shrinks to the configured floor.
  EXPECT_LT(policy.KeepAliveFor("chatty"), SimDuration::Minutes(1));
  EXPECT_GE(policy.KeepAliveFor("chatty"), SimDuration::Seconds(30));
  // Gap < keep-alive: no pre-warm needed.
  EXPECT_FALSE(policy.PrewarmDelay("chatty").has_value());
}

TEST(PrewarmPolicyTest, PredictsPeriodicLongGapFunction) {
  PrewarmPolicy policy;
  SimTime t;
  for (int i = 0; i < 16; ++i) {
    policy.RecordArrival("cron", t);
    t += SimDuration::Minutes(20);  // periodic, past the max keep-alive
  }
  auto delay = policy.PrewarmDelay("cron");
  ASSERT_TRUE(delay.has_value());
  // Fires a bit before the next predicted arrival (~20 min).
  EXPECT_GT(delay->seconds(), 15 * 60);
  EXPECT_LT(delay->seconds(), 20 * 60);
}

TEST(PrewarmPolicyTest, RefusesToPredictDispersedArrivals) {
  PrewarmPolicy policy;
  Rng rng(6);
  SimTime t;
  for (int i = 0; i < 30; ++i) {
    policy.RecordArrival("bursty", t);
    // Wildly dispersed gaps: 1 s to ~80 min.
    t += SimDuration::FromSecondsF(1.0 + rng.NextPareto(2.0, 0.9) * 60.0);
  }
  EXPECT_FALSE(policy.PrewarmDelay("bursty").has_value());
}

TEST(PrewarmPolicyTest, SlidingWindowForgetsOldBehaviour) {
  PrewarmPolicy::Options options;
  options.window = 16;
  PrewarmPolicy policy(options);
  SimTime t;
  // Old phase: 20-minute gaps.
  for (int i = 0; i < 20; ++i) {
    policy.RecordArrival("fn", t);
    t += SimDuration::Minutes(20);
  }
  // New phase: 5-second gaps, enough to flush the window.
  for (int i = 0; i < 20; ++i) {
    policy.RecordArrival("fn", t);
    t += SimDuration::Seconds(5);
  }
  EXPECT_EQ(policy.ObservationCount("fn"), 16u);
  EXPECT_LT(policy.KeepAliveFor("fn"), SimDuration::Minutes(1));
}

TEST(PrewarmIntegrationTest, PeriodicFunctionGetsPrewarmedStart) {
  PrewarmPolicy policy;
  PlatformConfig config;
  config.prewarm = &policy;
  Testbed bed(SystemKind::kCriu, config);
  ASSERT_TRUE(bed.DeployTable4Functions().ok());
  // 14 periodic invocations 20 min apart: after the learning phase the
  // platform pre-warms ahead of each arrival, converting cold starts into
  // warm hits despite gaps exceeding any keep-alive.
  Schedule schedule;
  for (int i = 0; i < 14; ++i) {
    schedule.push_back({SimTime::Zero() + SimDuration::Minutes(20 * i), "JS"});
  }
  ASSERT_TRUE(bed.platform().Run(schedule).ok());
  const auto& m = bed.platform().metrics().per_function().at("JS");
  EXPECT_GT(m.prewarm_starts, 3u);
  EXPECT_GT(m.warm_starts, 3u);
  // Warm-served arrivals have zero recorded startup.
  EXPECT_DOUBLE_EQ(m.startup_ms.Min(), 0.0);
}

TEST(PrewarmIntegrationTest, PrewarmCostsMemoryThatTrEnvAvoids) {
  // The point of section 10: prediction keeps full instances resident.
  // CRIU+prewarm holds the whole image; TrEnv holds nearly nothing and
  // still starts in milliseconds without any prediction.
  PrewarmPolicy policy;
  PlatformConfig config;
  config.prewarm = &policy;
  Testbed criu(SystemKind::kCriu, config);
  ASSERT_TRUE(criu.DeployTable4Functions().ok());
  Testbed trenv(SystemKind::kTrEnvCxl);
  ASSERT_TRUE(trenv.DeployTable4Functions().ok());
  Schedule schedule;
  for (int i = 0; i < 10; ++i) {
    schedule.push_back({SimTime::Zero() + SimDuration::Minutes(20 * i), "IR"});
  }
  ASSERT_TRUE(criu.platform().Run(schedule).ok());
  ASSERT_TRUE(trenv.platform().Run(schedule).ok());
  EXPECT_GT(criu.platform().metrics().peak_memory_bytes(),
            4 * trenv.platform().metrics().peak_memory_bytes());
}

}  // namespace
}  // namespace trenv
